/**
 * @file
 * Ablation: the control-flow jump-range limitation (§IV-C).
 *
 * Runs TurboFuzz with the optimization enabled vs disabled and
 * reports prevalence, executed fraction and coverage — isolating the
 * design choice behind the Fig. 8 gap between TurboFuzz and
 * DifuzzRTL-style unconstrained jumps.
 */

#include "bench_util.hh"

#include "fuzzer/generator.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double budget = cfg.getDouble("budget", 25.0);

    banner("Ablation", "Control-flow jump-range limitation");

    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    TablePrinter table({"Config", "Prevalence", "Exec fuzz/iter",
                        "Coverage"});

    struct Setting
    {
        const char *name;
        bool opt;
        uint32_t range;
    };
    const Setting settings[] = {
        {"jump range 4", true, 4},
        {"jump range 8 (default)", true, 8},
        {"jump range 32", true, 32},
        {"unconstrained", false, 0},
    };

    for (const Setting &s : settings) {
        fuzzer::FuzzerOptions fopts = turboFuzzOptions(seed);
        fopts.controlFlowOpt = s.opt;
        if (s.opt)
            fopts.jumpRangeBlocks = s.range;
        harness::Campaign c(turboFuzzCampaign(seed),
                            std::make_unique<fuzzer::TurboFuzzGenerator>(
                                fopts, &lib));
        c.run(budget);
        const double fuzz_per_iter =
            static_cast<double>(c.executedInstructions()) *
            c.prevalence() / static_cast<double>(c.iterations());
        table.addRow({s.name, TablePrinter::num(c.prevalence(), 3),
                      TablePrinter::num(fuzz_per_iter, 0),
                      TablePrinter::integer(
                          c.coverageMap().totalCovered())});
    }
    table.print();
    std::printf("\nunconstrained jumps skip most of each iteration "
                "(eq. 1), collapsing executed instructions.\n");
    return 0;
}
