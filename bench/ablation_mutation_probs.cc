/**
 * @file
 * Ablation: mutation-engine operation mix (§IV-B3).
 *
 * Sweeps the generate/delete/retain probabilities around the paper's
 * 3/16 / 11/16 / 2/16 defaults and the direct/mutation mode split
 * (9/16 vs 7/16), reporting coverage at a fixed budget.
 */

#include "bench_util.hh"

#include "fuzzer/generator.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double budget = cfg.getDouble("budget", 25.0);

    banner("Ablation", "Mutation-engine probabilities");

    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    TablePrinter table({"Config", "gen/del/ret", "P(mutation)",
                        "Coverage", "Corpus evictions"});

    struct Setting
    {
        const char *name;
        uint32_t gen, del;
        Prob mutation;
    };
    const Setting settings[] = {
        {"paper defaults", 3, 11, {7, 16}},
        {"generation-heavy", 8, 6, {7, 16}},
        {"retain-heavy", 3, 5, {7, 16}},
        {"mutation-always", 3, 11, {16, 16}},
        {"direct-only", 3, 11, {0, 16}},
    };

    for (const Setting &s : settings) {
        fuzzer::FuzzerOptions fopts = turboFuzzOptions(seed);
        fopts.mutGenSixteenths = s.gen;
        fopts.mutDelSixteenths = s.del;
        fopts.mutationMode = s.mutation;
        auto gen = std::make_unique<fuzzer::TurboFuzzGenerator>(fopts,
                                                                &lib);
        auto *gp = gen.get();
        harness::Campaign c(turboFuzzCampaign(seed), std::move(gen));
        c.run(budget);
        const std::string mix = std::to_string(s.gen) + "/" +
                                std::to_string(s.del) + "/" +
                                std::to_string(16 - s.gen - s.del);
        table.addRow(
            {s.name, mix,
             TablePrinter::num(s.mutation.value(), 2),
             TablePrinter::integer(c.coverageMap().totalCovered()),
             TablePrinter::integer(
                 gp->underlying().corpus().evictions())});
    }
    table.print();
    return 0;
}
