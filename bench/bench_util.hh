/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Every bench binary reproduces one table or figure of the paper:
 * it runs the relevant campaigns on the simulated platform and prints
 * the same rows/series the paper reports. Budgets are simulated
 * seconds and default to values that keep the whole suite fast;
 * pass --budget=N (and --seed=N) to extend.
 */

#ifndef TURBOFUZZ_BENCH_BENCH_UTIL_HH
#define TURBOFUZZ_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "harness/campaign.hh"

namespace turbofuzz::bench
{

/** Print a figure/table banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("=========================================================\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("=========================================================\n");
}

/** Print a coverage-versus-time series as at most @p rows rows. */
inline void
printSeries(const TimeSeries &series, unsigned rows = 12)
{
    const auto &samples = series.samples();
    if (samples.empty()) {
        std::printf("  (no samples)\n");
        return;
    }
    const size_t step =
        samples.size() <= rows ? 1 : samples.size() / rows;
    std::printf("  %-12s %s\n", "time (s)", "coverage");
    for (size_t i = 0; i < samples.size(); i += step) {
        std::printf("  %-12.2f %.0f\n", samples[i].timeSec,
                    samples[i].value);
    }
    std::printf("  %-12.2f %.0f   (final)\n", samples.back().timeSec,
                samples.back().value);
}

/** Default TurboFuzz fuzzer options for benches. */
inline fuzzer::FuzzerOptions
turboFuzzOptions(uint64_t seed, uint32_t instrs_per_iteration = 4000)
{
    fuzzer::FuzzerOptions o;
    o.seed = seed;
    o.instrsPerIteration = instrs_per_iteration;
    return o;
}

/** Campaign options preconfigured for the on-fabric TurboFuzz flow. */
inline harness::CampaignOptions
turboFuzzCampaign(uint64_t seed)
{
    harness::CampaignOptions c;
    c.timing = soc::turboFuzzProfile();
    c.checkMode = checker::DiffChecker::Mode::PerInstruction;
    c.seed = seed;
    return c;
}

/** Campaign options for a software-baseline flow. */
inline harness::CampaignOptions
softwareCampaign(uint64_t seed, soc::TimingProfile profile)
{
    harness::CampaignOptions c;
    c.timing = std::move(profile);
    c.checkMode = checker::DiffChecker::Mode::EndOfIteration;
    c.seed = seed;
    return c;
}

} // namespace turbofuzz::bench

#endif // TURBOFUZZ_BENCH_BENCH_UTIL_HH
