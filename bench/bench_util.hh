/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Every bench binary reproduces one table or figure of the paper:
 * it runs the relevant campaigns on the simulated platform and prints
 * the same rows/series the paper reports. Budgets are simulated
 * seconds and default to values that keep the whole suite fast;
 * pass --budget=N (and --seed=N) to extend.
 */

#ifndef TURBOFUZZ_BENCH_BENCH_UTIL_HH
#define TURBOFUZZ_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "harness/campaign.hh"

namespace turbofuzz::bench
{

/** Print a figure/table banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("=========================================================\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("=========================================================\n");
}

/** Print a coverage-versus-time series as at most @p rows rows. */
inline void
printSeries(const TimeSeries &series, unsigned rows = 12)
{
    const auto &samples = series.samples();
    if (samples.empty()) {
        std::printf("  (no samples)\n");
        return;
    }
    const size_t step =
        samples.size() <= rows ? 1 : samples.size() / rows;
    std::printf("  %-12s %s\n", "time (s)", "coverage");
    for (size_t i = 0; i < samples.size(); i += step) {
        std::printf("  %-12.2f %.0f\n", samples[i].timeSec,
                    samples[i].value);
    }
    std::printf("  %-12.2f %.0f   (final)\n", samples.back().timeSec,
                samples.back().value);
}

/**
 * Machine-readable bench output: collects scalar metrics and
 * (time, value) trajectories, then writes them as
 * `BENCH_<id>.json` next to the binary so plotting/CI tooling can
 * consume bench results without scraping stdout.
 *
 * The emitted document is flat and schema-stable:
 * {
 *   "bench": "<id>",
 *   "meta":    { "<key>": <string|number>, ... },
 *   "metrics": { "<key>": <number>, ... },
 *   "series": [ { "name": "...", "samples": [[t, v], ...] }, ... ]
 * }
 */
class JsonResult
{
  public:
    explicit JsonResult(std::string bench_id) : id(std::move(bench_id))
    {}

    void
    meta(const std::string &key, const std::string &value)
    {
        metaRows.emplace_back(key, quote(value));
    }

    void
    meta(const std::string &key, double value)
    {
        metaRows.emplace_back(key, number(value));
    }

    void
    metric(const std::string &key, double value)
    {
        metricRows.emplace_back(key, number(value));
    }

    void
    series(const TimeSeries &s)
    {
        series(s.name(), s);
    }

    void
    series(const std::string &name, const TimeSeries &s)
    {
        std::ostringstream os;
        os << "{\"name\": " << quote(name) << ", \"samples\": [";
        const auto &samples = s.samples();
        for (size_t i = 0; i < samples.size(); ++i) {
            if (i)
                os << ", ";
            os << '[' << number(samples[i].timeSec) << ", "
               << number(samples[i].value) << ']';
        }
        os << "]}";
        seriesRows.push_back(os.str());
    }

    /** Render the full document. */
    std::string
    str() const
    {
        std::ostringstream os;
        os << "{\n  \"bench\": " << quote(id) << ",\n";
        os << "  \"meta\": {" << joinPairs(metaRows) << "},\n";
        os << "  \"metrics\": {" << joinPairs(metricRows) << "},\n";
        os << "  \"series\": [";
        for (size_t i = 0; i < seriesRows.size(); ++i)
            os << (i ? ", " : "") << seriesRows[i];
        os << "]\n}\n";
        return os.str();
    }

    /** Write to @p path, or the default `BENCH_<id>.json`. */
    bool
    write(const std::string &path = "") const
    {
        const std::string file =
            path.empty() ? "BENCH_" + id + ".json" : path;
        std::FILE *f = std::fopen(file.c_str(), "w");
        if (!f) {
            warn("cannot write bench JSON to %s", file.c_str());
            return false;
        }
        const std::string doc = str();
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
        std::printf("[bench] results written to %s\n", file.c_str());
        return true;
    }

    /**
     * JSON string-escape @p s: quotes, backslashes, the named control
     * escapes and \u00XX for the rest of C0. Disassembly and bug-name
     * strings pass through verbatim otherwise (UTF-8 is fine as-is).
     */
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            const auto u = static_cast<unsigned char>(c);
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\b': out += "\\b"; break;
              case '\f': out += "\\f"; break;
              case '\n': out += "\\n"; break;
              case '\r': out += "\\r"; break;
              case '\t': out += "\\t"; break;
              default:
                if (u < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        return out;
    }

  private:
    static std::string
    quote(const std::string &s)
    {
        return "\"" + escape(s) + "\"";
    }

    static std::string
    number(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        return buf;
    }

    static std::string
    joinPairs(const std::vector<std::pair<std::string, std::string>>
                  &rows)
    {
        std::string out;
        for (size_t i = 0; i < rows.size(); ++i) {
            if (i)
                out += ", ";
            out += quote(rows[i].first) + ": " + rows[i].second;
        }
        return out;
    }

    std::string id;
    std::vector<std::pair<std::string, std::string>> metaRows;
    std::vector<std::pair<std::string, std::string>> metricRows;
    std::vector<std::string> seriesRows;
};

/** Default TurboFuzz fuzzer options for benches. */
inline fuzzer::FuzzerOptions
turboFuzzOptions(uint64_t seed, uint32_t instrs_per_iteration = 4000)
{
    fuzzer::FuzzerOptions o;
    o.seed = seed;
    o.instrsPerIteration = instrs_per_iteration;
    return o;
}

/** Campaign options preconfigured for the on-fabric TurboFuzz flow. */
inline harness::CampaignOptions
turboFuzzCampaign(uint64_t seed)
{
    harness::CampaignOptions c;
    c.timing = soc::turboFuzzProfile();
    c.checkMode = checker::DiffChecker::Mode::PerInstruction;
    c.seed = seed;
    return c;
}

/** Campaign options for a software-baseline flow. */
inline harness::CampaignOptions
softwareCampaign(uint64_t seed, soc::TimingProfile profile)
{
    harness::CampaignOptions c;
    c.timing = std::move(profile);
    c.checkMode = checker::DiffChecker::Mode::EndOfIteration;
    c.seed = seed;
    return c;
}

} // namespace turbofuzz::bench

#endif // TURBOFUZZ_BENCH_BENCH_UTIL_HH
