/**
 * @file
 * Feedback-model A/B bench: coverage models and mutation schedulers
 * compared on the injected-bug catalog and on clean-core throughput.
 *
 * For every feedback model (mux | csr | edges | composite) the bench
 * runs one TurboFuzz campaign per catalog bug (stop on first
 * mismatch, simulated cap --hw-cap) and reports bugs found, mean
 * time-to-detection and host commits/sec; a clean-core campaign per
 * model/scheduler combination then reports the coverage each signal
 * reaches within --budget simulated seconds. The JSON lands in
 * BENCH_feedback_models.json for CI trend tracking.
 */

#include "bench_util.hh"

#include "fuzzer/generator.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

namespace
{

struct ModelRun
{
    coverage::CoverageModelKind kind;
    unsigned bugsFound = 0;
    double meanDetectSec = 0.0;
    double commitsPerSec = 0.0;
};

/** Run until the first mismatch; returns simulated seconds (or -1). */
double
timeToBug(harness::Campaign &campaign, double cap_sec)
{
    while (campaign.nowSec() < cap_sec) {
        const auto r = campaign.runIteration();
        if (r.mismatch)
            return campaign.nowSec();
    }
    return -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double hw_cap = cfg.getDouble("hw-cap", 15.0);
    const double budget = cfg.getDouble("budget", 4.0);

    banner("Feedback A/B",
           "Coverage models and schedulers on the bug catalog");

    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    JsonResult json("feedback_models");
    json.meta("seed", static_cast<double>(seed));
    json.meta("hw_cap_sec", hw_cap);
    json.meta("budget_sec", budget);

    const coverage::CoverageModelKind kinds[] = {
        coverage::CoverageModelKind::Mux,
        coverage::CoverageModelKind::Csr,
        coverage::CoverageModelKind::HitCount,
        coverage::CoverageModelKind::Composite,
    };

    // --- Part A: bug detection per model -----------------------------
    TablePrinter bug_table({"Model", "Bugs Found", "Bugs Total",
                            "Mean Detect (s)", "Commits/s (host)"});
    for (const auto kind : kinds) {
        ModelRun run{kind};
        double detect_sum = 0.0;
        ThroughputMeter meter;
        for (const core::BugInfo &bug : core::allBugs()) {
            auto opts = turboFuzzCampaign(seed);
            opts.coreKind = bug.design;
            opts.bugs = core::BugSet::single(bug.id);
            opts.rv64aEnabled = bug.id != core::BugId::C8;
            opts.stopOnMismatch = true;
            opts.coverageModel = kind;
            harness::Campaign c(
                opts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                          turboFuzzOptions(seed), &lib));
            const double t = timeToBug(c, hw_cap);
            meter.addCommits(c.executedInstructions());
            meter.addIterations(c.iterations());
            if (t > 0) {
                ++run.bugsFound;
                detect_sum += t;
            }
        }
        meter.stop();
        run.commitsPerSec = meter.commitsPerSec();
        run.meanDetectSec =
            run.bugsFound ? detect_sum / run.bugsFound : -1.0;

        const std::string name(coverage::coverageModelName(kind));
        bug_table.addRow(
            {name, TablePrinter::integer(run.bugsFound),
             TablePrinter::integer(core::allBugs().size()),
             run.bugsFound ? TablePrinter::num(run.meanDetectSec, 2)
                           : std::string("n/f"),
             TablePrinter::num(run.commitsPerSec, 0)});
        json.metric(name + "_bugs_found", run.bugsFound);
        json.metric(name + "_mean_detect_sec", run.meanDetectSec);
        json.metric(name + "_commits_per_sec", run.commitsPerSec);
    }
    bug_table.print();

    // --- Part B: clean-core coverage per model x scheduler -----------
    std::printf("\n");
    TablePrinter cov_table({"Model", "Scheduler", "Mux Coverage",
                            "Model Signal", "Iterations"});
    for (const auto kind : kinds) {
        for (const auto sched : {fuzzer::SchedulerKind::Static,
                                 fuzzer::SchedulerKind::Bandit}) {
            auto opts = turboFuzzCampaign(seed);
            opts.coverageModel = kind;
            auto fopts = turboFuzzOptions(seed);
            fopts.scheduler = sched;
            harness::Campaign c(
                opts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                          fopts, &lib));
            c.run(budget);

            const std::string model(
                coverage::coverageModelName(kind));
            const std::string policy(
                fuzzer::schedulerKindName(sched));
            cov_table.addRow(
                {model, policy,
                 TablePrinter::integer(
                     c.coverageMap().totalCovered()),
                 TablePrinter::integer(c.feedbackModel().newlyHit()),
                 TablePrinter::integer(c.iterations())});
            json.metric(model + "_" + policy + "_mux_coverage",
                        static_cast<double>(
                            c.coverageMap().totalCovered()));
            json.metric(model + "_" + policy + "_signal",
                        static_cast<double>(
                            c.feedbackModel().newlyHit()));
        }
    }
    cov_table.print();

    std::printf("\nnote: mux is the paper's default feedback; csr "
                "(ProcessorFuzz-style) and edges (bucketed hit "
                "counts) reward behaviours mux coverage saturates "
                "on.\n");
    json.write();
    return 0;
}
