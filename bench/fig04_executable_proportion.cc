/**
 * @file
 * Fig. 4 reproduction: proportion of executable instructions in
 * DifuzzRTL-generated programs, by instruction category — generated
 * vs executed vs control-flow-executed — plus the expected-jump-
 * distance analysis of eq. (1).
 *
 * Paper findings: only ~19.3% of generated instructions complete
 * execution; control-flow instructions comprise more than 1/6 of the
 * mix; unconstrained forward jumps skip most of each iteration.
 */

#include <map>
#include <set>

#include "bench_util.hh"

#include "baselines/difuzzrtl.hh"
#include "core/iss.hh"
#include "isa/encoding.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

namespace
{

/** Category of an instruction for the figure's x-axis. */
std::string
categoryOf(const isa::InstrDesc &d)
{
    if (d.has(isa::FlagBranch))
        return "branch";
    if (d.has(isa::FlagJal) || d.has(isa::FlagJalr))
        return "jump";
    if (d.has(isa::FlagLoad))
        return "load";
    if (d.has(isa::FlagStore))
        return "store";
    if (d.has(isa::FlagFp))
        return "fp";
    if (d.has(isa::FlagMulDiv))
        return "muldiv";
    if (d.has(isa::FlagCsr))
        return "csr";
    if (d.has(isa::FlagSystem))
        return "system";
    return "alu";
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const int iterations =
        static_cast<int>(cfg.getInt("iterations", 200));

    banner("Fig. 4",
           "Proportion of executable instructions (DifuzzRTL-style "
           "generation)");

    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    baselines::DifuzzRtlGenerator gen(seed, &lib);
    const fuzzer::MemoryLayout lay = gen.layout();

    std::map<std::string, uint64_t> generated;
    std::map<std::string, uint64_t> executed;
    std::map<std::string, uint64_t> executedCf;
    uint64_t gen_total = 0, exec_total = 0;

    soc::Memory mem;
    for (int it = 0; it < iterations; ++it) {
        const fuzzer::IterationInfo info = gen.generate(mem);

        // Generated mix, from the iteration's instruction blocks.
        for (const auto &b : info.blocks) {
            for (uint32_t word : b.insns) {
                const isa::Decoded d = isa::decode(word);
                if (!d.valid)
                    continue;
                ++generated[categoryOf(*d.desc)];
                ++gen_total;
            }
        }

        // Executed mix: run the iteration the way the DifuzzRTL flow
        // does (first trap ends it), classifying only commits inside
        // the fuzzing region.
        core::Iss::Options iopts;
        iopts.resetPc = info.entryPc;
        core::Iss hart(&mem, iopts);
        hart.addAccessRange(lay.instrBase, lay.instrSize);
        hart.addAccessRange(lay.dataBase, lay.dataSize);
        const uint64_t cap = info.generatedInstrs + 1024;
        std::set<uint64_t> seen; // "completed execution" is per
                                 // generated instruction, not per
                                 // dynamic commit (loops re-execute)
        for (uint64_t n = 0; n < cap; ++n) {
            const core::CommitInfo ci = hart.step();
            if (ci.trapped)
                break;
            if (ci.decodeValid && ci.pc >= info.firstBlockPc &&
                ci.pc < info.codeBoundary && seen.insert(ci.pc).second) {
                const std::string cat = categoryOf(*ci.desc);
                ++executed[cat];
                ++exec_total;
                if (ci.desc->isControlFlow())
                    ++executedCf[cat];
            }
            if (hart.state().pc >= info.codeBoundary)
                break;
        }
        gen.feedback(info, 0);
    }

    TablePrinter table({"Category", "Generated", "Executed",
                        "Executed CF", "Exec/Gen"});
    for (const auto &[cat, g] : generated) {
        const uint64_t e = executed.count(cat) ? executed[cat] : 0;
        const uint64_t c =
            executedCf.count(cat) ? executedCf[cat] : 0;
        table.addRow({cat, TablePrinter::integer(g),
                      TablePrinter::integer(e),
                      TablePrinter::integer(c),
                      TablePrinter::num(
                          g ? static_cast<double>(e) / g : 0.0, 3)});
    }
    table.print();

    const double exec_frac =
        static_cast<double>(exec_total) / static_cast<double>(gen_total);
    std::printf("\noverall executed fraction: %.3f "
                "(paper: ~0.193)\n",
                exec_frac);

    const uint64_t cf_gen = generated["branch"] + generated["jump"];
    std::printf("control-flow share of generated: %.3f "
                "(paper: > 1/6 = 0.167)\n",
                static_cast<double>(cf_gen) /
                    static_cast<double>(gen_total));

    // Eq. (1): expected jump distance for unconstrained forward
    // jumps, E_j = 1 + (L - p)/2.
    std::printf("\neq. (1) expected jump distance, L = 912:\n");
    for (uint64_t p : {10ull, 100ull, 456ull, 800ull}) {
        std::printf("  p = %4llu -> E_j = %.1f instructions\n",
                    static_cast<unsigned long long>(p),
                    1.0 + static_cast<double>(912 - p) / 2.0);
    }
    return 0;
}
