/**
 * @file
 * Fig. 6 reproduction: distribution of instrumented coverage points
 * and the achievable subset, per module and design-wide, for
 * maxStateSize 13/14/15 bits, baseline vs optimized instrumentation.
 *
 * Paper findings: only 76.8% / 65.5% / 61.4% of baseline points are
 * reachable (more instrumented points => lower achievability); FPU,
 * CSRFile and PTW are particularly poor; the optimized sequential
 * arrangement makes every allocated point reachable.
 */

#include "bench_util.hh"

#include "coverage/reachability.hh"
#include "rtl/cores.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));

    banner("Fig. 6",
           "Instrumented vs achievable coverage points (RocketChip)");

    for (unsigned bits : {13u, 14u, 15u}) {
        std::printf("\n--- maxStateSize = %u bits ---\n", bits);
        auto design = rtl::buildRocketLike();

        coverage::DesignInstrumentation baseline(
            design.get(), coverage::Scheme::Baseline, bits, seed);
        coverage::DesignInstrumentation optimized(
            design.get(), coverage::Scheme::Optimized, bits, seed);

        const auto base_mods = coverage::analyzeDesign(baseline);
        const auto opt_mods = coverage::analyzeDesign(optimized);

        TablePrinter table({"Module", "Instrumented", "Achievable",
                            "Achievable %", "Optimized(achv)"});
        for (size_t i = 0; i < base_mods.size(); ++i) {
            const auto &m = base_mods[i];
            table.addRow(
                {m.moduleName, TablePrinter::integer(m.instrumented),
                 TablePrinter::integer(m.achievable),
                 TablePrinter::num(100.0 * m.achievableFraction(), 1),
                 TablePrinter::integer(opt_mods[i].achievable)});
        }
        table.print();

        const auto base_total = coverage::totals(base_mods);
        const auto opt_total = coverage::totals(opt_mods);
        std::printf("baseline:  %llu instrumented, %llu achievable "
                    "(%.1f%%)\n",
                    static_cast<unsigned long long>(
                        base_total.instrumented),
                    static_cast<unsigned long long>(
                        base_total.achievable),
                    100.0 * base_total.achievableFraction());
        std::printf("optimized: %llu instrumented, %llu achievable "
                    "(%.1f%%)\n",
                    static_cast<unsigned long long>(
                        opt_total.instrumented),
                    static_cast<unsigned long long>(
                        opt_total.achievable),
                    100.0 * opt_total.achievableFraction());
    }

    // The achievable fraction of a single instrumentation run depends
    // on the random shifts drawn; average over several seeds for the
    // trend the paper reports (larger index => lower achievability).
    std::printf("\nbaseline achievable fraction, averaged over 8 "
                "instrumentation seeds:\n");
    for (unsigned bits : {13u, 14u, 15u}) {
        double acc = 0.0;
        for (uint64_t s = 0; s < 8; ++s) {
            auto design = rtl::buildRocketLike();
            coverage::DesignInstrumentation base(
                design.get(), coverage::Scheme::Baseline, bits,
                seed + s);
            acc += coverage::totals(coverage::analyzeDesign(base))
                       .achievableFraction();
        }
        std::printf("  %u bits: %.1f%%\n", bits, 100.0 * acc / 8.0);
    }

    std::printf("\npaper reference: baseline achievable 76.8%% / "
                "65.5%% / 61.4%% for the three sizes; optimized "
                "100%%; FPU/CSRFile/PTW poorest\n");
    return 0;
}
