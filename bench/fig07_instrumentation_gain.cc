/**
 * @file
 * Fig. 7 reproduction: coverage improvement from the optimized
 * instrumentation, applied to all three fuzzing methods.
 *
 * Paper values: maximum reachable coverage points increase by 1.91x
 * (DifuzzRTL), 1.21x (Cascade) and 1.56x (TurboFuzz) when replacing
 * each system's baseline instrumentation with the proposed method.
 */

#include "bench_util.hh"

#include "baselines/cascade.hh"
#include "baselines/difuzzrtl.hh"
#include "fuzzer/generator.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

namespace
{

enum class Kind { TurboFuzz, Cascade, DifuzzRtl };

std::unique_ptr<fuzzer::StimulusGenerator>
makeGenerator(Kind kind, uint64_t seed,
              const isa::InstructionLibrary *lib)
{
    switch (kind) {
      case Kind::TurboFuzz:
        return std::make_unique<fuzzer::TurboFuzzGenerator>(
            turboFuzzOptions(seed), lib);
      case Kind::Cascade:
        return std::make_unique<baselines::CascadeGenerator>(seed, lib);
      default:
        return std::make_unique<baselines::DifuzzRtlGenerator>(seed,
                                                               lib);
    }
}

uint64_t
runWithScheme(Kind kind, coverage::Scheme scheme, uint64_t seed,
              double budget, const isa::InstructionLibrary *lib)
{
    harness::CampaignOptions opts;
    switch (kind) {
      case Kind::TurboFuzz:
        opts = turboFuzzCampaign(seed);
        break;
      case Kind::Cascade:
        opts = softwareCampaign(seed, soc::cascadeProfile());
        break;
      default:
        opts = softwareCampaign(seed, soc::difuzzRtlSwProfile());
        break;
    }
    opts.covScheme = scheme;
    harness::Campaign c(opts, makeGenerator(kind, seed, lib));
    c.run(budget);
    return c.coverageMap().totalCovered();
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double budget = cfg.getDouble("budget", 25.0);

    banner("Fig. 7",
           "Coverage improvement with the proposed instrumentation");

    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    TablePrinter table(
        {"Fuzzer", "Baseline cov", "Optimized cov", "Gain"});

    const struct
    {
        Kind kind;
        const char *name;
        double budget_scale;
    } configs[] = {
        {Kind::DifuzzRtl, "DifuzzRTL", 8.0},
        {Kind::Cascade, "Cascade", 8.0},
        {Kind::TurboFuzz, "TurboFuzz", 1.0},
    };

    for (const auto &c : configs) {
        const uint64_t base = runWithScheme(
            c.kind, coverage::Scheme::Baseline, seed,
            budget * c.budget_scale, &lib);
        const uint64_t opt = runWithScheme(
            c.kind, coverage::Scheme::Optimized, seed,
            budget * c.budget_scale, &lib);
        table.addRow({c.name, TablePrinter::integer(base),
                      TablePrinter::integer(opt),
                      TablePrinter::num(
                          static_cast<double>(opt) /
                              static_cast<double>(base),
                          2) +
                          "x"});
    }
    table.print();

    std::printf("\npaper reference: gains 1.91x (DifuzzRTL), 1.21x "
                "(Cascade), 1.56x (TurboFuzz)\n");
    return 0;
}
