/**
 * @file
 * Fig. 8 reproduction: prevalence (fuzzing instructions / executed
 * instructions) across fuzzing methods and instruction-count
 * configurations.
 *
 * Paper values: DifuzzRTL < 0.2; Cascade avg 0.93 [0.72, 0.98];
 * TurboFuzz avg 0.97 [0.96, 0.97] at 4000 instructions/iteration.
 */

#include "bench_util.hh"

#include "baselines/cascade.hh"
#include "baselines/difuzzrtl.hh"
#include "fuzzer/generator.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double budget = cfg.getDouble("budget", 20.0);

    banner("Fig. 8", "Prevalence comparison between fuzzing methods");

    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    TablePrinter table(
        {"Fuzzer", "Instr/iter", "Prevalence", "Exec/iter"});

    // TurboFuzz at several iteration sizes (the figure's sweep).
    for (uint32_t ipi : {1000u, 2000u, 4000u}) {
        auto opts = turboFuzzCampaign(seed);
        harness::Campaign c(opts,
                            std::make_unique<fuzzer::TurboFuzzGenerator>(
                                turboFuzzOptions(seed, ipi), &lib));
        c.run(budget);
        table.addRow({"TurboFuzz", std::to_string(ipi),
                      TablePrinter::num(c.prevalence(), 3),
                      TablePrinter::num(
                          static_cast<double>(
                              c.executedInstructions()) /
                              static_cast<double>(c.iterations()),
                          0)});
    }

    {
        auto opts = softwareCampaign(seed, soc::cascadeProfile());
        harness::Campaign c(
            opts,
            std::make_unique<baselines::CascadeGenerator>(seed, &lib));
        c.run(budget * 6);
        table.addRow({"Cascade", "209",
                      TablePrinter::num(c.prevalence(), 3),
                      TablePrinter::num(
                          static_cast<double>(
                              c.executedInstructions()) /
                              static_cast<double>(c.iterations()),
                          0)});
    }
    {
        auto opts = softwareCampaign(seed, soc::difuzzRtlSwProfile());
        harness::Campaign c(
            opts,
            std::make_unique<baselines::DifuzzRtlGenerator>(seed, &lib));
        c.run(budget * 6);
        table.addRow({"DifuzzRTL", "912",
                      TablePrinter::num(c.prevalence(), 3),
                      TablePrinter::num(
                          static_cast<double>(
                              c.executedInstructions()) /
                              static_cast<double>(c.iterations()),
                          0)});
    }

    table.print();
    std::printf("\npaper reference: TurboFuzz 0.97 [0.96,0.97], "
                "Cascade 0.93 [0.72,0.98], DifuzzRTL < 0.2\n");
    return 0;
}
