/**
 * @file
 * Fig. 9 reproduction: coverage with the coverage-guided corpus
 * scheduling enabled versus conventional FIFO replacement.
 *
 * Paper findings: ~7.5% more coverage at a fixed one-hour budget and
 * a large speedup to a fixed coverage target; a distinct late
 * coverage jump appears only with scheduling enabled.
 */

#include "bench_util.hh"

#include "fuzzer/generator.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double budget = cfg.getDouble("budget", 60.0);

    banner("Fig. 9",
           "Coverage with corpus scheduling enabled vs FIFO");

    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();

    auto run = [&](fuzzer::SchedulingPolicy policy) {
        fuzzer::FuzzerOptions fopts = turboFuzzOptions(seed);
        fopts.scheduling = policy;
        if (policy == fuzzer::SchedulingPolicy::Fifo)
            fopts.corpusPrioritize = {0, 1}; // uniform selection
        auto opts = turboFuzzCampaign(seed);
        harness::Campaign c(opts,
                            std::make_unique<fuzzer::TurboFuzzGenerator>(
                                fopts, &lib));
        TimeSeries s = c.run(budget);
        return std::make_pair(std::move(s), c.executedInstructions());
    };

    auto [optimized, instr_opt] =
        run(fuzzer::SchedulingPolicy::CoverageGuided);
    auto [fifo, instr_fifo] = run(fuzzer::SchedulingPolicy::Fifo);

    std::printf("\ncoverage-guided scheduling:\n");
    printSeries(optimized);
    std::printf("\nFIFO scheduling:\n");
    printSeries(fifo);

    const double cov_opt = optimized.last();
    const double cov_fifo = fifo.last();
    std::printf("\nat %.0f s budget: optimized %.0f vs FIFO %.0f "
                "(+%.1f%%)\n",
                budget, cov_opt, cov_fifo,
                100.0 * (cov_opt / cov_fifo - 1.0));

    // Speedup to a fixed coverage target (the paper uses 27,500
    // points on its instrumentation; here: 95% of the FIFO final).
    const double target = 0.95 * cov_fifo;
    const double t_opt = optimized.timeToReach(target);
    const double t_fifo = fifo.timeToReach(target);
    if (t_opt > 0 && t_fifo > 0) {
        std::printf("time to %.0f points: optimized %.2f s vs FIFO "
                    "%.2f s (%.1fx speedup)\n",
                    target, t_opt, t_fifo, t_fifo / t_opt);
    }
    std::printf("instructions executed: optimized %llu, FIFO %llu\n",
                static_cast<unsigned long long>(instr_opt),
                static_cast<unsigned long long>(instr_fifo));
    std::printf("\npaper reference: +7.5%% coverage at fixed budget; "
                "17.7x speedup to the fixed target\n");
    return 0;
}
