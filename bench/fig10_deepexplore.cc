/**
 * @file
 * Fig. 10 reproduction: coverage convergence with deepExplore
 * enabled, disabled (pure fuzzing), and plain FPGA benchmark
 * execution.
 *
 * Paper findings: deepExplore covers up to 1.67x more states than
 * benchmarks alone and ~2.6% more than pure fuzzing; the fuzz-only
 * curve leads early (stage 1 costs time) and is crossed later.
 */

#include "bench_util.hh"

#include "deepexplore/deep_explore.hh"
#include "fuzzer/generator.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;
using namespace turbofuzz::deepexplore;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double budget = cfg.getDouble("budget", 60.0);

    banner("Fig. 10", "Coverage convergence with deepExplore");

    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    const fuzzer::MemoryLayout layout;
    const auto benchmarks = buildAllBenchmarks(layout);

    // deepExplore (stage 1 + stage 2).
    double stage2_at = -1.0;
    TimeSeries dex_series("deepExplore");
    {
        DeepExploreOptions dopts;
        dopts.fuzzer = turboFuzzOptions(seed);
        auto gen = std::make_unique<DeepExploreGenerator>(dopts, &lib,
                                                          benchmarks);
        auto *gp = gen.get();
        harness::Campaign c(turboFuzzCampaign(seed), std::move(gen));
        while (c.nowSec() < budget) {
            c.runIteration();
            dex_series.record(
                c.nowSec(),
                static_cast<double>(c.coverageMap().totalCovered()));
            if (gp->stage() == 2 && stage2_at < 0)
                stage2_at = c.nowSec();
        }
    }

    // Pure fuzzing (deepExplore disabled).
    TimeSeries fuzz_series("fuzz-only");
    {
        harness::Campaign c(turboFuzzCampaign(seed),
                            std::make_unique<fuzzer::TurboFuzzGenerator>(
                                turboFuzzOptions(seed), &lib));
        fuzz_series = c.run(budget);
    }

    // FPGA benchmark execution without fuzzing. The programs are
    // deterministic, so coverage saturates after a few runs; stop
    // early once stagnant and hold the series flat to the budget.
    TimeSeries bench_series("benchmark-only");
    {
        harness::CampaignOptions opts;
        opts.timing = soc::benchmarkFpgaProfile();
        opts.seed = seed;
        harness::Campaign c(opts, std::make_unique<BenchmarkRunner>(
                                      benchmarks, layout));
        unsigned stagnant = 0;
        while (c.nowSec() < budget && stagnant < 6) {
            const auto r = c.runIteration();
            stagnant = (r.newCoverage == 0) ? stagnant + 1 : 0;
            bench_series.record(
                c.nowSec(),
                static_cast<double>(c.coverageMap().totalCovered()));
        }
        if (c.nowSec() < budget) {
            bench_series.record(
                budget,
                static_cast<double>(c.coverageMap().totalCovered()));
        }
    }

    std::printf("\ndeepExplore (stage 2 begins at %.2f s):\n",
                stage2_at);
    printSeries(dex_series);
    std::printf("\nfuzz-only:\n");
    printSeries(fuzz_series);
    std::printf("\nbenchmark-only:\n");
    printSeries(bench_series);

    const double dex = dex_series.last();
    const double fz = fuzz_series.last();
    const double bm = bench_series.last();
    std::printf("\nfinal coverage: deepExplore %.0f, fuzz-only %.0f, "
                "benchmark-only %.0f\n",
                dex, fz, bm);
    std::printf("deepExplore / benchmark-only = %.2fx (paper: up to "
                "1.67x)\n",
                dex / bm);
    std::printf("deepExplore / fuzz-only      = %+.1f%% (paper: "
                "+2.6%%)\n",
                100.0 * (dex / fz - 1.0));

    // Crossover between fuzz-only and deepExplore.
    double crossover = -1.0;
    for (const auto &s : dex_series.samples()) {
        if (s.timeSec > 2.0 &&
            s.value >= fuzz_series.valueAt(s.timeSec)) {
            crossover = s.timeSec;
            break;
        }
    }
    std::printf("crossover at ~%.1f s (paper: ~22 s on the 1-hour "
                "budget)\n",
                crossover);
    return 0;
}
