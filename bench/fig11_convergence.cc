/**
 * @file
 * Fig. 11 reproduction: coverage convergence of TurboFuzz (1000 and
 * 4000 instructions per iteration) versus Cascade and DifuzzRTL.
 *
 * Paper findings: larger iterations help TurboFuzz by up to 1.11x;
 * TurboFuzz beats Cascade by 1.26-1.31x and DifuzzRTL by 1.64-2.23x
 * at matched budgets, and reaches fixed coverage targets orders of
 * magnitude sooner (35,000 points in 14 s vs Cascade's 3,893 s).
 */

#include "bench_util.hh"

#include "baselines/cascade.hh"
#include "baselines/difuzzrtl.hh"
#include "fuzzer/generator.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double budget = cfg.getDouble("budget", 80.0);

    banner("Fig. 11",
           "Coverage convergence: TurboFuzz vs Cascade vs DifuzzRTL");

    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();

    TimeSeries tf4000, tf1000, cascade, difuzz;
    {
        harness::Campaign c(turboFuzzCampaign(seed),
                            std::make_unique<fuzzer::TurboFuzzGenerator>(
                                turboFuzzOptions(seed, 4000), &lib));
        tf4000 = c.run(budget);
    }
    {
        harness::Campaign c(turboFuzzCampaign(seed),
                            std::make_unique<fuzzer::TurboFuzzGenerator>(
                                turboFuzzOptions(seed, 1000), &lib));
        tf1000 = c.run(budget);
    }
    {
        harness::Campaign c(
            softwareCampaign(seed, soc::cascadeProfile()),
            std::make_unique<baselines::CascadeGenerator>(seed, &lib));
        cascade = c.run(budget);
    }
    {
        harness::Campaign c(
            softwareCampaign(seed, soc::difuzzRtlSwProfile()),
            std::make_unique<baselines::DifuzzRtlGenerator>(seed, &lib));
        difuzz = c.run(budget);
    }

    std::printf("\nTurboFuzz (4000 instr/iter):\n");
    printSeries(tf4000, 8);
    std::printf("\nTurboFuzz (1000 instr/iter):\n");
    printSeries(tf1000, 8);
    std::printf("\nCascade:\n");
    printSeries(cascade, 8);
    std::printf("\nDifuzzRTL:\n");
    printSeries(difuzz, 8);

    // Coverage ratios at matched checkpoints.
    std::printf("\ncoverage ratios over time:\n");
    std::printf("  %-10s %12s %12s %12s\n", "time (s)", "TF/Cascade",
                "TF/DifuzzRTL", "TF4000/TF1000");
    for (double frac : {0.25, 0.5, 1.0}) {
        const double t = budget * frac;
        const double tf = tf4000.valueAt(t);
        const double tf1 = tf1000.valueAt(t);
        const double ca = cascade.valueAt(t);
        const double dr = difuzz.valueAt(t);
        std::printf("  %-10.0f %12.2f %12.2f %12.2f\n", t,
                    ca > 0 ? tf / ca : 0.0, dr > 0 ? tf / dr : 0.0,
                    tf1 > 0 ? tf / tf1 : 0.0);
    }

    // Time-to-target speedups.
    const double target = 0.8 * cascade.last();
    const double t_tf = tf4000.timeToReach(target);
    const double t_ca = cascade.timeToReach(target);
    const double t_dr = difuzz.timeToReach(target);
    std::printf("\ntime to %.0f coverage points:\n", target);
    std::printf("  TurboFuzz %.1f s, Cascade %.1f s (%.0fx), "
                "DifuzzRTL %s\n",
                t_tf, t_ca, t_ca > 0 && t_tf > 0 ? t_ca / t_tf : 0.0,
                t_dr > 0 ? (TablePrinter::num(t_dr, 1) + " s").c_str()
                         : "never");

    std::printf("\npaper reference: 1.26-1.31x over Cascade, "
                "1.64-2.23x over DifuzzRTL, 278x to the 35,000-point "
                "target\n");
    return 0;
}
