/**
 * @file
 * Fleet scaling bench: iterations/sec and merged coverage for
 * 1/2/4/8-shard fleets on the same per-shard simulated budget.
 *
 * This is the reproduction's stand-in for the paper's multi-board
 * scale-out claim: each shard models one FPGA running the full
 * on-fabric loop; the host merges coverage and exchanges top seeds
 * once per epoch. Expect merged coverage to grow with shard count
 * (diverse RNG streams explore different corners) while per-shard
 * iteration rate stays flat (shards never block each other inside an
 * epoch).
 *
 * Emits BENCH_fleet_scaling.json with one coverage trajectory per
 * fleet size plus the scalar throughput metrics.
 *
 * Host-parallel efficiency: shards-N-host-efficiency is
 * host1 * N / hostN — the host speedup over running the N shards'
 * work at serialized 1-shard cost. On an ideal N-core host the
 * shards overlap fully (hostN == host1) and the value approaches N;
 * on a single core the shards time-slice (hostN == N * host1) and
 * it sits near 1; it drops below the host's natural level when the
 * barrier path adds per-epoch host overhead that N independent runs
 * would not pay. CI gates this metric against the committed
 * baseline via tools/bench_regress.py --mode metrics — baseline and
 * current come from the same runner class and bench arguments, so a
 * barrier-path regression shows up as a relative drop rather than
 * hiding inside absolute wall-clock noise. The per-epoch
 * barrier-ns/merge-ns series break such a drop down to the barrier
 * phase that caused it.
 */

#include "bench_util.hh"

#include <algorithm>

#include "common/fleet_config.hh"
#include "fleet/orchestrator.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const double budget = cfg.getDouble("budget", 20.0);
    const double epoch = cfg.getDouble("epoch", 2.0);
    const uint64_t seed =
        static_cast<uint64_t>(cfg.getInt("seed", 1));
    const int repeats = static_cast<int>(
        std::max<int64_t>(1, cfg.getInt("repeats", 1)));

    banner("Fleet scaling",
           "merged coverage and throughput vs shard count");

    const isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    JsonResult json("fleet_scaling");
    json.meta("budget_sec", budget);
    json.meta("epoch_sec", epoch);
    json.meta("seed", static_cast<double>(seed));
    json.meta("repeats", static_cast<double>(repeats));

    TablePrinter table({"shards", "iters", "iters/sim-s",
                        "exec instr/sim-s", "merged cov",
                        "best shard cov", "host s", "host eff",
                        "barrier-ns", "merge-ns"});

    double host1 = 0.0; // 1-shard host-seconds (efficiency base)
    for (unsigned shards : {1u, 2u, 4u, 8u}) {
        FleetConfig fc;
        fc.fleetSeed = seed;
        fc.shardCount = shards;
        fc.epochSec = epoch;
        fc.budgetSec = budget;
        fc.exchangeTopK =
            static_cast<size_t>(cfg.getInt("top-k", 4));

        harness::CampaignOptions copts;
        copts.timing = soc::turboFuzzProfile();
        fuzzer::FuzzerOptions fopts;
        fopts.instrsPerIteration = static_cast<uint32_t>(
            cfg.getInt("instrs-per-iteration", 4000));

        // Fleet results are deterministic for a fixed config, so
        // every repeat yields identical coverage/throughput; only
        // host timing varies. Report the median-host-time repeat —
        // a single measurement window on a shared runner swings
        // ±20% under transient load, which would make the CI
        // efficiency gate flaky (CI runs --repeats=5).
        std::vector<fleet::FleetResult> runs;
        runs.reserve(static_cast<size_t>(repeats));
        for (int rep = 0; rep < repeats; ++rep) {
            fleet::FleetOrchestrator orch(fc, copts, fopts, &lib);
            runs.push_back(orch.run());
        }
        std::sort(runs.begin(), runs.end(),
                  [](const fleet::FleetResult &a,
                     const fleet::FleetResult &b) {
                      return a.hostSeconds < b.hostSeconds;
                  });
        const fleet::FleetResult &r = runs[runs.size() / 2];

        double best_shard = 0.0;
        for (const TimeSeries &s : r.shardCoverage)
            best_shard = std::max(best_shard, s.last());

        const double iter_rate =
            static_cast<double>(r.totals.iterations) / budget;
        const double exec_rate =
            static_cast<double>(r.totals.executedInstrs) / budget;

        if (shards == 1)
            host1 = r.hostSeconds;
        const double efficiency =
            r.hostSeconds > 0.0
                ? host1 * static_cast<double>(shards) /
                      r.hostSeconds
                : 0.0;

        // Per-epoch barrier timing: the series carry every epoch (x =
        // epoch deadline in simulated seconds, y = host nanoseconds);
        // the table shows the totals.
        uint64_t barrier_total = 0, merge_total = 0;
        TimeSeries barrier_series("barrier-ns");
        TimeSeries merge_series("merge-ns");
        for (size_t e = 0; e < r.epochBarrierNs.size(); ++e) {
            const double t =
                fc.epochDeadline(static_cast<unsigned>(e));
            barrier_total += r.epochBarrierNs[e];
            barrier_series.record(
                t, static_cast<double>(r.epochBarrierNs[e]));
            if (e < r.epochMergeNs.size()) {
                merge_total += r.epochMergeNs[e];
                merge_series.record(
                    t, static_cast<double>(r.epochMergeNs[e]));
            }
        }

        table.addRow({TablePrinter::integer(shards),
                      TablePrinter::integer(r.totals.iterations),
                      TablePrinter::num(iter_rate),
                      TablePrinter::num(exec_rate),
                      TablePrinter::integer(r.mergedFinalCoverage),
                      TablePrinter::num(best_shard, 0),
                      TablePrinter::num(r.hostSeconds, 3),
                      TablePrinter::num(efficiency, 3),
                      TablePrinter::integer(barrier_total),
                      TablePrinter::integer(merge_total)});

        const std::string tag =
            "shards-" + std::to_string(shards);
        json.series(tag + "-coverage", r.mergedCoverage);
        json.series(tag + "-throughput", r.throughput);
        json.series(tag + "-barrier-ns", barrier_series);
        json.series(tag + "-merge-ns", merge_series);
        json.metric(tag + "-iters-per-sim-sec", iter_rate);
        json.metric(tag + "-exec-instr-per-sim-sec", exec_rate);
        json.metric(tag + "-merged-coverage",
                    static_cast<double>(r.mergedFinalCoverage));
        json.metric(tag + "-host-sec", r.hostSeconds);
        json.metric(tag + "-host-efficiency", efficiency);
        json.metric(tag + "-barrier-ns",
                    static_cast<double>(barrier_total));
        json.metric(tag + "-merge-ns",
                    static_cast<double>(merge_total));
    }

    table.print();
    json.write();
    return 0;
}
