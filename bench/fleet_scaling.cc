/**
 * @file
 * Fleet scaling bench: iterations/sec and merged coverage for
 * 1/2/4/8-shard fleets on the same per-shard simulated budget.
 *
 * This is the reproduction's stand-in for the paper's multi-board
 * scale-out claim: each shard models one FPGA running the full
 * on-fabric loop; the host merges coverage and exchanges top seeds
 * once per epoch. Expect merged coverage to grow with shard count
 * (diverse RNG streams explore different corners) while per-shard
 * iteration rate stays flat (shards never block each other inside an
 * epoch).
 *
 * Emits BENCH_fleet_scaling.json with one coverage trajectory per
 * fleet size plus the scalar throughput metrics.
 */

#include "bench_util.hh"

#include "common/fleet_config.hh"
#include "fleet/orchestrator.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const double budget = cfg.getDouble("budget", 20.0);
    const double epoch = cfg.getDouble("epoch", 2.0);
    const uint64_t seed =
        static_cast<uint64_t>(cfg.getInt("seed", 1));

    banner("Fleet scaling",
           "merged coverage and throughput vs shard count");

    const isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    JsonResult json("fleet_scaling");
    json.meta("budget_sec", budget);
    json.meta("epoch_sec", epoch);
    json.meta("seed", static_cast<double>(seed));

    TablePrinter table({"shards", "iters", "iters/sim-s",
                        "exec instr/sim-s", "merged cov",
                        "best shard cov", "host s"});

    for (unsigned shards : {1u, 2u, 4u, 8u}) {
        FleetConfig fc;
        fc.fleetSeed = seed;
        fc.shardCount = shards;
        fc.epochSec = epoch;
        fc.budgetSec = budget;
        fc.exchangeTopK =
            static_cast<size_t>(cfg.getInt("top-k", 4));

        harness::CampaignOptions copts;
        copts.timing = soc::turboFuzzProfile();
        fuzzer::FuzzerOptions fopts;
        fopts.instrsPerIteration = static_cast<uint32_t>(
            cfg.getInt("instrs-per-iteration", 4000));

        fleet::FleetOrchestrator orch(fc, copts, fopts, &lib);
        const fleet::FleetResult r = orch.run();

        double best_shard = 0.0;
        for (const TimeSeries &s : r.shardCoverage)
            best_shard = std::max(best_shard, s.last());

        const double iter_rate =
            static_cast<double>(r.totals.iterations) / budget;
        const double exec_rate =
            static_cast<double>(r.totals.executedInstrs) / budget;

        table.addRow({TablePrinter::integer(shards),
                      TablePrinter::integer(r.totals.iterations),
                      TablePrinter::num(iter_rate),
                      TablePrinter::num(exec_rate),
                      TablePrinter::integer(r.mergedFinalCoverage),
                      TablePrinter::num(best_shard, 0),
                      TablePrinter::num(r.hostSeconds, 3)});

        const std::string tag =
            "shards-" + std::to_string(shards);
        json.series(tag + "-coverage", r.mergedCoverage);
        json.series(tag + "-throughput", r.throughput);
        json.metric(tag + "-iters-per-sim-sec", iter_rate);
        json.metric(tag + "-exec-instr-per-sim-sec", exec_rate);
        json.metric(tag + "-merged-coverage",
                    static_cast<double>(r.mergedFinalCoverage));
        json.metric(tag + "-host-sec", r.hostSeconds);
    }

    table.print();
    json.write();
    return 0;
}
