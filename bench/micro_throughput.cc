/**
 * @file
 * Microbenchmarks (google-benchmark): throughput of the hot
 * primitives — LFSR stepping, instruction encode/decode, block
 * generation, mutation, coverage-index computation, ISS stepping and
 * full lockstep iterations.
 */

#include <benchmark/benchmark.h>

#include "common/lfsr.hh"
#include "coverage/coverage_map.hh"
#include "fuzzer/generator.hh"
#include "harness/campaign.hh"
#include "isa/encoding.hh"
#include "rtl/cores.hh"
#include "rtl/driver.hh"
#include "triage/replay.hh"

using namespace turbofuzz;

namespace
{

void
BM_GaloisLfsrStep(benchmark::State &state)
{
    GaloisLfsr lfsr(64, 0xBEEF);
    for (auto _ : state)
        benchmark::DoNotOptimize(lfsr.step());
}
BENCHMARK(BM_GaloisLfsrStep);

void
BM_EncodeDecode(benchmark::State &state)
{
    isa::Operands o;
    o.rd = 10;
    o.rs1 = 11;
    o.rs2 = 12;
    uint32_t word = isa::encode(isa::Opcode::Add, o);
    for (auto _ : state) {
        benchmark::DoNotOptimize(isa::decode(word));
        word ^= 1u << 20; // vary rs2 field
        word ^= 1u << 20;
    }
}
BENCHMARK(BM_EncodeDecode);

void
BM_BlockGeneration(benchmark::State &state)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    fuzzer::MemoryLayout layout;
    fuzzer::BlockBuilder builder(layout, &lib, fuzzer::GenProbs{});
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(builder.buildRandomBlock(rng));
}
BENCHMARK(BM_BlockGeneration);

void
BM_OperandMutation(benchmark::State &state)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    fuzzer::MemoryLayout layout;
    fuzzer::BlockBuilder builder(layout, &lib, fuzzer::GenProbs{});
    Rng rng(1);
    fuzzer::SeedBlock block = builder.buildRandomBlock(rng);
    for (auto _ : state) {
        builder.mutateOperands(block, rng);
        benchmark::DoNotOptimize(block);
    }
}
BENCHMARK(BM_OperandMutation);

void
BM_CoverageIndex(benchmark::State &state)
{
    auto design = rtl::buildRocketLike();
    coverage::DesignInstrumentation instr(
        design.get(), coverage::Scheme::Optimized, 15, 1);
    for (auto _ : state) {
        uint64_t acc = 0;
        for (const auto &m : instr.modules())
            acc ^= m.computeIndex();
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_CoverageIndex);

void
BM_IssStep(benchmark::State &state)
{
    soc::Memory mem;
    // A small loop: addi x1, x1, 1 ; jal x0, -4.
    isa::Operands a;
    a.rd = 1;
    a.rs1 = 1;
    a.imm = 1;
    mem.write32(0x1000, isa::encode(isa::Opcode::Addi, a));
    isa::Operands j;
    j.rd = 0;
    j.imm = -4;
    mem.write32(0x1004, isa::encode(isa::Opcode::Jal, j));
    core::Iss::Options o;
    o.resetPc = 0x1000;
    core::Iss iss(&mem, o);
    for (auto _ : state)
        benchmark::DoNotOptimize(iss.step());
}
BENCHMARK(BM_IssStep);

/**
 * Decode-cache margin: per-step cost with steady-state hits (arg 1)
 * vs the cache disabled so every step pays a full isa::decode
 * (arg 0). A 256-instruction straight-line loop re-executed from the
 * same PCs, so the cached leg runs at ~100% hit rate after lap one.
 */
void
BM_DecodeCache(benchmark::State &state)
{
    soc::Memory mem;
    constexpr uint64_t pc0 = 0x1000;
    constexpr int n = 256;
    isa::Operands a;
    a.rd = 1;
    a.rs1 = 1;
    a.imm = 1;
    for (int i = 0; i < n; ++i)
        mem.write32(pc0 + 4 * i, isa::encode(isa::Opcode::Addi, a));
    isa::Operands j;
    j.rd = 0;
    j.imm = -4 * n;
    mem.write32(pc0 + 4 * n, isa::encode(isa::Opcode::Jal, j));
    core::Iss::Options o;
    o.resetPc = pc0;
    o.decodeCache = state.range(0) != 0;
    core::Iss iss(&mem, o);
    for (auto _ : state)
        benchmark::DoNotOptimize(iss.step());
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(iss.decodeCacheEnabled() ? "cache-hit"
                                            : "cold-decode");
}
BENCHMARK(BM_DecodeCache)->Arg(0)->Arg(1);

void
BM_FullIteration(benchmark::State &state)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    auto opts = harness::CampaignOptions{};
    opts.timing = soc::turboFuzzProfile();
    fuzzer::FuzzerOptions fopts;
    fopts.instrsPerIteration = 1000;
    harness::Campaign campaign(
        opts,
        std::make_unique<fuzzer::TurboFuzzGenerator>(fopts, &lib));
    for (auto _ : state)
        benchmark::DoNotOptimize(campaign.runIteration());
}
BENCHMARK(BM_FullIteration)->Unit(benchmark::kMicrosecond);

/**
 * The acceptance benchmark of the batched execution engine: full
 * campaign iterations at a given engine batch size. items_per_second
 * reports committed instructions per host second — the engine
 * contract requires batch >= 64 to beat batch=1 (the classic
 * lockstep loop) by >= 1.3x while producing bit-identical results
 * (tests/engine/).
 */
void
BM_EngineIterationBatch(benchmark::State &state)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    auto opts = harness::CampaignOptions{};
    opts.timing = soc::turboFuzzProfile();
    opts.batchSize = static_cast<uint64_t>(state.range(0));
    fuzzer::FuzzerOptions fopts;
    fopts.instrsPerIteration = 1000;
    harness::Campaign campaign(
        opts,
        std::make_unique<fuzzer::TurboFuzzGenerator>(fopts, &lib));
    uint64_t commits = 0;
    for (auto _ : state) {
        const harness::IterationResult r = campaign.runIteration();
        commits += r.executedTotal;
    }
    state.SetItemsProcessed(static_cast<int64_t>(commits));
}
BENCHMARK(BM_EngineIterationBatch)
    ->Arg(1)
    ->Arg(7)
    ->Arg(64)
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

/**
 * Per-stage engine time breakdown via the telemetry stage
 * instruments: full campaign iterations with stageTiming enabled, at
 * batch 1 (the classic lockstep loop) and batch 64 (the default).
 * The reported counters are the share of engine time each pipeline
 * stage consumed (dut/ref/diff/sweep, in percent) — the breakdown
 * behind the batching speedup: larger batches amortize per-batch
 * stage entry costs and shift time into the fused sweep.
 * items_per_second reports committed instructions per host second
 * *with timing on*, i.e. the stage-timing overhead is visible as the
 * gap to BM_EngineIterationBatch at the same batch size.
 */
void
BM_EngineStageBreakdown(benchmark::State &state)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    auto opts = harness::CampaignOptions{};
    opts.timing = soc::turboFuzzProfile();
    opts.batchSize = static_cast<uint64_t>(state.range(0));
    opts.stageTiming = true;
    fuzzer::FuzzerOptions fopts;
    fopts.instrsPerIteration = 1000;
    harness::Campaign campaign(
        opts,
        std::make_unique<fuzzer::TurboFuzzGenerator>(fopts, &lib));
    uint64_t commits = 0;
    for (auto _ : state) {
        const harness::IterationResult r = campaign.runIteration();
        commits += r.executedTotal;
    }
    state.SetItemsProcessed(static_cast<int64_t>(commits));

    const telemetry::MetricsSnapshot snap =
        campaign.metrics().snapshot();
    const double dut =
        static_cast<double>(snap.counterValue("engine.batch.dut_ns"));
    const double ref =
        static_cast<double>(snap.counterValue("engine.batch.ref_ns"));
    const double diff = static_cast<double>(
        snap.counterValue("engine.batch.diff_ns"));
    const double sweep = static_cast<double>(
        snap.counterValue("engine.batch.sweep_ns"));
    const double total = dut + ref + diff + sweep;
    if (total > 0.0) {
        state.counters["dut_pct"] = 100.0 * dut / total;
        state.counters["ref_pct"] = 100.0 * ref / total;
        state.counters["diff_pct"] = 100.0 * diff / total;
        state.counters["sweep_pct"] = 100.0 * sweep / total;
    }
}
BENCHMARK(BM_EngineStageBreakdown)
    ->Arg(1)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

/**
 * The acceptance benchmark of snapshot warm-start: full campaign
 * iterations with (arg=1) and without (arg=0) the post-preamble
 * snapshot restore. items_per_second reports committed instructions
 * per host second; warm start must beat cold start while producing
 * bit-identical campaign results (tests/engine/ warm equivalence
 * suite). The margin scales with the preamble share of the
 * iteration — the constant prefix is executed and lockstep-checked
 * on every cold iteration, and only swept on warm ones.
 */
void
BM_WarmStartIteration(benchmark::State &state)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    auto opts = harness::CampaignOptions{};
    opts.timing = soc::turboFuzzProfile();
    opts.warmStart = state.range(0) != 0;
    fuzzer::FuzzerOptions fopts;
    fopts.instrsPerIteration = 1000;
    harness::Campaign campaign(
        opts,
        std::make_unique<fuzzer::TurboFuzzGenerator>(fopts, &lib));
    uint64_t commits = 0;
    for (auto _ : state) {
        const harness::IterationResult r = campaign.runIteration();
        commits += r.executedTotal;
    }
    state.SetItemsProcessed(static_cast<int64_t>(commits));
    state.SetLabel(opts.warmStart ? "warm" : "cold");
}
BENCHMARK(BM_WarmStartIteration)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

/**
 * Provenance observer overhead (docs/provenance.md): full campaign
 * iterations at the default batch size (64) with first-hit
 * attribution off (arg=0) and on (arg=1). On the hot path
 * provenance costs one null-pointer test per newly-admitted
 * coverage point when off; when on it adds a ledger insert per
 * *first* hit plus a few forensics-ring pushes per iteration —
 * amortizing toward the pointer test as coverage saturates.
 * items_per_second reports committed instructions per host second;
 * bench_regress.py holds both arms within the 10% gate.
 */
void
BM_ProvenanceOverhead(benchmark::State &state)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    auto opts = harness::CampaignOptions{};
    opts.timing = soc::turboFuzzProfile();
    opts.batchSize = 64;
    opts.provenance = state.range(0) != 0;
    fuzzer::FuzzerOptions fopts;
    fopts.instrsPerIteration = 1000;
    harness::Campaign campaign(
        opts,
        std::make_unique<fuzzer::TurboFuzzGenerator>(fopts, &lib));
    uint64_t commits = 0;
    for (auto _ : state) {
        const harness::IterationResult r = campaign.runIteration();
        commits += r.executedTotal;
    }
    state.SetItemsProcessed(static_cast<int64_t>(commits));
    state.SetLabel(opts.provenance ? "provenance" : "baseline");
}
BENCHMARK(BM_ProvenanceOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

/**
 * Warm-start on the triage replay path: cold ReplayHarness::replay
 * (full re-materialization + preamble re-execution per replay)
 * versus the warm ReplayHarness::Context the minimizer uses (base
 * image copy + post-prefix snapshot restore). Replay carries no
 * coverage/RTL hooks, so the preamble share — and the warm margin —
 * is larger than in full campaign iterations; this is the cost that
 * multiplies by ~130 ddmin replays per minimized bug.
 */
void
BM_WarmStartReplay(benchmark::State &state)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    static const triage::Reproducer repro = [] {
        harness::CampaignOptions opts;
        opts.timing = soc::turboFuzzProfile();
        opts.coreKind = core::CoreKind::Cva6;
        opts.bugs = core::BugSet::single(core::BugId::C5);
        fuzzer::FuzzerOptions fopts;
        fopts.instrsPerIteration = 1000;
        harness::Campaign campaign(
            opts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                      fopts, &lib));
        for (int i = 0; i < 5000 && campaign.reproducers().empty();
             ++i)
            campaign.runIteration();
        if (campaign.reproducers().empty())
            std::abort(); // C5 fires within the budget by construction
        return campaign.reproducers().front();
    }();

    const bool warm = state.range(0) != 0;
    const triage::ReplayHarness::Context ctx(repro);
    uint64_t commits = 0;
    for (auto _ : state) {
        const triage::ReplayResult r =
            warm ? ctx.replay(repro)
                 : triage::ReplayHarness::replay(repro);
        benchmark::DoNotOptimize(r.mismatched);
        commits += r.executed;
    }
    state.SetItemsProcessed(static_cast<int64_t>(commits));
    state.SetLabel(warm ? "warm" : "cold");
}
BENCHMARK(BM_WarmStartReplay)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
