/**
 * @file
 * Microbenchmarks (google-benchmark): throughput of the hot
 * primitives — LFSR stepping, instruction encode/decode, block
 * generation, mutation, coverage-index computation, ISS stepping and
 * full lockstep iterations.
 */

#include <benchmark/benchmark.h>

#include "common/lfsr.hh"
#include "coverage/coverage_map.hh"
#include "fuzzer/generator.hh"
#include "harness/campaign.hh"
#include "isa/encoding.hh"
#include "rtl/cores.hh"
#include "rtl/driver.hh"

using namespace turbofuzz;

namespace
{

void
BM_GaloisLfsrStep(benchmark::State &state)
{
    GaloisLfsr lfsr(64, 0xBEEF);
    for (auto _ : state)
        benchmark::DoNotOptimize(lfsr.step());
}
BENCHMARK(BM_GaloisLfsrStep);

void
BM_EncodeDecode(benchmark::State &state)
{
    isa::Operands o;
    o.rd = 10;
    o.rs1 = 11;
    o.rs2 = 12;
    uint32_t word = isa::encode(isa::Opcode::Add, o);
    for (auto _ : state) {
        benchmark::DoNotOptimize(isa::decode(word));
        word ^= 1u << 20; // vary rs2 field
        word ^= 1u << 20;
    }
}
BENCHMARK(BM_EncodeDecode);

void
BM_BlockGeneration(benchmark::State &state)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    fuzzer::MemoryLayout layout;
    fuzzer::BlockBuilder builder(layout, &lib, fuzzer::GenProbs{});
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(builder.buildRandomBlock(rng));
}
BENCHMARK(BM_BlockGeneration);

void
BM_OperandMutation(benchmark::State &state)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    fuzzer::MemoryLayout layout;
    fuzzer::BlockBuilder builder(layout, &lib, fuzzer::GenProbs{});
    Rng rng(1);
    fuzzer::SeedBlock block = builder.buildRandomBlock(rng);
    for (auto _ : state) {
        builder.mutateOperands(block, rng);
        benchmark::DoNotOptimize(block);
    }
}
BENCHMARK(BM_OperandMutation);

void
BM_CoverageIndex(benchmark::State &state)
{
    auto design = rtl::buildRocketLike();
    coverage::DesignInstrumentation instr(
        design.get(), coverage::Scheme::Optimized, 15, 1);
    for (auto _ : state) {
        uint64_t acc = 0;
        for (const auto &m : instr.modules())
            acc ^= m.computeIndex();
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_CoverageIndex);

void
BM_IssStep(benchmark::State &state)
{
    soc::Memory mem;
    // A small loop: addi x1, x1, 1 ; jal x0, -4.
    isa::Operands a;
    a.rd = 1;
    a.rs1 = 1;
    a.imm = 1;
    mem.write32(0x1000, isa::encode(isa::Opcode::Addi, a));
    isa::Operands j;
    j.rd = 0;
    j.imm = -4;
    mem.write32(0x1004, isa::encode(isa::Opcode::Jal, j));
    core::Iss::Options o;
    o.resetPc = 0x1000;
    core::Iss iss(&mem, o);
    for (auto _ : state)
        benchmark::DoNotOptimize(iss.step());
}
BENCHMARK(BM_IssStep);

void
BM_FullIteration(benchmark::State &state)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    auto opts = harness::CampaignOptions{};
    opts.timing = soc::turboFuzzProfile();
    fuzzer::FuzzerOptions fopts;
    fopts.instrsPerIteration = 1000;
    harness::Campaign campaign(
        opts,
        std::make_unique<fuzzer::TurboFuzzGenerator>(fopts, &lib));
    for (auto _ : state)
        benchmark::DoNotOptimize(campaign.runIteration());
}
BENCHMARK(BM_FullIteration)->Unit(benchmark::kMicrosecond);

/**
 * The acceptance benchmark of the batched execution engine: full
 * campaign iterations at a given engine batch size. items_per_second
 * reports committed instructions per host second — the engine
 * contract requires batch >= 64 to beat batch=1 (the classic
 * lockstep loop) by >= 1.3x while producing bit-identical results
 * (tests/engine/).
 */
void
BM_EngineIterationBatch(benchmark::State &state)
{
    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    auto opts = harness::CampaignOptions{};
    opts.timing = soc::turboFuzzProfile();
    opts.batchSize = static_cast<uint64_t>(state.range(0));
    fuzzer::FuzzerOptions fopts;
    fopts.instrsPerIteration = 1000;
    harness::Campaign campaign(
        opts,
        std::make_unique<fuzzer::TurboFuzzGenerator>(fopts, &lib));
    uint64_t commits = 0;
    for (auto _ : state) {
        const harness::IterationResult r = campaign.runIteration();
        commits += r.executedTotal;
    }
    state.SetItemsProcessed(static_cast<int64_t>(commits));
}
BENCHMARK(BM_EngineIterationBatch)
    ->Arg(1)
    ->Arg(7)
    ->Arg(64)
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
