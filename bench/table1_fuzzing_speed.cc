/**
 * @file
 * Table I reproduction: fuzzing speed (iterations per second) and
 * executed instructions per second for DifuzzRTL-with-FPGA, Cascade
 * and TurboFuzz.
 *
 * Paper values: 4.13 Hz / 728 i/s, 12.80 Hz / 2489 i/s,
 * 75.12 Hz / 309,676 i/s.
 */

#include "bench_util.hh"

#include "baselines/cascade.hh"
#include "baselines/difuzzrtl.hh"
#include "fuzzer/generator.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

namespace
{

struct Row
{
    std::string name;
    double hz;
    double instrPerSec;
};

/** Measure a campaign's steady-state rates over @p budget sim-secs. */
Row
measure(harness::Campaign &campaign, double budget, double startup)
{
    campaign.run(budget);
    const double span = campaign.nowSec() - startup;
    Row r;
    r.name = std::string(campaign.generator().name());
    r.hz = static_cast<double>(campaign.iterations()) / span;
    // Table I counts instructions executed from the generated test
    // (the fuzzing region), matching the 19.3%-executed analysis.
    r.instrPerSec = static_cast<double>(
                        campaign.executedInstructions()) *
                    campaign.prevalence() / span;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double budget = cfg.getDouble("budget", 30.0);

    banner("Table I", "Fuzzing Performance Comparison");

    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    std::vector<Row> rows;

    {
        auto opts = softwareCampaign(seed, soc::difuzzRtlFpgaProfile());
        harness::Campaign c(
            opts,
            std::make_unique<baselines::DifuzzRtlGenerator>(seed, &lib));
        rows.push_back(measure(c, budget * 2, 1.0));
        rows.back().name = "DifuzzRTL (with FPGA)";
    }
    {
        auto opts = softwareCampaign(seed, soc::cascadeProfile());
        harness::Campaign c(
            opts,
            std::make_unique<baselines::CascadeGenerator>(seed, &lib));
        rows.push_back(measure(c, budget * 2, 2.0));
    }
    {
        auto opts = turboFuzzCampaign(seed);
        harness::Campaign c(opts,
                            std::make_unique<fuzzer::TurboFuzzGenerator>(
                                turboFuzzOptions(seed), &lib));
        rows.push_back(measure(c, budget, 1.0));
    }

    TablePrinter table({"Fuzzer", "Fuzzing Speed (Hz)",
                        "Executed Inst per Second"});
    for (const Row &r : rows) {
        table.addRow({r.name, TablePrinter::num(r.hz, 2),
                      TablePrinter::integer(
                          static_cast<uint64_t>(r.instrPerSec))});
    }
    table.print();

    std::printf("\npaper reference: 4.13/728, 12.80/2489, "
                "75.12/309676\n");
    return 0;
}
