/**
 * @file
 * Table II reproduction: bug identification performance.
 *
 * For every catalog bug (CVA6 C1-C10, BOOM B1-B2, Rocket R1) the
 * bench measures the simulated time until the first architecturally
 * visible divergence is detected by:
 *  - SW: a software fuzzer flow (DifuzzRTL-style generation, RTL
 *    simulation speed, coarse end-of-iteration checking), and
 *  - HW: TurboFuzz on the fabric with instruction-level lockstep
 *    checking.
 *
 * Paper: acceleration ratios 17.98x - 571.69x, geometric means 194x
 * (CVA6) and 317.7x (BOOM).
 */

#include "bench_util.hh"

#include "baselines/difuzzrtl.hh"
#include "fuzzer/generator.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

namespace
{

/** Run until the first mismatch; returns simulated seconds (or -1). */
double
timeToBug(harness::Campaign &campaign, double cap_sec)
{
    while (campaign.nowSec() < cap_sec) {
        const auto r = campaign.runIteration();
        if (r.mismatch)
            return campaign.nowSec();
    }
    return -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double hw_cap = cfg.getDouble("hw-cap", 60.0);
    const double sw_cap = cfg.getDouble("sw-cap", 3000.0);

    banner("Table II", "Comparison on Bug Identification Performance");

    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();

    TablePrinter table({"Design", "ID", "Bug Description", "SW Time (s)",
                        "HW Time (s)", "Acc. Ratio"});

    std::map<core::CoreKind, std::vector<double>> ratios;

    for (const core::BugInfo &bug : core::allBugs()) {
        // C8's configuration ships with RV64A disabled.
        const bool rv64a = bug.id != core::BugId::C8;

        // SW: DifuzzRTL-style flow, coarse checking.
        double sw_time = -1.0;
        {
            auto opts = softwareCampaign(seed, soc::difuzzRtlSwProfile());
            opts.coreKind = bug.design;
            opts.bugs = core::BugSet::single(bug.id);
            opts.rv64aEnabled = rv64a;
            opts.stopOnMismatch = true;
            harness::Campaign c(
                opts, std::make_unique<baselines::DifuzzRtlGenerator>(
                          seed, &lib));
            sw_time = timeToBug(c, sw_cap);
        }

        // HW: TurboFuzz with per-instruction lockstep checking.
        double hw_time = -1.0;
        {
            auto opts = turboFuzzCampaign(seed);
            opts.coreKind = bug.design;
            opts.bugs = core::BugSet::single(bug.id);
            opts.rv64aEnabled = rv64a;
            opts.stopOnMismatch = true;
            harness::Campaign c(
                opts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                          turboFuzzOptions(seed), &lib));
            hw_time = timeToBug(c, hw_cap);
        }

        std::string ratio_str = "-";
        if (sw_time > 0 && hw_time > 0) {
            const double ratio = sw_time / hw_time;
            ratio_str = TablePrinter::num(ratio, 2);
            ratios[bug.design].push_back(ratio);
        }
        auto fmt = [](double t) {
            return t > 0 ? TablePrinter::num(t, 2) : std::string("n/f");
        };
        table.addRow({std::string(core::coreKindName(bug.design)),
                      std::string(bug.label),
                      std::string(bug.description).substr(0, 46),
                      fmt(sw_time), fmt(hw_time), ratio_str});
    }
    table.print();

    for (const auto &[kind, rs] : ratios) {
        std::printf("geomean acceleration (%s): %.1fx\n",
                    std::string(core::coreKindName(kind)).c_str(),
                    geomean(rs));
    }
    std::printf("\npaper reference: ratios 17.98x-571.69x; geomeans "
                "194x (CVA6), 317.7x (BOOM)\n");
    return 0;
}
