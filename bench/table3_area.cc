/**
 * @file
 * Table III reproduction: FPGA resource usage of the DUT, the
 * TurboFuzzer IP, the full TurboFuzz framework, and vendor ILAs at
 * two trace depths — plus the §VII-G area/fmax sweep over coverage
 * instrumentation widths (cov1/cov2/cov3).
 */

#include "bench_util.hh"

#include "soc/area_model.hh"
#include "soc/ila.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;
using namespace turbofuzz::soc;

namespace
{

std::string
cell(uint64_t used, uint64_t avail)
{
    return TablePrinter::integer(used) + " (" +
           TablePrinter::num(utilPercent(used, avail), 2) + "%)";
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);

    banner("Table III", "Resource Usages of Different Modules");

    const DevicePart part = xczu19eg();
    const FuzzerAreaConfig fuzz_cfg; // cov3 defaults

    const Resources dut = rocketDutResources(15);
    const Resources ip = fuzzerIpResources(fuzz_cfg);
    const Resources fw = turboFuzzResources(fuzz_cfg);
    const Resources ila1 = ilaResources(3000, 1024);
    const Resources ila2 = ilaResources(3000, 65536);

    TablePrinter table({"Resource", "Rocket (DUT)", "Fuzzer IP",
                        "TurboFuzz", "ILA (config1)", "ILA (config2)"});
    table.addRow({"LUTs", cell(dut.luts, part.luts),
                  cell(ip.luts, part.luts), cell(fw.luts, part.luts),
                  cell(ila1.luts, part.luts),
                  cell(ila2.luts, part.luts)});
    table.addRow({"Block RAMs", cell(dut.brams, part.brams),
                  cell(ip.brams, part.brams),
                  cell(fw.brams, part.brams),
                  cell(ila1.brams, part.brams),
                  cell(ila2.brams, part.brams)});
    table.addRow({"Registers", cell(dut.regs, part.regs),
                  cell(ip.regs, part.regs), cell(fw.regs, part.regs),
                  cell(ila1.regs, part.regs),
                  cell(ila2.regs, part.regs)});
    table.print();

    std::printf("\nILA BRAM vs TurboFuzz: config1 %.2fx, config2 "
                "%.2fx (paper: 2.05x, 2.55x)\n",
                static_cast<double>(ila1.brams) /
                    static_cast<double>(fw.brams),
                static_cast<double>(ila2.brams) /
                    static_cast<double>(fw.brams));

    // §VII-G: area and fmax across instrumentation widths.
    std::printf("\ncoverage-width sweep (cov1/cov2/cov3):\n");
    TablePrinter sweep({"Config", "Index bits", "Fuzzer LUTs",
                        "Fuzzer BRAMs", "fmax (MHz)"});
    unsigned cov_id = 1;
    for (unsigned bits : {13u, 14u, 15u}) {
        FuzzerAreaConfig c = fuzz_cfg;
        c.maxStateSizeBits = bits;
        const Resources r = fuzzerIpResources(c);
        sweep.addRow({"cov" + std::to_string(cov_id++),
                      std::to_string(bits),
                      TablePrinter::integer(r.luts),
                      TablePrinter::integer(r.brams),
                      TablePrinter::num(fmaxMHz(bits), 1)});
    }
    sweep.print();
    std::printf("\ncov3 is the shipped configuration; it sustains the "
                "100 MHz fabric clock.\n");
    return 0;
}
