/**
 * @file
 * Table-II-style bug detection *and triage* latency.
 *
 * For every catalog bug the bench runs the on-fabric TurboFuzz flow
 * until the first architecturally visible divergence (the paper's
 * detection latency), then pushes the captured reproducer through the
 * triage pipeline: deterministic replay confirmation, block-level +
 * affiliated-instruction delta debugging, and signature
 * canonicalization. Reported per bug:
 *
 *   - detection latency (simulated seconds),
 *   - replay confirmation (the reproducer re-derives the identical
 *     mismatch standalone),
 *   - stimulus reduction (original -> minimized instruction count),
 *   - triage cost (replays spent; host milliseconds),
 *   - the bug's canonical signature.
 *
 *   ./triage_latency [--seed=N] [--hw-cap=SEC] [--replays=N]
 */

#include "bench_util.hh"

#include <chrono>

#include "fuzzer/generator.hh"
#include "triage/minimizer.hh"
#include "triage/replay.hh"
#include "triage/signature.hh"

using namespace turbofuzz;
using namespace turbofuzz::bench;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double hw_cap = cfg.getDouble("hw-cap", 60.0);
    const uint32_t replays =
        static_cast<uint32_t>(cfg.getInt("replays", 256));

    banner("Triage latency",
           "Detection + replay confirmation + minimization per bug");

    static isa::InstructionLibrary lib = harness::makeDefaultLibrary();
    JsonResult json("triage_latency");
    json.meta("seed", static_cast<double>(seed));
    json.meta("replay_budget", static_cast<double>(replays));

    TablePrinter table({"Design", "ID", "Detect (s)", "Confirmed",
                        "Instrs", "Minimized", "Replays",
                        "Triage (ms)", "Signature"});

    for (const core::BugInfo &bug : core::allBugs()) {
        // C8's configuration ships with RV64A disabled.
        const bool rv64a = bug.id != core::BugId::C8;

        auto opts = turboFuzzCampaign(seed);
        opts.coreKind = bug.design;
        opts.bugs = core::BugSet::single(bug.id);
        opts.rv64aEnabled = rv64a;
        opts.stopOnMismatch = true;
        opts.maxReproducers = 1;
        harness::Campaign campaign(
            opts, std::make_unique<fuzzer::TurboFuzzGenerator>(
                      turboFuzzOptions(seed), &lib));

        double detect = -1.0;
        while (campaign.nowSec() < hw_cap) {
            if (campaign.runIteration().mismatch) {
                detect = campaign.nowSec();
                break;
            }
        }
        if (detect < 0 || campaign.reproducers().empty()) {
            table.addRow({std::string(core::coreKindName(bug.design)),
                          std::string(bug.label), "n/f", "-", "-",
                          "-", "-", "-", "-"});
            continue;
        }

        const triage::Reproducer &r = campaign.reproducers().front();
        const bool deterministic =
            triage::ReplayHarness::verifyDeterministic(r);

        const auto t0 = std::chrono::steady_clock::now();
        const triage::Minimizer minimizer({replays, true});
        const triage::MinimizeResult red = minimizer.minimize(r);
        const double triage_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();

        const triage::BugSignature sig =
            triage::canonicalize(red.minimized);

        table.addRow(
            {std::string(core::coreKindName(bug.design)),
             std::string(bug.label), TablePrinter::num(detect, 2),
             deterministic && red.confirmed ? "yes" : "NO",
             TablePrinter::integer(red.originalInstrs),
             TablePrinter::integer(red.minimizedInstrs),
             TablePrinter::integer(red.replays),
             TablePrinter::num(triage_ms, 1), sig.key()});

        const std::string label(bug.label);
        json.metric(label + ".detect_s", detect);
        json.metric(label + ".original_instrs", red.originalInstrs);
        json.metric(label + ".minimized_instrs",
                    red.minimizedInstrs);
        json.metric(label + ".replays", red.replays);
        json.metric(label + ".triage_ms", triage_ms);
        json.meta(label + ".signature", sig.key());
    }
    table.print();
    std::printf("\npaper context: Table II reports detection only; "
                "triage turns each detection into a deduplicated, "
                "minimal reproducer.\n");
    json.write();
    return 0;
}
