/**
 * @file
 * Bug hunt: differential checking against a buggy CVA6-like core.
 *
 * Injects one of the paper's Table II bugs into the DUT, fuzzes with
 * instruction-level lockstep checking, and on the first mismatch
 * prints the diagnosis and writes a full hardware snapshot that can
 * be reloaded for offline analysis (the StateMover/ENCORE debugging
 * flow).
 *
 * Usage: bug_hunt [--bug=C3] [--seed=N] [--cap=<sim seconds>]
 *                 [--snapshot=/tmp/mismatch.tfsnap]
 */

#include <cstdio>
#include <cstring>

#include "common/config.hh"
#include "common/logging.hh"
#include "harness/campaign.hh"

using namespace turbofuzz;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double cap = cfg.getDouble("cap", 60.0);
    const std::string bug_label = cfg.getString("bug", "C3");
    const std::string snap_path =
        cfg.getString("snapshot", "/tmp/mismatch.tfsnap");

    // Look up the requested bug.
    const core::BugInfo *bug = nullptr;
    for (const auto &b : core::allBugs()) {
        if (bug_label == std::string(b.label))
            bug = &b;
    }
    if (!bug)
        fatal("unknown bug '%s' (use C1..C10, B1, B2, R1)",
              bug_label.c_str());

    std::printf("hunting %s on %s: %s\n",
                std::string(bug->label).c_str(),
                std::string(core::coreKindName(bug->design)).c_str(),
                std::string(bug->description).c_str());

    static isa::InstructionLibrary library =
        harness::makeDefaultLibrary();
    fuzzer::FuzzerOptions fopts;
    fopts.seed = seed;

    harness::CampaignOptions copts;
    copts.coreKind = bug->design;
    copts.bugs = core::BugSet::single(bug->id);
    copts.rv64aEnabled = bug->id != core::BugId::C8;
    copts.timing = soc::turboFuzzProfile();
    copts.stopOnMismatch = true;
    copts.seed = seed;

    harness::Campaign campaign(
        copts,
        std::make_unique<fuzzer::TurboFuzzGenerator>(fopts, &library));

    campaign.run(cap);

    if (!campaign.firstMismatch()) {
        std::printf("no mismatch within %.0f simulated seconds; try "
                    "another seed or a longer cap\n",
                    cap);
        return 1;
    }

    const checker::Mismatch &mm = *campaign.firstMismatch();
    std::printf("\nBUG DETECTED after %.2f simulated seconds "
                "(%llu iterations, %llu instructions):\n",
                campaign.nowSec(),
                static_cast<unsigned long long>(campaign.iterations()),
                static_cast<unsigned long long>(
                    campaign.executedInstructions()));
    std::printf("  %s\n", mm.describe().c_str());

    // Persist the snapshot for offline replay.
    campaign.mismatchSnapshot().saveFile(snap_path);
    std::printf("\nsnapshot (%zu sections) written to %s\n",
                campaign.mismatchSnapshot().sectionCount(),
                snap_path.c_str());

    // Demonstrate reload: the captured DUT state is bit-exact.
    const soc::Snapshot reloaded = soc::Snapshot::loadFile(snap_path);
    std::printf("reloaded snapshot trigger: %s\n",
                reloaded.trigger().c_str());
    return 0;
}
