/**
 * @file
 * Coverage-instrumentation laboratory: build a custom module, run
 * the mux trace-back, instrument it with both §VI schemes, and
 * compare reachability — a miniature of the Fig. 6 analysis on a
 * user-defined design.
 *
 * Usage: coverage_lab [--bits=13]
 */

#include <cstdio>

#include "common/config.hh"
#include "coverage/coverage_map.hh"
#include "coverage/reachability.hh"
#include "rtl/driver.hh"
#include "rtl/module.hh"

using namespace turbofuzz;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const unsigned bits =
        static_cast<unsigned>(cfg.getInt("bits", 13));

    // 1. Build a toy decode unit: a few control registers (one an
    //    FSM with a constrained one-hot domain), wires, muxes, and
    //    one datapath register no select touches.
    rtl::Module design("MyDecodeUnit");
    const uint32_t opcode =
        design.addRegister("opcode", 6, rtl::RegRole::OpClass);
    const uint32_t rd =
        design.addRegister("rd", 5, rtl::RegRole::RdIdx);
    const uint32_t fsm = design.addRegister(
        "issue_fsm", 4, rtl::RegRole::PtwFsm, {1, 2, 4, 8});
    design.addRegister("result", 64, rtl::RegRole::Datapath);

    const uint32_t w_op = design.addWire("op_w", {opcode});
    const uint32_t w_rd = design.addWire("rd_w", {rd});
    const uint32_t w_fsm = design.addWire("fsm_w", {fsm});
    const uint32_t w_comb =
        design.addWire("comb_w", {}, {w_op, w_fsm});

    design.addMux("rf_read_mux", w_rd);
    design.addMux("alu_op_mux", w_comb);
    design.addMux("bypass_mux", w_op);

    // 2. Trace-back: which registers control the muxes?
    std::printf("control registers found by trace-back:\n");
    for (uint32_t r : design.controlRegisters()) {
        const auto &reg = design.registers()[r];
        std::printf("  %-10s width %u%s\n", reg.name.c_str(),
                    reg.width,
                    reg.domain.empty() ? "" : "  (constrained domain)");
    }
    std::printf("total control width: %u bits\n\n",
                design.controlBitWidth());

    // 3. Instrument with both schemes and analyze reachability.
    for (const auto scheme : {coverage::Scheme::Baseline,
                              coverage::Scheme::Optimized}) {
        coverage::DesignInstrumentation di(&design, scheme, bits, 42);
        const auto mods = coverage::analyzeDesign(di);
        const char *name = scheme == coverage::Scheme::Baseline
                               ? "baseline "
                               : "optimized";
        for (const auto &m : mods) {
            std::printf("%s: %6llu instrumented, %6llu achievable "
                        "(%.1f%%)\n",
                        name,
                        static_cast<unsigned long long>(m.instrumented),
                        static_cast<unsigned long long>(m.achievable),
                        100.0 * m.achievableFraction());
        }
    }

    // 4. Drive it with a few synthetic commits and watch coverage.
    coverage::DesignInstrumentation di(
        &design, coverage::Scheme::Optimized, bits, 42);
    coverage::CoverageMap map(&di);
    rtl::EventDriver driver(&design);

    core::CommitInfo ci;
    ci.decodeValid = true;
    ci.desc = &isa::descOf(isa::Opcode::Add);
    uint64_t covered_before = 0;
    for (unsigned i = 0; i < 200; ++i) {
        ci.pc = 0x10000000 + 4 * i;
        ci.ops.rd = static_cast<uint8_t>(i % 32);
        ci.rdValue = 0x9E3779B97F4A7C15ull * (i + 1);
        driver.onCommit(ci);
        map.record();
    }
    std::printf("\nafter 200 synthetic commits: %llu points covered "
                "(was %llu)\n",
                static_cast<unsigned long long>(map.totalCovered()),
                static_cast<unsigned long long>(covered_before));
    return 0;
}
