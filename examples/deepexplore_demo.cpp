/**
 * @file
 * deepExplore walkthrough: SimPoint interval extraction from CPU
 * benchmarks, stage-1 interval replay with light mutation, and the
 * hand-off to stage-2 fuzzing.
 *
 * Usage: deepexplore_demo [--budget=<sim seconds>] [--seed=N]
 */

#include <cstdio>

#include "common/config.hh"
#include "deepexplore/deep_explore.hh"
#include "harness/campaign.hh"

using namespace turbofuzz;
using namespace turbofuzz::deepexplore;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));
    const double budget = cfg.getDouble("budget", 30.0);

    const fuzzer::MemoryLayout layout;
    const auto programs = buildAllBenchmarks(layout);

    // Step 1: profile the benchmarks and show the SimPoint picture.
    std::printf("benchmark profiles (interval = 512 instructions):\n");
    for (const Program &p : programs) {
        const BenchmarkProfile prof =
            profileBenchmark(p, layout, 512);
        const auto points = selectSimPoints(prof.intervals);
        std::printf("  %-16s %6llu dynamic instrs, %3zu intervals, "
                    "%zu simpoints:",
                    p.name.c_str(),
                    static_cast<unsigned long long>(
                        prof.totalInstructions),
                    prof.intervals.size(), points.size());
        for (const SimPoint &sp : points)
            std::printf(" [%zu w=%.2f]", sp.intervalIndex, sp.weight);
        std::printf("\n");
    }

    // Step 2: run the two-stage campaign.
    static isa::InstructionLibrary library =
        harness::makeDefaultLibrary();
    DeepExploreOptions dopts;
    dopts.fuzzer.seed = seed;

    harness::CampaignOptions copts;
    copts.timing = soc::turboFuzzProfile();
    copts.seed = seed;

    auto gen = std::make_unique<DeepExploreGenerator>(dopts, &library,
                                                      programs);
    auto *gp = gen.get();
    harness::Campaign campaign(copts, std::move(gen));

    std::printf("\nrunning the hybrid campaign for %.0f simulated "
                "seconds...\n",
                budget);
    unsigned last_stage = 1;
    while (campaign.nowSec() < budget) {
        campaign.runIteration();
        if (gp->stage() != last_stage) {
            last_stage = gp->stage();
            std::printf("  -> stage 2 at %.2f s with %zu marked "
                        "intervals, coverage %llu\n",
                        campaign.nowSec(), gp->markedCount(),
                        static_cast<unsigned long long>(
                            campaign.coverageMap().totalCovered()));
        }
    }

    std::printf("\nfinal coverage: %llu points after %llu "
                "iterations\n",
                static_cast<unsigned long long>(
                    campaign.coverageMap().totalCovered()),
                static_cast<unsigned long long>(
                    campaign.iterations()));
    return 0;
}
