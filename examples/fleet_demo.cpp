/**
 * @file
 * Fleet quickstart: run a 4-shard fuzzing fleet with coverage merge
 * and cross-shard seed exchange, then print the aggregate picture.
 *
 *   ./fleet_demo [--shards=N] [--budget=SEC] [--epoch=SEC]
 *                [--fleet-seed=N] [--topology=none|ring|broadcast]
 *
 * Each shard models one FPGA board running the complete on-fabric
 * TurboFuzz loop; the host synchronizes them once per epoch. See
 * docs/fleet.md for the epoch/sync model.
 */

#include <cstdio>

#include "common/fleet_config.hh"
#include "fleet/fleet_stats.hh"
#include "fleet/orchestrator.hh"
#include "harness/campaign.hh"

using namespace turbofuzz;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    FleetConfig fc = FleetConfig::fromConfig(cfg);
    if (!cfg.has("budget"))
        fc.budgetSec = 30.0;
    if (!cfg.has("epoch"))
        fc.epochSec = 3.0;

    std::printf("fleet: %u shards, %.1fs budget, %.1fs epochs, "
                "seed %llu\n\n",
                fc.shardCount, fc.budgetSec, fc.epochSec,
                static_cast<unsigned long long>(fc.fleetSeed));

    const isa::InstructionLibrary lib = harness::makeDefaultLibrary();

    harness::CampaignOptions copts;
    copts.timing = soc::turboFuzzProfile();
    // Give the differential checker something to find: a real bug
    // injected into every shard's DUT.
    copts.coreKind = core::CoreKind::Boom;
    copts.bugs = core::BugSet::single(core::BugId::B1);

    fuzzer::FuzzerOptions fopts;

    fleet::FleetOrchestrator orch(fc, copts, fopts, &lib);
    const fleet::FleetResult result = orch.run();

    std::printf("merged coverage over time:\n");
    for (const auto &s : result.mergedCoverage.samples())
        std::printf("  %6.1fs  %8.0f\n", s.timeSec, s.value);
    std::printf("\n");

    std::printf("per-shard final coverage:\n");
    for (unsigned i = 0; i < result.shardCount; ++i) {
        std::printf("  shard %u: %.0f\n", i,
                    result.shardCoverage[i].last());
    }
    std::printf("\n");

    fleet::printFleetSummary(result);
    return 0;
}
