/**
 * @file
 * Fleet quickstart: run a 4-shard fuzzing fleet with coverage merge
 * and cross-shard seed exchange, then print the aggregate picture.
 *
 *   ./fleet_demo [--shards=N] [--budget=SEC] [--epoch=SEC]
 *                [--fleet-seed=N] [--topology=none|ring|broadcast]
 *                [--coverage-model=mux|csr|edges|composite]
 *                [--scheduler=static|bandit]
 *                [--checkpoint-every=N --checkpoint-path=FILE]
 *                [--halt-after=N] [--resume-from=FILE]
 *                [--stats-file=FILE --stats-every=SEC]
 *                [--trace-out=FILE --trace-sample=N]
 *                [--stage-timing]
 *                [--provenance] [--provenance-out=FILE]
 *
 * Each shard models one FPGA board running the complete on-fabric
 * TurboFuzz loop; the host synchronizes them once per epoch. See
 * docs/fleet.md for the epoch/sync model. With checkpointing enabled
 * the orchestrator writes a resumable snapshot-section file at epoch
 * barriers; `--halt-after=N` simulates a killed fleet, and
 * `--resume-from=FILE` continues it — producing results identical to
 * an uninterrupted run (docs/snapshot.md).
 *
 * Telemetry (docs/telemetry.md): `--stats-file` appends one JSONL
 * metrics line per epoch barrier (or per `--stats-every` simulated
 * seconds), `--trace-out` writes a Chrome/Perfetto trace of every
 * `--trace-sample`-th iteration's pipeline stages, and
 * `--stage-timing` turns on per-stage nanosecond counters (implied
 * by `--trace-out`). Any of these also appends a merged fleet
 * metrics table to the summary.
 *
 * Provenance (docs/provenance.md): `--provenance` records first-hit
 * attribution per coverage point and appends the ledger-derived
 * plateau table to the summary; `--provenance-out` (implies
 * `--provenance`) additionally writes the machine-readable
 * "turbofuzz.provenance.v1" report consumed by
 * tools/provenance_report.py.
 */

#include <cstdio>
#include <string>

#include "common/fleet_config.hh"
#include "common/logging.hh"
#include "fleet/fleet_stats.hh"
#include "fleet/orchestrator.hh"
#include "harness/campaign.hh"
#include "soc/snapshot.hh"

using namespace turbofuzz;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    FleetConfig fc = FleetConfig::fromConfig(cfg);
    if (!cfg.has("budget"))
        fc.budgetSec = 30.0;
    if (!cfg.has("epoch"))
        fc.epochSec = 3.0;

    std::printf("fleet: %u shards, %.1fs budget, %.1fs epochs, "
                "seed %llu\n\n",
                fc.shardCount, fc.budgetSec, fc.epochSec,
                static_cast<unsigned long long>(fc.fleetSeed));

    const isa::InstructionLibrary lib = harness::makeDefaultLibrary();

    harness::CampaignOptions copts;
    copts.timing = soc::turboFuzzProfile();
    // Give the differential checker something to find: a real bug
    // injected into every shard's DUT.
    copts.coreKind = core::CoreKind::Boom;
    copts.bugs = core::BugSet::single(core::BugId::B1);

    fuzzer::FuzzerOptions fopts;

    fleet::FleetOrchestrator orch(fc, copts, fopts, &lib);
    const std::string resume_path = cfg.getString("resume-from", "");
    if (!resume_path.empty()) {
        std::string error;
        const auto snap = soc::Snapshot::tryLoadFile(resume_path,
                                                     &error);
        if (!snap)
            fatal("%s", error.c_str());
        if (!orch.restoreCheckpoint(*snap, &error))
            fatal("%s", error.c_str());
        std::printf("resumed from %s (%s)\n\n", resume_path.c_str(),
                    snap->trigger().c_str());
    }
    const fleet::FleetResult result = orch.run();

    std::printf("merged coverage over time:\n");
    for (const auto &s : result.mergedCoverage.samples())
        std::printf("  %6.1fs  %8.0f\n", s.timeSec, s.value);
    std::printf("\n");

    std::printf("per-shard final coverage:\n");
    for (unsigned i = 0; i < result.shardCount; ++i) {
        std::printf("  shard %u: %.0f\n", i,
                    result.shardCoverage[i].last());
    }
    std::printf("\n");

    fleet::printFleetSummary(result);

    // Telemetry is opt-in; the default summary stays byte-identical
    // to builds without it.
    const bool telemetry_on = !fc.statsFile.empty() ||
                              !fc.traceOut.empty() || fc.stageTiming;
    if (telemetry_on)
        fleet::printFleetMetrics(result.metrics);
    if (fc.provenance)
        fleet::printFleetProvenance(result);
    return 0;
}
