/**
 * @file
 * ISA playground: configure the instruction library like the VIO
 * interface would, generate a few blocks in direct mode, disassemble
 * them, and execute them on the reference ISS.
 *
 * Usage: isa_playground [--seed=N] [--no-fp=true] [--blocks=8]
 */

#include <cstdio>

#include "common/config.hh"
#include "core/iss.hh"
#include "fuzzer/block_builder.hh"
#include "isa/disasm.hh"

using namespace turbofuzz;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 7));
    const int nblocks = static_cast<int>(cfg.getInt("blocks", 8));

    // VIO-style library configuration.
    isa::InstructionLibrary library;
    library.exclude(isa::Opcode::Mret);
    if (cfg.getBool("no-fp", false)) {
        library.setExtEnabled(isa::Ext::F, false);
        library.setExtEnabled(isa::Ext::D, false);
        std::printf("FP categories disabled (%zu opcodes active)\n\n",
                    library.activeCount());
    }

    fuzzer::MemoryLayout layout;
    fuzzer::BlockBuilder builder(layout, &library, fuzzer::GenProbs{});
    Rng rng(seed);

    // Generate and disassemble blocks.
    soc::Memory mem;
    uint64_t addr = layout.instrBase;
    std::printf("direct-mode instruction blocks:\n");
    for (int b = 0; b < nblocks; ++b) {
        const fuzzer::SeedBlock block = builder.buildRandomBlock(rng);
        std::printf("block %d (%u instrs%s):\n", b, block.instrCount(),
                    block.isControlFlow ? ", control-flow" : "");
        for (size_t i = 0; i < block.insns.size(); ++i) {
            std::printf("  %08llx: %-30s%s\n",
                        static_cast<unsigned long long>(addr),
                        isa::disassemble(block.insns[i]).c_str(),
                        i == block.primeIdx ? "  <- prime" : "");
            mem.write32(addr, block.insns[i]);
            addr += 4;
        }
    }

    // Execute the straight-line stream on the reference ISS.
    core::Iss::Options opts;
    opts.resetPc = layout.instrBase;
    core::Iss hart(&mem, opts);
    hart.addAccessRange(layout.instrBase, layout.instrSize);
    hart.addAccessRange(layout.dataBase, layout.dataSize);

    std::printf("\nexecuting on the reference ISS:\n");
    const uint64_t end = addr;
    unsigned steps = 0, traps = 0;
    while (hart.state().pc < end && steps < 256) {
        const core::CommitInfo ci = hart.step();
        ++steps;
        if (ci.trapped) {
            ++traps;
            std::printf("  trap at %08llx (cause %llu) -> handler\n",
                        static_cast<unsigned long long>(ci.pc),
                        static_cast<unsigned long long>(ci.trapCause));
            break; // no handler installed in this demo
        }
    }
    std::printf("executed %u instructions (%u traps); final "
                "minstret = %llu\n",
                steps, traps,
                static_cast<unsigned long long>(
                    hart.state().minstret));
    return 0;
}
