/**
 * @file
 * Quickstart: fuzz a Rocket-like core for a few simulated seconds.
 *
 * Demonstrates the minimal TurboFuzz flow:
 *   1. build an instruction library,
 *   2. configure the TurboFuzzer,
 *   3. run a Campaign (generation -> lockstep execution -> coverage
 *      feedback, all on the simulated FPGA platform),
 *   4. inspect coverage and throughput.
 *
 * Usage: quickstart [--budget=<simulated seconds>] [--seed=N]
 */

#include <cstdio>

#include "common/config.hh"
#include "common/stats.hh"
#include "harness/campaign.hh"

using namespace turbofuzz;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    const double budget = cfg.getDouble("budget", 5.0);
    const uint64_t seed = static_cast<uint64_t>(cfg.getInt("seed", 1));

    // 1. Instruction library: the full RV64 IMAFD+Zicsr set with the
    //    shared default configuration.
    static isa::InstructionLibrary library = harness::makeDefaultLibrary();

    // 2. The fuzzer with paper-default parameters.
    fuzzer::FuzzerOptions fopts;
    fopts.seed = seed;
    auto generator = std::make_unique<fuzzer::TurboFuzzGenerator>(
        fopts, &library);

    // 3. A campaign on the simulated FPGA SoC.
    harness::CampaignOptions copts;
    copts.coreKind = core::CoreKind::Rocket;
    copts.timing = soc::turboFuzzProfile();
    copts.seed = seed;
    harness::Campaign campaign(copts, std::move(generator));

    std::printf("TurboFuzz quickstart: fuzzing a Rocket-like core for "
                "%.1f simulated seconds...\n",
                budget);
    const TimeSeries cov = campaign.run(budget);

    // 4. Results.
    std::printf("\niterations           : %llu\n",
                static_cast<unsigned long long>(campaign.iterations()));
    std::printf("instructions executed: %llu\n",
                static_cast<unsigned long long>(
                    campaign.executedInstructions()));
    std::printf("prevalence           : %.3f\n", campaign.prevalence());
    std::printf("coverage points      : %llu\n",
                static_cast<unsigned long long>(
                    campaign.coverageMap().totalCovered()));
    std::printf("fuzzing speed        : %.2f iter/s (simulated)\n",
                static_cast<double>(campaign.iterations()) /
                    campaign.nowSec());

    std::printf("\nper-module coverage:\n");
    const auto &map = campaign.coverageMap();
    for (size_t i = 0; i < map.moduleCount(); ++i) {
        std::printf("  %-12s %8llu\n", map.moduleName(i).c_str(),
                    static_cast<unsigned long long>(
                        map.moduleCovered(i)));
    }

    if (!cov.empty()) {
        std::printf("\ncoverage at end: %.0f points after %.2f s\n",
                    cov.last(), campaign.nowSec());
    }
    return 0;
}
