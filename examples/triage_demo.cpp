/**
 * @file
 * Triage quickstart: a small fleet hunting several injected bugs at
 * once, with the triage pipeline deduplicating and minimizing what
 * the shards find.
 *
 *   ./triage_demo [--shards=N] [--budget=SEC] [--epoch=SEC]
 *                 [--fleet-seed=N] [--triage-replays=N]
 *
 * The DUT carries three bugs from the paper's catalog with distinct
 * mechanisms: C1 (wrong fflags for 0/0 FP division), R1 (ebreak does
 * not increment minstret) and C5 (fmul.d yields the wrong sign when
 * rounding down). The fleet's raw output is dozens of
 * indistinguishable mismatches; the triage table below it is the
 * actual deliverable — one row per distinct bug, each with a
 * minimized reproducer whose replay has been confirmed
 * deterministic. Rarer triggers surface later: the default budget
 * reliably shows all three, short CI budgets may show fewer (an
 * iteration only ever reports its *first* divergence, so hot bugs
 * shadow rare ones within an iteration). See docs/triage.md.
 */

#include <cstdio>

#include "common/fleet_config.hh"
#include "fleet/fleet_stats.hh"
#include "fleet/orchestrator.hh"
#include "harness/campaign.hh"
#include "triage/replay.hh"

using namespace turbofuzz;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    FleetConfig fc = FleetConfig::fromConfig(cfg);
    if (!cfg.has("shards"))
        fc.shardCount = 2;
    if (!cfg.has("budget"))
        fc.budgetSec = 30.0;
    if (!cfg.has("epoch"))
        fc.epochSec = 5.0;
    if (!cfg.has("max-reproducers"))
        fc.maxReproducersPerShard = 64;

    core::BugSet bugs;
    bugs.enable(core::BugId::C1);
    bugs.enable(core::BugId::R1);
    bugs.enable(core::BugId::C5);

    std::printf("triage demo: %u shards, %.1fs budget, injected:",
                fc.shardCount, fc.budgetSec);
    for (core::BugId id : bugs.enabled())
        std::printf(" %s", std::string(core::bugInfo(id).label).c_str());
    std::printf("\n\n");

    const isa::InstructionLibrary lib = harness::makeDefaultLibrary();

    harness::CampaignOptions copts;
    copts.timing = soc::turboFuzzProfile();
    copts.coreKind = core::CoreKind::Cva6;
    copts.bugs = bugs;

    fuzzer::FuzzerOptions fopts;

    fleet::FleetOrchestrator orch(fc, copts, fopts, &lib);
    const fleet::FleetResult result = orch.run();

    fleet::printFleetSummary(result);

    // Every minimized exemplar must replay deterministically — the
    // triage contract. Surface any violation loudly.
    int rc = 0;
    size_t verified = 0;
    for (const auto &bucket : orch.triageQueue().buckets()) {
        if (!bucket.minimized)
            continue; // minimization disabled (--triage-replays=0)
        if (!bucket.reduction.confirmed) {
            std::printf("ERROR: bucket '%s' exemplar failed replay "
                        "confirmation\n",
                        bucket.signature.key().c_str());
            rc = 1;
        } else if (!triage::ReplayHarness::verifyDeterministic(
                       bucket.reduction.minimized)) {
            std::printf("ERROR: bucket '%s' failed deterministic "
                        "replay\n",
                        bucket.signature.key().c_str());
            rc = 1;
        } else {
            ++verified;
        }
    }
    if (result.reproducersHarvested == 0) {
        std::printf("\n(no mismatches in this budget — raise "
                    "--budget)\n");
    } else if (rc == 0) {
        std::printf("\nall %zu minimized reproducers verified "
                    "deterministic\n",
                    verified);
    }
    return rc;
}
