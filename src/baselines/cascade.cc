#include "baselines/cascade.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "isa/encoding.hh"

namespace turbofuzz::baselines
{

using fuzzer::IterationInfo;
using fuzzer::MemoryLayout;
using fuzzer::SeedBlock;
using isa::Opcode;
using isa::Operands;

namespace
{
/** Cascade emits fully valid programs: no traps by construction. */
fuzzer::GenProbs
cascadeProbs()
{
    fuzzer::GenProbs p;
    p.validRmOnly = true;
    // Control flow is inserted explicitly as the block chain.
    p.controlFlowShare = {0, 1};
    return p;
}

/** Cascade's own library view: no System primes (programs must
 *  terminate cleanly), but CSR accesses stay enabled — Cascade
 *  produces valid privileged interactions. */
isa::InstructionLibrary
cascadeLibrary(const isa::InstructionLibrary *base)
{
    isa::InstructionLibrary l = *base;
    l.setExtEnabled(isa::Ext::System, false);
    return l;
}
} // namespace

CascadeGenerator::CascadeGenerator(
    uint64_t seed, const isa::InstructionLibrary *library,
    uint32_t instrs_per_iter)
    : memLayout(), ownLib(cascadeLibrary(library)),
      builder(memLayout, &ownLib, cascadeProbs()),
      rng(seed ^ 0xCA5CADE), targetInstrs(instrs_per_iter)
{
}

IterationInfo
CascadeGenerator::generate(soc::Memory &mem)
{
    IterationInfo info;
    info.iterationIndex = iterCounter++;
    info.entryPc = memLayout.instrBase;

    // Data segment fill (programs load from it).
    Rng data_rng = rng.split("data");
    for (uint64_t off = 0; off < memLayout.dataSize; off += 8)
        mem.write64(memLayout.dataBase + off, data_rng.next());

    // Preamble: x31 = data base, then Cascade's per-program setup
    // routine (register initialization), which executes outside the
    // fuzzing region — the ~7% overhead behind its 0.93 prevalence.
    std::vector<uint32_t> preamble;
    {
        Operands o;
        o.rd = MemoryLayout::regDataBase;
        o.imm = static_cast<int64_t>(memLayout.dataBase >> 12);
        preamble.push_back(isa::encode(Opcode::Lui, o));
    }
    Rng init_rng = rng.split("init");
    for (unsigned r = 1; r <= 6; ++r) {
        Operands hi;
        hi.rd = static_cast<uint8_t>(r);
        hi.imm = static_cast<int64_t>(init_rng.range(1 << 20));
        preamble.push_back(isa::encode(Opcode::Lui, hi));
        Operands lo;
        lo.rd = static_cast<uint8_t>(r);
        lo.rs1 = static_cast<uint8_t>(r);
        lo.imm = static_cast<int64_t>(init_rng.range(4096)) - 2048;
        preamble.push_back(isa::encode(Opcode::Addi, lo));
    }

    // Build non-control-flow bodies: blocks of straight-line work.
    std::vector<SeedBlock> blocks;
    uint32_t emitted = 0;
    while (emitted + 2 < targetInstrs) {
        SeedBlock b = builder.buildRandomBlock(rng);
        if (b.isControlFlow)
            continue; // control flow is added as explicit chaining
        emitted += b.instrCount() + 1; // +1 for the chaining jump
        blocks.push_back(std::move(b));
    }

    // Shuffle memory order; logical order remains 0..N-1 via an
    // explicit permutation chain (intricate layout, guaranteed
    // termination — every block executes exactly once).
    std::vector<uint32_t> mem_order(blocks.size());
    std::iota(mem_order.begin(), mem_order.end(), 0);
    for (size_t i = mem_order.size(); i > 1; --i)
        std::swap(mem_order[i - 1], mem_order[rng.range(i)]);

    // Lay out blocks in shuffled memory order; each block gets one
    // extra jal slot for the chain to its logical successor. After
    // the last block comes the teardown routine (register dump),
    // excluded from the fuzzing region. One extra preamble slot is
    // reserved for the entry jump into logical block 0 (which may
    // sit anywhere in memory after the shuffle).
    const size_t entry_jump_idx = preamble.size();
    preamble.push_back(0); // patched below
    uint64_t addr = memLayout.instrBase + 4ull * preamble.size();
    info.firstBlockPc = addr;
    std::vector<uint64_t> base_of(blocks.size());
    for (uint32_t bi : mem_order) {
        base_of[bi] = addr;
        addr += 4ull * (blocks[bi].instrCount() + 1);
    }
    info.fuzzRegionEnd = addr;

    // Teardown: dump x1..x8 to the data segment (result comparison
    // happens on this dump in the real system). The dump base is
    // re-materialized since fuzzed code may clobber any register.
    std::vector<uint32_t> teardown;
    {
        Operands hi;
        hi.rd = MemoryLayout::regScratch;
        hi.imm = static_cast<int64_t>(memLayout.dataBase >> 12);
        teardown.push_back(isa::encode(Opcode::Lui, hi));
    }
    for (unsigned r = 1; r <= 8; ++r) {
        Operands s;
        s.rs1 = MemoryLayout::regScratch;
        s.rs2 = static_cast<uint8_t>(r);
        s.imm = static_cast<int64_t>(8 * r);
        teardown.push_back(isa::encode(Opcode::Sd, s));
    }
    const uint64_t teardown_base = addr;
    addr += 4ull * teardown.size();
    info.codeBoundary = addr;

    // Chain jumps: logical block i ends with jal x0 -> block i+1;
    // the last block jumps into the teardown routine.
    for (size_t i = 0; i < blocks.size(); ++i) {
        const uint64_t jump_addr =
            base_of[i] + 4ull * blocks[i].instrCount();
        const uint64_t target = (i + 1 < blocks.size())
                                    ? base_of[i + 1]
                                    : teardown_base;
        const int64_t delta = static_cast<int64_t>(target) -
                              static_cast<int64_t>(jump_addr);
        TF_ASSERT(delta >= -(1 << 20) && delta < (1 << 20),
                  "cascade chain jump out of range");
        Operands j;
        j.rd = 0;
        j.imm = delta;
        blocks[i].insns.push_back(isa::encode(Opcode::Jal, j));
        blocks[i].isControlFlow = true;
        blocks[i].targetBlock =
            (i + 1 < blocks.size()) ? static_cast<int32_t>(i + 1) : -1;
        blocks[i].position = static_cast<uint32_t>(i);
    }

    // Patch the entry jump to logical block 0.
    if (!blocks.empty()) {
        const uint64_t jump_pc =
            memLayout.instrBase + 4ull * entry_jump_idx;
        Operands j;
        j.rd = 0;
        j.imm = static_cast<int64_t>(base_of[0]) -
                static_cast<int64_t>(jump_pc);
        preamble[entry_jump_idx] = isa::encode(Opcode::Jal, j);
    }

    // Commit to memory.
    uint64_t p = memLayout.instrBase;
    for (uint32_t insn : preamble) {
        mem.write32(p, insn);
        p += 4;
    }
    uint64_t t = teardown_base;
    for (uint32_t insn : teardown) {
        mem.write32(t, insn);
        t += 4;
    }
    for (size_t i = 0; i < blocks.size(); ++i) {
        uint64_t a = base_of[i];
        for (uint32_t insn : blocks[i].insns) {
            mem.write32(a, insn);
            a += 4;
        }
        info.generatedInstrs += blocks[i].instrCount();
    }
    info.blocks = std::move(blocks);
    return info;
}

} // namespace turbofuzz::baselines
