/**
 * @file
 * Cascade-like baseline fuzzer.
 *
 * Models Cascade's program-generation approach (§II-A): longer test
 * programs with intricate but *terminating* control flow and
 * entangled data flow, achieving very high prevalence (~0.93 in the
 * paper's Fig. 8) without any coverage feedback. Programs are built
 * as a shuffled chain of basic blocks: every block ends with a
 * direct jump to the next block in logical order, so all generated
 * instructions execute exactly once regardless of where blocks sit
 * in memory. Bug detection relies on end-of-program state
 * comparison only, which is why transient deviations can escape it.
 */

#ifndef TURBOFUZZ_BASELINES_CASCADE_HH
#define TURBOFUZZ_BASELINES_CASCADE_HH

#include "common/rng.hh"
#include "fuzzer/block_builder.hh"
#include "fuzzer/generator.hh"

namespace turbofuzz::baselines
{

/** Cascade-like stimulus generator. */
class CascadeGenerator : public fuzzer::StimulusGenerator
{
  public:
    /**
     * @param seed            Campaign seed.
     * @param library         Instruction library.
     * @param instrs_per_iter Program size target (paper ~200).
     */
    CascadeGenerator(uint64_t seed,
                     const isa::InstructionLibrary *library,
                     uint32_t instrs_per_iter = 209);

    fuzzer::IterationInfo generate(soc::Memory &mem) override;

    /** Cascade has no coverage feedback: no-op. */
    void
    feedback(const fuzzer::IterationInfo &, uint64_t) override
    {
    }

    const fuzzer::MemoryLayout &
    layout() const override
    {
        return memLayout;
    }

    bool usesExceptionTemplates() const override { return false; }
    std::string_view name() const override { return "Cascade"; }

  private:
    fuzzer::MemoryLayout memLayout;
    isa::InstructionLibrary ownLib; ///< System/Zicsr disabled
    fuzzer::BlockBuilder builder;
    Rng rng;
    uint32_t targetInstrs;
    uint64_t iterCounter = 0;
};

} // namespace turbofuzz::baselines

#endif // TURBOFUZZ_BASELINES_CASCADE_HH
