#include "baselines/difuzzrtl.hh"

namespace turbofuzz::baselines
{

namespace
{

fuzzer::FuzzerOptions
difuzzOptions(uint64_t seed, uint32_t instrs_per_iter)
{
    fuzzer::FuzzerOptions o;
    o.instrsPerIteration = instrs_per_iter;
    o.controlFlowOpt = false; // unconstrained forward jumps (eq. 1)
    o.scheduling = fuzzer::SchedulingPolicy::Fifo;
    o.corpusPrioritize = {0, 1}; // uniform seed selection
    // The software flow regenerates register/CSR/memory setup
    // routines per iteration; they execute before the fuzzing region
    // and dominate the executed-instruction mix (Fig. 4).
    o.bootstrapInstrs = 700;
    o.seed = seed;
    return o;
}

} // namespace

DifuzzRtlGenerator::DifuzzRtlGenerator(
    uint64_t seed, const isa::InstructionLibrary *library,
    uint32_t instrs_per_iter)
    : engine(difuzzOptions(seed, instrs_per_iter), library)
{
}

fuzzer::IterationInfo
DifuzzRtlGenerator::generate(soc::Memory &mem)
{
    return engine.generateIteration(mem);
}

void
DifuzzRtlGenerator::feedback(const fuzzer::IterationInfo &info,
                             uint64_t cov_increment)
{
    engine.reportResult(info, cov_increment);
}

const fuzzer::MemoryLayout &
DifuzzRtlGenerator::layout() const
{
    return engine.options().layout;
}

} // namespace turbofuzz::baselines
