/**
 * @file
 * DifuzzRTL-like baseline fuzzer.
 *
 * Models the comparison system's generation behaviour as the paper
 * characterizes it (§II-A, §IV-C, Fig. 4):
 *  - short iterations (hundreds of instructions);
 *  - unconstrained forward jumps, so the expected jump distance
 *    E_j = 1 + (L-p)/2 skips most of the iteration (eq. 1);
 *  - no exception templates: the first trap ends the iteration;
 *  - FIFO corpus scheduling with uniform seed selection;
 *  - coarse end-of-iteration result checking.
 *
 * Internally reuses the block builder/mutation machinery with the
 * TurboFuzz-specific optimizations disabled, which is exactly the
 * ablation the paper's comparisons isolate.
 */

#ifndef TURBOFUZZ_BASELINES_DIFUZZRTL_HH
#define TURBOFUZZ_BASELINES_DIFUZZRTL_HH

#include "fuzzer/generator.hh"

namespace turbofuzz::baselines
{

/** DifuzzRTL-like stimulus generator. */
class DifuzzRtlGenerator : public fuzzer::StimulusGenerator
{
  public:
    /**
     * @param seed            Campaign seed.
     * @param library         Instruction library.
     * @param instrs_per_iter Generated instructions per iteration
     *                        (paper-characteristic default 912).
     */
    DifuzzRtlGenerator(uint64_t seed,
                       const isa::InstructionLibrary *library,
                       uint32_t instrs_per_iter = 912);

    fuzzer::IterationInfo generate(soc::Memory &mem) override;
    void feedback(const fuzzer::IterationInfo &info,
                  uint64_t cov_increment) override;
    const fuzzer::MemoryLayout &layout() const override;
    bool usesExceptionTemplates() const override { return false; }
    std::string_view name() const override { return "DifuzzRTL"; }

  private:
    fuzzer::TurboFuzzer engine;
};

} // namespace turbofuzz::baselines

#endif // TURBOFUZZ_BASELINES_DIFUZZRTL_HH
