#include "checker/diff_checker.hh"

#include <cstdio>

#include "common/logging.hh"
#include "isa/disasm.hh"

namespace turbofuzz::checker
{

std::string_view
mismatchKindName(MismatchKind kind)
{
    switch (kind) {
      case MismatchKind::NextPc: return "next-pc";
      case MismatchKind::TrapBehaviour: return "trap-behaviour";
      case MismatchKind::RdValue: return "rd-value";
      case MismatchKind::FrdValue: return "frd-value";
      case MismatchKind::Fflags: return "fflags";
      case MismatchKind::CsrEffect: return "csr-effect";
      case MismatchKind::Minstret: return "minstret";
      case MismatchKind::MemEffect: return "mem-effect";
      default: panic("bad MismatchKind");
    }
}

std::string
Mismatch::describe() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s mismatch at pc 0x%llx [%s]: dut=0x%llx "
                  "ref=0x%llx (commit #%llu)",
                  std::string(mismatchKindName(kind)).c_str(),
                  static_cast<unsigned long long>(pc),
                  isa::disassemble(insn).c_str(),
                  static_cast<unsigned long long>(dutValue),
                  static_cast<unsigned long long>(refValue),
                  static_cast<unsigned long long>(instrIndex));
    return buf;
}

std::optional<Mismatch>
DiffChecker::compare(const core::CommitInfo &dut,
                     const core::CommitInfo &ref)
{
    const uint64_t index = commits++;
    auto make = [&](MismatchKind kind, uint64_t d, uint64_t r) {
        Mismatch mm;
        mm.kind = kind;
        mm.pc = dut.pc;
        mm.insn = dut.insn;
        mm.dutValue = d;
        mm.refValue = r;
        mm.instrIndex = index;
        return mm;
    };

    if (dut.trapped != ref.trapped ||
        (dut.trapped && dut.trapCause != ref.trapCause)) {
        return make(MismatchKind::TrapBehaviour,
                    dut.trapped ? dut.trapCause : ~uint64_t{0},
                    ref.trapped ? ref.trapCause : ~uint64_t{0});
    }
    if (dut.nextPc != ref.nextPc)
        return make(MismatchKind::NextPc, dut.nextPc, ref.nextPc);
    if (dut.rdWritten != ref.rdWritten ||
        (dut.rdWritten && dut.rdValue != ref.rdValue)) {
        return make(MismatchKind::RdValue, dut.rdValue, ref.rdValue);
    }
    if (dut.frdWritten != ref.frdWritten ||
        (dut.frdWritten && dut.frdValue != ref.frdValue)) {
        return make(MismatchKind::FrdValue, dut.frdValue,
                    ref.frdValue);
    }
    if (dut.fflagsAccrued != ref.fflagsAccrued)
        return make(MismatchKind::Fflags, dut.fflagsAccrued,
                    ref.fflagsAccrued);
    if (dut.csrWritten != ref.csrWritten ||
        (dut.csrWritten && dut.csrNewValue != ref.csrNewValue)) {
        return make(MismatchKind::CsrEffect, dut.csrNewValue,
                    ref.csrNewValue);
    }
    if (dut.minstretAfter != ref.minstretAfter)
        return make(MismatchKind::Minstret, dut.minstretAfter,
                    ref.minstretAfter);
    if (dut.memAccess && ref.memAccess &&
        (dut.memAddr != ref.memAddr || dut.memWrite != ref.memWrite)) {
        return make(MismatchKind::MemEffect, dut.memAddr, ref.memAddr);
    }
    return std::nullopt;
}

// tflint: hot-path
std::optional<Mismatch>
DiffChecker::compareTrace(const core::CommitInfo *dut,
                          const core::CommitInfo *ref, size_t count)
{
    for (size_t i = 0; i < count; ++i) {
        if (auto mm = compare(dut[i], ref[i]))
            return mm;
    }
    return std::nullopt;
}

namespace
{

/**
 * Columnar form of compare()'s divergence test. Never misses a real
 * divergence: flag asymmetries are caught by the kind mask, and every
 * value column is zero on commits whose producing flag is unset (the
 * CommitInfo slots are fully rewritten per step), so the unconditional
 * value compares are exact when the flags agree. Memory effects
 * replicate compare()'s both-sides-accessed condition.
 */
// tflint: hot-path
inline bool
columnsDiverge(const core::CommitTrace::Columns &d,
               const core::CommitTrace::Columns &r, size_t i)
{
    constexpr uint8_t flagMask =
        core::KindTrapped | core::KindRdWritten |
        core::KindFrdWritten | core::KindCsrWritten;
    const uint8_t kd = d.kind[i];
    const uint8_t kr = r.kind[i];
    return ((kd ^ kr) & flagMask) != 0 ||
           d.nextPc[i] != r.nextPc[i] ||
           d.trapCause[i] != r.trapCause[i] ||
           d.rdValue[i] != r.rdValue[i] ||
           d.frdValue[i] != r.frdValue[i] ||
           d.fflags[i] != r.fflags[i] ||
           d.csrNewValue[i] != r.csrNewValue[i] ||
           d.minstretAfter[i] != r.minstretAfter[i] ||
           ((kd & kr & core::KindMemAccess) != 0 &&
            (d.memAddr[i] != r.memAddr[i] ||
             ((kd ^ kr) & core::KindMemWrite) != 0));
}

} // namespace

std::optional<Mismatch>
DiffChecker::compareTrace(const core::CommitTrace &dut,
                          const core::CommitTrace &ref, size_t count)
{
    if (!dut.columnsValid() || !ref.columnsValid())
        return compareTrace(dut.data(), ref.data(), count);
    const core::CommitTrace::Columns &dc = dut.columns();
    const core::CommitTrace::Columns &rc = ref.columns();
    size_t i = 0;
    while (i < count) {
        size_t k = i;
        while (k < count && !columnsDiverge(dc, rc, k))
            ++k;
        // The skipped pairs compared equal; pairwise checking would
        // have advanced the counter over each of them.
        commits += k - i;
        if (k == count)
            return std::nullopt;
        // Only suspect pairs pay the record-wise compare; it both
        // confirms the divergence and keeps counter/classification
        // semantics byte-identical to the pairwise loop.
        if (auto mm = compare(dut[k], ref[k]))
            return mm;
        i = k + 1;
    }
    return std::nullopt;
}

std::optional<Mismatch>
DiffChecker::compareFinalState(const core::ArchState &dut,
                               const core::ArchState &ref)
{
    auto make = [&](MismatchKind kind, uint64_t d, uint64_t r) {
        Mismatch mm;
        mm.kind = kind;
        mm.pc = dut.pc;
        mm.insn = 0;
        mm.dutValue = d;
        mm.refValue = r;
        mm.instrIndex = commits;
        return mm;
    };

    for (unsigned i = 1; i < 32; ++i) {
        if (dut.x(i) != ref.x(i))
            return make(MismatchKind::RdValue, dut.x(i), ref.x(i));
    }
    for (unsigned i = 0; i < 32; ++i) {
        if (dut.f(i) != ref.f(i))
            return make(MismatchKind::FrdValue, dut.f(i), ref.f(i));
    }
    if (dut.fflags != ref.fflags)
        return make(MismatchKind::Fflags, dut.fflags, ref.fflags);
    if (dut.minstret != ref.minstret)
        return make(MismatchKind::Minstret, dut.minstret,
                    ref.minstret);
    return std::nullopt;
}

std::optional<CsrEvent>
csrTraceEvent(const core::CommitInfo &ci)
{
    // Trap entry first: a trapping commit's csrWritten side effects
    // (mcause/mepc updates) are part of the same privileged
    // transition, so one canonical event per commit suffices.
    if (ci.trapped) {
        return CsrEvent{
            static_cast<uint16_t>(0xF000u | (ci.trapCause & 0xFFFu)),
            ci.trapValue};
    }
    if (ci.csrWritten)
        return CsrEvent{ci.csrAddr, ci.csrNewValue};
    return std::nullopt;
}

soc::Snapshot
captureMismatchSnapshot(const Mismatch &mm, const core::Iss &dut,
                        const core::Iss &ref, double sim_time_sec)
{
    soc::Snapshot snap;
    snap.setTrigger(mm.describe());
    snap.setCaptureTime(sim_time_sec);

    soc::SnapshotWriter dut_arch;
    dut.saveState(dut_arch);
    snap.setSection("dut.arch", dut_arch.takeBuffer());

    soc::SnapshotWriter ref_arch;
    ref.saveState(ref_arch);
    snap.setSection("ref.arch", ref_arch.takeBuffer());

    soc::SnapshotWriter mem;
    dut.memory().saveState(mem);
    snap.setSection("dut.mem", mem.takeBuffer());
    return snap;
}

void
writeMismatch(soc::SnapshotWriter &out, const Mismatch &mm)
{
    out.putU8(static_cast<uint8_t>(mm.kind));
    out.putU64(mm.pc);
    out.putU32(mm.insn);
    out.putU64(mm.dutValue);
    out.putU64(mm.refValue);
    out.putU64(mm.instrIndex);
}

bool
readMismatch(soc::SnapshotReader &in, Mismatch &mm, std::string *error)
{
    const uint8_t kind = in.getU8();
    if (kind > static_cast<uint8_t>(MismatchKind::MemEffect)) {
        if (error)
            *error = "bad mismatch kind";
        return false;
    }
    mm.kind = static_cast<MismatchKind>(kind);
    mm.pc = in.getU64();
    mm.insn = in.getU32();
    mm.dutValue = in.getU64();
    mm.refValue = in.getU64();
    mm.instrIndex = in.getU64();
    return true;
}

} // namespace turbofuzz::checker
