/**
 * @file
 * Fine-grained differential self-checking (paper §III, ENCORE-style).
 *
 * The DUT (programmable-logic core) and REF (ARM-hosted golden model)
 * execute in instruction-level lockstep; dedicated monitors compare
 * key registers and signals after every commit and pause immediately
 * on the first mismatch, capturing a full hardware snapshot for
 * offline analysis. This is what gives Table II its detection
 * latencies: a bug is "found" the moment its first architecturally
 * visible deviation commits.
 */

#ifndef TURBOFUZZ_CHECKER_DIFF_CHECKER_HH
#define TURBOFUZZ_CHECKER_DIFF_CHECKER_HH

#include <optional>
#include <string>

#include "core/commit_info.hh"
#include "core/iss.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::checker
{

/** What diverged between DUT and REF. */
enum class MismatchKind
{
    NextPc,
    TrapBehaviour,
    RdValue,
    FrdValue,
    Fflags,
    CsrEffect,
    Minstret,
    MemEffect,
};

/** Human-readable name of a mismatch kind. */
std::string_view mismatchKindName(MismatchKind kind);

/** A detected divergence. */
struct Mismatch
{
    MismatchKind kind;
    uint64_t pc;
    uint32_t insn;
    uint64_t dutValue;
    uint64_t refValue;
    uint64_t instrIndex; ///< commits since campaign start

    /** One-line report (includes the disassembled instruction). */
    std::string describe() const;
};

/**
 * Instruction-level comparator. Stateless aside from the commit
 * counter; the harness feeds it one (dut, ref) commit pair at a time.
 */
class DiffChecker
{
  public:
    enum class Mode
    {
        /** Compare after every instruction (TurboFuzz). */
        PerInstruction,
        /**
         * Compare architectural state only at iteration end (the
         * coarse scheme of the software baselines; may miss
         * transient deviations — the paper's trade-off note).
         */
        EndOfIteration,
    };

    explicit DiffChecker(Mode mode) : checkMode(mode) {}

    Mode mode() const { return checkMode; }

    /**
     * Lockstep compare of one commit pair (PerInstruction mode).
     * @return the first divergence found, if any.
     */
    std::optional<Mismatch> compare(const core::CommitInfo &dut,
                                    const core::CommitInfo &ref);

    /**
     * Batch mode: diff two parallel commit traces of @p count
     * entries and report the first divergent commit. Bit-identical
     * to calling compare() pair-by-pair and stopping at the first
     * mismatch — the commit counter advances only over the pairs
     * actually examined, so the reported Mismatch::instrIndex and
     * commitsChecked() match the lockstep loop exactly.
     *
     * Traps need no special resynchronization here: when DUT and REF
     * trap identically on the same commit, both streams redirect to
     * the handler together and the pairwise alignment is preserved
     * across the trap window; when they disagree, that commit *is*
     * the divergence (TrapBehaviour) and diffing stops. The local
     * index of the divergence is `mismatch->instrIndex - c0` where
     * c0 is commitsChecked() before the call.
     */
    std::optional<Mismatch>
    compareTrace(const core::CommitInfo *dut,
                 const core::CommitInfo *ref, size_t count);

    /**
     * Columnar batch diff: when both traces carry valid columns
     * (CommitTrace::columnsValid()), the first divergent commit is
     * located with one tight pass over the hot columns and only that
     * pair is fed through compare() — same mismatch, same commit
     * counter, ~130-byte records untouched for equal pairs. Falls
     * back to the record-wise overload otherwise. @p count must not
     * exceed either trace's size.
     */
    std::optional<Mismatch> compareTrace(const core::CommitTrace &dut,
                                         const core::CommitTrace &ref,
                                         size_t count);

    /**
     * Final-state compare (EndOfIteration mode): integer/FP register
     * files, fflags and minstret of the two harts.
     */
    std::optional<Mismatch>
    compareFinalState(const core::ArchState &dut,
                      const core::ArchState &ref);

    /** Commits examined so far. */
    uint64_t commitsChecked() const { return commits; }

    /**
     * Advance the commit counter over commits verified elsewhere —
     * the warm-start prologue, whose constant prefix was proven
     * divergence-free once at capture time (engine::captureWarmStart)
     * and therefore needs no per-iteration re-compare. Keeping the
     * counter in step preserves Mismatch::instrIndex arithmetic
     * exactly as if the commits had been compared pairwise.
     */
    void skipCommits(uint64_t n) { commits += n; }

  private:
    Mode checkMode;
    uint64_t commits = 0;
};

/**
 * One CSR-visible event of the commit stream — the checker's CSR
 * trace tap. The per-commit records the checker already consumes
 * carry every architecturally visible CSR side effect; this helper
 * canonicalizes them into the (address, value) event stream the
 * ProcessorFuzz-style CSR-transition feedback model
 * (coverage::CsrTransitionModel) accumulates. Trap entries are
 * reported as synthetic addresses above the 12-bit CSR space
 * (0xF000 | cause) so exception edges count as privileged-state
 * transitions too.
 */
struct CsrEvent
{
    uint16_t addr;  ///< CSR address, or 0xF000 | cause for traps
    uint64_t value; ///< new CSR value, or the trap value for traps
};

/** Extract the CSR event of one commit, if it has one. */
std::optional<CsrEvent> csrTraceEvent(const core::CommitInfo &ci);

/**
 * Capture the complete platform state (both harts + DUT memory) into
 * a snapshot, tagging it with the mismatch description.
 */
soc::Snapshot captureMismatchSnapshot(const Mismatch &mm,
                                      const core::Iss &dut,
                                      const core::Iss &ref,
                                      double sim_time_sec);

/** Append @p mm in the checkpoint wire layout (one shared layout for
 *  campaign- and fleet-level checkpoints). */
void writeMismatch(soc::SnapshotWriter &out, const Mismatch &mm);

/** Parse a writeMismatch() record with kind-range validation.
 *  @return false with @p error set (when non-null) on bad input. */
bool readMismatch(soc::SnapshotReader &in, Mismatch &mm,
                  std::string *error = nullptr);

} // namespace turbofuzz::checker

#endif // TURBOFUZZ_CHECKER_DIFF_CHECKER_HH
