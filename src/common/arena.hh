/**
 * @file
 * Bump arena for per-iteration scratch.
 *
 * Fuzzing iterations allocate the same transient structures every
 * cycle (block address tables, layout scratch, fix-up work lists);
 * paying the general-purpose allocator for objects whose lifetime is
 * exactly one iteration is pure overhead. Arena hands out
 * monotonically bumped storage from chunks it retains across reset(),
 * so steady-state iterations perform zero heap allocation: the first
 * few iterations size the chunk list, after which every allocation is
 * a pointer bump.
 *
 * Only trivially destructible types may live in the arena — reset()
 * reclaims storage without running destructors.
 */

#ifndef TURBOFUZZ_COMMON_ARENA_HH
#define TURBOFUZZ_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace turbofuzz
{

/** Monotonic bump allocator with chunk reuse across reset(). */
class Arena
{
  public:
    /** @param chunk_bytes Size of each backing chunk. */
    explicit Arena(size_t chunk_bytes = 64 * 1024)
        : chunkBytes(chunk_bytes)
    {
        TF_ASSERT(chunk_bytes >= 256, "arena chunk too small");
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Raw allocation of @p bytes with @p align alignment. */
    void *
    alloc(size_t bytes, size_t align)
    {
        TF_ASSERT(align != 0 && (align & (align - 1)) == 0,
                  "arena alignment must be a power of two");
        uintptr_t p = (cursor + align - 1) & ~(align - 1);
        if (p + bytes > limit) {
            // Requests beyond the standard chunk size get a
            // dedicated chunk, spliced in at the live position so
            // it is reused like any other after the next reset().
            nextChunk(bytes + align > chunkBytes ? bytes + align
                                                 : chunkBytes);
            p = (cursor + align - 1) & ~(align - 1);
        }
        cursor = p + bytes;
        return reinterpret_cast<void *>(p);
    }

    /** Typed array allocation; storage is uninitialized. */
    template <typename T>
    T *
    allocN(size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena storage never runs destructors");
        return static_cast<T *>(alloc(n * sizeof(T), alignof(T)));
    }

    /**
     * Reclaim everything allocated since the previous reset. Chunks
     * are kept for reuse, so a steady-state reset/alloc cycle never
     * touches the heap.
     */
    void
    reset()
    {
        liveChunks = 0;
        if (!chunks.empty()) {
            cursor = reinterpret_cast<uintptr_t>(chunks[0].data.get());
            limit = cursor + chunks[0].bytes;
            liveChunks = 1;
        } else {
            cursor = limit = 0;
        }
    }

    /** Total bytes of backing storage held (all chunks). */
    size_t
    heldBytes() const
    {
        size_t total = 0;
        for (const Chunk &c : chunks)
            total += c.bytes;
        return total;
    }

  private:
    struct Chunk
    {
        Chunk(std::unique_ptr<unsigned char[]> d, size_t b)
            : data(std::move(d)), bytes(b)
        {
        }
        std::unique_ptr<unsigned char[]> data;
        size_t bytes;
    };

    void
    nextChunk(size_t need)
    {
        // Reuse the first retained chunk large enough; chunks
        // [0, liveChunks) are already handed out this cycle, so the
        // chosen one is swapped into the live position to keep the
        // hand-out order aligned with the list order.
        size_t i = liveChunks;
        while (i < chunks.size() && chunks[i].bytes < need)
            ++i;
        if (i == chunks.size())
            chunks.emplace_back(
                std::make_unique<unsigned char[]>(need), need);
        if (i != liveChunks)
            std::swap(chunks[liveChunks], chunks[i]);
        const Chunk &c = chunks[liveChunks];
        ++liveChunks;
        cursor = reinterpret_cast<uintptr_t>(c.data.get());
        limit = cursor + c.bytes;
    }

    size_t chunkBytes;
    std::vector<Chunk> chunks;
    size_t liveChunks = 0; ///< chunks handed out since last reset
    uintptr_t cursor = 0;
    uintptr_t limit = 0;
};

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_ARENA_HH
