/**
 * @file
 * Bit-manipulation helpers shared by the ISA and coverage layers.
 */

#ifndef TURBOFUZZ_COMMON_BITUTILS_HH
#define TURBOFUZZ_COMMON_BITUTILS_HH

#include <cstdint>
#include <type_traits>

namespace turbofuzz
{

/** Extract bits [hi:lo] (inclusive) of value. */
constexpr uint64_t
bits(uint64_t value, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    if (width >= 64)
        return value >> lo;
    return (value >> lo) & ((uint64_t{1} << width) - 1);
}

/** Extract a single bit. */
constexpr uint64_t
bit(uint64_t value, unsigned pos)
{
    return (value >> pos) & 1;
}

/** Insert @p field into bits [hi:lo] of @p value, returning the result. */
constexpr uint64_t
insertBits(uint64_t value, unsigned hi, unsigned lo, uint64_t field)
{
    const unsigned width = hi - lo + 1;
    const uint64_t mask =
        (width >= 64) ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr int64_t
sext(uint64_t value, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<int64_t>(value);
    const uint64_t sign = uint64_t{1} << (width - 1);
    return static_cast<int64_t>((value ^ sign) - sign);
}

/** A bitmask with the low @p width bits set. */
constexpr uint64_t
mask(unsigned width)
{
    return (width >= 64) ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

/** Round @p value up to the next multiple of @p align (a power of two). */
constexpr uint64_t
roundUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** True if @p value is aligned to @p align (a power of two). */
constexpr bool
isAligned(uint64_t value, uint64_t align)
{
    return (value & (align - 1)) == 0;
}

/** Number of bits needed to represent values in [0, n). */
constexpr unsigned
ceilLog2(uint64_t n)
{
    unsigned w = 0;
    uint64_t v = 1;
    while (v < n) {
        v <<= 1;
        ++w;
    }
    return w;
}

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_BITUTILS_HH
