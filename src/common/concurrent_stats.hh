/**
 * @file
 * Thread-safe aggregation of campaign counters.
 *
 * Fleet shards run on worker threads and bump these counters as they
 * iterate; the orchestrator (or a live monitor) reads consistent-ish
 * snapshots without stopping the workers. Relaxed atomics are enough:
 * each counter is independently monotone and the orchestrator only
 * reads authoritative values at epoch barriers, when all workers are
 * parked.
 *
 * Each counter owns a full cache line. Packed, all four share one
 * line and every worker's fetch_add bounces that line for every
 * other worker's unrelated counter; padded, contention is per
 * counter. bench/fleet_scaling.cc (8 shards, multi-core host)
 * measured the packed layout costing a few percent of host
 * wall-clock at the epoch scale, entirely in aggregator ping-pong.
 */

#ifndef TURBOFUZZ_COMMON_CONCURRENT_STATS_HH
#define TURBOFUZZ_COMMON_CONCURRENT_STATS_HH

#include <atomic>
#include <cstdint>

namespace turbofuzz
{

/** A snapshot of fleet-wide campaign counters. */
struct StatsSnapshot
{
    uint64_t iterations = 0;
    uint64_t executedInstrs = 0;
    uint64_t generatedInstrs = 0;
    uint64_t mismatches = 0;

    StatsSnapshot
    operator-(const StatsSnapshot &rhs) const
    {
        return {iterations - rhs.iterations,
                executedInstrs - rhs.executedInstrs,
                generatedInstrs - rhs.generatedInstrs,
                mismatches - rhs.mismatches};
    }
};

/** Atomically aggregated campaign counters (shared across shards). */
class ConcurrentStats
{
  public:
    void
    addIteration(uint64_t executed, uint64_t generated, bool mismatch)
    {
        iters.fetch_add(1, std::memory_order_relaxed);
        execd.fetch_add(executed, std::memory_order_relaxed);
        gend.fetch_add(generated, std::memory_order_relaxed);
        if (mismatch)
            mism.fetch_add(1, std::memory_order_relaxed);
    }

    /** Fold a whole snapshot delta in (one atomic add per field). */
    void
    add(const StatsSnapshot &delta)
    {
        iters.fetch_add(delta.iterations, std::memory_order_relaxed);
        execd.fetch_add(delta.executedInstrs,
                        std::memory_order_relaxed);
        gend.fetch_add(delta.generatedInstrs,
                       std::memory_order_relaxed);
        mism.fetch_add(delta.mismatches, std::memory_order_relaxed);
    }

    StatsSnapshot
    snapshot() const
    {
        return {iters.load(std::memory_order_relaxed),
                execd.load(std::memory_order_relaxed),
                gend.load(std::memory_order_relaxed),
                mism.load(std::memory_order_relaxed)};
    }

    void
    reset()
    {
        iters.store(0, std::memory_order_relaxed);
        execd.store(0, std::memory_order_relaxed);
        gend.store(0, std::memory_order_relaxed);
        mism.store(0, std::memory_order_relaxed);
    }

  private:
    alignas(64) std::atomic<uint64_t> iters{0};
    alignas(64) std::atomic<uint64_t> execd{0};
    alignas(64) std::atomic<uint64_t> gend{0};
    alignas(64) std::atomic<uint64_t> mism{0};
};

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_CONCURRENT_STATS_HH
