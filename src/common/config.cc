#include "common/config.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace turbofuzz
{

void
Config::set(const std::string &key, const std::string &value)
{
    values[key] = value;
}

void
Config::setInt(const std::string &key, int64_t value)
{
    values[key] = std::to_string(value);
}

void
Config::setDouble(const std::string &key, double value)
{
    values[key] = std::to_string(value);
}

void
Config::setBool(const std::string &key, bool value)
{
    values[key] = value ? "true" : "false";
}

int64_t
Config::getInt(const std::string &key, int64_t fallback) const
{
    auto it = values.find(key);
    if (it == values.end())
        return fallback;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = values.find(key);
    if (it == values.end())
        return fallback;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = values.find(key);
    if (it == values.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("config key '%s' has non-boolean value '%s'", key.c_str(),
          v.c_str());
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
}

bool
Config::has(const std::string &key) const
{
    return values.count(key) != 0;
}

int
Config::parseArgs(int argc, char **argv)
{
    int consumed = 0;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--", 2) != 0)
            fatal("unrecognized argument '%s' (expected --key=value)", arg);
        const char *eq = std::strchr(arg, '=');
        if (!eq)
            fatal("argument '%s' missing '=value'", arg);
        std::string key(arg + 2, eq - (arg + 2));
        values[key] = eq + 1;
        ++consumed;
    }
    return consumed;
}

} // namespace turbofuzz
