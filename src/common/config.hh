/**
 * @file
 * Key/value configuration store.
 *
 * Models the VIO-style runtime configuration interface of the
 * TurboFuzzer IP: probabilities, instruction-count targets and feature
 * toggles are exposed as named parameters with paper-default values.
 * Benches parse `--key=value` command-line overrides into a Config.
 */

#ifndef TURBOFUZZ_COMMON_CONFIG_HH
#define TURBOFUZZ_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>

namespace turbofuzz
{

/**
 * A rational probability num/den, matching the hardware's
 * power-of-two-denominator comparators (e.g. mutation mode 7/16).
 */
struct Prob
{
    uint64_t num;
    uint64_t den;

    double value() const { return static_cast<double>(num) / den; }
};

/** String-keyed configuration with typed accessors and defaults. */
class Config
{
  public:
    Config() = default;

    /** Set or overwrite a parameter. */
    void set(const std::string &key, const std::string &value);
    void setInt(const std::string &key, int64_t value);
    void setDouble(const std::string &key, double value);
    void setBool(const std::string &key, bool value);

    /** Typed lookups; return @p fallback when the key is absent. */
    int64_t getInt(const std::string &key, int64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    bool has(const std::string &key) const;

    /**
     * Parse argv-style `--key=value` arguments; unknown formats are
     * fatal(). Returns the number of arguments consumed.
     */
    int parseArgs(int argc, char **argv);

  private:
    std::map<std::string, std::string> values;
};

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_CONFIG_HH
