#include "common/fleet_config.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace turbofuzz
{

namespace
{

/** SplitMix64 finalizer: decorrelates shard streams whose raw seeds
 *  differ only in a few bits. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

uint64_t
FleetConfig::shardSeed(unsigned shard_idx) const
{
    // Shard 0 runs the exact campaign a standalone run would: the
    // fleet determinism tests (and any replay of a fleet-found
    // mismatch on a single board) depend on this identity.
    if (shard_idx == 0)
        return fleetSeed;
    return mix64(fleetSeed ^ (hashLabel("fleet-shard") +
                              0x9e3779b97f4a7c15ull * shard_idx));
}

unsigned
FleetConfig::epochCount() const
{
    TF_ASSERT(epochSec > 0.0 && budgetSec > 0.0,
              "fleet epoch/budget must be positive");
    return static_cast<unsigned>(
        std::ceil(budgetSec / epochSec - 1e-9));
}

double
FleetConfig::epochDeadline(unsigned epoch_idx) const
{
    return std::min(budgetSec,
                    epochSec * static_cast<double>(epoch_idx + 1));
}

FleetConfig
FleetConfig::fromConfig(const Config &cfg)
{
    FleetConfig fc;
    fc.fleetSeed =
        static_cast<uint64_t>(cfg.getInt("fleet-seed", 1));

    const int64_t shards = cfg.getInt("shards", 4);
    if (shards < 1)
        fatal("fleet needs at least one shard (got %lld)",
              static_cast<long long>(shards));
    fc.shardCount = static_cast<unsigned>(shards);

    fc.epochSec = cfg.getDouble("epoch", 5.0);
    fc.budgetSec = cfg.getDouble("budget", 60.0);
    if (fc.epochSec <= 0.0 || fc.budgetSec <= 0.0)
        fatal("fleet epoch and budget must be positive");

    const int64_t top_k = cfg.getInt("top-k", 4);
    if (top_k < 0)
        fatal("top-k must be >= 0 (got %lld)",
              static_cast<long long>(top_k));
    fc.exchangeTopK = static_cast<size_t>(top_k);

    fc.syncCostSec = cfg.getDouble("sync-cost", 0.0);
    if (fc.syncCostSec < 0.0)
        fatal("sync-cost must be >= 0");

    const int64_t threads = cfg.getInt("threads", 0);
    if (threads < 0)
        fatal("threads must be >= 0 (got %lld)",
              static_cast<long long>(threads));
    fc.workerThreads = static_cast<unsigned>(threads);

    fc.triageEnabled = cfg.getBool("triage", true);
    const int64_t triage_replays =
        cfg.getInt("triage-replays", 128);
    if (triage_replays < 0 || triage_replays > UINT32_MAX)
        fatal("triage-replays out of range (got %lld)",
              static_cast<long long>(triage_replays));
    fc.triageReplayBudget = static_cast<uint32_t>(triage_replays);

    const int64_t max_repros = cfg.getInt("max-reproducers", 8);
    if (max_repros < 0 || max_repros > UINT32_MAX)
        fatal("max-reproducers out of range (got %lld)",
              static_cast<long long>(max_repros));
    fc.maxReproducersPerShard = static_cast<uint32_t>(max_repros);

    const std::string topo = cfg.getString("topology", "ring");
    if (topo == "none")
        fc.topology = ExchangeTopology::None;
    else if (topo == "ring")
        fc.topology = ExchangeTopology::Ring;
    else if (topo == "broadcast")
        fc.topology = ExchangeTopology::Broadcast;
    else
        fatal("unknown fleet topology '%s'", topo.c_str());

    const int64_t ckpt_every = cfg.getInt("checkpoint-every", 0);
    if (ckpt_every < 0 || ckpt_every > UINT32_MAX)
        fatal("checkpoint-every out of range (got %lld)",
              static_cast<long long>(ckpt_every));
    fc.checkpointEveryEpochs = static_cast<uint32_t>(ckpt_every);
    fc.checkpointPath = cfg.getString("checkpoint-path", "");
    if (fc.checkpointEveryEpochs > 0 && fc.checkpointPath.empty())
        fatal("checkpoint-every requires checkpoint-path");

    const std::string model = cfg.getString("coverage-model", "mux");
    if (!coverage::coverageModelFromString(model, &fc.coverageModel))
        fatal("unknown coverage model '%s' (expected mux | csr | "
              "edges | composite)",
              model.c_str());

    const std::string sched = cfg.getString("scheduler", "static");
    if (!fuzzer::schedulerKindFromString(sched, &fc.scheduler))
        fatal("unknown scheduler '%s' (expected static | bandit)",
              sched.c_str());

    const int64_t halt_after = cfg.getInt("halt-after", 0);
    if (halt_after < 0 || halt_after > UINT32_MAX)
        fatal("halt-after out of range (got %lld)",
              static_cast<long long>(halt_after));
    fc.haltAfterEpochs = static_cast<uint32_t>(halt_after);

    fc.statsFile = cfg.getString("stats-file", "");
    fc.statsEverySec = cfg.getDouble("stats-every", 0.0);
    if (fc.statsEverySec < 0.0)
        fatal("stats-every must be >= 0");
    if (fc.statsEverySec > 0.0 && fc.statsFile.empty())
        fatal("stats-every requires stats-file");

    fc.traceOut = cfg.getString("trace-out", "");
    const int64_t trace_sample = cfg.getInt("trace-sample", 1);
    if (trace_sample < 1)
        fatal("trace-sample must be >= 1 (got %lld)",
              static_cast<long long>(trace_sample));
    fc.traceSampleEvery = static_cast<uint64_t>(trace_sample);
    // Tracing without per-stage counters would make the capture much
    // less useful (spans but no totals), so trace-out implies timing.
    fc.stageTiming =
        cfg.getBool("stage-timing", false) || !fc.traceOut.empty();

    // A provenance report without the recording layer would always be
    // empty, so provenance-out implies provenance.
    fc.provenanceOut = cfg.getString("provenance-out", "");
    fc.provenance =
        cfg.getBool("provenance", false) || !fc.provenanceOut.empty();

    fc.deltaBarrier = cfg.getBool("delta-barrier", true);

    return fc;
}

} // namespace turbofuzz
