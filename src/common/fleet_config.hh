/**
 * @file
 * Fleet-wide campaign configuration.
 *
 * A fleet runs N independent Campaign shards in parallel — the model
 * of the paper's multi-board deployment, where every FPGA carries its
 * own TurboFuzzer + DUT and the host periodically collects coverage
 * and redistributes productive seeds. One *epoch* is the simulated
 * interval between two host round-trips: within an epoch the shards
 * run fully independently; at the epoch barrier the orchestrator
 * merges coverage, exchanges seeds and harvests mismatches.
 *
 * Shard RNG seeds are derived deterministically from the fleet seed,
 * with shard 0 inheriting the fleet seed unchanged so a 1-shard fleet
 * reproduces a plain Campaign::run() bit-exactly.
 */

#ifndef TURBOFUZZ_COMMON_FLEET_CONFIG_HH
#define TURBOFUZZ_COMMON_FLEET_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "coverage/feedback_model.hh"
#include "fuzzer/mutation_scheduler.hh"

namespace turbofuzz
{

/** Cross-shard seed-exchange topology. */
enum class ExchangeTopology
{
    None,      ///< no seed exchange (coverage merge only)
    /** One peer per barrier, hop distance rotating with the epoch
     *  (1, 2, ... mod N-1) so every shard eventually hears from
     *  every other — see SyncPolicy::importSources(). */
    Ring,
    Broadcast, ///< every shard imports from every other shard
};

/** Configuration of a multi-shard fleet campaign. */
struct FleetConfig
{
    /** Master seed; all shard seeds derive from it. */
    uint64_t fleetSeed = 1;

    /** Number of parallel campaign shards (boards). */
    unsigned shardCount = 4;

    /** Simulated seconds between host synchronization barriers. */
    double epochSec = 5.0;

    /** Total simulated budget per shard. */
    double budgetSec = 60.0;

    /** Seeds each shard exports at every barrier. */
    size_t exchangeTopK = 4;

    /** Seed-exchange topology at epoch barriers. */
    ExchangeTopology topology = ExchangeTopology::Ring;

    /**
     * Simulated host<->board round-trip cost charged to every shard
     * at each barrier (coverage readback + corpus DMA). Never charged
     * to a 1-shard fleet, which needs no cross-board traffic — that
     * keeps single-shard fleets identical to a plain campaign.
     */
    double syncCostSec = 0.0;

    /** Worker threads; 0 = one per shard. */
    unsigned workerThreads = 0;

    /**
     * Feedback signal every shard schedules on (--coverage-model:
     * mux | csr | edges | composite). Applied fleet-wide — the global
     * merge needs every shard to accumulate the same point spaces.
     * The orchestrator overrides the campaign template's field with
     * this value, like it overrides the seeds.
     */
    coverage::CoverageModelKind coverageModel =
        coverage::CoverageModelKind::Mux;

    /** Mutation scheduling policy per shard (--scheduler:
     *  static | bandit); overrides the fuzzer template's field. */
    fuzzer::SchedulerKind scheduler = fuzzer::SchedulerKind::Static;

    /**
     * Bug triage: harvest every shard reproducer at epoch barriers,
     * deduplicate by signature and (when the replay budget is
     * nonzero) delta-debug each distinct bug's exemplar into a
     * minimal reproducer after the run.
     */
    bool triageEnabled = true;

    /** Replay budget per bucket for triage minimization; 0 buckets
     *  without minimizing. */
    uint32_t triageReplayBudget = 128;

    /** Reproducers each shard may retain (campaign-level cap). */
    uint32_t maxReproducersPerShard = 8;

    /**
     * Checkpoint/resume: write a full fleet checkpoint (every
     * shard's campaign state, the merged coverage, the triage queue
     * and the partial results) to checkpointPath after every N epoch
     * barriers. 0 disables checkpointing. A killed fleet is resumed
     * by constructing a fresh orchestrator with the SAME
     * configuration and calling restoreCheckpoint() before run();
     * the resumed run is bit-identical to an uninterrupted one
     * (docs/snapshot.md).
     */
    uint32_t checkpointEveryEpochs = 0;
    std::string checkpointPath;

    /**
     * Stop the fleet after this many epoch barriers even when budget
     * remains (0 = run to budget). Models a killed fleet for the
     * resume determinism tests and gives operators a bounded-run
     * knob; the returned FleetResult covers only the completed
     * epochs.
     */
    uint32_t haltAfterEpochs = 0;

    /**
     * Telemetry (docs/telemetry.md). All observational: enabling any
     * of these must not change coverage, mismatches or stimulus (the
     * determinism contract, enforced by tests/telemetry/).
     *
     * statsFile: append one "turbofuzz.metrics.v1" JSONL line of
     * merged fleet metrics per statsEverySec simulated seconds
     * (emitted at the epoch barriers that cross the cadence; empty =
     * off). traceOut: write a Chrome trace-event JSON file of stage
     * spans at the end of run() (empty = off); traceSampleEvery
     * records every Nth iteration's spans. stageTiming: per-stage
     * engine duration counters (engine.batch.*_ns); implied by
     * traceOut.
     */
    std::string statsFile;
    double statsEverySec = 0.0; ///< 0 = every epoch barrier
    std::string traceOut;
    uint64_t traceSampleEvery = 1;
    bool stageTiming = false;

    /**
     * Coverage provenance (docs/provenance.md). provenance binds a
     * first-hit ledger into every shard's feedback models and keeps
     * a per-shard forensics ring; ledgers merge (min-wins) into a
     * global view at epoch barriers. provenanceOut additionally
     * writes the machine-readable "turbofuzz.provenance.v1" report
     * (first hits, never-hit targets, operator attribution, lineage
     * histogram) at the end of run(); setting it implies provenance.
     * Observational like the telemetry above: fleet results are
     * bit-identical on vs off (tests/provenance/).
     */
    bool provenance = false;
    std::string provenanceOut;

    /**
     * Epoch-barrier strategy (docs/fleet.md "Epoch barrier
     * anatomy"). When true (the default) shards publish compact
     * coverage deltas that the orchestrator reduces in a
     * deterministic parallel tree on the worker pool; when false the
     * orchestrator serially merges every shard's full maps in shard
     * order (the historical path, kept as the reference
     * implementation the delta path is tested byte-identical
     * against).
     */
    bool deltaBarrier = true;

    /** Per-shard RNG seed; shardSeed(0) == fleetSeed. */
    uint64_t shardSeed(unsigned shard_idx) const;

    /** Number of epoch barriers needed to consume budgetSec. */
    unsigned epochCount() const;

    /** End-of-epoch deadline (absolute simulated seconds). */
    double epochDeadline(unsigned epoch_idx) const;

    /**
     * Build from a parsed command line: fleet-seed, shards, epoch,
     * budget, top-k, topology (none|ring|broadcast), sync-cost,
     * threads, coverage-model (mux|csr|edges|composite), scheduler
     * (static|bandit), stats-file, stats-every, trace-out,
     * trace-sample, stage-timing, provenance, provenance-out.
     */
    static FleetConfig fromConfig(const Config &cfg);
};

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_FLEET_CONFIG_HH
