#include "common/lfsr.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace turbofuzz
{

uint64_t
GaloisLfsr::tapsFor(unsigned width)
{
    // Maximal-period polynomials (taps exclude the implicit x^width).
    switch (width) {
      case 8:  return 0xB8;                 // x^8+x^6+x^5+x^4+1
      case 16: return 0xB400;               // x^16+x^14+x^13+x^11+1
      case 24: return 0xE10000;             // x^24+x^23+x^22+x^17+1
      case 32: return 0xA3000000u;          // x^32+x^30+x^26+x^25+1
      case 48: return 0xC00000401000ull;    // x^48+x^47+x^21+x^13+1
      case 64: return 0xD800000000000000ull; // x^64+x^63+x^61+x^60+1
      default:
        fatal("unsupported LFSR width %u", width);
    }
}

GaloisLfsr::GaloisLfsr(unsigned width, uint64_t seed)
    : regWidth(width), taps(tapsFor(width)), stateMask(mask(width)),
      reg((seed & stateMask) ? (seed & stateMask) : 1)
{
}

uint64_t
GaloisLfsr::step()
{
    const uint64_t lsb = reg & 1;
    reg >>= 1;
    if (lsb)
        reg ^= taps;
    reg &= stateMask;
    return reg;
}

uint64_t
GaloisLfsr::stepN(unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        step();
    return reg;
}

void
GaloisLfsr::reseed(uint64_t seed)
{
    reg = (seed & stateMask) ? (seed & stateMask) : 1;
}

namespace
{
/** Bit-reverse the low @p width bits of @p v. */
uint64_t
bitReverse(uint64_t v, unsigned width)
{
    uint64_t out = 0;
    for (unsigned i = 0; i < width; ++i)
        if (v & (uint64_t{1} << i))
            out |= uint64_t{1} << (width - 1 - i);
    return out;
}
} // namespace

FibonacciLfsr::FibonacciLfsr(unsigned width, uint64_t seed)
    // The Fibonacci (external-XOR) form of a right-shifting LFSR needs
    // the bit-reversed Galois tap mask: the reciprocal polynomial is
    // primitive iff the original is, preserving the maximal period.
    : regWidth(width),
      taps(bitReverse(GaloisLfsr::tapsFor(width), width)),
      stateMask(mask(width)),
      reg((seed & stateMask) ? (seed & stateMask) : 1)
{
}

unsigned
FibonacciLfsr::stepBit()
{
    // XOR of the tapped bits feeds the MSB; output is the old LSB.
    const unsigned out = reg & 1;
    const unsigned fb = __builtin_parityll(reg & taps);
    reg = (reg >> 1) | (static_cast<uint64_t>(fb) << (regWidth - 1));
    reg &= stateMask;
    return out;
}

namespace
{
/** Reverse all 64 bits of @p v. */
uint64_t
bitReverse64(uint64_t v)
{
    v = __builtin_bswap64(v);
    v = ((v & 0xF0F0F0F0F0F0F0F0ull) >> 4) |
        ((v & 0x0F0F0F0F0F0F0F0Full) << 4);
    v = ((v & 0xCCCCCCCCCCCCCCCCull) >> 2) |
        ((v & 0x3333333333333333ull) << 2);
    v = ((v & 0xAAAAAAAAAAAAAAAAull) >> 1) |
        ((v & 0x5555555555555555ull) << 1);
    return v;
}
} // namespace

uint64_t
FibonacciLfsr::stepWord64()
{
    // 64 scalar steps fused into word ops, bit-exact with stepBit():
    //
    //  * Outputs: step k's output is bit k of the initial state
    //    (feedback first reaches the LSB on step 64), and stepBits()
    //    packs MSB-first — so the output word is the bit-reversed
    //    initial state.
    //  * Next state: bit k of the state after 64 steps is the
    //    feedback of step k, fb_k = parity(reg_k & 0x1B), i.e.
    //    bits {k, k+1, k+3, k+4} of the initial state r — the word
    //    expression r^(r>>1)^(r>>3)^(r>>4) — except steps 60..63,
    //    whose taps wrap onto earlier feedback bits.
    const uint64_t r = reg;
    const uint64_t w = r ^ (r >> 1) ^ (r >> 3) ^ (r >> 4);
    const uint64_t fb0 = w & 1, fb1 = (w >> 1) & 1;
    const uint64_t fb2 = (w >> 2) & 1, fb3 = (w >> 3) & 1;
    const uint64_t b60 = (r >> 60) & 1, b61 = (r >> 61) & 1;
    const uint64_t b62 = (r >> 62) & 1, b63 = r >> 63;
    uint64_t hi = (b60 ^ b61 ^ b63 ^ fb0) << 60;
    hi |= (b61 ^ b62 ^ fb0 ^ fb1) << 61;
    hi |= (b62 ^ b63 ^ fb1 ^ fb2) << 62;
    hi |= (b63 ^ fb0 ^ fb2 ^ fb3) << 63;
    reg = (w & 0x0FFFFFFFFFFFFFFFull) | hi;
    return bitReverse64(r);
}

uint64_t
FibonacciLfsr::stepBits(unsigned nbits)
{
    TF_ASSERT(nbits <= 64, "at most 64 bits per call");
    if (nbits == 64 && regWidth == 64 && taps == 0x1B)
        return stepWord64();
    uint64_t v = 0;
    for (unsigned i = 0; i < nbits; ++i)
        v = (v << 1) | stepBit();
    return v;
}

void
FibonacciLfsr::reseed(uint64_t seed)
{
    reg = (seed & stateMask) ? (seed & stateMask) : 1;
}

} // namespace turbofuzz
