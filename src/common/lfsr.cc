#include "common/lfsr.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace turbofuzz
{

uint64_t
GaloisLfsr::tapsFor(unsigned width)
{
    // Maximal-period polynomials (taps exclude the implicit x^width).
    switch (width) {
      case 8:  return 0xB8;                 // x^8+x^6+x^5+x^4+1
      case 16: return 0xB400;               // x^16+x^14+x^13+x^11+1
      case 24: return 0xE10000;             // x^24+x^23+x^22+x^17+1
      case 32: return 0xA3000000u;          // x^32+x^30+x^26+x^25+1
      case 48: return 0xC00000401000ull;    // x^48+x^47+x^21+x^13+1
      case 64: return 0xD800000000000000ull; // x^64+x^63+x^61+x^60+1
      default:
        fatal("unsupported LFSR width %u", width);
    }
}

GaloisLfsr::GaloisLfsr(unsigned width, uint64_t seed)
    : regWidth(width), taps(tapsFor(width)), stateMask(mask(width)),
      reg((seed & stateMask) ? (seed & stateMask) : 1)
{
}

uint64_t
GaloisLfsr::step()
{
    const uint64_t lsb = reg & 1;
    reg >>= 1;
    if (lsb)
        reg ^= taps;
    reg &= stateMask;
    return reg;
}

uint64_t
GaloisLfsr::stepN(unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        step();
    return reg;
}

void
GaloisLfsr::reseed(uint64_t seed)
{
    reg = (seed & stateMask) ? (seed & stateMask) : 1;
}

namespace
{
/** Bit-reverse the low @p width bits of @p v. */
uint64_t
bitReverse(uint64_t v, unsigned width)
{
    uint64_t out = 0;
    for (unsigned i = 0; i < width; ++i)
        if (v & (uint64_t{1} << i))
            out |= uint64_t{1} << (width - 1 - i);
    return out;
}
} // namespace

FibonacciLfsr::FibonacciLfsr(unsigned width, uint64_t seed)
    // The Fibonacci (external-XOR) form of a right-shifting LFSR needs
    // the bit-reversed Galois tap mask: the reciprocal polynomial is
    // primitive iff the original is, preserving the maximal period.
    : regWidth(width),
      taps(bitReverse(GaloisLfsr::tapsFor(width), width)),
      stateMask(mask(width)),
      reg((seed & stateMask) ? (seed & stateMask) : 1)
{
}

unsigned
FibonacciLfsr::stepBit()
{
    // XOR of the tapped bits feeds the MSB; output is the old LSB.
    const unsigned out = reg & 1;
    const unsigned fb = __builtin_parityll(reg & taps);
    reg = (reg >> 1) | (static_cast<uint64_t>(fb) << (regWidth - 1));
    reg &= stateMask;
    return out;
}

uint64_t
FibonacciLfsr::stepBits(unsigned nbits)
{
    TF_ASSERT(nbits <= 64, "at most 64 bits per call");
    uint64_t v = 0;
    for (unsigned i = 0; i < nbits; ++i)
        v = (v << 1) | stepBit();
    return v;
}

void
FibonacciLfsr::reseed(uint64_t seed)
{
    reg = (seed & stateMask) ? (seed & stateMask) : 1;
}

} // namespace turbofuzz
