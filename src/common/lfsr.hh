/**
 * @file
 * Linear Feedback Shift Registers.
 *
 * The synthesizable TurboFuzzer IP uses LFSRs as its on-fabric
 * pseudo-random sources (instruction selection, operand values, data
 * segment fill). We model both Fibonacci and Galois forms with
 * maximal-period taps for common widths, mirroring what the hardware
 * generator would instantiate.
 */

#ifndef TURBOFUZZ_COMMON_LFSR_HH
#define TURBOFUZZ_COMMON_LFSR_HH

#include <cstdint>

namespace turbofuzz
{

/**
 * Galois LFSR with maximal-period feedback polynomials.
 *
 * Supported widths: 8, 16, 24, 32, 48, 64. The state never reaches
 * zero when seeded nonzero, giving period 2^width - 1.
 */
class GaloisLfsr
{
  public:
    /**
     * @param width Register width in bits (8/16/24/32/48/64).
     * @param seed  Initial state; zero is replaced by 1.
     */
    GaloisLfsr(unsigned width, uint64_t seed);

    /** Advance one step and return the new state. */
    uint64_t step();

    /** Advance @p n steps and return the final state. */
    uint64_t stepN(unsigned n);

    /** Current state without advancing. */
    uint64_t state() const { return reg; }

    /** Register width in bits. */
    unsigned width() const { return regWidth; }

    /** Reseed; zero is replaced by 1. */
    void reseed(uint64_t seed);

    /** Feedback polynomial (tap mask) for @p width. */
    static uint64_t tapsFor(unsigned width);

  private:
    unsigned regWidth;
    uint64_t taps;
    uint64_t stateMask;
    uint64_t reg;
};

/**
 * Fibonacci LFSR used by the data-segment filler. Each fuzzing
 * iteration reseeds it with a unique value (see §IV-C of the paper).
 */
class FibonacciLfsr
{
  public:
    FibonacciLfsr(unsigned width, uint64_t seed);

    /** Advance one step and return the output bit. */
    unsigned stepBit();

    /** Produce the next @p nbits as the low bits of the result. */
    uint64_t stepBits(unsigned nbits);

    uint64_t state() const { return reg; }
    void reseed(uint64_t seed);

  private:
    /** Word-at-a-time fast path of stepBits(64) at width 64. */
    uint64_t stepWord64();

    unsigned regWidth;
    uint64_t taps;
    uint64_t stateMask;
    uint64_t reg;
};

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_LFSR_HH
