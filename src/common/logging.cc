#include "common/logging.hh"

#include <cstdio>

namespace turbofuzz
{

namespace
{
LogLevel globalLevel = LogLevel::Info;

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: ", cond,
                 file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("debug", fmt, args);
    va_end(args);
}

} // namespace turbofuzz
