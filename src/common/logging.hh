/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  - an internal invariant was violated (a TurboFuzz bug);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  - the simulation cannot continue due to a user error
 *            (bad configuration, invalid arguments); exits cleanly.
 * warn()   - something suspicious happened but execution continues.
 * inform() - plain status output.
 */

#ifndef TURBOFUZZ_COMMON_LOGGING_HH
#define TURBOFUZZ_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace turbofuzz
{

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel { Quiet, Warn, Info, Debug };

/** Set the global verbosity threshold for inform()/debugLog(). */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/** Print an error message and abort (internal invariant violated). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an error message and exit(1) (user/configuration error). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message (only at LogLevel::Debug). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Backend for TF_ASSERT; prints context then the formatted detail. */
[[noreturn]] void panicAssert(const char *cond, const char *file,
                              int line, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Assert-like helper that survives NDEBUG builds.
 * Use for invariants whose violation means a TurboFuzz bug.
 */
#define TF_ASSERT(cond, ...)                                          \
    do {                                                              \
        if (!(cond)) {                                                \
            ::turbofuzz::panicAssert(#cond, __FILE__, __LINE__,       \
                                     __VA_ARGS__);                    \
        }                                                             \
    } while (0)

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_LOGGING_HH
