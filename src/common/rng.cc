#include "common/rng.hh"

#include "common/logging.hh"

namespace turbofuzz
{

uint64_t
hashLabel(std::string_view label)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : label) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

Rng
Rng::split(std::string_view label) const
{
    // Mix the current state with the label hash; the constant breaks
    // the trivial fixed point at state == hash.
    return Rng(state ^ hashLabel(label) ^ 0xa0761d6478bd642full);
}

} // namespace turbofuzz
