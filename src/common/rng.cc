#include "common/rng.hh"

#include "common/logging.hh"

namespace turbofuzz
{

uint64_t
hashLabel(std::string_view label)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : label) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

Rng
Rng::split(std::string_view label) const
{
    // Mix the current state with the label hash; the constant breaks
    // the trivial fixed point at state == hash.
    return Rng(state ^ hashLabel(label) ^ 0xa0761d6478bd642full);
}

uint64_t
Rng::range(uint64_t bound)
{
    TF_ASSERT(bound != 0, "range() bound must be nonzero");
    // Debiased multiply-shift rejection sampling.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
Rng::between(uint64_t lo, uint64_t hi)
{
    TF_ASSERT(lo <= hi, "between() requires lo <= hi");
    if (lo == 0 && hi == ~uint64_t{0})
        return next();
    return lo + range(hi - lo + 1);
}

bool
Rng::chance(uint64_t num, uint64_t den)
{
    TF_ASSERT(den != 0 && num <= den, "chance() requires num <= den != 0");
    if (num == den)
        return true;
    return range(den) < num;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace turbofuzz
