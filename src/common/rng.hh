/**
 * @file
 * Deterministic random number streams.
 *
 * Every stochastic component of TurboFuzz draws from a named Rng stream
 * derived from the campaign seed, so that whole campaigns replay
 * bit-exactly. The generator is SplitMix64: tiny state, excellent
 * statistical quality for this use, and trivially splittable.
 */

#ifndef TURBOFUZZ_COMMON_RNG_HH
#define TURBOFUZZ_COMMON_RNG_HH

#include <cstdint>
#include <string_view>

#include "common/logging.hh"

namespace turbofuzz
{

/** A deterministic SplitMix64 random stream. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Derive a child stream from this stream and a label. */
    Rng split(std::string_view label) const;

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /**
     * Uniform value in [0, bound); bound must be nonzero.
     *
     * Debiased rejection sampling, stream-identical to the classic
     * threshold-first form but with the divisions dodged where the
     * draw decides without them: power-of-two bounds reduce to a
     * mask, and a draw r >= bound always clears the rejection
     * threshold (threshold = 2^64 mod bound < bound), so the
     * threshold division only runs for the rare r < bound draw.
     */
    uint64_t
    range(uint64_t bound)
    {
        TF_ASSERT(bound != 0, "range() bound must be nonzero");
        const uint64_t m = bound - 1;
        if ((bound & m) == 0)
            return next() & m;
        for (;;) {
            const uint64_t r = next();
            if (r >= bound)
                return r % bound;
            if (r >= (0 - bound) % bound)
                return r; // r < bound: r % bound == r
        }
    }

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t
    between(uint64_t lo, uint64_t hi)
    {
        TF_ASSERT(lo <= hi, "between() requires lo <= hi");
        if (lo == 0 && hi == ~uint64_t{0})
            return next();
        return lo + range(hi - lo + 1);
    }

    /** Bernoulli trial with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        TF_ASSERT(den != 0 && num <= den,
                  "chance() requires num <= den != 0");
        if (num == den)
            return true;
        return range(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Current internal state (for serialization). */
    uint64_t rawState() const { return state; }

    /** Restore internal state. */
    void setRawState(uint64_t s) { state = s; }

  private:
    uint64_t state;
};

/** Stable 64-bit FNV-1a hash of a string (for stream labels). */
uint64_t hashLabel(std::string_view label);

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_RNG_HH
