/**
 * @file
 * Deterministic random number streams.
 *
 * Every stochastic component of TurboFuzz draws from a named Rng stream
 * derived from the campaign seed, so that whole campaigns replay
 * bit-exactly. The generator is SplitMix64: tiny state, excellent
 * statistical quality for this use, and trivially splittable.
 */

#ifndef TURBOFUZZ_COMMON_RNG_HH
#define TURBOFUZZ_COMMON_RNG_HH

#include <cstdint>
#include <string_view>

namespace turbofuzz
{

/** A deterministic SplitMix64 random stream. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Derive a child stream from this stream and a label. */
    Rng split(std::string_view label) const;

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    uint64_t range(uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t between(uint64_t lo, uint64_t hi);

    /** Bernoulli trial with probability num/den. */
    bool chance(uint64_t num, uint64_t den);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Current internal state (for serialization). */
    uint64_t rawState() const { return state; }

    /** Restore internal state. */
    void setRawState(uint64_t s) { state = s; }

  private:
    uint64_t state;
};

/** Stable 64-bit FNV-1a hash of a string (for stream labels). */
uint64_t hashLabel(std::string_view label);

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_RNG_HH
