#include "common/sim_clock.hh"

// SimClock is header-only today; this translation unit anchors the
// component in the build so future non-inline additions have a home.
