/**
 * @file
 * Simulated time accounting.
 *
 * The paper's results are wall-clock measurements on an FPGA SoC. This
 * reproduction charges every operation's cost to a SimClock in
 * picoseconds of *simulated* platform time, so multi-hour campaigns
 * compress into seconds of host time while preserving every relative
 * speed relationship (see DESIGN.md §4.1).
 */

#ifndef TURBOFUZZ_COMMON_SIM_CLOCK_HH
#define TURBOFUZZ_COMMON_SIM_CLOCK_HH

#include <cstdint>

namespace turbofuzz
{

/** Simulated time in picoseconds. */
using SimTime = uint64_t;

namespace sim_time
{
constexpr SimTime psPerNs = 1000;
constexpr SimTime psPerUs = 1000 * psPerNs;
constexpr SimTime psPerMs = 1000 * psPerUs;
constexpr SimTime psPerSec = 1000 * psPerMs;

/** Convert simulated picoseconds to (fractional) seconds. */
constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(psPerSec);
}

/** Convert (fractional) seconds to simulated picoseconds. */
constexpr SimTime
fromSeconds(double s)
{
    return static_cast<SimTime>(s * static_cast<double>(psPerSec));
}
} // namespace sim_time

/**
 * Monotonic simulated clock. Components advance it explicitly with the
 * cost of each modelled operation.
 */
class SimClock
{
  public:
    SimClock() = default;

    /** Advance by @p delta picoseconds. */
    void advance(SimTime delta) { nowPs += delta; }

    /** Advance by a number of cycles of a clock at @p hz. */
    void
    advanceCycles(uint64_t cycles, uint64_t hz)
    {
        nowPs += cycles * (sim_time::psPerSec / hz);
    }

    /** Current simulated time in picoseconds. */
    SimTime now() const { return nowPs; }

    /** Current simulated time in seconds. */
    double seconds() const { return sim_time::toSeconds(nowPs); }

    /** Reset to time zero. */
    void reset() { nowPs = 0; }

    /** Restore an absolute time (campaign checkpoint resume). */
    void restore(SimTime t) { nowPs = t; }

  private:
    SimTime nowPs = 0;
};

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_SIM_CLOCK_HH
