/**
 * @file
 * Small-buffer vector for hot per-iteration objects.
 *
 * The generator builds hundreds of short instruction blocks per
 * iteration; with std::vector each block costs one heap allocation
 * (and one more per copy, e.g. seed-block retention). SmallVec keeps
 * up to N elements inline — sized so every block the builder can emit
 * fits — and only spills to the heap beyond that, making steady-state
 * block construction allocation-free.
 */

#ifndef TURBOFUZZ_COMMON_SMALL_VEC_HH
#define TURBOFUZZ_COMMON_SMALL_VEC_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>

#include "common/logging.hh"

namespace turbofuzz
{

/**
 * Vector with N elements of inline storage, heap spill beyond.
 * Restricted to trivially copyable element types so relocation is a
 * memcpy — all the fuzzer's hot uses store instruction words.
 */
template <typename T, size_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVec requires trivially copyable elements");
    static_assert(N > 0, "inline capacity must be nonzero");

  public:
    SmallVec() = default;

    SmallVec(std::initializer_list<T> init) { assign(init); }

    SmallVec(const SmallVec &other) { copyFrom(other); }

    SmallVec(SmallVec &&other) noexcept { moveFrom(other); }

    SmallVec &
    operator=(const SmallVec &other)
    {
        if (this != &other) {
            destroy();
            copyFrom(other);
        }
        return *this;
    }

    SmallVec &
    operator=(SmallVec &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    SmallVec &
    operator=(std::initializer_list<T> init)
    {
        assign(init);
        return *this;
    }

    ~SmallVec() { destroy(); }

    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    size_t capacity() const { return cap; }

    T *data() { return ptr; }
    const T *data() const { return ptr; }

    T *begin() { return ptr; }
    T *end() { return ptr + count; }
    const T *begin() const { return ptr; }
    const T *end() const { return ptr + count; }

    T &
    operator[](size_t i)
    {
        TF_ASSERT(i < count, "SmallVec index %zu out of range", i);
        return ptr[i];
    }
    const T &
    operator[](size_t i) const
    {
        TF_ASSERT(i < count, "SmallVec index %zu out of range", i);
        return ptr[i];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[count - 1]; }
    const T &back() const { return (*this)[count - 1]; }

    void
    push_back(const T &v)
    {
        if (count == cap)
            grow(count + 1);
        ptr[count++] = v;
    }

    void
    pop_back()
    {
        TF_ASSERT(count > 0, "pop_back on empty SmallVec");
        --count;
    }

    void
    resize(size_t n)
    {
        if (n > cap)
            grow(n);
        for (size_t i = count; i < n; ++i)
            ptr[i] = T{};
        count = n;
    }

    void
    reserve(size_t n)
    {
        if (n > cap)
            grow(n);
    }

    void clear() { count = 0; }

    /** Erase the element at @p pos (an iterator into this vector). */
    T *
    erase(T *pos)
    {
        TF_ASSERT(pos >= ptr && pos < ptr + count,
                  "erase position out of range");
        std::memmove(pos, pos + 1,
                     sizeof(T) *
                         static_cast<size_t>(ptr + count - pos - 1));
        --count;
        return pos;
    }

    void
    assign(std::initializer_list<T> init)
    {
        clear();
        reserve(init.size());
        for (const T &v : init)
            ptr[count++] = v;
    }

    bool
    operator==(const SmallVec &other) const
    {
        return count == other.count &&
               std::equal(begin(), end(), other.begin());
    }
    bool operator!=(const SmallVec &other) const
    {
        return !(*this == other);
    }

  private:
    void
    grow(size_t need)
    {
        size_t ncap = cap * 2;
        if (ncap < need)
            ncap = need;
        T *nptr = new T[ncap];
        std::memcpy(nptr, ptr, sizeof(T) * count);
        if (ptr != inlineStore)
            delete[] ptr;
        ptr = nptr;
        cap = ncap;
    }

    void
    copyFrom(const SmallVec &other)
    {
        ptr = inlineStore;
        cap = N;
        count = 0;
        reserve(other.count);
        std::memcpy(ptr, other.ptr, sizeof(T) * other.count);
        count = other.count;
    }

    void
    moveFrom(SmallVec &other) noexcept
    {
        if (other.ptr != other.inlineStore) {
            // Steal the heap buffer.
            ptr = other.ptr;
            cap = other.cap;
            count = other.count;
            other.ptr = other.inlineStore;
            other.cap = N;
            other.count = 0;
        } else {
            ptr = inlineStore;
            cap = N;
            count = other.count;
            std::memcpy(ptr, other.ptr, sizeof(T) * count);
            other.count = 0;
        }
    }

    void
    destroy()
    {
        if (ptr != inlineStore)
            delete[] ptr;
        ptr = inlineStore;
        cap = N;
        count = 0;
    }

    T inlineStore[N];
    T *ptr = inlineStore;
    size_t cap = N;
    size_t count = 0;
};

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_SMALL_VEC_HH
