#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "soc/snapshot.hh"

namespace turbofuzz
{

void
TimeSeries::record(double time_sec, double value)
{
    if (!data.empty() && time_sec < data.back().timeSec) {
        panic("TimeSeries '%s': non-monotonic time %.6f < %.6f",
              seriesName.c_str(), time_sec, data.back().timeSec);
    }
    const bool keep = (callCount % stride) == 0;
    ++callCount;
    if (tailProvisional)
        data.pop_back(); // replace the previous "latest" sample
    data.push_back({time_sec, value});
    tailProvisional = !keep;
}

void
TimeSeries::setDecimation(uint64_t keep_every_n)
{
    TF_ASSERT(keep_every_n >= 1,
              "TimeSeries decimation must be >= 1");
    stride = keep_every_n;
}

double
TimeSeries::last() const
{
    return data.empty() ? 0.0 : data.back().value;
}

double
TimeSeries::timeToReach(double target) const
{
    for (const auto &s : data) {
        if (s.value >= target)
            return s.timeSec;
    }
    return -1.0;
}

double
TimeSeries::valueAt(double t) const
{
    double v = 0.0;
    for (const auto &s : data) {
        if (s.timeSec > t)
            break;
        v = s.value;
    }
    return v;
}

void
TimeSeries::saveState(soc::SnapshotWriter &out) const
{
    out.putU64(stride);
    out.putU64(callCount);
    out.putU8(tailProvisional ? 1 : 0);
    out.putU32(static_cast<uint32_t>(data.size()));
    for (const Sample &s : data) {
        out.putF64(s.timeSec);
        out.putF64(s.value);
    }
}

bool
TimeSeries::loadState(soc::SnapshotReader &in, std::string *error)
{
    auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };

    if (in.remaining() < 8 + 8 + 1 + 4)
        return fail("truncated time-series header");
    stride = in.getU64();
    if (stride < 1)
        return fail("bad time-series decimation");
    callCount = in.getU64();
    tailProvisional = in.getU8() != 0;
    const uint32_t count = in.getU32();
    if (count > in.remaining() / 16)
        return fail("time-series sample count exceeds buffer");
    data.clear();
    data.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        Sample s;
        s.timeSec = in.getF64();
        s.value = in.getF64();
        data.push_back(s);
    }
    return true;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : columnHeaders(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != columnHeaders.size()) {
        panic("TablePrinter: row has %zu cells, expected %zu",
              cells.size(), columnHeaders.size());
    }
    rows.push_back(std::move(cells));
}

std::string
TablePrinter::str() const
{
    std::vector<size_t> widths(columnHeaders.size());
    for (size_t c = 0; c < columnHeaders.size(); ++c)
        widths[c] = columnHeaders[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        out << "|";
        for (size_t c = 0; c < cells.size(); ++c) {
            out << " " << cells[c]
                << std::string(widths[c] - cells[c].size(), ' ') << " |";
        }
        out << "\n";
    };
    auto emit_rule = [&]() {
        out << "+";
        for (size_t c = 0; c < widths.size(); ++c)
            out << std::string(widths[c] + 2, '-') << "+";
        out << "\n";
    };

    emit_rule();
    emit_row(columnHeaders);
    emit_rule();
    for (const auto &row : rows)
        emit_row(row);
    emit_rule();
    return out.str();
}

void
TablePrinter::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::integer(uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

double
ThroughputMeter::commitsPerSec() const
{
    const double sec = elapsedSec();
    return sec > 0.0 ? static_cast<double>(commitCount) / sec : 0.0;
}

double
ThroughputMeter::itersPerSec() const
{
    const double sec = elapsedSec();
    return sec > 0.0 ? static_cast<double>(iterCount) / sec : 0.0;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        TF_ASSERT(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace turbofuzz
