/**
 * @file
 * Lightweight statistics: counters, time series and table printing.
 *
 * The benches reproduce the paper's tables and figures as text; the
 * helpers here keep their formatting consistent across binaries.
 */

#ifndef TURBOFUZZ_COMMON_STATS_HH
#define TURBOFUZZ_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace turbofuzz
{

/** One (time, value) sample of a coverage-versus-time curve. */
struct Sample
{
    double timeSec;
    double value;
};

/**
 * An append-only series of samples, e.g. coverage over simulated time.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(std::string series_name = "")
        : seriesName(std::move(series_name))
    {}

    void record(double time_sec, double value);

    const std::string &name() const { return seriesName; }
    const std::vector<Sample> &samples() const { return data; }
    bool empty() const { return data.empty(); }

    /** Last recorded value (0 if empty). */
    double last() const;

    /**
     * First time at which the series reaches @p target.
     * @return time in seconds, or a negative value if never reached.
     */
    double timeToReach(double target) const;

    /** Value at time @p t (stepwise interpolation; 0 before start). */
    double valueAt(double t) const;

  private:
    std::string seriesName;
    std::vector<Sample> data;
};

/**
 * Fixed-width text table mirroring the paper's table layout.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render to a string with aligned columns. */
    std::string str() const;

    /** Print to stdout. */
    void print() const;

    /** Format helper: fixed-precision double. */
    static std::string num(double v, int precision = 2);

    /** Format helper: integer with thousands separators. */
    static std::string integer(uint64_t v);

  private:
    std::vector<std::string> columnHeaders;
    std::vector<std::vector<std::string>> rows;
};

/** Geometric mean of a vector of positive values (0 if empty). */
double geomean(const std::vector<double> &values);

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_STATS_HH
