/**
 * @file
 * Lightweight statistics: counters, time series and table printing.
 *
 * The benches reproduce the paper's tables and figures as text; the
 * helpers here keep their formatting consistent across binaries.
 */

#ifndef TURBOFUZZ_COMMON_STATS_HH
#define TURBOFUZZ_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/clock.hh"

namespace turbofuzz::soc
{
class SnapshotWriter;
class SnapshotReader;
} // namespace turbofuzz::soc

namespace turbofuzz
{

/** One (time, value) sample of a coverage-versus-time curve. */
struct Sample
{
    double timeSec;
    double value;
};

/**
 * An append-only series of samples, e.g. coverage over simulated time.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(std::string series_name = "")
        : seriesName(std::move(series_name))
    {}

    void record(double time_sec, double value);

    /**
     * Sample decimation for unbounded recorders (long campaigns
     * record one sample per iteration): keep every Nth record() call
     * plus, always, the most recent one — the series tail stays
     * exact (last() never lags) while memory growth is bounded to
     * ~calls/N. N == 1 (the default) keeps every sample and is
     * bit-identical to a series without decimation. Changing N
     * mid-series affects only future record() calls.
     */
    void setDecimation(uint64_t keep_every_n);

    const std::string &name() const { return seriesName; }
    const std::vector<Sample> &samples() const { return data; }
    bool empty() const { return data.empty(); }

    /** Last recorded value (0 if empty). */
    double last() const;

    /**
     * First time at which the series reaches @p target.
     * @return time in seconds, or a negative value if never reached.
     */
    double timeToReach(double target) const;

    /** Value at time @p t (stepwise interpolation; 0 before start). */
    double valueAt(double t) const;

    /**
     * Checkpoint support: serialize samples plus the decimation
     * cursor state, so a resumed recorder continues the keep-every-N
     * pattern exactly where the checkpointed one left off.
     */
    void saveState(soc::SnapshotWriter &out) const;

    /** Restore a saveState() image (replaces all samples).
     *  @return false with @p error set on malformed input. */
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr);

  private:
    std::string seriesName;
    std::vector<Sample> data;

    uint64_t stride = 1;    ///< keep every Nth record() call
    uint64_t callCount = 0; ///< record() calls seen so far
    /** True when data.back() is the always-kept "latest" sample that
     *  the next record() replaces rather than appends after. */
    bool tailProvisional = false;
};

/**
 * Fixed-width text table mirroring the paper's table layout.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render to a string with aligned columns. */
    std::string str() const;

    /** Print to stdout. */
    void print() const;

    /** Format helper: fixed-precision double. */
    static std::string num(double v, int precision = 2);

    /** Format helper: integer with thousands separators. */
    static std::string integer(uint64_t v);

  private:
    std::vector<std::string> columnHeaders;
    std::vector<std::vector<std::string>> rows;
};

/** Geometric mean of a vector of positive values (0 if empty). */
double geomean(const std::vector<double> &values);

/**
 * Wall-clock (host-time) throughput accumulator. The campaign and
 * fleet report *simulated* time everywhere else; this meter is the
 * one place real elapsed time enters, so actual speedups of the
 * execution engine are visible in fleet summaries and benches. It
 * measures on the telemetry timebase (telemetry::WallClock), the
 * same clock trace spans and stage counters read.
 */
class ThroughputMeter
{
  public:
    ThroughputMeter() = default;

    /** Zero the counters and restart the clock. */
    void
    restart()
    {
        clock.restart();
        frozenNs = 0;
        stopped = false;
        commitCount = 0;
        iterCount = 0;
    }

    /**
     * Freeze the clock: every subsequent elapsedSec()/rate call uses
     * this single instant, so a time row and the rate rows derived
     * from it are mutually consistent.
     */
    void
    stop()
    {
        frozenNs = clock.elapsedNs();
        stopped = true;
    }

    void addCommits(uint64_t n) { commitCount += n; }
    void addIterations(uint64_t n) { iterCount += n; }

    uint64_t commits() const { return commitCount; }
    uint64_t iterations() const { return iterCount; }

    /** Host seconds from construction/restart() to now — or to
     *  stop(), once called. */
    double
    elapsedSec() const
    {
        const uint64_t ns = stopped ? frozenNs : clock.elapsedNs();
        return static_cast<double>(ns) * 1e-9;
    }

    /** Committed instructions per host second (0 before any time
     *  elapses). */
    double commitsPerSec() const;

    /** Iterations per host second. */
    double itersPerSec() const;

  private:
    telemetry::WallClock clock;
    uint64_t frozenNs = 0;
    bool stopped = false;
    uint64_t commitCount = 0;
    uint64_t iterCount = 0;
};

} // namespace turbofuzz

#endif // TURBOFUZZ_COMMON_STATS_HH
