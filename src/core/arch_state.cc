#include "core/arch_state.hh"

#include "soc/snapshot.hh"

namespace turbofuzz::core
{

namespace
{
// RV64 misa: MXL=2 (64-bit) plus IMAFD + U.
constexpr uint64_t resetMisa = (2ull << 62) | (1 << 0) /*A*/ |
                               (1 << 3) /*D*/ | (1 << 5) /*F*/ |
                               (1 << 8) /*I*/ | (1 << 12) /*M*/ |
                               (1 << 20) /*U*/;
} // namespace

ArchState::ArchState()
{
    reset(0);
}

void
ArchState::reset(uint64_t boot_pc)
{
    xregs.fill(0);
    fregs.fill(0);
    pc = boot_pc;
    fflags = 0;
    frm = 0;
    misa = resetMisa;
    mstatus = 0;
    setFsField(isa::csr::mstatusFsInitial);
    mtvec = 0;
    mscratch = 0;
    mepc = 0;
    mcause = 0;
    mtval = 0;
    minstret = 0;
    mcycle = 0;
    sscratch = 0;
    sepc = 0;
    scause = 0;
    stval = 0;
    resValid = false;
    resAddr = 0;
}

void
ArchState::saveState(soc::SnapshotWriter &out) const
{
    out.putU64(pc);
    for (uint64_t v : xregs)
        out.putU64(v);
    for (uint64_t v : fregs)
        out.putU64(v);
    out.putU64(fflags);
    out.putU64(frm);
    out.putU64(mstatus);
    out.putU64(misa);
    out.putU64(mtvec);
    out.putU64(mscratch);
    out.putU64(mepc);
    out.putU64(mcause);
    out.putU64(mtval);
    out.putU64(minstret);
    out.putU64(mcycle);
    out.putU64(sscratch);
    out.putU64(sepc);
    out.putU64(scause);
    out.putU64(stval);
    out.putU8(resValid ? 1 : 0);
    out.putU64(resAddr);
}

void
ArchState::loadState(soc::SnapshotReader &in)
{
    pc = in.getU64();
    for (uint64_t &v : xregs)
        v = in.getU64();
    for (uint64_t &v : fregs)
        v = in.getU64();
    fflags = in.getU64();
    frm = in.getU64();
    mstatus = in.getU64();
    misa = in.getU64();
    mtvec = in.getU64();
    mscratch = in.getU64();
    mepc = in.getU64();
    mcause = in.getU64();
    mtval = in.getU64();
    minstret = in.getU64();
    mcycle = in.getU64();
    sscratch = in.getU64();
    sepc = in.getU64();
    scause = in.getU64();
    stval = in.getU64();
    resValid = in.getU8() != 0;
    resAddr = in.getU64();
}

} // namespace turbofuzz::core
