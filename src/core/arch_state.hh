/**
 * @file
 * Architectural state of a simulated RV64 hart: program counter,
 * integer and floating-point register files, the modelled CSR subset
 * and the LR/SC reservation. Snapshot-serializable so the checker can
 * capture the complete design state on a mismatch.
 */

#ifndef TURBOFUZZ_CORE_ARCH_STATE_HH
#define TURBOFUZZ_CORE_ARCH_STATE_HH

#include <array>
#include <cstdint>

#include "isa/csr.hh"

namespace turbofuzz::soc
{
class SnapshotWriter;
class SnapshotReader;
} // namespace turbofuzz::soc

namespace turbofuzz::core
{

/** Full architectural state of one hart. */
class ArchState
{
  public:
    ArchState();

    /** Reset to the post-reset state with the given boot PC. */
    void reset(uint64_t boot_pc);

    // --- integer registers ---------------------------------------
    uint64_t x(unsigned idx) const { return xregs[idx & 0x1F]; }

    void
    setX(unsigned idx, uint64_t value)
    {
        if ((idx & 0x1F) != 0)
            xregs[idx & 0x1F] = value;
    }

    // --- floating point registers (raw 64-bit, NaN-boxed) --------
    uint64_t f(unsigned idx) const { return fregs[idx & 0x1F]; }
    void setF(unsigned idx, uint64_t raw) { fregs[idx & 0x1F] = raw; }

    // --- program counter ------------------------------------------
    uint64_t pc = 0;

    // --- CSR subset ------------------------------------------------
    uint64_t fflags = 0;
    uint64_t frm = 0;
    uint64_t mstatus;
    uint64_t misa;
    uint64_t mtvec = 0;
    uint64_t mscratch = 0;
    uint64_t mepc = 0;
    uint64_t mcause = 0;
    uint64_t mtval = 0;
    uint64_t minstret = 0;
    uint64_t mcycle = 0;
    uint64_t sscratch = 0;
    uint64_t sepc = 0;
    uint64_t scause = 0;
    uint64_t stval = 0;

    // --- LR/SC reservation -----------------------------------------
    bool resValid = false;
    uint64_t resAddr = 0;

    /** mstatus.FS field accessors. */
    uint64_t
    fsField() const
    {
        return (mstatus & isa::csr::mstatusFsMask) >>
               isa::csr::mstatusFsShift;
    }

    void
    setFsField(uint64_t fs)
    {
        mstatus = (mstatus & ~isa::csr::mstatusFsMask) |
                  ((fs & 0x3) << isa::csr::mstatusFsShift);
    }

    /** True when the FPU is architecturally enabled. */
    bool fpEnabled() const { return fsField() != isa::csr::mstatusFsOff; }

    void saveState(soc::SnapshotWriter &out) const;
    void loadState(soc::SnapshotReader &in);

  private:
    std::array<uint64_t, 32> xregs{};
    std::array<uint64_t, 32> fregs{};
};

} // namespace turbofuzz::core

#endif // TURBOFUZZ_CORE_ARCH_STATE_HH
