#include "core/bugs.hh"

#include "common/logging.hh"

namespace turbofuzz::core
{

namespace
{
const std::vector<BugInfo> catalog = {
    {BugId::C1, CoreKind::Cva6, "C1",
     "Incorrect setting of DZ flag for 0/0 division"},
    {BugId::C2, CoreKind::Cva6, "C2",
     "Incorrect fflags set when fdiv divides by infinity"},
    {BugId::C3, CoreKind::Cva6, "C3",
     "Wrong handling of invalid NaN-boxed single-precision fdiv"},
    {BugId::C4, CoreKind::Cva6, "C4",
     "Same as C2 (double-precision)"},
    {BugId::C5, CoreKind::Cva6, "C5",
     "Double-precision multiplication yields wrong sign when rounding "
     "down"},
    {BugId::C6, CoreKind::Cva6, "C6",
     "Duplicate of C3 (another stimulus)"},
    {BugId::C7, CoreKind::Cva6, "C7",
     "Co-simulation mismatch when reading stval CSR"},
    {BugId::C8, CoreKind::Cva6, "C8",
     "RV32A enabled without RV64A fails to raise exception"},
    {BugId::C9, CoreKind::Cva6, "C9",
     "fdiv returns infinity when dividing by 0"},
    {BugId::C10, CoreKind::Cva6, "C10",
     "Division of +0 by a normal value results in -0"},
    {BugId::B1, CoreKind::Boom, "B1",
     "Floating-point rounding mode not working correctly"},
    {BugId::B2, CoreKind::Boom, "B2",
     "FP instruction with invalid frm does not raise exception"},
    {BugId::R1, CoreKind::Rocket, "R1",
     "Executing ebreak does not increment minstret"},
};
} // namespace

const BugInfo &
bugInfo(BugId id)
{
    const auto idx = static_cast<size_t>(id);
    TF_ASSERT(idx < catalog.size(), "bad BugId %zu", idx);
    return catalog[idx];
}

const std::vector<BugInfo> &
allBugs()
{
    return catalog;
}

std::vector<BugId>
bugsOf(CoreKind kind)
{
    std::vector<BugId> out;
    for (const auto &b : catalog)
        if (b.design == kind)
            out.push_back(b.id);
    return out;
}

std::string_view
coreKindName(CoreKind kind)
{
    switch (kind) {
      case CoreKind::Rocket: return "Rocket";
      case CoreKind::Cva6: return "CVA6";
      case CoreKind::Boom: return "BOOM";
      default: panic("bad CoreKind");
    }
}

} // namespace turbofuzz::core
