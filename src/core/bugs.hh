/**
 * @file
 * The injectable bug catalog (Table II reproduction).
 *
 * Each entry reproduces one of the real-world issues the paper detects
 * on CVA6 (C1-C10), BOOM (B1-B2) and Rocket (R1), implemented as a
 * behaviour deviation in the DUT core. The golden reference ISS never
 * has bugs enabled; the differential checker reports the first
 * architecturally visible divergence.
 */

#ifndef TURBOFUZZ_CORE_BUGS_HH
#define TURBOFUZZ_CORE_BUGS_HH

#include <cstdint>
#include <string_view>
#include <vector>

namespace turbofuzz::core
{

/** Identifiers matching the paper's Table II labels. */
enum class BugId : uint32_t
{
    C1,  ///< Incorrect setting of DZ flag for 0/0 division
    C2,  ///< Incorrect fflags when fdiv.s divides by infinity
    C3,  ///< Invalid NaN-boxed single-precision fdiv operand honored
    C4,  ///< Same as C2 for double precision
    C5,  ///< fmul.d yields wrong sign when rounding down
    C6,  ///< Duplicate of C3 (reached by another stimulus)
    C7,  ///< Co-simulation mismatch when reading stval CSR
    C8,  ///< RV64A disabled but .d atomics fail to raise exception
    C9,  ///< fdiv returns infinity when dividing zero by zero
    C10, ///< Division of +0 by a normal value results in -0
    B1,  ///< FP rounding mode not honored (always round-to-nearest)
    B2,  ///< FP instruction with invalid frm does not raise exception
    R1,  ///< ebreak does not increment minstret
    NumBugs
};

/** Which core family a bug ships in. */
enum class CoreKind : uint8_t { Rocket, Cva6, Boom };

/** Catalog metadata for one bug. */
struct BugInfo
{
    BugId id;
    CoreKind design;
    std::string_view label;       ///< "C1", "B2", ...
    std::string_view description; ///< Table II wording
};

/** Metadata for @p id. */
const BugInfo &bugInfo(BugId id);

/** All catalog entries in Table II order. */
const std::vector<BugInfo> &allBugs();

/** Bugs shipped in @p kind cores. */
std::vector<BugId> bugsOf(CoreKind kind);

/** Display name of a core family. */
std::string_view coreKindName(CoreKind kind);

/** A set of enabled bugs (bitmask over BugId). */
class BugSet
{
  public:
    BugSet() = default;

    static BugSet
    single(BugId id)
    {
        BugSet s;
        s.enable(id);
        return s;
    }

    void enable(BugId id) { bits |= maskOf(id); }
    void disable(BugId id) { bits &= ~maskOf(id); }
    bool has(BugId id) const { return bits & maskOf(id); }
    bool empty() const { return bits == 0; }

    /** Raw bitmask (triage reproducer serialization). */
    uint32_t raw() const { return bits; }

    /** Rebuild from a raw() bitmask. */
    static BugSet
    fromRaw(uint32_t raw_bits)
    {
        BugSet s;
        s.bits = raw_bits;
        return s;
    }

    /** Enabled bugs in catalog order. */
    std::vector<BugId>
    enabled() const
    {
        std::vector<BugId> ids;
        for (uint32_t i = 0;
             i < static_cast<uint32_t>(BugId::NumBugs); ++i) {
            if (has(static_cast<BugId>(i)))
                ids.push_back(static_cast<BugId>(i));
        }
        return ids;
    }

  private:
    static uint32_t
    maskOf(BugId id)
    {
        return 1u << static_cast<uint32_t>(id);
    }

    uint32_t bits = 0;
};

} // namespace turbofuzz::core

#endif // TURBOFUZZ_CORE_BUGS_HH
