/**
 * @file
 * Per-instruction commit record.
 *
 * One CommitInfo is produced for every instruction the DUT or REF
 * processes. It is the contract consumed by (a) the differential
 * checker's instruction-level compare, (b) the RTL structural model's
 * microarchitectural event driver, and (c) the fuzzer's execution
 * monitors (prevalence accounting, exception templates).
 */

#ifndef TURBOFUZZ_CORE_COMMIT_INFO_HH
#define TURBOFUZZ_CORE_COMMIT_INFO_HH

#include <cstdint>

#include "isa/encoding.hh"
#include "isa/opcodes.hh"

namespace turbofuzz::core
{

/** Everything architecturally observable about one instruction. */
struct CommitInfo
{
    uint64_t pc = 0;
    uint64_t nextPc = 0;
    uint32_t insn = 0;

    bool decodeValid = false;
    isa::Opcode op = isa::Opcode::NumOpcodes;
    const isa::InstrDesc *desc = nullptr;
    isa::Operands ops;

    // Writeback.
    bool rdWritten = false;
    uint8_t rd = 0;
    uint64_t rdValue = 0;
    bool frdWritten = false;
    uint8_t frd = 0;
    uint64_t frdValue = 0;

    // Control flow.
    bool branchTaken = false;

    // Memory.
    bool memAccess = false;
    bool memWrite = false;
    uint64_t memAddr = 0;
    uint8_t memSize = 0;

    // Traps.
    bool trapped = false;
    uint64_t trapCause = 0;
    uint64_t trapValue = 0;

    // CSR side effects.
    bool csrWritten = false;
    uint16_t csrAddr = 0;
    uint64_t csrNewValue = 0;

    // FP flags accrued by this instruction.
    uint8_t fflagsAccrued = 0;

    // fclass-style class indices (0..9) of FP source operands, or
    // 0xFF when the instruction does not read that FP register. Used
    // by the RTL model's FPU state tracking.
    uint8_t fpClassRs1 = 0xFF;
    uint8_t fpClassRs2 = 0xFF;

    // Counter state after the instruction.
    uint64_t minstretAfter = 0;
};

} // namespace turbofuzz::core

#endif // TURBOFUZZ_CORE_COMMIT_INFO_HH
