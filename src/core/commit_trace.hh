/**
 * @file
 * Reusable commit-trace buffer — the contract between the batched
 * execution engine's pipeline stages.
 *
 * On the FPGA the generate/execute/check stages of the fuzzing loop
 * are decoupled hardware units joined by FIFOs; the software engine
 * models the same structure with two CommitTrace buffers (DUT and
 * REF) that one stage fills and later stages sweep. The buffer is a
 * ring in the allocation sense: clear() rewinds the write cursor but
 * keeps the storage, so the steady state performs no allocation at
 * all regardless of how many batches a campaign runs.
 */

#ifndef TURBOFUZZ_CORE_COMMIT_TRACE_HH
#define TURBOFUZZ_CORE_COMMIT_TRACE_HH

#include <cstddef>
#include <vector>

#include "core/commit_info.hh"

namespace turbofuzz::core
{

/** A bounded, reusable sequence of CommitInfo records. */
class CommitTrace
{
  public:
    /** Rewind the write cursor; capacity (and storage) is retained. */
    void clear() { used = 0; }

    /**
     * Next writable slot (allocates only when the high-water mark
     * grows). The slot's previous contents are stale; writers must
     * fully overwrite it (Iss::stepInto does).
     */
    CommitInfo &
    append()
    {
        if (used == buf.size())
            buf.emplace_back();
        return buf[used++];
    }

    size_t size() const { return used; }
    bool empty() const { return used == 0; }

    const CommitInfo *data() const { return buf.data(); }

    const CommitInfo &
    operator[](size_t idx) const
    {
        return buf[idx];
    }

    /** Pre-size the storage (e.g. to the engine's batch size). */
    void
    reserve(size_t n)
    {
        buf.reserve(n);
    }

  private:
    std::vector<CommitInfo> buf;
    size_t used = 0;
};

} // namespace turbofuzz::core

#endif // TURBOFUZZ_CORE_COMMIT_TRACE_HH
