/**
 * @file
 * Reusable commit-trace buffer — the contract between the batched
 * execution engine's pipeline stages.
 *
 * On the FPGA the generate/execute/check stages of the fuzzing loop
 * are decoupled hardware units joined by FIFOs; the software engine
 * models the same structure with two CommitTrace buffers (DUT and
 * REF) that one stage fills and later stages sweep. The buffer is a
 * ring in the allocation sense: clear() rewinds the write cursor but
 * keeps the storage, so the steady state performs no allocation at
 * all regardless of how many batches a campaign runs.
 *
 * Besides the array-of-structs record buffer, the trace maintains a
 * struct-of-arrays view of the hot fields (sealLast()): the checker's
 * batch diff and the engine's fused sweep then run as tight columnar
 * loops instead of striding ~130-byte CommitInfo records. The
 * columns are valid only while every appended record has been sealed
 * (columnsValid()); consumers fall back to the AoS records otherwise,
 * so traces filled by paths that never seal stay correct.
 */

#ifndef TURBOFUZZ_CORE_COMMIT_TRACE_HH
#define TURBOFUZZ_CORE_COMMIT_TRACE_HH

#include <cstddef>
#include <vector>

#include "core/commit_info.hh"

namespace turbofuzz::core
{

/** Bit flags of the columnar `kind` byte (one per commit). */
enum CommitKind : uint8_t
{
    KindTrapped     = 1u << 0,
    KindRdWritten   = 1u << 1,
    KindFrdWritten  = 1u << 2,
    KindCsrWritten  = 1u << 3,
    KindMemAccess   = 1u << 4,
    KindMemWrite    = 1u << 5,
    KindBranchTaken = 1u << 6,
    KindDecodeValid = 1u << 7,
};

/** A bounded, reusable sequence of CommitInfo records. */
class CommitTrace
{
  public:
    /** Parallel columns over the hot CommitInfo fields. */
    struct Columns
    {
        std::vector<uint64_t> pc;
        std::vector<uint64_t> nextPc;
        std::vector<uint64_t> rdValue;
        std::vector<uint64_t> frdValue;
        std::vector<uint64_t> trapCause;
        std::vector<uint64_t> csrNewValue;
        std::vector<uint64_t> minstretAfter;
        std::vector<uint64_t> memAddr;
        std::vector<uint8_t> kind;   ///< CommitKind bit set
        std::vector<uint8_t> fflags; ///< fflagsAccrued
        std::vector<uint8_t> memSize;
    };

    /** Rewind the write cursor; capacity (and storage) is retained. */
    void
    clear()
    {
        used = 0;
        colsSealed = 0;
    }

    /**
     * Next writable slot (allocates only when the high-water mark
     * grows). The slot's previous contents are stale; writers must
     * fully overwrite it (Iss::stepInto does).
     */
    CommitInfo &
    append()
    {
        if (used == buf.size())
            buf.emplace_back();
        return buf[used++];
    }

    /**
     * Mirror the most recently appended record into the columnar
     * view. Sealing every record in append order keeps the columns
     * valid; a missed seal simply freezes the sealed prefix and
     * columnar consumers fall back to the records.
     */
    void
    sealLast()
    {
        if (!sealing)
            return;
        const size_t i = used - 1;
        if (cols.pc.size() < buf.size())
            growColumns(buf.size());
        const CommitInfo &c = buf[i];
        cols.pc[i] = c.pc;
        cols.nextPc[i] = c.nextPc;
        cols.rdValue[i] = c.rdValue;
        cols.frdValue[i] = c.frdValue;
        cols.trapCause[i] = c.trapCause;
        cols.csrNewValue[i] = c.csrNewValue;
        cols.minstretAfter[i] = c.minstretAfter;
        cols.memAddr[i] = c.memAddr;
        cols.kind[i] = kindOf(c);
        cols.fflags[i] = c.fflagsAccrued;
        cols.memSize[i] = c.memSize;
        if (colsSealed == i)
            colsSealed = used;
    }

    /** Whether every appended record has a sealed column entry. */
    bool columnsValid() const { return colsSealed == used; }

    /**
     * Enable/disable column mirroring. A producer whose consumers
     * all take the AoS fallback (e.g. triage replay: no sweep hooks,
     * and the checker compares either representation) turns sealing
     * off to drop the per-commit column writes; columnsValid() then
     * reports false for non-empty traces, routing consumers to the
     * records. Takes effect from the next sealLast().
     */
    void setSealing(bool on) { sealing = on; }

    const Columns &columns() const { return cols; }

    /** The columnar kind byte of one record. */
    static uint8_t
    kindOf(const CommitInfo &c)
    {
        return static_cast<uint8_t>(
            (c.trapped ? KindTrapped : 0) |
            (c.rdWritten ? KindRdWritten : 0) |
            (c.frdWritten ? KindFrdWritten : 0) |
            (c.csrWritten ? KindCsrWritten : 0) |
            (c.memAccess ? KindMemAccess : 0) |
            (c.memWrite ? KindMemWrite : 0) |
            (c.branchTaken ? KindBranchTaken : 0) |
            (c.decodeValid ? KindDecodeValid : 0));
    }

    size_t size() const { return used; }
    bool empty() const { return used == 0; }

    const CommitInfo *data() const { return buf.data(); }

    const CommitInfo &
    operator[](size_t idx) const
    {
        return buf[idx];
    }

    /** Pre-size the storage (e.g. to the engine's batch size). */
    void
    reserve(size_t n)
    {
        buf.reserve(n);
    }

  private:
    void
    growColumns(size_t n)
    {
        cols.pc.resize(n);
        cols.nextPc.resize(n);
        cols.rdValue.resize(n);
        cols.frdValue.resize(n);
        cols.trapCause.resize(n);
        cols.csrNewValue.resize(n);
        cols.minstretAfter.resize(n);
        cols.memAddr.resize(n);
        cols.kind.resize(n);
        cols.fflags.resize(n);
        cols.memSize.resize(n);
    }

    std::vector<CommitInfo> buf;
    size_t used = 0;

    Columns cols;
    size_t colsSealed = 0; ///< length of the sealed column prefix
    bool sealing = true;   ///< setSealing(): mirror on sealLast()?
};

} // namespace turbofuzz::core

#endif // TURBOFUZZ_CORE_COMMIT_TRACE_HH
