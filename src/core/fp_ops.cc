#include "core/fp_ops.hh"

#include <cfenv>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.hh"
#include "isa/csr.hh"

namespace turbofuzz::core::fp
{

namespace
{

using isa::csr::flagDZ;
using isa::csr::flagNV;
using isa::csr::flagNX;
using isa::csr::flagOF;
using isa::csr::flagUF;

float
asFloat(uint32_t bits)
{
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

uint32_t
floatBits(float f)
{
    uint32_t b;
    std::memcpy(&b, &f, sizeof(b));
    return b;
}

double
asDouble(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

uint64_t
doubleBits(double d)
{
    uint64_t b;
    std::memcpy(&b, &d, sizeof(b));
    return b;
}

int
hostRound(uint8_t rm)
{
    switch (rm) {
      case isa::csr::rmRNE: return FE_TONEAREST;
      case isa::csr::rmRTZ: return FE_TOWARDZERO;
      case isa::csr::rmRDN: return FE_DOWNWARD;
      case isa::csr::rmRUP: return FE_UPWARD;
      // RMM (round to max magnitude) has no host equivalent; RNE is
      // the closest approximation and differs only on exact ties.
      case isa::csr::rmRMM: return FE_TONEAREST;
      default:
        panic("unresolved rounding mode %u reached fp backend", rm);
    }
}

/**
 * RAII scope that clears host FP flags, applies a rounding mode, and
 * translates raised host exceptions back to RISC-V fflags.
 */
class FpEnvScope
{
  public:
    explicit FpEnvScope(uint8_t rm)
    {
        savedRound = fegetround();
        fesetround(hostRound(rm));
        feclearexcept(FE_ALL_EXCEPT);
    }

    uint8_t
    flags() const
    {
        const int raised = fetestexcept(FE_ALL_EXCEPT);
        uint8_t f = 0;
        if (raised & FE_INEXACT)
            f |= flagNX;
        if (raised & FE_UNDERFLOW)
            f |= flagUF;
        if (raised & FE_OVERFLOW)
            f |= flagOF;
        if (raised & FE_DIVBYZERO)
            f |= flagDZ;
        if (raised & FE_INVALID)
            f |= flagNV;
        return f;
    }

    ~FpEnvScope()
    {
        feclearexcept(FE_ALL_EXCEPT);
        fesetround(savedRound);
    }

  private:
    int savedRound;
};

/** Min/max with RISC-V NaN and signed-zero rules (shared S/D body). */
template <typename T, typename Bits>
FpResult
minMax(bool want_min, T a, T b, Bits a_bits, Bits b_bits, bool a_nan,
       bool b_nan, bool a_snan, bool b_snan, uint64_t canonical,
       Bits sign_mask, auto pack)
{
    uint8_t flags = 0;
    if (a_snan || b_snan)
        flags |= flagNV;
    if (a_nan && b_nan)
        return {canonical, flags};
    if (a_nan)
        return {pack(b_bits), flags};
    if (b_nan)
        return {pack(a_bits), flags};
    // -0 orders below +0 for min/max purposes.
    if (a == b && ((a_bits ^ b_bits) & sign_mask)) {
        const bool a_neg = (a_bits & sign_mask) != 0;
        const Bits chosen = (want_min == a_neg) ? a_bits : b_bits;
        return {pack(chosen), flags};
    }
    const bool pick_a = want_min ? (a < b) : (a > b);
    return {pack(pick_a ? a_bits : b_bits), flags};
}

} // namespace

// --- NaN boxing ------------------------------------------------------

bool
isBoxedS(uint64_t raw)
{
    return (raw >> 32) == 0xFFFFFFFFull;
}

uint32_t
unboxS(uint64_t raw)
{
    return isBoxedS(raw) ? static_cast<uint32_t>(raw) : canonicalNanS;
}

uint64_t
boxS(uint32_t bits)
{
    return 0xFFFFFFFF00000000ull | bits;
}

// --- classification ---------------------------------------------------

bool
isNanS(uint32_t b)
{
    return (b & 0x7F800000u) == 0x7F800000u && (b & 0x007FFFFFu) != 0;
}

bool
isNanD(uint64_t b)
{
    return (b & 0x7FF0000000000000ull) == 0x7FF0000000000000ull &&
           (b & 0x000FFFFFFFFFFFFFull) != 0;
}

bool
isSignalingNanS(uint32_t b)
{
    return isNanS(b) && (b & 0x00400000u) == 0;
}

bool
isSignalingNanD(uint64_t b)
{
    return isNanD(b) && (b & 0x0008000000000000ull) == 0;
}

bool
isInfS(uint32_t b)
{
    return (b & 0x7FFFFFFFu) == 0x7F800000u;
}

bool
isInfD(uint64_t b)
{
    return (b & 0x7FFFFFFFFFFFFFFFull) == 0x7FF0000000000000ull;
}

bool
isZeroS(uint32_t b)
{
    return (b & 0x7FFFFFFFu) == 0;
}

bool
isZeroD(uint64_t b)
{
    return (b & 0x7FFFFFFFFFFFFFFFull) == 0;
}

namespace
{
/** Shared fclass body. */
template <typename Bits>
uint64_t
classifyBits(Bits b, Bits exp_mask, Bits frac_mask, Bits sign_mask,
             Bits quiet_bit)
{
    const bool neg = (b & sign_mask) != 0;
    const Bits exp = b & exp_mask;
    const Bits frac = b & frac_mask;

    if (exp == exp_mask) {
        if (frac == 0)
            return neg ? (1 << 0) : (1 << 7); // +-inf
        return (frac & quiet_bit) ? (1 << 9) : (1 << 8); // qNaN / sNaN
    }
    if (exp == 0) {
        if (frac == 0)
            return neg ? (1 << 3) : (1 << 4); // +-0
        return neg ? (1 << 2) : (1 << 5);     // +-subnormal
    }
    return neg ? (1 << 1) : (1 << 6); // +-normal
}
} // namespace

uint64_t
classifyS(uint32_t b)
{
    return classifyBits<uint32_t>(b, 0x7F800000u, 0x007FFFFFu,
                                  0x80000000u, 0x00400000u);
}

uint64_t
classifyD(uint64_t b)
{
    return classifyBits<uint64_t>(b, 0x7FF0000000000000ull,
                                  0x000FFFFFFFFFFFFFull,
                                  0x8000000000000000ull,
                                  0x0008000000000000ull);
}

// --- arithmetic --------------------------------------------------------

FpResult
arithS(ArithOp op, uint32_t a, uint32_t b, uint8_t rm)
{
    if (op == ArithOp::Min || op == ArithOp::Max) {
        return minMax<float, uint32_t>(
            op == ArithOp::Min, asFloat(a), asFloat(b), a, b, isNanS(a),
            isNanS(b), isSignalingNanS(a), isSignalingNanS(b),
            boxS(canonicalNanS), 0x80000000u,
            [](uint32_t bits) { return boxS(bits); });
    }

    FpEnvScope env(rm);
    float r;
    switch (op) {
      case ArithOp::Add: r = asFloat(a) + asFloat(b); break;
      case ArithOp::Sub: r = asFloat(a) - asFloat(b); break;
      case ArithOp::Mul: r = asFloat(a) * asFloat(b); break;
      case ArithOp::Div: r = asFloat(a) / asFloat(b); break;
      case ArithOp::Sqrt: r = std::sqrt(asFloat(a)); break;
      default: panic("bad ArithOp");
    }
    const uint8_t flags = env.flags();
    uint32_t bits = floatBits(r);
    if (isNanS(bits))
        bits = canonicalNanS;
    return {boxS(bits), flags};
}

FpResult
arithD(ArithOp op, uint64_t a, uint64_t b, uint8_t rm)
{
    if (op == ArithOp::Min || op == ArithOp::Max) {
        return minMax<double, uint64_t>(
            op == ArithOp::Min, asDouble(a), asDouble(b), a, b,
            isNanD(a), isNanD(b), isSignalingNanD(a), isSignalingNanD(b),
            canonicalNanD, 0x8000000000000000ull,
            [](uint64_t bits) { return bits; });
    }

    FpEnvScope env(rm);
    double r;
    switch (op) {
      case ArithOp::Add: r = asDouble(a) + asDouble(b); break;
      case ArithOp::Sub: r = asDouble(a) - asDouble(b); break;
      case ArithOp::Mul: r = asDouble(a) * asDouble(b); break;
      case ArithOp::Div: r = asDouble(a) / asDouble(b); break;
      case ArithOp::Sqrt: r = std::sqrt(asDouble(a)); break;
      default: panic("bad ArithOp");
    }
    const uint8_t flags = env.flags();
    uint64_t bits = doubleBits(r);
    if (isNanD(bits))
        bits = canonicalNanD;
    return {bits, flags};
}

FpResult
fmaS(uint32_t a, uint32_t b, uint32_t c, bool neg_prod, bool neg_addend,
     uint8_t rm)
{
    FpEnvScope env(rm);
    float fa = asFloat(a);
    float fb = asFloat(b);
    float fc = asFloat(c);
    if (neg_prod)
        fa = -fa;
    if (neg_addend)
        fc = -fc;
    // -(a*b) via -a keeps the product's magnitude rounding identical;
    // fma rounds once at the end as required.
    float r = std::fmaf(fa, fb, fc);
    // fma(inf, 0, c) must raise NV even if c is NaN-free on some hosts.
    uint8_t flags = env.flags();
    const bool prod_invalid =
        (isInfS(a) && isZeroS(b)) || (isZeroS(a) && isInfS(b));
    if (prod_invalid)
        flags |= flagNV;
    uint32_t bits = floatBits(r);
    if (isNanS(bits))
        bits = canonicalNanS;
    return {boxS(bits), flags};
}

FpResult
fmaD(uint64_t a, uint64_t b, uint64_t c, bool neg_prod, bool neg_addend,
     uint8_t rm)
{
    FpEnvScope env(rm);
    double fa = asDouble(a);
    double fb = asDouble(b);
    double fc = asDouble(c);
    if (neg_prod)
        fa = -fa;
    if (neg_addend)
        fc = -fc;
    double r = std::fma(fa, fb, fc);
    uint8_t flags = env.flags();
    const bool prod_invalid =
        (isInfD(a) && isZeroD(b)) || (isZeroD(a) && isInfD(b));
    if (prod_invalid)
        flags |= flagNV;
    uint64_t bits = doubleBits(r);
    if (isNanD(bits))
        bits = canonicalNanD;
    return {bits, flags};
}

// --- comparisons --------------------------------------------------------

namespace
{
template <typename T>
FpResult
cmpBody(CmpOp op, T a, T b, bool a_nan, bool b_nan, bool any_snan)
{
    uint8_t flags = 0;
    const bool any_nan = a_nan || b_nan;
    if (op == CmpOp::Eq) {
        if (any_snan)
            flags |= flagNV;
        return {static_cast<uint64_t>(!any_nan && a == b), flags};
    }
    if (any_nan) {
        flags |= flagNV; // flt/fle signal on any NaN
        return {0, flags};
    }
    const bool r = (op == CmpOp::Lt) ? (a < b) : (a <= b);
    return {static_cast<uint64_t>(r), flags};
}
} // namespace

FpResult
cmpS(CmpOp op, uint32_t a, uint32_t b)
{
    return cmpBody<float>(op, asFloat(a), asFloat(b), isNanS(a),
                          isNanS(b),
                          isSignalingNanS(a) || isSignalingNanS(b));
}

FpResult
cmpD(CmpOp op, uint64_t a, uint64_t b)
{
    return cmpBody<double>(op, asDouble(a), asDouble(b), isNanD(a),
                           isNanD(b),
                           isSignalingNanD(a) || isSignalingNanD(b));
}

// --- conversions ----------------------------------------------------------

namespace
{

/** Float-to-int conversion core with saturation. */
FpResult
f2iBody(double x, bool is_nan, bool is_signed, bool is_64bit, uint8_t rm)
{
    // Saturation values.
    const uint64_t pos_sat =
        is_signed ? (is_64bit ? 0x7FFFFFFFFFFFFFFFull : 0x7FFFFFFFull)
                  : ~uint64_t{0};
    const uint64_t neg_sat =
        is_signed ? (is_64bit ? 0x8000000000000000ull
                              : 0xFFFFFFFF80000000ull)
                  : 0;

    if (is_nan)
        return {pos_sat, flagNV};

    double rounded;
    uint8_t flags;
    {
        FpEnvScope env(rm);
        rounded = std::rint(x);
        flags = env.flags() & flagNX;
    }

    // Exact bounds as doubles: 2^31, 2^63, 2^32, 2^64.
    const double s32_hi = 2147483648.0;
    const double s64_hi = 9223372036854775808.0;
    const double u32_hi = 4294967296.0;
    const double u64_hi = 18446744073709551616.0;

    bool over = false;
    bool under = false;
    if (is_signed) {
        const double hi = is_64bit ? s64_hi : s32_hi;
        over = rounded >= hi;
        under = rounded < -hi;
    } else {
        const double hi = is_64bit ? u64_hi : u32_hi;
        over = rounded >= hi;
        under = rounded <= -1.0;
    }
    if (over)
        return {pos_sat, flagNV};
    if (under)
        return {neg_sat, flagNV};

    uint64_t result;
    if (is_signed) {
        const int64_t v = static_cast<int64_t>(rounded);
        result = is_64bit
                     ? static_cast<uint64_t>(v)
                     : static_cast<uint64_t>(static_cast<int64_t>(
                           static_cast<int32_t>(v)));
    } else {
        const uint64_t v = static_cast<uint64_t>(rounded);
        result = is_64bit ? v
                          : static_cast<uint64_t>(static_cast<int64_t>(
                                static_cast<int32_t>(
                                    static_cast<uint32_t>(v))));
    }
    return {result, flags};
}

} // namespace

FpResult
cvtSToI(uint32_t a, bool is_signed, bool is_64bit, uint8_t rm)
{
    return f2iBody(static_cast<double>(asFloat(a)), isNanS(a), is_signed,
                   is_64bit, rm);
}

FpResult
cvtDToI(uint64_t a, bool is_signed, bool is_64bit, uint8_t rm)
{
    return f2iBody(asDouble(a), isNanD(a), is_signed, is_64bit, rm);
}

FpResult
cvtIToS(uint64_t v, bool is_signed, bool is_64bit, uint8_t rm)
{
    FpEnvScope env(rm);
    float r;
    if (is_signed) {
        const int64_t s =
            is_64bit ? static_cast<int64_t>(v)
                     : static_cast<int64_t>(static_cast<int32_t>(v));
        r = static_cast<float>(s);
    } else {
        const uint64_t u = is_64bit ? v : (v & 0xFFFFFFFFull);
        r = static_cast<float>(u);
    }
    return {boxS(floatBits(r)), env.flags()};
}

FpResult
cvtIToD(uint64_t v, bool is_signed, bool is_64bit, uint8_t rm)
{
    FpEnvScope env(rm);
    double r;
    if (is_signed) {
        const int64_t s =
            is_64bit ? static_cast<int64_t>(v)
                     : static_cast<int64_t>(static_cast<int32_t>(v));
        r = static_cast<double>(s);
    } else {
        const uint64_t u = is_64bit ? v : (v & 0xFFFFFFFFull);
        r = static_cast<double>(u);
    }
    return {doubleBits(r), env.flags()};
}

FpResult
cvtSToD(uint32_t a)
{
    uint8_t flags = 0;
    if (isSignalingNanS(a))
        flags |= flagNV;
    if (isNanS(a))
        return {canonicalNanD, flags};
    return {doubleBits(static_cast<double>(asFloat(a))), flags};
}

FpResult
cvtDToS(uint64_t a, uint8_t rm)
{
    uint8_t flags = 0;
    if (isSignalingNanD(a))
        flags |= flagNV;
    if (isNanD(a))
        return {boxS(canonicalNanS), flags};
    FpEnvScope env(rm);
    const float r = static_cast<float>(asDouble(a));
    flags |= env.flags();
    uint32_t bits = floatBits(r);
    if (isNanS(bits))
        bits = canonicalNanS;
    return {boxS(bits), flags};
}

// --- sign injection --------------------------------------------------------

uint32_t
sgnjS(SgnOp op, uint32_t a, uint32_t b)
{
    const uint32_t sign = 0x80000000u;
    switch (op) {
      case SgnOp::Copy: return (a & ~sign) | (b & sign);
      case SgnOp::Negate: return (a & ~sign) | (~b & sign);
      case SgnOp::XorSign: return a ^ (b & sign);
      default: panic("bad SgnOp");
    }
}

uint64_t
sgnjD(SgnOp op, uint64_t a, uint64_t b)
{
    const uint64_t sign = 0x8000000000000000ull;
    switch (op) {
      case SgnOp::Copy: return (a & ~sign) | (b & sign);
      case SgnOp::Negate: return (a & ~sign) | (~b & sign);
      case SgnOp::XorSign: return a ^ (b & sign);
      default: panic("bad SgnOp");
    }
}

} // namespace turbofuzz::core::fp
