/**
 * @file
 * IEEE-754 helpers with RISC-V semantics (flags, NaN boxing,
 * canonical NaNs, saturating conversions).
 *
 * Arithmetic is delegated to host hardware under <cfenv> control,
 * with manual handling of every case where RISC-V semantics differ
 * from a plain C expression (min/max NaN rules, compare signaling,
 * conversion saturation, canonical NaN results). All functions are
 * pure: they take raw bit patterns and a rounding mode, and return raw
 * bits plus the accrued fflags.
 */

#ifndef TURBOFUZZ_CORE_FP_OPS_HH
#define TURBOFUZZ_CORE_FP_OPS_HH

#include <cstdint>

namespace turbofuzz::core::fp
{

/** Result bits plus accrued exception flags (isa::csr::flag*). */
struct FpResult
{
    uint64_t bits;
    uint8_t flags;
};

constexpr uint32_t canonicalNanS = 0x7fc00000u;
constexpr uint64_t canonicalNanD = 0x7ff8000000000000ull;

// --- NaN boxing ----------------------------------------------------

/** True when @p raw is a properly NaN-boxed single (upper 32 ones). */
bool isBoxedS(uint64_t raw);

/**
 * Extract the single-precision payload; improperly boxed values read
 * as the canonical NaN (the rule bug C3 violates).
 */
uint32_t unboxS(uint64_t raw);

/** Box a single-precision value into a 64-bit register image. */
uint64_t boxS(uint32_t bits);

// --- classification ------------------------------------------------

bool isNanS(uint32_t bits);
bool isNanD(uint64_t bits);
bool isSignalingNanS(uint32_t bits);
bool isSignalingNanD(uint64_t bits);
bool isInfS(uint32_t bits);
bool isInfD(uint64_t bits);
bool isZeroS(uint32_t bits);
bool isZeroD(uint64_t bits);

/** fclass.s / fclass.d result mask. */
uint64_t classifyS(uint32_t bits);
uint64_t classifyD(uint64_t bits);

// --- arithmetic ------------------------------------------------------

enum class ArithOp { Add, Sub, Mul, Div, Sqrt, Min, Max };

/**
 * Single-precision arithmetic. For Sqrt, @p b is ignored. @p rm is the
 * resolved rounding mode (0..4).
 */
FpResult arithS(ArithOp op, uint32_t a, uint32_t b, uint8_t rm);

/** Double-precision arithmetic. */
FpResult arithD(ArithOp op, uint64_t a, uint64_t b, uint8_t rm);

/**
 * Fused multiply-add family: computes
 * (neg_prod ? -(a*b) : a*b) + (neg_addend ? -c : c).
 */
FpResult fmaS(uint32_t a, uint32_t b, uint32_t c, bool neg_prod,
              bool neg_addend, uint8_t rm);
FpResult fmaD(uint64_t a, uint64_t b, uint64_t c, bool neg_prod,
              bool neg_addend, uint8_t rm);

// --- comparisons ------------------------------------------------------

enum class CmpOp { Eq, Lt, Le };

/** Compare; result bits are 0/1 in the integer domain. */
FpResult cmpS(CmpOp op, uint32_t a, uint32_t b);
FpResult cmpD(CmpOp op, uint64_t a, uint64_t b);

// --- conversions ------------------------------------------------------

/** Float-to-integer with RISC-V saturation semantics. */
FpResult cvtSToI(uint32_t a, bool is_signed, bool is_64bit, uint8_t rm);
FpResult cvtDToI(uint64_t a, bool is_signed, bool is_64bit, uint8_t rm);

/** Integer-to-float. */
FpResult cvtIToS(uint64_t v, bool is_signed, bool is_64bit, uint8_t rm);
FpResult cvtIToD(uint64_t v, bool is_signed, bool is_64bit, uint8_t rm);

/** Precision conversions. */
FpResult cvtSToD(uint32_t a);
FpResult cvtDToS(uint64_t a, uint8_t rm);

// --- sign injection ---------------------------------------------------

enum class SgnOp { Copy, Negate, XorSign };

uint32_t sgnjS(SgnOp op, uint32_t a, uint32_t b);
uint64_t sgnjD(SgnOp op, uint64_t a, uint64_t b);

} // namespace turbofuzz::core::fp

#endif // TURBOFUZZ_CORE_FP_OPS_HH
