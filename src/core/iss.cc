#include "core/iss.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "core/fp_ops.hh"
#include "isa/csr.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::core
{

namespace csr = isa::csr;
using isa::Opcode;

namespace
{

/** TURBOFUZZ_DECODE_CACHE=0|off forces the decode cache off (the CI
 *  equivalence matrix leg); anything else leaves the option alone. */
bool
decodeCacheEnvEnabled()
{
    // Sampled once at hart construction, before any worker threads
    // exist; nothing in the process mutates the environment.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *e = std::getenv("TURBOFUZZ_DECODE_CACHE");
    return !(e && (std::strcmp(e, "0") == 0 ||
                   std::strcmp(e, "off") == 0));
}

} // namespace

Iss::Iss(soc::Memory *mem) : Iss(mem, Options{})
{
}

Iss::Iss(soc::Memory *mem, Options options)
    : memPtr(mem), opts(options)
{
    TF_ASSERT(memPtr != nullptr, "Iss requires a memory");
    dcacheOn = opts.decodeCache && decodeCacheEnvEnabled();
    if (dcacheOn) {
        // Entries stay uninitialized (validity is the generation
        // array): hart construction is on the per-replay path, and
        // value-initializing ~256 KiB of lines would dominate short
        // replays.
        dcache =
            std::make_unique_for_overwrite<DecodeEntry[]>(dcacheEntries);
        dcacheGen = std::make_unique<uint32_t[]>(dcacheEntries);
    }
    reset();
}

void
Iss::reset()
{
    reset(opts.resetPc);
}

void
Iss::reset(uint64_t pc)
{
    st.reset(pc);
}

void
Iss::clearAccessRanges()
{
    ranges.clear();
    // Cached entries assert fetch accessibility; range edits void
    // that proof, so the cache starts cold.
    clearDecodeCache();
}

void
Iss::addAccessRange(uint64_t base, uint64_t size)
{
    ranges.push_back({base, size});
    clearDecodeCache();
}

void
Iss::clearDecodeCache()
{
    // O(1): bump the generation, orphaning every line. The replay
    // path edits access ranges on every replay; an eager 256 KiB
    // memset here dominated its runtime.
    if (!dcacheOn)
        return;
    if (++dcacheGenCur == 0) {
        // Generation wrap (needs 2^32 clears): lines stamped by the
        // previous epoch of the counter must not alias as live.
        std::fill_n(dcacheGen.get(), dcacheEntries, 0u);
        dcacheGenCur = 1;
    }
}

// tflint: hot-path
const Iss::DecodeEntry *
Iss::lookupDecode(uint64_t pc)
{
    const size_t i = dcacheIdx(pc);
    DecodeEntry &e = dcache[i];
    if (dcacheGen[i] != dcacheGenCur || e.pc != pc) {
        ++dstats.miss;
        return nullptr;
    }
    const uint64_t cur = memPtr->fetchEpochOfSlot(e.slot);
    if (e.epoch == cur) {
        ++dstats.hit;
        return &e;
    }
    // Stale epoch: refetch and compare. The common case is an
    // aliasing write (e.g. the per-iteration segment rewrite) that
    // left this word unchanged — refresh the snapshot and reuse the
    // decode. An actually changed word invalidates the line.
    const uint32_t insn = memPtr->read32(pc);
    e.slot = memPtr->fetchSlotFor(pc);
    e.epoch = memPtr->fetchEpochOfSlot(e.slot);
    if (insn == e.insn) {
        ++dstats.hit;
        return &e;
    }
    ++dstats.invalidate;
    dcacheGen[i] = 0;
    return nullptr;
}

// tflint: hot-path
void
Iss::fillDecode(uint64_t pc, uint32_t insn, const isa::Decoded &dec)
{
    const size_t i = dcacheIdx(pc);
    DecodeEntry &e = dcache[i];
    dcacheGen[i] = dcacheGenCur;
    e.pc = pc;
    e.insn = insn;
    e.slot = memPtr->fetchSlotFor(pc);
    e.epoch = memPtr->fetchEpochOfSlot(e.slot);
    e.decValid = dec.valid;
    if (dec.valid) {
        e.op = dec.op;
        e.desc = dec.desc;
        e.ops = dec.ops;
        // Straight-line instructions have no control-flow or system
        // side exit; they are superblock (stepStraight) material.
        // Loads/stores/FP/AMO qualify — they can still trap, which
        // stepStraight handles as a side exit after the commit.
        constexpr uint32_t sideExitFlags =
            isa::FlagBranch | isa::FlagJal | isa::FlagJalr |
            isa::FlagCsr | isa::FlagSystem;
        e.straight = (dec.desc->flags & sideExitFlags) == 0;
    } else {
        e.op = isa::Opcode::NumOpcodes;
        e.desc = nullptr;
        e.ops = isa::Operands{};
        e.straight = false;
    }
}

bool
Iss::accessible(uint64_t addr, uint64_t size) const
{
    if (ranges.empty())
        return true;
    for (const auto &r : ranges) {
        if (addr >= r.base && addr + size <= r.base + r.size)
            return true;
    }
    return false;
}

void
Iss::trap(CommitInfo &ci, uint64_t cause, uint64_t tval)
{
    ci.trapped = true;
    ci.trapCause = cause;
    ci.trapValue = tval;
    st.mepc = ci.pc;
    st.mcause = cause;
    st.mtval = tval;
    // M-only model: mirror the trap value into stval as well so the
    // stval read path (bug C7) is architecturally exercised.
    st.sepc = ci.pc;
    st.scause = cause;
    st.stval = tval;
    st.pc = st.mtvec & ~uint64_t{3};
    ci.nextPc = st.pc;
}

bool
Iss::resolveRm(uint8_t rm_field, uint8_t &resolved) const
{
    uint8_t rm = rm_field;
    if (rm == csr::rmDYN)
        rm = static_cast<uint8_t>(st.frm);
    if (rm > csr::rmRMM) {
        if (hasBug(BugId::B2)) {
            // B2: invalid rounding mode silently falls back to RNE
            // instead of raising an illegal-instruction exception.
            resolved = csr::rmRNE;
            return true;
        }
        return false;
    }
    resolved = rm;
    return true;
}

bool
Iss::csrRead(uint16_t addr, uint64_t &value) const
{
    switch (addr) {
      case csr::fflags: value = st.fflags; return true;
      case csr::frm: value = st.frm; return true;
      case csr::fcsr: value = (st.frm << 5) | st.fflags; return true;
      case csr::mstatus: value = st.mstatus; return true;
      case csr::misa: value = st.misa; return true;
      case csr::mtvec: value = st.mtvec; return true;
      case csr::mscratch: value = st.mscratch; return true;
      case csr::mepc: value = st.mepc; return true;
      case csr::mcause: value = st.mcause; return true;
      case csr::mtval: value = st.mtval; return true;
      case csr::minstret: value = st.minstret; return true;
      case csr::mcycle: value = st.mcycle; return true;
      case csr::instret: value = st.minstret; return true;
      case csr::cycle: value = st.mcycle; return true;
      case csr::sscratch: value = st.sscratch; return true;
      case csr::sepc: value = st.sepc; return true;
      case csr::scause: value = st.scause; return true;
      case csr::stval:
        // C7: the stval read path returns the *previous* trap value
        // register instead of the architected one, causing a
        // co-simulation mismatch when stval is read after a trap.
        value = hasBug(BugId::C7) ? st.mscratch : st.stval;
        return true;
      case csr::mhartid: value = 0; return true;
      default: return false;
    }
}

bool
Iss::csrWrite(uint16_t addr, uint64_t value)
{
    switch (addr) {
      case csr::fflags:
        st.fflags = value & 0x1F;
        st.setFsField(csr::mstatusFsDirty);
        return true;
      case csr::frm:
        st.frm = value & 0x7;
        st.setFsField(csr::mstatusFsDirty);
        return true;
      case csr::fcsr:
        st.fflags = value & 0x1F;
        st.frm = (value >> 5) & 0x7;
        st.setFsField(csr::mstatusFsDirty);
        return true;
      case csr::mstatus:
        // WARL subset: only FS is writable in this model.
        st.setFsField((value & csr::mstatusFsMask) >>
                      csr::mstatusFsShift);
        return true;
      case csr::misa:
        return true; // WARL: writes ignored
      case csr::mtvec:
        st.mtvec = value & ~uint64_t{3};
        return true;
      case csr::mscratch: st.mscratch = value; return true;
      case csr::mepc: st.mepc = value & ~uint64_t{1}; return true;
      case csr::mcause: st.mcause = value; return true;
      case csr::mtval: st.mtval = value; return true;
      case csr::minstret: st.minstret = value; return true;
      case csr::mcycle: st.mcycle = value; return true;
      case csr::sscratch: st.sscratch = value; return true;
      case csr::sepc: st.sepc = value & ~uint64_t{1}; return true;
      case csr::scause: st.scause = value; return true;
      case csr::stval: st.stval = value; return true;
      case csr::cycle:
      case csr::instret:
      case csr::mhartid:
        return false; // read-only
      default: return false;
    }
}

CommitInfo
Iss::step()
{
    CommitInfo ci;
    stepInto(ci);
    return ci;
}

// tflint: hot-path
void
Iss::stepInto(CommitInfo &out)
{
    out = CommitInfo{};
    CommitInfo &ci = out;
    ci.pc = st.pc;
    st.mcycle += 1;

    // Fetch.
    if (ci.pc & 0x3) {
        trap(ci, csr::causeMisalignedFetch, ci.pc);
        st.minstret += 1;
        ci.minstretAfter = st.minstret;
        return;
    }
    // Fetch + decode, through the decode cache when it can prove the
    // cached word is current (a hit implies fetch accessibility —
    // range edits clear the cache).
    const DecodeEntry *hit = dcacheOn ? lookupDecode(ci.pc) : nullptr;
    if (hit) {
        ci.insn = hit->insn;
        ci.nextPc = ci.pc + 4;
        if (!hit->decValid) {
            trap(ci, csr::causeIllegalInstruction, ci.insn);
            st.minstret += 1;
            ci.minstretAfter = st.minstret;
            return;
        }
        ci.decodeValid = true;
        ci.op = hit->op;
        ci.desc = hit->desc;
        ci.ops = hit->ops;
    } else {
        if (!accessible(ci.pc, 4)) {
            trap(ci, csr::causeLoadAccessFault, ci.pc);
            st.minstret += 1;
            ci.minstretAfter = st.minstret;
            return;
        }
        ci.insn = memPtr->read32(ci.pc);
        ci.nextPc = ci.pc + 4;

        // Decode.
        const isa::Decoded dec = isa::decode(ci.insn);
        if (dcacheOn)
            fillDecode(ci.pc, ci.insn, dec);
        if (!dec.valid) {
            trap(ci, csr::causeIllegalInstruction, ci.insn);
            st.minstret += 1;
            ci.minstretAfter = st.minstret;
            return;
        }
        ci.decodeValid = true;
        ci.op = dec.op;
        ci.desc = dec.desc;
        ci.ops = dec.ops;
    }

    execute(ci);

    if (!ci.trapped)
        st.pc = ci.nextPc;

    // Golden retirement counting: every processed instruction bumps
    // minstret. Bug R1 suppresses the bump for ebreak.
    const bool r1_suppressed =
        hasBug(BugId::R1) && ci.op == Opcode::Ebreak;
    if (!r1_suppressed)
        st.minstret += 1;
    ci.minstretAfter = st.minstret;

    st.fflags |= ci.fflagsAccrued;
}

// tflint: hot-path
uint64_t
Iss::stepStraight(CommitTrace &trace, uint64_t max_steps)
{
    if (!dcacheOn)
        return 0;
    uint64_t n = 0;
    while (n < max_steps) {
        const uint64_t pc = st.pc;
        if (pc & 0x3)
            break;
        const size_t i = dcacheIdx(pc);
        const DecodeEntry &e = dcache[i];
        if (dcacheGen[i] != dcacheGenCur || e.pc != pc ||
            !e.straight ||
            e.epoch != memPtr->fetchEpochOfSlot(e.slot)) {
            // Side exit before the step: the caller's slow step
            // revalidates/refills through lookupDecode (which also
            // does the stats accounting for this pc).
            break;
        }
        ++dstats.hit;

        // Replica of stepInto() minus fetch/decode, for straight
        // instructions only. Ebreak carries FlagSystem and is never
        // straight, so the R1 minstret suppression cannot apply here.
        CommitInfo &ci = trace.append();
        ci = CommitInfo{};
        ci.pc = pc;
        st.mcycle += 1;
        ci.insn = e.insn;
        ci.nextPc = pc + 4;
        ci.decodeValid = true;
        ci.op = e.op;
        ci.desc = e.desc;
        ci.ops = e.ops;

        execute(ci);

        if (!ci.trapped)
            st.pc = ci.nextPc;
        st.minstret += 1;
        ci.minstretAfter = st.minstret;
        st.fflags |= ci.fflagsAccrued;
        trace.sealLast();
        ++n;
        if (ci.trapped)
            break; // trap redirected control flow: side exit
    }
    return n;
}

// tflint: hot-path
void
Iss::execute(CommitInfo &ci)
{
    const isa::InstrDesc &d = *ci.desc;
    const isa::Operands &o = ci.ops;

    // Architectural gating.
    if (d.has(isa::FlagFp) && !st.fpEnabled()) {
        trap(ci, csr::causeIllegalInstruction, ci.insn);
        return;
    }
    if (d.has(isa::FlagAtomic) && !d.has(isa::FlagWordOp) &&
        !opts.rv64aEnabled && !hasBug(BugId::C8)) {
        // RV64A disabled: .d atomics must raise illegal instruction.
        // Bug C8 lets them through.
        trap(ci, csr::causeIllegalInstruction, ci.insn);
        return;
    }

    // FP loads/stores go down the integer/memory pipe; everything
    // else touching the FPU goes to the FP pipe.
    if (d.has(isa::FlagFp) && !d.isMemAccess()) {
        executeFp(ci);
        return;
    }
    if (d.has(isa::FlagAtomic)) {
        executeAmo(ci);
        return;
    }
    if (d.has(isa::FlagCsr)) {
        executeCsr(ci);
        return;
    }

    auto writeRd = [&](uint64_t value) {
        st.setX(o.rd, value);
        ci.rdWritten = true;
        ci.rd = o.rd;
        ci.rdValue = st.x(o.rd);
    };

    const uint64_t rs1 = st.x(o.rs1);
    const uint64_t rs2 = st.x(o.rs2);
    const int64_t srs1 = static_cast<int64_t>(rs1);
    const int64_t srs2 = static_cast<int64_t>(rs2);

    switch (ci.op) {
      case Opcode::Lui:
        writeRd(static_cast<uint64_t>(sext(
            static_cast<uint64_t>(o.imm) << 12, 32)));
        break;
      case Opcode::Auipc:
        writeRd(ci.pc + static_cast<uint64_t>(sext(
                            static_cast<uint64_t>(o.imm) << 12, 32)));
        break;
      case Opcode::Jal:
        writeRd(ci.pc + 4);
        ci.nextPc = ci.pc + static_cast<uint64_t>(o.imm);
        ci.branchTaken = true;
        break;
      case Opcode::Jalr: {
        const uint64_t target =
            (rs1 + static_cast<uint64_t>(o.imm)) & ~uint64_t{1};
        writeRd(ci.pc + 4);
        ci.nextPc = target;
        ci.branchTaken = true;
        break;
      }
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu: {
        bool taken = false;
        switch (ci.op) {
          case Opcode::Beq: taken = rs1 == rs2; break;
          case Opcode::Bne: taken = rs1 != rs2; break;
          case Opcode::Blt: taken = srs1 < srs2; break;
          case Opcode::Bge: taken = srs1 >= srs2; break;
          case Opcode::Bltu: taken = rs1 < rs2; break;
          case Opcode::Bgeu: taken = rs1 >= rs2; break;
          default: break;
        }
        ci.branchTaken = taken;
        if (taken)
            ci.nextPc = ci.pc + static_cast<uint64_t>(o.imm);
        break;
      }
      case Opcode::Lb:
      case Opcode::Lh:
      case Opcode::Lw:
      case Opcode::Lbu:
      case Opcode::Lhu:
      case Opcode::Lwu:
      case Opcode::Ld:
      case Opcode::Flw:
      case Opcode::Fld: {
        const uint64_t addr = rs1 + static_cast<uint64_t>(o.imm);
        uint8_t size = 0;
        switch (ci.op) {
          case Opcode::Lb: case Opcode::Lbu: size = 1; break;
          case Opcode::Lh: case Opcode::Lhu: size = 2; break;
          case Opcode::Lw: case Opcode::Lwu: case Opcode::Flw:
            size = 4;
            break;
          default: size = 8; break;
        }
        ci.memAccess = true;
        ci.memAddr = addr;
        ci.memSize = size;
        if (!accessible(addr, size)) {
            trap(ci, csr::causeLoadAccessFault, addr);
            return;
        }
        uint64_t v = 0;
        switch (ci.op) {
          case Opcode::Lb:
            v = static_cast<uint64_t>(
                sext(memPtr->read8(addr), 8));
            break;
          case Opcode::Lbu: v = memPtr->read8(addr); break;
          case Opcode::Lh:
            v = static_cast<uint64_t>(sext(memPtr->read16(addr), 16));
            break;
          case Opcode::Lhu: v = memPtr->read16(addr); break;
          case Opcode::Lw:
            v = static_cast<uint64_t>(sext(memPtr->read32(addr), 32));
            break;
          case Opcode::Lwu: v = memPtr->read32(addr); break;
          case Opcode::Ld: v = memPtr->read64(addr); break;
          case Opcode::Flw: {
            st.setF(o.rd, fp::boxS(memPtr->read32(addr)));
            st.setFsField(csr::mstatusFsDirty);
            ci.frdWritten = true;
            ci.frd = o.rd;
            ci.frdValue = st.f(o.rd);
            return;
          }
          case Opcode::Fld: {
            st.setF(o.rd, memPtr->read64(addr));
            st.setFsField(csr::mstatusFsDirty);
            ci.frdWritten = true;
            ci.frd = o.rd;
            ci.frdValue = st.f(o.rd);
            return;
          }
          default: break;
        }
        writeRd(v);
        break;
      }
      case Opcode::Sb:
      case Opcode::Sh:
      case Opcode::Sw:
      case Opcode::Sd:
      case Opcode::Fsw:
      case Opcode::Fsd: {
        const uint64_t addr = rs1 + static_cast<uint64_t>(o.imm);
        uint8_t size;
        switch (ci.op) {
          case Opcode::Sb: size = 1; break;
          case Opcode::Sh: size = 2; break;
          case Opcode::Sw: case Opcode::Fsw: size = 4; break;
          default: size = 8; break;
        }
        ci.memAccess = true;
        ci.memWrite = true;
        ci.memAddr = addr;
        ci.memSize = size;
        if (!accessible(addr, size)) {
            trap(ci, csr::causeStoreAccessFault, addr);
            return;
        }
        switch (ci.op) {
          case Opcode::Sb:
            memPtr->write8(addr, static_cast<uint8_t>(rs2));
            break;
          case Opcode::Sh:
            memPtr->write16(addr, static_cast<uint16_t>(rs2));
            break;
          case Opcode::Sw:
            memPtr->write32(addr, static_cast<uint32_t>(rs2));
            break;
          case Opcode::Sd: memPtr->write64(addr, rs2); break;
          case Opcode::Fsw:
            memPtr->write32(addr,
                            static_cast<uint32_t>(st.f(o.rs2)));
            break;
          case Opcode::Fsd: memPtr->write64(addr, st.f(o.rs2)); break;
          default: break;
        }
        break;
      }
      case Opcode::Addi: writeRd(rs1 + static_cast<uint64_t>(o.imm)); break;
      case Opcode::Slti:
        writeRd(srs1 < o.imm ? 1 : 0);
        break;
      case Opcode::Sltiu:
        writeRd(rs1 < static_cast<uint64_t>(o.imm) ? 1 : 0);
        break;
      case Opcode::Xori: writeRd(rs1 ^ static_cast<uint64_t>(o.imm)); break;
      case Opcode::Ori: writeRd(rs1 | static_cast<uint64_t>(o.imm)); break;
      case Opcode::Andi: writeRd(rs1 & static_cast<uint64_t>(o.imm)); break;
      case Opcode::Slli: writeRd(rs1 << (o.imm & 0x3F)); break;
      case Opcode::Srli: writeRd(rs1 >> (o.imm & 0x3F)); break;
      case Opcode::Srai:
        writeRd(static_cast<uint64_t>(srs1 >> (o.imm & 0x3F)));
        break;
      case Opcode::Add: writeRd(rs1 + rs2); break;
      case Opcode::Sub: writeRd(rs1 - rs2); break;
      case Opcode::Sll: writeRd(rs1 << (rs2 & 0x3F)); break;
      case Opcode::Slt: writeRd(srs1 < srs2 ? 1 : 0); break;
      case Opcode::Sltu: writeRd(rs1 < rs2 ? 1 : 0); break;
      case Opcode::Xor: writeRd(rs1 ^ rs2); break;
      case Opcode::Srl: writeRd(rs1 >> (rs2 & 0x3F)); break;
      case Opcode::Sra:
        writeRd(static_cast<uint64_t>(srs1 >> (rs2 & 0x3F)));
        break;
      case Opcode::Or: writeRd(rs1 | rs2); break;
      case Opcode::And: writeRd(rs1 & rs2); break;
      case Opcode::Addiw:
        writeRd(static_cast<uint64_t>(
            sext(rs1 + static_cast<uint64_t>(o.imm), 32)));
        break;
      case Opcode::Slliw:
        writeRd(static_cast<uint64_t>(sext(rs1 << (o.imm & 0x1F), 32)));
        break;
      case Opcode::Srliw:
        writeRd(static_cast<uint64_t>(
            sext((rs1 & 0xFFFFFFFFull) >> (o.imm & 0x1F), 32)));
        break;
      case Opcode::Sraiw:
        writeRd(static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(rs1)) >>
            (o.imm & 0x1F)));
        break;
      case Opcode::Addw:
        writeRd(static_cast<uint64_t>(sext(rs1 + rs2, 32)));
        break;
      case Opcode::Subw:
        writeRd(static_cast<uint64_t>(sext(rs1 - rs2, 32)));
        break;
      case Opcode::Sllw:
        writeRd(static_cast<uint64_t>(sext(rs1 << (rs2 & 0x1F), 32)));
        break;
      case Opcode::Srlw:
        writeRd(static_cast<uint64_t>(
            sext((rs1 & 0xFFFFFFFFull) >> (rs2 & 0x1F), 32)));
        break;
      case Opcode::Sraw:
        writeRd(static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(rs1)) >>
            (rs2 & 0x1F)));
        break;
      case Opcode::Fence:
        break; // no-op in this memory model
      case Opcode::Ecall:
        trap(ci, csr::causeEcallM, 0);
        break;
      case Opcode::Ebreak:
        trap(ci, csr::causeBreakpoint, ci.pc);
        break;
      case Opcode::Mret:
        // M-only model: return to mepc, no privilege change.
        ci.nextPc = st.mepc;
        ci.branchTaken = true;
        break;
      // --- M extension -------------------------------------------
      case Opcode::Mul: writeRd(rs1 * rs2); break;
      case Opcode::Mulh: {
        const __int128 p =
            static_cast<__int128>(srs1) * static_cast<__int128>(srs2);
        writeRd(static_cast<uint64_t>(p >> 64));
        break;
      }
      case Opcode::Mulhsu: {
        const __int128 p = static_cast<__int128>(srs1) *
                           static_cast<unsigned __int128>(rs2);
        writeRd(static_cast<uint64_t>(p >> 64));
        break;
      }
      case Opcode::Mulhu: {
        const unsigned __int128 p =
            static_cast<unsigned __int128>(rs1) *
            static_cast<unsigned __int128>(rs2);
        writeRd(static_cast<uint64_t>(p >> 64));
        break;
      }
      case Opcode::Div:
        if (rs2 == 0) {
            writeRd(~uint64_t{0});
        } else if (srs1 == INT64_MIN && srs2 == -1) {
            writeRd(static_cast<uint64_t>(INT64_MIN));
        } else {
            writeRd(static_cast<uint64_t>(srs1 / srs2));
        }
        break;
      case Opcode::Divu:
        writeRd(rs2 == 0 ? ~uint64_t{0} : rs1 / rs2);
        break;
      case Opcode::Rem:
        if (rs2 == 0) {
            writeRd(rs1);
        } else if (srs1 == INT64_MIN && srs2 == -1) {
            writeRd(0);
        } else {
            writeRd(static_cast<uint64_t>(srs1 % srs2));
        }
        break;
      case Opcode::Remu:
        writeRd(rs2 == 0 ? rs1 : rs1 % rs2);
        break;
      case Opcode::Mulw:
        writeRd(static_cast<uint64_t>(sext(rs1 * rs2, 32)));
        break;
      case Opcode::Divw: {
        const int32_t a = static_cast<int32_t>(rs1);
        const int32_t b = static_cast<int32_t>(rs2);
        int32_t r;
        if (b == 0)
            r = -1;
        else if (a == INT32_MIN && b == -1)
            r = INT32_MIN;
        else
            r = a / b;
        writeRd(static_cast<uint64_t>(static_cast<int64_t>(r)));
        break;
      }
      case Opcode::Divuw: {
        const uint32_t a = static_cast<uint32_t>(rs1);
        const uint32_t b = static_cast<uint32_t>(rs2);
        const uint32_t r = (b == 0) ? ~uint32_t{0} : a / b;
        writeRd(static_cast<uint64_t>(
            sext(static_cast<uint64_t>(r), 32)));
        break;
      }
      case Opcode::Remw: {
        const int32_t a = static_cast<int32_t>(rs1);
        const int32_t b = static_cast<int32_t>(rs2);
        int32_t r;
        if (b == 0)
            r = a;
        else if (a == INT32_MIN && b == -1)
            r = 0;
        else
            r = a % b;
        writeRd(static_cast<uint64_t>(static_cast<int64_t>(r)));
        break;
      }
      case Opcode::Remuw: {
        const uint32_t a = static_cast<uint32_t>(rs1);
        const uint32_t b = static_cast<uint32_t>(rs2);
        const uint32_t r = (b == 0) ? a : a % b;
        writeRd(static_cast<uint64_t>(
            sext(static_cast<uint64_t>(r), 32)));
        break;
      }
      default:
        panic("unhandled opcode %u in integer pipe",
              static_cast<unsigned>(ci.op));
    }
}

void
Iss::executeAmo(CommitInfo &ci)
{
    const isa::Operands &o = ci.ops;
    const bool word = ci.desc->has(isa::FlagWordOp);
    const uint8_t size = word ? 4 : 8;
    const uint64_t addr = st.x(o.rs1);

    ci.memAccess = true;
    ci.memAddr = addr;
    ci.memSize = size;

    if (addr % size != 0) {
        trap(ci,
             ci.op == Opcode::LrW || ci.op == Opcode::LrD
                 ? csr::causeMisalignedLoad
                 : csr::causeMisalignedStore,
             addr);
        return;
    }
    if (!accessible(addr, size)) {
        trap(ci, csr::causeLoadAccessFault, addr);
        return;
    }

    auto writeRd = [&](uint64_t value) {
        st.setX(o.rd, value);
        ci.rdWritten = true;
        ci.rd = o.rd;
        ci.rdValue = st.x(o.rd);
    };
    auto loadVal = [&]() -> uint64_t {
        return word ? static_cast<uint64_t>(
                          sext(memPtr->read32(addr), 32))
                    : memPtr->read64(addr);
    };
    auto storeVal = [&](uint64_t v) {
        if (word)
            memPtr->write32(addr, static_cast<uint32_t>(v));
        else
            memPtr->write64(addr, v);
        ci.memWrite = true;
    };

    switch (ci.op) {
      case Opcode::LrW:
      case Opcode::LrD:
        st.resValid = true;
        st.resAddr = addr;
        writeRd(loadVal());
        break;
      case Opcode::ScW:
      case Opcode::ScD:
        if (st.resValid && st.resAddr == addr) {
            storeVal(st.x(o.rs2));
            writeRd(0);
        } else {
            writeRd(1);
        }
        st.resValid = false;
        break;
      default: {
        const uint64_t old = loadVal();
        const uint64_t rs2v = st.x(o.rs2);
        uint64_t nv = 0;
        const int64_t sold = static_cast<int64_t>(old);
        const int64_t srs2 =
            word ? static_cast<int64_t>(static_cast<int32_t>(rs2v))
                 : static_cast<int64_t>(rs2v);
        const uint64_t uold = word ? (old & 0xFFFFFFFFull) : old;
        const uint64_t urs2 = word ? (rs2v & 0xFFFFFFFFull) : rs2v;
        switch (ci.op) {
          case Opcode::AmoswapW: case Opcode::AmoswapD:
            nv = rs2v;
            break;
          case Opcode::AmoaddW: case Opcode::AmoaddD:
            nv = old + rs2v;
            break;
          case Opcode::AmoxorW: case Opcode::AmoxorD:
            nv = old ^ rs2v;
            break;
          case Opcode::AmoandW: case Opcode::AmoandD:
            nv = old & rs2v;
            break;
          case Opcode::AmoorW: case Opcode::AmoorD:
            nv = old | rs2v;
            break;
          case Opcode::AmominW: case Opcode::AmominD:
            nv = (sold < srs2) ? old : rs2v;
            break;
          case Opcode::AmomaxW: case Opcode::AmomaxD:
            nv = (sold > srs2) ? old : rs2v;
            break;
          case Opcode::AmominuW: case Opcode::AmominuD:
            nv = (uold < urs2) ? old : rs2v;
            break;
          case Opcode::AmomaxuW: case Opcode::AmomaxuD:
            nv = (uold > urs2) ? old : rs2v;
            break;
          default: panic("unhandled AMO");
        }
        storeVal(nv);
        writeRd(old);
        break;
      }
    }
}

void
Iss::executeCsr(CommitInfo &ci)
{
    const isa::Operands &o = ci.ops;
    const bool immediate = ci.op == Opcode::Csrrwi ||
                           ci.op == Opcode::Csrrsi ||
                           ci.op == Opcode::Csrrci;
    const uint64_t operand =
        immediate ? static_cast<uint64_t>(o.imm) : st.x(o.rs1);

    uint64_t old = 0;
    if (!csrRead(o.csr, old)) {
        trap(ci, csr::causeIllegalInstruction, ci.insn);
        return;
    }

    // csrrs/c with rs1=x0 (or zimm=0) must not write.
    bool do_write;
    uint64_t newval = old;
    switch (ci.op) {
      case Opcode::Csrrw:
      case Opcode::Csrrwi:
        do_write = true;
        newval = operand;
        break;
      case Opcode::Csrrs:
      case Opcode::Csrrsi:
        do_write = immediate ? (o.imm != 0) : (o.rs1 != 0);
        newval = old | operand;
        break;
      case Opcode::Csrrc:
      case Opcode::Csrrci:
        do_write = immediate ? (o.imm != 0) : (o.rs1 != 0);
        newval = old & ~operand;
        break;
      default:
        panic("unhandled CSR opcode");
    }

    if (do_write) {
        if (!csrWrite(o.csr, newval)) {
            trap(ci, csr::causeIllegalInstruction, ci.insn);
            return;
        }
        ci.csrWritten = true;
        ci.csrAddr = o.csr;
        ci.csrNewValue = newval;
    }

    st.setX(o.rd, old);
    ci.rdWritten = true;
    ci.rd = o.rd;
    ci.rdValue = st.x(o.rd);
}

void
Iss::executeFp(CommitInfo &ci)
{
    using fp::ArithOp;
    using fp::CmpOp;
    using fp::FpResult;
    using fp::SgnOp;

    const isa::InstrDesc &d = *ci.desc;
    const isa::Operands &o = ci.ops;

    // Resolve the rounding mode where the instruction uses one.
    uint8_t rm = csr::rmRNE;
    if (d.has(isa::FlagHasRm)) {
        if (!resolveRm(o.rm, rm)) {
            trap(ci, csr::causeIllegalInstruction, ci.insn);
            return;
        }
        // B1: the FP pipeline ignores the resolved rounding mode and
        // always rounds to nearest-even.
        if (hasBug(BugId::B1))
            rm = csr::rmRNE;
    }

    // C3/C6: improperly NaN-boxed single operands are consumed as raw
    // lower bits instead of the canonical NaN.
    auto readS = [&](unsigned reg) -> uint32_t {
        const uint64_t raw = st.f(reg);
        if (hasBug(BugId::C3) || hasBug(BugId::C6))
            return static_cast<uint32_t>(raw);
        return fp::unboxS(raw);
    };

    // Record operand classes for the RTL model's FPU tracking.
    auto classIdx = [](uint64_t cls) -> uint8_t {
        uint8_t i = 0;
        while (cls > 1) {
            cls >>= 1;
            ++i;
        }
        return i;
    };
    if (d.has(isa::FlagFpRs1)) {
        ci.fpClassRs1 = d.has(isa::FlagDouble)
                            ? classIdx(fp::classifyD(st.f(o.rs1)))
                            : classIdx(fp::classifyS(
                                  fp::unboxS(st.f(o.rs1))));
    }
    if (d.has(isa::FlagFpRs2)) {
        ci.fpClassRs2 = d.has(isa::FlagDouble)
                            ? classIdx(fp::classifyD(st.f(o.rs2)))
                            : classIdx(fp::classifyS(
                                  fp::unboxS(st.f(o.rs2))));
    }

    auto writeF = [&](uint64_t raw) {
        st.setF(o.rd, raw);
        st.setFsField(csr::mstatusFsDirty);
        ci.frdWritten = true;
        ci.frd = o.rd;
        ci.frdValue = st.f(o.rd);
    };
    auto writeX = [&](uint64_t v) {
        st.setX(o.rd, v);
        ci.rdWritten = true;
        ci.rd = o.rd;
        ci.rdValue = st.x(o.rd);
    };

    /**
     * Apply the CVA6 FP-divider bug family to a division result.
     * a/b are operand bits; res is the correct result.
     */
    auto applyDivBugsS = [&](uint32_t a, uint32_t b,
                             FpResult res) -> FpResult {
        if (hasBug(BugId::C1) && fp::isZeroS(a) && fp::isZeroS(b)) {
            // C1: 0/0 accrues DZ instead of NV.
            res.flags = csr::flagDZ;
        }
        if (hasBug(BugId::C2) && fp::isInfS(b) && !fp::isNanS(a) &&
            !fp::isInfS(a)) {
            // C2: finite / inf spuriously accrues NX.
            res.flags |= csr::flagNX;
        }
        if (hasBug(BugId::C9) && fp::isZeroS(a) && fp::isZeroS(b)) {
            // C9: 0/0 returns +inf instead of the canonical NaN.
            res.bits = fp::boxS(0x7F800000u);
        }
        if (hasBug(BugId::C10) && fp::isZeroS(a) && !fp::isZeroS(b) &&
            !fp::isNanS(b) && !(b & 0x80000000u)) {
            // C10: +0 / normal(+) comes out as -0.
            res.bits = fp::boxS(static_cast<uint32_t>(res.bits) |
                                0x80000000u);
        }
        return res;
    };
    auto applyDivBugsD = [&](uint64_t a, uint64_t b,
                             FpResult res) -> FpResult {
        if (hasBug(BugId::C1) && fp::isZeroD(a) && fp::isZeroD(b))
            res.flags = csr::flagDZ;
        if (hasBug(BugId::C4) && fp::isInfD(b) && !fp::isNanD(a) &&
            !fp::isInfD(a)) {
            // C4: the double-precision variant of C2.
            res.flags |= csr::flagNX;
        }
        if (hasBug(BugId::C9) && fp::isZeroD(a) && fp::isZeroD(b))
            res.bits = 0x7FF0000000000000ull;
        if (hasBug(BugId::C10) && fp::isZeroD(a) && !fp::isZeroD(b) &&
            !fp::isNanD(b) && !(b & 0x8000000000000000ull)) {
            res.bits |= 0x8000000000000000ull;
        }
        return res;
    };

    switch (ci.op) {
      // --- arithmetic, single ------------------------------------
      case Opcode::FaddS:
      case Opcode::FsubS:
      case Opcode::FmulS:
      case Opcode::FdivS: {
        const uint32_t a = readS(o.rs1);
        const uint32_t b = readS(o.rs2);
        ArithOp aop;
        switch (ci.op) {
          case Opcode::FaddS: aop = ArithOp::Add; break;
          case Opcode::FsubS: aop = ArithOp::Sub; break;
          case Opcode::FmulS: aop = ArithOp::Mul; break;
          default: aop = ArithOp::Div; break;
        }
        FpResult r = fp::arithS(aop, a, b, rm);
        if (ci.op == Opcode::FdivS)
            r = applyDivBugsS(a, b, r);
        writeF(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      case Opcode::FsqrtS: {
        const FpResult r =
            fp::arithS(ArithOp::Sqrt, readS(o.rs1), 0, rm);
        writeF(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      case Opcode::FminS:
      case Opcode::FmaxS: {
        const FpResult r = fp::arithS(
            ci.op == Opcode::FminS ? ArithOp::Min : ArithOp::Max,
            readS(o.rs1), readS(o.rs2), csr::rmRNE);
        writeF(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      // --- arithmetic, double ------------------------------------
      case Opcode::FaddD:
      case Opcode::FsubD:
      case Opcode::FmulD:
      case Opcode::FdivD: {
        const uint64_t a = st.f(o.rs1);
        const uint64_t b = st.f(o.rs2);
        ArithOp aop;
        switch (ci.op) {
          case Opcode::FaddD: aop = ArithOp::Add; break;
          case Opcode::FsubD: aop = ArithOp::Sub; break;
          case Opcode::FmulD: aop = ArithOp::Mul; break;
          default: aop = ArithOp::Div; break;
        }
        FpResult r = fp::arithD(aop, a, b, rm);
        if (ci.op == Opcode::FdivD)
            r = applyDivBugsD(a, b, r);
        if (ci.op == Opcode::FmulD && hasBug(BugId::C5) &&
            rm == csr::rmRDN && !fp::isNanD(r.bits)) {
            // C5: with round-down, a negative product surfaces with
            // its sign bit cleared.
            if (r.bits & 0x8000000000000000ull)
                r.bits &= ~0x8000000000000000ull;
        }
        writeF(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      case Opcode::FsqrtD: {
        const FpResult r = fp::arithD(ArithOp::Sqrt, st.f(o.rs1), 0, rm);
        writeF(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      case Opcode::FminD:
      case Opcode::FmaxD: {
        const FpResult r = fp::arithD(
            ci.op == Opcode::FminD ? ArithOp::Min : ArithOp::Max,
            st.f(o.rs1), st.f(o.rs2), csr::rmRNE);
        writeF(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      // --- fused multiply-add ------------------------------------
      case Opcode::FmaddS:
      case Opcode::FmsubS:
      case Opcode::FnmsubS:
      case Opcode::FnmaddS: {
        const bool neg_prod = ci.op == Opcode::FnmsubS ||
                              ci.op == Opcode::FnmaddS;
        const bool neg_add = ci.op == Opcode::FmsubS ||
                             ci.op == Opcode::FnmaddS;
        const FpResult r =
            fp::fmaS(readS(o.rs1), readS(o.rs2), readS(o.rs3),
                     neg_prod, neg_add, rm);
        writeF(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      case Opcode::FmaddD:
      case Opcode::FmsubD:
      case Opcode::FnmsubD:
      case Opcode::FnmaddD: {
        const bool neg_prod = ci.op == Opcode::FnmsubD ||
                              ci.op == Opcode::FnmaddD;
        const bool neg_add = ci.op == Opcode::FmsubD ||
                             ci.op == Opcode::FnmaddD;
        const FpResult r = fp::fmaD(st.f(o.rs1), st.f(o.rs2),
                                    st.f(o.rs3), neg_prod, neg_add, rm);
        writeF(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      // --- sign injection -----------------------------------------
      case Opcode::FsgnjS:
      case Opcode::FsgnjnS:
      case Opcode::FsgnjxS: {
        SgnOp sop = ci.op == Opcode::FsgnjS
                        ? SgnOp::Copy
                        : (ci.op == Opcode::FsgnjnS ? SgnOp::Negate
                                                    : SgnOp::XorSign);
        writeF(fp::boxS(fp::sgnjS(sop, readS(o.rs1), readS(o.rs2))));
        break;
      }
      case Opcode::FsgnjD:
      case Opcode::FsgnjnD:
      case Opcode::FsgnjxD: {
        SgnOp sop = ci.op == Opcode::FsgnjD
                        ? SgnOp::Copy
                        : (ci.op == Opcode::FsgnjnD ? SgnOp::Negate
                                                    : SgnOp::XorSign);
        writeF(fp::sgnjD(sop, st.f(o.rs1), st.f(o.rs2)));
        break;
      }
      // --- comparisons --------------------------------------------
      case Opcode::FeqS:
      case Opcode::FltS:
      case Opcode::FleS: {
        CmpOp cop = ci.op == Opcode::FeqS
                        ? CmpOp::Eq
                        : (ci.op == Opcode::FltS ? CmpOp::Lt : CmpOp::Le);
        const FpResult r = fp::cmpS(cop, readS(o.rs1), readS(o.rs2));
        writeX(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      case Opcode::FeqD:
      case Opcode::FltD:
      case Opcode::FleD: {
        CmpOp cop = ci.op == Opcode::FeqD
                        ? CmpOp::Eq
                        : (ci.op == Opcode::FltD ? CmpOp::Lt : CmpOp::Le);
        const FpResult r = fp::cmpD(cop, st.f(o.rs1), st.f(o.rs2));
        writeX(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      // --- classification / moves ----------------------------------
      case Opcode::FclassS: writeX(fp::classifyS(readS(o.rs1))); break;
      case Opcode::FclassD: writeX(fp::classifyD(st.f(o.rs1))); break;
      case Opcode::FmvXW:
        writeX(static_cast<uint64_t>(
            sext(st.f(o.rs1) & 0xFFFFFFFFull, 32)));
        break;
      case Opcode::FmvWX:
        writeF(fp::boxS(static_cast<uint32_t>(st.x(o.rs1))));
        break;
      case Opcode::FmvXD: writeX(st.f(o.rs1)); break;
      case Opcode::FmvDX: writeF(st.x(o.rs1)); break;
      // --- conversions ----------------------------------------------
      case Opcode::FcvtWS:
      case Opcode::FcvtWuS:
      case Opcode::FcvtLS:
      case Opcode::FcvtLuS: {
        const bool is_signed =
            ci.op == Opcode::FcvtWS || ci.op == Opcode::FcvtLS;
        const bool is_64 =
            ci.op == Opcode::FcvtLS || ci.op == Opcode::FcvtLuS;
        const FpResult r = fp::cvtSToI(readS(o.rs1), is_signed, is_64, rm);
        writeX(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      case Opcode::FcvtWD:
      case Opcode::FcvtWuD:
      case Opcode::FcvtLD:
      case Opcode::FcvtLuD: {
        const bool is_signed =
            ci.op == Opcode::FcvtWD || ci.op == Opcode::FcvtLD;
        const bool is_64 =
            ci.op == Opcode::FcvtLD || ci.op == Opcode::FcvtLuD;
        const FpResult r =
            fp::cvtDToI(st.f(o.rs1), is_signed, is_64, rm);
        writeX(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      case Opcode::FcvtSW:
      case Opcode::FcvtSWu:
      case Opcode::FcvtSL:
      case Opcode::FcvtSLu: {
        const bool is_signed =
            ci.op == Opcode::FcvtSW || ci.op == Opcode::FcvtSL;
        const bool is_64 =
            ci.op == Opcode::FcvtSL || ci.op == Opcode::FcvtSLu;
        const FpResult r = fp::cvtIToS(st.x(o.rs1), is_signed, is_64, rm);
        writeF(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      case Opcode::FcvtDW:
      case Opcode::FcvtDWu:
      case Opcode::FcvtDL:
      case Opcode::FcvtDLu: {
        const bool is_signed =
            ci.op == Opcode::FcvtDW || ci.op == Opcode::FcvtDL;
        const bool is_64 =
            ci.op == Opcode::FcvtDL || ci.op == Opcode::FcvtDLu;
        const FpResult r = fp::cvtIToD(st.x(o.rs1), is_signed, is_64, rm);
        writeF(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      case Opcode::FcvtSD: {
        const FpResult r = fp::cvtDToS(st.f(o.rs1), rm);
        writeF(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      case Opcode::FcvtDS: {
        const FpResult r = fp::cvtSToD(readS(o.rs1));
        writeF(r.bits);
        ci.fflagsAccrued = r.flags;
        break;
      }
      default:
        panic("unhandled FP opcode %u", static_cast<unsigned>(ci.op));
    }
}

void
Iss::saveState(soc::SnapshotWriter &out) const
{
    st.saveState(out);
}

void
Iss::loadState(soc::SnapshotReader &in)
{
    st.loadState(in);
}

} // namespace turbofuzz::core
