/**
 * @file
 * RV64 IMAFD + Zicsr instruction-set simulator.
 *
 * One implementation serves both roles of the paper's differential
 * pair: instantiated with an empty BugSet it is the golden reference
 * model (the REF running on the ARM PS); instantiated with a bug set
 * and a core personality it is the architectural shadow of the DUT.
 * The injected bugs deviate exactly where the corresponding real
 * RTL issues did (see core/bugs.hh).
 */

#ifndef TURBOFUZZ_CORE_ISS_HH
#define TURBOFUZZ_CORE_ISS_HH

#include <cstdint>
#include <vector>

#include "core/arch_state.hh"
#include "core/bugs.hh"
#include "core/commit_info.hh"
#include "core/commit_trace.hh"
#include "soc/memory.hh"

namespace turbofuzz::soc
{
class SnapshotWriter;
class SnapshotReader;
} // namespace turbofuzz::soc

namespace turbofuzz::core
{

/** An executable RV64 hart bound to a memory. */
class Iss
{
  public:
    struct Options
    {
        /** Injected bugs; empty for the golden reference. */
        BugSet bugs;

        /**
         * Whether 64-bit atomics are architecturally enabled. The
         * CVA6 configuration behind bug C8 ships with RV64A disabled;
         * a correct core must then trap .d atomics.
         */
        bool rv64aEnabled = true;

        /** Reset program counter. */
        uint64_t resetPc = 0x80000000ull;
    };

    explicit Iss(soc::Memory *mem);
    Iss(soc::Memory *mem, Options opts);

    /** Reset architectural state to the boot PC. */
    void reset();
    void reset(uint64_t pc);

    ArchState &state() { return st; }
    const ArchState &state() const { return st; }

    soc::Memory &memory() { return *memPtr; }
    const soc::Memory &memory() const { return *memPtr; }

    /**
     * Restrict data/fetch accesses to the given ranges. With no
     * ranges registered every address is accessible.
     */
    void clearAccessRanges();
    void addAccessRange(uint64_t base, uint64_t size);

    /** Execute the instruction at the current PC. */
    CommitInfo step();

    /**
     * Execute the instruction at the current PC, writing the commit
     * record into @p ci (which is fully overwritten). The batched
     * engine steps into trace slots directly to avoid the per-step
     * 130-byte return copy.
     */
    void stepInto(CommitInfo &ci);

    /**
     * Batched execution: run up to @p max_steps instructions,
     * appending one commit per step to @p trace. After every step the
     * stop functor is evaluated on the freshly appended commit (with
     * this hart's post-step state visible through state()); returning
     * true ends the batch after that commit — exactly where a
     * per-commit loop evaluating the same predicate would break.
     *
     * The functor is a template parameter so harness stop policies
     * inline into the step loop instead of paying an indirect call
     * per instruction.
     *
     * @return number of commits appended (>= 1 when max_steps >= 1).
     */
    template <typename StopFn>
    uint64_t
    stepMany(CommitTrace &trace, uint64_t max_steps, StopFn &&stop)
    {
        uint64_t n = 0;
        while (n < max_steps) {
            CommitInfo &slot = trace.append();
            stepInto(slot);
            ++n;
            if (stop(static_cast<const CommitInfo &>(slot)))
                break;
        }
        return n;
    }

    const Options &options() const { return opts; }

    void saveState(soc::SnapshotWriter &out) const;
    void loadState(soc::SnapshotReader &in);

  private:
    struct Range
    {
        uint64_t base;
        uint64_t size;
    };

    bool accessible(uint64_t addr, uint64_t size) const;
    bool hasBug(BugId id) const { return opts.bugs.has(id); }

    /** Raise a trap: record CSRs, redirect to mtvec. */
    void trap(CommitInfo &ci, uint64_t cause, uint64_t tval);

    /**
     * Resolve the rounding mode of an FP instruction.
     * @return true when valid; false means illegal instruction
     *         (unless bug B2 suppresses the trap).
     */
    bool resolveRm(uint8_t rm_field, uint8_t &resolved) const;

    /** CSR read; returns false for an inaccessible CSR. */
    bool csrRead(uint16_t addr, uint64_t &value) const;

    /** CSR write; returns false for an illegal write. */
    bool csrWrite(uint16_t addr, uint64_t value);

    void execute(CommitInfo &ci);
    void executeFp(CommitInfo &ci);
    void executeAmo(CommitInfo &ci);
    void executeCsr(CommitInfo &ci);

    soc::Memory *memPtr;
    Options opts;
    ArchState st;
    std::vector<Range> ranges;
};

} // namespace turbofuzz::core

#endif // TURBOFUZZ_CORE_ISS_HH
