/**
 * @file
 * RV64 IMAFD + Zicsr instruction-set simulator.
 *
 * One implementation serves both roles of the paper's differential
 * pair: instantiated with an empty BugSet it is the golden reference
 * model (the REF running on the ARM PS); instantiated with a bug set
 * and a core personality it is the architectural shadow of the DUT.
 * The injected bugs deviate exactly where the corresponding real
 * RTL issues did (see core/bugs.hh).
 */

#ifndef TURBOFUZZ_CORE_ISS_HH
#define TURBOFUZZ_CORE_ISS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/arch_state.hh"
#include "core/bugs.hh"
#include "core/commit_info.hh"
#include "core/commit_trace.hh"
#include "soc/memory.hh"

namespace turbofuzz::soc
{
class SnapshotWriter;
class SnapshotReader;
} // namespace turbofuzz::soc

namespace turbofuzz::core
{

/** An executable RV64 hart bound to a memory. */
class Iss
{
  public:
    struct Options
    {
        /** Injected bugs; empty for the golden reference. */
        BugSet bugs;

        /**
         * Whether 64-bit atomics are architecturally enabled. The
         * CVA6 configuration behind bug C8 ships with RV64A disabled;
         * a correct core must then trap .d atomics.
         */
        bool rv64aEnabled = true;

        /** Reset program counter. */
        uint64_t resetPc = 0x80000000ull;

        /**
         * Direct-mapped decode cache keyed by (pc, insn): repeated
         * fetches of unchanged words skip isa::decode. Epoch-guarded
         * against memory writes (soc::Memory fetch watches), so
         * self-modifying stimulus re-decodes and results stay
         * bit-identical either way. The TURBOFUZZ_DECODE_CACHE
         * environment variable ("0"/"off") forces it off.
         */
        bool decodeCache = true;
    };

    /** Decode-cache effectiveness counters (monotonic). */
    struct DecodeStats
    {
        uint64_t hit = 0;        ///< reused a cached decode
        uint64_t miss = 0;       ///< cold/conflicting slot, decoded
        uint64_t invalidate = 0; ///< cached word changed, re-decoded
    };

    explicit Iss(soc::Memory *mem);
    Iss(soc::Memory *mem, Options opts);

    /** Reset architectural state to the boot PC. */
    void reset();
    void reset(uint64_t pc);

    ArchState &state() { return st; }
    const ArchState &state() const { return st; }

    soc::Memory &memory() { return *memPtr; }
    const soc::Memory &memory() const { return *memPtr; }

    /**
     * Restrict data/fetch accesses to the given ranges. With no
     * ranges registered every address is accessible.
     */
    void clearAccessRanges();
    void addAccessRange(uint64_t base, uint64_t size);

    /** Execute the instruction at the current PC. */
    CommitInfo step();

    /**
     * Execute the instruction at the current PC, writing the commit
     * record into @p ci (which is fully overwritten). The batched
     * engine steps into trace slots directly to avoid the per-step
     * 130-byte return copy.
     */
    void stepInto(CommitInfo &ci);

    /**
     * Batched execution: run up to @p max_steps instructions,
     * appending one commit per step to @p trace. After every step the
     * stop functor is evaluated on the freshly appended commit (with
     * this hart's post-step state visible through state()); returning
     * true ends the batch after that commit — exactly where a
     * per-commit loop evaluating the same predicate would break.
     *
     * The functor is a template parameter so harness stop policies
     * inline into the step loop instead of paying an indirect call
     * per instruction.
     *
     * @return number of commits appended (>= 1 when max_steps >= 1).
     */
    template <typename StopFn>
    uint64_t
    stepMany(CommitTrace &trace, uint64_t max_steps, StopFn &&stop)
    {
        uint64_t n = 0;
        while (n < max_steps) {
            CommitInfo &slot = trace.append();
            stepInto(slot);
            trace.sealLast();
            ++n;
            if (stop(static_cast<const CommitInfo &>(slot)))
                break;
        }
        return n;
    }

    /**
     * Superblock execution: run up to @p max_steps instructions along
     * the straight-line fast path — every step must hit a current
     * decode-cache entry whose instruction has no control-flow or
     * system side exit (branch/jal/jalr/csr/system). Commits are
     * appended (and column-sealed) exactly as stepInto produces them;
     * a trap ends the run after its commit, any other side exit
     * (uncached pc, stale epoch, non-straight instruction, misaligned
     * pc) ends it before. The caller owns the stop policy: it must
     * bound @p max_steps so that no intermediate commit could have
     * stopped a per-step loop, and evaluate its policy on the last
     * appended commit.
     *
     * @return commits appended (0 when the first step side-exits or
     *         the decode cache is disabled).
     */
    uint64_t stepStraight(CommitTrace &trace, uint64_t max_steps);

    /** Decode-cache counters (both step paths contribute). */
    const DecodeStats &decodeStats() const { return dstats; }

    /** Whether the decode cache is active (option && environment). */
    bool decodeCacheEnabled() const { return dcacheOn; }

    const Options &options() const { return opts; }

    void saveState(soc::SnapshotWriter &out) const;
    void loadState(soc::SnapshotReader &in);

  private:
    struct Range
    {
        uint64_t base;
        uint64_t size;
    };

    /**
     * One direct-mapped decode-cache line. `epoch` snapshots the
     * fetch epoch of the memory slot covering `pc`; a stale epoch
     * forces revalidation (refetch + insn compare) before the cached
     * decode may be reused.
     *
     * Validity lives OUTSIDE the entry: line i is live iff
     * `dcacheGen[i] == dcacheGenCur`. That makes whole-cache clears
     * O(1) (bump the generation) instead of a ~256 KiB memset — the
     * triage replay path constructs harts and edits access ranges
     * per replay, and eager clears were costing it more than decode
     * ever did. Entry fields are intentionally uninitialized
     * (make_unique_for_overwrite): nothing reads them before
     * fillDecode wrote them under the current generation. Entries
     * are created on the slow path, which proved `pc` accessible;
     * access-range edits clear the cache, so a hit implies
     * accessibility.
     */
    struct DecodeEntry
    {
        uint64_t pc;
        uint64_t epoch;
        const isa::InstrDesc *desc;
        isa::Operands ops;
        uint32_t insn;
        uint32_t slot; ///< Memory::fetchSlotFor(pc)
        isa::Opcode op;
        bool decValid;
        bool straight; ///< no branch/jump/csr/system side exit
    };

    static constexpr size_t dcacheEntries = 4096; ///< power of two

    static size_t
    dcacheIdx(uint64_t pc)
    {
        return (pc >> 2) & (dcacheEntries - 1);
    }

    /**
     * Cache lookup with epoch revalidation; counts hit/invalidate.
     * @return the current entry for @p pc, or nullptr (miss — the
     *         caller fetches, decodes and fillDecode()s).
     */
    const DecodeEntry *lookupDecode(uint64_t pc);

    /** Install a freshly decoded word (epoch snapshotted now). */
    void fillDecode(uint64_t pc, uint32_t insn,
                    const isa::Decoded &dec);

    void clearDecodeCache();

    bool accessible(uint64_t addr, uint64_t size) const;
    bool hasBug(BugId id) const { return opts.bugs.has(id); }

    /** Raise a trap: record CSRs, redirect to mtvec. */
    void trap(CommitInfo &ci, uint64_t cause, uint64_t tval);

    /**
     * Resolve the rounding mode of an FP instruction.
     * @return true when valid; false means illegal instruction
     *         (unless bug B2 suppresses the trap).
     */
    bool resolveRm(uint8_t rm_field, uint8_t &resolved) const;

    /** CSR read; returns false for an inaccessible CSR. */
    bool csrRead(uint16_t addr, uint64_t &value) const;

    /** CSR write; returns false for an illegal write. */
    bool csrWrite(uint16_t addr, uint64_t value);

    void execute(CommitInfo &ci);
    void executeFp(CommitInfo &ci);
    void executeAmo(CommitInfo &ci);
    void executeCsr(CommitInfo &ci);

    soc::Memory *memPtr;
    Options opts;
    ArchState st;
    std::vector<Range> ranges;

    bool dcacheOn = true;
    DecodeStats dstats;
    std::unique_ptr<DecodeEntry[]> dcache; ///< null when disabled
    std::unique_ptr<uint32_t[]> dcacheGen; ///< per-line generation
    uint32_t dcacheGenCur = 1; ///< 0 is reserved for "never filled"
};

} // namespace turbofuzz::core

#endif // TURBOFUZZ_CORE_ISS_HH
