#include "coverage/coverage_delta.hh"

#include "common/logging.hh"

namespace turbofuzz::coverage
{

bool
CoverageDelta::empty() const
{
    if (!csr.empty() || !edges.empty() || !firstHits.empty())
        return false;
    for (const SparseWords &m : mux) {
        if (!m.empty())
            return false;
    }
    return true;
}

void
CoverageDelta::clear()
{
    // Keep the per-module vector sized (capacity reuse across
    // epochs); only the runs themselves are dropped.
    for (SparseWords &m : mux)
        m.clear();
    csr.clear();
    edges.clear();
    firstHits.clear();
}

// tflint: hot-path
void
mergeSparseWords(SparseWords &into, const SparseWords &from)
{
    if (from.empty())
        return;
    if (into.empty()) {
        into = from;
        return;
    }
    std::vector<uint32_t> idx;
    std::vector<uint64_t> val;
    idx.reserve(into.index.size() + from.index.size());
    val.reserve(into.index.size() + from.index.size());
    size_t a = 0, b = 0;
    while (a < into.index.size() && b < from.index.size()) {
        if (into.index[a] < from.index[b]) {
            idx.push_back(into.index[a]);
            val.push_back(into.value[a]);
            ++a;
        } else if (from.index[b] < into.index[a]) {
            idx.push_back(from.index[b]);
            val.push_back(from.value[b]);
            ++b;
        } else {
            idx.push_back(into.index[a]);
            val.push_back(into.value[a] | from.value[b]);
            ++a;
            ++b;
        }
    }
    for (; a < into.index.size(); ++a) {
        idx.push_back(into.index[a]);
        val.push_back(into.value[a]);
    }
    for (; b < from.index.size(); ++b) {
        idx.push_back(from.index[b]);
        val.push_back(from.value[b]);
    }
    into.index.swap(idx);
    into.value.swap(val);
}

const char *
checkSparseWords(const SparseWords &d, size_t words)
{
    if (d.index.size() != d.value.size())
        return "index/value length mismatch";
    for (size_t k = 0; k < d.index.size(); ++k) {
        if (d.index[k] >= words)
            return "word index out of range";
        if (k > 0 && d.index[k] <= d.index[k - 1])
            return "word indices out of order";
    }
    return nullptr;
}

namespace
{

// tflint: hot-path
void
mergeEdges(EdgeDelta &into, const EdgeDelta &from)
{
    if (from.empty())
        return;
    if (into.empty()) {
        into = from;
        return;
    }
    EdgeDelta out;
    out.edge.reserve(into.edge.size() + from.edge.size());
    out.buckets.reserve(into.edge.size() + from.edge.size());
    out.counts.reserve(into.edge.size() + from.edge.size());
    size_t a = 0, b = 0;
    while (a < into.edge.size() && b < from.edge.size()) {
        if (into.edge[a] < from.edge[b]) {
            out.edge.push_back(into.edge[a]);
            out.buckets.push_back(into.buckets[a]);
            out.counts.push_back(into.counts[a]);
            ++a;
        } else if (from.edge[b] < into.edge[a]) {
            out.edge.push_back(from.edge[b]);
            out.buckets.push_back(from.buckets[b]);
            out.counts.push_back(from.counts[b]);
            ++b;
        } else {
            out.edge.push_back(into.edge[a]);
            out.buckets.push_back(
                static_cast<uint8_t>(into.buckets[a] |
                                     from.buckets[b]));
            out.counts.push_back(into.counts[a] > from.counts[b]
                                     ? into.counts[a]
                                     : from.counts[b]);
            ++a;
            ++b;
        }
    }
    for (; a < into.edge.size(); ++a) {
        out.edge.push_back(into.edge[a]);
        out.buckets.push_back(into.buckets[a]);
        out.counts.push_back(into.counts[a]);
    }
    for (; b < from.edge.size(); ++b) {
        out.edge.push_back(from.edge[b]);
        out.buckets.push_back(from.buckets[b]);
        out.counts.push_back(from.counts[b]);
    }
    into.edge.swap(out.edge);
    into.buckets.swap(out.buckets);
    into.counts.swap(out.counts);
}

// tflint: hot-path
void
mergeFirstHits(std::vector<std::pair<uint64_t, FirstHit>> &into,
               const std::vector<std::pair<uint64_t, FirstHit>> &from)
{
    if (from.empty())
        return;
    if (into.empty()) {
        into = from;
        return;
    }
    std::vector<std::pair<uint64_t, FirstHit>> out;
    out.reserve(into.size() + from.size());
    size_t a = 0, b = 0;
    while (a < into.size() && b < from.size()) {
        if (into[a].first < from[b].first) {
            out.push_back(into[a++]);
        } else if (from[b].first < into[a].first) {
            out.push_back(from[b++]);
        } else {
            // Same point first-hit by both sides: the globally
            // earlier attribution wins (same rule as
            // FirstHitLedger::merge).
            out.push_back(firstHitEarlier(from[b].second,
                                          into[a].second)
                              ? from[b]
                              : into[a]);
            ++a;
            ++b;
        }
    }
    for (; a < into.size(); ++a)
        out.push_back(into[a]);
    for (; b < from.size(); ++b)
        out.push_back(from[b]);
    into.swap(out);
}

} // namespace

// tflint: hot-path
void
CoverageDelta::mergeFrom(const CoverageDelta &other)
{
    if (mux.empty()) {
        mux = other.mux;
    } else if (!other.mux.empty()) {
        TF_ASSERT(mux.size() == other.mux.size(),
                  "coverage delta reduction: module count mismatch "
                  "(%zu vs %zu)",
                  mux.size(), other.mux.size());
        for (size_t i = 0; i < mux.size(); ++i)
            mergeSparseWords(mux[i], other.mux[i]);
    }
    mergeSparseWords(csr, other.csr);
    mergeEdges(edges, other.edges);
    mergeFirstHits(firstHits, other.firstHits);
}

} // namespace turbofuzz::coverage
