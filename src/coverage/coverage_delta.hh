/**
 * @file
 * Compact coverage deltas — the O(new coverage) epoch-barrier unit.
 *
 * A full-map fleet merge rescans every bitmap word of every shard at
 * every barrier, so the barrier costs O(map size x shards) even when
 * an epoch discovered nothing. The delta path inverts that: each
 * feedback model tracks which 64-bit words changed since its last
 * publication (coverage_map.hh, feedback_model.hh) and the shard
 * hands the orchestrator a CoverageDelta holding exactly those words.
 * Applying a delta to a compatible model is proven bit-identical to
 * merging the whole source map (tests/coverage/coverage_delta_test.cc)
 * because every section carries an idempotent, monotone payload:
 * bitmap words OR, bucket bits OR, saturating counts max, first-hit
 * attributions min-wins.
 *
 * Deltas also merge with each other (mergeFrom), which is what lets
 * the fleet reduce shard deltas pairwise on a worker pool: the merge
 * is a deterministic sorted-run union, so the reduced delta is
 * byte-identical regardless of worker scheduling, and associativity
 * of OR/max/min-wins makes any pairing order produce the same final
 * global state.
 */

#ifndef TURBOFUZZ_COVERAGE_COVERAGE_DELTA_HH
#define TURBOFUZZ_COVERAGE_COVERAGE_DELTA_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "coverage/provenance.hh"

namespace turbofuzz::coverage
{

/**
 * A sparse run of changed 64-bit bitmap words: strictly ascending
 * word indices with their full current values. OR-ing the values
 * into the destination bitmap at the same indices reproduces a full
 * bitmap merge, because unchanged words merge as no-ops.
 */
struct SparseWords
{
    std::vector<uint32_t> index;
    std::vector<uint64_t> value;

    bool empty() const { return index.empty(); }

    void
    clear()
    {
        index.clear();
        value.clear();
    }
};

/**
 * Changed hit-count edges: ascending edge indices with their current
 * lit bucket bits (merge: OR) and saturating hit counts (merge: max —
 * counts are monotone, so the max over shards is the fleet view).
 */
struct EdgeDelta
{
    std::vector<uint32_t> edge;
    std::vector<uint8_t> buckets;
    std::vector<uint32_t> counts;

    bool empty() const { return edge.empty(); }

    void
    clear()
    {
        edge.clear();
        buckets.clear();
        counts.clear();
    }
};

/**
 * Everything one shard learned since its previous barrier
 * publication: per-module mux bitmap words, CSR-transition bitmap
 * words, hit-count edges and newly attributed first hits
 * (key-ascending). Sections a campaign's model census does not
 * include simply stay empty.
 */
struct CoverageDelta
{
    std::vector<SparseWords> mux; ///< one entry per instrumented module
    SparseWords csr;
    EdgeDelta edges;
    std::vector<std::pair<uint64_t, FirstHit>> firstHits;

    bool empty() const;
    void clear();

    /**
     * Fold @p other into this delta — the pairwise reduction step.
     * Sorted-run unions throughout: bitmap words OR on equal index,
     * buckets OR + counts max on equal edge, first hits min-wins
     * under firstHitEarlier() on equal key. Deterministic in the pair
     * (this, other) alone; associative and commutative in the merged
     * global state.
     */
    void mergeFrom(const CoverageDelta &other);
};

/** Sorted-run union of two SparseWords (OR on equal index). */
void mergeSparseWords(SparseWords &into, const SparseWords &from);

/**
 * Validate a SparseWords run against a bitmap of @p words words:
 * parallel run lengths and strictly ascending, in-range indices.
 * @return nullptr when well-formed, else a static reason string.
 */
const char *checkSparseWords(const SparseWords &d, size_t words);

} // namespace turbofuzz::coverage

#endif // TURBOFUZZ_COVERAGE_COVERAGE_DELTA_HH
