/** @file Forward declarations for coverage_delta.hh. */

#ifndef TURBOFUZZ_COVERAGE_COVERAGE_DELTA_FWD_HH
#define TURBOFUZZ_COVERAGE_COVERAGE_DELTA_FWD_HH

namespace turbofuzz::coverage
{
struct SparseWords;
struct EdgeDelta;
struct CoverageDelta;
} // namespace turbofuzz::coverage

#endif // TURBOFUZZ_COVERAGE_COVERAGE_DELTA_FWD_HH
