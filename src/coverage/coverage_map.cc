#include "coverage/coverage_map.hh"

#include "common/logging.hh"
#include "coverage/provenance.hh"
#include "rtl/driver.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::coverage
{

CoverageMap::CoverageMap(const DesignInstrumentation *di) : instr(di)
{
    TF_ASSERT(instr != nullptr, "CoverageMap requires instrumentation");
    bitmaps.resize(instr->modules().size());
    coveredPerModule.assign(instr->modules().size(), 0);
    for (size_t i = 0; i < bitmaps.size(); ++i) {
        const uint64_t points =
            instr->modules()[i].instrumentedPoints();
        bitmaps[i].assign((points + 63) / 64, 0);
    }

    // Role-dependency mask per module: which RegRoles feed its index.
    moduleRoleMasks.reserve(instr->modules().size());
    for (const ModuleInstrumentation &m : instr->modules()) {
        uint64_t mask = 0;
        const auto &regs = m.module().registers();
        for (const Placement &p : m.placements())
            mask |= uint64_t{1} << static_cast<size_t>(
                        regs[p.regIndex].role);
        moduleRoleMasks.push_back(mask);
    }
}

uint64_t
CoverageMap::markModule(size_t i)
{
    const uint64_t idx = instr->modules()[i].computeIndex();
    uint64_t &word = bitmaps[i][idx / 64];
    const uint64_t bit = uint64_t{1} << (idx % 64);
    if (word & bit)
        return 0;
    word |= bit;
    ++coveredPerModule[i];
    ++coveredTotal;
    if (prov)
        prov->record(pointKey(PointSpace::Mux,
                              static_cast<uint32_t>(i),
                              static_cast<uint32_t>(idx)));
    return 1;
}

uint64_t
CoverageMap::record()
{
    uint64_t newly = 0;
    for (size_t i = 0; i < bitmaps.size(); ++i)
        newly += markModule(i);
    return newly;
}

uint64_t
CoverageMap::recordTrace(rtl::EventDriver &drv,
                         const core::CommitInfo *commits, size_t n)
{
    uint64_t newly = 0;
    const size_t mod_count = bitmaps.size();
    for (size_t c = 0; c < n; ++c) {
        if (c == 0) {
            // Full drive + full sample: establishes the register
            // invariant the incremental path maintains.
            drv.onCommit(commits[0]);
            newly += record();
            continue;
        }
        const uint64_t dirty = drv.onCommitDirty(commits[c]);
        if (!dirty)
            continue; // no role moved: no index can have moved
        for (size_t i = 0; i < mod_count; ++i) {
            if (moduleRoleMasks[i] & dirty)
                newly += markModule(i);
        }
    }
    return newly;
}

uint64_t
CoverageMap::moduleCovered(size_t module_idx) const
{
    TF_ASSERT(module_idx < coveredPerModule.size(),
              "bad module index %zu", module_idx);
    return coveredPerModule[module_idx];
}

const std::string &
CoverageMap::moduleName(size_t module_idx) const
{
    return instr->modules()[module_idx].module().name();
}

uint64_t
CoverageMap::weightedFeedback() const
{
    uint64_t total = 0;
    const auto &mods = instr->modules();
    for (size_t i = 0; i < mods.size(); ++i) {
        const int shift = mods[i].weightShift;
        const uint64_t c = coveredPerModule[i];
        if (shift >= 0)
            total += c << shift;
        else
            total += c >> (-shift);
    }
    return total;
}

void
CoverageMap::reset()
{
    for (auto &bm : bitmaps)
        std::fill(bm.begin(), bm.end(), 0);
    std::fill(coveredPerModule.begin(), coveredPerModule.end(), 0);
    coveredTotal = 0;
}

bool
CoverageMap::compatibleWith(const CoverageMap &other) const
{
    if (other.instr == instr)
        return true;
    // Different instrumentation objects: equal bit positions must
    // denote the same DUT state, so the full index mapping has to
    // line up — identical modules and identical register placements.
    // (Shape alone is not enough: Baseline instrumentation shifts
    // registers by seed-dependent amounts, so two same-sized maps
    // from different seeds would OR misaligned states.)
    const auto &a = instr->modules();
    const auto &b = other.instr->modules();
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].module().name() != b[i].module().name() ||
            a[i].indexBits() != b[i].indexBits() ||
            a[i].scheme() != b[i].scheme())
            return false;
        const auto &pa = a[i].placements();
        const auto &pb = b[i].placements();
        if (pa.size() != pb.size())
            return false;
        for (size_t p = 0; p < pa.size(); ++p) {
            if (pa[p].regIndex != pb[p].regIndex ||
                pa[p].offset != pb[p].offset ||
                pa[p].wraps != pb[p].wraps)
                return false;
        }
    }
    return true;
}

bool
CoverageMap::compatibleWith(const FeedbackModel &other) const
{
    const auto *map = dynamic_cast<const CoverageMap *>(&other);
    return map != nullptr && compatibleWith(*map);
}

bool
CoverageMap::merge(const FeedbackModel &other, std::string *error)
{
    const auto *map = dynamic_cast<const CoverageMap *>(&other);
    if (!map) {
        if (error)
            *error = "mux feedback merge: model kind mismatch";
        return false;
    }
    return merge(*map, error);
}

bool
CoverageMap::merge(const CoverageMap &other, std::string *error)
{
    if (!compatibleWith(other)) {
        if (error)
            *error = "coverage merge rejected: maps track "
                     "incompatible instrumentations";
        return false;
    }
    for (size_t i = 0; i < bitmaps.size(); ++i) {
        uint64_t covered = 0;
        for (size_t w = 0; w < bitmaps[i].size(); ++w) {
            bitmaps[i][w] |= other.bitmaps[i][w];
            covered += static_cast<uint64_t>(
                __builtin_popcountll(bitmaps[i][w]));
        }
        coveredTotal += covered - coveredPerModule[i];
        coveredPerModule[i] = covered;
    }
    return true;
}

void
CoverageMap::saveState(soc::SnapshotWriter &out) const
{
    out.putU32(static_cast<uint32_t>(bitmaps.size()));
    for (size_t i = 0; i < bitmaps.size(); ++i) {
        out.putU32(static_cast<uint32_t>(bitmaps[i].size()));
        for (uint64_t word : bitmaps[i])
            out.putU64(word);
    }
}

bool
CoverageMap::loadState(soc::SnapshotReader &in, std::string *error)
{
    auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };
    try {
        if (in.getU32() != bitmaps.size())
            return fail("coverage module count mismatch");
        coveredTotal = 0;
        for (size_t i = 0; i < bitmaps.size(); ++i) {
            if (in.getU32() != bitmaps[i].size())
                return fail("coverage bitmap size mismatch");
            uint64_t covered = 0;
            for (uint64_t &word : bitmaps[i]) {
                word = in.getU64();
                covered += static_cast<uint64_t>(
                    __builtin_popcountll(word));
            }
            coveredPerModule[i] = covered;
            coveredTotal += covered;
        }
        return true;
    } catch (const soc::SnapshotFormatError &e) {
        return fail(e.what());
    }
}

} // namespace turbofuzz::coverage
