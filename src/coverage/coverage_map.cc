#include "coverage/coverage_map.hh"

#include "common/logging.hh"

namespace turbofuzz::coverage
{

CoverageMap::CoverageMap(const DesignInstrumentation *di) : instr(di)
{
    TF_ASSERT(instr != nullptr, "CoverageMap requires instrumentation");
    bitmaps.resize(instr->modules().size());
    coveredPerModule.assign(instr->modules().size(), 0);
    for (size_t i = 0; i < bitmaps.size(); ++i) {
        const uint64_t points =
            instr->modules()[i].instrumentedPoints();
        bitmaps[i].assign((points + 63) / 64, 0);
    }
}

uint64_t
CoverageMap::record()
{
    uint64_t newly = 0;
    const auto &mods = instr->modules();
    for (size_t i = 0; i < mods.size(); ++i) {
        const uint64_t idx = mods[i].computeIndex();
        uint64_t &word = bitmaps[i][idx / 64];
        const uint64_t bit = uint64_t{1} << (idx % 64);
        if (!(word & bit)) {
            word |= bit;
            ++coveredPerModule[i];
            ++coveredTotal;
            ++newly;
        }
    }
    return newly;
}

uint64_t
CoverageMap::moduleCovered(size_t module_idx) const
{
    TF_ASSERT(module_idx < coveredPerModule.size(),
              "bad module index %zu", module_idx);
    return coveredPerModule[module_idx];
}

const std::string &
CoverageMap::moduleName(size_t module_idx) const
{
    return instr->modules()[module_idx].module().name();
}

uint64_t
CoverageMap::weightedFeedback() const
{
    uint64_t total = 0;
    const auto &mods = instr->modules();
    for (size_t i = 0; i < mods.size(); ++i) {
        const int shift = mods[i].weightShift;
        const uint64_t c = coveredPerModule[i];
        if (shift >= 0)
            total += c << shift;
        else
            total += c >> (-shift);
    }
    return total;
}

void
CoverageMap::reset()
{
    for (auto &bm : bitmaps)
        std::fill(bm.begin(), bm.end(), 0);
    std::fill(coveredPerModule.begin(), coveredPerModule.end(), 0);
    coveredTotal = 0;
}

void
CoverageMap::merge(const CoverageMap &other)
{
    TF_ASSERT(other.instr == instr,
              "merging maps over different instrumentations");
    for (size_t i = 0; i < bitmaps.size(); ++i) {
        uint64_t covered = 0;
        for (size_t w = 0; w < bitmaps[i].size(); ++w) {
            bitmaps[i][w] |= other.bitmaps[i][w];
            covered += static_cast<uint64_t>(
                __builtin_popcountll(bitmaps[i][w]));
        }
        coveredTotal += covered - coveredPerModule[i];
        coveredPerModule[i] = covered;
    }
}

} // namespace turbofuzz::coverage
