#include "coverage/coverage_map.hh"

#include <algorithm>
#include <array>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "coverage/provenance.hh"
#include "rtl/driver.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::coverage
{

CoverageMap::CoverageMap(const DesignInstrumentation *di) : instr(di)
{
    TF_ASSERT(instr != nullptr, "CoverageMap requires instrumentation");
    bitmaps.resize(instr->modules().size());
    dirtyWords.resize(instr->modules().size());
    coveredPerModule.assign(instr->modules().size(), 0);
    for (size_t i = 0; i < bitmaps.size(); ++i) {
        const uint64_t points =
            instr->modules()[i].instrumentedPoints();
        bitmaps[i].assign((points + 63) / 64, 0);
        dirtyWords[i].assign((bitmaps[i].size() + 63) / 64, 0);
    }

    // Role-dependency mask per module: which RegRoles feed its index.
    moduleRoleMasks.reserve(instr->modules().size());
    for (const ModuleInstrumentation &m : instr->modules()) {
        uint64_t mask = 0;
        const auto &regs = m.module().registers();
        for (const Placement &p : m.placements())
            mask |= uint64_t{1} << static_cast<size_t>(
                        regs[p.regIndex].role);
        moduleRoleMasks.push_back(mask);
    }

    // Flatten every placement into an incremental-sweep entry,
    // grouped by the role of its register so a dirty-role step can
    // walk exactly the entries that may have moved. Register storage
    // is pointer-stable after design construction (the event driver
    // relies on the same property).
    const size_t mod_count = instr->modules().size();
    modIdx.assign(mod_count, 0);
    std::array<std::vector<IncEntry>, 64> byRole;
    for (size_t i = 0; i < mod_count; ++i) {
        const ModuleInstrumentation &m = instr->modules()[i];
        const auto &regs = m.module().registers();
        for (const Placement &p : m.placements()) {
            const rtl::Register &r = regs[p.regIndex];
            IncEntry e;
            e.widthMask = turbofuzz::mask(r.width);
            e.idxMask = turbofuzz::mask(m.indexBits());
            e.module = static_cast<uint32_t>(i);
            e.offset = p.offset;
            e.idxBits = static_cast<uint8_t>(m.indexBits());
            e.rot = static_cast<uint8_t>(p.offset % m.indexBits());
            e.wraps = p.wraps;
            e.role = static_cast<uint8_t>(r.role);
            if (!r.domain.empty()) {
                // Tabulate the whole domain -> contribution map.
                std::vector<uint64_t> tbl(r.domain.size());
                for (size_t d = 0; d < r.domain.size(); ++d)
                    tbl[d] =
                        placeValue(e, r.domain[d] & e.widthMask);
                placedDomPool.push_back(std::move(tbl));
                e.placedDom = placedDomPool.back().data();
                e.domSize =
                    static_cast<uint32_t>(r.domain.size());
            } else if (r.salt != 0) {
                e.salt = r.salt;
            } else {
                e.srcShift = r.srcShift;
            }
            byRole[static_cast<size_t>(r.role)].push_back(e);
        }
    }
    // Flatten into (role, module) slots. Within a role the entries
    // were appended in module order, so same-module entries are
    // already contiguous.
    for (size_t r = 0; r < 64; ++r) {
        roleSlotBegin[r] = static_cast<uint32_t>(slotModule.size());
        uint32_t last_mod = ~uint32_t{0};
        for (const IncEntry &e : byRole[r]) {
            if (e.module != last_mod) {
                slotModule.push_back(e.module);
                slotEntryBegin.push_back(
                    static_cast<uint32_t>(incEntries.size()));
                last_mod = e.module;
            }
            incEntries.push_back(e);
        }
        if (!byRole[r].empty())
            rolesWithEntries |= uint64_t{1} << r;
    }
    roleSlotBegin[64] = static_cast<uint32_t>(slotModule.size());
    slotEntryBegin.push_back(
        static_cast<uint32_t>(incEntries.size()));
    slotAgg.assign(slotModule.size(), 0);

    // Role-memo layout: one tag word plus one aggregate word per
    // slot, memoLines lines per role that has entries.
    uint32_t words = 0, lines = 0;
    for (size_t r = 0; r < 64; ++r) {
        memoBase[r] = words;
        validBase[r] = lines;
        const uint32_t nslots =
            roleSlotBegin[r + 1] - roleSlotBegin[r];
        if (nslots != 0) {
            words += memoLines * (1 + nslots);
            lines += memoLines;
        }
    }
    memoTbl.assign(words, 0);
    memoValid.assign(lines, 0);
}

uint64_t
CoverageMap::placeValue(const IncEntry &e, uint64_t v)
{
    // Exact replica of ModuleInstrumentation::computeIndex() for one
    // placement — the maintained module index is the XOR of these.
    if (e.wraps) {
        while (v >> e.idxBits)
            v = (v & e.idxMask) ^ (v >> e.idxBits);
        v = ((v << e.rot) | (v >> (e.idxBits - e.rot))) & e.idxMask;
    } else {
        v = (v << e.offset) & e.idxMask;
    }
    return v;
}

uint64_t
CoverageMap::contribFor(const IncEntry &e, uint64_t roleValue)
{
    if (e.placedDom)
        return e.placedDom[roleValue % e.domSize];
    uint64_t mapped;
    if (e.salt) {
        // EventDriver::mapToDomain's salted mix, verbatim.
        uint64_t z = roleValue ^ e.salt;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z ^= z >> 27;
        mapped = z & e.widthMask;
    } else {
        mapped = (roleValue >> e.srcShift) & e.widthMask;
    }
    return placeValue(e, mapped);
}

uint64_t
CoverageMap::refreshAllEntries(const std::array<uint64_t, 64> &roles)
{
    uint64_t roles_left = rolesWithEntries;
    while (roles_left) {
        const unsigned r = static_cast<unsigned>(
            __builtin_ctzll(roles_left));
        roles_left &= roles_left - 1;
        const uint64_t v = roles[r];
        const uint32_t s0 = roleSlotBegin[r];
        const uint32_t s1 = roleSlotBegin[r + 1];
        uint64_t *line = &memoTbl[memoBase[r] +
                                  (v & (memoLines - 1)) *
                                      (1 + (s1 - s0))];
        uint8_t &ok = memoValid[validBase[r] + (v & (memoLines - 1))];
        if (ok && line[0] == v) {
            for (uint32_t s = s0; s < s1; ++s)
                slotAgg[s] = line[1 + (s - s0)];
            continue;
        }
        line[0] = v;
        ok = 1;
        for (uint32_t s = s0; s < s1; ++s) {
            uint64_t acc = 0;
            for (uint32_t k = slotEntryBegin[s];
                 k < slotEntryBegin[s + 1]; ++k)
                acc ^= contribFor(incEntries[k], v);
            line[1 + (s - s0)] = acc;
            slotAgg[s] = acc;
        }
    }
    std::fill(modIdx.begin(), modIdx.end(), 0);
    for (size_t s = 0; s < slotAgg.size(); ++s)
        modIdx[slotModule[s]] ^= slotAgg[s];
    uint64_t newly = 0;
    for (size_t i = 0; i < modIdx.size(); ++i)
        newly += markModuleIndex(i, modIdx[i]);
    return newly;
}

uint64_t
CoverageMap::markModule(size_t i)
{
    return markModuleIndex(i, instr->modules()[i].computeIndex());
}

uint64_t
CoverageMap::markModuleIndex(size_t i, uint64_t idx)
{
    uint64_t &word = bitmaps[i][idx / 64];
    const uint64_t bit = uint64_t{1} << (idx % 64);
    if (word & bit)
        return 0;
    word |= bit;
    dirtyWords[i][idx / 64 / 64] |= uint64_t{1} << (idx / 64 % 64);
    ++coveredPerModule[i];
    ++coveredTotal;
    if (prov)
        prov->record(pointKey(PointSpace::Mux,
                              static_cast<uint32_t>(i),
                              static_cast<uint32_t>(idx)));
    return 1;
}

// tflint: hot-path
uint64_t
CoverageMap::record()
{
    uint64_t newly = 0;
    for (size_t i = 0; i < bitmaps.size(); ++i)
        newly += markModule(i);
    return newly;
}

// tflint: hot-path
uint64_t
CoverageMap::recordTrace(rtl::EventDriver &drv,
                         const core::CommitInfo *commits, size_t n)
{
    uint64_t newly = 0;
    if (bitmaps.size() > 64) {
        // Designs beyond the changed-module mask width take the
        // straightforward dirty-role path.
        for (size_t c = 0; c < n; ++c) {
            if (c == 0) {
                drv.onCommit(commits[0]);
                newly += record();
                continue;
            }
            const uint64_t dirty = drv.onCommitDirty(commits[c]);
            if (!dirty)
                continue;
            for (size_t i = 0; i < bitmaps.size(); ++i) {
                if (moduleRoleMasks[i] & dirty)
                    newly += markModule(i);
            }
        }
        return newly;
    }
    const std::array<uint64_t, 64> &rv = drv.roleValues();
    for (size_t c = 0; c < n; ++c) {
        if (c == 0) {
            // Full role advance + full refresh: establishes the
            // cached aggregates and maintained indices the
            // incremental steps below patch. Registers are not
            // written here — the sweep computes from role values,
            // and the full write is folded into the sweep-ending
            // materialization.
            drv.advanceRolesFull(commits[0]);
            newly += refreshAllEntries(rv);
            continue;
        }
        const uint64_t dirty = drv.advanceRoles(commits[c]);
        uint64_t roles = dirty & rolesWithEntries;
        if (!roles)
            continue; // no placed role moved: no index can have moved
        uint64_t changed = 0; // changed-index modules (count <= 64)
        while (roles) {
            const unsigned r = static_cast<unsigned>(
                __builtin_ctzll(roles));
            roles &= roles - 1;
            const uint64_t value = rv[r];
            const uint32_t s0 = roleSlotBegin[r];
            const uint32_t s1 = roleSlotBegin[r + 1];
            uint64_t *line = &memoTbl[memoBase[r] +
                                      (value & (memoLines - 1)) *
                                          (1 + (s1 - s0))];
            uint8_t &ok =
                memoValid[validBase[r] + (value & (memoLines - 1))];
            if (!(ok && line[0] == value)) {
                // Memo miss: compute this value's slot aggregates
                // once and cache them. Lines are pure in (role
                // value, instrumentation), so they never need
                // invalidation — small recurring roles (operand
                // indices, FSM states, op classes) hit almost
                // always after warmup.
                line[0] = value;
                ok = 1;
                for (uint32_t s = s0; s < s1; ++s) {
                    uint64_t acc = 0;
                    for (uint32_t k = slotEntryBegin[s];
                         k < slotEntryBegin[s + 1]; ++k)
                        acc ^= contribFor(incEntries[k], value);
                    line[1 + (s - s0)] = acc;
                }
            }
            for (uint32_t s = s0; s < s1; ++s) {
                const uint64_t na = line[1 + (s - s0)];
                if (na == slotAgg[s])
                    continue;
                const uint32_t m = slotModule[s];
                modIdx[m] ^= slotAgg[s] ^ na;
                slotAgg[s] = na;
                changed |= uint64_t{1} << m;
            }
        }
        // A module whose maintained index did NOT change is already
        // marked at that index (at the latest by commit 0 of this
        // sweep), so re-marking it would be a no-op: only changed
        // indices need the bitmap test. The ctz walk marks in module
        // order, so multi-module first-hits land in provenance
        // exactly as the full per-module loop would record them.
        while (changed) {
            const unsigned m = static_cast<unsigned>(
                __builtin_ctzll(changed));
            changed &= changed - 1;
            newly += markModuleIndex(m, modIdx[m]);
        }
    }
    // Registers lagged behind the role values during the loop; one
    // batched write restores the driver invariant (final values are
    // identical to per-commit writes: both are the mapping of each
    // role's LAST value).
    drv.materializeRegisters();
    return newly;
}

uint64_t
CoverageMap::moduleCovered(size_t module_idx) const
{
    TF_ASSERT(module_idx < coveredPerModule.size(),
              "bad module index %zu", module_idx);
    return coveredPerModule[module_idx];
}

const std::string &
CoverageMap::moduleName(size_t module_idx) const
{
    return instr->modules()[module_idx].module().name();
}

uint64_t
CoverageMap::weightedFeedback() const
{
    uint64_t total = 0;
    const auto &mods = instr->modules();
    for (size_t i = 0; i < mods.size(); ++i) {
        const int shift = mods[i].weightShift;
        const uint64_t c = coveredPerModule[i];
        if (shift >= 0)
            total += c << shift;
        else
            total += c >> (-shift);
    }
    return total;
}

void
CoverageMap::reset()
{
    for (auto &bm : bitmaps)
        std::fill(bm.begin(), bm.end(), 0);
    for (auto &dw : dirtyWords)
        std::fill(dw.begin(), dw.end(), 0);
    std::fill(coveredPerModule.begin(), coveredPerModule.end(), 0);
    coveredTotal = 0;
}

bool
CoverageMap::compatibleWith(const CoverageMap &other) const
{
    if (other.instr == instr)
        return true;
    // Different instrumentation objects: equal bit positions must
    // denote the same DUT state, so the full index mapping has to
    // line up — identical modules and identical register placements.
    // (Shape alone is not enough: Baseline instrumentation shifts
    // registers by seed-dependent amounts, so two same-sized maps
    // from different seeds would OR misaligned states.)
    const auto &a = instr->modules();
    const auto &b = other.instr->modules();
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].module().name() != b[i].module().name() ||
            a[i].indexBits() != b[i].indexBits() ||
            a[i].scheme() != b[i].scheme())
            return false;
        const auto &pa = a[i].placements();
        const auto &pb = b[i].placements();
        if (pa.size() != pb.size())
            return false;
        for (size_t p = 0; p < pa.size(); ++p) {
            if (pa[p].regIndex != pb[p].regIndex ||
                pa[p].offset != pb[p].offset ||
                pa[p].wraps != pb[p].wraps)
                return false;
        }
    }
    return true;
}

bool
CoverageMap::compatibleWith(const FeedbackModel &other) const
{
    const auto *map = dynamic_cast<const CoverageMap *>(&other);
    return map != nullptr && compatibleWith(*map);
}

bool
CoverageMap::merge(const FeedbackModel &other, std::string *error)
{
    const auto *map = dynamic_cast<const CoverageMap *>(&other);
    if (!map) {
        if (error)
            *error = "mux feedback merge: model kind mismatch";
        return false;
    }
    return merge(*map, error);
}

bool
CoverageMap::merge(const CoverageMap &other, std::string *error)
{
    if (!compatibleWith(other)) {
        if (error)
            *error = "coverage merge rejected: maps track "
                     "incompatible instrumentations";
        return false;
    }
    for (size_t i = 0; i < bitmaps.size(); ++i) {
        uint64_t covered = 0;
        for (size_t w = 0; w < bitmaps[i].size(); ++w) {
            const uint64_t merged =
                bitmaps[i][w] | other.bitmaps[i][w];
            if (merged != bitmaps[i][w]) {
                bitmaps[i][w] = merged;
                dirtyWords[i][w / 64] |= uint64_t{1} << (w % 64);
            }
            covered += static_cast<uint64_t>(
                __builtin_popcountll(merged));
        }
        coveredTotal += covered - coveredPerModule[i];
        coveredPerModule[i] = covered;
    }
    return true;
}

// tflint: hot-path
void
CoverageMap::publishDelta(std::vector<SparseWords> &out_mux)
{
    out_mux.resize(bitmaps.size());
    for (size_t i = 0; i < bitmaps.size(); ++i) {
        SparseWords &d = out_mux[i];
        d.clear();
        for (size_t dw = 0; dw < dirtyWords[i].size(); ++dw) {
            uint64_t bits = dirtyWords[i][dw];
            if (!bits)
                continue;
            dirtyWords[i][dw] = 0;
            while (bits) {
                const unsigned b = static_cast<unsigned>(
                    __builtin_ctzll(bits));
                bits &= bits - 1;
                const size_t w = dw * 64 + b;
                d.index.push_back(static_cast<uint32_t>(w));
                d.value.push_back(bitmaps[i][w]);
            }
        }
    }
}

// tflint: hot-path
bool
CoverageMap::mergeDelta(const std::vector<SparseWords> &mux,
                        std::string *error)
{
    auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (mux.size() != bitmaps.size())
        return fail("coverage delta rejected: module count mismatch");
    for (size_t i = 0; i < mux.size(); ++i) {
        if (const char *why =
                checkSparseWords(mux[i], bitmaps[i].size())) {
            if (error)
                *error = std::string("coverage delta rejected: ") +
                         why;
            return false;
        }
    }
    for (size_t i = 0; i < mux.size(); ++i) {
        const SparseWords &d = mux[i];
        for (size_t k = 0; k < d.index.size(); ++k) {
            const uint32_t w = d.index[k];
            const uint64_t merged = bitmaps[i][w] | d.value[k];
            if (merged == bitmaps[i][w])
                continue;
            const uint64_t added = static_cast<uint64_t>(
                __builtin_popcountll(merged) -
                __builtin_popcountll(bitmaps[i][w]));
            bitmaps[i][w] = merged;
            dirtyWords[i][w / 64] |= uint64_t{1} << (w % 64);
            coveredPerModule[i] += added;
            coveredTotal += added;
        }
    }
    return true;
}

void
CoverageMap::saveState(soc::SnapshotWriter &out) const
{
    out.putU32(static_cast<uint32_t>(bitmaps.size()));
    for (size_t i = 0; i < bitmaps.size(); ++i) {
        out.putU32(static_cast<uint32_t>(bitmaps[i].size()));
        for (uint64_t word : bitmaps[i])
            out.putU64(word);
    }
}

bool
CoverageMap::loadState(soc::SnapshotReader &in, std::string *error)
{
    auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };
    try {
        if (in.getU32() != bitmaps.size())
            return fail("coverage module count mismatch");
        coveredTotal = 0;
        for (size_t i = 0; i < bitmaps.size(); ++i) {
            if (in.getU32() != bitmaps[i].size())
                return fail("coverage bitmap size mismatch");
            uint64_t covered = 0;
            std::fill(dirtyWords[i].begin(), dirtyWords[i].end(), 0);
            for (size_t w = 0; w < bitmaps[i].size(); ++w) {
                const uint64_t word = in.getU64();
                bitmaps[i][w] = word;
                // Conservatively republish every covered word: the
                // restored map cannot know what its last publication
                // contained, and over-publication is a no-op under
                // the OR merge.
                if (word)
                    dirtyWords[i][w / 64] |= uint64_t{1} << (w % 64);
                covered += static_cast<uint64_t>(
                    __builtin_popcountll(word));
            }
            coveredPerModule[i] = covered;
            coveredTotal += covered;
        }
        return true;
    } catch (const soc::SnapshotFormatError &e) {
        return fail(e.what());
    }
}

} // namespace turbofuzz::coverage
