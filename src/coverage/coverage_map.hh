/**
 * @file
 * Runtime coverage accumulation.
 *
 * One bitmap per instrumented module; record() samples every module's
 * current coverage index (after the event driver has updated register
 * values) and reports how many previously unseen points were hit.
 * The weighted feedback value applies each module's Ncov shift, which
 * is the knob the paper adds to de-bias mux-heavy arithmetic units.
 */

#ifndef TURBOFUZZ_COVERAGE_COVERAGE_MAP_HH
#define TURBOFUZZ_COVERAGE_COVERAGE_MAP_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "coverage/coverage_delta.hh"
#include "coverage/feedback_model.hh"
#include "coverage/instrumentation.hh"

namespace turbofuzz::rtl
{
class EventDriver;
} // namespace turbofuzz::rtl

namespace turbofuzz::soc
{
class SnapshotWriter;
class SnapshotReader;
} // namespace turbofuzz::soc

namespace turbofuzz::core
{
struct CommitInfo;
} // namespace turbofuzz::core

namespace turbofuzz::coverage
{

/**
 * Per-design coverage bitmap set — the paper's mux-coverage signal,
 * doubling as the default FeedbackModel implementation (sweep() is
 * recordTrace(); the adaptation is bit-identical to the historical
 * hardwired path).
 */
class CoverageMap : public FeedbackModel
{
  public:
    /** @param di Instrumentation to track (not owned; must outlive). */
    explicit CoverageMap(const DesignInstrumentation *di);

    using FeedbackModel::record;

    /**
     * Sample every module's current index; mark the points.
     * @return number of coverage points newly hit by this sample.
     */
    uint64_t record();

    /**
     * Batched sweep of the engine's trace stage: drive @p drv with
     * each of the @p n commits and sample coverage after every one —
     * bit-identical totals to interleaving drv.onCommit()/record()
     * per commit, but with two batch-only fast paths: registers whose
     * role value did not change are not rewritten, and modules none
     * of whose control-register roles changed are not resampled
     * (their index — already marked at the previous commit of this
     * sweep — cannot have moved).
     *
     * @return number of coverage points newly hit by the sweep.
     */
    uint64_t recordTrace(rtl::EventDriver &drv,
                         const core::CommitInfo *commits, size_t n);

    // --- FeedbackModel ------------------------------------------------
    std::string_view modelName() const override { return "mux"; }

    /** The engine's sweep stage entry: recordTrace(). */
    uint64_t
    sweep(rtl::EventDriver &drv, const core::CommitInfo *commits,
          size_t n) override
    {
        return recordTrace(drv, commits, n);
    }

    uint64_t newlyHit() const override { return coveredTotal; }

    bool compatibleWith(const FeedbackModel &other) const override;

    /**
     * Merge another model's covered points (bitmap OR). Rejected with
     * a typed error — and no mutation — unless @p other is a
     * CoverageMap over compatible instrumentation.
     */
    bool merge(const FeedbackModel &other,
               std::string *error = nullptr) override;

    /** Total covered points across all modules. */
    uint64_t totalCovered() const { return coveredTotal; }

    /** Covered points of one module (by instrumentation order). */
    uint64_t moduleCovered(size_t module_idx) const;

    /** Name of module @p module_idx. */
    const std::string &moduleName(size_t module_idx) const;

    /** Number of tracked modules. */
    size_t moduleCount() const { return bitmaps.size(); }

    /**
     * Weighted feedback: sum over modules of covered counts shifted
     * by their weightShift (negative shifts weaken the module).
     */
    uint64_t weightedFeedback() const;

    /** Clear all bitmaps. */
    void reset() override;

    /**
     * Whether @p other tracks a structurally identical
     * instrumentation: same module count and same points per module.
     * Maps over the SAME instrumentation object are always
     * compatible; maps over different objects are compatible when
     * those instrumentations were built with identical (design,
     * scheme, maxStateSize, seed) parameters — the fleet's
     * per-shard case — so that equal bit positions denote the same
     * covered state.
     */
    bool compatibleWith(const CoverageMap &other) const;

    /**
     * Merge another map's covered points into this one (bitmap OR).
     * Maps that are not compatibleWith() each other are rejected with
     * a typed error and this map is left untouched — a shape mismatch
     * must never silently corrupt a fleet merge. Idempotent:
     * re-merging the same map changes nothing.
     * @return false with @p error set (when non-null) on rejection.
     */
    bool merge(const CoverageMap &other, std::string *error = nullptr);

    /**
     * Append every bitmap word changed since the previous publish to
     * @p out_mux (one SparseWords per module, word indices strictly
     * ascending) and clear the dirty set. Publishing then merging via
     * mergeDelta() is bit-identical to merging this whole map into
     * the same destination: unchanged words merge as no-ops, and
     * dirty tracking over-approximates after loadState() — which is
     * safe because the payload is idempotent under OR.
     */
    void publishDelta(std::vector<SparseWords> &out_mux);

    /**
     * OR a published delta into this map. Fully validated before any
     * mutation — module count, parallel run lengths, strictly
     * ascending in-range word indices; malformed deltas are rejected
     * with a typed error and the map is left untouched.
     * @return false with @p error set (when non-null) on rejection.
     */
    bool mergeDelta(const std::vector<SparseWords> &mux,
                    std::string *error = nullptr);

    void bindProvenance(FirstHitLedger *ledger) override
    {
        prov = ledger;
    }

    /** Checkpoint support: serialize all bitmaps + covered counts. */
    void saveState(soc::SnapshotWriter &out) const override;

    /**
     * Restore a saveState() image into a map over structurally
     * identical instrumentation (same modules, same point counts).
     * @return false with @p error set on malformed or mismatched
     *         input.
     */
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr) override;

  private:
    /** Mark module @p i's current index; returns 1 if newly hit. */
    uint64_t markModule(size_t i);

    /** Mark a precomputed index of module @p i (same marking,
     *  counting and provenance semantics as markModule). */
    uint64_t markModuleIndex(size_t i, uint64_t idx);

    /**
     * One control-register placement, flattened for the incremental
     * sweep. The register value is a pure function of its role's
     * value (the driver's mapToDomain), and the placed contribution
     * a pure function of the register value — so the sweep composes
     * the two and computes contributions straight from the driver's
     * role values, letting register materialization batch to one
     * write pass per sweep. Domain-mapped registers go one step
     * further: their whole composed function is a precomputed table
     * over the (small) domain.
     */
    struct IncEntry
    {
        /** Domain regs: placed contribution per domain slot
         *  (tables owned by placedDomPool); null otherwise. */
        const uint64_t *placedDom = nullptr;
        uint32_t domSize = 0;
        uint64_t salt = 0;     ///< non-zero: salted-mix mapping
        unsigned srcShift = 0; ///< else: (v >> srcShift) & widthMask
        uint64_t widthMask;
        uint64_t idxMask;
        uint32_t module;
        unsigned offset;
        uint8_t idxBits;
        uint8_t rot; ///< offset % idxBits (wrapping placements)
        bool wraps;
        uint8_t role;
    };

    /** Placement math of computeIndex() for one mapped value. */
    static uint64_t placeValue(const IncEntry &e, uint64_t v);

    /** Composed role-value -> placed contribution of one entry
     *  (mapToDomain() then placeValue(), bit-exact with both). */
    static uint64_t contribFor(const IncEntry &e, uint64_t roleValue);

    /**
     * Recompute every contribution and module index from the current
     * role values, then mark all modules — the commit-0 step of
     * each sweep. Runs right after a full onCommit(), when register
     * values equal their role mapping by construction, and makes the
     * sweep self-validating against any driver-state perturbation
     * between sweeps (reset/loadState).
     */
    uint64_t refreshAllEntries(const std::array<uint64_t, 64> &roles);

    const DesignInstrumentation *instr;
    std::vector<std::vector<uint64_t>> bitmaps; ///< 1 bit per point

    /**
     * Per module: one bit per bitmap word, set whenever that word
     * changed since the last publishDelta(). Never serialized —
     * saveState() images are identical with or without pending
     * deltas; loadState() conservatively marks every nonzero word.
     */
    std::vector<std::vector<uint64_t>> dirtyWords;

    std::vector<uint64_t> coveredPerModule;
    uint64_t coveredTotal = 0;
    FirstHitLedger *prov = nullptr; ///< null: provenance off

    /**
     * Per module: bitmask over rtl::RegRole of the roles its control
     * registers latch. recordTrace() skips a module whenever the
     * commit dirtied none of them.
     */
    std::vector<uint64_t> moduleRoleMasks;

    // Incremental-sweep state. Entries are grouped by (role, module)
    // into "slots": slot s covers incEntries[slotEntryBegin[s],
    // slotEntryBegin[s+1]) — all placements of one module fed by one
    // role — and slotAgg[s] caches the XOR of their current
    // contributions, so modIdx[m] (the module's maintained index) is
    // the XOR of its slots' aggregates.
    //
    // The role memo is a per-role direct-mapped table over role
    // VALUES: a line holds the slot aggregates for one previously
    // seen value. Contributions are pure in (role value,
    // instrumentation), so lines never need invalidation; roles with
    // small recurring values (operand indices, FSM states, op
    // classes) hit almost always and reduce a dirty role to one XOR
    // per affected module, skipping the per-entry math entirely.
    std::vector<IncEntry> incEntries;
    uint64_t rolesWithEntries = 0;
    std::vector<uint64_t> modIdx;
    std::vector<std::vector<uint64_t>> placedDomPool;

    static constexpr uint32_t memoLines = 128;
    uint32_t roleSlotBegin[65] = {}; ///< role -> slot span
    std::vector<uint32_t> slotModule;
    std::vector<uint32_t> slotEntryBegin; ///< +1 sentinel at the end
    std::vector<uint64_t> slotAgg;
    std::vector<uint64_t> memoTbl; ///< per line: value tag + aggs
    std::vector<uint8_t> memoValid;
    uint32_t memoBase[64] = {};  ///< role -> memoTbl line 0 offset
    uint32_t validBase[64] = {}; ///< role -> memoValid offset
};

} // namespace turbofuzz::coverage

#endif // TURBOFUZZ_COVERAGE_COVERAGE_MAP_HH
