#include "coverage/feedback_model.hh"

#include <algorithm>

#include "checker/diff_checker.hh"
#include "common/logging.hh"
#include "core/commit_info.hh"
#include "coverage/coverage_delta.hh"
#include "coverage/provenance.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::coverage
{

namespace
{

/** Fold a 64-bit value to 16 bits, keeping every input bit relevant. */
uint16_t
fold16(uint64_t v)
{
    v ^= v >> 32;
    v ^= v >> 16;
    return static_cast<uint16_t>(v);
}

/** SplitMix64 finalizer (the repo's standard decorrelation mix). */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Mark bit @p idx of @p bitmap; returns 1 when newly set. */
uint64_t
markBit(std::vector<uint64_t> &bitmap, uint64_t idx)
{
    uint64_t &word = bitmap[idx / 64];
    const uint64_t bit = uint64_t{1} << (idx % 64);
    if (word & bit)
        return 0;
    word |= bit;
    return 1;
}

bool
setError(std::string *error, const char *msg)
{
    if (error)
        *error = msg;
    return false;
}

/** Walk-and-clear a dirty-word set: append (index, word) pairs of
 *  every dirty word of @p bitmap to @p out in ascending order. */
// tflint: hot-path
void
publishDirtyWords(std::vector<uint64_t> &dirty,
                  const std::vector<uint64_t> &bitmap,
                  SparseWords &out)
{
    for (size_t dw = 0; dw < dirty.size(); ++dw) {
        uint64_t bits = dirty[dw];
        if (!bits)
            continue;
        dirty[dw] = 0;
        while (bits) {
            const unsigned b =
                static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            const size_t w = dw * 64 + b;
            out.index.push_back(static_cast<uint32_t>(w));
            out.value.push_back(bitmap[w]);
        }
    }
}

} // namespace

std::string_view
coverageModelName(CoverageModelKind kind)
{
    switch (kind) {
      case CoverageModelKind::Mux: return "mux";
      case CoverageModelKind::Csr: return "csr";
      case CoverageModelKind::HitCount: return "edges";
      case CoverageModelKind::Composite: return "composite";
    }
    return "?";
}

bool
coverageModelFromString(const std::string &text,
                        CoverageModelKind *kind)
{
    if (text == "mux")
        *kind = CoverageModelKind::Mux;
    else if (text == "csr")
        *kind = CoverageModelKind::Csr;
    else if (text == "edges" || text == "hitcount")
        *kind = CoverageModelKind::HitCount;
    else if (text == "composite")
        *kind = CoverageModelKind::Composite;
    else
        return false;
    return true;
}

// --- CsrTransitionModel ----------------------------------------------

CsrTransitionModel::CsrTransitionModel()
    : bitmap((uint64_t{1} << indexBits) / 64, 0),
      dirtyWords((bitmap.size() + 63) / 64, 0)
{
}

uint64_t
CsrTransitionModel::sweep(rtl::EventDriver & /*drv*/,
                          const core::CommitInfo *commits, size_t n)
{
    uint64_t newly = 0;
    const uint64_t mask = (uint64_t{1} << indexBits) - 1;
    for (size_t c = 0; c < n; ++c) {
        const auto ev = checker::csrTraceEvent(commits[c]);
        if (!ev)
            continue;
        uint64_t &prev = lastValue[ev->addr]; // first sight: 0
        const uint64_t key =
            mix64((uint64_t{ev->addr} << 32) ^
                  (uint64_t{fold16(prev)} << 16) ^ fold16(ev->value));
        prev = ev->value;
        const uint64_t gained = markBit(bitmap, key & mask);
        if (gained)
            dirtyWords[(key & mask) / 64 / 64] |=
                uint64_t{1} << ((key & mask) / 64 % 64);
        newly += gained;
        hit += gained;
        if (prov && gained)
            prov->record(pointKey(
                PointSpace::Csr, 0,
                static_cast<uint32_t>(key & mask)));
    }
    return newly;
}

void
CsrTransitionModel::reset()
{
    std::fill(bitmap.begin(), bitmap.end(), 0);
    std::fill(dirtyWords.begin(), dirtyWords.end(), 0);
    lastValue.clear();
    hit = 0;
}

bool
CsrTransitionModel::compatibleWith(const FeedbackModel &other) const
{
    return dynamic_cast<const CsrTransitionModel *>(&other) != nullptr;
}

bool
CsrTransitionModel::merge(const FeedbackModel &other,
                          std::string *error)
{
    const auto *o = dynamic_cast<const CsrTransitionModel *>(&other);
    if (!o) {
        return setError(error,
                        "csr feedback merge: model kind mismatch");
    }
    uint64_t covered = 0;
    for (size_t w = 0; w < bitmap.size(); ++w) {
        const uint64_t merged = bitmap[w] | o->bitmap[w];
        if (merged != bitmap[w]) {
            bitmap[w] = merged;
            dirtyWords[w / 64] |= uint64_t{1} << (w % 64);
        }
        covered += static_cast<uint64_t>(
            __builtin_popcountll(merged));
    }
    hit = covered;
    // lastValue stays local: per-CSR history belongs to this shard's
    // own commit stream, not to the merged global view.
    return true;
}

// tflint: hot-path
void
CsrTransitionModel::publishDelta(SparseWords &out)
{
    out.clear();
    publishDirtyWords(dirtyWords, bitmap, out);
}

// tflint: hot-path
bool
CsrTransitionModel::mergeDelta(const SparseWords &delta,
                               std::string *error)
{
    if (const char *why = checkSparseWords(delta, bitmap.size())) {
        if (error)
            *error = std::string("csr delta rejected: ") + why;
        return false;
    }
    for (size_t k = 0; k < delta.index.size(); ++k) {
        const uint32_t w = delta.index[k];
        const uint64_t merged = bitmap[w] | delta.value[k];
        if (merged == bitmap[w])
            continue;
        hit += static_cast<uint64_t>(
            __builtin_popcountll(merged) -
            __builtin_popcountll(bitmap[w]));
        bitmap[w] = merged;
        dirtyWords[w / 64] |= uint64_t{1} << (w % 64);
    }
    return true;
}

void
CsrTransitionModel::saveState(soc::SnapshotWriter &out) const
{
    out.putU64(hit);
    for (uint64_t word : bitmap)
        out.putU64(word);
    out.putU32(static_cast<uint32_t>(lastValue.size()));
    for (const auto &[addr, value] : lastValue) {
        out.putU16(addr);
        out.putU64(value);
    }
}

bool
CsrTransitionModel::loadState(soc::SnapshotReader &in,
                              std::string *error)
{
    try {
        if (in.remaining() < 8 + bitmap.size() * 8 + 4)
            return setError(error, "truncated csr feedback state");
        hit = in.getU64();
        uint64_t covered = 0;
        std::fill(dirtyWords.begin(), dirtyWords.end(), 0);
        for (size_t w = 0; w < bitmap.size(); ++w) {
            const uint64_t word = in.getU64();
            bitmap[w] = word;
            // Republish every covered word after a restore —
            // idempotent under the OR merge.
            if (word)
                dirtyWords[w / 64] |= uint64_t{1} << (w % 64);
            covered += static_cast<uint64_t>(
                __builtin_popcountll(word));
        }
        if (covered != hit)
            return setError(error,
                            "csr feedback hit count disagrees with "
                            "bitmap");
        const uint32_t entries = in.getU32();
        if (in.remaining() < uint64_t{entries} * (2 + 8))
            return setError(error,
                            "csr feedback last-value table exceeds "
                            "buffer");
        lastValue.clear();
        for (uint32_t i = 0; i < entries; ++i) {
            const uint16_t addr = in.getU16();
            lastValue[addr] = in.getU64();
        }
        return true;
    } catch (const soc::SnapshotFormatError &e) {
        return setError(error, e.what());
    }
}

// --- HitCountModel ---------------------------------------------------

HitCountModel::HitCountModel()
    : buckets(uint64_t{1} << indexBits, 0),
      counts(uint64_t{1} << indexBits, 0),
      dirtyEdges((buckets.size() + 63) / 64, 0)
{
}

uint8_t
HitCountModel::bucketBit(uint32_t count)
{
    if (count == 0)
        return 0; // never hit: no bucket
    if (count <= 3)
        return static_cast<uint8_t>(1u << (count - 1)); // 1, 2, 3
    if (count < 8)
        return 1u << 3; // 4-7
    if (count < 16)
        return 1u << 4; // 8-15
    if (count < 32)
        return 1u << 5; // 16-31
    if (count < 128)
        return 1u << 6; // 32-127
    return 1u << 7;     // 128+
}

uint64_t
HitCountModel::sweep(rtl::EventDriver & /*drv*/,
                     const core::CommitInfo *commits, size_t n)
{
    uint64_t newly = 0;
    const uint64_t mask = (uint64_t{1} << indexBits) - 1;
    for (size_t c = 0; c < n; ++c) {
        const core::CommitInfo &ci = commits[c];
        // Instructions are 4-byte aligned; drop the dead low bits so
        // the hash keys carry entropy.
        const uint64_t edge =
            mix64((ci.pc >> 2) ^ mix64(ci.nextPc >> 2)) & mask;
        // Every touch moves the saturating count, and the fleet view
        // is the max over shards — so the edge is dirty whether or
        // not a bucket bit lights.
        dirtyEdges[edge / 64] |= uint64_t{1} << (edge % 64);
        uint32_t &count = counts[edge];
        if (count != UINT32_MAX)
            ++count;
        const uint8_t bit = bucketBit(count);
        if (!(buckets[edge] & bit)) {
            buckets[edge] |= bit;
            ++newly;
            ++hit;
            if (prov)
                prov->record(pointKey(
                    PointSpace::Edge,
                    static_cast<uint32_t>(__builtin_ctz(bit)),
                    static_cast<uint32_t>(edge)));
        }
    }
    return newly;
}

void
HitCountModel::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    std::fill(counts.begin(), counts.end(), 0);
    std::fill(dirtyEdges.begin(), dirtyEdges.end(), 0);
    hit = 0;
}

bool
HitCountModel::compatibleWith(const FeedbackModel &other) const
{
    return dynamic_cast<const HitCountModel *>(&other) != nullptr;
}

bool
HitCountModel::merge(const FeedbackModel &other, std::string *error)
{
    const auto *o = dynamic_cast<const HitCountModel *>(&other);
    if (!o) {
        return setError(error,
                        "edge feedback merge: model kind mismatch");
    }
    uint64_t covered = 0;
    for (size_t e = 0; e < buckets.size(); ++e) {
        const uint8_t nb =
            static_cast<uint8_t>(buckets[e] | o->buckets[e]);
        const uint32_t nc = std::max(counts[e], o->counts[e]);
        if (nb != buckets[e] || nc != counts[e])
            dirtyEdges[e / 64] |= uint64_t{1} << (e % 64);
        buckets[e] = nb;
        counts[e] = nc;
        covered += static_cast<uint64_t>(__builtin_popcount(nb));
    }
    hit = covered;
    return true;
}

// tflint: hot-path
void
HitCountModel::publishDelta(EdgeDelta &out)
{
    out.clear();
    for (size_t dw = 0; dw < dirtyEdges.size(); ++dw) {
        uint64_t bits = dirtyEdges[dw];
        if (!bits)
            continue;
        dirtyEdges[dw] = 0;
        while (bits) {
            const unsigned b =
                static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            const size_t e = dw * 64 + b;
            out.edge.push_back(static_cast<uint32_t>(e));
            out.buckets.push_back(buckets[e]);
            out.counts.push_back(counts[e]);
        }
    }
}

// tflint: hot-path
bool
HitCountModel::mergeDelta(const EdgeDelta &delta, std::string *error)
{
    if (delta.edge.size() != delta.buckets.size() ||
        delta.edge.size() != delta.counts.size()) {
        return setError(error,
                        "edge delta rejected: run length mismatch");
    }
    for (size_t k = 0; k < delta.edge.size(); ++k) {
        if (delta.edge[k] >= buckets.size())
            return setError(error,
                            "edge delta rejected: edge out of range");
        if (k > 0 && delta.edge[k] <= delta.edge[k - 1])
            return setError(error,
                            "edge delta rejected: edges out of order");
    }
    for (size_t k = 0; k < delta.edge.size(); ++k) {
        const uint32_t e = delta.edge[k];
        const uint8_t nb =
            static_cast<uint8_t>(buckets[e] | delta.buckets[k]);
        const uint32_t nc = std::max(counts[e], delta.counts[k]);
        if (nb == buckets[e] && nc == counts[e])
            continue;
        hit += static_cast<uint64_t>(__builtin_popcount(nb) -
                                     __builtin_popcount(buckets[e]));
        buckets[e] = nb;
        counts[e] = nc;
        dirtyEdges[e / 64] |= uint64_t{1} << (e % 64);
    }
    return true;
}

void
HitCountModel::saveState(soc::SnapshotWriter &out) const
{
    out.putU64(hit);
    out.putBytes(buckets.data(), buckets.size());
    for (uint32_t count : counts)
        out.putU32(count);
}

bool
HitCountModel::loadState(soc::SnapshotReader &in, std::string *error)
{
    try {
        if (in.remaining() < 8 + buckets.size() + counts.size() * 4)
            return setError(error, "truncated edge feedback state");
        hit = in.getU64();
        in.getBytes(buckets.data(), buckets.size());
        uint64_t covered = 0;
        std::fill(dirtyEdges.begin(), dirtyEdges.end(), 0);
        for (size_t e = 0; e < buckets.size(); ++e) {
            covered += static_cast<uint64_t>(
                __builtin_popcount(buckets[e]));
            // Republish every hit edge after a restore — idempotent
            // under the bucket OR / count max merge.
            if (buckets[e])
                dirtyEdges[e / 64] |= uint64_t{1} << (e % 64);
        }
        if (covered != hit)
            return setError(error,
                            "edge feedback hit count disagrees with "
                            "buckets");
        for (size_t e = 0; e < counts.size(); ++e) {
            counts[e] = in.getU32();
            if (counts[e])
                dirtyEdges[e / 64] |= uint64_t{1} << (e % 64);
        }
        return true;
    } catch (const soc::SnapshotFormatError &e) {
        return setError(error, e.what());
    }
}

// --- CompositeFeedback -----------------------------------------------

CompositeFeedback::CompositeFeedback(std::vector<Part> parts)
    : members(std::move(parts))
{
    TF_ASSERT(!members.empty(), "composite feedback needs parts");
    for (const Part &p : members)
        TF_ASSERT(p.model != nullptr, "composite part must be set");
}

uint64_t
CompositeFeedback::sweep(rtl::EventDriver &drv,
                         const core::CommitInfo *commits, size_t n)
{
    uint64_t increment = 0;
    for (Part &p : members)
        increment += p.model->sweep(drv, commits, n) * p.weight;
    return increment;
}

uint64_t
CompositeFeedback::newlyHit() const
{
    uint64_t total = 0;
    for (const Part &p : members)
        total += p.model->newlyHit() * p.weight;
    return total;
}

void
CompositeFeedback::reset()
{
    for (Part &p : members)
        p.model->reset();
}

void
CompositeFeedback::bindProvenance(FirstHitLedger *ledger)
{
    for (Part &p : members)
        p.model->bindProvenance(ledger);
}

bool
CompositeFeedback::compatibleWith(const FeedbackModel &other) const
{
    const auto *o = dynamic_cast<const CompositeFeedback *>(&other);
    if (!o || o->members.size() != members.size())
        return false;
    for (size_t i = 0; i < members.size(); ++i) {
        if (members[i].weight != o->members[i].weight ||
            !members[i].model->compatibleWith(*o->members[i].model))
            return false;
    }
    return true;
}

bool
CompositeFeedback::merge(const FeedbackModel &other, std::string *error)
{
    // compatibleWith() checks part count, weights and pairwise model
    // compatibility before any part is mutated, so a rejected merge
    // leaves the whole composite untouched.
    const auto *o = dynamic_cast<const CompositeFeedback *>(&other);
    if (!o || !compatibleWith(*o)) {
        return setError(error,
                        "composite feedback merge: part mismatch");
    }
    for (size_t i = 0; i < members.size(); ++i) {
        if (!members[i].model->merge(*o->members[i].model, error))
            return false;
    }
    return true;
}

void
CompositeFeedback::saveState(soc::SnapshotWriter &out) const
{
    out.putU32(static_cast<uint32_t>(members.size()));
    for (const Part &p : members)
        p.model->saveState(out);
}

bool
CompositeFeedback::loadState(soc::SnapshotReader &in,
                             std::string *error)
{
    try {
        if (in.getU32() != members.size())
            return setError(error,
                            "composite feedback part count mismatch");
        for (Part &p : members) {
            if (!p.model->loadState(in, error))
                return false;
        }
        return true;
    } catch (const soc::SnapshotFormatError &e) {
        return setError(error, e.what());
    }
}

} // namespace turbofuzz::coverage
