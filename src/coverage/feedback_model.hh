/**
 * @file
 * Pluggable coverage feedback layer (paper §IV-D, generalized).
 *
 * The feedback loop — what the engine's sweep stage records, and what
 * increment the corpus scheduler consumes — used to be hardwired to
 * the mux-coverage CoverageMap. FeedbackModel abstracts that signal:
 * a model consumes the DUT commit stream (batched, in the engine's
 * stage-4 sweep) and accumulates "points hit"; the newly-hit count of
 * an iteration is its feedback increment.
 *
 * Three concrete models are provided:
 *
 *  - CoverageMap (coverage_map.hh) — the paper's mux-coverage signal,
 *    adapted onto this interface bit-identically; the default.
 *  - CsrTransitionModel — ProcessorFuzz-style CSR-transition
 *    coverage: every architecturally visible CSR write (and trap
 *    entry) forms a transition (csr, old value, new value) hashed
 *    into a fixed bitmap, rewarding stimuli that move privileged
 *    state through new edges even when mux coverage is saturated.
 *  - HitCountModel — an AFL-style bucketed hit-count edge model over
 *    (pc -> nextPc) control-flow edges: revisiting an edge 1, 2, 3,
 *    4-7, 8-15, ... times lights distinct bucket bits, so loop-depth
 *    changes count as new behaviour.
 *
 * CompositeFeedback combines several models with integer weights into
 * the single increment the corpus sees; weight-0 entries are still
 * swept (their state advances and is reportable) but contribute
 * nothing to the increment — which is how a campaign keeps the mux
 * map as its reported coverage metric while scheduling on another
 * signal.
 *
 * Model state is streaming-only: a sweep over n commits is equivalent
 * to any partition of those commits into consecutive sweeps, which is
 * what makes models batch-size invariant and warm-start safe (the
 * warm prologue replays the captured prefix trace through the same
 * sweep path).
 */

#ifndef TURBOFUZZ_COVERAGE_FEEDBACK_MODEL_HH
#define TURBOFUZZ_COVERAGE_FEEDBACK_MODEL_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "coverage/coverage_delta_fwd.hh"

namespace turbofuzz::rtl
{
class EventDriver;
} // namespace turbofuzz::rtl

namespace turbofuzz::soc
{
class SnapshotWriter;
class SnapshotReader;
} // namespace turbofuzz::soc

namespace turbofuzz::core
{
struct CommitInfo;
} // namespace turbofuzz::core

namespace turbofuzz::coverage
{

class FirstHitLedger;

/** Which feedback signal drives the corpus scheduler. */
enum class CoverageModelKind : uint8_t
{
    Mux,       ///< paper default: mux-coverage CoverageMap only
    Csr,       ///< CSR-transition model (mux still measured)
    HitCount,  ///< bucketed (pc -> nextPc) edge model
    Composite, ///< weighted sum of all three signals
};

/** Display/config name of a model kind ("mux", "csr", ...). */
std::string_view coverageModelName(CoverageModelKind kind);

/**
 * Parse a --coverage-model value ("mux" | "csr" | "edges" |
 * "composite"). @return false when @p text names no model; *kind is
 * untouched then.
 */
bool coverageModelFromString(const std::string &text,
                             CoverageModelKind *kind);

/**
 * Census bitmask over a configuration's auxiliary feedback models
 * (bit 0 = CSR-transition, bit 1 = hit-count edges). Written into
 * campaign and fleet checkpoints so a restore under a different
 * --coverage-model is rejected by kind, not just by count — the one
 * definition both subsystems share.
 */
inline uint8_t
auxModelCensus(bool has_csr, bool has_hit)
{
    return static_cast<uint8_t>((has_csr ? 1 : 0) |
                                (has_hit ? 2 : 0));
}

/** One pluggable coverage-feedback signal. */
class FeedbackModel
{
  public:
    virtual ~FeedbackModel() = default;

    /** Short stable name ("mux", "csr", "edges", "composite"). */
    virtual std::string_view modelName() const = 0;

    /**
     * Batched sweep over @p n DUT commits (the engine's stage 4).
     * @p drv is the shared RTL event driver; models that sample
     * microarchitectural state drive it, stream-only models ignore
     * it. @return number of coverage points newly hit.
     */
    virtual uint64_t sweep(rtl::EventDriver &drv,
                           const core::CommitInfo *commits,
                           size_t n) = 0;

    /** Single-commit convenience form of sweep(). */
    uint64_t
    record(rtl::EventDriver &drv, const core::CommitInfo &ci)
    {
        return sweep(drv, &ci, 1);
    }

    /** Total points hit since construction/reset. */
    virtual uint64_t newlyHit() const = 0;

    /** Clear all accumulated state. */
    virtual void reset() = 0;

    /**
     * Whether @p other accumulates a structurally identical point
     * space (same kind, same shape), i.e. whether merge() is
     * meaningful.
     */
    virtual bool compatibleWith(const FeedbackModel &other) const = 0;

    /**
     * Merge another model's hit points into this one (fleet epoch
     * barrier). Mismatched kinds or shapes are rejected with a typed
     * error — this model is left untouched then.
     * @return false with @p error set (when non-null) on rejection.
     */
    virtual bool merge(const FeedbackModel &other,
                       std::string *error = nullptr) = 0;

    /**
     * Attach a first-hit ledger (provenance.hh): the model records
     * every point its sweep newly hits. Follows the telemetry bundle
     * pattern — the model keeps a plain pointer, null detaches, and
     * the hot path pays one pointer test on the (rare) newly-hit
     * branch only. Strictly observational: binding a ledger must not
     * change any sweep result. Default: provenance unsupported,
     * silently ignored.
     */
    virtual void bindProvenance(FirstHitLedger *ledger) { (void)ledger; }

    /** Checkpoint support: serialize the complete model state. */
    virtual void saveState(soc::SnapshotWriter &out) const = 0;

    /**
     * Restore a saveState() image into a model of identical
     * configuration.
     * @return false with @p error set on malformed input.
     */
    virtual bool loadState(soc::SnapshotReader &in,
                           std::string *error = nullptr) = 0;
};

/**
 * ProcessorFuzz-style CSR-transition coverage. Each CSR-visible event
 * of the commit stream (checker::csrTraceEvent: CSR writes and trap
 * entries) forms a transition (csr, previous value, new value) hashed
 * into a 2^16-point bitmap. The per-CSR previous value is tracked
 * model-locally, so the signal is a pure function of the commit
 * stream.
 */
class CsrTransitionModel : public FeedbackModel
{
  public:
    /** Coverage index width: 2^16 transition points (8 KiB bitmap). */
    static constexpr unsigned indexBits = 16;

    CsrTransitionModel();

    std::string_view modelName() const override { return "csr"; }
    uint64_t sweep(rtl::EventDriver &drv,
                   const core::CommitInfo *commits,
                   size_t n) override;
    uint64_t newlyHit() const override { return hit; }
    void reset() override;
    bool compatibleWith(const FeedbackModel &other) const override;
    bool merge(const FeedbackModel &other,
               std::string *error = nullptr) override;
    void saveState(soc::SnapshotWriter &out) const override;
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr) override;

    /** Distinct CSRs seen so far (diagnostics). */
    size_t trackedCsrs() const { return lastValue.size(); }

    /**
     * Append the bitmap words changed since the previous publish to
     * @p out (strictly ascending indices) and clear the dirty set.
     * Publish-then-mergeDelta is bit-identical to a full merge()
     * of this model into the same destination.
     */
    void publishDelta(SparseWords &out);

    /**
     * OR a published delta into this model's bitmap. Validated in
     * full before any mutation; malformed deltas are rejected with a
     * typed error and the model is left untouched. The per-CSR
     * last-value table stays local, exactly as under merge().
     * @return false with @p error set (when non-null) on rejection.
     */
    bool mergeDelta(const SparseWords &delta,
                    std::string *error = nullptr);

    void bindProvenance(FirstHitLedger *ledger) override
    {
        prov = ledger;
    }

  private:
    std::vector<uint64_t> bitmap;

    /** One bit per bitmap word: changed since last publishDelta().
     *  Never serialized; loadState() marks every nonzero word. */
    std::vector<uint64_t> dirtyWords;

    uint64_t hit = 0;
    FirstHitLedger *prov = nullptr; ///< null: provenance off

    /** Ordered so saveState() is deterministic across runs. */
    std::map<uint16_t, uint64_t> lastValue;
};

/**
 * Bucketed hit-count edge coverage (AFL-style). Every commit
 * contributes the control-flow edge (pc -> nextPc); the edge's
 * saturating hit count is bucketed (1, 2, 3, 4-7, 8-15, 16-31,
 * 32-127, 128+) and each newly lit bucket bit counts as a newly hit
 * point. Purely per-commit — no cross-call state — so sweeps compose
 * trivially.
 */
class HitCountModel : public FeedbackModel
{
  public:
    /** Edge-map width: 2^16 edges. */
    static constexpr unsigned indexBits = 16;

    HitCountModel();

    std::string_view modelName() const override { return "edges"; }
    uint64_t sweep(rtl::EventDriver &drv,
                   const core::CommitInfo *commits,
                   size_t n) override;
    uint64_t newlyHit() const override { return hit; }
    void reset() override;
    bool compatibleWith(const FeedbackModel &other) const override;
    bool merge(const FeedbackModel &other,
               std::string *error = nullptr) override;
    void saveState(soc::SnapshotWriter &out) const override;
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr) override;

    /** Bucket bitmask (8 bucket bits) for a saturating count; 0 for
     *  a never-hit edge. */
    static uint8_t bucketBit(uint32_t count);

    /**
     * Append every edge touched since the previous publish to @p out
     * (ascending edge indices, with current bucket bits and
     * saturating count) and clear the dirty set. Counts are
     * monotone, so publish-then-mergeDelta reproduces the full
     * merge()'s bucket union and count max bit-identically.
     */
    void publishDelta(EdgeDelta &out);

    /**
     * Merge a published edge delta (buckets OR, counts max).
     * Validated in full before any mutation; malformed deltas are
     * rejected with a typed error and the model is left untouched.
     * @return false with @p error set (when non-null) on rejection.
     */
    bool mergeDelta(const EdgeDelta &delta,
                    std::string *error = nullptr);

    void bindProvenance(FirstHitLedger *ledger) override
    {
        prov = ledger;
    }

  private:
    std::vector<uint8_t> buckets; ///< lit bucket bits per edge
    std::vector<uint32_t> counts; ///< saturating hit count per edge

    /** One bit per edge: touched since last publishDelta(). Never
     *  serialized; loadState() marks every hit edge. */
    std::vector<uint64_t> dirtyEdges;

    uint64_t hit = 0;
    FirstHitLedger *prov = nullptr; ///< null: provenance off
};

/**
 * Weighted combination of several models. sweep() sweeps every part
 * (so every model's state advances over the exact same commit
 * stream) and returns sum over parts of newly * weight — the
 * increment the corpus sees. Parts are not owned and must outlive
 * the composite.
 */
class CompositeFeedback : public FeedbackModel
{
  public:
    struct Part
    {
        FeedbackModel *model;
        uint32_t weight;
    };

    explicit CompositeFeedback(std::vector<Part> parts);

    std::string_view modelName() const override { return "composite"; }
    uint64_t sweep(rtl::EventDriver &drv,
                   const core::CommitInfo *commits,
                   size_t n) override;
    uint64_t newlyHit() const override;
    void reset() override;
    bool compatibleWith(const FeedbackModel &other) const override;
    bool merge(const FeedbackModel &other,
               std::string *error = nullptr) override;
    void saveState(soc::SnapshotWriter &out) const override;
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr) override;

    const std::vector<Part> &parts() const { return members; }

    /** Forwarded to every part. */
    void bindProvenance(FirstHitLedger *ledger) override;

  private:
    std::vector<Part> members;
};

} // namespace turbofuzz::coverage

#endif // TURBOFUZZ_COVERAGE_FEEDBACK_MODEL_HH
