#include "coverage/instrumentation.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace turbofuzz::coverage
{

ModuleInstrumentation::ModuleInstrumentation(const rtl::Module *module,
                                             Scheme scheme,
                                             unsigned max_state_size,
                                             uint64_t seed)
    : mod(module), schm(scheme)
{
    TF_ASSERT(max_state_size >= 1 && max_state_size <= 24,
              "maxStateSize %u out of supported range", max_state_size);
    ctrlRegs = mod->controlRegisters();
    TF_ASSERT(!ctrlRegs.empty(),
              "module '%s' has no control registers",
              mod->name().c_str());

    const unsigned total = mod->controlBitWidth();

    if (total <= max_state_size) {
        // Fits without loss: both schemes concatenate sequentially.
        idxBits = total;
        unsigned offset = 0;
        for (uint32_t r : ctrlRegs) {
            places.push_back({r, offset, false});
            offset += mod->registers()[r].width;
        }
        return;
    }

    idxBits = max_state_size;
    if (schm == Scheme::Baseline) {
        // Randomized shifts with zero padding; high bits truncate.
        Rng rng(seed ^ hashLabel(mod->name()));
        for (uint32_t r : ctrlRegs) {
            const unsigned shift =
                static_cast<unsigned>(rng.range(max_state_size));
            places.push_back({r, shift, false});
        }
    } else {
        // Sequential arrangement with modulo rollback (eq. 2).
        unsigned offset = 0;
        for (uint32_t r : ctrlRegs) {
            places.push_back({r, offset, true});
            offset = (offset + mod->registers()[r].width) %
                     max_state_size;
        }
    }
}

uint64_t
ModuleInstrumentation::computeIndex() const
{
    const uint64_t m = mask(idxBits);
    uint64_t index = 0;
    const auto &regs = mod->registers();
    for (const Placement &p : places) {
        uint64_t v = regs[p.regIndex].value &
                     mask(regs[p.regIndex].width);
        if (p.wraps) {
            // Fold values wider than the index, then rotate into
            // place so every bit lands inside the index.
            while (v >> idxBits)
                v = (v & m) ^ (v >> idxBits);
            const unsigned rot = p.offset % idxBits;
            v = ((v << rot) | (v >> (idxBits - rot))) & m;
            index ^= v;
        } else {
            index ^= (v << p.offset) & m;
        }
    }
    return index;
}

DesignInstrumentation::DesignInstrumentation(
    rtl::Module *top, Scheme scheme, unsigned max_state_size,
    uint64_t seed, const std::vector<std::string> &only_modules)
    : schm(scheme), maxBits(max_state_size)
{
    TF_ASSERT(top != nullptr, "null design");
    top->visit([&](rtl::Module &m) {
        if (!only_modules.empty() &&
            std::find(only_modules.begin(), only_modules.end(),
                      m.name()) == only_modules.end()) {
            return;
        }
        if (m.controlRegisters().empty())
            return;
        mods.emplace_back(&m, scheme, max_state_size, seed);
    });
}

uint64_t
DesignInstrumentation::totalInstrumentedPoints() const
{
    uint64_t total = 0;
    for (const auto &m : mods)
        total += m.instrumentedPoints();
    return total;
}

void
DesignInstrumentation::setWeightShift(const std::string &module_name,
                                      int shift)
{
    for (auto &m : mods) {
        if (m.module().name() == module_name) {
            m.weightShift = shift;
            return;
        }
    }
    fatal("no instrumented module named '%s'", module_name.c_str());
}

} // namespace turbofuzz::coverage
