/**
 * @file
 * Register-coverage instrumentation (paper §VI).
 *
 * Both instrumentation schemes are implemented over the structural
 * model's control registers (found by the mux trace-back):
 *
 *  - Scheme::Baseline — the DifuzzRTL-style approach: each control
 *    register is shifted by a random amount within the index width,
 *    zeros fill the empty positions, and the shifted values are XORed
 *    together. Bits shifted past the index width are lost, and index
 *    positions no register covers are permanently zero — the source
 *    of the unreachable coverage points shown in Fig. 6.
 *
 *  - Scheme::Optimized — TurboFuzz's replacement: control registers
 *    are packed sequentially; when the running offset would exceed
 *    maxStateSize, it rolls back with
 *        new_offset = (last_offset + W_ctrl) % maxStateSize   (eq. 2)
 *    so every index bit is covered and no empty states exist.
 *
 * When a module's total control width fits inside maxStateSize, both
 * schemes degenerate to plain concatenation (no information loss), as
 * in DifuzzRTL.
 *
 * The per-module weight shift implements the paper's feedback-bias
 * fix: the fuzzing system consumes (covered << weightShift) rather
 * than raw counts, which de-emphasizes mux-heavy arithmetic units.
 */

#ifndef TURBOFUZZ_COVERAGE_INSTRUMENTATION_HH
#define TURBOFUZZ_COVERAGE_INSTRUMENTATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/module.hh"

namespace turbofuzz::coverage
{

/** Which §VI instrumentation algorithm to apply. */
enum class Scheme { Baseline, Optimized };

/** Placement of one control register inside the coverage index. */
struct Placement
{
    uint32_t regIndex; ///< index into the module's register list
    unsigned offset;   ///< bit offset within the coverage index
    bool wraps;        ///< true: bits wrap modulo indexBits (eq. 2)
};

/** Instrumentation of a single module. */
class ModuleInstrumentation
{
  public:
    /**
     * @param module          Module to instrument (not owned).
     * @param scheme          Baseline or Optimized.
     * @param max_state_size  Maximum index width in bits.
     * @param seed            Randomization seed (baseline shifts).
     */
    ModuleInstrumentation(const rtl::Module *module, Scheme scheme,
                          unsigned max_state_size, uint64_t seed);

    /** Coverage index from the module's current register values. */
    uint64_t computeIndex() const;

    /** Width of the index actually used (<= maxStateSize). */
    unsigned indexBits() const { return idxBits; }

    /** Number of allocated coverage points (2^indexBits). */
    uint64_t instrumentedPoints() const { return uint64_t{1} << idxBits; }

    const rtl::Module &module() const { return *mod; }
    const std::vector<Placement> &placements() const { return places; }
    Scheme scheme() const { return schm; }

    /** Per-module feedback weight shift (positive strengthens). */
    int weightShift = 0;

  private:
    const rtl::Module *mod;
    Scheme schm;
    unsigned idxBits;
    std::vector<Placement> places;
    std::vector<uint32_t> ctrlRegs;
};

/** Instrumentation of a whole design (one entry per module). */
class DesignInstrumentation
{
  public:
    /**
     * Instrument every module in the tree that has at least one
     * control register.
     *
     * @param top             Root of the module tree (not owned).
     * @param scheme          Baseline or Optimized.
     * @param max_state_size  Index width cap (13/14/15 in the paper).
     * @param seed            Randomization seed for baseline shifts.
     * @param only_modules    If non-empty, restrict instrumentation to
     *                        these module names (the paper's targeted
     *                        monitoring option).
     */
    DesignInstrumentation(rtl::Module *top, Scheme scheme,
                          unsigned max_state_size, uint64_t seed,
                          const std::vector<std::string> &only_modules =
                              {});

    std::vector<ModuleInstrumentation> &modules() { return mods; }
    const std::vector<ModuleInstrumentation> &modules() const
    {
        return mods;
    }

    /** Sum of instrumented points over all modules. */
    uint64_t totalInstrumentedPoints() const;

    /** Set the feedback weight shift for a module by name. */
    void setWeightShift(const std::string &module_name, int shift);

    unsigned maxStateSize() const { return maxBits; }
    Scheme scheme() const { return schm; }

  private:
    Scheme schm;
    unsigned maxBits;
    std::vector<ModuleInstrumentation> mods;
};

} // namespace turbofuzz::coverage

#endif // TURBOFUZZ_COVERAGE_INSTRUMENTATION_HH
