#include "coverage/provenance.hh"

#include <algorithm>

namespace turbofuzz::coverage
{

namespace
{

void
setError(std::string *error, const char *msg)
{
    if (error)
        *error = msg;
}

} // namespace

const char *
pointSpaceName(PointSpace space)
{
    switch (space) {
      case PointSpace::Mux:
        return "mux";
      case PointSpace::Csr:
        return "csr";
      case PointSpace::Edge:
        return "edges";
    }
    return "unknown";
}

const char *
provenanceOpName(uint8_t op)
{
    switch (static_cast<ProvenanceOp>(op)) {
      case ProvenanceOp::Direct:
        return "direct";
      case ProvenanceOp::Generate:
        return "generate";
      case ProvenanceOp::Delete:
        return "delete";
      case ProvenanceOp::Retain:
        return "retain";
    }
    return "unknown";
}

bool
firstHitEarlier(const FirstHit &a, const FirstHit &b)
{
    // wallNs is deliberately absent: it does not replay across
    // checkpoint/resume and would make merged attribution depend on
    // host scheduling.
    if (a.simTimeSec != b.simTimeSec)
        return a.simTimeSec < b.simTimeSec;
    if (a.shard != b.shard)
        return a.shard < b.shard;
    return a.iteration < b.iteration;
}

void
FirstHitLedger::setContext(uint64_t iteration, uint64_t seed_id,
                           uint8_t op, double sim_time_sec,
                           uint64_t wall_ns)
{
    ctx.iteration = iteration;
    ctx.seedId = seed_id;
    ctx.op = op;
    ctx.simTimeSec = sim_time_sec;
    ctx.wallNs = wall_ns;
}

const FirstHit *
FirstHitLedger::find(uint64_t key) const
{
    const auto it = map.find(key);
    return it == map.end() ? nullptr : &it->second;
}

double
FirstHitLedger::lastHitSimSec() const
{
    double last = 0.0;
    for (const auto &[key, hit] : map) {
        (void)key;
        if (hit.simTimeSec > last)
            last = hit.simTimeSec;
    }
    return last;
}

std::vector<std::pair<uint64_t, FirstHit>>
FirstHitLedger::sortedEntries() const
{
    std::vector<std::pair<uint64_t, FirstHit>> out(map.begin(),
                                                   map.end());
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return out;
}

void
FirstHitLedger::merge(const FirstHitLedger &other)
{
    // tflint: allow(determinism) -- min-wins merge is per-key
    // commutative and associative, so the unordered iteration order
    // of other.map cannot affect the merged result (pinned by
    // FirstHitLedger.MergeAssociativeUnderShardReordering).
    for (const auto &[key, hit] : other.map) {
        const auto [it, inserted] = map.emplace(key, hit);
        if (inserted)
            freshKeys.push_back(key);
        else if (firstHitEarlier(hit, it->second))
            it->second = hit;
    }
}

void
FirstHitLedger::drainFreshHits(
    std::vector<std::pair<uint64_t, FirstHit>> &out)
{
    out.clear();
    std::sort(freshKeys.begin(), freshKeys.end());
    for (uint64_t key : freshKeys) {
        const auto it = map.find(key);
        if (it != map.end())
            out.emplace_back(key, it->second);
    }
    freshKeys.clear();
}

void
FirstHitLedger::mergeEntries(
    const std::vector<std::pair<uint64_t, FirstHit>> &entries)
{
    for (const auto &[key, hit] : entries) {
        const auto [it, inserted] = map.emplace(key, hit);
        if (inserted)
            freshKeys.push_back(key);
        else if (firstHitEarlier(hit, it->second))
            it->second = hit;
    }
}

void
FirstHitLedger::saveState(soc::SnapshotWriter &out) const
{
    out.putU64(map.size());
    for (const auto &[key, hit] : sortedEntries()) {
        out.putU64(key);
        out.putF64(hit.simTimeSec);
        out.putU64(hit.iteration);
        out.putU32(hit.shard);
        out.putU64(hit.seedId);
        out.putU8(hit.op);
        out.putU64(hit.wallNs);
    }
}

bool
FirstHitLedger::loadState(soc::SnapshotReader &in, std::string *error)
try {
    map.clear();
    freshKeys.clear();
    const uint64_t count = in.getU64();
    // Each entry is 8+8+8+4+8+1+8 = 45 bytes; reject counts the
    // remaining buffer cannot possibly hold.
    if (count > in.remaining() / 45 + 1) {
        setError(error, "provenance ledger: entry count exceeds "
                        "section size");
        return false;
    }
    map.reserve(count);
    uint64_t prev_key = 0;
    for (uint64_t i = 0; i < count; ++i) {
        const uint64_t key = in.getU64();
        if (i > 0 && key <= prev_key) {
            map.clear();
            freshKeys.clear();
            setError(error, "provenance ledger: keys out of order");
            return false;
        }
        prev_key = key;
        FirstHit hit;
        hit.simTimeSec = in.getF64();
        hit.iteration = in.getU64();
        hit.shard = in.getU32();
        hit.seedId = in.getU64();
        hit.op = in.getU8();
        hit.wallNs = in.getU64();
        if (hit.op > static_cast<uint8_t>(ProvenanceOp::Retain)) {
            map.clear();
            freshKeys.clear();
            setError(error, "provenance ledger: unknown operator");
            return false;
        }
        map.emplace(key, hit);
        // A restored ledger republishes everything at its next
        // drain — min-wins makes the replay idempotent globally.
        freshKeys.push_back(key);
    }
    return true;
} catch (const soc::SnapshotFormatError &e) {
    map.clear();
    freshKeys.clear();
    setError(error, e.what());
    return false;
}

} // namespace turbofuzz::coverage
