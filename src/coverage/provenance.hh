/**
 * @file
 * Coverage provenance: the first-hit ledger.
 *
 * Answers *why* coverage grows, not just how much: for every coverage
 * point any FeedbackModel admits through newlyHit(), the ledger
 * records which iteration, shard, parent seed and mutation operator
 * reached it first, at what simulated time. Points are identified by
 * a 64-bit key spanning the three coverage spaces (mux register
 * coverage, CSR transitions, edge hit-count buckets) so one ledger
 * covers a composite model.
 *
 * Hot-path safety follows the telemetry bundle pattern
 * (telemetry/instruments.hh): the models hold a plain
 * FirstHitLedger pointer, null when provenance is off, and call
 * record() only on the newly-hit branch — the rare branch by
 * construction once a campaign warms up. The attribution context
 * (iteration, seed, operator, time) is stamped once per iteration by
 * the campaign, so record() is a map insert of a pre-built value.
 *
 * Ledgers merge at fleet barriers with min-wins semantics: the
 * globally earliest hit keeps the attribution. "Earliest" compares
 * (simTimeSec, shard, iteration) — all three replay deterministically
 * across checkpoint/resume, so merged attribution is independent of
 * shard visit order and of wall-clock jitter. wallNs rides along for
 * humans but never participates in the comparison.
 */

#ifndef TURBOFUZZ_COVERAGE_PROVENANCE_HH
#define TURBOFUZZ_COVERAGE_PROVENANCE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "soc/snapshot.hh"

namespace turbofuzz::coverage
{

/** Which coverage space a ledger key lives in. */
enum class PointSpace : uint8_t {
    Mux = 0,  ///< register coverage: module index + coverage index
    Csr = 1,  ///< CSR-transition bitmap index
    Edge = 2, ///< hit-count bucket: edge index + bucket bit
};

const char *pointSpaceName(PointSpace space);

/** Pack (space, module, index) into one ledger key. */
constexpr uint64_t
pointKey(PointSpace space, uint32_t module, uint32_t index)
{
    return (static_cast<uint64_t>(space) << 56) |
           (static_cast<uint64_t>(module & 0xFFFFFFu) << 32) | index;
}

constexpr PointSpace
pointSpace(uint64_t key)
{
    return static_cast<PointSpace>(key >> 56);
}

constexpr uint32_t
pointModule(uint64_t key)
{
    return static_cast<uint32_t>(key >> 32) & 0xFFFFFFu;
}

constexpr uint32_t
pointIndex(uint64_t key)
{
    return static_cast<uint32_t>(key);
}

/** Mutation-operator attribution for an iteration (the dominant
 *  MutOp of the mutation that produced it, or Direct for pure
 *  generation). Values are stable wire format — append only. */
enum class ProvenanceOp : uint8_t {
    Direct = 0,   ///< no parent seed: direct generation
    Generate = 1, ///< MutOp::Generate dominated
    Delete = 2,   ///< MutOp::Delete dominated
    Retain = 3,   ///< MutOp::Retain dominated
};

const char *provenanceOpName(uint8_t op);

/** Attribution of one first hit. */
struct FirstHit
{
    double simTimeSec = 0.0; ///< shard sim clock at iteration start
    uint64_t iteration = 0;  ///< shard-local iteration index
    uint32_t shard = 0;      ///< fleet shard index
    uint64_t seedId = 0;     ///< parent seed id (0 = direct)
    uint8_t op = 0;          ///< ProvenanceOp value
    uint64_t wallNs = 0;     ///< telemetry::nowNs(); informational
};

/** True when @p a is strictly earlier than @p b under the
 *  deterministic (simTimeSec, shard, iteration) order. */
bool firstHitEarlier(const FirstHit &a, const FirstHit &b);

/**
 * Point -> first-hit attribution map. Purely observational: nothing
 * in the fuzzing loop reads it back.
 */
class FirstHitLedger
{
  public:
    /** Stamp the attribution used by subsequent record() calls. */
    void setContext(uint64_t iteration, uint64_t seed_id, uint8_t op,
                    double sim_time_sec, uint64_t wall_ns);

    /** Shard index stamped into every attribution. */
    void setShard(uint32_t shard) { ctx.shard = shard; }

    /**
     * Record @p key as first hit under the current context. Called
     * from model mark sites on the newly-hit branch only; keeps the
     * earliest attribution if the key was already present (the warm
     * prologue can re-mark points within one campaign).
     */
    void
    record(uint64_t key)
    {
        if (map.emplace(key, ctx).second)
            freshKeys.push_back(key);
    }

    size_t size() const { return map.size(); }
    bool empty() const { return map.empty(); }

    /**
     * Key-ordered snapshot of the ledger — deterministic iteration
     * for reports and tests. The backing store is a hash map (the
     * record() hot path is one O(1) insert per first hit); sorting
     * is paid only here and in saveState, both off the hot path.
     */
    std::vector<std::pair<uint64_t, FirstHit>> sortedEntries() const;

    /** Earliest attribution for @p key, or nullptr. */
    const FirstHit *find(uint64_t key) const;

    /** Largest simTimeSec over all entries (0 when empty) — the
     *  time-to-last-new-coverage reading. */
    double lastHitSimSec() const;

    /**
     * Min-wins merge: for keys present in both, keep the earlier
     * attribution under firstHitEarlier(). Associative and
     * commutative, so fleet barriers may merge shard ledgers in any
     * order and reach the same global ledger.
     */
    void merge(const FirstHitLedger &other);

    /**
     * Move the entries recorded (or restored) since the previous
     * drain into @p out, key-ascending — the ledger's delta
     * publication. Epoch-by-epoch draining followed by
     * mergeEntries() into a global ledger reproduces the cumulative
     * merge() exactly: record() keeps the earliest attribution per
     * key, and min-wins resolves cross-shard collisions.
     */
    void
    drainFreshHits(std::vector<std::pair<uint64_t, FirstHit>> &out);

    /** Min-wins merge of a drained (key-ascending) entry run. */
    void mergeEntries(
        const std::vector<std::pair<uint64_t, FirstHit>> &entries);

    void
    clear()
    {
        map.clear();
        freshKeys.clear();
    }

    void saveState(soc::SnapshotWriter &out) const;

    /** Replace contents from @p in.
     *  @return false with @p error set on malformed input; the
     *  ledger is left empty in that case. */
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr);

  private:
    std::unordered_map<uint64_t, FirstHit> map;

    /** Keys first recorded since the last drainFreshHits() — the
     *  pending delta publication. Never serialized; loadState()
     *  marks every restored key fresh (idempotent at the merge). */
    std::vector<uint64_t> freshKeys;

    FirstHit ctx;
};

} // namespace turbofuzz::coverage

#endif // TURBOFUZZ_COVERAGE_PROVENANCE_HH
