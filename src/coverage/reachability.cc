#include "coverage/reachability.hh"

#include <set>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace turbofuzz::coverage
{

namespace
{

/** Map one register value through its placement into the index. */
uint64_t
placeValue(uint64_t v, const Placement &p, unsigned idx_bits)
{
    const uint64_t m = mask(idx_bits);
    if (p.wraps) {
        while (v >> idx_bits)
            v = (v & m) ^ (v >> idx_bits);
        const unsigned rot = p.offset % idx_bits;
        return ((v << rot) | (v >> (idx_bits - rot))) & m;
    }
    return (v << p.offset) & m;
}

} // namespace

ModuleReachability
analyzeModule(const ModuleInstrumentation &mi,
              uint64_t enumeration_budget)
{
    const rtl::Module &mod = mi.module();
    const unsigned idx_bits = mi.indexBits();

    // 1. Span of the unconstrained (full-domain) registers: every bit
    //    of such a register maps to a single index position, so the
    //    span is exactly the set of covered positions.
    uint64_t covered_positions = 0;
    for (const Placement &p : mi.placements()) {
        const rtl::Register &reg = mod.registers()[p.regIndex];
        if (!reg.domain.empty())
            continue;
        for (unsigned j = 0; j < reg.width; ++j) {
            const uint64_t unit =
                placeValue(uint64_t{1} << j, p, idx_bits);
            covered_positions |= unit;
        }
    }
    const unsigned rank = static_cast<unsigned>(
        __builtin_popcountll(covered_positions));

    // 2. Enumerate constrained registers' domain product; reduce each
    //    combination modulo the span (mask off covered positions) and
    //    count distinct cosets.
    std::vector<const Placement *> constrained;
    uint64_t product = 1;
    for (const Placement &p : mi.placements()) {
        const rtl::Register &reg = mod.registers()[p.regIndex];
        if (reg.domain.empty())
            continue;
        constrained.push_back(&p);
        product *= reg.domain.size();
        if (product > enumeration_budget)
            break;
    }

    bool exact = true;
    std::set<uint64_t> cosets;
    if (constrained.empty()) {
        cosets.insert(0);
    } else if (product <= enumeration_budget) {
        // Exact enumeration via mixed-radix counting.
        std::vector<size_t> idx(constrained.size(), 0);
        for (;;) {
            uint64_t point = 0;
            for (size_t i = 0; i < constrained.size(); ++i) {
                const rtl::Register &reg =
                    mod.registers()[constrained[i]->regIndex];
                point ^= placeValue(reg.domain[idx[i]],
                                    *constrained[i], idx_bits);
            }
            cosets.insert(point & ~covered_positions);
            // Increment mixed-radix counter.
            size_t d = 0;
            while (d < idx.size()) {
                const rtl::Register &reg =
                    mod.registers()[constrained[d]->regIndex];
                if (++idx[d] < reg.domain.size())
                    break;
                idx[d] = 0;
                ++d;
            }
            if (d == idx.size())
                break;
        }
    } else {
        // Monte-Carlo lower bound on the coset count.
        exact = false;
        Rng rng(0x5eedc0de ^ hashLabel(mod.name()));
        for (uint64_t s = 0; s < enumeration_budget; ++s) {
            uint64_t point = 0;
            for (const Placement *p : constrained) {
                const rtl::Register &reg =
                    mod.registers()[p->regIndex];
                point ^= placeValue(
                    reg.domain[rng.range(reg.domain.size())], *p,
                    idx_bits);
            }
            cosets.insert(point & ~covered_positions);
        }
    }

    ModuleReachability result;
    result.moduleName = mod.name();
    result.achievable =
        static_cast<uint64_t>(cosets.size()) * (uint64_t{1} << rank);
    // The optimized tool performs this same analysis at
    // instrumentation time and allocates exactly the reachable set
    // ("eliminating potential empty states", §VI); the baseline
    // allocates the full 2^indexBits space.
    result.instrumented = (mi.scheme() == Scheme::Optimized)
                              ? result.achievable
                              : mi.instrumentedPoints();
    result.exact = exact;
    TF_ASSERT(result.achievable <= result.instrumented,
              "module '%s': achievable %llu exceeds instrumented %llu",
              mod.name().c_str(),
              static_cast<unsigned long long>(result.achievable),
              static_cast<unsigned long long>(result.instrumented));
    return result;
}

std::vector<ModuleReachability>
analyzeDesign(const DesignInstrumentation &di,
              uint64_t enumeration_budget)
{
    std::vector<ModuleReachability> out;
    out.reserve(di.modules().size());
    for (const auto &mi : di.modules())
        out.push_back(analyzeModule(mi, enumeration_budget));
    return out;
}

DesignReachability
totals(const std::vector<ModuleReachability> &mods)
{
    DesignReachability t;
    for (const auto &m : mods) {
        t.instrumented += m.instrumented;
        t.achievable += m.achievable;
    }
    return t;
}

} // namespace turbofuzz::coverage
