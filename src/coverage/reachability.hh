/**
 * @file
 * Coverage-point reachability analysis (Fig. 6 reproduction).
 *
 * Both instrumentation maps are linear over GF(2) in the register
 * bits, which permits an exact achievability count:
 *
 *  - Registers with unconstrained domains contribute unit-vector
 *    columns; their joint image is the span of the index positions
 *    they cover (rank r => 2^r points).
 *  - Registers with constrained domains (one-hot FSMs, cause codes)
 *    are enumerated: each combination contributes an affine offset,
 *    reduced modulo the unconstrained span; the number of distinct
 *    cosets D multiplies the span size.
 *
 *  achievable = D * 2^r     (exact when the domain product fits the
 *                            enumeration budget; a Monte-Carlo lower
 *                            bound otherwise)
 *
 * The baseline scheme leaves index positions uncovered (zero padding)
 * and loses register bits to truncation, so achievable < instrumented;
 * the optimized sequential arrangement covers every position, making
 * every allocated point reachable — the paper's Fig. 6 claim.
 */

#ifndef TURBOFUZZ_COVERAGE_REACHABILITY_HH
#define TURBOFUZZ_COVERAGE_REACHABILITY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coverage/instrumentation.hh"

namespace turbofuzz::coverage
{

/** Reachability result for one module. */
struct ModuleReachability
{
    std::string moduleName;
    uint64_t instrumented; ///< allocated coverage points
    uint64_t achievable;   ///< points some register state can produce
    bool exact;            ///< false when Monte-Carlo estimated

    double
    achievableFraction() const
    {
        return instrumented
                   ? static_cast<double>(achievable) /
                         static_cast<double>(instrumented)
                   : 0.0;
    }
};

/** Analyze a single instrumented module. */
ModuleReachability analyzeModule(const ModuleInstrumentation &mi,
                                 uint64_t enumeration_budget = 1u
                                                               << 20);

/** Analyze every module of a design. */
std::vector<ModuleReachability>
analyzeDesign(const DesignInstrumentation &di,
              uint64_t enumeration_budget = 1u << 20);

/** Sum of instrumented/achievable over per-module results. */
struct DesignReachability
{
    uint64_t instrumented = 0;
    uint64_t achievable = 0;

    double
    achievableFraction() const
    {
        return instrumented
                   ? static_cast<double>(achievable) /
                         static_cast<double>(instrumented)
                   : 0.0;
    }
};

DesignReachability
totals(const std::vector<ModuleReachability> &mods);

} // namespace turbofuzz::coverage

#endif // TURBOFUZZ_COVERAGE_REACHABILITY_HH
