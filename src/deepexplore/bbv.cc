#include "deepexplore/bbv.hh"

#include "common/logging.hh"

namespace turbofuzz::deepexplore
{

BenchmarkProfile
profileBenchmark(const Program &program,
                 const fuzzer::MemoryLayout &layout,
                 uint64_t interval_len, uint64_t max_instructions)
{
    TF_ASSERT(interval_len >= 16, "interval too short");

    soc::Memory mem;
    program.load(mem);
    // Data segment starts zero-filled (deterministic profile).

    core::Iss::Options opts;
    opts.resetPc = program.entry();
    core::Iss hart(&mem, opts);
    hart.addAccessRange(layout.instrBase, layout.instrSize);
    hart.addAccessRange(layout.dataBase, layout.dataSize);

    BenchmarkProfile profile;
    IntervalProfile current;
    current.startState = hart.state();
    current.startPc = hart.state().pc;

    bool in_block_start = true;
    uint64_t block_start_pc = hart.state().pc;

    while (profile.totalInstructions < max_instructions) {
        const core::CommitInfo ci = hart.step();
        if (ci.trapped) {
            warn("benchmark '%s' trapped at pc 0x%llx (cause %llu)",
                 program.name.c_str(),
                 static_cast<unsigned long long>(ci.pc),
                 static_cast<unsigned long long>(ci.trapCause));
            break;
        }

        if (in_block_start) {
            block_start_pc = ci.pc;
            in_block_start = false;
        }
        ++profile.totalInstructions;
        ++current.instrCount;

        const bool block_ends =
            ci.branchTaken ||
            (ci.desc != nullptr && ci.desc->isControlFlow());
        if (block_ends) {
            ++current.bbv[block_start_pc];
            in_block_start = true;
        }

        if (current.instrCount >= interval_len) {
            if (!in_block_start)
                ++current.bbv[block_start_pc];
            profile.intervals.push_back(std::move(current));
            current = IntervalProfile{};
            current.startState = hart.state();
            current.startPc = hart.state().pc;
            in_block_start = true;
        }

        if (hart.state().pc >= program.end()) {
            profile.completed = true;
            break;
        }
    }

    if (current.instrCount > 0) {
        if (!in_block_start)
            ++current.bbv[block_start_pc];
        profile.intervals.push_back(std::move(current));
    }
    return profile;
}

} // namespace turbofuzz::deepexplore
