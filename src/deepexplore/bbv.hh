/**
 * @file
 * Basic Block Vector profiling (the SimPoint front end).
 *
 * Execution is divided into fixed-length intervals; each interval is
 * summarized by the execution frequency of every basic block it
 * touched (keyed by block start PC), giving an architecture-
 * independent behaviour profile (§V / SimPoint [33]).
 */

#ifndef TURBOFUZZ_DEEPEXPLORE_BBV_HH
#define TURBOFUZZ_DEEPEXPLORE_BBV_HH

#include <cstdint>
#include <map>
#include <vector>

#include "core/arch_state.hh"
#include "core/iss.hh"
#include "deepexplore/program_builder.hh"
#include "fuzzer/context.hh"

namespace turbofuzz::deepexplore
{

/** Frequency vector of one interval: block start PC -> exec count. */
using Bbv = std::map<uint64_t, uint32_t>;

/** Profile of one interval. */
struct IntervalProfile
{
    Bbv bbv;
    core::ArchState startState; ///< context at interval entry
    uint64_t startPc = 0;
    uint64_t instrCount = 0;    ///< dynamic instructions (== length,
                                ///< except the final partial interval)
};

/** Result of profiling one full benchmark run. */
struct BenchmarkProfile
{
    std::vector<IntervalProfile> intervals;
    uint64_t totalInstructions = 0;
    bool completed = false; ///< reached program end before the cap
};

/**
 * Execute @p program to completion on a fresh hart, recording one
 * IntervalProfile per @p interval_len committed instructions.
 *
 * @param max_instructions  Safety cap on dynamic length.
 */
BenchmarkProfile
profileBenchmark(const Program &program,
                 const fuzzer::MemoryLayout &layout,
                 uint64_t interval_len,
                 uint64_t max_instructions = 4'000'000);

} // namespace turbofuzz::deepexplore

#endif // TURBOFUZZ_DEEPEXPLORE_BBV_HH
