#include "deepexplore/benchmarks.hh"

#include "isa/csr.hh"

namespace turbofuzz::deepexplore
{

using isa::Opcode;
using isa::Operands;

namespace
{

/** Register conventions inside the kernels. */
constexpr unsigned rBase = 31;  ///< data segment base
constexpr unsigned rOuter = 5;  ///< outer loop counter
constexpr unsigned rInner = 6;  ///< inner loop counter
constexpr unsigned rAcc = 7;    ///< accumulator
constexpr unsigned rPtr = 8;    ///< roving pointer
constexpr unsigned rTmp = 9;
constexpr unsigned rTmp2 = 10;
constexpr unsigned rLimit = 11;

Operands
rOps(unsigned rd, unsigned rs1, unsigned rs2)
{
    Operands o;
    o.rd = static_cast<uint8_t>(rd);
    o.rs1 = static_cast<uint8_t>(rs1);
    o.rs2 = static_cast<uint8_t>(rs2);
    return o;
}

Operands
iOps(unsigned rd, unsigned rs1, int64_t imm)
{
    Operands o;
    o.rd = static_cast<uint8_t>(rd);
    o.rs1 = static_cast<uint8_t>(rs1);
    o.imm = imm;
    return o;
}

Operands
memOps(unsigned reg, unsigned addr_reg, int64_t offset)
{
    Operands o;
    o.rd = static_cast<uint8_t>(reg);
    o.rs2 = static_cast<uint8_t>(reg);
    o.rs1 = static_cast<uint8_t>(addr_reg);
    o.imm = offset;
    return o;
}

/** Shared prologue: data base pointer, counters. */
void
prologue(ProgramBuilder &b, const fuzzer::MemoryLayout &layout,
         uint32_t outer)
{
    b.loadImm(rBase, layout.dataBase);
    b.loadImm(rOuter, outer);
    b.loadImm(rAcc, 0x12345);
}

} // namespace

Program
buildCoremarkLike(const fuzzer::MemoryLayout &layout,
                  const BenchmarkParams &params)
{
    ProgramBuilder b(layout.instrBase);
    prologue(b, layout, params.outerIterations);

    b.label("outer");

    // Phase 1: linked-list style pointer chase over the data segment
    // (loads with data-dependent addresses).
    b.loadImm(rInner, params.innerIterations);
    b.addi(rPtr, rBase, 0);
    b.label("list_loop");
    b.emit(Opcode::Lw, iOps(rTmp, rPtr, 0));
    b.emit(Opcode::Andi, iOps(rTmp, rTmp, 0x7F8)); // chase within seg
    b.emit(Opcode::Add, rOps(rPtr, rBase, rTmp));
    b.emit(Opcode::Add, rOps(rAcc, rAcc, rTmp));
    b.addi(rInner, rInner, -1);
    b.branch(Opcode::Bne, rInner, 0, "list_loop");

    // Phase 2: matrix-ish multiply-accumulate (stride-8 loads, mul).
    b.loadImm(rInner, params.innerIterations);
    b.addi(rPtr, rBase, 0);
    b.label("mat_loop");
    b.emit(Opcode::Ld, iOps(rTmp, rPtr, 0));
    b.emit(Opcode::Ld, iOps(rTmp2, rPtr, 8));
    b.emit(Opcode::Mul, rOps(rTmp, rTmp, rTmp2));
    b.emit(Opcode::Add, rOps(rAcc, rAcc, rTmp));
    b.addi(rPtr, rPtr, 16);
    b.addi(rInner, rInner, -1);
    b.branch(Opcode::Bne, rInner, 0, "mat_loop");

    // Phase 3: CRC/state-machine bit twiddling with branches.
    b.loadImm(rInner, params.innerIterations * 2);
    b.label("crc_loop");
    b.emit(Opcode::Andi, iOps(rTmp, rAcc, 1));
    b.branch(Opcode::Beq, rTmp, 0, "crc_even");
    b.emit(Opcode::Srli, iOps(rAcc, rAcc, 1));
    b.loadImm(rTmp2, 0xEDB88320u);
    b.emit(Opcode::Xor, rOps(rAcc, rAcc, rTmp2));
    b.jump(0, "crc_next");
    b.label("crc_even");
    b.emit(Opcode::Srli, iOps(rAcc, rAcc, 1));
    b.label("crc_next");
    b.addi(rInner, rInner, -1);
    b.branch(Opcode::Bne, rInner, 0, "crc_loop");

    // Store the phase result; next outer round.
    b.emit(Opcode::Sd, memOps(rAcc, rBase, 0x100));
    b.addi(rOuter, rOuter, -1);
    b.branch(Opcode::Bne, rOuter, 0, "outer");
    return b.finish("coremark-like");
}

Program
buildDhrystoneLike(const fuzzer::MemoryLayout &layout,
                   const BenchmarkParams &params)
{
    ProgramBuilder b(layout.instrBase);
    prologue(b, layout, params.outerIterations);
    b.jump(0, "main");

    // Proc1: copy a record (8 double-words) between buffers.
    b.label("proc1");
    for (int i = 0; i < 8; ++i) {
        b.emit(Opcode::Ld, iOps(rTmp, rPtr, 8 * i));
        b.emit(Opcode::Sd, memOps(rTmp, rPtr, 256 + 8 * i));
    }
    Operands ret;
    ret.rd = 0;
    ret.rs1 = 1;
    ret.imm = 0;
    b.emit(Opcode::Jalr, ret);

    // Proc2: string compare (byte loads until mismatch / limit).
    b.label("proc2");
    b.loadImm(rInner, 16);
    b.addi(rTmp2, rPtr, 64);
    b.label("strcmp_loop");
    b.emit(Opcode::Lbu, iOps(rTmp, rPtr, 0));
    b.emit(Opcode::Lbu, iOps(rLimit, rTmp2, 0));
    b.branch(Opcode::Bne, rTmp, rLimit, "strcmp_done");
    b.addi(rPtr, rPtr, 1);
    b.addi(rTmp2, rTmp2, 1);
    b.addi(rInner, rInner, -1);
    b.branch(Opcode::Bne, rInner, 0, "strcmp_loop");
    b.label("strcmp_done");
    b.emit(Opcode::Jalr, ret);

    // Main loop: call Proc1/Proc2 alternately with record churn.
    b.label("main");
    b.addi(rPtr, rBase, 0);
    b.jump(1, "proc1"); // jal ra, proc1
    b.addi(rPtr, rBase, 0);
    b.jump(1, "proc2");
    // Record update: conditional field rewrite.
    b.emit(Opcode::Ld, iOps(rTmp, rBase, 0x80));
    b.emit(Opcode::Andi, iOps(rTmp2, rTmp, 0xFF));
    b.branch(Opcode::Beq, rTmp2, 0, "skip_store");
    b.emit(Opcode::Sd, memOps(rTmp, rBase, 0x88));
    b.label("skip_store");
    b.addi(rOuter, rOuter, -1);
    b.branch(Opcode::Bne, rOuter, 0, "main");
    return b.finish("dhrystone-like");
}

Program
buildMicrobenchLike(const fuzzer::MemoryLayout &layout,
                    const BenchmarkParams &params)
{
    ProgramBuilder b(layout.instrBase);
    prologue(b, layout, params.outerIterations);

    // FP setup: f1 = 1.5, f2 = 0.75 via integer materialization.
    b.loadImm(rTmp, 0x3FF8000000000000ull); // 1.5
    b.emit(Opcode::FmvDX, rOps(1, rTmp, 0));
    b.loadImm(rTmp, 0x3FE8000000000000ull); // 0.75
    b.emit(Opcode::FmvDX, rOps(2, rTmp, 0));

    b.label("outer");

    // FP kernel: fused chain fa3 = fa3*f1 + f2, with a periodic
    // division and compare-driven branch.
    b.loadImm(rInner, params.innerIterations);
    b.label("fp_loop");
    {
        Operands fma = rOps(3, 3, 1);
        fma.rs3 = 2;
        fma.rm = isa::csr::rmRNE;
        b.emit(Opcode::FmaddD, fma);
        Operands div = rOps(4, 3, 1);
        div.rm = isa::csr::rmRNE;
        b.emit(Opcode::FdivD, div);
        Operands cmp = rOps(rTmp, 4, 2);
        b.emit(Opcode::FltD, cmp);
    }
    b.branch(Opcode::Beq, rTmp, 0, "fp_skip");
    b.emit(Opcode::FsgnjxD, rOps(3, 3, 3)); // |fa3|
    b.label("fp_skip");
    b.addi(rInner, rInner, -1);
    b.branch(Opcode::Bne, rInner, 0, "fp_loop");

    // Integer division kernel (divider latency states).
    b.loadImm(rInner, params.innerIterations);
    b.loadImm(rTmp2, 0x9E3779B97F4A7C15ull);
    b.label("div_loop");
    b.emit(Opcode::Ld, iOps(rTmp, rBase, 0x40));
    b.emit(Opcode::Or, rOps(rTmp, rTmp, rInner)); // nonzero divisor
    b.emit(Opcode::Div, rOps(rLimit, rTmp2, rTmp));
    b.emit(Opcode::Rem, rOps(rTmp2, rTmp2, rTmp));
    b.emit(Opcode::Add, rOps(rTmp2, rTmp2, rLimit));
    b.emit(Opcode::Ori, iOps(rTmp2, rTmp2, 1));
    b.addi(rInner, rInner, -1);
    b.branch(Opcode::Bne, rInner, 0, "div_loop");

    // Store FP result, loop.
    b.emit(Opcode::Fsd, memOps(3, rBase, 0x200));
    b.addi(rOuter, rOuter, -1);
    b.branch(Opcode::Bne, rOuter, 0, "outer");
    return b.finish("microbench-like");
}

std::vector<Program>
buildAllBenchmarks(const fuzzer::MemoryLayout &layout,
                   const BenchmarkParams &params)
{
    return {buildCoremarkLike(layout, params),
            buildDhrystoneLike(layout, params),
            buildMicrobenchLike(layout, params)};
}

} // namespace turbofuzz::deepexplore
