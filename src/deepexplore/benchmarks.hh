/**
 * @file
 * Synthetic CPU benchmarks (paper-hardware substitution).
 *
 * deepExplore's stage 1 samples representative intervals from standard
 * benchmarks (coremark, dhrystone, microbench). Those binaries are not
 * available offline, so three synthetic kernels reproduce the property
 * SimPoint exploits — strongly recurring phase behaviour:
 *
 *  - coremark-like: nested integer loops (list/matrix/state-machine
 *    phases) with data-dependent branches;
 *  - dhrystone-like: call/return-heavy string and record manipulation
 *    with stride-1 memory traffic;
 *  - microbench-like: floating-point and division inner loops.
 *
 * Each program is a real RISC-V image that runs on the ISS, contains
 * tens of thousands of dynamic instructions in a few hundred static
 * ones, and terminates deterministically.
 */

#ifndef TURBOFUZZ_DEEPEXPLORE_BENCHMARKS_HH
#define TURBOFUZZ_DEEPEXPLORE_BENCHMARKS_HH

#include <vector>

#include "deepexplore/program_builder.hh"
#include "fuzzer/context.hh"

namespace turbofuzz::deepexplore
{

/** Scale factor: outer-loop trip counts (dynamic length control). */
struct BenchmarkParams
{
    uint32_t outerIterations = 40;
    uint32_t innerIterations = 24;
};

/** Build the coremark-like integer kernel. */
Program buildCoremarkLike(const fuzzer::MemoryLayout &layout,
                          const BenchmarkParams &params = {});

/** Build the dhrystone-like call/string kernel. */
Program buildDhrystoneLike(const fuzzer::MemoryLayout &layout,
                           const BenchmarkParams &params = {});

/** Build the microbench-like FP/division kernel. */
Program buildMicrobenchLike(const fuzzer::MemoryLayout &layout,
                            const BenchmarkParams &params = {});

/** All three benchmarks. */
std::vector<Program>
buildAllBenchmarks(const fuzzer::MemoryLayout &layout,
                   const BenchmarkParams &params = {});

} // namespace turbofuzz::deepexplore

#endif // TURBOFUZZ_DEEPEXPLORE_BENCHMARKS_HH
