#include "deepexplore/deep_explore.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fuzzer/exception_templates.hh"
#include "isa/csr.hh"

namespace turbofuzz::deepexplore
{

using fuzzer::IterationInfo;
using fuzzer::MemoryLayout;
using fuzzer::SeedBlock;
using isa::Opcode;
using isa::Operands;

// --- BenchmarkRunner ---------------------------------------------------

BenchmarkRunner::BenchmarkRunner(std::vector<Program> programs,
                                 MemoryLayout layout)
    : progs(std::move(programs)), memLayout(layout)
{
    TF_ASSERT(!progs.empty(), "BenchmarkRunner needs programs");
    // Profile dynamic lengths once (host-side, no simulated cost).
    for (const Program &p : progs) {
        const BenchmarkProfile prof =
            profileBenchmark(p, memLayout, 4096);
        dynLength.push_back(prof.totalInstructions);
    }
}

IterationInfo
BenchmarkRunner::generate(soc::Memory &mem)
{
    const Program &p = progs[cursor];
    const uint64_t dyn = dynLength[cursor];
    cursor = (cursor + 1) % progs.size();

    p.load(mem);
    IterationInfo info;
    info.iterationIndex = iterCounter++;
    info.entryPc = p.entry();
    info.firstBlockPc = p.entry();
    info.codeBoundary = p.end();
    info.generatedInstrs = static_cast<uint32_t>(
        std::min<uint64_t>(dyn, UINT32_MAX));
    return info;
}

// --- DeepExploreGenerator ------------------------------------------------

DeepExploreGenerator::DeepExploreGenerator(
    DeepExploreOptions options, const isa::InstructionLibrary *library,
    std::vector<Program> programs)
    : opts(options), inner(options.fuzzer, library),
      progs(std::move(programs)), rng(options.fuzzer.seed ^ 0xDEE9)
{
    TF_ASSERT(!progs.empty(), "deepExplore needs benchmarks");

    // Stage-1 preparation (host-side SimPoint tooling, as in the
    // paper): profile each benchmark and queue its representative
    // intervals.
    for (size_t pi = 0; pi < progs.size(); ++pi) {
        const BenchmarkProfile prof = profileBenchmark(
            progs[pi], inner.layout(), opts.intervalLen);
        const std::vector<SimPoint> points =
            selectSimPoints(prof.intervals, opts.simpoint);
        for (const SimPoint &sp : points) {
            const IntervalProfile &iv =
                prof.intervals[sp.intervalIndex];
            IntervalJob job;
            job.programIdx = pi;
            job.startState = iv.startState;
            job.startPc = iv.startPc;
            job.length = iv.instrCount;
            job.isMutation = false;
            job.markedIdx = SIZE_MAX;
            queue.push_back(std::move(job));
        }
    }
    inform("deepExplore: queued %zu representative intervals",
           queue.size());
}

const MemoryLayout &
DeepExploreGenerator::layout() const
{
    return inner.layout();
}

IterationInfo
DeepExploreGenerator::emitInterval(soc::Memory &mem,
                                   const IntervalJob &job)
{
    const Program &prog = progs[job.programIdx];
    prog.load(mem);

    // Exception templates keep mutated intervals recoverable (a
    // perturbed initialization state can make the replay fault).
    fuzzer::ExceptionTemplates::install(mem, inner.layout());

    // Initialization code sits after the program image, aligned up.
    const uint64_t init_base = (prog.end() + 0xFF) & ~uint64_t{0xFF};
    ProgramBuilder b(init_base);

    // mtvec first; the staging register is rewritten below.
    b.loadImm(30, inner.layout().handlerBase);
    {
        isa::Operands w;
        w.rd = 0;
        w.rs1 = 30;
        w.csr = isa::csr::mtvec;
        b.emit(Opcode::Csrrw, w);
    }

    const core::ArchState &st = job.startState;
    // GRF: x1..x29 (x30/x31 conventions rebuilt below too).
    for (unsigned r = 1; r < 32; ++r)
        b.loadImm(r, st.x(r));
    // FRF via x5 staging (x5 re-materialized afterwards).
    for (unsigned f = 0; f < 32; ++f) {
        b.loadImm(5, st.f(f));
        Operands mv;
        mv.rd = static_cast<uint8_t>(f);
        mv.rs1 = 5;
        b.emit(Opcode::FmvDX, mv);
    }
    b.loadImm(5, st.x(5));
    // fcsr.
    b.loadImm(6, (st.frm << 5) | st.fflags);
    Operands csr;
    csr.rd = 0;
    csr.rs1 = 6;
    csr.csr = isa::csr::fcsr;
    b.emit(Opcode::Csrrw, csr);
    b.loadImm(6, st.x(6));
    // Enter the interval body.
    {
        Operands j;
        j.rd = 0;
        j.imm = static_cast<int64_t>(job.startPc) -
                static_cast<int64_t>(b.here());
        b.emit(Opcode::Jal, j);
    }
    const Program init = b.finish("interval-init");
    init.load(mem);

    // Terminator at the program's end: replays that run the benchmark
    // to completion jump cleanly to the iteration boundary instead of
    // creeping through the gap before the init stub.
    {
        Operands j;
        j.rd = 0;
        j.imm = static_cast<int64_t>(init.end()) -
                static_cast<int64_t>(prog.end());
        mem.write32(prog.end(), isa::encode(Opcode::Jal, j));
    }

    IterationInfo info;
    info.entryPc = init.entry();
    info.firstBlockPc = job.startPc;
    // The init stub sits above the program image, so the iteration
    // region extends to its end; the interval body loops and the
    // harness's step cap bounds the replay length.
    info.codeBoundary = init.end();
    info.fuzzRegionEnd = prog.end();
    info.generatedInstrs = static_cast<uint32_t>(
        init.code.size() + job.length);
    return info;
}

IterationInfo
DeepExploreGenerator::generate(soc::Memory &mem)
{
    if (!inStage2 && !queue.empty()) {
        lastJob = queue.front();
        queue.pop_front();
        lastWasInterval = true;
        return emitInterval(mem, lastJob);
    }
    if (!inStage2)
        enterStage2();
    lastWasInterval = false;
    return inner.generate(mem);
}

void
DeepExploreGenerator::scheduleMutationRound()
{
    ++mutationRound;
    for (size_t mi = 0; mi < marked.size(); ++mi) {
        IntervalJob mutant = marked[mi];
        mutant.isMutation = true;
        mutant.markedIdx = mi;
        // Light mutation: perturb initialization values (register
        // contents, memory addresses) while preserving the interval's
        // dependency structure (§V).
        for (unsigned r = 1; r < 32; ++r) {
            if (rng.chance(1, 4)) {
                const uint64_t v = mutant.startState.x(r);
                mutant.startState.setX(
                    r, v ^ rng.range(1ull << (8 + rng.range(24))));
            }
        }
        for (unsigned f = 0; f < 32; ++f) {
            if (rng.chance(1, 8)) {
                mutant.startState.setF(
                    f, mutant.startState.f(f) ^ rng.next());
            }
        }
        queue.push_back(std::move(mutant));
    }
}

void
DeepExploreGenerator::enterStage2()
{
    // Decompose each marked interval's static window into instruction
    // blocks and seed the fuzzer corpus with them.
    soc::Memory scratch;
    size_t seeded = 0;
    for (const IntervalJob &job : marked) {
        const Program &prog = progs[job.programIdx];
        prog.load(scratch);

        fuzzer::Seed seed;
        SeedBlock block;
        uint64_t pc = job.startPc;
        uint32_t taken = 0;
        while (taken < opts.seedWindow && pc < prog.end()) {
            const uint32_t word = scratch.read32(pc);
            const isa::Decoded d = isa::decode(word);
            block.insns.push_back(word);
            ++taken;
            pc += 4;
            if (d.valid && d.desc->isControlFlow()) {
                block.primeIdx =
                    static_cast<uint32_t>(block.insns.size() - 1);
                block.isControlFlow = true;
                block.targetBlock = -1;
                block.position =
                    static_cast<uint32_t>(seed.blocks.size());
                seed.blocks.push_back(std::move(block));
                block = SeedBlock{};
            }
        }
        if (!block.insns.empty()) {
            block.primeIdx =
                static_cast<uint32_t>(block.insns.size() - 1);
            block.position =
                static_cast<uint32_t>(seed.blocks.size());
            seed.blocks.push_back(std::move(block));
        }
        if (!seed.blocks.empty()) {
            inner.underlying().addSeed(std::move(seed));
            ++seeded;
        }
    }
    inform("deepExplore: stage 2 begins with %zu interval seeds "
           "(%llu mutation rounds)",
           seeded, static_cast<unsigned long long>(mutationRound));
    inStage2 = true;
}

void
DeepExploreGenerator::feedback(const IterationInfo &info,
                               uint64_t cov_increment)
{
    if (inStage2) {
        inner.feedback(info, cov_increment);
        return;
    }
    if (!lastWasInterval)
        return;

    if (lastJob.isMutation) {
        // Track whether this mutation round still improves coverage.
        if (cov_increment > opts.markThreshold) {
            bestRoundIncrement =
                std::max(bestRoundIncrement, cov_increment);
        }
        if (lastJob.markedIdx < markedBestIncrement.size()) {
            markedBestIncrement[lastJob.markedIdx] = std::max(
                markedBestIncrement[lastJob.markedIdx], cov_increment);
        }
    } else if (cov_increment >= opts.markThreshold) {
        // Significant interval: mark it for mutation and seeding.
        marked.push_back(lastJob);
        markedBestIncrement.push_back(cov_increment);
    }

    // Queue drained: decide between another mutation round and
    // plateau exit.
    if (queue.empty()) {
        if (marked.empty()) {
            enterStage2();
            return;
        }
        if (mutationRound > 0) {
            if (bestRoundIncrement <= opts.markThreshold)
                ++stagnantRounds;
            else
                stagnantRounds = 0;
        }
        bestRoundIncrement = 0;
        if (stagnantRounds >= opts.plateauRounds ||
            mutationRound >= opts.maxMutationRounds) {
            enterStage2();
        } else {
            scheduleMutationRound();
        }
    }
}

} // namespace turbofuzz::deepexplore
