/**
 * @file
 * The deepExplore hybrid strategy (paper §V).
 *
 * Stage 1 (direct): SimPoint-representative intervals extracted from
 * CPU benchmarks are replayed on the DUT. Each interval runs with
 * initialization code reconstructing its architectural context (GRF /
 * FRF / fcsr), so deterministic, structured behaviour reaches design
 * states random stimulus rarely hits. Intervals whose coverage
 * increment is significant are *marked*; marked intervals are then
 * replayed with lightly mutated initialization state (register values
 * and memory addresses change, the dependency structure does not)
 * until improvements plateau.
 *
 * Stage 2 (fuzzing): marked intervals are decomposed into instruction
 * blocks and injected as high-quality seeds into the TurboFuzzer
 * corpus, which then continues with coverage-guided fuzzing.
 */

#ifndef TURBOFUZZ_DEEPEXPLORE_DEEP_EXPLORE_HH
#define TURBOFUZZ_DEEPEXPLORE_DEEP_EXPLORE_HH

#include <deque>
#include <vector>

#include "deepexplore/bbv.hh"
#include "deepexplore/benchmarks.hh"
#include "deepexplore/simpoint.hh"
#include "fuzzer/generator.hh"

namespace turbofuzz::deepexplore
{

/** deepExplore configuration. */
struct DeepExploreOptions
{
    uint64_t intervalLen = 512;
    SimPointOptions simpoint;

    /** Coverage increment that marks an interval as significant. */
    uint64_t markThreshold = 40;

    /** Consecutive non-improving mutation rounds ending stage 1. */
    uint32_t plateauRounds = 1;

    /** Hard cap on light-mutation rounds (stage-1 time budget). */
    uint32_t maxMutationRounds = 3;

    /** Static window (instructions) archived per marked interval. */
    uint32_t seedWindow = 256;

    /** Stage-2 fuzzer configuration. */
    fuzzer::FuzzerOptions fuzzer;
};

/**
 * Plain benchmark execution (no fuzzing): the Fig. 10 baseline and
 * the substrate deepExplore profiles. Cycles through the given
 * programs, one full run per iteration.
 */
class BenchmarkRunner : public fuzzer::StimulusGenerator
{
  public:
    BenchmarkRunner(std::vector<Program> programs,
                    fuzzer::MemoryLayout layout);

    fuzzer::IterationInfo generate(soc::Memory &mem) override;
    void feedback(const fuzzer::IterationInfo &, uint64_t) override {}
    const fuzzer::MemoryLayout &layout() const override
    {
        return memLayout;
    }
    bool usesExceptionTemplates() const override { return false; }
    std::string_view name() const override { return "Benchmark"; }

  private:
    std::vector<Program> progs;
    std::vector<uint64_t> dynLength; ///< profiled dynamic lengths
    fuzzer::MemoryLayout memLayout;
    size_t cursor = 0;
    uint64_t iterCounter = 0;
};

/** The two-stage hybrid generator. */
class DeepExploreGenerator : public fuzzer::StimulusGenerator
{
  public:
    /**
     * @param options    Configuration (stage-2 fuzzer opts included).
     * @param library    Instruction library for stage 2.
     * @param programs   Benchmarks to sample intervals from.
     */
    DeepExploreGenerator(DeepExploreOptions options,
                         const isa::InstructionLibrary *library,
                         std::vector<Program> programs);

    fuzzer::IterationInfo generate(soc::Memory &mem) override;
    void feedback(const fuzzer::IterationInfo &info,
                  uint64_t cov_increment) override;
    const fuzzer::MemoryLayout &layout() const override;
    bool usesExceptionTemplates() const override { return true; }
    std::string_view name() const override { return "deepExplore"; }

    /** Current stage: 1 = interval replay, 2 = fuzzing. */
    unsigned stage() const { return inStage2 ? 2 : 1; }

    /** Number of intervals marked as significant so far. */
    size_t markedCount() const { return marked.size(); }

  private:
    /** One queued interval replay job. */
    struct IntervalJob
    {
        size_t programIdx;
        core::ArchState startState;
        uint64_t startPc;
        uint64_t length;
        bool isMutation; ///< light mutation of a marked interval
        size_t markedIdx; ///< when isMutation: which marked interval
    };

    /** Emit an interval-replay iteration. */
    fuzzer::IterationInfo emitInterval(soc::Memory &mem,
                                       const IntervalJob &job);

    /** Schedule light mutations of all marked intervals. */
    void scheduleMutationRound();

    /** Decompose marked intervals into corpus seeds; enter stage 2. */
    void enterStage2();

    DeepExploreOptions opts;
    fuzzer::TurboFuzzGenerator inner;
    std::vector<Program> progs;
    Rng rng;

    std::deque<IntervalJob> queue;
    std::vector<IntervalJob> marked;
    std::vector<uint64_t> markedBestIncrement;

    IntervalJob lastJob{};
    bool lastWasInterval = false;
    bool inStage2 = false;
    uint64_t bestRoundIncrement = 0;
    uint32_t stagnantRounds = 0;
    uint64_t mutationRound = 0;
};

} // namespace turbofuzz::deepexplore

#endif // TURBOFUZZ_DEEPEXPLORE_DEEP_EXPLORE_HH
