#include "deepexplore/program_builder.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace turbofuzz::deepexplore
{

using isa::Opcode;
using isa::Operands;

void
Program::load(soc::Memory &mem) const
{
    uint64_t addr = base;
    for (uint32_t w : code) {
        mem.write32(addr, w);
        addr += 4;
    }
}

ProgramBuilder::ProgramBuilder(uint64_t base_addr) : base(base_addr)
{
    TF_ASSERT(base_addr % 4 == 0, "program base must be aligned");
}

void
ProgramBuilder::emit(Opcode op, const Operands &ops)
{
    code.push_back(isa::encode(op, ops));
}

void
ProgramBuilder::emitWord(uint32_t word)
{
    code.push_back(word);
}

uint64_t
ProgramBuilder::here() const
{
    return base + 4 * code.size();
}

void
ProgramBuilder::label(const std::string &name)
{
    TF_ASSERT(labels.count(name) == 0, "duplicate label '%s'",
              name.c_str());
    labels[name] = here();
}

void
ProgramBuilder::branch(Opcode op, unsigned rs1, unsigned rs2,
                       const std::string &target)
{
    Operands o;
    o.rs1 = static_cast<uint8_t>(rs1);
    o.rs2 = static_cast<uint8_t>(rs2);
    fixups.push_back({code.size(), op, o, target});
    code.push_back(0); // placeholder
}

void
ProgramBuilder::jump(unsigned rd, const std::string &target)
{
    Operands o;
    o.rd = static_cast<uint8_t>(rd);
    fixups.push_back({code.size(), Opcode::Jal, o, target});
    code.push_back(0);
}

void
ProgramBuilder::loadImm(unsigned rd, uint64_t value)
{
    // Standard li expansion. Small constants take the short path.
    const int64_t sval = static_cast<int64_t>(value);
    if (sval >= -2048 && sval <= 2047) {
        Operands o;
        o.rd = static_cast<uint8_t>(rd);
        o.rs1 = 0;
        o.imm = sval;
        emit(Opcode::Addi, o);
        return;
    }
    if (sval == static_cast<int64_t>(static_cast<int32_t>(sval)) &&
        ((sval + 0x800) >> 12) != 0x80000) {
        // lui + addi covers sign-extended 32-bit values; the hi part
        // must itself stay inside lui's signed 20-bit range (values
        // near +2^31 like 0x7FFFFFFF need the 64-bit path).
        const int64_t hi = (sval + 0x800) >> 12;
        const int64_t lo = sval - (hi << 12);
        Operands u;
        u.rd = static_cast<uint8_t>(rd);
        u.imm = hi & 0xFFFFF;
        emit(Opcode::Lui, u);
        if (lo != 0) {
            Operands a;
            a.rd = static_cast<uint8_t>(rd);
            a.rs1 = static_cast<uint8_t>(rd);
            a.imm = lo;
            emit(Opcode::Addi, a);
        }
        return;
    }
    // Full 64-bit path (standard li expansion): peel the low 12 bits
    // as a signed chunk, materialize the remainder recursively, then
    // shift and add the chunk back. Depth <= 5.
    const int64_t lo = sext(value & 0xFFF, 12);
    loadImm(rd, (value - static_cast<uint64_t>(lo)) >> 12);
    Operands sll;
    sll.rd = static_cast<uint8_t>(rd);
    sll.rs1 = static_cast<uint8_t>(rd);
    sll.imm = 12;
    emit(Opcode::Slli, sll);
    if (lo != 0) {
        Operands a;
        a.rd = static_cast<uint8_t>(rd);
        a.rs1 = static_cast<uint8_t>(rd);
        a.imm = lo;
        emit(Opcode::Addi, a);
    }
}

void
ProgramBuilder::addi(unsigned rd, unsigned rs1, int64_t imm)
{
    Operands o;
    o.rd = static_cast<uint8_t>(rd);
    o.rs1 = static_cast<uint8_t>(rs1);
    o.imm = imm;
    emit(Opcode::Addi, o);
}

Program
ProgramBuilder::finish(const std::string &program_name)
{
    for (const Fixup &f : fixups) {
        auto it = labels.find(f.target);
        if (it == labels.end())
            fatal("undefined label '%s'", f.target.c_str());
        const uint64_t pc = base + 4 * f.index;
        Operands o = f.ops;
        o.imm = static_cast<int64_t>(it->second) -
                static_cast<int64_t>(pc);
        code[f.index] = isa::encode(f.op, o);
    }
    Program p;
    p.name = program_name;
    p.base = base;
    p.code = std::move(code);
    return p;
}

} // namespace turbofuzz::deepexplore
