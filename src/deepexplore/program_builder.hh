/**
 * @file
 * Small assembler for constructing benchmark programs.
 *
 * Supports forward label references with back-patching, the standard
 * li-style 64-bit constant materialization, and loop scaffolding —
 * enough to express the synthetic coremark/dhrystone/microbench
 * kernels deepExplore samples from.
 */

#ifndef TURBOFUZZ_DEEPEXPLORE_PROGRAM_BUILDER_HH
#define TURBOFUZZ_DEEPEXPLORE_PROGRAM_BUILDER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/encoding.hh"
#include "soc/memory.hh"

namespace turbofuzz::deepexplore
{

/** An assembled program image. */
struct Program
{
    std::string name;
    uint64_t base = 0;  ///< load address
    std::vector<uint32_t> code;

    uint64_t entry() const { return base; }
    uint64_t end() const { return base + 4 * code.size(); }

    /** Copy the image into @p mem. */
    void load(soc::Memory &mem) const;
};

/** Incremental program assembler. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(uint64_t base_addr);

    /** Append an encoded instruction. */
    void emit(isa::Opcode op, const isa::Operands &ops);

    /** Append a raw word. */
    void emitWord(uint32_t word);

    /** Current emission address. */
    uint64_t here() const;

    /** Define a label at the current address. */
    void label(const std::string &name);

    /**
     * Branch to a label (backward or forward; forward references are
     * back-patched in finish()).
     */
    void branch(isa::Opcode op, unsigned rs1, unsigned rs2,
                const std::string &target);

    /** jal rd, label. */
    void jump(unsigned rd, const std::string &target);

    /** Materialize a 64-bit constant into a register (li). */
    void loadImm(unsigned rd, uint64_t value);

    /** addi shorthand. */
    void addi(unsigned rd, unsigned rs1, int64_t imm);

    /** Finish assembly: back-patch and return the image. */
    Program finish(const std::string &program_name);

  private:
    struct Fixup
    {
        size_t index; ///< instruction slot
        isa::Opcode op;
        isa::Operands ops;
        std::string target;
    };

    uint64_t base;
    std::vector<uint32_t> code;
    std::map<std::string, uint64_t> labels;
    std::vector<Fixup> fixups;
};

} // namespace turbofuzz::deepexplore

#endif // TURBOFUZZ_DEEPEXPLORE_PROGRAM_BUILDER_HH
