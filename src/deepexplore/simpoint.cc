#include "deepexplore/simpoint.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"

namespace turbofuzz::deepexplore
{

std::vector<double>
projectBbv(const Bbv &bbv, unsigned dims)
{
    std::vector<double> v(dims, 0.0);
    double total = 0.0;
    for (const auto &[pc, count] : bbv)
        total += count;
    if (total == 0.0)
        return v;
    for (const auto &[pc, count] : bbv) {
        // Stable hash of the block PC picks the dimension; a second
        // hash bit gives the sign (sparse random projection).
        const uint64_t h = pc * 0x9E3779B97F4A7C15ull;
        const unsigned dim = static_cast<unsigned>(h % dims);
        const double sign = (h >> 63) ? -1.0 : 1.0;
        v[dim] += sign * static_cast<double>(count) / total;
    }
    return v;
}

namespace
{

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

} // namespace

std::vector<SimPoint>
selectSimPoints(const std::vector<IntervalProfile> &intervals,
                const SimPointOptions &options)
{
    TF_ASSERT(options.k >= 1, "need k >= 1");
    const size_t n = intervals.size();
    std::vector<SimPoint> points;
    if (n == 0)
        return points;

    const unsigned k =
        static_cast<unsigned>(std::min<size_t>(options.k, n));

    std::vector<std::vector<double>> vecs(n);
    for (size_t i = 0; i < n; ++i)
        vecs[i] = projectBbv(intervals[i].bbv, options.projectionDims);

    // k-means++-style seeding: spread initial centroids.
    Rng rng(options.seed);
    std::vector<std::vector<double>> centroids;
    centroids.push_back(vecs[rng.range(n)]);
    while (centroids.size() < k) {
        std::vector<double> d2(n);
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            for (const auto &c : centroids)
                best = std::min(best, sqDist(vecs[i], c));
            d2[i] = best;
            sum += best;
        }
        if (sum <= 0.0) {
            centroids.push_back(vecs[rng.range(n)]);
            continue;
        }
        double pick = rng.uniform() * sum;
        size_t chosen = n - 1;
        for (size_t i = 0; i < n; ++i) {
            pick -= d2[i];
            if (pick <= 0.0) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(vecs[chosen]);
    }

    // Lloyd iterations.
    std::vector<unsigned> assign(n, 0);
    for (unsigned iter = 0; iter < options.maxKmeansIters; ++iter) {
        bool changed = false;
        for (size_t i = 0; i < n; ++i) {
            unsigned best = 0;
            double best_d = std::numeric_limits<double>::max();
            for (unsigned c = 0; c < k; ++c) {
                const double d = sqDist(vecs[i], centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (assign[i] != best) {
                assign[i] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;
        // Recompute centroids.
        for (unsigned c = 0; c < k; ++c) {
            std::vector<double> mean(options.projectionDims, 0.0);
            size_t count = 0;
            for (size_t i = 0; i < n; ++i) {
                if (assign[i] != c)
                    continue;
                ++count;
                for (size_t d = 0; d < mean.size(); ++d)
                    mean[d] += vecs[i][d];
            }
            if (count == 0)
                continue; // keep the old centroid
            for (double &m : mean)
                m /= static_cast<double>(count);
            centroids[c] = std::move(mean);
        }
    }

    // Representative per cluster: closest interval to the centroid.
    for (unsigned c = 0; c < k; ++c) {
        size_t best_i = SIZE_MAX;
        double best_d = std::numeric_limits<double>::max();
        size_t population = 0;
        for (size_t i = 0; i < n; ++i) {
            if (assign[i] != c)
                continue;
            ++population;
            const double d = sqDist(vecs[i], centroids[c]);
            if (d < best_d) {
                best_d = d;
                best_i = i;
            }
        }
        if (best_i == SIZE_MAX)
            continue; // empty cluster
        SimPoint p;
        p.intervalIndex = best_i;
        p.weight = static_cast<double>(population) /
                   static_cast<double>(n);
        p.clusterSize = population;
        points.push_back(p);
    }
    std::sort(points.begin(), points.end(),
              [](const SimPoint &a, const SimPoint &b) {
                  return a.intervalIndex < b.intervalIndex;
              });
    return points;
}

} // namespace turbofuzz::deepexplore
