/**
 * @file
 * SimPoint interval selection: random projection + k-means.
 *
 * BBVs are projected onto a fixed low-dimensional space (stable
 * hashing of block PCs), L1-normalized, and clustered with k-means.
 * Each cluster's representative (the interval closest to the
 * centroid) becomes a simulation point with weight proportional to
 * cluster population — exactly the scheme the paper borrows from
 * SimPoint [33] to extract representative benchmark fragments.
 */

#ifndef TURBOFUZZ_DEEPEXPLORE_SIMPOINT_HH
#define TURBOFUZZ_DEEPEXPLORE_SIMPOINT_HH

#include <cstdint>
#include <vector>

#include "deepexplore/bbv.hh"

namespace turbofuzz::deepexplore
{

/** One chosen simulation point. */
struct SimPoint
{
    size_t intervalIndex; ///< index into the profiled intervals
    double weight;        ///< cluster population / total intervals
    size_t clusterSize;
};

/** Clustering configuration. */
struct SimPointOptions
{
    unsigned k = 6;            ///< clusters (>= 1)
    unsigned projectionDims = 32;
    unsigned maxKmeansIters = 50;
    uint64_t seed = 0x51319;
};

/** Project a BBV onto the fixed projection space (L1-normalized). */
std::vector<double> projectBbv(const Bbv &bbv, unsigned dims);

/**
 * Select representative intervals from a profile.
 * Fewer intervals than k simply yields one point per interval.
 */
std::vector<SimPoint>
selectSimPoints(const std::vector<IntervalProfile> &intervals,
                const SimPointOptions &options = {});

} // namespace turbofuzz::deepexplore

#endif // TURBOFUZZ_DEEPEXPLORE_SIMPOINT_HH
