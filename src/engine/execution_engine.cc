#include "engine/execution_engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "engine/warm_start.hh"

namespace turbofuzz::engine
{

ExecutionEngine::ExecutionEngine(core::Iss *dut, core::Iss *ref,
                                 checker::DiffChecker *checker,
                                 uint64_t batch_size)
    : dut_(dut), ref_(ref), checker_(checker), batch(batch_size)
{
    TF_ASSERT(dut_ != nullptr && ref_ != nullptr,
              "engine requires both harts");
    TF_ASSERT(checker_ != nullptr, "engine requires a checker");
    TF_ASSERT(batch >= 1, "batch size must be >= 1");
    const size_t reserve =
        static_cast<size_t>(std::min<uint64_t>(batch, 8192));
    dutTrace.reserve(reserve);
    refTrace.reserve(reserve);
}

void
ExecutionEngine::rewind(core::Iss *core, const core::ArchState &saved,
                        const soc::MemWriteJournal &journal,
                        uint64_t commits)
{
    core->memory().undo(journal);
    core->state() = saved;
    // Deterministic re-execution: identical inputs, identical
    // commits; lands exactly on the post-divergence state the
    // lockstep loop would have stopped in.
    for (uint64_t i = 0; i < commits; ++i) {
        core::CommitInfo scratch;
        core->stepInto(scratch);
    }
}

void
ExecutionEngine::sweepStage(const core::CommitInfo *commits,
                            uint64_t limit, const IterationPolicy &p,
                            const Hooks &h, IterationOutcome &out)
{
    if (h.driver && h.coverage) {
        out.newCoverage +=
            h.coverage->sweep(*h.driver, commits, limit);
    } else if (h.driver) {
        h.driver->onTrace(commits, limit);
    }
    for (uint64_t c = 0; c < limit; ++c) {
        const core::CommitInfo &ci = commits[c];
        ++out.executedTotal;
        if (ci.pc >= p.fuzzRegionStart && ci.pc < p.fuzzRegionEnd)
            ++out.executedFuzz;
        if (h.observer)
            (*h.observer)(ci);
        if (ci.trapped)
            ++out.traps;
        if (ci.memWrite) {
            const uint64_t end = ci.memAddr + ci.memSize;
            if (ci.memAddr >= p.instrBase &&
                ci.memAddr < p.instrBase + p.instrSize) {
                out.instrDirtyHigh = std::max(out.instrDirtyHigh, end);
            } else if (ci.memAddr >= p.handlerBase &&
                       ci.memAddr < p.handlerBase + p.handlerSize) {
                out.handlerDirtyHigh =
                    std::max(out.handlerDirtyHigh, end);
            }
        }
    }
}

IterationOutcome
ExecutionEngine::runIteration(const IterationPolicy &p,
                              const Hooks &h, const WarmStart *warm)
{
    IterationOutcome out;
    TF_ASSERT(!h.coverage || h.driver,
              "coverage recording requires an event driver");
    const bool per_instr =
        checker_->mode() == checker::DiffChecker::Mode::PerInstruction;
    const uint64_t checker_start = checker_->commitsChecked();

    // DUT-side running totals the stop policy consumes. These count
    // *stepped* commits (including ones a mid-batch divergence later
    // discards); the reported counters are accumulated in the sweep
    // stage over surviving commits only — exactly the commits the
    // lockstep loop would have processed.
    uint64_t stepped = 0;
    uint64_t stepped_traps = 0;

    // Stage instrument pointers, resolved once per iteration. A null
    // Hooks::instruments (the default) keeps every stage free of
    // clock reads; a null Hooks::trace keeps it free of span events.
    const telemetry::EngineInstruments noop_instruments;
    const telemetry::EngineInstruments &ins =
        h.instruments ? *h.instruments : noop_instruments;

    if (warm) {
        // Warm prologue: restore the post-prefix lockstep state and
        // replay the captured prefix commits through the sweep stage
        // — driver sequential state, coverage, counters and observer
        // see the exact commit stream a cold execution produces —
        // then advance the checker past the capture-verified prefix.
        TF_ASSERT(warm->eligible(p),
                  "warm start ineligible for this policy");
        dut_->state() = warm->dutArch;
        ref_->state() = warm->refArch;
        // Only per-instruction checking examines (and counts) the
        // prefix commits in a cold run; end-of-iteration mode never
        // advances the commit counter, so neither may the skip.
        if (per_instr)
            checker_->skipCommits(warm->prefixCommits());
        telemetry::ScopedStage stage(h.trace, ins.sweepNs,
                                     "engine.fused_sweep");
        sweepStage(warm->prefixTrace.data(), warm->prefixCommits(),
                   p, h, out);
        stepped = warm->prefixCommits();
        // The captured prefix is untrapped (capture invariant), so
        // stepped_traps stays 0 — as it would after a cold prefix.
    }

    // Rewind is reachable only when a divergence can be detected
    // mid-batch: per-commit checking with batches longer than one
    // commit. End-of-iteration mode never diverges inside the loop,
    // and at batch=1 the divergent commit is always the batch's last
    // — skip the checkpoint/journal cost entirely in those modes.
    const bool rewindable = per_instr && batch > 1;

    bool stop = false;
    while (!stop) {
        if (ins.batches)
            ins.batches->add(1);

        // --- stage 1: DUT batch -----------------------------------
        dutTrace.clear();
        core::ArchState dut_saved;
        bool stop_hit = false;
        uint64_t fill = 0;
        {
            telemetry::ScopedStage stage(h.trace, ins.dutNs,
                                         "engine.dut_batch");
            if (rewindable) {
                dut_saved = dut_->state();
                dutJournal.clear();
                dut_->memory().setJournal(&dutJournal);
            }
            fill = dut_->stepMany(
                dutTrace, batch, [&](const core::CommitInfo &ci) {
                    ++stepped;
                    if (ci.trapped)
                        ++stepped_traps;
                    const uint64_t pc = dut_->state().pc;
                    if (pc >= p.codeBoundary && pc < p.handlerBase)
                        return stop_hit = true; // clean end
                    if (ci.trapped && !p.resumeTraps)
                        return stop_hit = true; // first trap ends it
                    if (stepped_traps > p.trapStormLimit)
                        return stop_hit = true; // exception storm
                    if (stepped >= p.stepCap)
                        return stop_hit = true; // runaway protection
                    return false;
                });
            if (rewindable)
                dut_->memory().setJournal(nullptr);
        }
        stop = stop_hit;

        // --- stage 2: REF batch (blind mirror of the commit count) -
        refTrace.clear();
        core::ArchState ref_saved;
        {
            telemetry::ScopedStage stage(h.trace, ins.refNs,
                                         "engine.ref_mirror");
            if (rewindable) {
                ref_saved = ref_->state();
                refJournal.clear();
                ref_->memory().setJournal(&refJournal);
            }
            ref_->stepMany(
                refTrace, fill,
                [](const core::CommitInfo &) { return false; });
            if (rewindable)
                ref_->memory().setJournal(nullptr);
        }

        // --- stage 3: batch diff ----------------------------------
        uint64_t limit = fill;
        std::optional<checker::Mismatch> mm;
        if (per_instr) {
            telemetry::ScopedStage stage(h.trace, ins.diffNs,
                                         "engine.trace_diff");
            const uint64_t batch_checker_start =
                checker_->commitsChecked();
            mm = checker_->compareTrace(dutTrace.data(),
                                        refTrace.data(), fill);
            if (mm)
                limit = mm->instrIndex - batch_checker_start + 1;
        }

        // --- stage 4: sweep (driver + coverage + counters) --------
        {
            telemetry::ScopedStage stage(h.trace, ins.sweepNs,
                                         "engine.fused_sweep");
            sweepStage(dutTrace.data(), limit, p, h, out);
        }

        if (mm) {
            // Rewind the phantom commits past the divergence so hart
            // and memory state match the lockstep loop bit-exactly.
            if (limit < fill) {
                if (ins.rewinds)
                    ins.rewinds->add(1);
                rewind(dut_, dut_saved, dutJournal, limit);
                rewind(ref_, ref_saved, refJournal, limit);
            }
            out.mismatch = *mm;
            out.mismatchCommitIndex = mm->instrIndex - checker_start;
            return out;
        }
    }

    if (!per_instr) {
        telemetry::ScopedStage stage(h.trace, ins.diffNs,
                                     "engine.trace_diff");
        if (auto mm = checker_->compareFinalState(dut_->state(),
                                                  ref_->state())) {
            out.mismatch = *mm;
            // End-of-iteration checking has no commit position; the
            // executed count is the within-iteration index replay
            // reproduces.
            out.mismatchCommitIndex = out.executedTotal;
        }
    }
    return out;
}

} // namespace turbofuzz::engine
