#include "engine/execution_engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "engine/warm_start.hh"

namespace turbofuzz::engine
{

ExecutionEngine::ExecutionEngine(core::Iss *dut, core::Iss *ref,
                                 checker::DiffChecker *checker,
                                 uint64_t batch_size)
    : dut_(dut), ref_(ref), checker_(checker), batch(batch_size)
{
    TF_ASSERT(dut_ != nullptr && ref_ != nullptr,
              "engine requires both harts");
    TF_ASSERT(checker_ != nullptr, "engine requires a checker");
    TF_ASSERT(batch >= 1, "batch size must be >= 1");
    const size_t reserve =
        static_cast<size_t>(std::min<uint64_t>(batch, 8192));
    dutTrace.reserve(reserve);
    refTrace.reserve(reserve);
}

void
ExecutionEngine::rewind(core::Iss *core, const core::ArchState &saved,
                        const soc::MemWriteJournal &journal,
                        uint64_t commits)
{
    core->memory().undo(journal);
    core->state() = saved;
    // Deterministic re-execution: identical inputs, identical
    // commits; lands exactly on the post-divergence state the
    // lockstep loop would have stopped in.
    for (uint64_t i = 0; i < commits; ++i) {
        core::CommitInfo scratch;
        core->stepInto(scratch);
    }
}

// tflint: hot-path
void
ExecutionEngine::sweepStage(const core::CommitTrace &trace,
                            uint64_t limit, const IterationPolicy &p,
                            const Hooks &h, IterationOutcome &out)
{
    const core::CommitInfo *commits = trace.data();
    if (h.driver && h.coverage) {
        out.newCoverage +=
            h.coverage->sweep(*h.driver, commits, limit);
    } else if (h.driver) {
        h.driver->onTrace(commits, limit);
    }

    // Columnar fast path: the per-commit counters read only pc, the
    // kind byte and the store address/size — tight columns instead of
    // ~130-byte record strides. The observer needs full records, and
    // an unsealed trace has no valid columns; both fall back below.
    if (!h.observer && trace.columnsValid()) {
        const core::CommitTrace::Columns &col = trace.columns();
        out.executedTotal += limit;
        for (uint64_t c = 0; c < limit; ++c) {
            if (col.pc[c] >= p.fuzzRegionStart &&
                col.pc[c] < p.fuzzRegionEnd)
                ++out.executedFuzz;
            const uint8_t kind = col.kind[c];
            if (kind & core::KindTrapped)
                ++out.traps;
            if (kind & core::KindMemWrite) {
                const uint64_t addr = col.memAddr[c];
                const uint64_t end = addr + col.memSize[c];
                if (addr >= p.instrBase &&
                    addr < p.instrBase + p.instrSize) {
                    out.instrDirtyHigh =
                        std::max(out.instrDirtyHigh, end);
                } else if (addr >= p.handlerBase &&
                           addr < p.handlerBase + p.handlerSize) {
                    out.handlerDirtyHigh =
                        std::max(out.handlerDirtyHigh, end);
                }
            }
        }
        return;
    }

    for (uint64_t c = 0; c < limit; ++c) {
        const core::CommitInfo &ci = commits[c];
        ++out.executedTotal;
        if (ci.pc >= p.fuzzRegionStart && ci.pc < p.fuzzRegionEnd)
            ++out.executedFuzz;
        if (h.observer)
            (*h.observer)(ci);
        if (ci.trapped)
            ++out.traps;
        if (ci.memWrite) {
            const uint64_t end = ci.memAddr + ci.memSize;
            if (ci.memAddr >= p.instrBase &&
                ci.memAddr < p.instrBase + p.instrSize) {
                out.instrDirtyHigh = std::max(out.instrDirtyHigh, end);
            } else if (ci.memAddr >= p.handlerBase &&
                       ci.memAddr < p.handlerBase + p.handlerSize) {
                out.handlerDirtyHigh =
                    std::max(out.handlerDirtyHigh, end);
            }
        }
    }
}

IterationOutcome
ExecutionEngine::runIteration(const IterationPolicy &p,
                              const Hooks &h, const WarmStart *warm)
{
    IterationOutcome out;
    TF_ASSERT(!h.coverage || h.driver,
              "coverage recording requires an event driver");
    const bool per_instr =
        checker_->mode() == checker::DiffChecker::Mode::PerInstruction;
    const uint64_t checker_start = checker_->commitsChecked();

    // Column mirroring pays off in the sweep stage's fused columnar
    // loop. With no sweep consumers at all (triage replay), the
    // checker's AoS fallback is cheaper than sealing two traces, so
    // turn the per-commit column writes off for this iteration.
    const bool seal = h.driver || h.coverage || h.observer;
    dutTrace.setSealing(seal);
    refTrace.setSealing(seal);

    // DUT-side running totals the stop policy consumes. These count
    // *stepped* commits (including ones a mid-batch divergence later
    // discards); the reported counters are accumulated in the sweep
    // stage over surviving commits only — exactly the commits the
    // lockstep loop would have processed.
    uint64_t stepped = 0;
    uint64_t stepped_traps = 0;

    // Stage instrument pointers, resolved once per iteration. A null
    // Hooks::instruments (the default) keeps every stage free of
    // clock reads; a null Hooks::trace keeps it free of span events.
    const telemetry::EngineInstruments noop_instruments;
    const telemetry::EngineInstruments &ins =
        h.instruments ? *h.instruments : noop_instruments;

    // Fast-path effectiveness accounting: superblock runs are counted
    // in locals, decode-cache counters as deltas of the harts'
    // cumulative stats; both flush once when the iteration returns.
    uint64_t sb_entered = 0;
    uint64_t sb_side_exit = 0;
    const core::Iss::DecodeStats dut_dstats0 = dut_->decodeStats();
    const core::Iss::DecodeStats ref_dstats0 = ref_->decodeStats();
    const auto flush_fastpath = [&]() {
        if (!h.fastpath)
            return;
        const core::Iss::DecodeStats &d = dut_->decodeStats();
        const core::Iss::DecodeStats &r = ref_->decodeStats();
        h.fastpath->decodeHit->add((d.hit - dut_dstats0.hit) +
                                   (r.hit - ref_dstats0.hit));
        h.fastpath->decodeMiss->add((d.miss - dut_dstats0.miss) +
                                    (r.miss - ref_dstats0.miss));
        h.fastpath->decodeInvalidate->add(
            (d.invalidate - dut_dstats0.invalidate) +
            (r.invalidate - ref_dstats0.invalidate));
        h.fastpath->superblockEntered->add(sb_entered);
        h.fastpath->superblockSideExit->add(sb_side_exit);
    };

    if (warm) {
        // Warm prologue: restore the post-prefix lockstep state and
        // replay the captured prefix commits through the sweep stage
        // — driver sequential state, coverage, counters and observer
        // see the exact commit stream a cold execution produces —
        // then advance the checker past the capture-verified prefix.
        TF_ASSERT(warm->eligible(p),
                  "warm start ineligible for this policy");
        dut_->state() = warm->dutArch;
        ref_->state() = warm->refArch;
        // Only per-instruction checking examines (and counts) the
        // prefix commits in a cold run; end-of-iteration mode never
        // advances the commit counter, so neither may the skip.
        if (per_instr)
            checker_->skipCommits(warm->prefixCommits());
        telemetry::ScopedStage stage(h.trace, ins.sweepNs,
                                     "engine.fused_sweep");
        sweepStage(warm->prefixTrace, warm->prefixCommits(),
                   p, h, out);
        stepped = warm->prefixCommits();
        // The captured prefix is untrapped (capture invariant), so
        // stepped_traps stays 0 — as it would after a cold prefix.
    }

    // Rewind is reachable only when a divergence can be detected
    // mid-batch: per-commit checking with batches longer than one
    // commit. End-of-iteration mode never diverges inside the loop,
    // and at batch=1 the divergent commit is always the batch's last
    // — skip the checkpoint/journal cost entirely in those modes.
    const bool rewindable = per_instr && batch > 1;

    bool stop = false;
    while (!stop) {
        if (ins.batches)
            ins.batches->add(1);

        // --- stage 1: DUT batch -----------------------------------
        dutTrace.clear();
        core::ArchState dut_saved;
        bool stop_hit = false;
        uint64_t fill = 0;
        {
            telemetry::ScopedStage stage(h.trace, ins.dutNs,
                                         "engine.dut_batch");
            if (rewindable) {
                dut_saved = dut_->state();
                dutJournal.clear();
                dut_->memory().setJournal(&dutJournal);
            }
            // The per-commit stop policy, for the slow path.
            const auto stop_policy =
                [&](const core::CommitInfo &ci) {
                    ++stepped;
                    if (ci.trapped)
                        ++stepped_traps;
                    const uint64_t pc = dut_->state().pc;
                    if (pc >= p.codeBoundary && pc < p.handlerBase)
                        return stop_hit = true; // clean end
                    if (ci.trapped && !p.resumeTraps)
                        return stop_hit = true; // first trap ends it
                    if (stepped_traps > p.trapStormLimit)
                        return stop_hit = true; // exception storm
                    if (stepped >= p.stepCap)
                        return stop_hit = true; // runaway protection
                    return false;
                };
            // Superblock dispatch: bound the straight-line run so no
            // *intermediate* commit could have stopped a per-step
            // loop, then evaluate the policy once on the run's last
            // commit. Intermediate commits are untrapped (a trap ends
            // the run), keep the trap counters unchanged, stay below
            // the step cap (bound), and cannot enter the clean-end
            // window: from pc < codeBoundary straight execution
            // advances pc by 4 per commit and the bound stops short
            // of the window; from pc >= handlerBase it only moves
            // further above the window.
            while (fill < batch && !stop_hit) {
                uint64_t bound = batch - fill;
                bound = std::min(bound, p.stepCap > stepped
                                            ? p.stepCap - stepped
                                            : uint64_t{1});
                const uint64_t pc0 = dut_->state().pc;
                if (pc0 < p.codeBoundary) {
                    bound = std::min(
                        bound, (p.codeBoundary - pc0 + 3) >> 2);
                } else if (pc0 < p.handlerBase) {
                    bound = 0; // inside the stop window: slow path
                }
                const uint64_t n =
                    bound ? dut_->stepStraight(dutTrace, bound) : 0;
                if (n) {
                    ++sb_entered;
                    if (n < bound)
                        ++sb_side_exit;
                    stepped += n;
                    fill += n;
                    const core::CommitInfo &last = dutTrace[fill - 1];
                    if (last.trapped)
                        ++stepped_traps;
                    const uint64_t pc = dut_->state().pc;
                    if ((pc >= p.codeBoundary && pc < p.handlerBase) ||
                        (last.trapped && !p.resumeTraps) ||
                        stepped_traps > p.trapStormLimit ||
                        stepped >= p.stepCap) {
                        stop_hit = true;
                        break;
                    }
                    if (n == bound)
                        continue;
                }
                // Side exit (or cold/uncached pc): one slow step
                // refills the decode cache and re-primes the run.
                dut_->stepMany(dutTrace, 1, stop_policy);
                ++fill;
            }
            if (rewindable)
                dut_->memory().setJournal(nullptr);
        }
        stop = stop_hit;

        // --- stage 2: REF batch (blind mirror of the commit count) -
        refTrace.clear();
        core::ArchState ref_saved;
        {
            telemetry::ScopedStage stage(h.trace, ins.refNs,
                                         "engine.ref_mirror");
            if (rewindable) {
                ref_saved = ref_->state();
                refJournal.clear();
                ref_->memory().setJournal(&refJournal);
            }
            // Blind mirror of the commit count: superblock runs with
            // no stop policy to hoist, single slow steps across side
            // exits (which also refill the REF's decode cache).
            uint64_t mirrored = 0;
            while (mirrored < fill) {
                const uint64_t n =
                    ref_->stepStraight(refTrace, fill - mirrored);
                if (n) {
                    ++sb_entered;
                    if (n < fill - mirrored)
                        ++sb_side_exit;
                    mirrored += n;
                    if (mirrored == fill)
                        break;
                }
                ref_->stepMany(
                    refTrace, 1,
                    [](const core::CommitInfo &) { return false; });
                ++mirrored;
            }
            if (rewindable)
                ref_->memory().setJournal(nullptr);
        }

        // --- stage 3: batch diff ----------------------------------
        uint64_t limit = fill;
        std::optional<checker::Mismatch> mm;
        if (per_instr) {
            telemetry::ScopedStage stage(h.trace, ins.diffNs,
                                         "engine.trace_diff");
            const uint64_t batch_checker_start =
                checker_->commitsChecked();
            mm = checker_->compareTrace(dutTrace, refTrace, fill);
            if (mm)
                limit = mm->instrIndex - batch_checker_start + 1;
        }

        // --- stage 4: sweep (driver + coverage + counters) --------
        {
            telemetry::ScopedStage stage(h.trace, ins.sweepNs,
                                         "engine.fused_sweep");
            sweepStage(dutTrace, limit, p, h, out);
        }

        if (mm) {
            // Rewind the phantom commits past the divergence so hart
            // and memory state match the lockstep loop bit-exactly.
            if (limit < fill) {
                if (ins.rewinds)
                    ins.rewinds->add(1);
                rewind(dut_, dut_saved, dutJournal, limit);
                rewind(ref_, ref_saved, refJournal, limit);
            }
            out.mismatch = *mm;
            out.mismatchCommitIndex = mm->instrIndex - checker_start;
            flush_fastpath();
            return out;
        }
    }

    if (!per_instr) {
        telemetry::ScopedStage stage(h.trace, ins.diffNs,
                                     "engine.trace_diff");
        if (auto mm = checker_->compareFinalState(dut_->state(),
                                                  ref_->state())) {
            out.mismatch = *mm;
            // End-of-iteration checking has no commit position; the
            // executed count is the within-iteration index replay
            // reproduces.
            out.mismatchCommitIndex = out.executedTotal;
        }
    }
    flush_fastpath();
    return out;
}

} // namespace turbofuzz::engine
