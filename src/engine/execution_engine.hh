/**
 * @file
 * Batched execution engine: the pipelined hot path of one iteration.
 *
 * The paper's core throughput argument is that on the FPGA, test
 * execution, coverage collection and checking are decoupled pipeline
 * stages rather than one serialized per-instruction loop. This engine
 * gives the software model the same shape. One iteration is processed
 * as a sequence of bounded batches; within each batch the stages run
 * as tight sweeps over contiguous commit traces:
 *
 *   1. DUT stage    — the DUT hart runs up to `batch` commits into a
 *                     reusable CommitTrace, evaluating the iteration
 *                     stop policy (clean end / trap / trap storm /
 *                     step cap) after each commit;
 *   2. REF stage    — the golden reference blindly mirrors the same
 *                     number of commits into its own trace;
 *   3. check stage  — DiffChecker::compareTrace diffs the two traces
 *                     and reports the first divergent commit;
 *   4. sweep stage  — RTL event driving + coverage recording + the
 *                     per-commit counters run over the DUT trace, up
 *                     to and including the divergent commit only.
 *
 * Equivalence contract: for any batch size, the observable outcome
 * (coverage bitmap, counters, mismatch, hart and memory state at the
 * point the iteration ends) is bit-identical to the classic lockstep
 * loop — and batch=1 *is* that loop, one commit per batch. The one
 * mechanism this needs beyond stage ordering is rewind: when the
 * divergent commit is not the last of its batch, the harts have
 * already run past it ("phantom" commits the lockstep loop would
 * never have executed). The engine checkpoints both harts'
 * architectural state at batch entry and journals their memory
 * writes, so on a mid-batch mismatch it restores batch-entry state
 * and deterministically re-executes up to the divergence — leaving
 * cores and memory exactly as the lockstep loop would have.
 * Mismatches are rare, so the rewind path costs nothing in the
 * steady state. See docs/engine.md.
 */

#ifndef TURBOFUZZ_ENGINE_EXECUTION_ENGINE_HH
#define TURBOFUZZ_ENGINE_EXECUTION_ENGINE_HH

#include <functional>
#include <optional>

#include "checker/diff_checker.hh"
#include "core/commit_trace.hh"
#include "core/iss.hh"
#include "coverage/feedback_model.hh"
#include "rtl/driver.hh"
#include "telemetry/instruments.hh"
#include "telemetry/trace.hh"

namespace turbofuzz::engine
{

struct WarmStart;

/**
 * Stop/abort policy of one iteration — the harness semantics the
 * classic loop evaluated inline, expressed as data so campaign
 * execution and triage replay share one engine.
 */
struct IterationPolicy
{
    /** Clean end: DUT PC lands in [codeBoundary, handlerBase). */
    uint64_t codeBoundary = 0;
    uint64_t handlerBase = 0;

    /** Fuzz-region accounting (prevalence): [start, end). */
    uint64_t fuzzRegionStart = 0;
    uint64_t fuzzRegionEnd = 0;

    /** When false, the first DUT trap ends the iteration. */
    bool resumeTraps = false;

    /** Abort after this many commits (runaway-loop protection). */
    uint64_t stepCap = 0;

    /** Abort when the trap count exceeds this (exception storm). */
    uint32_t trapStormLimit = 0;

    /**
     * Dirty-store tracking ranges (the campaign's scrub contract):
     * high-water marks of DUT stores into [instrBase, instrBase +
     * instrSize) and [handlerBase, handlerBase + handlerSize) are
     * reported in the outcome. Zero sizes disable tracking (replay).
     */
    uint64_t instrBase = 0;
    uint64_t instrSize = 0;
    uint64_t handlerSize = 0;
};

/** What one engine iteration produced. */
struct IterationOutcome
{
    uint64_t executedTotal = 0;
    uint64_t executedFuzz = 0;
    uint64_t traps = 0;
    uint64_t newCoverage = 0;

    /** First DUT/REF divergence (either checking mode). */
    std::optional<checker::Mismatch> mismatch;

    /** 0-based within-iteration commit index of the divergence
     *  (== executedTotal for end-of-iteration mode). */
    uint64_t mismatchCommitIndex = 0;

    /** Highest store end-address seen inside each tracked range. */
    uint64_t instrDirtyHigh = 0;
    uint64_t handlerDirtyHigh = 0;
};

/** The staged batch pipeline over one DUT/REF pair. */
class ExecutionEngine
{
  public:
    /** Optional per-iteration consumers of the DUT commit stream. */
    struct Hooks
    {
        rtl::EventDriver *driver = nullptr;

        /**
         * Coverage feedback sink of the sweep stage: any
         * FeedbackModel (the mux CoverageMap, a CSR/edge model, or a
         * CompositeFeedback combining several). Requires `driver`.
         */
        coverage::FeedbackModel *coverage = nullptr;
        const std::function<void(const core::CommitInfo &)>
            *observer = nullptr;

        /**
         * Per-stage duration counters (engine.batch.*_ns). Null (the
         * default) skips the per-stage clock reads entirely; the
         * campaign binds these only when stage timing is requested.
         */
        const telemetry::EngineInstruments *instruments = nullptr;

        /**
         * Decode-cache / superblock effectiveness counters. No clock
         * reads involved (locals accumulated during the iteration,
         * flushed once at its end), so campaigns bind these
         * unconditionally. Null skips the flush.
         */
        const telemetry::FastPathInstruments *fastpath = nullptr;

        /** Stage span sink for this iteration; null = untraced. */
        telemetry::TraceRecorder *trace = nullptr;
    };

    /**
     * @param dut        DUT hart (not owned).
     * @param ref        Golden reference hart (not owned).
     * @param checker    Differential checker (not owned); its mode
     *                   selects per-commit vs end-of-iteration
     *                   checking.
     * @param batch_size Commits per pipeline batch (>= 1). 1
     *                   reproduces the classic lockstep loop.
     */
    ExecutionEngine(core::Iss *dut, core::Iss *ref,
                    checker::DiffChecker *checker,
                    uint64_t batch_size);

    /**
     * Run one full iteration to its stop condition or first
     * divergence. On return with a mismatch, harts and DUT/REF
     * memory are in the exact state the lockstep loop would have
     * left them in at the divergent commit.
     *
     * Cold start (@p warm == nullptr): both harts must already be
     * reset to the iteration entry PC; execution begins there.
     *
     * Warm start (@p warm != nullptr, must be eligible() for this
     * policy): instead of requiring reset harts, the engine restores
     * the captured post-prefix state into both harts, advances the
     * checker past the verified prefix commits, replays the captured
     * prefix trace through the sweep stage, and begins live
     * execution at the first data-dependent instruction. Outcome and
     * machine state are bit-identical to the cold run — the warm
     * path only skips re-executing and re-checking the constant
     * prefix (see warm_start.hh).
     */
    IterationOutcome runIteration(const IterationPolicy &policy,
                                  const Hooks &hooks,
                                  const WarmStart *warm = nullptr);

    uint64_t batchSize() const { return batch; }

  private:
    /** Restore @p core to batch-entry state, then re-execute
     *  @p commits steps (deterministic; lands past commit
     *  `commits-1`). */
    static void rewind(core::Iss *core,
                       const core::ArchState &saved,
                       const soc::MemWriteJournal &journal,
                       uint64_t commits);

    /** Stage 4: drive RTL events + record coverage + accumulate the
     *  per-commit counters over the first @p limit commits of
     *  @p trace (columnar fast path when the trace is sealed). */
    static void sweepStage(const core::CommitTrace &trace,
                           uint64_t limit, const IterationPolicy &p,
                           const Hooks &h, IterationOutcome &out);

    core::Iss *dut_;
    core::Iss *ref_;
    checker::DiffChecker *checker_;
    uint64_t batch;

    // Reused across batches and iterations: zero steady-state
    // allocation.
    core::CommitTrace dutTrace;
    core::CommitTrace refTrace;
    soc::MemWriteJournal dutJournal;
    soc::MemWriteJournal refJournal;
};

} // namespace turbofuzz::engine

#endif // TURBOFUZZ_ENGINE_EXECUTION_ENGINE_HH
