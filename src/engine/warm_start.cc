#include "engine/warm_start.hh"

#include "checker/diff_checker.hh"
#include "engine/execution_engine.hh"
#include "soc/memory.hh"

namespace turbofuzz::engine
{

bool
WarmStart::eligible(const IterationPolicy &policy) const
{
    // Cold start evaluates the stop policy after every prefix commit.
    // Clean-end cannot fire (prefix PCs precede the fuzzing region),
    // traps cannot fire (capture rejected trapping prefixes), so the
    // step cap is the single condition that could end an iteration
    // inside the prefix — in which case the caller must cold-start.
    return policy.stepCap > prefixTrace.size();
}

std::optional<WarmStart>
captureWarmStart(const WarmStartSpec &spec)
{
    const uint64_t n = spec.prefixCode.size();
    if (n == 0)
        return std::nullopt;

    // Sandboxed lockstep pair: the prefix performs no data accesses,
    // so a memory holding only the prefix words reproduces exactly
    // the execution a campaign iteration's prefix performs.
    soc::Memory dut_mem;
    for (uint64_t i = 0; i < n; ++i)
        dut_mem.write32(spec.entryPc + 4 * i, spec.prefixCode[i]);
    soc::Memory ref_mem = dut_mem;

    core::Iss dut(&dut_mem, spec.dutOpts);
    core::Iss ref(&ref_mem, spec.refOpts);
    for (core::Iss *c : {&dut, &ref}) {
        for (const auto &[base, size] : spec.accessRanges)
            c->addAccessRange(base, size);
    }
    dut.reset(spec.entryPc);
    ref.reset(spec.entryPc);

    WarmStart ws;
    ws.entryPc = spec.entryPc;
    core::CommitTrace ref_trace;
    dut.stepMany(ws.prefixTrace, n,
                 [](const core::CommitInfo &) { return false; });
    ref.stepMany(ref_trace, n,
                 [](const core::CommitInfo &) { return false; });

    // The prefix must be provably constant per iteration: every
    // commit untrapped, in program order, falling through to its
    // successor, and performing no memory access. Anything else
    // (most plausibly an injected bug perturbing the prefix) makes
    // warm start unsound — callers fall back to cold start.
    for (uint64_t i = 0; i < n; ++i) {
        const core::CommitInfo &ci = ws.prefixTrace[i];
        if (ci.trapped || ci.memAccess ||
            ci.pc != spec.entryPc + 4 * i || ci.nextPc != ci.pc + 4)
            return std::nullopt;
    }

    // Differential check with the checker the campaign uses: if the
    // strictest (per-instruction) compare finds no divergence in the
    // constant prefix at capture time, no campaign iteration can
    // report one there either.
    checker::DiffChecker chk(checker::DiffChecker::Mode::PerInstruction);
    if (chk.compareTrace(ws.prefixTrace.data(), ref_trace.data(), n))
        return std::nullopt;

    ws.dutArch = dut.state();
    ws.refArch = ref.state();
    return ws;
}

} // namespace turbofuzz::engine
