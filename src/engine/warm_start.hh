/**
 * @file
 * Warm-start state: the post-preamble snapshot that removes redundant
 * per-iteration preamble re-execution from the hot path.
 *
 * Every TurboFuzzer iteration begins with the same constant
 * instruction prefix (context setup + bootstrap boilerplate — see
 * TurboFuzzer::warmPrefixCode). Executing it costs two hart
 * executions plus a lockstep check per prefix instruction, per
 * iteration, and — as TheHuzz/ProcessorFuzz observe for replay-heavy
 * pipelines — the same cost is paid again by every one of the ~130
 * ddmin replays a minimized bug needs. The prefix performs no memory
 * accesses, so its execution is a pure function of (reset state,
 * prefix code, bug set): captureWarmStart() runs it ONCE on a
 * sandboxed DUT/REF pair, verifies it is straight-line, untrapped and
 * divergence-free, and snapshots the post-prefix architectural state
 * of both harts together with the DUT's commit trace.
 *
 * A warm iteration then
 *   - restores both harts' post-prefix ArchState instead of resetting
 *     and re-executing the prefix,
 *   - advances the differential checker past the verified-identical
 *     prefix commits (DiffChecker::skipCommits),
 *   - replays the CAPTURED prefix commit trace through the sweep
 *     stage (event driver, coverage, counters, observer) — the
 *     commits are bit-identical to what a cold execution would have
 *     produced, so the driver's sequential state, the coverage
 *     bitmap and every counter evolve exactly as in a cold run,
 * and continues live execution at the first data-dependent preamble
 * instruction. The observable outcome is bit-identical to cold start
 * (enforced by tests/engine/engine_equivalence_test.cc); only the
 * redundant hart execution and checking of the constant prefix are
 * skipped.
 *
 * When capture cannot prove the prefix is constant and
 * divergence-free — e.g. an injected bug fires inside it — capture
 * fails and callers simply keep cold-starting, which is always
 * correct.
 */

#ifndef TURBOFUZZ_ENGINE_WARM_START_HH
#define TURBOFUZZ_ENGINE_WARM_START_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/arch_state.hh"
#include "core/commit_trace.hh"
#include "core/iss.hh"

namespace turbofuzz::engine
{

struct IterationPolicy;

/** Captured post-prefix lockstep state (see file comment). */
struct WarmStart
{
    /** Iteration entry PC the prefix was executed from. */
    uint64_t entryPc = 0;

    /** Post-prefix architectural state of each hart. */
    core::ArchState dutArch;
    core::ArchState refArch;

    /**
     * The DUT's prefix commit trace — constant across iterations and
     * verified equal to the REF's at capture. Warm iterations replay
     * it through the sweep stage (driver/coverage/counters).
     */
    core::CommitTrace prefixTrace;

    uint64_t prefixCommits() const { return prefixTrace.size(); }

    /**
     * Whether this warm state may be used for an iteration governed
     * by @p policy. The captured prefix is straight-line, untrapped
     * and ends before the fuzzing region, so the only stop condition
     * that could fire inside it is the step cap.
     */
    bool eligible(const IterationPolicy &policy) const;
};

/** What captureWarmStart() executes. */
struct WarmStartSpec
{
    /** DUT configuration (bugs included — a bug that perturbs the
     *  prefix makes capture fail, falling back to cold start). */
    core::Iss::Options dutOpts;

    /** Golden reference configuration. */
    core::Iss::Options refOpts;

    /** The constant prefix instruction words. */
    std::vector<uint32_t> prefixCode;

    /** Address the prefix is placed and executed at. */
    uint64_t entryPc = 0;

    /** Accessible ranges to mirror from the campaign cores. */
    std::vector<std::pair<uint64_t, uint64_t>> accessRanges;
};

/**
 * Execute @p spec's prefix once on a sandboxed DUT/REF pair and
 * capture the post-prefix state. Returns std::nullopt when the
 * prefix is not provably constant: a commit trapped, control flow
 * left the straight line, or the DUT diverged from the REF.
 */
std::optional<WarmStart> captureWarmStart(const WarmStartSpec &spec);

} // namespace turbofuzz::engine

#endif // TURBOFUZZ_ENGINE_WARM_START_HH
