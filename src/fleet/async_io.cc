#include "fleet/async_io.hh"

#include "telemetry/clock.hh"

namespace turbofuzz::fleet
{

AsyncBarrierIo::~AsyncBarrierIo()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        if (!writer.joinable())
            return;
        cvIdle.wait(lock,
                    [this] { return !hasPending && !running; });
        stopping = true;
    }
    cvWork.notify_all();
    writer.join();
}

void
AsyncBarrierIo::submit(std::function<void()> job)
{
    std::unique_lock<std::mutex> lock(mtx);
    if (!writer.joinable())
        writer = std::thread([this] { writerLoop(); });
    // Double-buffer back-pressure: wait for the queue slot, not for
    // the running job — one job may execute while one sits queued.
    cvIdle.wait(lock, [this] { return !hasPending; });
    pending = std::move(job);
    hasPending = true;
    cvWork.notify_one();
}

void
AsyncBarrierIo::drain()
{
    std::unique_lock<std::mutex> lock(mtx);
    if (!writer.joinable())
        return;
    cvIdle.wait(lock, [this] { return !hasPending && !running; });
}

void
AsyncBarrierIo::writerLoop()
{
    std::unique_lock<std::mutex> lock(mtx);
    for (;;) {
        cvWork.wait(lock, [this] { return hasPending || stopping; });
        if (!hasPending && stopping)
            return;
        std::function<void()> job = std::move(pending);
        pending = nullptr;
        hasPending = false;
        running = true;
        cvIdle.notify_all(); // queue slot free: unblock submit()
        lock.unlock();
        const uint64_t start = telemetry::nowNs();
        job();
        overlapNs.fetch_add(telemetry::nowNs() - start,
                            std::memory_order_relaxed);
        lock.lock();
        running = false;
        cvIdle.notify_all(); // job done: unblock drain()
    }
}

} // namespace turbofuzz::fleet
