/**
 * @file
 * Overlapped epoch-barrier I/O (docs/fleet.md "Epoch barrier
 * anatomy").
 *
 * Checkpoint shipping and JSONL stats emission are pure outputs: the
 * orchestrator snapshots the bytes to write on its own thread (the
 * deterministic part) and this helper writes them to disk while the
 * next epoch already runs (the slow part). The queue is deliberately
 * a double buffer — one job running, at most one queued — so a slow
 * disk applies back-pressure at the *next* barrier instead of letting
 * snapshots pile up unboundedly in memory.
 *
 * Determinism: jobs carry only already-serialized state, never read
 * fleet state, and the orchestrator drains the queue before the run
 * result is assembled — so overlapping changes nothing observable
 * except host wall-clock.
 */

#ifndef TURBOFUZZ_FLEET_ASYNC_IO_HH
#define TURBOFUZZ_FLEET_ASYNC_IO_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace turbofuzz::fleet
{

/** Single background writer with a capacity-1 (double-buffered)
 *  queue and a drain barrier. */
class AsyncBarrierIo
{
  public:
    AsyncBarrierIo() = default;
    ~AsyncBarrierIo();

    AsyncBarrierIo(const AsyncBarrierIo &) = delete;
    AsyncBarrierIo &operator=(const AsyncBarrierIo &) = delete;

    /**
     * Enqueue a write job. The writer thread is started lazily on
     * first use — a fleet with neither checkpointing nor a stats
     * file never pays for it. Blocks only while a *previous* job is
     * still queued (double-buffer back-pressure); the common case
     * returns immediately.
     */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void drain();

    /**
     * Host nanoseconds of job execution overlapped with epoch work
     * since the last call; resets the accumulator. The orchestrator
     * reads this at each barrier into the fleet.barrier.io_overlap_ns
     * counter.
     */
    uint64_t
    takeOverlapNs()
    {
        return overlapNs.exchange(0, std::memory_order_relaxed);
    }

  private:
    void writerLoop();

    std::mutex mtx;
    std::condition_variable cvWork;  ///< signals writer: job or stop
    std::condition_variable cvIdle;  ///< signals submit()/drain()
    std::function<void()> pending;   ///< at most one queued job
    bool hasPending = false;
    bool running = false; ///< a job is currently executing
    bool stopping = false;
    std::thread writer;
    std::atomic<uint64_t> overlapNs{0};
};

} // namespace turbofuzz::fleet

#endif // TURBOFUZZ_FLEET_ASYNC_IO_HH
