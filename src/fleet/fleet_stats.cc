#include "fleet/fleet_stats.hh"

#include <cstdio>
#include <string>

namespace turbofuzz::fleet
{

void
printFleetSummary(const FleetResult &result)
{
    TablePrinter table({"metric", "value"});
    table.addRow({"shards",
                  TablePrinter::integer(result.shardCount)});
    table.addRow({"epochs", TablePrinter::integer(result.epochs)});
    table.addRow({"sim budget/shard (s)",
                  TablePrinter::num(result.simBudgetSec)});
    table.addRow({"iterations",
                  TablePrinter::integer(result.totals.iterations)});
    table.addRow(
        {"executed instrs",
         TablePrinter::integer(result.totals.executedInstrs)});
    table.addRow(
        {"generated instrs",
         TablePrinter::integer(result.totals.generatedInstrs)});
    table.addRow({"merged coverage",
                  TablePrinter::integer(result.mergedFinalCoverage)});
    table.addRow({"mismatched iterations",
                  TablePrinter::integer(result.totals.mismatches)});
    table.addRow({"distinct shard mismatches",
                  TablePrinter::integer(result.mismatches.size())});
    table.addRow({"seeds exchanged",
                  TablePrinter::integer(result.seedsExchanged)});
    table.addRow({"seeds admitted",
                  TablePrinter::integer(result.seedsAdmitted)});
    table.addRow({"host time (s)",
                  TablePrinter::num(result.hostSeconds, 3)});
    table.addRow({"host commits/sec",
                  TablePrinter::integer(static_cast<uint64_t>(
                      result.hostCommitsPerSec))});
    table.addRow({"host iters/sec",
                  TablePrinter::integer(static_cast<uint64_t>(
                      result.hostItersPerSec))});
    table.print();

    for (const ShardMismatch &sm : result.mismatches) {
        std::printf("  shard %u @ %.2fs: %s\n", sm.shard,
                    sm.simTimeSec,
                    sm.mismatch.describe().c_str());
    }

    if (result.reproducersHarvested > 0) {
        std::printf("\ntriage: %llu reproducers -> %llu distinct "
                    "bugs\n",
                    static_cast<unsigned long long>(
                        result.reproducersHarvested),
                    static_cast<unsigned long long>(
                        result.bugTable.size()));
        triage::printTriageTable(result.bugTable);
    }
}

void
printFleetMetrics(const telemetry::MetricsSnapshot &metrics)
{
    std::printf("\nmetrics:\n");
    if (metrics.entries().empty()) {
        std::printf("  (no instruments registered)\n");
        return;
    }
    TablePrinter table({"instrument", "value"});
    for (const auto &[name, value] : metrics.entries()) {
        std::string shown;
        switch (value.kind) {
          case telemetry::MetricKind::Counter:
            shown = TablePrinter::integer(value.counter);
            break;
          case telemetry::MetricKind::Gauge:
            shown = TablePrinter::integer(value.gauge);
            break;
          case telemetry::MetricKind::Histogram: {
            const telemetry::HistogramValue &h = value.histogram;
            shown = "n=" + TablePrinter::integer(h.count) +
                    " mean=" +
                    TablePrinter::num(
                        h.count ? static_cast<double>(h.sum) /
                                      static_cast<double>(h.count)
                                : 0.0,
                        1) +
                    " max=" + TablePrinter::integer(h.max);
            break;
          }
        }
        table.addRow({name, shown});
    }
    table.print();
}

void
printFleetProvenance(const FleetResult &result)
{
    if (!result.provenanceOn)
        return;
    std::printf("\nprovenance:\n");
    TablePrinter table({"metric", "value"});
    table.addRow({"first hits recorded",
                  TablePrinter::integer(result.firstHitsRecorded)});
    table.addRow({"time to last new coverage (s)",
                  TablePrinter::num(result.lastNewCoverageSimSec, 2)});
    for (size_t i = 0; i < result.shardPlateauAgeSec.size(); ++i) {
        table.addRow({"shard " + std::to_string(i) +
                          " plateau age (s)",
                      TablePrinter::num(result.shardPlateauAgeSec[i],
                                        2)});
    }
    table.print();
}

} // namespace turbofuzz::fleet
