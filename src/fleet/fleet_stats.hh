/**
 * @file
 * Aggregated results of a fleet campaign.
 *
 * The orchestrator appends one sample per epoch barrier to the
 * fleet-wide series: merged coverage, iteration throughput over the
 * epoch, and prevalence. Per-shard coverage trajectories and the
 * harvested mismatch set ride along for the benches and tests.
 */

#ifndef TURBOFUZZ_FLEET_FLEET_STATS_HH
#define TURBOFUZZ_FLEET_FLEET_STATS_HH

#include <vector>

#include "checker/diff_checker.hh"
#include "common/concurrent_stats.hh"
#include "common/stats.hh"
#include "telemetry/metrics.hh"
#include "triage/triage_queue.hh"

namespace turbofuzz::fleet
{

/** A mismatch harvested from one shard at an epoch barrier. */
struct ShardMismatch
{
    unsigned shard;
    checker::Mismatch mismatch;
    double simTimeSec; ///< shard-local time of the snapshot capture
};

/** Everything a fleet run produces. */
struct FleetResult
{
    /** Merged coverage vs simulated time (one sample per epoch). */
    TimeSeries mergedCoverage{"fleet-coverage"};

    /** Fleet iterations per simulated second, per epoch. */
    TimeSeries throughput{"fleet-iters-per-sec"};

    /** Fleet-wide prevalence (executed-in-fuzz-region fraction). */
    TimeSeries prevalence{"fleet-prevalence"};

    /** Per-shard coverage trajectories (index = shard). */
    std::vector<TimeSeries> shardCoverage;

    /** First mismatch of every shard that hit one, in shard order. */
    std::vector<ShardMismatch> mismatches;

    /**
     * Per-bug table: harvested reproducers deduplicated by signature
     * and minimized (when FleetConfig::triageEnabled), in
     * first-detection order. This is the run's actual deliverable —
     * distinct bugs with minimal reproducers — rather than the raw
     * mismatch stream.
     */
    std::vector<triage::TriageRow> bugTable;

    /** Reproducers harvested across all shards and epochs. */
    uint64_t reproducersHarvested = 0;

    /** Campaign counters summed over all shards. */
    StatsSnapshot totals;

    /** Final merged (union) coverage of the whole fleet. */
    uint64_t mergedFinalCoverage = 0;

    /** Seeds offered / admitted across all exchanges. */
    uint64_t seedsExchanged = 0;
    uint64_t seedsAdmitted = 0;

    unsigned shardCount = 0;
    unsigned epochs = 0;
    double simBudgetSec = 0.0; ///< per-shard simulated budget
    double hostSeconds = 0.0;  ///< wall-clock cost of run()

    /**
     * Wall-clock throughput of the whole fleet (committed
     * instructions and iterations per host second). Everything else
     * in this struct reports simulated time; these two are what make
     * real engine speedups visible run-over-run.
     */
    double hostCommitsPerSec = 0.0;
    double hostItersPerSec = 0.0;

    /**
     * Host nanoseconds spent in each epoch barrier, and the coverage-
     * merge share of it (delta publish + reduction + apply, or the
     * serial reference merge). One entry per completed barrier of
     * THIS run() call — host timing is not checkpointed, so a
     * resumed run reports only its own barriers. Informational:
     * excluded from the determinism comparisons, consumed by
     * bench/fleet_scaling.cc's per-epoch columns.
     */
    std::vector<uint64_t> epochBarrierNs;
    std::vector<uint64_t> epochMergeNs;

    /**
     * End-of-run merged telemetry: every shard registry plus the
     * orchestrator's own, combined with MetricsSnapshot::merge
     * (counters add, gauges add, histograms union). Always populated
     * — the metrics hot path is on whether or not a reporter
     * consumes it.
     */
    telemetry::MetricsSnapshot metrics;

    /**
     * Provenance summary (docs/provenance.md), populated only when
     * FleetConfig::provenance: global first-hit count, the simulated
     * time the fleet last discovered new coverage, and each shard's
     * plateau age (end of run minus the shard's own last first-hit;
     * the full budget when a shard never recorded one). All derived
     * from the first-hit ledgers — observational by construction.
     */
    bool provenanceOn = false;
    uint64_t firstHitsRecorded = 0;
    double lastNewCoverageSimSec = 0.0;
    std::vector<double> shardPlateauAgeSec;
};

/** Print a human-readable summary table of a fleet run. */
void printFleetSummary(const FleetResult &result);

/**
 * Print the end-of-run metrics section (fleet summaries stay
 * byte-identical without telemetry flags; callers print this only
 * when telemetry output was requested). Histograms are shown as
 * count/mean/max.
 */
void printFleetMetrics(const telemetry::MetricsSnapshot &metrics);

/**
 * Print the ledger-derived provenance section (time-to-last-new-
 * coverage plus per-shard plateau-age rows). Opt-in like
 * printFleetMetrics: the default summary stays byte-identical when
 * provenance was not requested. No-op unless result.provenanceOn.
 */
void printFleetProvenance(const FleetResult &result);

} // namespace turbofuzz::fleet

#endif // TURBOFUZZ_FLEET_FLEET_STATS_HH
