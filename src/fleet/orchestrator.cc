#include "fleet/orchestrator.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "common/logging.hh"
#include "fleet/worker_pool.hh"
#include "fuzzer/generator.hh"
#include "soc/snapshot.hh"
#include "telemetry/clock.hh"

namespace turbofuzz::fleet
{

FleetOrchestrator::FleetOrchestrator(
    const FleetConfig &config,
    const harness::CampaignOptions &campaign_template,
    const fuzzer::FuzzerOptions &fuzzer_template,
    const isa::InstructionLibrary *library, SyncPolicy policy)
    : cfg(config), sync(policy),
      triage_(triage::MinimizeOptions{cfg.triageReplayBudget, true})
{
    TF_ASSERT(cfg.shardCount >= 1, "fleet needs at least one shard");
    TF_ASSERT(library != nullptr, "fleet requires a library");

    // Telemetry wiring happens before shard construction so shard
    // campaigns can capture the recorder pointer. All of it is
    // observational: tracing/stats on vs off yields identical
    // coverage, mismatches and stimulus (tests/telemetry/).
    if (!cfg.traceOut.empty()) {
        trace_ = std::make_unique<telemetry::TraceRecorder>(
            cfg.traceSampleEvery);
    }
    mEpochs = fleetMetrics.counter("fleet.epochs");
    mBarrierNs = fleetMetrics.counter("fleet.barrier_ns");
    mCheckpoints = fleetMetrics.counter("fleet.checkpoints");
    mStatsEmits = fleetMetrics.counter("fleet.stats_emits");
    mMergeNs = fleetMetrics.counter("fleet.barrier.merge_ns");
    mReduceNs = fleetMetrics.counter("fleet.barrier.reduce_ns");
    mExchangeNs = fleetMetrics.counter("fleet.barrier.exchange_ns");
    mIoOverlapNs =
        fleetMetrics.counter("fleet.barrier.io_overlap_ns");
    triage_.bindTelemetry(&fleetMetrics, trace_.get());
    if (!cfg.statsFile.empty()) {
        std::string stats_error;
        if (!reporter.open(cfg.statsFile, &stats_error))
            warn("fleet stats disabled: %s", stats_error.c_str());
    }

    shards.reserve(cfg.shardCount);
    for (unsigned i = 0; i < cfg.shardCount; ++i) {
        harness::CampaignOptions copts = campaign_template;
        // One instrumentation seed fleet-wide: coverage bit positions
        // must denote the same DUT state on every shard or the merge
        // would OR apples into oranges. The feedback configuration is
        // likewise fleet-wide so per-model merges stay meaningful.
        copts.seed = cfg.fleetSeed;
        copts.coverageModel = cfg.coverageModel;
        copts.maxReproducers =
            cfg.triageEnabled ? cfg.maxReproducersPerShard : 0;
        copts.trace = trace_.get();
        copts.stageTiming = cfg.stageTiming;
        // Provenance rides the same observational contract as the
        // telemetry above; the shard index keys first-hit
        // attributions and the min-wins tie-break.
        copts.provenance = cfg.provenance;
        copts.provenanceShard = i;
        fuzzer::FuzzerOptions fopts = fuzzer_template;
        fopts.seed = cfg.shardSeed(i);
        fopts.scheduler = cfg.scheduler;
        shards.push_back(std::make_unique<FleetShard>(
            i, std::move(copts), fopts, library));
    }
    globalMap = std::make_unique<coverage::CoverageMap>(
        &shards[0]->campaign().instrumentation());
    if (shards[0]->campaign().csrModel())
        globalCsr = std::make_unique<coverage::CsrTransitionModel>();
    if (shards[0]->campaign().hitCountModel())
        globalHit = std::make_unique<coverage::HitCountModel>();
    mismatchHarvested.assign(cfg.shardCount, false);
}

telemetry::MetricsSnapshot
FleetOrchestrator::mergedMetrics() const
{
    telemetry::MetricsSnapshot merged = fleetMetrics.snapshot();
    for (const auto &s : shards) {
        std::string merge_error;
        if (!merged.merge(s->campaign().metrics().snapshot(),
                          &merge_error)) {
            warn("fleet metrics merge (shard %u): %s", s->index(),
                 merge_error.c_str());
        }
    }
    return merged;
}

void
FleetOrchestrator::maybeEmitStats(double sim_time_sec,
                                  unsigned epoch_idx)
{
    if (!reporter.isOpen())
        return;
    // Cadence 0 means every barrier; otherwise emit at the first
    // barrier at or past the cursor, then advance it past the
    // emission time (an epoch longer than the cadence does not cause
    // a burst of catch-up lines).
    if (cfg.statsEverySec > 0.0) {
        if (sim_time_sec < nextStatsEmitSec)
            return;
        while (nextStatsEmitSec <= sim_time_sec)
            nextStatsEmitSec += cfg.statsEverySec;
    }
    // Render on this thread (deterministic content, reporter-owned
    // host clock), write on the background thread: the fwrite+fflush
    // pair is the slow part and nothing downstream reads it back.
    std::string line =
        reporter.formatLine(sim_time_sec, epoch_idx, mergedMetrics(),
                            provenanceStatsJson(sim_time_sec));
    asyncIo.submit([this, moved = std::move(line)] {
        reporter.writeLine(moved);
    });
    mStatsEmits->add(1);
}

std::string
FleetOrchestrator::provenanceStatsJson(double sim_time_sec) const
{
    if (!cfg.provenance)
        return {};
    const double last = globalLedger.lastHitSimSec();
    const double plateau =
        globalLedger.empty() ? sim_time_sec
                             : std::max(0.0, sim_time_sec - last);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"first_hits\":%llu,\"last_new_t_sim\":%.6f,"
                  "\"plateau_sec\":%.6f}",
                  static_cast<unsigned long long>(
                      globalLedger.size()),
                  last, plateau);
    return buf;
}

void
FleetOrchestrator::epochBarrier(unsigned epoch_idx,
                                FleetResult &result,
                                StatsSnapshot &prev_totals,
                                WorkerPool &pool)
{
    telemetry::ScopedStage barrier_stage(trace_.get(), mBarrierNs,
                                         "fleet.barrier");
    const uint64_t barrier_start = telemetry::nowNs();
    mEpochs->add(1);
    // I/O the background writer overlapped with the epoch that just
    // ran (checkpoint shipping, JSONL lines) — harvested here so the
    // counter stays on the orchestrator thread.
    mIoOverlapNs->add(asyncIo.takeOverlapNs());
    const unsigned n = shardCount();
    const double deadline = cfg.epochDeadline(epoch_idx);

    // 1. Global coverage merge. Two byte-identical implementations
    //    (tests/fleet/ FleetDelta):
    //
    //    Delta path (default): every shard publishes the words its
    //    models dirtied since the previous barrier — O(new coverage),
    //    in parallel on the pool since publication touches only
    //    shard-local state — then the per-shard deltas are combined
    //    in a binary reduction tree whose pairing is a pure function
    //    of shard indices (slot i+stride merges into slot i; pairs
    //    are disjoint within a round, rounds separated by pool
    //    barriers), and the single surviving delta is applied to the
    //    global models on this thread. Word-OR / bucket-OR /
    //    count-max / first-hit-min are all associative and
    //    commutative, so the tree shape changes nothing, and worker
    //    scheduling cannot reorder observable writes.
    //
    //    Serial path (--delta-barrier=false): the historical full-map
    //    merge in fixed shard order, kept as the reference the delta
    //    path is proven against. A rejected merge or delta
    //    (incompatible shapes — impossible for a fleet built by this
    //    orchestrator, but the maps refuse rather than silently
    //    corrupt) drops that contribution with a warning instead of
    //    poisoning the global view.
    const uint64_t merge_start = telemetry::nowNs();
    if (cfg.deltaBarrier) {
        epochDeltas.resize(n);
        for (unsigned i = 0; i < n; ++i) {
            FleetShard *shard_ptr = shards[i].get();
            coverage::CoverageDelta *slot = &epochDeltas[i];
            pool.submit(
                [shard_ptr, slot] { shard_ptr->publishDelta(*slot); });
        }
        pool.wait();

        const uint64_t reduce_start = telemetry::nowNs();
        for (unsigned stride = 1; stride < n; stride <<= 1) {
            for (unsigned i = 0; i + stride < n; i += 2 * stride) {
                coverage::CoverageDelta *into = &epochDeltas[i];
                coverage::CoverageDelta *from =
                    &epochDeltas[i + stride];
                pool.submit(
                    [into, from] { into->mergeFrom(*from); });
            }
            pool.wait();
        }
        mReduceNs->add(telemetry::nowNs() - reduce_start);

        std::string merge_error;
        if (!globalMap->mergeDelta(epochDeltas[0].mux,
                                   &merge_error))
            warn("fleet coverage delta: %s", merge_error.c_str());
        if (globalCsr &&
            !globalCsr->mergeDelta(epochDeltas[0].csr, &merge_error))
            warn("fleet csr delta: %s", merge_error.c_str());
        if (globalHit && !globalHit->mergeDelta(epochDeltas[0].edges,
                                                &merge_error))
            warn("fleet edge delta: %s", merge_error.c_str());
        // First-hit attributions ride the same reduction (min-wins
        // inside mergeFrom); the reduced batch lands here.
        if (cfg.provenance)
            globalLedger.mergeEntries(epochDeltas[0].firstHits);
    } else {
        for (auto &s : shards) {
            std::string merge_error;
            if (!globalMap->merge(s->campaign().coverageMap(),
                                  &merge_error)) {
                warn("fleet coverage merge (shard %u): %s",
                     s->index(), merge_error.c_str());
            }
            if (globalCsr &&
                !globalCsr->merge(*s->campaign().csrModel(),
                                  &merge_error)) {
                warn("fleet csr merge (shard %u): %s", s->index(),
                     merge_error.c_str());
            }
            if (globalHit &&
                !globalHit->merge(*s->campaign().hitCountModel(),
                                  &merge_error)) {
                warn("fleet edge merge (shard %u): %s", s->index(),
                     merge_error.c_str());
            }
        }

        // Provenance ledger merge, same fixed shard order. Min-wins
        // keeps the globally earliest attribution for every point;
        // re-merging cumulative shard ledgers is idempotent.
        if (cfg.provenance) {
            for (const auto &s : shards)
                globalLedger.merge(s->campaign().provenanceLedger());
        }
    }
    const uint64_t merge_ns = telemetry::nowNs() - merge_start;
    mMergeNs->add(merge_ns);
    result.epochMergeNs.push_back(merge_ns);

    // 2. Cross-shard seed exchange: each exporter publishes its top
    //    seeds once as shared immutable blocks and every importer
    //    reads the same blocks — no per-importer copies; a seed body
    //    is copied only when admission actually re-identifies it into
    //    the importing corpus. A 1-shard fleet has no peers and
    //    therefore no round trip at all — this keeps it bit-identical
    //    to a standalone campaign.
    const uint64_t exchange_start = telemetry::nowNs();
    if (n >= 2) {
        if (sync.topology() != ExchangeTopology::None &&
            sync.topK() > 0) {
            std::vector<std::vector<fuzzer::SeedShare>> exported(n);
            for (unsigned i = 0; i < n; ++i) {
                exported[i] =
                    shards[i]->exportSeedsShared(sync.topK());
            }
            for (unsigned i = 0; i < n; ++i) {
                for (unsigned src :
                     sync.importSources(i, n, epoch_idx)) {
                    result.seedsExchanged += exported[src].size();
                    result.seedsAdmitted +=
                        shards[i]->importSeedsShared(exported[src]);
                }
            }
        }
        // The coverage-readback round trip happens every barrier,
        // whether or not seeds travelled with it.
        for (auto &s : shards)
            s->chargeSync(sync.syncCostSec());
    }
    mExchangeNs->add(telemetry::nowNs() - exchange_start);

    // 3. Mismatch harvest: each shard's first mismatch, once.
    for (unsigned i = 0; i < n; ++i) {
        if (mismatchHarvested[i])
            continue;
        const auto &mm = shards[i]->campaign().firstMismatch();
        if (mm) {
            result.mismatches.push_back(
                {i, *mm,
                 shards[i]
                     ->campaign()
                     .mismatchSnapshot()
                     .captureTime()});
            mismatchHarvested[i] = true;
        }
    }

    // 3b. Triage harvest: every new reproducer flows into the queue,
    //     in fixed shard order (bucket numbering stays deterministic
    //     regardless of worker scheduling).
    if (cfg.triageEnabled) {
        for (auto &s : shards) {
            for (triage::Reproducer &r : s->drainNewReproducers()) {
                ++result.reproducersHarvested;
                triage_.push(std::move(r));
            }
        }
    }

    // 4. Fleet-wide samples for this epoch.
    StatsSnapshot totals{};
    for (const auto &s : shards) {
        const StatsSnapshot c = s->counters();
        totals.iterations += c.iterations;
        totals.executedInstrs += c.executedInstrs;
        totals.generatedInstrs += c.generatedInstrs;
        totals.mismatches += c.mismatches;
    }
    const StatsSnapshot delta = totals - prev_totals;
    const double epoch_len =
        deadline - (epoch_idx == 0
                        ? 0.0
                        : cfg.epochDeadline(epoch_idx - 1));
    result.mergedCoverage.record(
        deadline, static_cast<double>(globalMap->totalCovered()));
    if (epoch_len > 0.0) {
        result.throughput.record(
            deadline,
            static_cast<double>(delta.iterations) / epoch_len);
    }
    double fuzz_executed = 0.0, executed = 0.0;
    for (const auto &s : shards) {
        const double exec = static_cast<double>(
            s->campaign().executedInstructions());
        executed += exec;
        fuzz_executed += exec * s->campaign().prevalence();
    }
    result.prevalence.record(
        deadline, executed > 0.0 ? fuzz_executed / executed : 0.0);
    prev_totals = totals;

    // 5. Periodic JSONL stats (merged fleet metrics at this barrier).
    maybeEmitStats(deadline, epoch_idx);

    result.epochBarrierNs.push_back(telemetry::nowNs() -
                                    barrier_start);
}

FleetResult
FleetOrchestrator::run()
{
    ThroughputMeter meter;
    const unsigned n = shardCount();
    const unsigned epochs = cfg.epochCount();

    FleetResult &result = pending;
    result.shardCount = n;
    result.epochs = epochs;
    result.simBudgetSec = cfg.budgetSec;

    const unsigned threads =
        cfg.workerThreads ? cfg.workerThreads : n;
    WorkerPool pool(threads);

    // epochsDone is 0 for a fresh fleet and the checkpointed barrier
    // count after restoreCheckpoint() — the loop continues exactly
    // where the killed run stopped.
    for (unsigned e = epochsDone; e < epochs; ++e) {
        const double deadline = cfg.epochDeadline(e);
        {
            telemetry::TraceSpan epoch_span(trace_.get(),
                                            "fleet.epoch");
            for (auto &s : shards) {
                FleetShard *shard_ptr = s.get();
                pool.submit([shard_ptr, deadline, this] {
                    shard_ptr->runEpoch(deadline, &liveStats);
                });
            }
            pool.wait();
        }
        epochBarrier(e, result, prevTotals, pool);
        epochsDone = e + 1;

        if (cfg.checkpointEveryEpochs > 0 &&
            epochsDone % cfg.checkpointEveryEpochs == 0 &&
            epochsDone < epochs) {
            // Checkpoint failures (unsupported generator, disk full,
            // unwritable path) must never kill the campaign whose
            // progress the checkpoint exists to protect. The state
            // capture runs here (it must see the barrier-quiesced
            // fleet); only the disk write is shipped to the
            // background writer, overlapped with the next epoch.
            // mCheckpoints counts submissions so its value stays a
            // pure function of the epoch schedule.
            std::string error;
            auto snap = makeCheckpoint(&error);
            if (!snap) {
                warn("fleet checkpoint skipped: %s", error.c_str());
            } else {
                auto shared = std::make_shared<soc::Snapshot>(
                    std::move(*snap));
                const std::string path = cfg.checkpointPath;
                asyncIo.submit([shared, path] {
                    std::string io_error;
                    if (!shared->trySaveFile(path, &io_error)) {
                        warn("fleet checkpoint skipped: %s",
                             io_error.c_str());
                    }
                });
                mCheckpoints->add(1);
            }
        }
        if (cfg.haltAfterEpochs > 0 &&
            epochsDone >= cfg.haltAfterEpochs)
            break; // simulated kill: results cover completed epochs
    }

    for (const auto &s : shards)
        result.shardCoverage.push_back(s->coverageSeries());
    result.totals = prevTotals;
    result.mergedFinalCoverage = globalMap->totalCovered();

    // Post-run triage: minimize each distinct bug's exemplar and
    // emit the per-bug table.
    if (cfg.triageEnabled) {
        if (cfg.triageReplayBudget > 0)
            triage_.minimizeAll();
        result.bugTable = triage_.table();
    }
    // stop() freezes one clock reading for the time row and both
    // rate rows, so the printed summary is self-consistent.
    meter.addCommits(result.totals.executedInstrs);
    meter.addIterations(result.totals.iterations);
    meter.stop();
    result.hostSeconds = meter.elapsedSec();
    result.hostCommitsPerSec = meter.commitsPerSec();
    result.hostItersPerSec = meter.itersPerSec();

    // End-of-run telemetry. The background writer is drained first:
    // a pending checkpoint must be on disk before run() returns (the
    // resume tests read it immediately), a pending stats line must be
    // written before the reporter closes, and the final overlap
    // reading must land in the counter before the metrics merge.
    asyncIo.drain();
    mIoOverlapNs->add(asyncIo.takeOverlapNs());

    // The merged metrics view rides on the result; the trace document
    // (if any) is flushed to disk here so triage spans from
    // minimizeAll() are included.
    result.metrics = mergedMetrics();
    reporter.close();
    if (trace_ && !cfg.traceOut.empty()) {
        std::string trace_error;
        if (!trace_->writeFile(cfg.traceOut, &trace_error))
            warn("fleet trace not written: %s", trace_error.c_str());
    }

    // Provenance summary + report, all derived from the ledgers. A
    // shard that never recorded a first hit has been flat for the
    // whole run, so its plateau age is the full elapsed time.
    if (cfg.provenance) {
        const double end_sim =
            epochsDone > 0 ? cfg.epochDeadline(epochsDone - 1) : 0.0;
        result.provenanceOn = true;
        result.firstHitsRecorded = globalLedger.size();
        result.lastNewCoverageSimSec = globalLedger.lastHitSimSec();
        result.shardPlateauAgeSec.clear();
        for (const auto &s : shards) {
            const coverage::FirstHitLedger &sl =
                s->campaign().provenanceLedger();
            result.shardPlateauAgeSec.push_back(
                sl.empty()
                    ? end_sim
                    : std::max(0.0, end_sim - sl.lastHitSimSec()));
        }
        if (!cfg.provenanceOut.empty())
            writeProvenanceReport(result);
    }
    return result;
}

namespace
{

// v2: adds the fleet.feedback section (global auxiliary feedback
// model states) and rides on campaign state v2 inside the shard
// sections.
// v3: adds the fleet.telemetry section (orchestrator metric state +
// JSONL cadence cursor) and rides on campaign state v3 (per-shard
// metric state) inside the shard sections.
// v4: adds the fleet.provenance section (census flag + the global
// first-hit ledger when enabled) and rides on campaign state v4
// (per-shard ledger/forensics trailer) inside the shard sections.
// v5: the orchestrator registry gains the four fleet.barrier.*
// phase counters, changing the fleet.telemetry instrument census
// (MetricRegistry::loadState rejects a census mismatch, so v4 images
// cannot round-trip). Shard model dirty-word state is deliberately
// NOT serialized: loadState conservatively re-marks everything
// nonzero dirty, and the one-time over-publication that causes is a
// no-op under the OR/max/min-wins merges — the resume-equals-
// uninterrupted contract holds on the delta path.
constexpr uint32_t fleetCheckpointVersion = 5;

void
putStats(soc::SnapshotWriter &w, const StatsSnapshot &s)
{
    w.putU64(s.iterations);
    w.putU64(s.executedInstrs);
    w.putU64(s.generatedInstrs);
    w.putU64(s.mismatches);
}

StatsSnapshot
getStats(soc::SnapshotReader &r)
{
    StatsSnapshot s;
    s.iterations = r.getU64();
    s.executedInstrs = r.getU64();
    s.generatedInstrs = r.getU64();
    s.mismatches = r.getU64();
    return s;
}

} // namespace

std::optional<soc::Snapshot>
FleetOrchestrator::makeCheckpoint(std::string *error) const
{
    const unsigned n = shardCount();
    soc::Snapshot snap;
    snap.setTrigger("fleet checkpoint after epoch " +
                    std::to_string(epochsDone));

    soc::SnapshotWriter meta;
    meta.putU32(fleetCheckpointVersion);
    meta.putU32(epochsDone);
    meta.putU32(n);
    meta.putU64(cfg.fleetSeed);
    putStats(meta, prevTotals);
    meta.putU64(pending.seedsExchanged);
    meta.putU64(pending.seedsAdmitted);
    meta.putU64(pending.reproducersHarvested);
    for (unsigned i = 0; i < n; ++i)
        meta.putU8(mismatchHarvested[i] ? 1 : 0);
    snap.setSection("fleet.meta", meta.takeBuffer());

    soc::SnapshotWriter series;
    pending.mergedCoverage.saveState(series);
    pending.throughput.saveState(series);
    pending.prevalence.saveState(series);
    snap.setSection("fleet.series", series.takeBuffer());

    soc::SnapshotWriter mms;
    mms.putU32(static_cast<uint32_t>(pending.mismatches.size()));
    for (const ShardMismatch &sm : pending.mismatches) {
        mms.putU32(sm.shard);
        checker::writeMismatch(mms, sm.mismatch);
        mms.putF64(sm.simTimeSec);
    }
    snap.setSection("fleet.mismatches", mms.takeBuffer());

    soc::SnapshotWriter cov;
    globalMap->saveState(cov);
    snap.setSection("fleet.coverage", cov.takeBuffer());

    soc::SnapshotWriter fb;
    fb.putU8(coverage::auxModelCensus(globalCsr != nullptr,
                                      globalHit != nullptr));
    if (globalCsr)
        globalCsr->saveState(fb);
    if (globalHit)
        globalHit->saveState(fb);
    snap.setSection("fleet.feedback", fb.takeBuffer());

    soc::SnapshotWriter tri;
    triage_.saveState(tri);
    snap.setSection("fleet.triage", tri.takeBuffer());

    soc::SnapshotWriter tel;
    fleetMetrics.saveState(tel);
    tel.putF64(nextStatsEmitSec);
    snap.setSection("fleet.telemetry", tel.takeBuffer());

    soc::SnapshotWriter prov;
    prov.putU8(cfg.provenance ? 1 : 0);
    if (cfg.provenance)
        globalLedger.saveState(prov);
    snap.setSection("fleet.provenance", prov.takeBuffer());

    for (unsigned i = 0; i < n; ++i) {
        soc::SnapshotWriter shard_state;
        if (!shards[i]->saveState(shard_state)) {
            if (error)
                *error = "shard " + std::to_string(i) +
                         " generator does not support checkpointing";
            return std::nullopt;
        }
        snap.setSection("fleet.shard." + std::to_string(i),
                        shard_state.takeBuffer());
    }
    return snap;
}

bool
FleetOrchestrator::restoreCheckpoint(const soc::Snapshot &snap,
                                     std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = "fleet checkpoint: " + msg;
        return false;
    };
    const unsigned n = shardCount();
    TF_ASSERT(epochsDone == 0,
              "checkpoint can only be restored into a fresh fleet");

    const char *required[] = {"fleet.meta",       "fleet.series",
                              "fleet.mismatches", "fleet.coverage",
                              "fleet.feedback",   "fleet.triage",
                              "fleet.telemetry",  "fleet.provenance"};
    for (const char *name : required) {
        if (!snap.hasSection(name))
            return fail("missing section '" + std::string(name) +
                        "'");
    }

    try {
        soc::SnapshotReader meta(snap.section("fleet.meta"));
        if (meta.getU32() != fleetCheckpointVersion)
            return fail("unsupported checkpoint version");
        const uint32_t epochs_done = meta.getU32();
        if (epochs_done == 0 || epochs_done > cfg.epochCount())
            return fail("epoch count out of range");
        if (meta.getU32() != n)
            return fail("shard count mismatch");
        if (meta.getU64() != cfg.fleetSeed)
            return fail("fleet seed mismatch");
        prevTotals = getStats(meta);
        pending.seedsExchanged = meta.getU64();
        pending.seedsAdmitted = meta.getU64();
        pending.reproducersHarvested = meta.getU64();
        for (unsigned i = 0; i < n; ++i)
            mismatchHarvested[i] = meta.getU8() != 0;
        if (!meta.exhausted())
            return fail("trailing bytes in fleet.meta");

        soc::SnapshotReader series(snap.section("fleet.series"));
        if (!pending.mergedCoverage.loadState(series, error) ||
            !pending.throughput.loadState(series, error) ||
            !pending.prevalence.loadState(series, error))
            return false;
        if (!series.exhausted())
            return fail("trailing bytes in fleet.series");

        soc::SnapshotReader mms(snap.section("fleet.mismatches"));
        pending.mismatches.clear();
        const uint32_t mm_count = mms.getU32();
        if (mm_count > n)
            return fail("mismatch count exceeds shard count");
        for (uint32_t i = 0; i < mm_count; ++i) {
            ShardMismatch sm;
            sm.shard = mms.getU32();
            if (sm.shard >= n)
                return fail("mismatch shard index out of range");
            if (!checker::readMismatch(mms, sm.mismatch, error))
                return false;
            sm.simTimeSec = mms.getF64();
            pending.mismatches.push_back(sm);
        }
        if (!mms.exhausted())
            return fail("trailing bytes in fleet.mismatches");

        soc::SnapshotReader cov(snap.section("fleet.coverage"));
        if (!globalMap->loadState(cov, error))
            return false;
        if (!cov.exhausted())
            return fail("trailing bytes in fleet.coverage");

        soc::SnapshotReader fb(snap.section("fleet.feedback"));
        const uint8_t fb_census = fb.getU8();
        const uint8_t fb_expected = coverage::auxModelCensus(
            globalCsr != nullptr, globalHit != nullptr);
        if (fb_census != fb_expected) {
            return fail("feedback model census mismatch (checkpoint "
                        "from a different --coverage-model?)");
        }
        if (globalCsr && !globalCsr->loadState(fb, error))
            return false;
        if (globalHit && !globalHit->loadState(fb, error))
            return false;
        if (!fb.exhausted())
            return fail("trailing bytes in fleet.feedback");

        soc::SnapshotReader tri(snap.section("fleet.triage"));
        if (!triage_.loadState(tri, error))
            return false;
        if (!tri.exhausted())
            return fail("trailing bytes in fleet.triage");

        soc::SnapshotReader tel(snap.section("fleet.telemetry"));
        if (!fleetMetrics.loadState(tel, error))
            return false;
        nextStatsEmitSec = tel.getF64();
        if (!tel.exhausted())
            return fail("trailing bytes in fleet.telemetry");

        soc::SnapshotReader prov(snap.section("fleet.provenance"));
        const bool prov_census = prov.getU8() != 0;
        if (prov_census != cfg.provenance) {
            return fail("provenance census mismatch (checkpoint from "
                        "a run with a different --provenance "
                        "setting?)");
        }
        if (cfg.provenance && !globalLedger.loadState(prov, error))
            return false;
        if (!prov.exhausted())
            return fail("trailing bytes in fleet.provenance");

        for (unsigned i = 0; i < n; ++i) {
            const std::string name =
                "fleet.shard." + std::to_string(i);
            if (!snap.hasSection(name))
                return fail("missing section '" + name + "'");
            soc::SnapshotReader shard_state(snap.section(name));
            if (!shards[i]->loadState(shard_state, error))
                return false;
            if (!shard_state.exhausted())
                return fail("trailing bytes in '" + name + "'");
        }

        epochsDone = epochs_done;
        // Prime the live counters so mid-run reads stay monotone
        // across the resume.
        liveStats.add(prevTotals);
        return true;
    } catch (const soc::SnapshotFormatError &e) {
        return fail(e.what());
    }
}

namespace
{

std::string
jsonNum(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

std::string
jsonNum(uint64_t v)
{
    return std::to_string(v);
}

} // namespace

void
FleetOrchestrator::writeProvenanceReport(const FleetResult &result)
{
    using coverage::PointSpace;
    const unsigned n = shardCount();
    const double end_sim =
        epochsDone > 0 ? cfg.epochDeadline(epochsDone - 1) : 0.0;

    std::string out;
    out.reserve(1 << 16);
    out += "{\"schema\":\"turbofuzz.provenance.v1\"";
    out += ",\"shards\":" + jsonNum(uint64_t{n});
    out += ",\"epochs\":" + jsonNum(uint64_t{epochsDone});
    out += ",\"t_sim_end\":" + jsonNum(end_sim);
    out += ",\"first_hits_recorded\":" +
           jsonNum(uint64_t{globalLedger.size()});
    out += ",\"last_new_t_sim\":" +
           jsonNum(globalLedger.lastHitSimSec());

    // Every first hit with its full attribution, key-ordered so the
    // report is deterministic for a given fleet configuration.
    uint64_t space_hits[3] = {0, 0, 0};
    std::map<uint8_t, uint64_t> op_hits;
    out += ",\"time_to_hit\":[";
    bool first = true;
    for (const auto &[key, hit] : globalLedger.sortedEntries()) {
        const auto space = coverage::pointSpace(key);
        if (static_cast<uint8_t>(space) < 3)
            ++space_hits[static_cast<uint8_t>(space)];
        ++op_hits[hit.op];
        if (!first)
            out += ",";
        first = false;
        out += "{\"space\":\"";
        out += coverage::pointSpaceName(space);
        out += "\",\"module\":" +
               jsonNum(uint64_t{coverage::pointModule(key)});
        out += ",\"index\":" +
               jsonNum(uint64_t{coverage::pointIndex(key)});
        out += ",\"t_sim\":" + jsonNum(hit.simTimeSec);
        out += ",\"shard\":" + jsonNum(uint64_t{hit.shard});
        out += ",\"iteration\":" + jsonNum(hit.iteration);
        out += ",\"seed\":" + jsonNum(hit.seedId);
        out += ",\"op\":\"";
        out += coverage::provenanceOpName(hit.op);
        out += "\"}";
    }
    out += "]";

    // Never-hit targets. The mux space is enumerable (every module's
    // instrumented point count is known), so it is listed concretely
    // — module by module with example indices — and feeds the
    // targeted-monitoring roadmap item. CSR/edge spaces are sparse
    // keyed sets without a closed universe; they get hit counts only.
    out += ",\"never_hit\":{\"mux\":[";
    const auto &mods =
        shards[0]->campaign().instrumentation().modules();
    for (size_t m = 0; m < mods.size(); ++m) {
        const uint64_t points = mods[m].instrumentedPoints();
        uint64_t hit_count = 0;
        std::string examples;
        unsigned listed = 0;
        for (uint64_t idx = 0; idx < points; ++idx) {
            const uint64_t key =
                coverage::pointKey(PointSpace::Mux,
                                   static_cast<uint32_t>(m),
                                   static_cast<uint32_t>(idx));
            if (globalLedger.find(key)) {
                ++hit_count;
            } else if (listed < 16) {
                if (!examples.empty())
                    examples += ",";
                examples += jsonNum(idx);
                ++listed;
            }
        }
        if (m)
            out += ",";
        out += "{\"module\":\"" +
               telemetry::jsonEscape(mods[m].module().name()) + "\"";
        out += ",\"module_index\":" + jsonNum(uint64_t{m});
        out += ",\"points\":" + jsonNum(points);
        out += ",\"hit\":" + jsonNum(hit_count);
        out += ",\"never\":" + jsonNum(points - hit_count);
        out += ",\"examples\":[" + examples + "]}";
    }
    out += "],\"csr\":{\"hit\":" + jsonNum(space_hits[1]) + "}";
    out += ",\"edges\":{\"hit\":" + jsonNum(space_hits[2]) + "}}";

    // Operator attribution: unique coverage points first-hit under
    // each mutation operator.
    out += ",\"operators\":[";
    first = true;
    for (const auto &[op, count] : op_hits) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"op\":\"";
        out += coverage::provenanceOpName(op);
        out += "\",\"first_hits\":" + jsonNum(count) + "}";
    }
    out += "]";

    // Lineage depth histogram over every shard's resident corpus
    // (TurboFuzz generators only; baseline generators have none).
    std::map<uint32_t, uint64_t> depth_hist;
    for (const auto &s : shards) {
        auto *tfg = dynamic_cast<fuzzer::TurboFuzzGenerator *>(
            &s->campaign().generator());
        if (!tfg)
            continue;
        for (const fuzzer::Seed &seed :
             tfg->underlying().corpus().entries())
            ++depth_hist[seed.lineageDepth];
    }
    out += ",\"lineage_depth_histogram\":[";
    first = true;
    for (const auto &[depth, seeds_at] : depth_hist) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"depth\":" + jsonNum(uint64_t{depth});
        out += ",\"seeds\":" + jsonNum(seeds_at) + "}";
    }
    out += "]";

    // Per-shard forensics: ledger-derived plateau rows plus each
    // shard's recent-event ring and any mismatch-time ring dumps.
    out += ",\"shards_detail\":[";
    for (unsigned i = 0; i < n; ++i) {
        const harness::Campaign &camp = shards[i]->campaign();
        const coverage::FirstHitLedger &sl = camp.provenanceLedger();
        if (i)
            out += ",";
        out += "{\"shard\":" + jsonNum(uint64_t{i});
        out += ",\"first_hits\":" + jsonNum(uint64_t{sl.size()});
        out += ",\"last_new_t_sim\":" + jsonNum(sl.lastHitSimSec());
        out += ",\"plateau_sec\":" +
               jsonNum(i < result.shardPlateauAgeSec.size()
                           ? result.shardPlateauAgeSec[i]
                           : 0.0);
        out += ",\"forensics\":" + camp.forensics().toJson();
        out += ",\"forensics_dumps\":[";
        const auto &dumps = camp.forensicsDumps();
        for (size_t d = 0; d < dumps.size(); ++d) {
            if (d)
                out += ",";
            out += dumps[d];
        }
        out += "]}";
    }
    out += "]}\n";

    std::FILE *f = std::fopen(cfg.provenanceOut.c_str(), "w");
    if (!f) {
        warn("provenance report not written: cannot open '%s'",
             cfg.provenanceOut.c_str());
        return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
}

} // namespace turbofuzz::fleet
