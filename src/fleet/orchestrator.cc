#include "fleet/orchestrator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fleet/worker_pool.hh"

namespace turbofuzz::fleet
{

FleetOrchestrator::FleetOrchestrator(
    const FleetConfig &config,
    const harness::CampaignOptions &campaign_template,
    const fuzzer::FuzzerOptions &fuzzer_template,
    const isa::InstructionLibrary *library, SyncPolicy policy)
    : cfg(config), sync(policy),
      triage_(triage::MinimizeOptions{cfg.triageReplayBudget, true})
{
    TF_ASSERT(cfg.shardCount >= 1, "fleet needs at least one shard");
    TF_ASSERT(library != nullptr, "fleet requires a library");

    shards.reserve(cfg.shardCount);
    for (unsigned i = 0; i < cfg.shardCount; ++i) {
        harness::CampaignOptions copts = campaign_template;
        // One instrumentation seed fleet-wide: coverage bit positions
        // must denote the same DUT state on every shard or the merge
        // would OR apples into oranges.
        copts.seed = cfg.fleetSeed;
        copts.maxReproducers =
            cfg.triageEnabled ? cfg.maxReproducersPerShard : 0;
        fuzzer::FuzzerOptions fopts = fuzzer_template;
        fopts.seed = cfg.shardSeed(i);
        shards.push_back(std::make_unique<FleetShard>(
            i, std::move(copts), fopts, library));
    }
    globalMap = std::make_unique<coverage::CoverageMap>(
        &shards[0]->campaign().instrumentation());
    mismatchHarvested.assign(cfg.shardCount, false);
}

void
FleetOrchestrator::epochBarrier(unsigned epoch_idx,
                                FleetResult &result,
                                StatsSnapshot &prev_totals)
{
    const unsigned n = shardCount();
    const double deadline = cfg.epochDeadline(epoch_idx);

    // 1. Global coverage merge (fixed shard order).
    for (auto &s : shards)
        globalMap->merge(s->campaign().coverageMap());

    // 2. Cross-shard seed exchange. A 1-shard fleet has no peers and
    //    therefore no round trip at all — this keeps it bit-identical
    //    to a standalone campaign.
    if (n >= 2) {
        if (sync.topology() != ExchangeTopology::None &&
            sync.topK() > 0) {
            std::vector<std::vector<fuzzer::Seed>> exported(n);
            for (unsigned i = 0; i < n; ++i)
                exported[i] = shards[i]->exportSeeds(sync.topK());
            for (unsigned i = 0; i < n; ++i) {
                for (unsigned src :
                     sync.importSources(i, n, epoch_idx)) {
                    result.seedsExchanged += exported[src].size();
                    result.seedsAdmitted +=
                        shards[i]->importSeeds(exported[src]);
                }
            }
        }
        // The coverage-readback round trip happens every barrier,
        // whether or not seeds travelled with it.
        for (auto &s : shards)
            s->chargeSync(sync.syncCostSec());
    }

    // 3. Mismatch harvest: each shard's first mismatch, once.
    for (unsigned i = 0; i < n; ++i) {
        if (mismatchHarvested[i])
            continue;
        const auto &mm = shards[i]->campaign().firstMismatch();
        if (mm) {
            result.mismatches.push_back(
                {i, *mm,
                 shards[i]
                     ->campaign()
                     .mismatchSnapshot()
                     .captureTime()});
            mismatchHarvested[i] = true;
        }
    }

    // 3b. Triage harvest: every new reproducer flows into the queue,
    //     in fixed shard order (bucket numbering stays deterministic
    //     regardless of worker scheduling).
    if (cfg.triageEnabled) {
        for (auto &s : shards) {
            for (triage::Reproducer &r : s->drainNewReproducers()) {
                ++result.reproducersHarvested;
                triage_.push(std::move(r));
            }
        }
    }

    // 4. Fleet-wide samples for this epoch.
    StatsSnapshot totals{};
    for (const auto &s : shards) {
        const StatsSnapshot c = s->counters();
        totals.iterations += c.iterations;
        totals.executedInstrs += c.executedInstrs;
        totals.generatedInstrs += c.generatedInstrs;
        totals.mismatches += c.mismatches;
    }
    const StatsSnapshot delta = totals - prev_totals;
    const double epoch_len =
        deadline - (epoch_idx == 0
                        ? 0.0
                        : cfg.epochDeadline(epoch_idx - 1));
    result.mergedCoverage.record(
        deadline, static_cast<double>(globalMap->totalCovered()));
    if (epoch_len > 0.0) {
        result.throughput.record(
            deadline,
            static_cast<double>(delta.iterations) / epoch_len);
    }
    double fuzz_executed = 0.0, executed = 0.0;
    for (const auto &s : shards) {
        const double exec = static_cast<double>(
            s->campaign().executedInstructions());
        executed += exec;
        fuzz_executed += exec * s->campaign().prevalence();
    }
    result.prevalence.record(
        deadline, executed > 0.0 ? fuzz_executed / executed : 0.0);
    prev_totals = totals;
}

FleetResult
FleetOrchestrator::run()
{
    ThroughputMeter meter;
    const unsigned n = shardCount();
    const unsigned epochs = cfg.epochCount();

    FleetResult result;
    result.shardCount = n;
    result.epochs = epochs;
    result.simBudgetSec = cfg.budgetSec;

    const unsigned threads =
        cfg.workerThreads ? cfg.workerThreads : n;
    WorkerPool pool(threads);

    StatsSnapshot prev_totals{};
    for (unsigned e = 0; e < epochs; ++e) {
        const double deadline = cfg.epochDeadline(e);
        for (auto &s : shards) {
            FleetShard *shard_ptr = s.get();
            pool.submit([shard_ptr, deadline, this] {
                shard_ptr->runEpoch(deadline, &liveStats);
            });
        }
        pool.wait();
        epochBarrier(e, result, prev_totals);
    }

    for (const auto &s : shards)
        result.shardCoverage.push_back(s->coverageSeries());
    result.totals = prev_totals;
    result.mergedFinalCoverage = globalMap->totalCovered();

    // Post-run triage: minimize each distinct bug's exemplar and
    // emit the per-bug table.
    if (cfg.triageEnabled) {
        if (cfg.triageReplayBudget > 0)
            triage_.minimizeAll();
        result.bugTable = triage_.table();
    }
    // stop() freezes one clock reading for the time row and both
    // rate rows, so the printed summary is self-consistent.
    meter.addCommits(result.totals.executedInstrs);
    meter.addIterations(result.totals.iterations);
    meter.stop();
    result.hostSeconds = meter.elapsedSec();
    result.hostCommitsPerSec = meter.commitsPerSec();
    result.hostItersPerSec = meter.itersPerSec();
    return result;
}

} // namespace turbofuzz::fleet
