/**
 * @file
 * Fleet orchestrator: N parallel campaign shards with epoch-barrier
 * synchronization.
 *
 * This is the reproduction's model of the paper's scaled-out
 * deployment: one TurboFuzzer + DUT per FPGA board, all driven by a
 * host that periodically (once per *epoch*) collects each board's
 * coverage map, merges it into the global picture, redistributes the
 * most productive seeds between boards and harvests mismatch
 * snapshots.
 *
 * Determinism contract: for a fixed (fleet seed, shard count, epoch
 * length, sync policy) the merged coverage trajectory, totals and
 * mismatch set are identical across runs regardless of host thread
 * scheduling, because
 *   - every shard is fully self-contained while an epoch runs
 *     (per-shard RNG streams derived from the fleet seed),
 *   - all cross-shard operations execute on the orchestrator thread
 *     at the barrier, in fixed shard order.
 * A 1-shard fleet reproduces a plain Campaign::run() bit-exactly
 * (shardSeed(0) == fleetSeed, and epoch slicing composes to the same
 * iteration sequence).
 */

#ifndef TURBOFUZZ_FLEET_ORCHESTRATOR_HH
#define TURBOFUZZ_FLEET_ORCHESTRATOR_HH

#include <memory>
#include <optional>
#include <vector>

#include "common/fleet_config.hh"
#include "coverage/coverage_map.hh"
#include "coverage/provenance.hh"
#include "fleet/async_io.hh"
#include "fleet/fleet_stats.hh"
#include "fleet/shard.hh"
#include "fleet/sync_policy.hh"
#include "harness/campaign.hh"
#include "telemetry/metrics.hh"
#include "telemetry/reporter.hh"
#include "telemetry/trace.hh"
#include "triage/triage_queue.hh"

namespace turbofuzz::fleet
{

class WorkerPool;

/** Owns and synchronizes a fleet of campaign shards. */
class FleetOrchestrator
{
  public:
    /**
     * @param config            Fleet shape (shards, epochs, budget).
     * @param campaign_template Per-shard campaign options; the
     *                          orchestrator overrides the seed with
     *                          the fleet seed (instrumentation must
     *                          align across shards for the coverage
     *                          merge to be meaningful).
     * @param fuzzer_template   Per-shard fuzzer options; the seed is
     *                          overridden with shardSeed(i).
     * @param library           Shared read-only instruction library;
     *                          must outlive the orchestrator.
     * @param policy            Barrier seed-exchange policy.
     */
    FleetOrchestrator(const FleetConfig &config,
                      const harness::CampaignOptions &campaign_template,
                      const fuzzer::FuzzerOptions &fuzzer_template,
                      const isa::InstructionLibrary *library,
                      SyncPolicy policy);

    /** Convenience: policy derived from the config. */
    FleetOrchestrator(const FleetConfig &config,
                      const harness::CampaignOptions &campaign_template,
                      const fuzzer::FuzzerOptions &fuzzer_template,
                      const isa::InstructionLibrary *library)
        : FleetOrchestrator(config, campaign_template, fuzzer_template,
                            library, SyncPolicy::fromConfig(config))
    {}

    /**
     * Run the fleet to its budget (or FleetConfig::haltAfterEpochs).
     * Call at most once. When FleetConfig::checkpointEveryEpochs is
     * set, a full fleet checkpoint is written to
     * FleetConfig::checkpointPath after every Nth epoch barrier.
     */
    FleetResult run();

    /**
     * Serialize the complete mid-campaign fleet state — every
     * shard's campaign, the merged coverage, the triage queue,
     * harvest bookkeeping and the partial result series — into a
     * versioned snapshot-section image. Valid at epoch barriers
     * (run() calls it between epochs; callers use it only before
     * run()). Returns std::nullopt when a shard generator cannot
     * checkpoint.
     */
    std::optional<soc::Snapshot>
    makeCheckpoint(std::string *error = nullptr) const;

    /**
     * Resume a killed fleet: restore a makeCheckpoint() image into
     * this freshly constructed orchestrator (which must have been
     * built with the same config, templates and library), then call
     * run() to continue from the checkpointed epoch. The combined
     * run is bit-identical to an uninterrupted one (enforced by
     * tests/fleet/).
     * @return false with @p error set on malformed or mismatched
     *         input; the orchestrator must not be run afterwards.
     */
    bool restoreCheckpoint(const soc::Snapshot &snap,
                           std::string *error = nullptr);

    /** Global (union) coverage across all shards. */
    const coverage::CoverageMap &globalCoverage() const
    {
        return *globalMap;
    }

    /** Global CSR-transition coverage; nullptr unless the fleet runs
     *  with --coverage-model csr/composite. */
    const coverage::CsrTransitionModel *globalCsrCoverage() const
    {
        return globalCsr.get();
    }

    /** Global hit-count edge coverage; nullptr unless the fleet runs
     *  with --coverage-model edges/composite. */
    const coverage::HitCountModel *globalHitCoverage() const
    {
        return globalHit.get();
    }

    FleetShard &shard(unsigned i) { return *shards[i]; }
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards.size());
    }

    /** Live counters (safe to read from another thread mid-run). */
    StatsSnapshot liveCounters() const { return liveStats.snapshot(); }

    /** The triage queue accumulating harvested reproducers. */
    const triage::TriageQueue &triageQueue() const { return triage_; }

    /**
     * Merged fleet telemetry: every shard campaign's registry plus
     * the orchestrator's own, combined via MetricsSnapshot::merge.
     * Rebuilt from snapshots on every call (counters are cumulative,
     * so re-merging persistent registries would double-count).
     * Barrier/post-run use only — shard registries are single-
     * threaded and must not be snapshotted while an epoch runs.
     */
    telemetry::MetricsSnapshot mergedMetrics() const;

    /** The trace recorder, or nullptr when tracing is off. */
    telemetry::TraceRecorder *traceRecorder()
    {
        return trace_.get();
    }

    /**
     * Global first-hit ledger: shard ledgers merged (min-wins) at
     * every epoch barrier. Empty unless FleetConfig::provenance.
     */
    const coverage::FirstHitLedger &provenanceLedger() const
    {
        return globalLedger;
    }

  private:
    /** Barrier-time work after epoch @p epoch_idx; updates result.
     *  @p pool runs the delta publications and the merge reduction
     *  tree (docs/fleet.md "Epoch barrier anatomy"). */
    void epochBarrier(unsigned epoch_idx, FleetResult &result,
                      StatsSnapshot &prev_totals, WorkerPool &pool);

    FleetConfig cfg;
    SyncPolicy sync;
    std::vector<std::unique_ptr<FleetShard>> shards;
    std::unique_ptr<coverage::CoverageMap> globalMap;

    /** Global views of the auxiliary feedback models, mirroring the
     *  shard configuration; merged at every epoch barrier. */
    std::unique_ptr<coverage::CsrTransitionModel> globalCsr;
    std::unique_ptr<coverage::HitCountModel> globalHit;

    /**
     * Global first-hit view (docs/provenance.md). Min-wins merge
     * makes re-merging the cumulative shard ledgers at every barrier
     * idempotent, so no per-epoch delta tracking is needed.
     */
    coverage::FirstHitLedger globalLedger;
    ConcurrentStats liveStats;
    std::vector<bool> mismatchHarvested;
    triage::TriageQueue triage_;

    /**
     * Per-shard delta slots for the barrier's publish/reduce phases,
     * held as a member so the index/value vectors' capacity survives
     * across epochs (steady-state barriers allocate nothing for
     * deltas).
     */
    std::vector<coverage::CoverageDelta> epochDeltas;

    /**
     * Background writer for checkpoint shipping and JSONL stats
     * (docs/fleet.md "Epoch barrier anatomy"): bytes are snapshotted
     * on the orchestrator thread, written while the next epoch runs.
     * Drained before run() returns, so nothing observable changes.
     */
    AsyncBarrierIo asyncIo;

    /**
     * Cross-epoch accumulators, held as members (rather than run()
     * locals) so a checkpoint can capture them mid-campaign and a
     * restore can prime a fresh orchestrator with them.
     */
    FleetResult pending;
    StatsSnapshot prevTotals{};
    unsigned epochsDone = 0;

    /**
     * Telemetry. The recorder is shared by every shard (worker
     * threads; the recorder is thread-safe) and owned here so its
     * lifetime covers the shards'. fleetMetrics holds the
     * orchestrator's own instruments (fleet.* names); per-shard
     * registries live inside the campaigns. nextStatsEmitSec is the
     * JSONL cadence cursor (simulated seconds), checkpointed so a
     * resumed run does not re-emit covered intervals.
     */
    std::unique_ptr<telemetry::TraceRecorder> trace_;
    telemetry::MetricRegistry fleetMetrics;
    telemetry::Counter *mEpochs = nullptr;
    telemetry::Counter *mBarrierNs = nullptr;
    telemetry::Counter *mCheckpoints = nullptr;
    telemetry::Counter *mStatsEmits = nullptr;

    /** Barrier phase breakdown (docs/fleet.md): coverage merge
     *  total, reduction-tree share of it, seed exchange, and host
     *  nanoseconds of I/O overlapped with epoch execution. */
    telemetry::Counter *mMergeNs = nullptr;
    telemetry::Counter *mReduceNs = nullptr;
    telemetry::Counter *mExchangeNs = nullptr;
    telemetry::Counter *mIoOverlapNs = nullptr;
    telemetry::JsonlReporter reporter;
    double nextStatsEmitSec = 0.0;

    /** Emit a JSONL stats line when the cadence cursor is due. */
    void maybeEmitStats(double sim_time_sec, unsigned epoch_idx);

    /** The JSONL "provenance" object for the barrier at
     *  @p sim_time_sec; empty string when provenance is off. */
    std::string provenanceStatsJson(double sim_time_sec) const;

    /** Write the "turbofuzz.provenance.v1" report to
     *  FleetConfig::provenanceOut (end of run()). */
    void writeProvenanceReport(const FleetResult &result);
};

} // namespace turbofuzz::fleet

#endif // TURBOFUZZ_FLEET_ORCHESTRATOR_HH
