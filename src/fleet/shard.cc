#include "fleet/shard.hh"

#include "fuzzer/generator.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::fleet
{

FleetShard::FleetShard(unsigned index,
                       harness::CampaignOptions options,
                       fuzzer::FuzzerOptions fopts,
                       const isa::InstructionLibrary *library)
    : idx(index), covSeries("shard-" + std::to_string(index))
{
    camp = std::make_unique<harness::Campaign>(
        std::move(options),
        std::make_unique<fuzzer::TurboFuzzGenerator>(fopts, library));
}

StatsSnapshot
FleetShard::counters() const
{
    return {camp->iterations(), camp->executedInstructions(),
            camp->generatedInstructions(),
            camp->mismatchedIterations()};
}

void
FleetShard::runEpoch(double deadline_sec, ConcurrentStats *aggregate)
{
    if (stoppedEarly)
        return;
    const StatsSnapshot before = counters();
    if (!camp->runSlice(deadline_sec, covSeries))
        stoppedEarly = true;
    if (aggregate)
        aggregate->add(counters() - before);
}

std::vector<fuzzer::Seed>
FleetShard::exportSeeds(size_t k)
{
    return camp->generator().exportTopSeeds(k);
}

size_t
FleetShard::importSeeds(std::vector<fuzzer::Seed> seeds)
{
    return camp->injectSeeds(std::move(seeds));
}

std::vector<fuzzer::SeedShare>
FleetShard::exportSeedsShared(size_t k)
{
    return camp->generator().exportTopSharedSeeds(k);
}

size_t
FleetShard::importSeedsShared(
    const std::vector<fuzzer::SeedShare> &shares)
{
    return camp->injectSharedSeeds(shares);
}

void
FleetShard::publishDelta(coverage::CoverageDelta &out)
{
    camp->publishCoverageDelta(out);
}

void
FleetShard::chargeSync(double cost_sec)
{
    if (cost_sec > 0.0)
        camp->platform().chargeSeconds(cost_sec);
}

bool
FleetShard::saveState(soc::SnapshotWriter &out) const
{
    out.putU8(stoppedEarly ? 1 : 0);
    out.putU64(reprosHarvested);
    covSeries.saveState(out);
    return camp->saveState(out);
}

bool
FleetShard::loadState(soc::SnapshotReader &in, std::string *error)
{
    try {
        stoppedEarly = in.getU8() != 0;
        reprosHarvested = in.getU64();
        if (!covSeries.loadState(in, error))
            return false;
        return camp->loadState(in, error);
    } catch (const soc::SnapshotFormatError &e) {
        if (error)
            *error = e.what();
        return false;
    }
}

std::vector<triage::Reproducer>
FleetShard::drainNewReproducers()
{
    const auto &all = camp->reproducers();
    std::vector<triage::Reproducer> fresh;
    for (; reprosHarvested < all.size(); ++reprosHarvested) {
        triage::Reproducer r = all[reprosHarvested];
        r.shard = idx;
        fresh.push_back(std::move(r));
    }
    return fresh;
}

} // namespace turbofuzz::fleet
