#include "fleet/shard.hh"

#include "fuzzer/generator.hh"

namespace turbofuzz::fleet
{

FleetShard::FleetShard(unsigned index,
                       harness::CampaignOptions options,
                       fuzzer::FuzzerOptions fopts,
                       const isa::InstructionLibrary *library)
    : idx(index), covSeries("shard-" + std::to_string(index))
{
    camp = std::make_unique<harness::Campaign>(
        std::move(options),
        std::make_unique<fuzzer::TurboFuzzGenerator>(fopts, library));
}

StatsSnapshot
FleetShard::counters() const
{
    return {camp->iterations(), camp->executedInstructions(),
            camp->generatedInstructions(),
            camp->mismatchedIterations()};
}

void
FleetShard::runEpoch(double deadline_sec, ConcurrentStats *aggregate)
{
    if (stoppedEarly)
        return;
    const StatsSnapshot before = counters();
    if (!camp->runSlice(deadline_sec, covSeries))
        stoppedEarly = true;
    if (aggregate)
        aggregate->add(counters() - before);
}

std::vector<fuzzer::Seed>
FleetShard::exportSeeds(size_t k)
{
    return camp->generator().exportTopSeeds(k);
}

size_t
FleetShard::importSeeds(std::vector<fuzzer::Seed> seeds)
{
    return camp->injectSeeds(std::move(seeds));
}

void
FleetShard::chargeSync(double cost_sec)
{
    if (cost_sec > 0.0)
        camp->platform().chargeSeconds(cost_sec);
}

std::vector<triage::Reproducer>
FleetShard::drainNewReproducers()
{
    const auto &all = camp->reproducers();
    std::vector<triage::Reproducer> fresh;
    for (; reprosHarvested < all.size(); ++reprosHarvested) {
        triage::Reproducer r = all[reprosHarvested];
        r.shard = idx;
        fresh.push_back(std::move(r));
    }
    return fresh;
}

} // namespace turbofuzz::fleet
