/**
 * @file
 * One fleet shard: a self-contained Campaign plus its epoch state.
 *
 * A shard models one FPGA board of the paper's scaled-out deployment:
 * it owns its own generator, DUT/REF pair, RTL model, instrumentation
 * and coverage map, and shares NOTHING mutable with other shards
 * while an epoch runs. All cross-shard interaction (coverage merge,
 * seed exchange, mismatch harvest) happens on the orchestrator thread
 * at epoch barriers — which is what makes fleet runs deterministic
 * regardless of host thread scheduling.
 */

#ifndef TURBOFUZZ_FLEET_SHARD_HH
#define TURBOFUZZ_FLEET_SHARD_HH

#include <memory>
#include <vector>

#include "common/concurrent_stats.hh"
#include "common/stats.hh"
#include "harness/campaign.hh"

namespace turbofuzz::fleet
{

/** A single parallel campaign instance. */
class FleetShard
{
  public:
    /**
     * @param index    Shard number within the fleet.
     * @param options  Campaign options (seed fields already set by
     *                 the orchestrator: instrumentation seed shared
     *                 fleet-wide, fuzzer seed per shard).
     * @param fopts    Fuzzer options for this shard's generator.
     * @param library  Shared read-only instruction library.
     */
    FleetShard(unsigned index, harness::CampaignOptions options,
               fuzzer::FuzzerOptions fopts,
               const isa::InstructionLibrary *library);

    /**
     * Run until the shard's simulated clock reaches @p deadline_sec.
     * Called on a worker thread; touches only shard-local state plus
     * the (atomic) fleet aggregator.
     */
    void runEpoch(double deadline_sec, ConcurrentStats *aggregate);

    /** Barrier-time: export the corpus's top @p k seeds. */
    std::vector<fuzzer::Seed> exportSeeds(size_t k);

    /** Barrier-time: import peer seeds; returns admitted count. */
    size_t importSeeds(std::vector<fuzzer::Seed> seeds);

    /** Barrier-time: publish the corpus's top @p k seeds as shared
     *  immutable blocks (zero-copy exchange). */
    std::vector<fuzzer::SeedShare> exportSeedsShared(size_t k);

    /** Barrier-time: import published peer seed blocks; returns
     *  admitted count (same dedup/admission as importSeeds). */
    size_t
    importSeedsShared(const std::vector<fuzzer::SeedShare> &shares);

    /**
     * Publish everything this shard's models learned since the
     * previous publication. Shard-local mutation only, so the
     * orchestrator may run publications for distinct shards
     * concurrently on the worker pool.
     */
    void publishDelta(coverage::CoverageDelta &out);

    /** Barrier-time: charge the host round-trip cost. */
    void chargeSync(double cost_sec);

    harness::Campaign &campaign() { return *camp; }
    const harness::Campaign &campaign() const { return *camp; }

    unsigned index() const { return idx; }
    const TimeSeries &coverageSeries() const { return covSeries; }

    /** Whether stopOnMismatch ended this shard early. */
    bool stopped() const { return stoppedEarly; }

    /** Campaign counters as a snapshot (barrier-time read). */
    StatsSnapshot counters() const;

    /**
     * Barrier-time: reproducers captured since the previous harvest,
     * stamped with this shard's index. Each reproducer is returned
     * exactly once across the shard's lifetime.
     */
    std::vector<triage::Reproducer> drainNewReproducers();

    /**
     * Checkpoint support: serialize the shard's campaign plus its
     * epoch-tracking state (coverage series, early-stop flag,
     * harvest cursor).
     * @return false when the campaign's generator cannot checkpoint.
     */
    bool saveState(soc::SnapshotWriter &out) const;

    /** Restore into a freshly constructed shard (same config).
     *  @return false with @p error set on malformed input. */
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr);

  private:
    unsigned idx;
    std::unique_ptr<harness::Campaign> camp;
    TimeSeries covSeries;
    bool stoppedEarly = false;
    size_t reprosHarvested = 0;
};

} // namespace turbofuzz::fleet

#endif // TURBOFUZZ_FLEET_SHARD_HH
