#include "fleet/sync_policy.hh"

namespace turbofuzz::fleet
{

std::vector<unsigned>
SyncPolicy::importSources(unsigned shard, unsigned shard_count,
                          uint64_t epoch) const
{
    std::vector<unsigned> sources;
    if (shard_count < 2 || k == 0)
        return sources;

    switch (topo) {
      case ExchangeTopology::None:
        break;
      case ExchangeTopology::Ring: {
        // Hop distance grows with the epoch (1, 2, 3, ... mod N,
        // skipping self) so every shard eventually hears from every
        // other one even in large rings.
        const unsigned hop = static_cast<unsigned>(
                                 epoch % (shard_count - 1)) +
                             1;
        sources.push_back((shard + shard_count - hop) % shard_count);
        break;
      }
      case ExchangeTopology::Broadcast:
        sources.reserve(shard_count - 1);
        for (unsigned j = 0; j < shard_count; ++j) {
            if (j != shard)
                sources.push_back(j);
        }
        break;
    }
    return sources;
}

} // namespace turbofuzz::fleet
