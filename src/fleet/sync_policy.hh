/**
 * @file
 * Epoch-barrier synchronization policy.
 *
 * Decides, for every epoch barrier, which peer shards each shard
 * imports seeds from, how many seeds travel, and what simulated
 * host<->board round-trip cost the barrier charges. All decisions are
 * pure functions of (shard, shardCount, epoch) so barriers replay
 * identically regardless of host thread scheduling.
 */

#ifndef TURBOFUZZ_FLEET_SYNC_POLICY_HH
#define TURBOFUZZ_FLEET_SYNC_POLICY_HH

#include <cstdint>
#include <vector>

#include "common/fleet_config.hh"

namespace turbofuzz::fleet
{

/** Deterministic seed-exchange schedule over epoch barriers. */
class SyncPolicy
{
  public:
    SyncPolicy(ExchangeTopology topology, size_t top_k,
               double sync_cost_sec)
        : topo(topology), k(top_k), costSec(sync_cost_sec)
    {}

    /** Build the policy a FleetConfig describes. */
    static SyncPolicy
    fromConfig(const FleetConfig &fc)
    {
        return SyncPolicy(fc.topology, fc.exchangeTopK,
                          fc.syncCostSec);
    }

    /**
     * Peer shards that @p shard imports seeds from at the end of
     * @p epoch, in deterministic order. Ring topology rotates the
     * source by one extra hop per epoch so long campaigns mix seeds
     * beyond nearest neighbours.
     */
    std::vector<unsigned> importSources(unsigned shard,
                                        unsigned shard_count,
                                        uint64_t epoch) const;

    /** Seeds each shard exports per barrier. */
    size_t topK() const { return k; }

    /** Simulated per-shard barrier cost (host round trip). */
    double syncCostSec() const { return costSec; }

    ExchangeTopology topology() const { return topo; }

  private:
    ExchangeTopology topo;
    size_t k;
    double costSec;
};

} // namespace turbofuzz::fleet

#endif // TURBOFUZZ_FLEET_SYNC_POLICY_HH
