#include "fleet/worker_pool.hh"

#include <algorithm>

namespace turbofuzz::fleet
{

WorkerPool::WorkerPool(unsigned threads)
{
    const unsigned n = std::max(1u, threads);
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cvWork.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
WorkerPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        queue.push_back(std::move(job));
        ++inFlight;
    }
    cvWork.notify_one();
}

void
WorkerPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    cvIdle.wait(lock, [this] { return inFlight == 0; });
}

void
WorkerPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cvWork.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mtx);
            --inFlight;
            if (inFlight == 0)
                cvIdle.notify_all();
        }
    }
}

} // namespace turbofuzz::fleet
