/**
 * @file
 * A minimal fixed-size thread pool for fleet epoch execution.
 *
 * The orchestrator submits one job per shard per epoch and then
 * blocks on wait() — the epoch barrier. Jobs must not throw; TurboFuzz
 * reports internal errors through panic()/TF_ASSERT (abort), never
 * exceptions.
 */

#ifndef TURBOFUZZ_FLEET_WORKER_POOL_HH
#define TURBOFUZZ_FLEET_WORKER_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace turbofuzz::fleet
{

/** Fixed set of worker threads with a submit/wait barrier API. */
class WorkerPool
{
  public:
    /** @param threads Worker count; clamped to >= 1. */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Enqueue a job. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

  private:
    void workerLoop();

    std::mutex mtx;
    std::condition_variable cvWork;  ///< signals workers: job or stop
    std::condition_variable cvIdle;  ///< signals wait(): all done
    std::deque<std::function<void()>> queue;
    size_t inFlight = 0; ///< queued + currently executing jobs
    bool stopping = false;
    std::vector<std::thread> workers;
};

} // namespace turbofuzz::fleet

#endif // TURBOFUZZ_FLEET_WORKER_POOL_HH
