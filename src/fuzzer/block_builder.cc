#include "fuzzer/block_builder.hh"

#include <array>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "isa/csr.hh"
#include "isa/encoding.hh"

namespace turbofuzz::fuzzer
{

using isa::Opcode;
using isa::Operands;
namespace csr = isa::csr;

bool
isControlFlowInsn(uint32_t insn)
{
    const isa::Decoded d = isa::decode(insn);
    return d.valid && d.desc->isControlFlow();
}

void
pcrelHiLo(int64_t delta, int64_t &hi20, int64_t &lo12)
{
    // Standard %pcrel split: hi = (delta + 0x800) >> 12, lo carries
    // the sign-extended remainder.
    hi20 = (delta + 0x800) >> 12;
    lo12 = delta - (hi20 << 12);
    TF_ASSERT(lo12 >= -2048 && lo12 <= 2047, "pcrel lo out of range");
}

BlockBuilder::BlockBuilder(const MemoryLayout &layout,
                           const isa::InstructionLibrary *library,
                           GenProbs probs)
    : memLayout(layout), lib(library), genProbs(probs)
{
    TF_ASSERT(lib != nullptr, "BlockBuilder requires a library");
}

uint16_t
BlockBuilder::pickCsr(Rng &rng) const
{
    // Write-safe CSR population; mtvec is excluded so the exception
    // templates keep working, which is what guarantees iteration
    // survival (§IV-C "templates with execution guarantee").
    static constexpr std::array<uint16_t, 14> pool = {
        csr::fflags, csr::frm, csr::fcsr, csr::mscratch,
        csr::sscratch, csr::mepc, csr::mcause, csr::mtval,
        csr::stval, csr::sepc, csr::scause, csr::minstret,
        csr::mcycle, csr::misa,
    };
    return pool[rng.range(pool.size())];
}

Operands
BlockBuilder::randomOperands(Opcode op, Rng &rng) const
{
    const isa::InstrDesc &d = isa::descOf(op);
    Operands o;
    o.rd = static_cast<uint8_t>(rng.range(32));
    o.rs1 = static_cast<uint8_t>(rng.range(32));
    o.rs2 = static_cast<uint8_t>(rng.range(32));
    o.rs3 = static_cast<uint8_t>(rng.range(32));
    // Mostly-valid rounding modes; reserved encodings (5/6) and DYN
    // stay reachable so rm-related traps are exercised, but rarely
    // enough that the exception templates keep prevalence high.
    if (genProbs.validRmOnly) {
        o.rm = static_cast<uint8_t>(rng.range(5));
    } else {
        const uint64_t rm_roll = rng.range(64);
        o.rm = rm_roll < 61 ? static_cast<uint8_t>(rm_roll % 5)
                            : (rm_roll < 63
                                   ? csr::rmDYN
                                   : static_cast<uint8_t>(
                                         5 + rm_roll % 2));
    }
    o.csr = pickCsr(rng);
    o.aq = rng.chance(1, 4);
    o.rl = rng.chance(1, 4);

    switch (d.fmt) {
      case isa::Format::I:
        o.imm = static_cast<int64_t>(rng.range(4096)) - 2048;
        break;
      case isa::Format::IShift:
        o.imm = static_cast<int64_t>(rng.range(64));
        break;
      case isa::Format::IShiftW:
        o.imm = static_cast<int64_t>(rng.range(32));
        break;
      case isa::Format::S:
        o.imm = static_cast<int64_t>(rng.range(4096)) - 2048;
        break;
      case isa::Format::U:
        o.imm = static_cast<int64_t>(rng.range(1 << 20));
        break;
      case isa::Format::CsrI:
        o.imm = static_cast<int64_t>(rng.range(32));
        break;
      case isa::Format::B:
      case isa::Format::J:
        o.imm = 0; // placeholder; fix-up assigns block targets
        break;
      default:
        break;
    }
    return o;
}

SeedBlock
BlockBuilder::buildRandomBlock(Rng &rng)
{
    SeedBlock block;
    Opcode prime;
    if (rng.chance(genProbs.controlFlowShare.num,
                   genProbs.controlFlowShare.den)) {
        // Control-flow primes at the observed 1:5-ish mix. The pool
        // is beq-heavy: random 64-bit operands are rarely equal, so
        // the overall taken-rate lands near the ~0.3 the executed-
        // fraction measurements imply (jal/jalr still arrive through
        // the general library path).
        static constexpr std::array<Opcode, 8> cfOps = {
            Opcode::Beq, Opcode::Beq,  Opcode::Beq, Opcode::Bne,
            Opcode::Blt, Opcode::Bge, Opcode::Bltu, Opcode::Bgeu,
        };
        prime = cfOps[rng.range(cfOps.size())];
        if (!lib->contains(prime))
            prime = lib->pick(rng);
    } else {
        prime = lib->pick(rng);
    }
    const isa::InstrDesc &d = isa::descOf(prime);

    // Filler: simple register-register work ahead of the prime keeps
    // the architectural context churning (these are still fuzzing
    // instructions). The LFSR-guided initial count is the "general
    // guidance" the paper describes.
    const unsigned filler = static_cast<unsigned>(
        rng.range(genProbs.maxFiller + 1));
    static constexpr std::array<Opcode, 6> fillerOps = {
        Opcode::Addi, Opcode::Add, Opcode::Xor,
        Opcode::Slli, Opcode::Andi, Opcode::Sub,
    };
    for (unsigned i = 0; i < filler; ++i) {
        const Opcode fop = fillerOps[rng.range(fillerOps.size())];
        block.insns.push_back(isa::encode(fop, randomOperands(fop, rng)));
    }

    Operands o = randomOperands(prime, rng);

    // Affiliated instructions establishing prerequisites.
    if (d.isMemAccess() || d.has(isa::FlagAtomic)) {
        const bool data_region =
            d.has(isa::FlagStore) || d.has(isa::FlagAtomic) ||
            rng.chance(genProbs.memDataRegion.num,
                       genProbs.memDataRegion.den);

        Operands addr;
        addr.rd = MemoryLayout::regScratch;
        if (data_region) {
            // Self-contained staging: lui x30, dataBase ; addi x30,
            // x30, off. Fuzzed instructions are free to clobber any
            // register, so blocks never rely on live-in state.
            Operands hi;
            hi.rd = MemoryLayout::regScratch;
            hi.imm = static_cast<int64_t>(memLayout.dataBase >> 12);
            block.insns.push_back(isa::encode(Opcode::Lui, hi));
            addr.rs1 = MemoryLayout::regScratch;
            addr.imm = static_cast<int64_t>(
                rng.range(memLayout.dataSize < 2048
                              ? memLayout.dataSize
                              : 2048));
            block.insns.push_back(isa::encode(Opcode::Addi, addr));
        } else {
            // Instruction-region read: auipc x30, 0 (+ small offset).
            addr.rs1 = 0;
            addr.imm = 0;
            block.insns.push_back(isa::encode(Opcode::Auipc, addr));
        }

        if (d.has(isa::FlagAtomic)) {
            // Alignment mask: andi x30, x30, -size.
            Operands align;
            align.rd = MemoryLayout::regScratch;
            align.rs1 = MemoryLayout::regScratch;
            align.imm = d.has(isa::FlagWordOp) ? -4 : -8;
            block.insns.push_back(isa::encode(Opcode::Andi, align));
            o.imm = 0;
        } else {
            // Keep the prime's own displacement small so the access
            // stays inside the mapped window.
            o.imm = static_cast<int64_t>(rng.range(64));
        }
        o.rs1 = MemoryLayout::regScratch;
    }

    if (d.has(isa::FlagJalr)) {
        // Target register staging: auipc/addi pair, patched by the
        // fix-up pass once block addresses are known.
        Operands hi;
        hi.rd = MemoryLayout::regScratch;
        hi.imm = 0;
        block.insns.push_back(isa::encode(Opcode::Auipc, hi));
        Operands lo;
        lo.rd = MemoryLayout::regScratch;
        lo.rs1 = MemoryLayout::regScratch;
        lo.imm = 0;
        block.insns.push_back(isa::encode(Opcode::Addi, lo));
        o.rs1 = MemoryLayout::regScratch;
        o.imm = 0;
    }

    block.primeIdx = static_cast<uint32_t>(block.insns.size());
    block.insns.push_back(isa::encode(prime, o));
    block.isControlFlow = d.isControlFlow();
    block.targetBlock = -1;

    // Architectural validation before the block can be committed.
    const isa::Decoded check =
        isa::decode(block.insns[block.primeIdx]);
    TF_ASSERT(check.valid && check.op == prime,
              "generated prime failed validation");
    return block;
}

void
BlockBuilder::mutateOperands(SeedBlock &block, Rng &rng) const
{
    TF_ASSERT(block.primeIdx < block.insns.size(), "corrupt block");
    uint32_t &word = block.insns[block.primeIdx];
    const isa::Decoded d = isa::decode(word);
    if (!d.valid)
        return;

    Operands o = d.ops;
    // Operand substitution / targeted bit flips; opcode preserved.
    // rs1 of memory ops and indirect jumps carries the affiliated
    // address materialization and must stay bound to the scratch
    // register ("coverage-sensitive operand rebinding" keeps such
    // structural operands intact).
    const bool rs1_bound =
        d.desc->isMemAccess() || d.desc->has(isa::FlagJalr) ||
        d.desc->has(isa::FlagAtomic);
    switch (rng.range(4)) {
      case 0:
        if (!d.desc->has(isa::FlagBranch))
            o.rd = static_cast<uint8_t>(rng.range(32));
        break;
      case 1:
        if (!rs1_bound)
            o.rs1 = static_cast<uint8_t>(rng.range(32));
        break;
      case 2:
        if (!d.desc->isControlFlow() && !d.desc->isMemAccess())
            o.imm ^= static_cast<int64_t>(1)
                     << rng.range(12); // bit flip in the immediate
        break;
      default:
        o.rs2 = static_cast<uint8_t>(rng.range(32));
        break;
    }
    const uint32_t mutated = isa::encode(d.op, o);
    const isa::Decoded check = isa::decode(mutated);
    if (check.valid && check.op == d.op)
        word = mutated;
}

int64_t
patchBlockTarget(SeedBlock &b, int64_t block_idx, int64_t target,
                 std::span<const uint64_t> block_addrs)
{
    const int64_t i = block_idx;
    uint32_t &word = b.insns[b.primeIdx];
    const isa::Decoded dec = isa::decode(word);
    TF_ASSERT(dec.valid, "control-flow prime no longer decodes");

    b.targetBlock = static_cast<int32_t>(target);
    const uint64_t prime_addr = block_addrs[i] + 4ull * b.primeIdx;
    int64_t delta = static_cast<int64_t>(block_addrs[target]) -
                    static_cast<int64_t>(prime_addr);

    isa::Operands o = dec.ops;
    if (dec.desc->has(isa::FlagBranch)) {
        // B format reaches +-4 KiB; clamp far targets to the
        // nearest representable block in the chosen direction.
        while ((delta < -4096 || delta > 4094) && target != i) {
            target += (target > i) ? -1 : 1;
            delta = static_cast<int64_t>(block_addrs[target]) -
                    static_cast<int64_t>(prime_addr);
        }
        b.targetBlock = static_cast<int32_t>(target);
        o.imm = delta;
        word = isa::encode(dec.op, o);
    } else if (dec.desc->has(isa::FlagJal)) {
        TF_ASSERT(delta >= -(1 << 20) && delta < (1 << 20),
                  "jal target out of range");
        o.imm = delta;
        word = isa::encode(dec.op, o);
    } else if (b.primeIdx < 2) {
        // An indirect jump without the staged auipc/addi pair (e.g.
        // a benchmark-derived return consumed as a seed, or a pair
        // the minimizer pruned): retarget it as a direct jump so
        // control flow stays on block boundaries.
        isa::Operands j;
        j.rd = dec.ops.rd;
        j.imm = delta;
        if (delta >= -(1 << 20) && delta < (1 << 20))
            word = isa::encode(isa::Opcode::Jal, j);
    } else {
        // jalr: patch the staged auipc/addi pair.
        const uint64_t auipc_addr =
            block_addrs[i] + 4ull * (b.primeIdx - 2);
        const int64_t pcrel =
            static_cast<int64_t>(block_addrs[target]) -
            static_cast<int64_t>(auipc_addr);
        int64_t hi, lo;
        pcrelHiLo(pcrel, hi, lo);
        isa::Operands hi_ops;
        hi_ops.rd = MemoryLayout::regScratch;
        hi_ops.imm = hi & 0xFFFFF;
        b.insns[b.primeIdx - 2] =
            isa::encode(isa::Opcode::Auipc, hi_ops);
        isa::Operands lo_ops;
        lo_ops.rd = MemoryLayout::regScratch;
        lo_ops.rs1 = MemoryLayout::regScratch;
        lo_ops.imm = lo;
        b.insns[b.primeIdx - 1] =
            isa::encode(isa::Opcode::Addi, lo_ops);
    }
    return target;
}

} // namespace turbofuzz::fuzzer
