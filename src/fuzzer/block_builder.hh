/**
 * @file
 * Instruction-block construction (paper §IV-B).
 *
 * Direct mode: an LFSR selects a prime instruction from the
 * configurable instruction library and the builder bundles it with
 * the affiliated instructions its architectural constraints require
 * (address materialization for memory ops, alignment masking for
 * atomics, operand staging for indirect jumps), then the unified
 * operand-assignment step fills the bit fields with generated values.
 *
 * Mutation support: operand substitution and field-level bit flips on
 * a block's prime instruction, preserving the opcode so the result
 * stays architecturally valid (validated by re-decode).
 */

#ifndef TURBOFUZZ_FUZZER_BLOCK_BUILDER_HH
#define TURBOFUZZ_FUZZER_BLOCK_BUILDER_HH

#include <cstdint>
#include <span>

#include "common/config.hh"
#include "common/lfsr.hh"
#include "common/rng.hh"
#include "fuzzer/context.hh"
#include "fuzzer/seed.hh"
#include "isa/encoding.hh"
#include "isa/instruction_library.hh"

namespace turbofuzz::fuzzer
{

/** Tunable generation probabilities (paper defaults). */
struct GenProbs
{
    /** P(load reads the data region; else instruction region). */
    Prob memDataRegion{3, 4};

    /**
     * P(prime is a control-flow instruction), applied per block.
     * Blocks average ~2.5 instructions, so 2/5 of blocks yields the
     * observed >1/6 per-instruction control-flow share (Fig. 4) and
     * the paper's 1:5 analysis scenario.
     */
    Prob controlFlowShare{2, 5};

    /** Maximum filler ALU instructions preceding the prime. */
    unsigned maxFiller = 3;

    /**
     * Restrict FP rounding modes to valid static encodings. Cascade
     * constructs fully valid programs by design; the TurboFuzzer
     * leaves this off so rm-related traps stay reachable.
     */
    bool validRmOnly = false;
};

/** Builds and mutates instruction blocks. */
class BlockBuilder
{
  public:
    /**
     * @param layout  Memory layout contract.
     * @param library Instruction library to draw primes from.
     * @param probs   Generation probabilities.
     */
    BlockBuilder(const MemoryLayout &layout,
                 const isa::InstructionLibrary *library, GenProbs probs);

    /**
     * Direct-mode generation: build one block around an LFSR-selected
     * prime. Control-flow immediates are left as placeholders; the
     * emitter's fix-up pass assigns targets from the global address
     * table.
     */
    SeedBlock buildRandomBlock(Rng &rng);

    /**
     * Mutation-mode operand work: substitute operands / flip operand
     * field bits of the block's prime instruction.
     */
    void mutateOperands(SeedBlock &block, Rng &rng) const;

    const MemoryLayout &layout() const { return memLayout; }

  private:
    /** Random CSR address for Zicsr primes (mtvec excluded). */
    uint16_t pickCsr(Rng &rng) const;

    /** Random operands for @p op (no control-flow targets). */
    isa::Operands randomOperands(isa::Opcode op, Rng &rng) const;

    MemoryLayout memLayout;
    const isa::InstructionLibrary *lib;
    GenProbs genProbs;
};

/** True when @p insn decodes to a branch/jal/jalr. */
bool isControlFlowInsn(uint32_t insn);

/**
 * Split a signed 32-bit pc-relative delta into the auipc/addi
 * (%pcrel_hi / %pcrel_lo) immediate pair.
 */
void pcrelHiLo(int64_t delta, int64_t &hi20, int64_t &lo12);

/**
 * Patch the control-flow prime of @p block (at index @p block_idx in
 * the layout @p block_addrs) to jump to block @p target: encode the
 * B/J immediate, or re-stage the jalr auipc/addi address pair.
 * Branch targets beyond the ±4 KiB B-format range are clamped toward
 * the source block. Deterministic — the shared core of the fuzzer's
 * fix-up pass and the triage minimizer's re-layout; only target
 * *selection* differs between the two.
 * @return the (possibly clamped) final target index.
 */
int64_t patchBlockTarget(SeedBlock &block, int64_t block_idx,
                         int64_t target,
                         std::span<const uint64_t> block_addrs);

} // namespace turbofuzz::fuzzer

#endif // TURBOFUZZ_FUZZER_BLOCK_BUILDER_HH
