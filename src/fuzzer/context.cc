#include "fuzzer/context.hh"

#include "common/logging.hh"

namespace turbofuzz::fuzzer
{

FuzzContext::FuzzContext(const MemoryLayout &layout) : memLayout(layout)
{
    beginIteration();
}

void
FuzzContext::beginIteration()
{
    blockAddrs.clear();
    cumInstrs = 0;
    cursor = memLayout.instrBase;
    boundary = 0;
}

uint32_t
FuzzContext::recordBlock(uint64_t base_addr, uint32_t instr_count)
{
    TF_ASSERT(base_addr % 4 == 0, "block base must be word aligned");
    TF_ASSERT(base_addr >= memLayout.instrBase &&
                  base_addr + 4ull * instr_count <=
                      memLayout.instrBase + memLayout.instrSize,
              "block escapes the instruction segment");
    blockAddrs.push_back(base_addr);
    cumInstrs += instr_count;
    cursor = base_addr + 4ull * instr_count;
    return static_cast<uint32_t>(blockAddrs.size() - 1);
}

uint64_t
FuzzContext::blockAddress(uint32_t index) const
{
    TF_ASSERT(index < blockAddrs.size(), "bad block index %u", index);
    return blockAddrs[index];
}

void
FuzzContext::finalize()
{
    boundary = cursor;
}

bool
FuzzContext::hasRoom(uint32_t instrs) const
{
    return cursor + 4ull * instrs <=
           memLayout.instrBase + memLayout.instrSize;
}

} // namespace turbofuzz::fuzzer
