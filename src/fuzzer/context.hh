/**
 * @file
 * Global execution context metadata (paper §IV-B2) and the memory
 * layout contract between fuzzer, DUT and harness.
 *
 * During iteration generation the context records the cumulative
 * instruction count and the memory-aligned base address of every
 * emitted instruction block (the "global address table"); branch
 * targets are selected from this table so jumps always land on block
 * boundaries. When generation completes, the context holds the final
 * instruction count and the code-segment boundary.
 */

#ifndef TURBOFUZZ_FUZZER_CONTEXT_HH
#define TURBOFUZZ_FUZZER_CONTEXT_HH

#include <cstdint>
#include <vector>

namespace turbofuzz::fuzzer
{

/**
 * Address-space contract for generated iterations.
 *
 * All segments live below 2 GiB so that lui/auipc-materialized
 * addresses survive RV64 sign extension without widening sequences —
 * the synthesizable generator relies on 2-instruction address
 * materialization.
 */
struct MemoryLayout
{
    uint64_t instrBase = 0x10000000ull; ///< instruction segment
    uint64_t instrSize = 1ull << 20;
    uint64_t dataBase = 0x20000000ull;  ///< LFSR-filled data segment
    uint64_t dataSize = 1ull << 12;
    uint64_t handlerBase = 0x10F00000ull; ///< exception template code

    /** Register conventions the generator reserves. */
    static constexpr unsigned regDataBase = 31; ///< x31 = dataBase
    static constexpr unsigned regScratch = 30;  ///< x30 = addr scratch
    static constexpr unsigned regHandlerTmp = 29; ///< handler-owned
};

/** Global context accumulated while one iteration is generated. */
class FuzzContext
{
  public:
    explicit FuzzContext(const MemoryLayout &layout);

    /** Begin a new iteration at the instruction segment base. */
    void beginIteration();

    /** Record a block base address; returns the block index. */
    uint32_t recordBlock(uint64_t base_addr, uint32_t instr_count);

    /** Address of block @p index (the global address table). */
    uint64_t blockAddress(uint32_t index) const;

    /** Number of recorded blocks. */
    uint32_t blockCount() const
    {
        return static_cast<uint32_t>(blockAddrs.size());
    }

    /** Cumulative instructions generated this iteration. */
    uint64_t cumulativeInstrCount() const { return cumInstrs; }

    /** Next free address in the instruction segment. */
    uint64_t nextAddress() const { return cursor; }

    /** Close the iteration; records the code-segment boundary. */
    void finalize();

    /** End of generated code (valid after finalize()). */
    uint64_t codeBoundary() const { return boundary; }

    const MemoryLayout &layout() const { return memLayout; }

    /** True when another block of @p instrs words still fits. */
    bool hasRoom(uint32_t instrs) const;

  private:
    MemoryLayout memLayout;
    std::vector<uint64_t> blockAddrs;
    uint64_t cumInstrs = 0;
    uint64_t cursor = 0;
    uint64_t boundary = 0;
};

} // namespace turbofuzz::fuzzer

#endif // TURBOFUZZ_FUZZER_CONTEXT_HH
