#include "fuzzer/corpus.hh"

#include <algorithm>

#include "common/logging.hh"

namespace turbofuzz::fuzzer
{

Corpus::Corpus(size_t capacity, SchedulingPolicy policy)
    : cap(capacity), pol(policy)
{
    TF_ASSERT(cap >= 1, "corpus capacity must be >= 1");
    seeds.reserve(cap);
}

void
Corpus::addBaseline(Seed seed)
{
    seed.insertedAt = nextInsertion++;
    if (seeds.size() < cap) {
        seeds.push_back(std::move(seed));
        return;
    }
    // Baselines during (re)initialization replace the oldest entry.
    auto oldest = std::min_element(
        seeds.begin(), seeds.end(), [](const Seed &a, const Seed &b) {
            return a.insertedAt < b.insertedAt;
        });
    *oldest = std::move(seed);
    ++evictCount;
}

bool
Corpus::offer(Seed seed, uint64_t cov_increment)
{
    seed.coverageIncrement = cov_increment;
    seed.insertedAt = nextInsertion++;

    if (pol == SchedulingPolicy::CoverageGuided && cov_increment == 0) {
        // Generation-mode admission: only coverage-improving test
        // cases enter the corpus.
        ++rejectCount;
        return false;
    }

    if (seeds.size() < cap) {
        seeds.push_back(std::move(seed));
        return true;
    }

    if (pol == SchedulingPolicy::Fifo) {
        auto oldest = std::min_element(
            seeds.begin(), seeds.end(),
            [](const Seed &a, const Seed &b) {
                return a.insertedAt < b.insertedAt;
            });
        *oldest = std::move(seed);
        ++evictCount;
        return true;
    }

    // CoverageGuided: replace the seed with the lowest recorded
    // coverage improvement, but only when the newcomer beats it.
    auto weakest = std::min_element(
        seeds.begin(), seeds.end(), [](const Seed &a, const Seed &b) {
            return a.coverageIncrement < b.coverageIncrement;
        });
    if (weakest->coverageIncrement >= cov_increment) {
        ++rejectCount;
        return false;
    }
    *weakest = std::move(seed);
    ++evictCount;
    return true;
}

const Seed &
Corpus::select(Rng &rng, Prob prioritize_prob) const
{
    TF_ASSERT(!seeds.empty(), "selecting from an empty corpus");
    if (pol == SchedulingPolicy::CoverageGuided &&
        rng.chance(prioritize_prob.num, prioritize_prob.den)) {
        // Prioritized selection samples the top quartile by recorded
        // coverage increment, keeping several promising seeds in
        // rotation instead of starving all but the single best.
        std::vector<const Seed *> ranked;
        ranked.reserve(seeds.size());
        for (const Seed &s : seeds)
            ranked.push_back(&s);
        std::sort(ranked.begin(), ranked.end(),
                  [](const Seed *a, const Seed *b) {
                      return a->coverageIncrement >
                             b->coverageIncrement;
                  });
        const size_t top =
            std::max<size_t>(1, ranked.size() / 4);
        return *ranked[rng.range(top)];
    }
    return seeds[rng.range(seeds.size())];
}

void
Corpus::updateIncrement(uint64_t seed_id, uint64_t cov_increment)
{
    for (Seed &s : seeds) {
        if (s.id == seed_id) {
            s.coverageIncrement = cov_increment;
            return;
        }
    }
    // The seed may have been evicted meanwhile; that is not an error.
}

} // namespace turbofuzz::fuzzer
