#include "fuzzer/corpus.hh"

#include <algorithm>
#include <cstddef>
#include <unordered_set>

#include "common/logging.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::fuzzer
{

Corpus::Corpus(size_t capacity, SchedulingPolicy policy)
    : cap(capacity), pol(policy)
{
    TF_ASSERT(cap >= 1, "corpus capacity must be >= 1");
    seeds.reserve(cap);
}

void
Corpus::bindTelemetry(telemetry::MetricRegistry *registry)
{
    tel = registry ? telemetry::CorpusInstruments::resolve(*registry)
                   : telemetry::CorpusInstruments{};
    if (tel.size)
        tel.size->set(static_cast<int64_t>(seeds.size()));
}

void
Corpus::replaceAt(size_t idx, Seed seed)
{
    idIndex.erase(seeds[idx].id);
    idIndex[seed.id] = idx;
    seeds[idx] = std::move(seed);
    ++evictCount;
    if (tel.evictions)
        tel.evictions->add(1);
}

void
Corpus::addBaseline(Seed seed)
{
    seed.insertedAt = nextInsertion++;
    if (seeds.size() < cap) {
        idIndex[seed.id] = seeds.size();
        seeds.push_back(std::move(seed));
        if (tel.size)
            tel.size->set(static_cast<int64_t>(seeds.size()));
        return;
    }
    // Baselines during (re)initialization replace the oldest entry.
    auto oldest = std::min_element(
        seeds.begin(), seeds.end(), [](const Seed &a, const Seed &b) {
            return a.insertedAt < b.insertedAt;
        });
    replaceAt(static_cast<size_t>(oldest - seeds.begin()),
              std::move(seed));
}

bool
Corpus::offer(Seed seed, uint64_t cov_increment)
{
    seed.coverageIncrement = cov_increment;
    seed.insertedAt = nextInsertion++;

    if (pol == SchedulingPolicy::CoverageGuided && cov_increment == 0) {
        // Generation-mode admission: only coverage-improving test
        // cases enter the corpus.
        ++rejectCount;
        if (tel.rejects)
            tel.rejects->add(1);
        return false;
    }

    if (seeds.size() < cap) {
        idIndex[seed.id] = seeds.size();
        seeds.push_back(std::move(seed));
        if (tel.admits) {
            tel.admits->add(1);
            tel.size->set(static_cast<int64_t>(seeds.size()));
        }
        return true;
    }

    if (pol == SchedulingPolicy::Fifo) {
        auto oldest = std::min_element(
            seeds.begin(), seeds.end(),
            [](const Seed &a, const Seed &b) {
                return a.insertedAt < b.insertedAt;
            });
        replaceAt(static_cast<size_t>(oldest - seeds.begin()),
                  std::move(seed));
        if (tel.admits)
            tel.admits->add(1);
        return true;
    }

    // CoverageGuided: replace the seed with the lowest recorded
    // coverage improvement, but only when the newcomer beats it.
    auto weakest = std::min_element(
        seeds.begin(), seeds.end(), [](const Seed &a, const Seed &b) {
            return a.coverageIncrement < b.coverageIncrement;
        });
    if (weakest->coverageIncrement >= cov_increment) {
        ++rejectCount;
        if (tel.rejects)
            tel.rejects->add(1);
        return false;
    }
    replaceAt(static_cast<size_t>(weakest - seeds.begin()),
              std::move(seed));
    if (tel.admits)
        tel.admits->add(1);
    return true;
}

const Seed *
Corpus::trySelect(Rng &rng, Prob prioritize_prob) const
{
    if (seeds.empty())
        return nullptr;
    if (tel.selects)
        tel.selects->add(1);
    if (pol == SchedulingPolicy::CoverageGuided &&
        rng.chance(prioritize_prob.num, prioritize_prob.den)) {
        // Prioritized selection samples the top quartile by recorded
        // coverage increment, keeping several promising seeds in
        // rotation instead of starving all but the single best.
        // nth_element keeps this O(n) instead of a full sort; only
        // the quartile membership matters because the pick inside it
        // is uniform.
        std::vector<const Seed *> ranked;
        ranked.reserve(seeds.size());
        for (const Seed &s : seeds)
            ranked.push_back(&s);
        const size_t top = std::max<size_t>(1, ranked.size() / 4);
        if (top < ranked.size()) {
            std::nth_element(
                ranked.begin(),
                ranked.begin() + static_cast<std::ptrdiff_t>(top) - 1,
                ranked.end(), [](const Seed *a, const Seed *b) {
                    return a->coverageIncrement > b->coverageIncrement;
                });
        }
        return ranked[rng.range(top)];
    }
    return &seeds[rng.range(seeds.size())];
}

const Seed *
Corpus::findSeed(uint64_t seed_id) const
{
    const auto it = idIndex.find(seed_id);
    return it == idIndex.end() ? nullptr : &seeds[it->second];
}

void
Corpus::updateIncrement(uint64_t seed_id, uint64_t cov_increment)
{
    const auto it = idIndex.find(seed_id);
    // The seed may have been evicted meanwhile; that is not an error.
    if (it == idIndex.end())
        return;
    seeds[it->second].coverageIncrement = cov_increment;
}

std::vector<Seed>
Corpus::exportTop(size_t k) const
{
    std::vector<const Seed *> ranked;
    ranked.reserve(seeds.size());
    for (const Seed &s : seeds)
        ranked.push_back(&s);
    const size_t n = std::min(k, ranked.size());
    // Deterministic total order so every shard exports the same set
    // for the same corpus state regardless of container layout.
    const auto better = [](const Seed *a, const Seed *b) {
        if (a->coverageIncrement != b->coverageIncrement)
            return a->coverageIncrement > b->coverageIncrement;
        return a->insertedAt < b->insertedAt;
    };
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(n),
                      ranked.end(), better);
    std::vector<Seed> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(*ranked[i]);
    return out;
}

std::vector<SeedShare>
Corpus::exportTopShared(size_t k)
{
    std::vector<const Seed *> ranked;
    ranked.reserve(seeds.size());
    for (const Seed &s : seeds)
        ranked.push_back(&s);
    const size_t n = std::min(k, ranked.size());
    // Same deterministic total order as exportTop().
    const auto better = [](const Seed *a, const Seed *b) {
        if (a->coverageIncrement != b->coverageIncrement)
            return a->coverageIncrement > b->coverageIncrement;
        return a->insertedAt < b->insertedAt;
    };
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(n),
                      ranked.end(), better);
    // Exchange-relevant metadata: everything an importer's admission
    // or genealogy keeps. id/insertedAt/parentId are re-assigned on
    // import and deliberately absent.
    const auto sameExported = [](const Seed &a, const Seed &b) {
        return a.coverageIncrement == b.coverageIncrement &&
               a.originOp == b.originOp &&
               a.lineageDepth == b.lineageDepth &&
               a.energyAtCreation == b.energyAtCreation;
    };
    std::vector<SeedShare> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        const Seed &s = *ranked[i];
        const uint64_t hash = s.contentHash();
        auto [it, inserted] = publishCache.try_emplace(hash);
        if (inserted || !sameExported(*it->second, s))
            it->second = std::make_shared<const Seed>(s);
        out.push_back({it->second, hash});
    }
    return out;
}

size_t
Corpus::importShared(const std::vector<SeedShare> &shares,
                     uint64_t &next_seed_id)
{
    // Identical dedup semantics to importSeeds(); the only difference
    // is that the hash was computed once at publish time and a seed
    // is copied out of its shared block only when it survives dedup.
    std::unordered_set<uint64_t> resident;
    resident.reserve(seeds.size() + shares.size());
    for (const Seed &s : seeds)
        resident.insert(s.contentHash());

    size_t admitted = 0;
    for (const SeedShare &share : shares) {
        if (!resident.insert(share.contentHash).second) {
            ++dupImportCount;
            if (tel.importsDuplicate)
                tel.importsDuplicate->add(1);
            continue;
        }
        Seed s = *share.seed;
        s.id = next_seed_id++;
        // Imports become lineage roots, exactly as in importSeeds().
        s.parentId = 0;
        const uint64_t increment = s.coverageIncrement;
        if (offer(std::move(s), increment))
            ++admitted;
    }
    if (tel.importsAdmitted)
        tel.importsAdmitted->add(admitted);
    return admitted;
}

size_t
Corpus::importSeeds(std::vector<Seed> imported, uint64_t &next_seed_id)
{
    // Content hashes of the resident seeds: a broadcast fleet offers
    // the same top-K exemplars at every barrier, and re-identified
    // copies must not be re-admitted as fresh stimuli. The set is
    // rebuilt per import because residents change between barriers;
    // corpora are small (BRAM-capacity bound), so this is cheap.
    std::unordered_set<uint64_t> resident;
    resident.reserve(seeds.size() + imported.size());
    for (const Seed &s : seeds)
        resident.insert(s.contentHash());

    size_t admitted = 0;
    for (Seed &s : imported) {
        const uint64_t hash = s.contentHash();
        if (!resident.insert(hash).second) {
            ++dupImportCount;
            if (tel.importsDuplicate)
                tel.importsDuplicate->add(1);
            continue;
        }
        s.id = next_seed_id++;
        // The parent id belongs to the exporting shard's id space;
        // keeping it would alias an unrelated local seed. Imports
        // become lineage roots that retain their depth and operator
        // (docs/provenance.md).
        s.parentId = 0;
        const uint64_t increment = s.coverageIncrement;
        if (offer(std::move(s), increment))
            ++admitted;
    }
    if (tel.importsAdmitted)
        tel.importsAdmitted->add(admitted);
    return admitted;
}

void
Corpus::saveState(soc::SnapshotWriter &out) const
{
    out.putU64(nextInsertion);
    out.putU64(evictCount);
    out.putU64(rejectCount);
    out.putU64(dupImportCount);
    out.putU32(static_cast<uint32_t>(seeds.size()));
    for (const Seed &s : seeds) {
        out.putU64(s.id);
        out.putU64(s.coverageIncrement);
        out.putU64(s.insertedAt);
        out.putU64(s.parentId);
        out.putU8(s.originOp);
        out.putU32(s.lineageDepth);
        out.putU64(s.energyAtCreation);
        writeSeedBlocks(out, s.blocks);
    }
}

bool
Corpus::loadState(soc::SnapshotReader &in, std::string *error)
{
    auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };

    if (in.remaining() < 4 * 8 + 4)
        return fail("truncated corpus header");
    nextInsertion = in.getU64();
    evictCount = in.getU64();
    rejectCount = in.getU64();
    dupImportCount = in.getU64();
    const uint32_t count = in.getU32();
    if (count > cap)
        return fail("corpus seed count exceeds capacity");

    seeds.clear();
    idIndex.clear();
    seeds.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        if (in.remaining() < 45)
            return fail("truncated corpus seed");
        Seed s;
        s.id = in.getU64();
        s.coverageIncrement = in.getU64();
        s.insertedAt = in.getU64();
        s.parentId = in.getU64();
        s.originOp = in.getU8();
        s.lineageDepth = in.getU32();
        s.energyAtCreation = in.getU64();
        if (!readSeedBlocks(in, s.blocks, error))
            return false;
        if (idIndex.count(s.id))
            return fail("duplicate seed id in corpus image");
        idIndex[s.id] = seeds.size();
        seeds.push_back(std::move(s));
    }
    if (tel.size)
        tel.size->set(static_cast<int64_t>(seeds.size()));
    return true;
}

} // namespace turbofuzz::fuzzer
