/**
 * @file
 * Corpus storage and scheduling (paper §IV-D).
 *
 * Two scheduling policies are implemented:
 *
 *  - Fifo — the conventional software-fuzzer behaviour: when the
 *    corpus is full, the oldest seed is evicted regardless of how
 *    productive it still is.
 *
 *  - CoverageGuided — TurboFuzz's optimization: every seed tracks the
 *    coverage increment it produced when last executed. New seeds are
 *    admitted only if they improved coverage; at capacity the seed
 *    with the LOWEST recorded increment is replaced; mutation-mode
 *    runs refresh the stored increment of the seed they mutated.
 *
 * Seed selection for mutation uses the dual-strategy probabilistic
 * mechanism: with probability 3/4 prioritize the highest-increment
 * seeds, otherwise select uniformly so archived patterns are not
 * starved (exploration/exploitation balance).
 *
 * For multi-shard fleets the corpus additionally supports exporting
 * its top seeds and importing seeds from a peer shard; imported seeds
 * are re-identified into the local id space so cross-shard ids never
 * collide (see src/fleet/).
 */

#ifndef TURBOFUZZ_FUZZER_CORPUS_HH
#define TURBOFUZZ_FUZZER_CORPUS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "fuzzer/seed.hh"
#include "telemetry/instruments.hh"

namespace turbofuzz::fuzzer
{

/** Corpus scheduling policy. */
enum class SchedulingPolicy { Fifo, CoverageGuided };

/** The fuzzer's seed archive. */
class Corpus
{
  public:
    /**
     * @param capacity  Maximum resident seeds (BRAM budget).
     * @param policy    Eviction/selection policy.
     */
    Corpus(size_t capacity, SchedulingPolicy policy);

    /** Number of resident seeds. */
    size_t size() const { return seeds.size(); }
    size_t capacity() const { return cap; }
    SchedulingPolicy policy() const { return pol; }

    /**
     * Bind scheduler instruments (corpus.selects/admits/rejects/
     * evictions/imports.* counters + corpus.size gauge) into
     * @p registry. Called once at campaign construction; null
     * detaches. The corpus works identically unbound — telemetry
     * observes, it never steers.
     */
    void bindTelemetry(telemetry::MetricRegistry *registry);

    /** Add an initial (baseline) seed, bypassing admission control. */
    void addBaseline(Seed seed);

    /**
     * Offer a new seed after an iteration ran.
     * @param seed           The iteration's blocks.
     * @param cov_increment  Coverage improvement it achieved.
     * @return true when the seed was admitted.
     */
    bool offer(Seed seed, uint64_t cov_increment);

    /**
     * Select a seed for the next fuzzing iteration.
     * @param prioritize_prob  Probability of choosing the
     *        highest-increment seeds instead of a uniform pick
     *        (paper default 3/4; only meaningful for CoverageGuided).
     * @return the selected seed, or nullptr when the corpus is empty
     *         — a recoverable condition the caller turns into a
     *         diagnostic (a misconfigured campaign must not abort the
     *         whole process from inside the scheduler).
     */
    const Seed *trySelect(Rng &rng,
                          Prob prioritize_prob = {3, 4}) const;

    /** Resident seed by id, or nullptr (evicted/never archived). */
    const Seed *findSeed(uint64_t seed_id) const;

    /**
     * Mutation-mode feedback: refresh the recorded increment of the
     * seed that was just mutated and re-run.
     */
    void updateIncrement(uint64_t seed_id, uint64_t cov_increment);

    /**
     * Export copies of the top @p k seeds by recorded coverage
     * increment (ties broken by age, oldest first), e.g. for
     * cross-shard seed exchange. Returns fewer when the corpus holds
     * fewer than @p k seeds.
     */
    std::vector<Seed> exportTop(size_t k) const;

    /**
     * Import seeds from another corpus (a peer shard). Imports are
     * deduplicated by content hash — against the resident seeds and
     * within the imported batch itself — because re-identification
     * would otherwise let the same top-K stimulus re-enter as "new"
     * at every broadcast barrier, flooding the corpus with duplicates
     * and skewing select() toward one pattern. Each surviving seed is
     * re-identified from @p next_seed_id — the caller's id allocator —
     * so imported ids never collide with locally archived ones, then
     * offered through the normal admission path with its recorded
     * coverage increment as the priority signal.
     *
     * @return number of seeds admitted.
     */
    size_t importSeeds(std::vector<Seed> imported,
                       uint64_t &next_seed_id);

    /**
     * Zero-copy variant of exportTop(): the same deterministic top-K
     * selection, but each exported seed is published as a shared
     * immutable block (SeedShare). Publications are cached by content
     * hash, so a seed that stays in the top-K across epochs is copied
     * once, not once per barrier; a cached block is re-published when
     * the resident's exchange-relevant metadata (recorded increment,
     * genealogy) moved since. Non-const only for the cache — the
     * resident seeds are untouched.
     */
    std::vector<SeedShare> exportTopShared(size_t k);

    /**
     * Zero-copy variant of importSeeds(): identical dedup (against
     * residents and within the batch, by the precomputed content
     * hash), identical re-identification from @p next_seed_id and
     * identical admission control — but only seeds that survive
     * dedup are copied out of the shared block.
     *
     * @return number of seeds admitted.
     */
    size_t importShared(const std::vector<SeedShare> &shares,
                        uint64_t &next_seed_id);

    /** Imports rejected as duplicates of resident content (stats). */
    uint64_t duplicateImports() const { return dupImportCount; }

    /**
     * Checkpoint support: serialize the complete corpus state
     * (resident seeds with their scheduling metadata plus the
     * insertion/eviction counters) so a resumed campaign schedules
     * exactly like an uninterrupted one.
     */
    void saveState(soc::SnapshotWriter &out) const;

    /**
     * Restore a saveState() image into this corpus (replaces all
     * resident seeds). Capacity and policy come from construction and
     * must match the checkpointed campaign's configuration.
     * @return false (with @p error set when non-null) on malformed
     *         input; the corpus is left unspecified but safe.
     */
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr);

    /** Total evictions performed (stats). */
    uint64_t evictions() const { return evictCount; }

    /** Seeds rejected by admission control (stats). */
    uint64_t rejections() const { return rejectCount; }

    const std::vector<Seed> &entries() const { return seeds; }

  private:
    /** Replace the resident seed at @p idx, keeping idIndex in sync. */
    void replaceAt(size_t idx, Seed seed);

    size_t cap;
    SchedulingPolicy pol;
    std::vector<Seed> seeds;

    /**
     * Seed-id -> index into `seeds`. Ids are unique within a corpus
     * (the fuzzer allocates them monotonically; imports are
     * re-identified), so updateIncrement() is O(1) instead of a
     * linear scan per feedback event.
     */
    std::unordered_map<uint64_t, size_t> idIndex;

    /**
     * Content hash -> published immutable block (exportTopShared).
     * Purely an allocation cache: never checkpointed, never read by
     * scheduling, and bounded by the distinct contents this corpus
     * ever exported (top-K sets are stable epoch over epoch).
     */
    std::unordered_map<uint64_t, std::shared_ptr<const Seed>>
        publishCache;

    uint64_t nextInsertion = 0;
    uint64_t evictCount = 0;
    uint64_t rejectCount = 0;
    uint64_t dupImportCount = 0;

    /** Resolved instruments (all null until bindTelemetry). */
    telemetry::CorpusInstruments tel;
};

} // namespace turbofuzz::fuzzer

#endif // TURBOFUZZ_FUZZER_CORPUS_HH
