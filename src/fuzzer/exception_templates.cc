#include "fuzzer/exception_templates.hh"

#include "isa/csr.hh"
#include "isa/encoding.hh"

namespace turbofuzz::fuzzer
{

using isa::Opcode;
using isa::Operands;
namespace csr = isa::csr;

std::vector<uint32_t>
ExceptionTemplates::handlerCode()
{
    constexpr unsigned tmp = MemoryLayout::regHandlerTmp;
    std::vector<uint32_t> code;

    auto csrR = [&](uint16_t addr, unsigned rd) {
        Operands o;
        o.rd = static_cast<uint8_t>(rd);
        o.rs1 = 0;
        o.csr = addr;
        return isa::encode(Opcode::Csrrs, o);
    };
    auto csrW = [&](uint16_t addr, unsigned rs1) {
        Operands o;
        o.rd = 0;
        o.rs1 = static_cast<uint8_t>(rs1);
        o.csr = addr;
        return isa::encode(Opcode::Csrrw, o);
    };

    // Re-enable the FPU: set mstatus.FS = dirty (bits 13..14).
    //   lui  x29, 0x6           -- 0x6000 = FS mask
    //   csrrs x0, mstatus, x29
    {
        Operands lui;
        lui.rd = tmp;
        lui.imm = 0x6;
        code.push_back(isa::encode(Opcode::Lui, lui));
        Operands set;
        set.rd = 0;
        set.rs1 = tmp;
        set.csr = csr::mstatus;
        code.push_back(isa::encode(Opcode::Csrrs, set));
    }

    // Reset the dynamic rounding mode to a valid value (RNE): an
    // instruction that trapped on an invalid frm can then be retried
    // by a later mutation without deadlocking the iteration.
    {
        Operands o;
        o.rd = 0;
        o.imm = csr::rmRNE;
        o.csr = csr::frm;
        code.push_back(isa::encode(Opcode::Csrrwi, o));
    }

    // Skip the faulting instruction:
    //   csrr x29, mepc ; addi x29, x29, 4 ; csrw mepc, x29 ; mret
    code.push_back(csrR(csr::mepc, tmp));
    {
        Operands o;
        o.rd = tmp;
        o.rs1 = tmp;
        o.imm = 4;
        code.push_back(isa::encode(Opcode::Addi, o));
    }
    code.push_back(csrW(csr::mepc, tmp));
    code.push_back(isa::encode(Opcode::Mret, {}));
    return code;
}

uint32_t
ExceptionTemplates::handlerLength()
{
    static const uint32_t len =
        static_cast<uint32_t>(handlerCode().size());
    return len;
}

uint64_t
ExceptionTemplates::install(soc::Memory &mem, const MemoryLayout &layout)
{
    const auto code = handlerCode();
    for (size_t i = 0; i < code.size(); ++i)
        mem.write32(layout.handlerBase + 4 * i, code[i]);
    return layout.handlerBase;
}

} // namespace turbofuzz::fuzzer
