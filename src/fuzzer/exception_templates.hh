/**
 * @file
 * Exception-handling templates with execution guarantee (§IV-C).
 *
 * The fuzzer installs a machine-trap handler that repairs the state a
 * faulting instruction needs (re-enables the FPU via mstatus.FS,
 * resets the rounding mode) and resumes execution *after* the
 * faulting instruction, so one bad instruction never wastes the rest
 * of a 4000-instruction iteration. Unresolvable situations (trap
 * storms) are detected by the harness via a per-iteration trap cap
 * and abort the iteration, matching the paper's fallback.
 */

#ifndef TURBOFUZZ_FUZZER_EXCEPTION_TEMPLATES_HH
#define TURBOFUZZ_FUZZER_EXCEPTION_TEMPLATES_HH

#include <cstdint>
#include <vector>

#include "fuzzer/context.hh"
#include "soc/memory.hh"

namespace turbofuzz::fuzzer
{

/** The trap-handler template. */
class ExceptionTemplates
{
  public:
    /** Instruction words of the resume handler. */
    static std::vector<uint32_t> handlerCode();

    /** Number of instructions the handler executes per trap. */
    static uint32_t handlerLength();

    /**
     * Write the handler into @p mem at the layout's handler base.
     * @return the handler entry address (for mtvec).
     */
    static uint64_t install(soc::Memory &mem,
                            const MemoryLayout &layout);
};

} // namespace turbofuzz::fuzzer

#endif // TURBOFUZZ_FUZZER_EXCEPTION_TEMPLATES_HH
