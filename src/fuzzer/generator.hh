/**
 * @file
 * Abstract stimulus-generator interface.
 *
 * The campaign harness drives any test-generation strategy through
 * this interface: the TurboFuzzer, the DifuzzRTL-like and
 * Cascade-like baselines, and the deepExplore benchmark/interval
 * runners all implement it.
 */

#ifndef TURBOFUZZ_FUZZER_GENERATOR_HH
#define TURBOFUZZ_FUZZER_GENERATOR_HH

#include <optional>
#include <string_view>

#include "fuzzer/context.hh"
#include "fuzzer/turbofuzzer.hh"
#include "soc/memory.hh"

namespace turbofuzz::fuzzer
{

/** One test-generation strategy. */
class StimulusGenerator
{
  public:
    virtual ~StimulusGenerator() = default;

    /** Generate the next iteration into @p mem. */
    virtual IterationInfo generate(soc::Memory &mem) = 0;

    /** Coverage feedback after the iteration ran. */
    virtual void feedback(const IterationInfo &info,
                          uint64_t cov_increment) = 0;

    /** Memory layout contract of generated iterations. */
    virtual const MemoryLayout &layout() const = 0;

    /**
     * Whether generated code installs resume-style exception
     * templates. When false, the harness ends the iteration at the
     * first trap (baseline behaviour).
     */
    virtual bool usesExceptionTemplates() const = 0;

    /** Display name. */
    virtual std::string_view name() const = 0;

    /**
     * Telemetry binding: the campaign offers its metric registry so
     * the generator (and its corpus, if any) can register scheduler
     * instruments. Purely observational — binding must not change
     * generation behaviour. Default: no instruments.
     */
    virtual void bindTelemetry(telemetry::MetricRegistry * /*reg*/) {}

    /**
     * Fleet seed exchange: accept seeds exported by a peer shard.
     * Generators without a corpus ignore the offer.
     * @return number of seeds admitted.
     */
    virtual size_t importSeeds(std::vector<Seed> /*seeds*/)
    {
        return 0;
    }

    /**
     * Fleet seed exchange: export up to @p k of the most productive
     * archived seeds. Generators without a corpus export nothing.
     */
    virtual std::vector<Seed> exportTopSeeds(size_t /*k*/) const
    {
        return {};
    }

    /**
     * Zero-copy fleet seed exchange (seed.hh SeedShare): accept
     * shared immutable seed blocks published by a peer shard.
     * Semantics are identical to importSeeds() — same dedup, same
     * re-identification, same admission — minus the per-seed copies.
     * @return number of seeds admitted.
     */
    virtual size_t
    importSharedSeeds(const std::vector<SeedShare> & /*shares*/)
    {
        return 0;
    }

    /**
     * Zero-copy fleet seed exchange: publish up to @p k top seeds as
     * shared immutable blocks. Non-const because publication caches
     * the blocks; observable corpus state is untouched.
     */
    virtual std::vector<SeedShare> exportTopSharedSeeds(size_t /*k*/)
    {
        return {};
    }

    /**
     * Triage support: the environment descriptor that allows an
     * archived IterationInfo to be re-materialized and replayed
     * standalone. Generators whose iterations cannot be rebuilt
     * deterministically return std::nullopt, which disables
     * reproducer capture for their campaigns.
     *
     * Warm-start contract: a generator that returns an environment
     * also guarantees every generated iteration starts with
     * TurboFuzzer::preambleCode(env) at layout().instrBase — the
     * same contract standalone replay already relies on. The
     * campaign uses it to capture a post-prefix snapshot once and
     * restore it each iteration (docs/snapshot.md).
     */
    virtual std::optional<ReplayEnv> replayEnv() const
    {
        return std::nullopt;
    }

    /**
     * Campaign checkpoint support: serialize the generator's mutable
     * state. Generators that cannot checkpoint return false (the
     * default), which disables campaign checkpointing for their
     * campaigns.
     */
    virtual bool checkpointSave(soc::SnapshotWriter & /*out*/) const
    {
        return false;
    }

    /** Restore checkpointSave() output into a freshly constructed
     *  generator with identical configuration. */
    virtual bool checkpointLoad(soc::SnapshotReader & /*in*/,
                                std::string * /*error*/)
    {
        return false;
    }
};

/** StimulusGenerator adapter over the TurboFuzzer. */
class TurboFuzzGenerator : public StimulusGenerator
{
  public:
    TurboFuzzGenerator(FuzzerOptions options,
                       const isa::InstructionLibrary *library)
        : fuzzer(options, library)
    {}

    IterationInfo
    generate(soc::Memory &mem) override
    {
        return fuzzer.generateIteration(mem);
    }

    void
    feedback(const IterationInfo &info, uint64_t cov_increment) override
    {
        fuzzer.reportResult(info, cov_increment);
    }

    const MemoryLayout &
    layout() const override
    {
        return fuzzer.options().layout;
    }

    bool usesExceptionTemplates() const override { return true; }
    std::string_view name() const override { return "TurboFuzz"; }

    void
    bindTelemetry(telemetry::MetricRegistry *reg) override
    {
        fuzzer.bindTelemetry(reg);
    }

    size_t
    importSeeds(std::vector<Seed> seeds) override
    {
        return fuzzer.importSeeds(std::move(seeds));
    }

    std::vector<Seed>
    exportTopSeeds(size_t k) const override
    {
        return fuzzer.exportTopSeeds(k);
    }

    size_t
    importSharedSeeds(const std::vector<SeedShare> &shares) override
    {
        return fuzzer.importSharedSeeds(shares);
    }

    std::vector<SeedShare>
    exportTopSharedSeeds(size_t k) override
    {
        return fuzzer.exportTopSharedSeeds(k);
    }

    std::optional<ReplayEnv>
    replayEnv() const override
    {
        return fuzzer.replayEnv();
    }

    bool
    checkpointSave(soc::SnapshotWriter &out) const override
    {
        fuzzer.saveState(out);
        return true;
    }

    bool
    checkpointLoad(soc::SnapshotReader &in, std::string *error) override
    {
        return fuzzer.loadState(in, error);
    }

    TurboFuzzer &underlying() { return fuzzer; }

  private:
    TurboFuzzer fuzzer;
};

} // namespace turbofuzz::fuzzer

#endif // TURBOFUZZ_FUZZER_GENERATOR_HH
