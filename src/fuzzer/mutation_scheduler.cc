#include "fuzzer/mutation_scheduler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::fuzzer
{

namespace
{

/** Map one rng.range(16) draw through a gen/del sixteenths table —
 *  the exact decision structure of the historical inline code. */
MutOp
drawFromTable(Rng &rng, uint32_t gen16, uint32_t del16)
{
    const uint64_t r = rng.range(16);
    if (r < gen16)
        return MutOp::Generate;
    if (r < gen16 + del16)
        return MutOp::Delete;
    return MutOp::Retain;
}

void
validateMix(uint32_t gen16, uint32_t del16)
{
    if (gen16 + del16 > 16) {
        fatal("mutation mix misconfigured: generate (%u/16) + delete "
              "(%u/16) exceeds 16/16",
              gen16, del16);
    }
}

} // namespace

std::string_view
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Static: return "static";
      case SchedulerKind::Bandit: return "bandit";
    }
    return "?";
}

bool
schedulerKindFromString(const std::string &text, SchedulerKind *kind)
{
    if (text == "static")
        *kind = SchedulerKind::Static;
    else if (text == "bandit")
        *kind = SchedulerKind::Bandit;
    else
        return false;
    return true;
}

std::unique_ptr<MutationScheduler>
MutationScheduler::make(SchedulerKind kind, uint32_t gen16,
                        uint32_t del16, Prob prioritize)
{
    switch (kind) {
      case SchedulerKind::Static:
        return std::make_unique<StaticScheduler>(gen16, del16,
                                                 prioritize);
      case SchedulerKind::Bandit:
        return std::make_unique<BanditScheduler>(gen16, del16,
                                                 prioritize);
    }
    fatal("unknown mutation scheduler kind %u",
          static_cast<unsigned>(kind));
}

// --- StaticScheduler -------------------------------------------------

StaticScheduler::StaticScheduler(uint32_t gen16, uint32_t del16,
                                 Prob prioritize)
    : gen16_(gen16), del16_(del16), prioritize_(prioritize)
{
    validateMix(gen16, del16);
}

MutOp
StaticScheduler::pickOp(Rng &rng)
{
    return drawFromTable(rng, gen16_, del16_);
}

void
StaticScheduler::saveState(soc::SnapshotWriter & /*out*/) const
{
    // Stateless: the mix is configuration, not mutable state.
}

bool
StaticScheduler::loadState(soc::SnapshotReader & /*in*/,
                           std::string * /*error*/)
{
    return true;
}

// --- BanditScheduler -------------------------------------------------

BanditScheduler::BanditScheduler(uint32_t gen16, uint32_t del16,
                                 Prob prioritize)
    : prioritizeNum(std::clamp<uint64_t>(
          prioritize.den ? prioritize.num * 16 / prioritize.den : 12,
          8, 15))
{
    validateMix(gen16, del16);
    // Until profits accrue every arm carries the optimistic initial
    // score, so the opening table is near-uniform: the bandit tries
    // all three operators before the mix specializes. The floor of
    // one sixteenth per arm keeps every operator reachable forever,
    // so a temporarily unprofitable arm can recover.
    rebuildTable();
}

void
BanditScheduler::rebuildTable()
{
    // Scores: empirical profit per play, fixed-point. Unplayed arms
    // get the optimistic initial score so they are tried early.
    constexpr uint64_t scale = 1024;
    constexpr uint64_t optimistic = 4 * scale;
    std::array<uint64_t, numArms> score{};
    uint64_t total = 0;
    for (size_t a = 0; a < numArms; ++a) {
        score[a] = plays[a] == 0
                       ? optimistic
                       : 1 + profit[a] * scale / plays[a];
        total += score[a];
    }
    // 16 slots, at least one per arm; the 13 free slots go
    // proportionally to score, remainders to the highest scores
    // (ties broken by arm index — deterministic).
    std::array<uint32_t, numArms> slots{1, 1, 1};
    uint32_t assigned = numArms;
    std::array<uint64_t, numArms> remainder{};
    for (size_t a = 0; a < numArms; ++a) {
        const uint64_t exact = score[a] * (16 - numArms);
        slots[a] += static_cast<uint32_t>(exact / total);
        assigned += static_cast<uint32_t>(exact / total);
        remainder[a] = exact % total;
    }
    while (assigned < 16) {
        size_t best = 0;
        for (size_t a = 1; a < numArms; ++a) {
            if (remainder[a] > remainder[best])
                best = a;
        }
        remainder[best] = 0;
        ++slots[best];
        ++assigned;
    }
    table = slots;
}

MutOp
BanditScheduler::pickOp(Rng &rng)
{
    const MutOp op = drawFromTable(rng, table[0], table[1]);
    ++usesThisIter[static_cast<size_t>(op)];
    return op;
}

uint32_t
BanditScheduler::seedEnergy(uint64_t parent_increment) const
{
    // More energy for seeds with a track record: 1 iteration for
    // unproductive parents, up to 4 for strong ones.
    if (parent_increment == 0)
        return 1;
    if (parent_increment < 8)
        return 2;
    if (parent_increment < 64)
        return 3;
    return 4;
}

void
BanditScheduler::reportIteration(uint64_t cov_increment)
{
    for (size_t a = 0; a < numArms; ++a) {
        if (usesThisIter[a] == 0)
            continue;
        plays[a] += usesThisIter[a];
        profit[a] += cov_increment * usesThisIter[a];
        usesThisIter[a] = 0;
    }
    // Per-seed exploitation pressure: progress raises the prioritize
    // probability, droughts decay it.
    if (cov_increment > 0)
        prioritizeNum = std::min<uint64_t>(15, prioritizeNum + 1);
    else if (prioritizeNum > 8)
        --prioritizeNum;
    rebuildTable();
}

void
BanditScheduler::saveState(soc::SnapshotWriter &out) const
{
    for (size_t a = 0; a < numArms; ++a) {
        out.putU64(plays[a]);
        out.putU64(profit[a]);
        out.putU32(usesThisIter[a]);
    }
    out.putU64(prioritizeNum);
}

bool
BanditScheduler::loadState(soc::SnapshotReader &in, std::string *error)
{
    auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };
    try {
        for (size_t a = 0; a < numArms; ++a) {
            plays[a] = in.getU64();
            profit[a] = in.getU64();
            usesThisIter[a] = in.getU32();
        }
        prioritizeNum = in.getU64();
        if (prioritizeNum < 8 || prioritizeNum > 15)
            return fail("bandit prioritize probability out of range");
        rebuildTable();
        return true;
    } catch (const soc::SnapshotFormatError &e) {
        return fail(e.what());
    }
}

} // namespace turbofuzz::fuzzer
