/**
 * @file
 * Mutation-operator scheduling (paper §IV-C, generalized).
 *
 * The mutation engine decides, per seed-block transition, whether to
 * GENERATE a fresh random block, DELETE the seed block, or RETAIN it
 * (optionally mutating operands). The paper fixes the mix at
 * generate/delete/retain = 3/16, 11/16, 2/16; TheHuzz showed that
 * weighting operators by their observed coverage profit beats any
 * static mix. MutationScheduler abstracts the decision:
 *
 *  - StaticScheduler — the paper's fixed table, drawing exactly the
 *    same single rng.range(16) per pick the historical inline code
 *    drew, so default campaigns reproduce bit-identically.
 *  - BanditScheduler — a per-operator multi-armed bandit: each arm's
 *    empirical coverage profit per play reshapes the sixteenths
 *    table after every iteration, a small floor per arm keeps
 *    exploration alive, and per-seed energy keeps the fuzzer on a
 *    productive parent seed for several consecutive iterations.
 *
 * Schedulers are deterministic (integer arithmetic only, all
 * randomness from the caller's Rng) and checkpointable, so a resumed
 * campaign schedules exactly like an uninterrupted one.
 */

#ifndef TURBOFUZZ_FUZZER_MUTATION_SCHEDULER_HH
#define TURBOFUZZ_FUZZER_MUTATION_SCHEDULER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/config.hh"
#include "common/rng.hh"

namespace turbofuzz::soc
{
class SnapshotWriter;
class SnapshotReader;
} // namespace turbofuzz::soc

namespace turbofuzz::fuzzer
{

/** One mutation-engine operation (paper §IV-C). */
enum class MutOp : uint8_t { Generate, Delete, Retain };

/** Which scheduling policy drives the mutation mix. */
enum class SchedulerKind : uint8_t
{
    Static, ///< the paper's fixed probability table (default)
    Bandit, ///< profit-weighted multi-armed bandit (TheHuzz-style)
};

/** Display/config name of a scheduler kind ("static", "bandit"). */
std::string_view schedulerKindName(SchedulerKind kind);

/** Parse a --scheduler value. @return false on unknown names. */
bool schedulerKindFromString(const std::string &text,
                             SchedulerKind *kind);

/** The mutation-operator scheduling policy. */
class MutationScheduler
{
  public:
    virtual ~MutationScheduler() = default;

    virtual std::string_view schedulerName() const = 0;

    /** Pick the operation for one seed-block transition. */
    virtual MutOp pickOp(Rng &rng) = 0;

    /** Corpus prioritize probability for seed selection. */
    virtual Prob prioritizeProb() const = 0;

    /**
     * Per-seed energy: how many consecutive iterations to keep
     * fuzzing a freshly selected seed whose recorded coverage
     * increment is @p parent_increment. 1 = reselect every iteration
     * (the paper's behaviour).
     */
    virtual uint32_t seedEnergy(uint64_t parent_increment) const
    {
        (void)parent_increment;
        return 1;
    }

    /**
     * Iteration-level feedback: the coverage increment the iteration
     * scheduled under this policy achieved.
     */
    virtual void reportIteration(uint64_t cov_increment) = 0;

    /** Checkpoint support: serialize all mutable policy state. */
    virtual void saveState(soc::SnapshotWriter &out) const = 0;

    /** Restore a saveState() image.
     *  @return false with @p error set on malformed input. */
    virtual bool loadState(soc::SnapshotReader &in,
                           std::string *error = nullptr) = 0;

    /**
     * Factory. @p gen16/@p del16 are the static mix (generate/delete
     * sixteenths; retain is the remainder), @p prioritize the corpus
     * prioritize probability. Misconfigured mixes (gen16 + del16 >
     * 16) are a user error and fail with a diagnostic.
     */
    static std::unique_ptr<MutationScheduler>
    make(SchedulerKind kind, uint32_t gen16, uint32_t del16,
         Prob prioritize);
};

/** The paper's fixed mix, bit-identical to the historical inline
 *  draw: one rng.range(16) per pick. */
class StaticScheduler : public MutationScheduler
{
  public:
    StaticScheduler(uint32_t gen16, uint32_t del16, Prob prioritize);

    std::string_view schedulerName() const override { return "static"; }
    MutOp pickOp(Rng &rng) override;
    Prob prioritizeProb() const override { return prioritize_; }
    void reportIteration(uint64_t /*cov_increment*/) override {}
    void saveState(soc::SnapshotWriter &out) const override;
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr) override;

  private:
    uint32_t gen16_;
    uint32_t del16_;
    Prob prioritize_;
};

/**
 * Profit-weighted bandit over the three operators. Each pick costs
 * one rng.range(16) draw against a table recomputed from per-arm
 * average profit after every iteration; every arm keeps at least one
 * sixteenth so no operator is ever starved. Seed selection adapts
 * too: sustained coverage progress raises the prioritize probability
 * toward 15/16 (exploitation), droughts decay it toward 1/2
 * (exploration), and per-seed energy scales with the parent's
 * recorded increment.
 */
class BanditScheduler : public MutationScheduler
{
  public:
    static constexpr size_t numArms = 3;

    BanditScheduler(uint32_t gen16, uint32_t del16, Prob prioritize);

    std::string_view schedulerName() const override { return "bandit"; }
    MutOp pickOp(Rng &rng) override;
    Prob prioritizeProb() const override
    {
        return {prioritizeNum, 16};
    }
    uint32_t seedEnergy(uint64_t parent_increment) const override;
    void reportIteration(uint64_t cov_increment) override;
    void saveState(soc::SnapshotWriter &out) const override;
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr) override;

    /** Current sixteenths of one arm (diagnostics/tests). */
    uint32_t armSixteenths(MutOp op) const
    {
        return table[static_cast<size_t>(op)];
    }

  private:
    /** Rebuild the sixteenths table from the arm statistics. */
    void rebuildTable();

    std::array<uint64_t, numArms> plays{};
    std::array<uint64_t, numArms> profit{};
    std::array<uint32_t, numArms> usesThisIter{};
    std::array<uint32_t, numArms> table{};
    uint64_t prioritizeNum;
};

} // namespace turbofuzz::fuzzer

#endif // TURBOFUZZ_FUZZER_MUTATION_SCHEDULER_HH
