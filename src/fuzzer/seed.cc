#include "fuzzer/seed.hh"

#include "common/logging.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::fuzzer
{

std::vector<uint8_t>
Seed::serialize() const
{
    soc::SnapshotWriter w;
    w.putU64(id);
    w.putU64(coverageIncrement);
    w.putU64(insertedAt);
    w.putU32(static_cast<uint32_t>(blocks.size()));
    for (const SeedBlock &b : blocks) {
        w.putU32(static_cast<uint32_t>(b.insns.size()));
        for (uint32_t insn : b.insns)
            w.putU32(insn);
        w.putU32(b.primeIdx);
        w.putU8(b.isControlFlow ? 1 : 0);
        w.putU32(static_cast<uint32_t>(b.targetBlock));
        w.putU32(b.position);
    }
    return w.takeBuffer();
}

Seed
Seed::deserialize(const std::vector<uint8_t> &bytes)
{
    soc::SnapshotReader r(bytes);
    Seed s;
    s.id = r.getU64();
    s.coverageIncrement = r.getU64();
    s.insertedAt = r.getU64();
    const uint32_t nblocks = r.getU32();
    s.blocks.resize(nblocks);
    for (SeedBlock &b : s.blocks) {
        const uint32_t ninsns = r.getU32();
        b.insns.resize(ninsns);
        for (uint32_t &insn : b.insns)
            insn = r.getU32();
        b.primeIdx = r.getU32();
        b.isControlFlow = r.getU8() != 0;
        b.targetBlock = static_cast<int32_t>(r.getU32());
        b.position = r.getU32();
    }
    TF_ASSERT(r.exhausted(), "trailing bytes in serialized seed");
    return s;
}

} // namespace turbofuzz::fuzzer
