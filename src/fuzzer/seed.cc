#include "fuzzer/seed.hh"

#include <cstdio>

#include "common/logging.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::fuzzer
{

namespace
{

/** Smallest possible serialized block: ninsns + primeIdx + flag +
 *  targetBlock + position with an empty instruction array. */
constexpr size_t minBlockBytes = 4 + 4 + 1 + 4 + 4;

std::string
formatError(const char *what, unsigned long long have,
            unsigned long long need)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s (need %llu bytes, have %llu)",
                  what, need, have);
    return buf;
}

} // namespace

void
writeSeedBlocks(soc::SnapshotWriter &w,
                const std::vector<SeedBlock> &blocks)
{
    w.putU32(static_cast<uint32_t>(blocks.size()));
    for (const SeedBlock &b : blocks) {
        w.putU32(static_cast<uint32_t>(b.insns.size()));
        for (uint32_t insn : b.insns)
            w.putU32(insn);
        w.putU32(b.primeIdx);
        w.putU8(b.isControlFlow ? 1 : 0);
        w.putU32(static_cast<uint32_t>(b.targetBlock));
        w.putU32(b.position);
    }
}

bool
readSeedBlocks(soc::SnapshotReader &r, std::vector<SeedBlock> &blocks,
               std::string *error)
{
    auto fail = [&](std::string msg) {
        if (error)
            *error = std::move(msg);
        return false;
    };

    if (r.remaining() < 4)
        return fail(formatError("truncated block count",
                                r.remaining(), 4));
    const uint32_t nblocks = r.getU32();
    // Every block costs at least minBlockBytes, so a length field
    // larger than that bound cannot describe this buffer — reject
    // before the resize() rather than attempting the allocation.
    if (nblocks > r.remaining() / minBlockBytes)
        return fail(formatError("block count exceeds buffer",
                                r.remaining(),
                                static_cast<unsigned long long>(
                                    nblocks) * minBlockBytes));
    blocks.clear();
    blocks.resize(nblocks);
    for (SeedBlock &b : blocks) {
        if (r.remaining() < minBlockBytes)
            return fail(formatError("truncated block header",
                                    r.remaining(), minBlockBytes));
        const uint32_t ninsns = r.getU32();
        if (ninsns > (r.remaining() - (minBlockBytes - 4)) / 4)
            return fail(formatError(
                "instruction count exceeds buffer", r.remaining(),
                static_cast<unsigned long long>(ninsns) * 4 +
                    (minBlockBytes - 4)));
        b.insns.resize(ninsns);
        for (uint32_t &insn : b.insns)
            insn = r.getU32();
        b.primeIdx = r.getU32();
        b.isControlFlow = r.getU8() != 0;
        b.targetBlock = static_cast<int32_t>(r.getU32());
        b.position = r.getU32();
        if (!b.insns.empty() && b.primeIdx >= b.insns.size())
            return fail("prime index out of range");
        // A control-flow block must have a prime word to patch —
        // consumers index insns[primeIdx] unconditionally.
        if (b.isControlFlow && b.insns.empty())
            return fail("control-flow block without instructions");
    }
    return true;
}

uint64_t
Seed::contentHash() const
{
    // FNV-1a over the block contents; scheduling metadata (id,
    // increment, age) is deliberately excluded so re-identified
    // imports of the same stimulus hash identically.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 0x100000001b3ull;
        }
    };
    mix(blocks.size());
    for (const SeedBlock &b : blocks) {
        mix(b.insns.size());
        for (uint32_t insn : b.insns)
            mix(insn);
        mix(b.primeIdx);
        mix(b.isControlFlow ? 1 : 0);
        mix(static_cast<uint64_t>(static_cast<uint32_t>(b.targetBlock)));
        mix(b.position);
    }
    return h;
}

std::vector<uint8_t>
Seed::serialize() const
{
    soc::SnapshotWriter w;
    w.putU64(id);
    w.putU64(coverageIncrement);
    w.putU64(insertedAt);
    w.putU64(parentId);
    w.putU8(originOp);
    w.putU32(lineageDepth);
    w.putU64(energyAtCreation);
    writeSeedBlocks(w, blocks);
    return w.takeBuffer();
}

std::optional<Seed>
Seed::tryDeserialize(const std::vector<uint8_t> &bytes,
                     std::string *error)
{
    soc::SnapshotReader r(bytes);
    Seed s;
    if (r.remaining() < 45) {
        if (error)
            *error = formatError("truncated seed header",
                                 r.remaining(), 45);
        return std::nullopt;
    }
    s.id = r.getU64();
    s.coverageIncrement = r.getU64();
    s.insertedAt = r.getU64();
    s.parentId = r.getU64();
    s.originOp = r.getU8();
    s.lineageDepth = r.getU32();
    s.energyAtCreation = r.getU64();
    if (!readSeedBlocks(r, s.blocks, error))
        return std::nullopt;
    if (!r.exhausted()) {
        if (error)
            *error = formatError("trailing bytes in serialized seed",
                                 r.remaining(), 0);
        return std::nullopt;
    }
    return s;
}

Seed
Seed::deserialize(const std::vector<uint8_t> &bytes)
{
    std::string error;
    auto s = tryDeserialize(bytes, &error);
    if (!s)
        throw SeedFormatError("seed deserialize: " + error);
    return std::move(*s);
}

} // namespace turbofuzz::fuzzer
