/**
 * @file
 * Seeds and instruction blocks (paper §IV-A).
 *
 * An *instruction block* is the generation unit: a mandatory prime
 * instruction plus optional affiliated instructions that establish
 * its prerequisites (address materialization, alignment masking, ...).
 *
 * A *seed* stores one archived iteration's blocks together with the
 * metadata the mutation engine needs: each block records its position
 * in the iteration, its control-flow status and its branch-target
 * block index, enabling precise pattern reproduction while keeping
 * architectural context (the paper's "stimulus entry" layout).
 */

#ifndef TURBOFUZZ_FUZZER_SEED_HH
#define TURBOFUZZ_FUZZER_SEED_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/small_vec.hh"

namespace turbofuzz::soc
{
class SnapshotWriter;
class SnapshotReader;
} // namespace turbofuzz::soc

namespace turbofuzz::fuzzer
{

/**
 * Thrown by Seed::deserialize (and other stimulus parsers) on
 * corrupt or truncated input. Untrusted bytes — a damaged corpus
 * file, a truncated fleet transfer — must surface as a typed,
 * catchable error, never as a panic or a multi-gigabyte allocation
 * from a corrupted length field.
 */
class SeedFormatError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One instruction block inside a seed or generated iteration. */
struct SeedBlock
{
    /**
     * Prime + affiliated instruction words, in program order.
     * Inline capacity 8 covers every block the builder emits
     * (≤3 filler + ≤3 affiliated + prime), so steady-state block
     * construction, copying and retention never touch the heap.
     */
    SmallVec<uint32_t, 8> insns;

    /** Index of the prime instruction within insns. */
    uint32_t primeIdx = 0;

    /** Whether the prime is a branch/jump. */
    bool isControlFlow = false;

    /**
     * For control-flow blocks: index of the target block within the
     * iteration, or -1 when the target is fall-through/unassigned.
     */
    int32_t targetBlock = -1;

    /** Position of this block within its original iteration. */
    uint32_t position = 0;

    uint32_t instrCount() const
    {
        return static_cast<uint32_t>(insns.size());
    }
};

/** An archived stimulus with scheduling metadata. */
struct Seed
{
    uint64_t id = 0;
    std::vector<SeedBlock> blocks;

    /**
     * Coverage improvement recorded when this seed last ran
     * (the corpus-scheduling priority signal, §IV-D).
     */
    uint64_t coverageIncrement = 0;

    /** Monotone counter of corpus insertion (FIFO age). */
    uint64_t insertedAt = 0;

    // --- genealogy (docs/provenance.md) — strictly observational:
    // nothing in selection or mutation reads these back. They are
    // excluded from contentHash() but carried by serialize() and the
    // corpus checkpoint, so lineage survives save/restore.

    /**
     * Id of the seed this one was mutated from, 0 for roots (direct
     * generation). Ids are corpus-local; a cross-shard import resets
     * parentId to 0 (the referenced id belongs to the exporting
     * shard's id space and would alias an unrelated local seed) while
     * keeping lineageDepth and originOp.
     */
    uint64_t parentId = 0;

    /** ProvenanceOp (coverage/provenance.hh) that created this seed:
     *  the dominant mutation operator, or Direct for roots. */
    uint8_t originOp = 0;

    /** Ancestry length: 0 for roots, parent's depth + 1 otherwise. */
    uint32_t lineageDepth = 0;

    /** Scheduler energy granted when this seed was archived. */
    uint64_t energyAtCreation = 0;

    uint32_t
    totalInstrs() const
    {
        uint32_t n = 0;
        for (const auto &b : blocks)
            n += b.instrCount();
        return n;
    }

    /**
     * Stable 64-bit hash of the stimulus content (the blocks and
     * their metadata) — independent of id, recorded increment and
     * insertion age. Two seeds with equal hashes carry the same
     * stimulus for all practical purposes; the corpus uses this to
     * deduplicate cross-shard imports (see Corpus::importSeeds).
     */
    uint64_t contentHash() const;

    /** Serialize to the byte layout used for BRAM/DDR storage. */
    std::vector<uint8_t> serialize() const;

    /**
     * Rebuild from serialize() output.
     * @throws SeedFormatError on corrupt or truncated input.
     */
    static Seed deserialize(const std::vector<uint8_t> &bytes);

    /**
     * Non-throwing variant: returns std::nullopt on malformed input
     * and, when @p error is non-null, stores a diagnostic there.
     * Every length field is validated against the remaining buffer
     * before any allocation, so hostile inputs cannot trigger
     * multi-gigabyte resize() calls.
     */
    static std::optional<Seed>
    tryDeserialize(const std::vector<uint8_t> &bytes,
                   std::string *error = nullptr);
};

/**
 * A published seed for zero-copy fleet exchange: an immutable
 * ref-counted snapshot of the exported seed, plus its content hash
 * precomputed at publish time. Cross-shard exchange passes these by
 * pointer — no per-epoch serialize/deserialize, no block copies for
 * importers that dedup the content away. The referenced Seed still
 * carries the exporter's id/insertedAt; importers re-identify a
 * private copy on admission (Corpus::importShared), so sharing never
 * leaks one shard's id space into another.
 */
struct SeedShare
{
    std::shared_ptr<const Seed> seed;
    uint64_t contentHash = 0;
};

/** Append the block array in the Seed wire format. */
void writeSeedBlocks(soc::SnapshotWriter &w,
                     const std::vector<SeedBlock> &blocks);

/**
 * Parse a block array written by writeSeedBlocks(), with full bounds
 * validation. @return false (with @p error set when non-null) on
 * malformed input.
 */
bool readSeedBlocks(soc::SnapshotReader &r,
                    std::vector<SeedBlock> &blocks,
                    std::string *error = nullptr);

} // namespace turbofuzz::fuzzer

#endif // TURBOFUZZ_FUZZER_SEED_HH
