#include "fuzzer/turbofuzzer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fuzzer/exception_templates.hh"
#include "isa/csr.hh"
#include "isa/encoding.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::fuzzer
{

using isa::Opcode;
using isa::Operands;

TurboFuzzer::TurboFuzzer(FuzzerOptions options,
                         const isa::InstructionLibrary *library)
    : opts(options), lib(library),
      builder(options.layout, library, options.genProbs),
      seedCorpus(options.corpusCapacity, options.scheduling),
      sched(MutationScheduler::make(
          options.scheduler, options.mutGenSixteenths,
          options.mutDelSixteenths, options.corpusPrioritize)),
      ctx(options.layout), rng(options.seed)
{
    TF_ASSERT(opts.instrsPerIteration >= 8,
              "iteration size too small");
}

std::vector<SeedBlock>
TurboFuzzer::chooseBlocks(IterationInfo &info)
{
    std::vector<SeedBlock> blocks;
    blocks.reserve(lastBlockCount + lastBlockCount / 8 + 8);
    info.parentSeedId = 0;

    // Seed selection with per-seed energy: a seed with residual
    // energy is reused without consuming selection randomness; the
    // static policy always assigns energy 1, reproducing the
    // historical select-every-iteration RNG stream bit-exactly.
    const Seed *selected = nullptr;
    if (seedCorpus.size() > 0) {
        if (stickyEnergy > 0)
            selected = seedCorpus.findSeed(stickySeedId);
        if (!selected) {
            selected =
                seedCorpus.trySelect(rng, sched->prioritizeProb());
            if (selected) {
                stickySeedId = selected->id;
                stickyEnergy =
                    sched->seedEnergy(selected->coverageIncrement);
            }
        }
        if (stickyEnergy > 0)
            --stickyEnergy;
    }
    const Seed *seed = nullptr;
    if (selected && !selected->blocks.empty()) {
        seed = selected;
        info.parentSeedId = selected->id;
    }

    uint64_t emitted = 0;
    size_t cursor = 0;
    while (emitted < opts.instrsPerIteration) {
        const bool mutate =
            seed != nullptr &&
            rng.chance(opts.mutationMode.num, opts.mutationMode.den);
        if (mutate) {
            switch (sched->pickOp(rng)) {
              case MutOp::Generate:
                // Generation: insert a fresh random block here.
                ++info.opGenerate;
                blocks.push_back(builder.buildRandomBlock(rng));
                break;
              case MutOp::Delete:
                // Deletion: skip the seed block (elimination flag).
                ++info.opDelete;
                cursor = (cursor + 1) % seed->blocks.size();
                continue;
              case MutOp::Retain: {
                ++info.opRetain;
                // Retention: keep the block, optionally mutating the
                // prime's operands; original jump target preserved
                // for the fix-up pass to validate.
                SeedBlock kept = seed->blocks[cursor];
                cursor = (cursor + 1) % seed->blocks.size();
                if (rng.chance(opts.retainMutate.num,
                               opts.retainMutate.den)) {
                    builder.mutateOperands(kept, rng);
                }
                blocks.push_back(std::move(kept));
                break;
              }
            }
        } else {
            blocks.push_back(builder.buildRandomBlock(rng));
            if (seed)
                cursor = (cursor + 1) % seed->blocks.size();
        }
        blocks.back().position =
            static_cast<uint32_t>(blocks.size() - 1);
        emitted += blocks.back().instrCount();
    }
    return blocks;
}

void
TurboFuzzer::fixupControlFlow(std::vector<SeedBlock> &blocks,
                              std::span<const uint64_t> block_addrs)
{
    const auto nblocks = static_cast<int64_t>(blocks.size());
    for (int64_t i = 0; i < nblocks; ++i) {
        SeedBlock &b = blocks[i];
        if (!b.isControlFlow)
            continue;

        // Jump-target selection against the global address table.
        int64_t target = -1;
        if (b.targetBlock >= 0 && b.targetBlock < nblocks &&
            b.targetBlock != i) {
            // Retained block whose target still exists: preserve it.
            target = b.targetBlock;
        } else if (opts.controlFlowOpt) {
            // Range-limited targets, biased forward so loops stay
            // the exception rather than the rule.
            const bool backward =
                i > 0 && rng.chance(opts.backwardJump.num,
                                    opts.backwardJump.den);
            int64_t lo, hi;
            if (backward) {
                lo = std::max<int64_t>(0, i - opts.jumpRangeBlocks);
                hi = i - 1;
            } else {
                lo = std::min<int64_t>(nblocks - 1, i + 1);
                hi = std::min<int64_t>(nblocks - 1,
                                       i + opts.jumpRangeBlocks);
            }
            target = lo + static_cast<int64_t>(
                              rng.range(static_cast<uint64_t>(
                                  hi - lo + 1)));
            if (target == i)
                target = (i + 1 < nblocks) ? i + 1 : std::max<int64_t>(
                                                         0, i - 1);
        } else {
            // Unconstrained forward jumps: uniform over [i+1, L-1]
            // (the eq. 1 regime responsible for instruction skipping).
            if (i + 1 >= nblocks)
                target = i; // degenerate tail: self keeps decode legal
            else
                target = i + 1 +
                         static_cast<int64_t>(rng.range(
                             static_cast<uint64_t>(nblocks - 1 - i)));
        }
        patchBlockTarget(b, i, target, block_addrs);
    }
}

std::vector<uint32_t>
TurboFuzzer::warmPrefixCode(const ReplayEnv &env)
{
    const MemoryLayout &lay = env.layout;

    // Constant prefix: x31 = dataBase; mtvec = handler; bootstrap
    // boilerplate. None of these instructions loads or stores memory,
    // so their execution — and therefore the post-prefix
    // architectural state — is a pure function of the environment.
    // This is the property the warm-start capture relies on; the
    // data-dependent FP loads live in preambleCode()'s tail instead.
    std::vector<uint32_t> prefix;
    {
        Operands o;
        o.rd = MemoryLayout::regDataBase;
        o.imm = static_cast<int64_t>(lay.dataBase >> 12);
        prefix.push_back(isa::encode(Opcode::Lui, o));
        Operands h;
        h.rd = MemoryLayout::regScratch;
        h.imm = static_cast<int64_t>(lay.handlerBase >> 12);
        prefix.push_back(isa::encode(Opcode::Lui, h));
        Operands w;
        w.rd = 0;
        w.rs1 = MemoryLayout::regScratch;
        w.csr = isa::csr::mtvec;
        prefix.push_back(isa::encode(Opcode::Csrrw, w));
    }
    // Bootstrap boilerplate (software-flow register/CSR init model):
    // lui/addi pairs materializing values into every register, padded
    // with context churn, executed before the fuzzing region. The
    // routine is NON-randomized (identical every iteration), like the
    // setup code the paper describes — it contributes coverage once
    // and then only costs execution time.
    if (env.bootstrapInstrs > 0) {
        Rng boot_rng(hashLabel("bootstrap") ^ env.fuzzerSeed);
        for (uint32_t i = 0; i < env.bootstrapInstrs; ++i) {
            Operands o;
            o.rd = static_cast<uint8_t>(1 + (i % 28));
            if (i % 2 == 0) {
                o.imm = static_cast<int64_t>(boot_rng.range(1 << 20));
                prefix.push_back(isa::encode(Opcode::Lui, o));
            } else {
                o.rs1 = o.rd;
                o.imm = static_cast<int64_t>(boot_rng.range(4096)) -
                        2048;
                prefix.push_back(isa::encode(Opcode::Addi, o));
            }
        }
    }
    return prefix;
}

std::vector<uint32_t>
TurboFuzzer::preambleCode(const ReplayEnv &env)
{
    // Constant prefix first, then the FP register file seeded from
    // the iteration's LFSR data (so FP operand classes vary per
    // iteration instead of starting at all-zero). The FP loads come
    // LAST: their loaded values depend on the per-iteration data
    // fill, so they are the part of the preamble warm-started
    // iterations still execute live.
    std::vector<uint32_t> preamble = warmPrefixCode(env);
    for (unsigned f = 0; f < 32; ++f) {
        Operands ld;
        ld.rd = static_cast<uint8_t>(f);
        ld.rs1 = MemoryLayout::regDataBase;
        ld.imm = static_cast<int64_t>(8 * f);
        preamble.push_back(isa::encode(Opcode::Fld, ld));
    }
    return preamble;
}

void
TurboFuzzer::fillDataSegment(const ReplayEnv &env,
                             uint64_t iteration_index,
                             soc::Memory &mem)
{
    const MemoryLayout &lay = env.layout;

    // Data segment fill from a uniquely-seeded LFSR (§IV-C), salted
    // with special FP values (zeros, infinities, NaNs, denormals —
    // boxed single and double variants) so that FP corner-operand
    // combinations are reachable. Purely random 64-bit patterns
    // essentially never decode to +-0.0 or inf.
    static constexpr uint64_t fpSpecials[] = {
        0x0000000000000000ull,         // +0.0
        0x8000000000000000ull,         // -0.0
        0x7FF0000000000000ull,         // +inf
        0xFFF0000000000000ull,         // -inf
        0x7FF8000000000000ull,         // qNaN
        0x0000000000000001ull,         // smallest denormal
        0x3FF0000000000000ull,         // 1.0
        0xFFFFFFFF00000000ull,         // boxed +0.0f
        0xFFFFFFFF80000000ull,         // boxed -0.0f
        0xFFFFFFFF7F800000ull,         // boxed +inf f
        0xFFFFFFFFFF800000ull,         // boxed -inf f
        0xFFFFFFFF7FC00000ull,         // boxed qNaN f
        0xFFFFFFFF00000001ull,         // boxed denormal f
        0xFFFFFFFF3F800000ull,         // boxed 1.0f
        0x7FEFFFFFFFFFFFFFull,         // DBL_MAX
        0xFFFFFFFF7F7FFFFFull,         // boxed FLT_MAX
    };
    FibonacciLfsr lfsr(64, env.fuzzerSeed ^ (iteration_index + 1));
    for (uint64_t off = 0; off < lay.dataSize; off += 8) {
        uint64_t word = lfsr.stepBits(64);
        if ((word & 0x7) == 0) { // ~1/8 of words carry a special
            word = fpSpecials[(word >> 3) %
                              (sizeof(fpSpecials) / 8)];
        }
        mem.write64(lay.dataBase + off, word);
    }
}

uint64_t
TurboFuzzer::materializeIteration(const ReplayEnv &env,
                                  const IterationInfo &info,
                                  soc::Memory &mem)
{
    return materializeIteration(env, info, mem, preambleCode(env));
}

uint64_t
TurboFuzzer::materializeIteration(const ReplayEnv &env,
                                  const IterationInfo &info,
                                  soc::Memory &mem,
                                  const std::vector<uint32_t> &preamble)
{
    ExceptionTemplates::install(mem, env.layout);
    fillDataSegment(env, info.iterationIndex, mem);

    uint64_t addr = env.layout.instrBase;
    for (uint32_t insn : preamble) {
        mem.write32(addr, insn);
        addr += 4;
    }
    TF_ASSERT(addr == info.firstBlockPc,
              "preamble does not match the iteration's layout");
    for (const SeedBlock &b : info.blocks) {
        for (uint32_t insn : b.insns) {
            mem.write32(addr, insn);
            addr += 4;
        }
    }
    return addr;
}

IterationInfo
TurboFuzzer::generateIteration(soc::Memory &mem)
{
    const MemoryLayout &lay = opts.layout;
    const ReplayEnv env = replayEnv();
    ctx.beginIteration();
    iterArena.reset();

    IterationInfo info;
    info.iterationIndex = iterCounter++;
    info.entryPc = lay.instrBase;

    // 1. The iteration preamble (deterministic in the environment)
    //    fixes where the fuzzing region starts.
    if (!preambleCached) {
        cachedPreamble = preambleCode(env);
        preambleCached = true;
    }
    const std::vector<uint32_t> &preamble = cachedPreamble;
    const size_t preamble_len = preamble.size();
    uint64_t addr = lay.instrBase + 4ull * preamble_len;
    info.firstBlockPc = addr;

    // 2. Choose the iteration's blocks (direct + mutation modes).
    info.blocks = chooseBlocks(info);
    lastBlockCount = info.blocks.size();

    // 3. Lay out blocks, recording the global address table
    //    (iteration-lifetime scratch: arena storage).
    uint64_t *block_addrs =
        iterArena.allocN<uint64_t>(info.blocks.size());
    size_t naddrs = 0;
    for (SeedBlock &b : info.blocks) {
        if (!ctx.hasRoom(b.instrCount() +
                         static_cast<uint32_t>(preamble_len))) {
            warn("instruction segment full; truncating iteration");
            info.blocks.resize(naddrs);
            break;
        }
        block_addrs[naddrs++] = addr;
        ctx.recordBlock(addr, b.instrCount());
        addr += 4ull * b.instrCount();
        info.generatedInstrs += b.instrCount();
    }

    // 4. Control-flow fix-up + operand rebinding.
    fixupControlFlow(info.blocks, {block_addrs, naddrs});

    // 5. Commit the complete memory image (templates, data fill,
    //    preamble, blocks) through the same path replay uses.
    const uint64_t boundary =
        materializeIteration(env, info, mem, preamble);
    ctx.finalize();
    info.codeBoundary = ctx.codeBoundary();
    TF_ASSERT(info.blocks.empty() || boundary == info.codeBoundary,
              "materialized image disagrees with layout context");
    return info;
}

void
TurboFuzzer::reportResult(const IterationInfo &info,
                          uint64_t cov_increment)
{
    // Scheduling feedback: the coverage profit of the operators this
    // iteration used (bandit arm statistics; no-op for Static).
    sched->reportIteration(cov_increment);

    // Mutation-mode feedback: refresh the parent's increment.
    if (info.parentSeedId != 0)
        seedCorpus.updateIncrement(info.parentSeedId, cov_increment);

    // Generation-mode admission: archive the iteration as a seed,
    // with its genealogy (docs/provenance.md). The fields are
    // observational — admission and selection never read them.
    Seed s;
    s.id = nextSeedId++;
    s.blocks = info.blocks;
    s.parentId = info.parentSeedId;
    s.originOp = info.dominantOp();
    s.energyAtCreation = sched->seedEnergy(cov_increment);
    if (info.parentSeedId != 0) {
        const Seed *parent = seedCorpus.findSeed(info.parentSeedId);
        s.lineageDepth = parent ? parent->lineageDepth + 1 : 1;
    }
    seedCorpus.offer(std::move(s), cov_increment);
}

void
TurboFuzzer::addSeed(Seed seed)
{
    seed.id = nextSeedId++;
    seedCorpus.addBaseline(std::move(seed));
}

size_t
TurboFuzzer::importSeeds(std::vector<Seed> seeds)
{
    return seedCorpus.importSeeds(std::move(seeds), nextSeedId);
}

std::vector<Seed>
TurboFuzzer::exportTopSeeds(size_t k) const
{
    return seedCorpus.exportTop(k);
}

size_t
TurboFuzzer::importSharedSeeds(const std::vector<SeedShare> &shares)
{
    return seedCorpus.importShared(shares, nextSeedId);
}

std::vector<SeedShare>
TurboFuzzer::exportTopSharedSeeds(size_t k)
{
    return seedCorpus.exportTopShared(k);
}

void
TurboFuzzer::saveState(soc::SnapshotWriter &out) const
{
    out.putU64(rng.rawState());
    out.putU64(iterCounter);
    out.putU64(nextSeedId);
    out.putU64(stickySeedId);
    out.putU32(stickyEnergy);
    seedCorpus.saveState(out);
    // Kind tag first: a checkpoint from a different --scheduler is
    // rejected with a diagnostic instead of misparsing policy state.
    out.putU8(static_cast<uint8_t>(opts.scheduler));
    sched->saveState(out);
}

bool
TurboFuzzer::loadState(soc::SnapshotReader &in, std::string *error)
{
    if (in.remaining() < 4 * 8 + 4) {
        if (error)
            *error = "truncated fuzzer state";
        return false;
    }
    rng.setRawState(in.getU64());
    iterCounter = in.getU64();
    nextSeedId = in.getU64();
    stickySeedId = in.getU64();
    stickyEnergy = in.getU32();
    if (!seedCorpus.loadState(in, error))
        return false;
    if (in.remaining() < 1 ||
        in.getU8() != static_cast<uint8_t>(opts.scheduler)) {
        if (error)
            *error = "scheduler kind mismatch (checkpoint from a "
                     "different --scheduler?)";
        return false;
    }
    return sched->loadState(in, error);
}

} // namespace turbofuzz::fuzzer
