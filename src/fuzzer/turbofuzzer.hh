/**
 * @file
 * The TurboFuzzer (paper §IV): the synthesizable hardware fuzzer's
 * behavioural model. One generateIteration() call corresponds to one
 * pass of the on-fabric generation pipeline: seed selection, per-
 * transition direct/mutation mode choice, instruction-block
 * construction, control-flow fix-up against the global address table,
 * unified operand assignment, and commitment of the iteration into
 * the DDR instruction segment.
 */

#ifndef TURBOFUZZ_FUZZER_TURBOFUZZER_HH
#define TURBOFUZZ_FUZZER_TURBOFUZZER_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.hh"
#include "common/config.hh"
#include "common/lfsr.hh"
#include "common/rng.hh"
#include "fuzzer/block_builder.hh"
#include "fuzzer/context.hh"
#include "fuzzer/corpus.hh"
#include "fuzzer/mutation_scheduler.hh"
#include "fuzzer/seed.hh"
#include "isa/instruction_library.hh"
#include "soc/memory.hh"

namespace turbofuzz::fuzzer
{

/** Configuration of the fuzzer (paper defaults). */
struct FuzzerOptions
{
    /** Target instructions per iteration (paper: 4000; §IV-C). */
    uint32_t instrsPerIteration = 4000;

    /** P(mutation mode) per state transition; direct otherwise. */
    Prob mutationMode{7, 16};

    /** Mutation-engine operation mix over 16ths: generate/delete/
     *  retain = 3/16, 11/16, 2/16. Consumed by the Static scheduling
     *  policy; the Bandit policy adapts its own mix from observed
     *  coverage profit (see mutation_scheduler.hh). */
    uint32_t mutGenSixteenths = 3;
    uint32_t mutDelSixteenths = 11;

    /** Mutation-operator scheduling policy (paper default: Static). */
    SchedulerKind scheduler = SchedulerKind::Static;

    /** P(prioritize high-increment seed) in corpus selection. */
    Prob corpusPrioritize{3, 4};

    /** P(apply operand mutation to a retained block). */
    Prob retainMutate{1, 2};

    /** Control-flow jump-range limitation (§IV-C). */
    bool controlFlowOpt = true;
    uint32_t jumpRangeBlocks = 8;

    /** Corpus capacity and scheduling policy (§IV-D). */
    size_t corpusCapacity = 64;
    SchedulingPolicy scheduling = SchedulingPolicy::CoverageGuided;

    /**
     * Boilerplate instructions executed before the fuzzing region on
     * every iteration. The on-fabric TurboFuzzer keeps architectural
     * context alive in hardware, so it needs none; software flows
     * like DifuzzRTL regenerate register/CSR/memory init routines per
     * iteration (hundreds of instructions), which is what drags
     * their prevalence below 0.2 (Fig. 4/8). The on-fabric fuzzer
     * still needs a short context-sync sequence (~120 instructions),
     * matching its measured prevalence of ~0.97.
     */
    uint32_t bootstrapInstrs = 120;

    /** P(backward target) for generated control flow; forward bias
     *  keeps accidental tight loops rare. */
    Prob backwardJump{1, 8};

    /** Campaign RNG seed. */
    uint64_t seed = 1;

    /** Memory layout contract. */
    MemoryLayout layout;

    /** Generation probabilities. */
    GenProbs genProbs;
};

/**
 * The deterministic generation environment a campaign iteration ran
 * in. Together with an IterationInfo this is sufficient to rebuild
 * the iteration's complete memory image outside the fuzzer — the
 * contract the triage subsystem's replay harness relies on
 * (exception templates, LFSR data fill and preamble are pure
 * functions of these fields plus the iteration index).
 */
struct ReplayEnv
{
    uint64_t fuzzerSeed = 1;
    uint32_t bootstrapInstrs = 120;
    MemoryLayout layout;
};

/** Description of one generated iteration. */
struct IterationInfo
{
    uint64_t iterationIndex = 0;
    uint64_t parentSeedId = 0;  ///< 0 = pure direct generation
    std::vector<SeedBlock> blocks;
    uint32_t generatedInstrs = 0; ///< fuzzing instruction words
    uint64_t entryPc = 0;         ///< preamble start
    uint64_t firstBlockPc = 0;    ///< fuzzing region start
    uint64_t codeBoundary = 0;    ///< end of generated code

    /**
     * End of the fuzzing region for prevalence accounting; 0 means
     * the region extends to codeBoundary (generators with teardown
     * code set this to exclude it).
     */
    uint64_t fuzzRegionEnd = 0;

    /**
     * Mutation-operator picks this iteration's block choice made
     * (provenance attribution, docs/provenance.md). Always counted —
     * three register increments per transition — so results cannot
     * depend on whether provenance is enabled.
     */
    uint32_t opGenerate = 0;
    uint32_t opDelete = 0;
    uint32_t opRetain = 0;

    /**
     * Dominant operator of this iteration as a
     * coverage::ProvenanceOp value: Direct (0) for pure generation,
     * otherwise the most-picked of Generate (1) / Delete (2) /
     * Retain (3), ties broken toward the smaller value.
     */
    uint8_t
    dominantOp() const
    {
        if (parentSeedId == 0 ||
            (opGenerate | opDelete | opRetain) == 0)
            return 0;
        if (opGenerate >= opDelete && opGenerate >= opRetain)
            return 1;
        return opDelete >= opRetain ? 2 : 3;
    }
};

/** The fuzzer core. */
class TurboFuzzer
{
  public:
    TurboFuzzer(FuzzerOptions options,
                const isa::InstructionLibrary *library);

    /**
     * Generate the next iteration and commit it (preamble, handler,
     * blocks, LFSR data fill) into @p mem.
     */
    IterationInfo generateIteration(soc::Memory &mem);

    /**
     * Feedback after the iteration ran on the DUT: archive it as a
     * seed when it improved coverage and refresh its parent's
     * recorded increment (§IV-D).
     */
    void reportResult(const IterationInfo &info,
                      uint64_t cov_increment);

    /** Inject a pre-built seed (deepExplore stage-1 output). */
    void addSeed(Seed seed);

    /**
     * Import peer-shard seeds (fleet seed exchange). Each seed is
     * re-identified into this fuzzer's id space before the corpus's
     * normal admission control runs.
     * @return number of seeds admitted.
     */
    size_t importSeeds(std::vector<Seed> seeds);

    /** Export the corpus's top @p k seeds for cross-shard exchange. */
    std::vector<Seed> exportTopSeeds(size_t k) const;

    /** Zero-copy import of published peer-shard seed blocks; same
     *  dedup and admission as importSeeds().
     *  @return number of seeds admitted. */
    size_t importSharedSeeds(const std::vector<SeedShare> &shares);

    /** Publish the corpus's top @p k seeds as shared immutable
     *  blocks (zero-copy cross-shard exchange). */
    std::vector<SeedShare> exportTopSharedSeeds(size_t k);

    /** Forward the campaign's metric registry to the corpus. */
    void
    bindTelemetry(telemetry::MetricRegistry *reg)
    {
        seedCorpus.bindTelemetry(reg);
    }

    Corpus &corpus() { return seedCorpus; }
    const FuzzerOptions &options() const { return opts; }
    const MutationScheduler &scheduler() const { return *sched; }

    uint64_t iterationsGenerated() const { return iterCounter; }

    /**
     * Checkpoint support: serialize every mutable field the next
     * generateIteration() reads (RNG stream, iteration counter, seed
     * id allocator, seed-energy bookkeeping, corpus, mutation
     * scheduler) so a resumed fuzzer generates the exact stimulus
     * sequence an uninterrupted one would.
     */
    void saveState(soc::SnapshotWriter &out) const;

    /** Restore a saveState() image. Configuration (options, library)
     *  comes from construction and must match the checkpointed run.
     *  @return false with @p error set on malformed input. */
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr);

    /** The environment descriptor for triage reproducers. */
    ReplayEnv
    replayEnv() const
    {
        return {opts.seed, opts.bootstrapInstrs, opts.layout};
    }

    /**
     * The iteration preamble (context setup + bootstrap boilerplate
     * + FP register loads). Deterministic in @p env — identical every
     * iteration, which is what lets a reproducer omit it.
     *
     * Layout contract: the preamble is warmPrefixCode(env) followed
     * by the data-dependent FP load tail. The prefix's *execution* is
     * a pure function of the environment (no loads, no stores, no
     * traps when bug-free), so warm-started iterations restore a
     * captured post-prefix snapshot instead of re-executing it; the
     * FP loads read the per-iteration LFSR data fill and always
     * execute live. See engine::WarmStart and docs/snapshot.md.
     */
    static std::vector<uint32_t> preambleCode(const ReplayEnv &env);

    /**
     * The constant prefix of preambleCode(env): context registers,
     * mtvec install and the bootstrap boilerplate — everything before
     * the first instruction whose behaviour depends on the
     * iteration's data fill.
     */
    static std::vector<uint32_t> warmPrefixCode(const ReplayEnv &env);

    /**
     * Fill the data segment exactly as iteration @p iteration_index
     * filled it (uniquely reseeded LFSR + FP special salting).
     */
    static void fillDataSegment(const ReplayEnv &env,
                                uint64_t iteration_index,
                                soc::Memory &mem);

    /**
     * Rebuild the complete memory image of @p info: exception
     * templates, data segment, preamble and the (already fixed-up)
     * instruction blocks. This is the exact write sequence
     * generateIteration() commits, exposed standalone for
     * deterministic replay.
     * @return the end address of the generated code (code boundary).
     */
    static uint64_t materializeIteration(const ReplayEnv &env,
                                         const IterationInfo &info,
                                         soc::Memory &mem);

    /** As above with a prebuilt preambleCode(env) result, sparing
     *  the hot generation path a second preamble construction. */
    static uint64_t
    materializeIteration(const ReplayEnv &env,
                         const IterationInfo &info, soc::Memory &mem,
                         const std::vector<uint32_t> &preamble);

  private:
    /** Choose blocks for the iteration (direct + mutation modes);
     *  sets @p info's parentSeedId and operator pick counts. */
    std::vector<SeedBlock> chooseBlocks(IterationInfo &info);

    /** Assign control-flow targets and patch instruction words. */
    void fixupControlFlow(std::vector<SeedBlock> &blocks,
                          std::span<const uint64_t> block_addrs);

    FuzzerOptions opts;
    const isa::InstructionLibrary *lib;
    BlockBuilder builder;
    Corpus seedCorpus;
    std::unique_ptr<MutationScheduler> sched;
    FuzzContext ctx;
    Rng rng;
    uint64_t iterCounter = 0;
    uint64_t nextSeedId = 1;

    /**
     * Per-seed energy (bandit scheduling): the parent seed the fuzzer
     * is committed to and how many further iterations it owes it.
     * Static scheduling always assigns energy 1, which reduces to the
     * historical select-every-iteration behaviour bit-exactly.
     */
    uint64_t stickySeedId = 0;
    uint32_t stickyEnergy = 0;

    /**
     * Per-iteration scratch arena (block address table and friends):
     * reset at the top of every generateIteration(), chunks retained,
     * so steady-state generation allocates nothing for scratch.
     */
    Arena iterArena;

    /** preambleCode(replayEnv()) — deterministic per campaign, so
     *  computed once instead of once per iteration. */
    std::vector<uint32_t> cachedPreamble;
    bool preambleCached = false;

    /** Block count of the previous iteration — reserve() guidance
     *  that keeps the blocks vector from reallocating as it grows. */
    size_t lastBlockCount = 0;
};

} // namespace turbofuzz::fuzzer

#endif // TURBOFUZZ_FUZZER_TURBOFUZZER_HH
