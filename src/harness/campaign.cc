#include "harness/campaign.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fuzzer/exception_templates.hh"

namespace turbofuzz::harness
{

namespace
{

/** Zero [from, to) word-wise (both campaign scrub ranges are small). */
void
scrubRange(soc::Memory &mem, uint64_t from, uint64_t to)
{
    for (uint64_t addr = from & ~uint64_t{3}; addr < to; addr += 4)
        mem.write32(addr, 0);
}

} // namespace

isa::InstructionLibrary
makeDefaultLibrary()
{
    isa::InstructionLibrary lib;
    lib.exclude(isa::Opcode::Mret);
    lib.setExtWeight(isa::Ext::System, 0.1);
    return lib;
}

Campaign::Campaign(CampaignOptions options,
                   std::unique_ptr<fuzzer::StimulusGenerator> generator)
    : opts(std::move(options)), gen(std::move(generator)),
      checker_(opts.checkMode)
{
    TF_ASSERT(gen != nullptr, "campaign requires a generator");

    core::Iss::Options dut_opts;
    dut_opts.bugs = opts.bugs;
    dut_opts.rv64aEnabled = opts.rv64aEnabled;
    dut_opts.resetPc = gen->layout().instrBase;
    dutCore = std::make_unique<core::Iss>(&dutMem, dut_opts);

    core::Iss::Options ref_opts;
    ref_opts.rv64aEnabled = opts.rv64aEnabled;
    ref_opts.resetPc = gen->layout().instrBase;
    refCore = std::make_unique<core::Iss>(&refMem, ref_opts);

    // Accessible ranges: instruction segment, data segment, handler.
    const fuzzer::MemoryLayout &lay = gen->layout();
    for (core::Iss *c : {dutCore.get(), refCore.get()}) {
        c->addAccessRange(lay.instrBase, lay.instrSize);
        c->addAccessRange(lay.dataBase, lay.dataSize);
        c->addAccessRange(lay.handlerBase, 4096);
    }

    design = rtl::buildCore(opts.coreKind);
    driver = std::make_unique<rtl::EventDriver>(design.get());
    instr = std::make_unique<coverage::DesignInstrumentation>(
        design.get(), opts.covScheme, opts.maxStateSize, opts.seed);
    covMap = std::make_unique<coverage::CoverageMap>(instr.get());

    plat = std::make_unique<soc::Platform>(opts.timing, &clock);

    engine_ = std::make_unique<engine::ExecutionEngine>(
        dutCore.get(), refCore.get(), &checker_, opts.batchSize);
}

IterationResult
Campaign::runIteration()
{
    const fuzzer::MemoryLayout &lay = gen->layout();
    IterationResult result;

    if (!startupCharged) {
        plat->chargeStartup();
        startupCharged = true;
    }

    // 1. Test generation (into the DUT memory), mirrored to the REF.
    const fuzzer::IterationInfo info = gen->generate(dutMem);

    // Scrub residue the generation did not overwrite: tail bytes of
    // longer earlier iterations past this codeBoundary, stray stores
    // beyond it, and stores past the freshly reinstalled trap
    // handler. A fresh (all-zero) memory then reproduces this
    // iteration's image exactly, which is what lets a reproducer
    // replay standalone (see docs/triage.md).
    if (instrDirtyHigh > info.codeBoundary)
        scrubRange(dutMem, info.codeBoundary, instrDirtyHigh);
    instrDirtyHigh = info.codeBoundary;
    static const uint64_t handler_words =
        fuzzer::ExceptionTemplates::handlerCode().size();
    const uint64_t handler_code_end =
        lay.handlerBase + 4ull * handler_words;
    if (handlerDirtyHigh > handler_code_end)
        scrubRange(dutMem, handler_code_end, handlerDirtyHigh);
    handlerDirtyHigh = handler_code_end;

    refMem = dutMem;
    result.generated = info.generatedInstrs;

    // 2. Reset both harts to the iteration entry.
    dutCore->reset(info.entryPc);
    refCore->reset(info.entryPc);

    const uint64_t step_cap =
        static_cast<uint64_t>(opts.stepCapFactor *
                              static_cast<double>(
                                  info.generatedInstrs)) +
        opts.stepCapSlack;

    // 3. Batched pipeline execution: DUT batch -> REF batch -> batch
    //    diff -> coverage sweep (engine::ExecutionEngine). On a
    //    mismatch the engine leaves harts and memory in the exact
    //    state the per-commit lockstep loop would have stopped in.
    engine::IterationPolicy policy;
    policy.codeBoundary = info.codeBoundary;
    policy.handlerBase = lay.handlerBase;
    policy.fuzzRegionStart = info.firstBlockPc;
    policy.fuzzRegionEnd =
        info.fuzzRegionEnd ? info.fuzzRegionEnd : info.codeBoundary;
    policy.resumeTraps = gen->usesExceptionTemplates();
    policy.stepCap = step_cap;
    policy.trapStormLimit = opts.trapStormLimit;
    policy.instrBase = lay.instrBase;
    policy.instrSize = lay.instrSize;
    policy.handlerSize = 4096;

    engine::ExecutionEngine::Hooks hooks;
    hooks.driver = driver.get();
    hooks.coverage = covMap.get();
    if (opts.commitObserver)
        hooks.observer = &opts.commitObserver;

    const engine::IterationOutcome out =
        engine_->runIteration(policy, hooks);

    result.executedTotal = out.executedTotal;
    result.executedFuzz = out.executedFuzz;
    result.newCoverage = out.newCoverage;
    result.traps = out.traps;

    // Stores that dirtied memory outside the regions generation
    // rewrites feed the next iteration's scrub.
    instrDirtyHigh = std::max(instrDirtyHigh, out.instrDirtyHigh);
    handlerDirtyHigh =
        std::max(handlerDirtyHigh, out.handlerDirtyHigh);

    if (out.mismatch) {
        result.mismatch = true;
        if (!mismatchInfo) {
            mismatchInfo = *out.mismatch;
            snapshot = checker::captureMismatchSnapshot(
                *out.mismatch, *dutCore, *refCore, clock.seconds());
        }
        captureReproducer(*out.mismatch, info,
                          out.mismatchCommitIndex);
    }

    // 5. Coverage feedback to the generator (corpus update).
    gen->feedback(info, result.newCoverage);

    // 6. Simulated-time accounting.
    plat->chargeIteration(result.generated, result.executedTotal);

    ++iterCount;
    executedTotal += result.executedTotal;
    executedFuzzTotal += result.executedFuzz;
    generatedTotal += result.generated;
    if (result.mismatch)
        ++mismatchCount;
    return result;
}

TimeSeries
Campaign::run(double budget_sec)
{
    TimeSeries series(std::string(gen->name()));
    runSlice(budget_sec, series);
    return series;
}

bool
Campaign::runSlice(double deadline_sec, TimeSeries &series)
{
    series.setDecimation(opts.sampleDecimation);
    while (clock.seconds() < deadline_sec) {
        const IterationResult r = runIteration();
        series.record(clock.seconds(),
                      static_cast<double>(covMap->totalCovered()));
        if (r.mismatch && opts.stopOnMismatch)
            return false;
    }
    return true;
}

size_t
Campaign::injectSeeds(std::vector<fuzzer::Seed> seeds)
{
    return gen->importSeeds(std::move(seeds));
}

void
Campaign::captureReproducer(const checker::Mismatch &mm,
                            const fuzzer::IterationInfo &info,
                            uint64_t iteration_commit_index)
{
    if (repros.size() >= opts.maxReproducers)
        return;
    const auto env = gen->replayEnv();
    if (!env)
        return; // generator cannot re-materialize past iterations

    triage::Reproducer r;
    r.coreKind = opts.coreKind;
    r.bugsRaw = opts.bugs.raw();
    r.rv64aEnabled = opts.rv64aEnabled;
    r.checkMode = opts.checkMode;
    r.resumeTraps = gen->usesExceptionTemplates();
    r.stepCapFactor = opts.stepCapFactor;
    r.stepCapSlack = opts.stepCapSlack;
    r.trapStormLimit = opts.trapStormLimit;
    r.env = *env;
    r.iteration = info;
    r.mismatch = mm;
    r.commitIndex = iteration_commit_index;
    r.detectSimTimeSec = clock.seconds();
    repros.push_back(std::move(r));
}

double
Campaign::prevalence() const
{
    return executedTotal
               ? static_cast<double>(executedFuzzTotal) /
                     static_cast<double>(executedTotal)
               : 0.0;
}

} // namespace turbofuzz::harness
