#include "harness/campaign.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fuzzer/exception_templates.hh"
#include "telemetry/clock.hh"

namespace turbofuzz::harness
{

namespace
{

/** Zero [from, to) word-wise (both campaign scrub ranges are small). */
void
scrubRange(soc::Memory &mem, uint64_t from, uint64_t to)
{
    for (uint64_t addr = from & ~uint64_t{3}; addr < to; addr += 4)
        mem.write32(addr, 0);
}

} // namespace

isa::InstructionLibrary
makeDefaultLibrary()
{
    isa::InstructionLibrary lib;
    lib.exclude(isa::Opcode::Mret);
    lib.setExtWeight(isa::Ext::System, 0.1);
    return lib;
}

Campaign::Campaign(CampaignOptions options,
                   std::unique_ptr<fuzzer::StimulusGenerator> generator)
    : opts(std::move(options)), gen(std::move(generator)),
      checker_(opts.checkMode)
{
    TF_ASSERT(gen != nullptr, "campaign requires a generator");

    core::Iss::Options dut_opts;
    dut_opts.bugs = opts.bugs;
    dut_opts.rv64aEnabled = opts.rv64aEnabled;
    dut_opts.resetPc = gen->layout().instrBase;
    dut_opts.decodeCache = opts.decodeCache;
    dutCore = std::make_unique<core::Iss>(&dutMem, dut_opts);

    core::Iss::Options ref_opts;
    ref_opts.rv64aEnabled = opts.rv64aEnabled;
    ref_opts.resetPc = gen->layout().instrBase;
    ref_opts.decodeCache = opts.decodeCache;
    refCore = std::make_unique<core::Iss>(&refMem, ref_opts);

    // Accessible ranges: instruction segment, data segment, handler.
    const fuzzer::MemoryLayout &lay = gen->layout();
    for (core::Iss *c : {dutCore.get(), refCore.get()}) {
        c->addAccessRange(lay.instrBase, lay.instrSize);
        c->addAccessRange(lay.dataBase, lay.dataSize);
        c->addAccessRange(lay.handlerBase, 4096);
    }

    // Fetch watches narrow decode-cache invalidation: only writes
    // into the code-bearing regions bump those regions' fetch
    // epochs, so the steady store traffic into the data segment
    // leaves cached decodes of instruction/handler words current.
    // (Code executed from anywhere else is guarded by the global
    // epoch, which every non-watch write bumps — always correct.)
    for (soc::Memory *m : {&dutMem, &refMem}) {
        m->addFetchWatch(lay.instrBase, lay.instrSize);
        m->addFetchWatch(lay.handlerBase, 4096);
    }

    design = rtl::buildCore(opts.coreKind);
    driver = std::make_unique<rtl::EventDriver>(design.get());
    instr = std::make_unique<coverage::DesignInstrumentation>(
        design.get(), opts.covScheme, opts.maxStateSize, opts.seed);
    covMap = std::make_unique<coverage::CoverageMap>(instr.get());

    // Pluggable feedback. The mux map is part of every configuration
    // (it is the reported metric and drives the RTL event model); a
    // weight-0 composite entry sweeps it without letting it into the
    // increment. Mux takes the raw map — the exact historical path.
    using coverage::CompositeFeedback;
    using coverage::CoverageModelKind;
    switch (opts.coverageModel) {
      case CoverageModelKind::Mux:
        feedback_ = covMap.get();
        break;
      case CoverageModelKind::Csr:
        csrModel_ = std::make_unique<coverage::CsrTransitionModel>();
        composite_ = std::make_unique<CompositeFeedback>(
            std::vector<CompositeFeedback::Part>{
                {covMap.get(), 0}, {csrModel_.get(), 1}});
        feedback_ = composite_.get();
        break;
      case CoverageModelKind::HitCount:
        hitModel_ = std::make_unique<coverage::HitCountModel>();
        composite_ = std::make_unique<CompositeFeedback>(
            std::vector<CompositeFeedback::Part>{
                {covMap.get(), 0}, {hitModel_.get(), 1}});
        feedback_ = composite_.get();
        break;
      case CoverageModelKind::Composite:
        csrModel_ = std::make_unique<coverage::CsrTransitionModel>();
        hitModel_ = std::make_unique<coverage::HitCountModel>();
        composite_ = std::make_unique<CompositeFeedback>(
            std::vector<CompositeFeedback::Part>{
                {covMap.get(), opts.feedbackWeightMux},
                {csrModel_.get(), opts.feedbackWeightCsr},
                {hitModel_.get(), opts.feedbackWeightHit}});
        feedback_ = composite_.get();
        break;
    }

    // Provenance: bind the first-hit ledger into the active feedback
    // model tree (a composite forwards to every part, so the mux map
    // and any auxiliary models all record into the one ledger). With
    // provenance off no model ever sees a ledger pointer.
    if (opts.provenance) {
        ledger_.setShard(opts.provenanceShard);
        feedback_->bindProvenance(&ledger_);
        forensics_ =
            telemetry::ForensicsRing(opts.forensicsCapacity);
    }

    plat = std::make_unique<soc::Platform>(opts.timing, &clock);

    engine_ = std::make_unique<engine::ExecutionEngine>(
        dutCore.get(), refCore.get(), &checker_, opts.batchSize);

    // Telemetry: resolve every instrument once (stable pointers into
    // the registry); the iteration loop then only does plain adds.
    // The generator forwards the registry to its corpus so scheduler
    // decisions are observable without polling.
    engineIns = telemetry::EngineInstruments::resolve(metrics_);
    fastPathIns = telemetry::FastPathInstruments::resolve(metrics_);
    mIterations = metrics_.counter("campaign.iterations");
    mCommits = metrics_.counter("campaign.commits");
    mTraps = metrics_.counter("campaign.traps");
    mMismatches = metrics_.counter("campaign.mismatches");
    mNewCoverage = metrics_.counter("campaign.new_coverage");
    mWarmIters = metrics_.counter("campaign.warm_iterations");
    mGenerateNs = metrics_.counter("campaign.generate_ns");
    mIterCommits = metrics_.histogram("campaign.iteration.commits");
    gen->bindTelemetry(&metrics_);

    // Warm start: capture the post-prefix lockstep snapshot once.
    // replayEnv() doubles as the layout contract — a generator that
    // provides it guarantees every iteration begins with
    // preambleCode(env) at instrBase, exactly what standalone replay
    // already relies on. Capture failure (a bug perturbing the
    // prefix) silently falls back to cold start, which is always
    // correct.
    if (opts.warmStart) {
        if (const auto env = gen->replayEnv()) {
            engine::WarmStartSpec spec;
            spec.dutOpts = dut_opts;
            spec.refOpts = ref_opts;
            spec.prefixCode = fuzzer::TurboFuzzer::warmPrefixCode(*env);
            spec.entryPc = lay.instrBase;
            spec.accessRanges = {{lay.instrBase, lay.instrSize},
                                 {lay.dataBase, lay.dataSize},
                                 {lay.handlerBase, 4096}};
            warm = engine::captureWarmStart(spec);
            warmFirstBlockPc =
                lay.instrBase +
                4ull * fuzzer::TurboFuzzer::preambleCode(*env).size();
        }
    }
}

IterationResult
Campaign::runIteration()
{
    const fuzzer::MemoryLayout &lay = gen->layout();
    IterationResult result;

    // Trace sampling is decided once per iteration so a sampled
    // iteration's spans form a complete stack; unsampled iterations
    // pass a null recorder everywhere (pointer-test cost only).
    telemetry::TraceRecorder *tr =
        (opts.trace && opts.trace->sampleIteration(iterCount))
            ? opts.trace
            : nullptr;
    telemetry::TraceSpan iterSpan(tr, "campaign.iteration");

    if (!startupCharged) {
        plat->chargeStartup();
        startupCharged = true;
    }

    // 1. Test generation (into the DUT memory), mirrored to the REF.
    fuzzer::IterationInfo info;
    {
        telemetry::ScopedStage stage(
            tr, opts.stageTiming ? mGenerateNs : nullptr,
            "fuzzer.generate");
        info = gen->generate(dutMem);
    }

    // Scrub residue the generation did not overwrite: tail bytes of
    // longer earlier iterations past this codeBoundary, stray stores
    // beyond it, and stores past the freshly reinstalled trap
    // handler. A fresh (all-zero) memory then reproduces this
    // iteration's image exactly, which is what lets a reproducer
    // replay standalone (see docs/triage.md).
    if (instrDirtyHigh > info.codeBoundary)
        scrubRange(dutMem, info.codeBoundary, instrDirtyHigh);
    instrDirtyHigh = info.codeBoundary;
    static const uint64_t handler_words =
        fuzzer::ExceptionTemplates::handlerCode().size();
    const uint64_t handler_code_end =
        lay.handlerBase + 4ull * handler_words;
    if (handlerDirtyHigh > handler_code_end)
        scrubRange(dutMem, handler_code_end, handlerDirtyHigh);
    handlerDirtyHigh = handler_code_end;

    refMem = dutMem;
    result.generated = info.generatedInstrs;

    // Provenance context: everything the feedback models record into
    // the ledger this iteration attributes to (iteration, parent
    // seed, dominant operator, sim time). simTimeSec and iteration
    // replay deterministically across checkpoint/resume; wallNs is
    // informational only (coverage/provenance.hh).
    if (opts.provenance) {
        ledger_.setContext(iterCount, info.parentSeedId,
                           info.dominantOp(), clock.seconds(),
                           telemetry::nowNs());
        telemetry::ForensicsEvent ev;
        ev.simTimeSec = clock.seconds();
        ev.iteration = iterCount;
        ev.kind = static_cast<uint8_t>(
            telemetry::ForensicsKind::SeedSelect);
        ev.a = info.parentSeedId;
        ev.b = info.dominantOp();
        ev.c = info.generatedInstrs;
        forensics_.push(ev);
        if (info.opGenerate + info.opDelete + info.opRetain > 0) {
            ev.kind = static_cast<uint8_t>(
                telemetry::ForensicsKind::SchedulerOp);
            ev.a = info.opGenerate;
            ev.b = info.opDelete;
            ev.c = info.opRetain;
            forensics_.push(ev);
        }
    }

    const uint64_t step_cap =
        static_cast<uint64_t>(opts.stepCapFactor *
                              static_cast<double>(
                                  info.generatedInstrs)) +
        opts.stepCapSlack;

    // 2. Iteration entry: warm-start by restoring the post-prefix
    //    snapshot (the engine installs the hart states), or cold
    //    reset both harts to the iteration entry. The layout guard
    //    re-checks per iteration that the generated code still
    //    matches the captured prefix contract.
    const bool use_warm =
        warm && info.entryPc == warm->entryPc &&
        info.firstBlockPc == warmFirstBlockPc &&
        step_cap > warm->prefixCommits();
    if (use_warm)
        ++warmIterCount;
    else {
        dutCore->reset(info.entryPc);
        refCore->reset(info.entryPc);
    }

    // 3. Batched pipeline execution: DUT batch -> REF batch -> batch
    //    diff -> coverage sweep (engine::ExecutionEngine). On a
    //    mismatch the engine leaves harts and memory in the exact
    //    state the per-commit lockstep loop would have stopped in.
    engine::IterationPolicy policy;
    policy.codeBoundary = info.codeBoundary;
    policy.handlerBase = lay.handlerBase;
    policy.fuzzRegionStart = info.firstBlockPc;
    policy.fuzzRegionEnd =
        info.fuzzRegionEnd ? info.fuzzRegionEnd : info.codeBoundary;
    policy.resumeTraps = gen->usesExceptionTemplates();
    policy.stepCap = step_cap;
    policy.trapStormLimit = opts.trapStormLimit;
    policy.instrBase = lay.instrBase;
    policy.instrSize = lay.instrSize;
    policy.handlerSize = 4096;

    engine::ExecutionEngine::Hooks hooks;
    hooks.driver = driver.get();
    hooks.coverage = feedback_;
    if (opts.commitObserver)
        hooks.observer = &opts.commitObserver;
    if (opts.stageTiming)
        hooks.instruments = &engineIns;
    hooks.fastpath = &fastPathIns;
    hooks.trace = tr;

    engine::IterationOutcome out;
    {
        telemetry::TraceSpan span(tr, "engine.iteration");
        out = engine_->runIteration(policy, hooks,
                                    use_warm ? &*warm : nullptr);
    }

    result.executedTotal = out.executedTotal;
    result.executedFuzz = out.executedFuzz;
    result.newCoverage = out.newCoverage;
    result.traps = out.traps;

    // Stores that dirtied memory outside the regions generation
    // rewrites feed the next iteration's scrub.
    instrDirtyHigh = std::max(instrDirtyHigh, out.instrDirtyHigh);
    handlerDirtyHigh =
        std::max(handlerDirtyHigh, out.handlerDirtyHigh);

    if (out.mismatch) {
        result.mismatch = true;
        if (!mismatchInfo) {
            mismatchInfo = *out.mismatch;
            snapshot = checker::captureMismatchSnapshot(
                *out.mismatch, *dutCore, *refCore, clock.seconds());
        }
        captureReproducer(*out.mismatch, info,
                          out.mismatchCommitIndex);
    }

    // Forensics: coverage delta, trap and mismatch markers; on a
    // captured mismatch the ring is dumped so the events leading up
    // to the divergence ride alongside the reproducer.
    if (opts.provenance) {
        telemetry::ForensicsEvent ev;
        ev.simTimeSec = clock.seconds();
        ev.iteration = iterCount;
        ev.kind = static_cast<uint8_t>(
            telemetry::ForensicsKind::CoverageDelta);
        ev.a = result.newCoverage;
        ev.b = feedback_->newlyHit();
        forensics_.push(ev);
        if (result.traps > 0) {
            ev.kind =
                static_cast<uint8_t>(telemetry::ForensicsKind::Trap);
            ev.a = result.traps;
            ev.b = ev.c = 0;
            forensics_.push(ev);
        }
        if (result.mismatch) {
            ev.kind = static_cast<uint8_t>(
                telemetry::ForensicsKind::Mismatch);
            ev.a = result.executedTotal;
            ev.b = ev.c = 0;
            forensics_.push(ev);
            if (forensicsDumps_.size() < opts.maxReproducers)
                forensicsDumps_.push_back(forensics_.toJson());
        }
    }

    // 5. Coverage feedback to the generator (corpus update).
    gen->feedback(info, result.newCoverage);

    // 6. Simulated-time accounting.
    plat->chargeIteration(result.generated, result.executedTotal);

    ++iterCount;
    executedTotal += result.executedTotal;
    executedFuzzTotal += result.executedFuzz;
    generatedTotal += result.generated;
    if (result.mismatch)
        ++mismatchCount;

    // 7. Metrics (plain adds; instruments resolved at construction).
    mIterations->add(1);
    mCommits->add(result.executedTotal);
    mTraps->add(result.traps);
    mNewCoverage->add(result.newCoverage);
    if (result.mismatch)
        mMismatches->add(1);
    if (use_warm)
        mWarmIters->add(1);
    mIterCommits->record(result.executedTotal);
    return result;
}

TimeSeries
Campaign::run(double budget_sec)
{
    TimeSeries series(std::string(gen->name()));
    runSlice(budget_sec, series);
    return series;
}

bool
Campaign::runSlice(double deadline_sec, TimeSeries &series)
{
    series.setDecimation(opts.sampleDecimation);
    while (clock.seconds() < deadline_sec) {
        const IterationResult r = runIteration();
        series.record(clock.seconds(),
                      static_cast<double>(covMap->totalCovered()));
        if (r.mismatch && opts.stopOnMismatch)
            return false;
    }
    return true;
}

size_t
Campaign::injectSeeds(std::vector<fuzzer::Seed> seeds)
{
    return gen->importSeeds(std::move(seeds));
}

size_t
Campaign::injectSharedSeeds(
    const std::vector<fuzzer::SeedShare> &shares)
{
    return gen->importSharedSeeds(shares);
}

void
Campaign::publishCoverageDelta(coverage::CoverageDelta &out)
{
    out.clear();
    covMap->publishDelta(out.mux);
    if (csrModel_)
        csrModel_->publishDelta(out.csr);
    if (hitModel_)
        hitModel_->publishDelta(out.edges);
    // Empty unless provenance is on — the ledger only fills when
    // bound into the models.
    ledger_.drainFreshHits(out.firstHits);
}

void
Campaign::captureReproducer(const checker::Mismatch &mm,
                            const fuzzer::IterationInfo &info,
                            uint64_t iteration_commit_index)
{
    if (repros.size() >= opts.maxReproducers)
        return;
    const auto env = gen->replayEnv();
    if (!env)
        return; // generator cannot re-materialize past iterations

    triage::Reproducer r;
    r.coreKind = opts.coreKind;
    r.bugsRaw = opts.bugs.raw();
    r.rv64aEnabled = opts.rv64aEnabled;
    r.checkMode = opts.checkMode;
    r.resumeTraps = gen->usesExceptionTemplates();
    r.stepCapFactor = opts.stepCapFactor;
    r.stepCapSlack = opts.stepCapSlack;
    r.trapStormLimit = opts.trapStormLimit;
    r.env = *env;
    r.iteration = info;
    r.mismatch = mm;
    r.commitIndex = iteration_commit_index;
    r.detectSimTimeSec = clock.seconds();
    repros.push_back(std::move(r));
}

double
Campaign::prevalence() const
{
    return executedTotal
               ? static_cast<double>(executedFuzzTotal) /
                     static_cast<double>(executedTotal)
               : 0.0;
}

namespace
{

// v2: auxiliary feedback-model states follow the mux coverage map.
// v3: telemetry metric state trails the generator blob (census-
//     validated on load; see telemetry::MetricRegistry::loadState).
// v4: provenance trailer last (census flag; ledger + forensics ring
//     + mismatch dumps when enabled), so a provenance-off campaign's
//     state stays a byte-level prefix match of a provenance-on one
//     up to the trailer.
constexpr uint32_t campaignStateVersion = 4;

} // namespace

bool
Campaign::saveState(soc::SnapshotWriter &out) const
{
    // Generator state first, into a scratch writer: a generator that
    // cannot checkpoint aborts the save before any bytes are
    // emitted, and the length prefix lets loadState() bound-check
    // the blob.
    soc::SnapshotWriter gen_state;
    if (!gen->checkpointSave(gen_state))
        return false;

    out.putU32(campaignStateVersion);
    out.putU64(clock.now());
    out.putU64(iterCount);
    out.putU64(executedTotal);
    out.putU64(executedFuzzTotal);
    out.putU64(generatedTotal);
    out.putU64(mismatchCount);
    out.putU8(startupCharged ? 1 : 0);
    out.putU64(instrDirtyHigh);
    out.putU64(handlerDirtyHigh);
    out.putU64(checker_.commitsChecked());

    dutCore->saveState(out);
    refCore->saveState(out);
    // Only the DUT memory is serialized: the REF memory is replaced
    // wholesale (refMem = dutMem) before the next iteration executes,
    // so its between-iteration contents are dead state. The DUT
    // memory must round-trip exactly — including page *residency* —
    // because future mismatch snapshots embed its resident pages.
    dutMem.saveState(out);
    driver->saveState(out);
    covMap->saveState(out);

    // Auxiliary feedback models, in fixed (csr, edges) order. The
    // census bitmask distinguishes the model *kinds*, so a csr-only
    // checkpoint cannot be misparsed by an edges-only campaign.
    out.putU8(coverage::auxModelCensus(csrModel_ != nullptr,
                                       hitModel_ != nullptr));
    if (csrModel_)
        csrModel_->saveState(out);
    if (hitModel_)
        hitModel_->saveState(out);

    out.putU8(mismatchInfo ? 1 : 0);
    if (mismatchInfo)
        checker::writeMismatch(out, *mismatchInfo);
    const std::vector<uint8_t> snap_image = snapshot.serialize();
    out.putU32(static_cast<uint32_t>(snap_image.size()));
    out.putBytes(snap_image.data(), snap_image.size());

    out.putU32(static_cast<uint32_t>(repros.size()));
    for (const triage::Reproducer &r : repros) {
        const std::vector<uint8_t> blob = r.serialize();
        out.putU32(static_cast<uint32_t>(blob.size()));
        out.putBytes(blob.data(), blob.size());
    }

    const std::vector<uint8_t> &gen_blob = gen_state.buffer();
    out.putU32(static_cast<uint32_t>(gen_blob.size()));
    out.putBytes(gen_blob.data(), gen_blob.size());

    // v3: metric state, so resumed campaigns report cumulative
    // counters rather than restarting the telemetry from zero.
    metrics_.saveState(out);

    // v4: provenance trailer. The census flag makes a checkpoint
    // from a provenance-on campaign unloadable by an off one (and
    // vice versa) with a typed error instead of a misparse.
    out.putU8(opts.provenance ? 1 : 0);
    if (opts.provenance) {
        ledger_.saveState(out);
        forensics_.saveState(out);
        out.putU32(static_cast<uint32_t>(forensicsDumps_.size()));
        for (const std::string &dump : forensicsDumps_)
            out.putString(dump);
    }
    return true;
}

bool
Campaign::loadState(soc::SnapshotReader &in, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    TF_ASSERT(iterCount == 0,
              "campaign state can only be restored into a fresh "
              "campaign");

    try {
        if (in.remaining() < 4 + 9 * 8 + 2)
            return fail("truncated campaign state header");
        if (in.getU32() != campaignStateVersion)
            return fail("unsupported campaign state version");
        clock.restore(in.getU64());
        iterCount = in.getU64();
        executedTotal = in.getU64();
        executedFuzzTotal = in.getU64();
        generatedTotal = in.getU64();
        mismatchCount = in.getU64();
        startupCharged = in.getU8() != 0;
        instrDirtyHigh = in.getU64();
        handlerDirtyHigh = in.getU64();
        // The checker of a fresh campaign starts at zero; advancing
        // it reproduces the checkpointed commit counter so future
        // Mismatch::instrIndex values line up.
        checker_.skipCommits(in.getU64());

        dutCore->loadState(in);
        refCore->loadState(in);
        dutMem.loadState(in);
        refMem = dutMem;
        if (!driver->loadState(in, error))
            return false;
        if (!covMap->loadState(in, error))
            return false;

        const uint8_t aux_census = in.getU8();
        const uint8_t aux_expected = coverage::auxModelCensus(
            csrModel_ != nullptr, hitModel_ != nullptr);
        if (aux_census != aux_expected) {
            return fail("feedback model census mismatch (checkpoint "
                        "from a different --coverage-model?)");
        }
        if (csrModel_ && !csrModel_->loadState(in, error))
            return false;
        if (hitModel_ && !hitModel_->loadState(in, error))
            return false;

        mismatchInfo.reset();
        if (in.getU8() != 0) {
            checker::Mismatch mm{};
            if (!checker::readMismatch(in, mm, error))
                return false;
            mismatchInfo = mm;
        }
        const uint32_t snap_size = in.getU32();
        if (snap_size > in.remaining())
            return fail("mismatch snapshot size exceeds buffer");
        std::vector<uint8_t> snap_image(snap_size);
        in.getBytes(snap_image.data(), snap_size);
        std::string snap_error;
        auto snap = soc::Snapshot::tryDeserialize(snap_image,
                                                  &snap_error);
        if (!snap)
            return fail("embedded mismatch snapshot: " + snap_error);
        snapshot = std::move(*snap);

        repros.clear();
        const uint32_t repro_count = in.getU32();
        if (repro_count > opts.maxReproducers)
            return fail("reproducer count exceeds campaign limit");
        for (uint32_t i = 0; i < repro_count; ++i) {
            const uint32_t size = in.getU32();
            if (size > in.remaining())
                return fail("reproducer size exceeds buffer");
            std::vector<uint8_t> blob(size);
            in.getBytes(blob.data(), size);
            std::string repro_error;
            auto r = triage::Reproducer::tryDeserialize(blob,
                                                        &repro_error);
            if (!r)
                return fail("embedded reproducer: " + repro_error);
            repros.push_back(std::move(*r));
        }

        const uint32_t gen_size = in.getU32();
        if (gen_size > in.remaining())
            return fail("generator state size exceeds buffer");
        std::vector<uint8_t> gen_blob(gen_size);
        in.getBytes(gen_blob.data(), gen_size);
        soc::SnapshotReader gen_reader(gen_blob);
        if (!gen->checkpointLoad(gen_reader, error))
            return false;
        if (!gen_reader.exhausted())
            return fail("trailing bytes in generator state");

        if (!metrics_.loadState(in, error))
            return false;

        const uint8_t prov_census = in.getU8();
        if ((prov_census != 0) != opts.provenance) {
            return fail("provenance census mismatch (checkpoint "
                        "from a run with provenance toggled?)");
        }
        if (opts.provenance) {
            if (!ledger_.loadState(in, error))
                return false;
            if (!forensics_.loadState(in, error))
                return false;
            forensicsDumps_.clear();
            const uint32_t dumps = in.getU32();
            if (dumps > opts.maxReproducers)
                return fail("forensics dump count exceeds campaign "
                            "limit");
            for (uint32_t i = 0; i < dumps; ++i)
                forensicsDumps_.push_back(in.getString());
        }
        return true;
    } catch (const soc::SnapshotFormatError &e) {
        return fail(e.what());
    }
}

} // namespace turbofuzz::harness
