#include "harness/campaign.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fuzzer/exception_templates.hh"

namespace turbofuzz::harness
{

namespace
{

/** Zero [from, to) word-wise (both campaign scrub ranges are small). */
void
scrubRange(soc::Memory &mem, uint64_t from, uint64_t to)
{
    for (uint64_t addr = from & ~uint64_t{3}; addr < to; addr += 4)
        mem.write32(addr, 0);
}

} // namespace

isa::InstructionLibrary
makeDefaultLibrary()
{
    isa::InstructionLibrary lib;
    lib.exclude(isa::Opcode::Mret);
    lib.setExtWeight(isa::Ext::System, 0.1);
    return lib;
}

Campaign::Campaign(CampaignOptions options,
                   std::unique_ptr<fuzzer::StimulusGenerator> generator)
    : opts(std::move(options)), gen(std::move(generator)),
      checker_(opts.checkMode)
{
    TF_ASSERT(gen != nullptr, "campaign requires a generator");

    core::Iss::Options dut_opts;
    dut_opts.bugs = opts.bugs;
    dut_opts.rv64aEnabled = opts.rv64aEnabled;
    dut_opts.resetPc = gen->layout().instrBase;
    dutCore = std::make_unique<core::Iss>(&dutMem, dut_opts);

    core::Iss::Options ref_opts;
    ref_opts.rv64aEnabled = opts.rv64aEnabled;
    ref_opts.resetPc = gen->layout().instrBase;
    refCore = std::make_unique<core::Iss>(&refMem, ref_opts);

    // Accessible ranges: instruction segment, data segment, handler.
    const fuzzer::MemoryLayout &lay = gen->layout();
    for (core::Iss *c : {dutCore.get(), refCore.get()}) {
        c->addAccessRange(lay.instrBase, lay.instrSize);
        c->addAccessRange(lay.dataBase, lay.dataSize);
        c->addAccessRange(lay.handlerBase, 4096);
    }

    design = rtl::buildCore(opts.coreKind);
    driver = std::make_unique<rtl::EventDriver>(design.get());
    instr = std::make_unique<coverage::DesignInstrumentation>(
        design.get(), opts.covScheme, opts.maxStateSize, opts.seed);
    covMap = std::make_unique<coverage::CoverageMap>(instr.get());

    plat = std::make_unique<soc::Platform>(opts.timing, &clock);
}

IterationResult
Campaign::runIteration()
{
    const fuzzer::MemoryLayout &lay = gen->layout();
    IterationResult result;

    if (!startupCharged) {
        plat->chargeStartup();
        startupCharged = true;
    }

    // 1. Test generation (into the DUT memory), mirrored to the REF.
    const fuzzer::IterationInfo info = gen->generate(dutMem);

    // Scrub residue the generation did not overwrite: tail bytes of
    // longer earlier iterations past this codeBoundary, stray stores
    // beyond it, and stores past the freshly reinstalled trap
    // handler. A fresh (all-zero) memory then reproduces this
    // iteration's image exactly, which is what lets a reproducer
    // replay standalone (see docs/triage.md).
    if (instrDirtyHigh > info.codeBoundary)
        scrubRange(dutMem, info.codeBoundary, instrDirtyHigh);
    instrDirtyHigh = info.codeBoundary;
    static const uint64_t handler_words =
        fuzzer::ExceptionTemplates::handlerCode().size();
    const uint64_t handler_code_end =
        lay.handlerBase + 4ull * handler_words;
    if (handlerDirtyHigh > handler_code_end)
        scrubRange(dutMem, handler_code_end, handlerDirtyHigh);
    handlerDirtyHigh = handler_code_end;

    refMem = dutMem;
    result.generated = info.generatedInstrs;

    // 2. Reset both harts to the iteration entry.
    dutCore->reset(info.entryPc);
    refCore->reset(info.entryPc);

    const uint64_t step_cap =
        static_cast<uint64_t>(opts.stepCapFactor *
                              static_cast<double>(
                                  info.generatedInstrs)) +
        opts.stepCapSlack;

    // 3. Lockstep execution with coverage collection and checking.
    const uint64_t start_commits = checker_.commitsChecked();
    const bool resume_traps = gen->usesExceptionTemplates();
    const uint64_t fuzz_end =
        info.fuzzRegionEnd ? info.fuzzRegionEnd : info.codeBoundary;
    while (true) {
        const core::CommitInfo dc = dutCore->step();
        const core::CommitInfo rc = refCore->step();

        driver->onCommit(dc);
        result.newCoverage += covMap->record();
        ++result.executedTotal;
        if (dc.pc >= info.firstBlockPc && dc.pc < fuzz_end)
            ++result.executedFuzz;
        if (opts.commitObserver)
            opts.commitObserver(dc);
        if (dc.trapped)
            ++result.traps;

        // Track stores that dirty memory outside the regions
        // generation rewrites, for the next iteration's scrub.
        if (dc.memWrite) {
            const uint64_t end = dc.memAddr + dc.memSize;
            if (dc.memAddr >= lay.instrBase &&
                dc.memAddr < lay.instrBase + lay.instrSize) {
                instrDirtyHigh = std::max(instrDirtyHigh, end);
            } else if (dc.memAddr >= lay.handlerBase &&
                       dc.memAddr < lay.handlerBase + 4096) {
                handlerDirtyHigh = std::max(handlerDirtyHigh, end);
            }
        }

        if (opts.checkMode ==
            checker::DiffChecker::Mode::PerInstruction) {
            if (auto mm = checker_.compare(dc, rc)) {
                result.mismatch = true;
                if (!mismatchInfo) {
                    mismatchInfo = *mm;
                    snapshot = checker::captureMismatchSnapshot(
                        *mm, *dutCore, *refCore, clock.seconds());
                }
                captureReproducer(*mm, info,
                                  mm->instrIndex - start_commits);
                break;
            }
        }

        const uint64_t pc = dutCore->state().pc;
        if (pc >= info.codeBoundary && pc < lay.handlerBase)
            break; // clean end of iteration
        if (dc.trapped && !resume_traps)
            break; // baseline: first trap ends the iteration
        if (result.traps > opts.trapStormLimit)
            break; // unresolvable exception storm
        if (result.executedTotal >= step_cap)
            break; // runaway loop protection
    }

    // 4. Coarse end-of-iteration checking (baseline mode).
    if (!result.mismatch &&
        opts.checkMode == checker::DiffChecker::Mode::EndOfIteration) {
        if (auto mm = checker_.compareFinalState(dutCore->state(),
                                                 refCore->state())) {
            result.mismatch = true;
            if (!mismatchInfo) {
                mismatchInfo = *mm;
                snapshot = checker::captureMismatchSnapshot(
                    *mm, *dutCore, *refCore, clock.seconds());
            }
            // End-of-iteration checking has no commit position; the
            // executed count is the within-iteration index replay
            // will reproduce.
            captureReproducer(*mm, info, result.executedTotal);
        }
    }

    // 5. Coverage feedback to the generator (corpus update).
    gen->feedback(info, result.newCoverage);

    // 6. Simulated-time accounting.
    plat->chargeIteration(result.generated, result.executedTotal);

    ++iterCount;
    executedTotal += result.executedTotal;
    executedFuzzTotal += result.executedFuzz;
    generatedTotal += result.generated;
    if (result.mismatch)
        ++mismatchCount;
    return result;
}

TimeSeries
Campaign::run(double budget_sec)
{
    TimeSeries series(std::string(gen->name()));
    runSlice(budget_sec, series);
    return series;
}

bool
Campaign::runSlice(double deadline_sec, TimeSeries &series)
{
    while (clock.seconds() < deadline_sec) {
        const IterationResult r = runIteration();
        series.record(clock.seconds(),
                      static_cast<double>(covMap->totalCovered()));
        if (r.mismatch && opts.stopOnMismatch)
            return false;
    }
    return true;
}

size_t
Campaign::injectSeeds(std::vector<fuzzer::Seed> seeds)
{
    return gen->importSeeds(std::move(seeds));
}

void
Campaign::captureReproducer(const checker::Mismatch &mm,
                            const fuzzer::IterationInfo &info,
                            uint64_t iteration_commit_index)
{
    if (repros.size() >= opts.maxReproducers)
        return;
    const auto env = gen->replayEnv();
    if (!env)
        return; // generator cannot re-materialize past iterations

    triage::Reproducer r;
    r.coreKind = opts.coreKind;
    r.bugsRaw = opts.bugs.raw();
    r.rv64aEnabled = opts.rv64aEnabled;
    r.checkMode = opts.checkMode;
    r.resumeTraps = gen->usesExceptionTemplates();
    r.stepCapFactor = opts.stepCapFactor;
    r.stepCapSlack = opts.stepCapSlack;
    r.trapStormLimit = opts.trapStormLimit;
    r.env = *env;
    r.iteration = info;
    r.mismatch = mm;
    r.commitIndex = iteration_commit_index;
    r.detectSimTimeSec = clock.seconds();
    repros.push_back(std::move(r));
}

double
Campaign::prevalence() const
{
    return executedTotal
               ? static_cast<double>(executedFuzzTotal) /
                     static_cast<double>(executedTotal)
               : 0.0;
}

} // namespace turbofuzz::harness
