/**
 * @file
 * Fuzzing campaign harness: the end-to-end verification loop.
 *
 * One Campaign wires together everything the paper's Fig. 2 shows on
 * the FPGA board: a stimulus generator, the DUT core (with injected
 * bugs) and its golden reference, the structural RTL model driven by
 * commit events, coverage instrumentation + map, the differential
 * checker, and the platform timing model that charges simulated time
 * for every loop stage. Execution itself runs on the batched
 * engine::ExecutionEngine (docs/engine.md): DUT batch -> REF batch ->
 * batch diff -> coverage sweep, bit-identical to the historical
 * per-commit lockstep loop at every batch size.
 */

#ifndef TURBOFUZZ_HARNESS_CAMPAIGN_HH
#define TURBOFUZZ_HARNESS_CAMPAIGN_HH

#include <functional>
#include <memory>
#include <optional>

#include "checker/diff_checker.hh"
#include "common/sim_clock.hh"
#include "common/stats.hh"
#include "core/bugs.hh"
#include "core/iss.hh"
#include "coverage/coverage_map.hh"
#include "coverage/instrumentation.hh"
#include "coverage/provenance.hh"
#include "engine/execution_engine.hh"
#include "engine/warm_start.hh"
#include "fuzzer/generator.hh"
#include "rtl/cores.hh"
#include "rtl/driver.hh"
#include "soc/platform.hh"
#include "telemetry/forensics.hh"
#include "telemetry/instruments.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"
#include "triage/reproducer.hh"

namespace turbofuzz::harness
{

/** Campaign configuration. */
struct CampaignOptions
{
    core::CoreKind coreKind = core::CoreKind::Rocket;
    core::BugSet bugs;
    bool rv64aEnabled = true;

    /**
     * ISS decode cache + superblock fast path (core::Iss::Options).
     * Bit-identical either way (enforced by tests/engine/); exposed
     * so the equivalence suite can run both legs programmatically.
     * TURBOFUZZ_DECODE_CACHE=0/off overrides this to false.
     */
    bool decodeCache = true;

    coverage::Scheme covScheme = coverage::Scheme::Optimized;
    unsigned maxStateSize = 15;

    /**
     * Which feedback signal the corpus scheduler consumes
     * (docs/coverage.md). The mux CoverageMap is always maintained —
     * it is the reported coverage metric and drives the RTL event
     * model — so non-default kinds change only the increment fed
     * back to the generator: Csr schedules on CSR-transition
     * coverage, HitCount on bucketed control-flow-edge counts, and
     * Composite on the weighted sum of all three signals. The
     * default (Mux) takes the exact historical code path.
     */
    coverage::CoverageModelKind coverageModel =
        coverage::CoverageModelKind::Mux;

    /** Composite-mode signal weights: increment = sum(newly * w). */
    uint32_t feedbackWeightMux = 1;
    uint32_t feedbackWeightCsr = 1;
    uint32_t feedbackWeightHit = 1;

    checker::DiffChecker::Mode checkMode =
        checker::DiffChecker::Mode::PerInstruction;

    soc::TimingProfile timing;

    uint64_t seed = 1;
    bool stopOnMismatch = false;

    /** Iteration abort: executed > capFactor * generated + capSlack.
     *  Calibrated so a 4,000-instruction iteration retires ~4,122
     *  instructions (Table I's executed/iteration). */
    double stepCapFactor = 1.0;
    uint64_t stepCapSlack = 128;

    /** Iteration abort: too many traps (unresolvable situation). */
    uint32_t trapStormLimit = 400;

    /**
     * Commits per execution-engine pipeline batch. 1 reproduces the
     * classic lockstep loop; larger batches amortize the per-batch
     * stage costs and enable the engine's incremental coverage sweep.
     * Any value yields bit-identical campaign results (the engine's
     * equivalence contract, enforced by tests/engine/).
     */
    uint64_t batchSize = 64;

    /**
     * Coverage time-series decimation: run()/runSlice() keep every
     * Nth per-iteration sample (plus, always, the most recent one).
     * 1 keeps everything — bit-identical series to earlier releases;
     * larger values bound the series' memory growth on long
     * campaigns. See TimeSeries::setDecimation().
     */
    uint64_t sampleDecimation = 1;

    /**
     * Triage: retain up to this many mismatching iterations as
     * self-contained reproducers (stimulus + configuration +
     * divergence), ready for standalone replay, minimization and
     * deduplication. 0 disables capture; capture also requires the
     * generator to support replayEnv().
     */
    uint32_t maxReproducers = 8;

    /**
     * Warm-start iterations: capture a post-preamble-prefix snapshot
     * of the full lockstep state once (engine::captureWarmStart) and
     * begin each iteration by restoring it instead of cold reset +
     * prefix re-execution. Bit-identical campaign results to cold
     * start at every batch size (the engine's warm equivalence
     * contract, enforced by tests/engine/); requires a generator
     * with replayEnv(). Campaigns whose prefix cannot be captured
     * (e.g. a bug fires inside it) silently fall back to cold start.
     */
    bool warmStart = true;

    /**
     * Optional per-commit observer (DUT commits), e.g. for the
     * instruction-mix analyses of Fig. 4. Leave empty for speed.
     */
    std::function<void(const core::CommitInfo &)> commitObserver;

    /**
     * Stage-span sink (not owned). When set, sampled iterations
     * (TraceRecorder's sampling knob) emit "campaign.iteration",
     * "fuzzer.generate", "engine.iteration" and per-stage engine
     * spans into it. Null (the default) disables tracing at the cost
     * of one pointer test per span site.
     */
    telemetry::TraceRecorder *trace = nullptr;

    /**
     * Per-stage duration counters (engine.batch.*_ns,
     * campaign.generate_ns). Off by default: stage timing adds two
     * clock reads per pipeline stage per batch, which the default
     * build's throughput gate does not budget for.
     */
    bool stageTiming = false;

    /**
     * Coverage provenance (docs/provenance.md): bind a first-hit
     * ledger into the feedback models and keep a forensics event
     * ring. Strictly observational — campaign results (coverage,
     * corpus, reproducer bytes) are bit-identical on vs off, enforced
     * by tests/provenance/. Off by default: the models then never
     * touch the ledger (null-pointer gate) and the ring is never
     * pushed.
     */
    bool provenance = false;

    /** Shard index stamped into first-hit attributions (fleet). */
    uint32_t provenanceShard = 0;

    /** Forensics ring capacity (recent structured events kept). */
    uint32_t forensicsCapacity = 256;
};

/**
 * The instruction library configuration the benches and examples
 * share: the full RV64 IMAFD+Zicsr set, with mret reserved for the
 * exception templates and the System category down-weighted so trap
 * handling does not dominate iteration time.
 */
isa::InstructionLibrary makeDefaultLibrary();

/** Per-iteration outcome. */
struct IterationResult
{
    uint64_t generated = 0;
    uint64_t executedTotal = 0;
    uint64_t executedFuzz = 0; ///< commits inside the fuzzing region

    /**
     * Feedback increment of the iteration — the value the corpus
     * scheduler consumes. Under the default Mux model this is the
     * number of newly hit mux-coverage points; other models report
     * their (weighted) newly-hit counts instead.
     */
    uint64_t newCoverage = 0;
    uint64_t traps = 0;
    bool mismatch = false;
};

/** A full campaign instance. */
class Campaign
{
  public:
    Campaign(CampaignOptions options,
             std::unique_ptr<fuzzer::StimulusGenerator> generator);

    /** Generate + execute + check + feed back one iteration. */
    IterationResult runIteration();

    /**
     * Run until the simulated budget expires (or the first mismatch
     * when stopOnMismatch). Coverage samples are appended to the
     * returned series (time = simulated seconds).
     */
    TimeSeries run(double budget_sec);

    /**
     * Epoch-sliced run: iterate until the simulated clock reaches
     * @p deadline_sec (an absolute time), appending one coverage
     * sample per iteration to @p series. Slicing a budget into
     * consecutive deadlines reproduces run() bit-exactly — the fleet
     * orchestrator relies on this to keep single-shard fleets
     * identical to a plain campaign.
     * @return true unless stopped early by stopOnMismatch.
     */
    bool runSlice(double deadline_sec, TimeSeries &series);

    /**
     * Inject external seeds into the generator's corpus (fleet seed
     * exchange). Safe to call between iterations only.
     * @return number of seeds admitted.
     */
    size_t injectSeeds(std::vector<fuzzer::Seed> seeds);

    /**
     * Zero-copy variant of injectSeeds(): accept shared immutable
     * seed blocks published by a peer shard (fuzzer::SeedShare).
     * Same dedup and admission; safe between iterations only.
     * @return number of seeds admitted.
     */
    size_t
    injectSharedSeeds(const std::vector<fuzzer::SeedShare> &shares);

    /**
     * Publish everything the campaign's feedback models (and, when
     * provenance is on, its first-hit ledger) learned since the
     * previous publication into @p out — the shard side of the
     * fleet's O(new coverage) epoch barrier. Clears @p out first.
     * Safe between iterations only.
     */
    void publishCoverageDelta(coverage::CoverageDelta &out);

    // --- observers ---------------------------------------------------
    const coverage::CoverageMap &coverageMap() const { return *covMap; }

    /** The active feedback signal (the mux map by default). */
    const coverage::FeedbackModel &feedbackModel() const
    {
        return *feedback_;
    }

    /** CSR-transition model, or nullptr unless Csr/Composite. */
    const coverage::CsrTransitionModel *csrModel() const
    {
        return csrModel_.get();
    }

    /** Hit-count edge model, or nullptr unless HitCount/Composite. */
    const coverage::HitCountModel *hitCountModel() const
    {
        return hitModel_.get();
    }

    soc::Platform &platform() { return *plat; }
    double nowSec() const { return clock.seconds(); }

    uint64_t iterations() const { return iterCount; }
    uint64_t executedInstructions() const { return executedTotal; }
    uint64_t generatedInstructions() const { return generatedTotal; }

    /** Iterations that ended in a DUT/REF mismatch. */
    uint64_t mismatchedIterations() const { return mismatchCount; }

    /** Campaign-wide prevalence (Fig. 8 metric). */
    double prevalence() const;

    const std::optional<checker::Mismatch> &firstMismatch() const
    {
        return mismatchInfo;
    }
    const soc::Snapshot &mismatchSnapshot() const { return snapshot; }

    /**
     * Reproducers captured so far (one per mismatching iteration, up
     * to CampaignOptions::maxReproducers), in detection order. Each
     * retains the mismatching iteration's full stimulus for
     * deterministic standalone replay (src/triage/).
     */
    const std::vector<triage::Reproducer> &reproducers() const
    {
        return repros;
    }

    /**
     * Campaign-local metric registry (single-threaded; see
     * docs/telemetry.md for the instrument vocabulary). The fleet
     * snapshots and merges these at epoch barriers. Metric state
     * participates in saveState()/loadState().
     */
    telemetry::MetricRegistry &metrics() { return metrics_; }
    const telemetry::MetricRegistry &metrics() const
    {
        return metrics_;
    }

    /** Whether the provenance layer is recording. */
    bool provenanceEnabled() const { return opts.provenance; }

    /**
     * First-hit ledger (empty unless CampaignOptions::provenance).
     * Point keys and attributions: coverage/provenance.hh.
     */
    const coverage::FirstHitLedger &provenanceLedger() const
    {
        return ledger_;
    }

    /** Forensics event ring (empty unless provenance is on). */
    const telemetry::ForensicsRing &forensics() const
    {
        return forensics_;
    }

    /**
     * Forensics ring dumps captured at mismatch time (JSON, one per
     * captured mismatch up to maxReproducers), parallel to
     * reproducers() in detection order.
     */
    const std::vector<std::string> &forensicsDumps() const
    {
        return forensicsDumps_;
    }

    fuzzer::StimulusGenerator &generator() { return *gen; }
    core::Iss &dut() { return *dutCore; }
    core::Iss &ref() { return *refCore; }
    coverage::DesignInstrumentation &instrumentation()
    {
        return *instr;
    }
    rtl::EventDriver &eventDriver() { return *driver; }

    /** Whether a warm-start snapshot was captured and is in use. */
    bool warmStartActive() const { return warm.has_value(); }

    /** Iterations that began from the warm snapshot (diagnostics —
     *  cold fallbacks indicate a layout or step-cap conflict). */
    uint64_t warmIterations() const { return warmIterCount; }

    /**
     * Checkpoint support: serialize every mutable field of the
     * campaign (clock, counters, memories, driver and coverage
     * state, checker progress, mismatch evidence, reproducers,
     * generator state) so a freshly constructed campaign with the
     * same options can resume bit-exactly. Requires a generator that
     * supports checkpointing.
     * @return false when the generator cannot checkpoint.
     */
    bool saveState(soc::SnapshotWriter &out) const;

    /**
     * Restore a saveState() image into this freshly constructed
     * campaign (same options and generator configuration).
     * @return false with @p error set on malformed input.
     */
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr);

  private:
    CampaignOptions opts;
    std::unique_ptr<fuzzer::StimulusGenerator> gen;

    soc::Memory dutMem;
    soc::Memory refMem;
    std::unique_ptr<core::Iss> dutCore;
    std::unique_ptr<core::Iss> refCore;

    std::unique_ptr<rtl::Module> design;
    std::unique_ptr<rtl::EventDriver> driver;
    std::unique_ptr<coverage::DesignInstrumentation> instr;
    std::unique_ptr<coverage::CoverageMap> covMap;

    /**
     * Pluggable feedback: the auxiliary models (when configured), the
     * composite combining them with the mux map, and the single model
     * pointer the engine's sweep stage consumes. Under the default
     * Mux kind, feedback_ is covMap itself — the historical path.
     */
    std::unique_ptr<coverage::CsrTransitionModel> csrModel_;
    std::unique_ptr<coverage::HitCountModel> hitModel_;
    std::unique_ptr<coverage::CompositeFeedback> composite_;
    coverage::FeedbackModel *feedback_ = nullptr;

    checker::DiffChecker checker_;
    std::unique_ptr<engine::ExecutionEngine> engine_;
    SimClock clock;
    std::unique_ptr<soc::Platform> plat;

    /**
     * Warm-start state captured once at construction (when enabled
     * and capturable): post-prefix hart snapshots plus the constant
     * prefix commit trace, and the firstBlockPc layout every
     * eligible iteration must present.
     */
    std::optional<engine::WarmStart> warm;
    uint64_t warmFirstBlockPc = 0;
    uint64_t warmIterCount = 0;

    uint64_t iterCount = 0;
    uint64_t executedTotal = 0;
    uint64_t executedFuzzTotal = 0;
    uint64_t generatedTotal = 0;
    uint64_t mismatchCount = 0;
    bool startupCharged = false;

    /**
     * High-water marks of bytes dirtied in the instruction segment
     * (by longer earlier iterations or stray stores) and past the
     * trap-handler code. Scrubbed to zero after each generation so
     * the memory an iteration runs on is a pure function of that
     * iteration's reproducer — the standalone-replay determinism
     * contract (triage) depends on this.
     */
    uint64_t instrDirtyHigh = 0;
    uint64_t handlerDirtyHigh = 0;

    std::optional<checker::Mismatch> mismatchInfo;
    soc::Snapshot snapshot;
    std::vector<triage::Reproducer> repros;

    /**
     * Provenance (docs/provenance.md). The ledger is bound into the
     * feedback models only when opts.provenance is set; otherwise
     * every structure below stays empty and untouched.
     */
    coverage::FirstHitLedger ledger_;
    telemetry::ForensicsRing forensics_;
    std::vector<std::string> forensicsDumps_;

    /**
     * Telemetry: the registry owns instrument storage (stable
     * pointers); the fields below cache resolved instruments so the
     * iteration loop never does name lookups. Bound components (the
     * generator's corpus) only touch their cached pointers inside
     * calls the campaign makes, never from destructors, so member
     * ordering is not load-bearing.
     */
    telemetry::MetricRegistry metrics_;
    telemetry::EngineInstruments engineIns;
    telemetry::FastPathInstruments fastPathIns;
    telemetry::Counter *mIterations = nullptr;
    telemetry::Counter *mCommits = nullptr;
    telemetry::Counter *mTraps = nullptr;
    telemetry::Counter *mMismatches = nullptr;
    telemetry::Counter *mNewCoverage = nullptr;
    telemetry::Counter *mWarmIters = nullptr;
    telemetry::Counter *mGenerateNs = nullptr;
    telemetry::Histogram *mIterCommits = nullptr;

    /** Retain the mismatching iteration as a replayable reproducer. */
    void captureReproducer(const checker::Mismatch &mm,
                           const fuzzer::IterationInfo &info,
                           uint64_t iteration_commit_index);
};

} // namespace turbofuzz::harness

#endif // TURBOFUZZ_HARNESS_CAMPAIGN_HH
