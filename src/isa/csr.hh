/**
 * @file
 * Control and Status Register addresses and field layouts.
 *
 * Only the CSRs the TurboFuzz loop interacts with are modelled; any
 * other address raises an illegal-instruction exception, which the
 * fuzzer's exception templates then handle.
 */

#ifndef TURBOFUZZ_ISA_CSR_HH
#define TURBOFUZZ_ISA_CSR_HH

#include <cstdint>

namespace turbofuzz::isa::csr
{

// User floating point.
constexpr uint16_t fflags = 0x001;
constexpr uint16_t frm = 0x002;
constexpr uint16_t fcsr = 0x003;

// Supervisor trap handling (exercised by bug C7: stval read mismatch).
constexpr uint16_t sscratch = 0x140;
constexpr uint16_t sepc = 0x141;
constexpr uint16_t scause = 0x142;
constexpr uint16_t stval = 0x143;

// Machine information / trap handling.
constexpr uint16_t mstatus = 0x300;
constexpr uint16_t misa = 0x301;
constexpr uint16_t mtvec = 0x305;
constexpr uint16_t mscratch = 0x340;
constexpr uint16_t mepc = 0x341;
constexpr uint16_t mcause = 0x342;
constexpr uint16_t mtval = 0x343;
constexpr uint16_t mhartid = 0xF14;

// Counters.
constexpr uint16_t mcycle = 0xB00;
constexpr uint16_t minstret = 0xB02;
constexpr uint16_t cycle = 0xC00;
constexpr uint16_t instret = 0xC02;

// mstatus fields.
constexpr uint64_t mstatusFsShift = 13;
constexpr uint64_t mstatusFsMask = 0x3ull << mstatusFsShift;
constexpr uint64_t mstatusFsOff = 0;
constexpr uint64_t mstatusFsInitial = 1;
constexpr uint64_t mstatusFsClean = 2;
constexpr uint64_t mstatusFsDirty = 3;

// fflags bits.
constexpr uint64_t flagNX = 1 << 0; ///< inexact
constexpr uint64_t flagUF = 1 << 1; ///< underflow
constexpr uint64_t flagOF = 1 << 2; ///< overflow
constexpr uint64_t flagDZ = 1 << 3; ///< divide by zero
constexpr uint64_t flagNV = 1 << 4; ///< invalid operation

// Rounding modes (frm values).
constexpr uint8_t rmRNE = 0;
constexpr uint8_t rmRTZ = 1;
constexpr uint8_t rmRDN = 2;
constexpr uint8_t rmRUP = 3;
constexpr uint8_t rmRMM = 4;
constexpr uint8_t rmDYN = 7; ///< instruction rm field: use frm

// Trap causes.
constexpr uint64_t causeMisalignedFetch = 0;
constexpr uint64_t causeIllegalInstruction = 2;
constexpr uint64_t causeBreakpoint = 3;
constexpr uint64_t causeMisalignedLoad = 4;
constexpr uint64_t causeLoadAccessFault = 5;
constexpr uint64_t causeMisalignedStore = 6;
constexpr uint64_t causeStoreAccessFault = 7;
constexpr uint64_t causeEcallM = 11;

} // namespace turbofuzz::isa::csr

#endif // TURBOFUZZ_ISA_CSR_HH
