#include "isa/disasm.hh"

#include <array>
#include <cstdio>

#include "isa/encoding.hh"
#include "isa/opcodes.hh"

namespace turbofuzz::isa
{

namespace
{
constexpr std::array<const char *, 32> intNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};

constexpr std::array<const char *, 32> fpNames = {
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
};
} // namespace

std::string
regName(unsigned x)
{
    return intNames[x & 0x1F];
}

std::string
fpRegName(unsigned f)
{
    return fpNames[f & 0x1F];
}

std::string
disassemble(uint32_t insn)
{
    const Decoded d = decode(insn);
    if (!d.valid) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), ".word 0x%08x", insn);
        return buf;
    }

    const InstrDesc &desc = *d.desc;
    const Operands &o = d.ops;
    const std::string mn(desc.mnemonic);

    auto rdn = [&]() {
        return desc.has(FlagFpRd) ? fpRegName(o.rd) : regName(o.rd);
    };
    auto rs1n = [&]() {
        return desc.has(FlagFpRs1) ? fpRegName(o.rs1) : regName(o.rs1);
    };
    auto rs2n = [&]() {
        return desc.has(FlagFpRs2) ? fpRegName(o.rs2) : regName(o.rs2);
    };

    char buf[96];
    switch (desc.fmt) {
      case Format::R:
      case Format::FpR:
      case Format::FpCmp:
        if (desc.rs2Field >= 0) {
            std::snprintf(buf, sizeof(buf), "%s %s, %s", mn.c_str(),
                          rdn().c_str(), rs1n().c_str());
        } else {
            std::snprintf(buf, sizeof(buf), "%s %s, %s, %s", mn.c_str(),
                          rdn().c_str(), rs1n().c_str(), rs2n().c_str());
        }
        break;
      case Format::R4:
        std::snprintf(buf, sizeof(buf), "%s %s, %s, %s, %s", mn.c_str(),
                      fpRegName(o.rd).c_str(), rs1n().c_str(),
                      rs2n().c_str(), fpRegName(o.rs3).c_str());
        break;
      case Format::FpR2:
        std::snprintf(buf, sizeof(buf), "%s %s, %s", mn.c_str(),
                      rdn().c_str(), rs1n().c_str());
        break;
      case Format::I:
        if (desc.has(FlagLoad)) {
            std::snprintf(buf, sizeof(buf), "%s %s, %lld(%s)", mn.c_str(),
                          rdn().c_str(), static_cast<long long>(o.imm),
                          regName(o.rs1).c_str());
        } else {
            std::snprintf(buf, sizeof(buf), "%s %s, %s, %lld", mn.c_str(),
                          rdn().c_str(), rs1n().c_str(),
                          static_cast<long long>(o.imm));
        }
        break;
      case Format::IShift:
      case Format::IShiftW:
        std::snprintf(buf, sizeof(buf), "%s %s, %s, %lld", mn.c_str(),
                      regName(o.rd).c_str(), regName(o.rs1).c_str(),
                      static_cast<long long>(o.imm));
        break;
      case Format::S:
        std::snprintf(buf, sizeof(buf), "%s %s, %lld(%s)", mn.c_str(),
                      rs2n().c_str(), static_cast<long long>(o.imm),
                      regName(o.rs1).c_str());
        break;
      case Format::B:
        std::snprintf(buf, sizeof(buf), "%s %s, %s, %lld", mn.c_str(),
                      regName(o.rs1).c_str(), regName(o.rs2).c_str(),
                      static_cast<long long>(o.imm));
        break;
      case Format::U:
        std::snprintf(buf, sizeof(buf), "%s %s, 0x%llx", mn.c_str(),
                      regName(o.rd).c_str(),
                      static_cast<unsigned long long>(o.imm));
        break;
      case Format::J:
        std::snprintf(buf, sizeof(buf), "%s %s, %lld", mn.c_str(),
                      regName(o.rd).c_str(), static_cast<long long>(o.imm));
        break;
      case Format::Amo:
        std::snprintf(buf, sizeof(buf), "%s %s, %s, (%s)", mn.c_str(),
                      regName(o.rd).c_str(), regName(o.rs2).c_str(),
                      regName(o.rs1).c_str());
        break;
      case Format::Csr:
        std::snprintf(buf, sizeof(buf), "%s %s, 0x%x, %s", mn.c_str(),
                      regName(o.rd).c_str(), o.csr,
                      regName(o.rs1).c_str());
        break;
      case Format::CsrI:
        std::snprintf(buf, sizeof(buf), "%s %s, 0x%x, %lld", mn.c_str(),
                      regName(o.rd).c_str(), o.csr,
                      static_cast<long long>(o.imm));
        break;
      case Format::Sys:
        std::snprintf(buf, sizeof(buf), "%s", mn.c_str());
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%s", mn.c_str());
        break;
    }
    return buf;
}

} // namespace turbofuzz::isa
