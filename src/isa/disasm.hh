/**
 * @file
 * Minimal RISC-V disassembler for debug output and bug reports.
 */

#ifndef TURBOFUZZ_ISA_DISASM_HH
#define TURBOFUZZ_ISA_DISASM_HH

#include <cstdint>
#include <string>

namespace turbofuzz::isa
{

/** Disassemble one 32-bit instruction word. */
std::string disassemble(uint32_t insn);

/** ABI name of integer register @p x ("zero", "ra", "sp", ...). */
std::string regName(unsigned x);

/** ABI name of FP register @p f ("ft0", "fa0", ...). */
std::string fpRegName(unsigned f);

} // namespace turbofuzz::isa

#endif // TURBOFUZZ_ISA_DISASM_HH
