#include "isa/encoding.hh"

#include <array>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace turbofuzz::isa
{

namespace
{

/** Compute the match/mask pair for a descriptor. */
MatchMask
computeMatchMask(const InstrDesc &d)
{
    uint32_t match = d.opcode7;
    uint32_t msk = 0x7F;

    auto fix_f3 = [&]() {
        if (d.funct3 >= 0) {
            match |= static_cast<uint32_t>(d.funct3) << 12;
            msk |= 0x7000;
        }
    };
    auto fix_f7 = [&]() {
        if (d.funct7 >= 0) {
            match |= static_cast<uint32_t>(d.funct7) << 25;
            msk |= 0xFE000000;
        }
    };
    auto fix_rs2 = [&]() {
        if (d.rs2Field >= 0) {
            match |= static_cast<uint32_t>(d.rs2Field) << 20;
            msk |= 0x01F00000;
        }
    };

    switch (d.fmt) {
      case Format::R:
        fix_f3();
        fix_f7();
        break;
      case Format::R4:
        // Only the 2-bit fmt field [26:25] is fixed; rm and rs3 live.
        match |= static_cast<uint32_t>(d.funct7) << 25;
        msk |= 0x06000000;
        break;
      case Format::I:
      case Format::S:
      case Format::B:
      case Format::Csr:
      case Format::CsrI:
        fix_f3();
        break;
      case Format::IShift:
        fix_f3();
        // 6-bit shamt on RV64: only imm[11:6] are fixed.
        match |= (static_cast<uint32_t>(d.funct7) << 25) & 0xFC000000;
        msk |= 0xFC000000;
        break;
      case Format::IShiftW:
        fix_f3();
        fix_f7();
        break;
      case Format::U:
      case Format::J:
        break;
      case Format::Amo:
        fix_f3();
        // funct5 fixed; aq/rl (bits 26:25) live.
        match |= (static_cast<uint32_t>(d.funct7) << 25) & 0xF8000000;
        msk |= 0xF8000000;
        fix_rs2();
        break;
      case Format::FpR:
        fix_f7();
        break;
      case Format::FpR2:
        fix_f7();
        fix_rs2();
        break;
      case Format::FpCmp:
        fix_f3();
        fix_f7();
        fix_rs2();
        break;
      case Format::Sys:
        fix_f3();
        if (d.op == Opcode::Ecall || d.op == Opcode::Ebreak ||
            d.op == Opcode::Mret) {
            // Entire word is fixed for ecall/ebreak/mret; the
            // rs2Field slot holds the full imm12 funct code.
            match |= static_cast<uint32_t>(d.rs2Field) << 20;
            msk = 0xFFFFFFFF;
        }
        break;
    }
    return {match, msk};
}

/** Decode acceleration: descriptors bucketed by major opcode. */
struct DecodeEntry
{
    MatchMask mm;
    const InstrDesc *desc;
};

const std::array<std::vector<DecodeEntry>, 128> &
decodeBuckets()
{
    static const auto buckets = [] {
        std::array<std::vector<DecodeEntry>, 128> b{};
        for (const auto &d : allDescs())
            b[d.opcode7].push_back({computeMatchMask(d), &d});
        return b;
    }();
    return buckets;
}

/** Extract decoded operands for a matched descriptor. */
Operands
extractOperands(uint32_t insn, const InstrDesc &d)
{
    Operands ops;
    ops.rd = static_cast<uint8_t>(bits(insn, 11, 7));
    ops.rs1 = static_cast<uint8_t>(bits(insn, 19, 15));
    ops.rs2 = static_cast<uint8_t>(bits(insn, 24, 20));
    switch (d.fmt) {
      case Format::R:
      case Format::FpR:
      case Format::FpCmp:
        ops.rm = static_cast<uint8_t>(bits(insn, 14, 12));
        break;
      case Format::R4:
        ops.rs3 = static_cast<uint8_t>(bits(insn, 31, 27));
        ops.rm = static_cast<uint8_t>(bits(insn, 14, 12));
        break;
      case Format::I:
        ops.imm = sext(bits(insn, 31, 20), 12);
        break;
      case Format::IShift:
        ops.imm = static_cast<int64_t>(bits(insn, 25, 20));
        break;
      case Format::IShiftW:
        ops.imm = static_cast<int64_t>(bits(insn, 24, 20));
        break;
      case Format::S:
        ops.imm = sext((bits(insn, 31, 25) << 5) | bits(insn, 11, 7), 12);
        break;
      case Format::B:
        ops.imm = sext((bit(insn, 31) << 12) | (bit(insn, 7) << 11) |
                           (bits(insn, 30, 25) << 5) |
                           (bits(insn, 11, 8) << 1),
                       13);
        break;
      case Format::U:
        ops.imm = static_cast<int64_t>(bits(insn, 31, 12));
        break;
      case Format::J:
        ops.imm = sext((bit(insn, 31) << 20) | (bits(insn, 19, 12) << 12) |
                           (bit(insn, 20) << 11) | (bits(insn, 30, 21) << 1),
                       21);
        break;
      case Format::Amo:
        ops.aq = bit(insn, 26);
        ops.rl = bit(insn, 25);
        break;
      case Format::FpR2:
        ops.rm = static_cast<uint8_t>(bits(insn, 14, 12));
        break;
      case Format::Csr:
        ops.csr = static_cast<uint16_t>(bits(insn, 31, 20));
        break;
      case Format::CsrI:
        ops.csr = static_cast<uint16_t>(bits(insn, 31, 20));
        ops.imm = static_cast<int64_t>(bits(insn, 19, 15)); // zimm
        break;
      case Format::Sys:
        ops.imm = static_cast<int64_t>(bits(insn, 31, 20));
        break;
    }
    return ops;
}

} // namespace

MatchMask
matchMaskOf(Opcode op)
{
    return computeMatchMask(descOf(op));
}

uint32_t
encode(Opcode op, const Operands &ops)
{
    const InstrDesc &d = descOf(op);
    uint32_t insn = d.opcode7;
    const uint32_t rd = ops.rd & 0x1F;
    const uint32_t rs1 = ops.rs1 & 0x1F;
    const uint32_t rs2 = ops.rs2 & 0x1F;
    const uint64_t imm = static_cast<uint64_t>(ops.imm);

    switch (d.fmt) {
      case Format::R:
        insn |= rd << 7 | static_cast<uint32_t>(d.funct3) << 12 |
                rs1 << 15 | rs2 << 20 |
                static_cast<uint32_t>(d.funct7) << 25;
        break;
      case Format::R4:
        insn |= rd << 7 | (ops.rm & 0x7u) << 12 | rs1 << 15 | rs2 << 20 |
                static_cast<uint32_t>(d.funct7) << 25 |
                (ops.rs3 & 0x1Fu) << 27;
        break;
      case Format::I:
        insn |= rd << 7 | static_cast<uint32_t>(d.funct3) << 12 |
                rs1 << 15 | static_cast<uint32_t>(imm & 0xFFF) << 20;
        break;
      case Format::IShift:
        insn |= rd << 7 | static_cast<uint32_t>(d.funct3) << 12 |
                rs1 << 15 | static_cast<uint32_t>(imm & 0x3F) << 20 |
                (static_cast<uint32_t>(d.funct7) << 25 & 0xFC000000);
        break;
      case Format::IShiftW:
        insn |= rd << 7 | static_cast<uint32_t>(d.funct3) << 12 |
                rs1 << 15 | static_cast<uint32_t>(imm & 0x1F) << 20 |
                static_cast<uint32_t>(d.funct7) << 25;
        break;
      case Format::S:
        insn |= static_cast<uint32_t>(bits(imm, 4, 0)) << 7 |
                static_cast<uint32_t>(d.funct3) << 12 | rs1 << 15 |
                rs2 << 20 | static_cast<uint32_t>(bits(imm, 11, 5)) << 25;
        break;
      case Format::B:
        insn |= static_cast<uint32_t>(bit(imm, 11)) << 7 |
                static_cast<uint32_t>(bits(imm, 4, 1)) << 8 |
                static_cast<uint32_t>(d.funct3) << 12 | rs1 << 15 |
                rs2 << 20 |
                static_cast<uint32_t>(bits(imm, 10, 5)) << 25 |
                static_cast<uint32_t>(bit(imm, 12)) << 31;
        break;
      case Format::U:
        insn |= rd << 7 | static_cast<uint32_t>(imm & 0xFFFFF) << 12;
        break;
      case Format::J:
        insn |= rd << 7 |
                static_cast<uint32_t>(bits(imm, 19, 12)) << 12 |
                static_cast<uint32_t>(bit(imm, 11)) << 20 |
                static_cast<uint32_t>(bits(imm, 10, 1)) << 21 |
                static_cast<uint32_t>(bit(imm, 20)) << 31;
        break;
      case Format::Amo:
        insn |= rd << 7 | static_cast<uint32_t>(d.funct3) << 12 |
                rs1 << 15 |
                ((d.rs2Field >= 0) ? static_cast<uint32_t>(d.rs2Field)
                                   : rs2)
                    << 20 |
                (ops.rl ? 1u << 25 : 0) | (ops.aq ? 1u << 26 : 0) |
                (static_cast<uint32_t>(d.funct7) << 25 & 0xF8000000);
        break;
      case Format::FpR:
        insn |= rd << 7 | (ops.rm & 0x7u) << 12 | rs1 << 15 | rs2 << 20 |
                static_cast<uint32_t>(d.funct7) << 25;
        break;
      case Format::FpR2:
        insn |= rd << 7 | (ops.rm & 0x7u) << 12 | rs1 << 15 |
                static_cast<uint32_t>(d.rs2Field) << 20 |
                static_cast<uint32_t>(d.funct7) << 25;
        break;
      case Format::FpCmp:
        insn |= rd << 7 | static_cast<uint32_t>(d.funct3) << 12 |
                rs1 << 15 |
                ((d.rs2Field >= 0) ? static_cast<uint32_t>(d.rs2Field)
                                   : rs2)
                    << 20 |
                static_cast<uint32_t>(d.funct7) << 25;
        break;
      case Format::Csr:
        insn |= rd << 7 | static_cast<uint32_t>(d.funct3) << 12 |
                rs1 << 15 | static_cast<uint32_t>(ops.csr & 0xFFF) << 20;
        break;
      case Format::CsrI:
        insn |= rd << 7 | static_cast<uint32_t>(d.funct3) << 12 |
                static_cast<uint32_t>(imm & 0x1F) << 15 |
                static_cast<uint32_t>(ops.csr & 0xFFF) << 20;
        break;
      case Format::Sys:
        if (d.op == Opcode::Ecall)
            insn = 0x00000073;
        else if (d.op == Opcode::Ebreak)
            insn = 0x00100073;
        else if (d.op == Opcode::Mret)
            insn = 0x30200073;
        else if (d.op == Opcode::Fence)
            insn = 0x0FF0000F; // fence iorw, iorw
        else
            panic("unhandled Sys opcode in encode()");
        break;
    }
    return insn;
}

Decoded
decode(uint32_t insn)
{
    Decoded result;
    const auto &bucket = decodeBuckets()[insn & 0x7F];
    for (const auto &entry : bucket) {
        if ((insn & entry.mm.mask) == entry.mm.match) {
            result.valid = true;
            result.op = entry.desc->op;
            result.desc = entry.desc;
            result.ops = extractOperands(insn, *entry.desc);
            return result;
        }
    }
    return result;
}

} // namespace turbofuzz::isa
