/**
 * @file
 * RISC-V instruction encoding and decoding.
 *
 * The encoder is used by the fuzzer's operand-assignment module to
 * commit generated instruction fields into executable 32-bit words;
 * the decoder is used by the ISS, disassembler and mutation engine.
 */

#ifndef TURBOFUZZ_ISA_ENCODING_HH
#define TURBOFUZZ_ISA_ENCODING_HH

#include <cstdint>

#include "isa/opcodes.hh"

namespace turbofuzz::isa
{

/**
 * Operand fields of an instruction, in decoded (architectural) form.
 *
 * Interpretation of @c imm by format:
 *  - I/S/B/J: sign-extended byte offset / immediate
 *  - U: the 20-bit payload placed in bits [31:12]
 *  - IShift/IShiftW: the shift amount
 */
struct Operands
{
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    uint8_t rs3 = 0;
    int64_t imm = 0;
    uint8_t rm = 0;   ///< FP rounding-mode field
    uint16_t csr = 0; ///< CSR address for Zicsr ops
    bool aq = false;  ///< AMO acquire bit
    bool rl = false;  ///< AMO release bit
};

/** Result of decoding a 32-bit instruction word. */
struct Decoded
{
    bool valid = false;
    Opcode op = Opcode::NumOpcodes;
    Operands ops;
    const InstrDesc *desc = nullptr;
};

/** Encode @p op with @p ops into a 32-bit instruction word. */
uint32_t encode(Opcode op, const Operands &ops);

/** Decode a 32-bit instruction word; invalid words yield !valid. */
Decoded decode(uint32_t insn);

/** Match/mask pair identifying an instruction (riscv-opcodes style). */
struct MatchMask
{
    uint32_t match;
    uint32_t mask;
};

/** The match/mask pair for @p op (useful for tests and mutation). */
MatchMask matchMaskOf(Opcode op);

} // namespace turbofuzz::isa

#endif // TURBOFUZZ_ISA_ENCODING_HH
