#include "isa/instruction_library.hh"

#include <algorithm>

#include "common/logging.hh"

namespace turbofuzz::isa
{

InstructionLibrary::InstructionLibrary()
    : excluded(numOpcodes(), false)
{
    enabled.fill(true);
    weights.fill(1.0);
    rebuild();
}

void
InstructionLibrary::setExtEnabled(Ext ext, bool on)
{
    enabled[static_cast<size_t>(ext)] = on;
    rebuild();
}

bool
InstructionLibrary::extEnabled(Ext ext) const
{
    return enabled[static_cast<size_t>(ext)];
}

void
InstructionLibrary::exclude(Opcode op)
{
    excluded[static_cast<size_t>(op)] = true;
    rebuild();
}

void
InstructionLibrary::include(Opcode op)
{
    excluded[static_cast<size_t>(op)] = false;
    rebuild();
}

void
InstructionLibrary::setExtWeight(Ext ext, double weight)
{
    TF_ASSERT(weight >= 0.0, "negative library weight");
    weights[static_cast<size_t>(ext)] = weight;
    rebuild();
}

void
InstructionLibrary::rebuild()
{
    activeOps.clear();
    cumWeights.clear();
    double acc = 0.0;
    for (const auto &d : allDescs()) {
        if (!enabled[static_cast<size_t>(d.ext)])
            continue;
        if (excluded[static_cast<size_t>(d.op)])
            continue;
        const double w = weights[static_cast<size_t>(d.ext)];
        if (w <= 0.0)
            continue;
        activeOps.push_back(d.op);
        acc += w;
        cumWeights.push_back(acc);
    }
}

const std::vector<Opcode> &
InstructionLibrary::active() const
{
    return activeOps;
}

Opcode
InstructionLibrary::pick(Rng &rng) const
{
    TF_ASSERT(!activeOps.empty(), "instruction library is empty");
    const double total = cumWeights.back();
    const double r = rng.uniform() * total;
    const auto it =
        std::upper_bound(cumWeights.begin(), cumWeights.end(), r);
    const size_t idx = static_cast<size_t>(it - cumWeights.begin());
    return activeOps[std::min(idx, activeOps.size() - 1)];
}

bool
InstructionLibrary::contains(Opcode op) const
{
    return std::find(activeOps.begin(), activeOps.end(), op) !=
           activeOps.end();
}

} // namespace turbofuzz::isa
