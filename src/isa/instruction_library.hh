/**
 * @file
 * The TurboFuzzer's configurable instruction library.
 *
 * Mirrors the paper's "dynamically configurable repository that
 * contains the complete RISC-V instruction set" (§IV-B2): individual
 * instruction subsets (I, M, F, A, Zicsr, ...) are organized into
 * categories that can be activated or deactivated through the VIO-style
 * configuration interface, and the library can be extended or replaced
 * to track future ISA changes.
 */

#ifndef TURBOFUZZ_ISA_INSTRUCTION_LIBRARY_HH
#define TURBOFUZZ_ISA_INSTRUCTION_LIBRARY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "isa/opcodes.hh"

namespace turbofuzz::isa
{

/**
 * A filtered, weighted view over the opcode table from which the
 * fuzzer's random generation module draws prime instructions.
 */
class InstructionLibrary
{
  public:
    /** Construct with every extension category enabled. */
    InstructionLibrary();

    /** Enable or disable an extension category (VIO toggle). */
    void setExtEnabled(Ext ext, bool enabled);

    /** Whether a category is currently enabled. */
    bool extEnabled(Ext ext) const;

    /**
     * Exclude a single opcode even when its category is enabled
     * (e.g. disallow ecall in pure random streams).
     */
    void exclude(Opcode op);

    /** Remove a previous exclusion. */
    void include(Opcode op);

    /**
     * Relative selection weight for a category; default 1.0. The
     * generator biases prime-instruction selection by these weights,
     * mirroring how the hardware library packs categories into LFSR
     * decode ranges.
     */
    void setExtWeight(Ext ext, double weight);

    /** Currently selectable opcodes (rebuilt eagerly on change). */
    const std::vector<Opcode> &active() const;

    /** Draw a random opcode honoring enables, exclusions and weights. */
    Opcode pick(Rng &rng) const;

    /** Number of currently selectable opcodes. */
    size_t activeCount() const { return active().size(); }

    /** True if @p op is currently selectable. */
    bool contains(Opcode op) const;

  private:
    // Rebuilt eagerly by the constructor and every mutator — never
    // from a const accessor. The fleet shares one library across
    // shard threads through a const pointer, so const reads must be
    // genuinely read-only (tests/fleet/barrier_stress_test.cc pins
    // this under TSan; lazy mutable rebuild was a data race).
    void rebuild();

    std::array<bool, static_cast<size_t>(Ext::NumExts)> enabled;
    std::array<double, static_cast<size_t>(Ext::NumExts)> weights;
    std::vector<bool> excluded;

    std::vector<Opcode> activeOps;
    std::vector<double> cumWeights;
};

} // namespace turbofuzz::isa

#endif // TURBOFUZZ_ISA_INSTRUCTION_LIBRARY_HH
