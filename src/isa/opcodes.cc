#include "isa/opcodes.hh"

#include <array>

#include "common/logging.hh"

namespace turbofuzz::isa
{

namespace
{

// Shorthand flag bundles for table readability.
constexpr uint32_t RD = FlagWritesRd;
constexpr uint32_t R1 = FlagReadsRs1;
constexpr uint32_t R2 = FlagReadsRs2;
constexpr uint32_t R3 = FlagReadsRs3;
constexpr uint32_t FRD = FlagFpRd;
constexpr uint32_t FR1 = FlagFpRs1;
constexpr uint32_t FR2 = FlagFpRs2;
constexpr uint32_t FR3 = FlagFpRs3;
constexpr uint32_t RM = FlagHasRm;
constexpr uint32_t FP = FlagFp;
constexpr uint32_t DBL = FlagDouble;
constexpr uint32_t W = FlagWordOp;

/** Row builder keeping the table compact. */
constexpr InstrDesc
row(Opcode op, std::string_view mn, Ext ext, Format fmt, uint32_t op7,
    int32_t f3, int32_t f7, int32_t rs2f, uint32_t flags)
{
    return InstrDesc{op, mn, ext, fmt, op7, f3, f7, rs2f, flags};
}

const std::vector<InstrDesc> &
buildTable()
{
    using enum Opcode;
    using F = Format;
    static const std::vector<InstrDesc> table = {
        // --- RV64I -----------------------------------------------------
        row(Lui,   "lui",   Ext::I, F::U, 0x37, -1, -1, -1, RD),
        row(Auipc, "auipc", Ext::I, F::U, 0x17, -1, -1, -1, RD),
        row(Jal,   "jal",   Ext::I, F::J, 0x6F, -1, -1, -1, RD | FlagJal),
        row(Jalr,  "jalr",  Ext::I, F::I, 0x67, 0, -1, -1,
            RD | R1 | FlagJalr),
        row(Beq,  "beq",  Ext::I, F::B, 0x63, 0, -1, -1, R1|R2|FlagBranch),
        row(Bne,  "bne",  Ext::I, F::B, 0x63, 1, -1, -1, R1|R2|FlagBranch),
        row(Blt,  "blt",  Ext::I, F::B, 0x63, 4, -1, -1, R1|R2|FlagBranch),
        row(Bge,  "bge",  Ext::I, F::B, 0x63, 5, -1, -1, R1|R2|FlagBranch),
        row(Bltu, "bltu", Ext::I, F::B, 0x63, 6, -1, -1, R1|R2|FlagBranch),
        row(Bgeu, "bgeu", Ext::I, F::B, 0x63, 7, -1, -1, R1|R2|FlagBranch),
        row(Lb,  "lb",  Ext::I, F::I, 0x03, 0, -1, -1, RD|R1|FlagLoad),
        row(Lh,  "lh",  Ext::I, F::I, 0x03, 1, -1, -1, RD|R1|FlagLoad),
        row(Lw,  "lw",  Ext::I, F::I, 0x03, 2, -1, -1, RD|R1|FlagLoad),
        row(Lbu, "lbu", Ext::I, F::I, 0x03, 4, -1, -1, RD|R1|FlagLoad),
        row(Lhu, "lhu", Ext::I, F::I, 0x03, 5, -1, -1, RD|R1|FlagLoad),
        row(Lwu, "lwu", Ext::I, F::I, 0x03, 6, -1, -1, RD|R1|FlagLoad),
        row(Ld,  "ld",  Ext::I, F::I, 0x03, 3, -1, -1, RD|R1|FlagLoad),
        row(Sb, "sb", Ext::I, F::S, 0x23, 0, -1, -1, R1|R2|FlagStore),
        row(Sh, "sh", Ext::I, F::S, 0x23, 1, -1, -1, R1|R2|FlagStore),
        row(Sw, "sw", Ext::I, F::S, 0x23, 2, -1, -1, R1|R2|FlagStore),
        row(Sd, "sd", Ext::I, F::S, 0x23, 3, -1, -1, R1|R2|FlagStore),
        row(Addi,  "addi",  Ext::I, F::I, 0x13, 0, -1, -1, RD|R1),
        row(Slti,  "slti",  Ext::I, F::I, 0x13, 2, -1, -1, RD|R1),
        row(Sltiu, "sltiu", Ext::I, F::I, 0x13, 3, -1, -1, RD|R1),
        row(Xori,  "xori",  Ext::I, F::I, 0x13, 4, -1, -1, RD|R1),
        row(Ori,   "ori",   Ext::I, F::I, 0x13, 6, -1, -1, RD|R1),
        row(Andi,  "andi",  Ext::I, F::I, 0x13, 7, -1, -1, RD|R1),
        row(Slli, "slli", Ext::I, F::IShift, 0x13, 1, 0x00, -1, RD|R1),
        row(Srli, "srli", Ext::I, F::IShift, 0x13, 5, 0x00, -1, RD|R1),
        row(Srai, "srai", Ext::I, F::IShift, 0x13, 5, 0x20, -1, RD|R1),
        row(Add,  "add",  Ext::I, F::R, 0x33, 0, 0x00, -1, RD|R1|R2),
        row(Sub,  "sub",  Ext::I, F::R, 0x33, 0, 0x20, -1, RD|R1|R2),
        row(Sll,  "sll",  Ext::I, F::R, 0x33, 1, 0x00, -1, RD|R1|R2),
        row(Slt,  "slt",  Ext::I, F::R, 0x33, 2, 0x00, -1, RD|R1|R2),
        row(Sltu, "sltu", Ext::I, F::R, 0x33, 3, 0x00, -1, RD|R1|R2),
        row(Xor,  "xor",  Ext::I, F::R, 0x33, 4, 0x00, -1, RD|R1|R2),
        row(Srl,  "srl",  Ext::I, F::R, 0x33, 5, 0x00, -1, RD|R1|R2),
        row(Sra,  "sra",  Ext::I, F::R, 0x33, 5, 0x20, -1, RD|R1|R2),
        row(Or,   "or",   Ext::I, F::R, 0x33, 6, 0x00, -1, RD|R1|R2),
        row(And,  "and",  Ext::I, F::R, 0x33, 7, 0x00, -1, RD|R1|R2),
        row(Addiw, "addiw", Ext::I, F::I, 0x1B, 0, -1, -1, RD|R1|W),
        row(Slliw, "slliw", Ext::I, F::IShiftW, 0x1B, 1, 0x00, -1,
            RD|R1|W),
        row(Srliw, "srliw", Ext::I, F::IShiftW, 0x1B, 5, 0x00, -1,
            RD|R1|W),
        row(Sraiw, "sraiw", Ext::I, F::IShiftW, 0x1B, 5, 0x20, -1,
            RD|R1|W),
        row(Addw, "addw", Ext::I, F::R, 0x3B, 0, 0x00, -1, RD|R1|R2|W),
        row(Subw, "subw", Ext::I, F::R, 0x3B, 0, 0x20, -1, RD|R1|R2|W),
        row(Sllw, "sllw", Ext::I, F::R, 0x3B, 1, 0x00, -1, RD|R1|R2|W),
        row(Srlw, "srlw", Ext::I, F::R, 0x3B, 5, 0x00, -1, RD|R1|R2|W),
        row(Sraw, "sraw", Ext::I, F::R, 0x3B, 5, 0x20, -1, RD|R1|R2|W),
        row(Fence,  "fence",  Ext::System, F::Sys, 0x0F, 0, -1, -1,
            FlagSystem),
        row(Ecall,  "ecall",  Ext::System, F::Sys, 0x73, 0, -1, 0,
            FlagSystem),
        row(Ebreak, "ebreak", Ext::System, F::Sys, 0x73, 0, -1, 1,
            FlagSystem),
        row(Mret, "mret", Ext::System, F::Sys, 0x73, 0, -1, 0x302,
            FlagSystem),
        // --- RV64M -----------------------------------------------------
        row(Mul,    "mul",    Ext::M, F::R, 0x33, 0, 0x01, -1,
            RD|R1|R2|FlagMulDiv),
        row(Mulh,   "mulh",   Ext::M, F::R, 0x33, 1, 0x01, -1,
            RD|R1|R2|FlagMulDiv),
        row(Mulhsu, "mulhsu", Ext::M, F::R, 0x33, 2, 0x01, -1,
            RD|R1|R2|FlagMulDiv),
        row(Mulhu,  "mulhu",  Ext::M, F::R, 0x33, 3, 0x01, -1,
            RD|R1|R2|FlagMulDiv),
        row(Div,    "div",    Ext::M, F::R, 0x33, 4, 0x01, -1,
            RD|R1|R2|FlagMulDiv),
        row(Divu,   "divu",   Ext::M, F::R, 0x33, 5, 0x01, -1,
            RD|R1|R2|FlagMulDiv),
        row(Rem,    "rem",    Ext::M, F::R, 0x33, 6, 0x01, -1,
            RD|R1|R2|FlagMulDiv),
        row(Remu,   "remu",   Ext::M, F::R, 0x33, 7, 0x01, -1,
            RD|R1|R2|FlagMulDiv),
        row(Mulw,  "mulw",  Ext::M, F::R, 0x3B, 0, 0x01, -1,
            RD|R1|R2|W|FlagMulDiv),
        row(Divw,  "divw",  Ext::M, F::R, 0x3B, 4, 0x01, -1,
            RD|R1|R2|W|FlagMulDiv),
        row(Divuw, "divuw", Ext::M, F::R, 0x3B, 5, 0x01, -1,
            RD|R1|R2|W|FlagMulDiv),
        row(Remw,  "remw",  Ext::M, F::R, 0x3B, 6, 0x01, -1,
            RD|R1|R2|W|FlagMulDiv),
        row(Remuw, "remuw", Ext::M, F::R, 0x3B, 7, 0x01, -1,
            RD|R1|R2|W|FlagMulDiv),
        // --- RV64A (funct7 = funct5 << 2, aq/rl masked in decode) ------
        row(LrW,      "lr.w",      Ext::A, F::Amo, 0x2F, 2, 0x02 << 2, 0,
            RD|R1|FlagAtomic|FlagLoad|W),
        row(ScW,      "sc.w",      Ext::A, F::Amo, 0x2F, 2, 0x03 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagStore|W),
        row(AmoswapW, "amoswap.w", Ext::A, F::Amo, 0x2F, 2, 0x01 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore|W),
        row(AmoaddW,  "amoadd.w",  Ext::A, F::Amo, 0x2F, 2, 0x00 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore|W),
        row(AmoxorW,  "amoxor.w",  Ext::A, F::Amo, 0x2F, 2, 0x04 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore|W),
        row(AmoandW,  "amoand.w",  Ext::A, F::Amo, 0x2F, 2, 0x0C << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore|W),
        row(AmoorW,   "amoor.w",   Ext::A, F::Amo, 0x2F, 2, 0x08 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore|W),
        row(AmominW,  "amomin.w",  Ext::A, F::Amo, 0x2F, 2, 0x10 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore|W),
        row(AmomaxW,  "amomax.w",  Ext::A, F::Amo, 0x2F, 2, 0x14 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore|W),
        row(AmominuW, "amominu.w", Ext::A, F::Amo, 0x2F, 2, 0x18 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore|W),
        row(AmomaxuW, "amomaxu.w", Ext::A, F::Amo, 0x2F, 2, 0x1C << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore|W),
        row(LrD,      "lr.d",      Ext::A, F::Amo, 0x2F, 3, 0x02 << 2, 0,
            RD|R1|FlagAtomic|FlagLoad),
        row(ScD,      "sc.d",      Ext::A, F::Amo, 0x2F, 3, 0x03 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagStore),
        row(AmoswapD, "amoswap.d", Ext::A, F::Amo, 0x2F, 3, 0x01 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore),
        row(AmoaddD,  "amoadd.d",  Ext::A, F::Amo, 0x2F, 3, 0x00 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore),
        row(AmoxorD,  "amoxor.d",  Ext::A, F::Amo, 0x2F, 3, 0x04 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore),
        row(AmoandD,  "amoand.d",  Ext::A, F::Amo, 0x2F, 3, 0x0C << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore),
        row(AmoorD,   "amoor.d",   Ext::A, F::Amo, 0x2F, 3, 0x08 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore),
        row(AmominD,  "amomin.d",  Ext::A, F::Amo, 0x2F, 3, 0x10 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore),
        row(AmomaxD,  "amomax.d",  Ext::A, F::Amo, 0x2F, 3, 0x14 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore),
        row(AmominuD, "amominu.d", Ext::A, F::Amo, 0x2F, 3, 0x18 << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore),
        row(AmomaxuD, "amomaxu.d", Ext::A, F::Amo, 0x2F, 3, 0x1C << 2, -1,
            RD|R1|R2|FlagAtomic|FlagLoad|FlagStore),
        // --- RV64F -----------------------------------------------------
        row(Flw, "flw", Ext::F, F::I, 0x07, 2, -1, -1,
            FRD|R1|FlagLoad|FP),
        row(Fsw, "fsw", Ext::F, F::S, 0x27, 2, -1, -1,
            R1|FR2|FlagReadsRs2|FlagStore|FP),
        row(FmaddS,  "fmadd.s",  Ext::F, F::R4, 0x43, -1, 0x00, -1,
            FRD|FR1|FR2|FR3|R1|R2|R3|RM|FP),
        row(FmsubS,  "fmsub.s",  Ext::F, F::R4, 0x47, -1, 0x00, -1,
            FRD|FR1|FR2|FR3|R1|R2|R3|RM|FP),
        row(FnmsubS, "fnmsub.s", Ext::F, F::R4, 0x4B, -1, 0x00, -1,
            FRD|FR1|FR2|FR3|R1|R2|R3|RM|FP),
        row(FnmaddS, "fnmadd.s", Ext::F, F::R4, 0x4F, -1, 0x00, -1,
            FRD|FR1|FR2|FR3|R1|R2|R3|RM|FP),
        row(FaddS, "fadd.s", Ext::F, F::FpR, 0x53, -1, 0x00, -1,
            FRD|FR1|FR2|R1|R2|RM|FP),
        row(FsubS, "fsub.s", Ext::F, F::FpR, 0x53, -1, 0x04, -1,
            FRD|FR1|FR2|R1|R2|RM|FP),
        row(FmulS, "fmul.s", Ext::F, F::FpR, 0x53, -1, 0x08, -1,
            FRD|FR1|FR2|R1|R2|RM|FP),
        row(FdivS, "fdiv.s", Ext::F, F::FpR, 0x53, -1, 0x0C, -1,
            FRD|FR1|FR2|R1|R2|RM|FP),
        row(FsqrtS, "fsqrt.s", Ext::F, F::FpR2, 0x53, -1, 0x2C, 0,
            FRD|FR1|R1|RM|FP),
        row(FsgnjS,  "fsgnj.s",  Ext::F, F::FpCmp, 0x53, 0, 0x10, -1,
            FRD|FR1|FR2|R1|R2|FP),
        row(FsgnjnS, "fsgnjn.s", Ext::F, F::FpCmp, 0x53, 1, 0x10, -1,
            FRD|FR1|FR2|R1|R2|FP),
        row(FsgnjxS, "fsgnjx.s", Ext::F, F::FpCmp, 0x53, 2, 0x10, -1,
            FRD|FR1|FR2|R1|R2|FP),
        row(FminS, "fmin.s", Ext::F, F::FpCmp, 0x53, 0, 0x14, -1,
            FRD|FR1|FR2|R1|R2|FP),
        row(FmaxS, "fmax.s", Ext::F, F::FpCmp, 0x53, 1, 0x14, -1,
            FRD|FR1|FR2|R1|R2|FP),
        row(FcvtWS,  "fcvt.w.s",  Ext::F, F::FpR2, 0x53, -1, 0x60, 0,
            RD|FR1|R1|RM|FP),
        row(FcvtWuS, "fcvt.wu.s", Ext::F, F::FpR2, 0x53, -1, 0x60, 1,
            RD|FR1|R1|RM|FP),
        row(FmvXW, "fmv.x.w", Ext::F, F::FpCmp, 0x53, 0, 0x70, 0,
            RD|FR1|R1|FP),
        row(FeqS, "feq.s", Ext::F, F::FpCmp, 0x53, 2, 0x50, -1,
            RD|FR1|FR2|R1|R2|FP),
        row(FltS, "flt.s", Ext::F, F::FpCmp, 0x53, 1, 0x50, -1,
            RD|FR1|FR2|R1|R2|FP),
        row(FleS, "fle.s", Ext::F, F::FpCmp, 0x53, 0, 0x50, -1,
            RD|FR1|FR2|R1|R2|FP),
        row(FclassS, "fclass.s", Ext::F, F::FpCmp, 0x53, 1, 0x70, 0,
            RD|FR1|R1|FP),
        row(FcvtSW,  "fcvt.s.w",  Ext::F, F::FpR2, 0x53, -1, 0x68, 0,
            FRD|R1|RM|FP),
        row(FcvtSWu, "fcvt.s.wu", Ext::F, F::FpR2, 0x53, -1, 0x68, 1,
            FRD|R1|RM|FP),
        row(FmvWX, "fmv.w.x", Ext::F, F::FpCmp, 0x53, 0, 0x78, 0,
            FRD|R1|FP),
        row(FcvtLS,  "fcvt.l.s",  Ext::F, F::FpR2, 0x53, -1, 0x60, 2,
            RD|FR1|R1|RM|FP),
        row(FcvtLuS, "fcvt.lu.s", Ext::F, F::FpR2, 0x53, -1, 0x60, 3,
            RD|FR1|R1|RM|FP),
        row(FcvtSL,  "fcvt.s.l",  Ext::F, F::FpR2, 0x53, -1, 0x68, 2,
            FRD|R1|RM|FP),
        row(FcvtSLu, "fcvt.s.lu", Ext::F, F::FpR2, 0x53, -1, 0x68, 3,
            FRD|R1|RM|FP),
        // --- RV64D -----------------------------------------------------
        row(Fld, "fld", Ext::D, F::I, 0x07, 3, -1, -1,
            FRD|R1|FlagLoad|FP|DBL),
        row(Fsd, "fsd", Ext::D, F::S, 0x27, 3, -1, -1,
            R1|FR2|FlagReadsRs2|FlagStore|FP|DBL),
        row(FmaddD,  "fmadd.d",  Ext::D, F::R4, 0x43, -1, 0x01, -1,
            FRD|FR1|FR2|FR3|R1|R2|R3|RM|FP|DBL),
        row(FmsubD,  "fmsub.d",  Ext::D, F::R4, 0x47, -1, 0x01, -1,
            FRD|FR1|FR2|FR3|R1|R2|R3|RM|FP|DBL),
        row(FnmsubD, "fnmsub.d", Ext::D, F::R4, 0x4B, -1, 0x01, -1,
            FRD|FR1|FR2|FR3|R1|R2|R3|RM|FP|DBL),
        row(FnmaddD, "fnmadd.d", Ext::D, F::R4, 0x4F, -1, 0x01, -1,
            FRD|FR1|FR2|FR3|R1|R2|R3|RM|FP|DBL),
        row(FaddD, "fadd.d", Ext::D, F::FpR, 0x53, -1, 0x01, -1,
            FRD|FR1|FR2|R1|R2|RM|FP|DBL),
        row(FsubD, "fsub.d", Ext::D, F::FpR, 0x53, -1, 0x05, -1,
            FRD|FR1|FR2|R1|R2|RM|FP|DBL),
        row(FmulD, "fmul.d", Ext::D, F::FpR, 0x53, -1, 0x09, -1,
            FRD|FR1|FR2|R1|R2|RM|FP|DBL),
        row(FdivD, "fdiv.d", Ext::D, F::FpR, 0x53, -1, 0x0D, -1,
            FRD|FR1|FR2|R1|R2|RM|FP|DBL),
        row(FsqrtD, "fsqrt.d", Ext::D, F::FpR2, 0x53, -1, 0x2D, 0,
            FRD|FR1|R1|RM|FP|DBL),
        row(FsgnjD,  "fsgnj.d",  Ext::D, F::FpCmp, 0x53, 0, 0x11, -1,
            FRD|FR1|FR2|R1|R2|FP|DBL),
        row(FsgnjnD, "fsgnjn.d", Ext::D, F::FpCmp, 0x53, 1, 0x11, -1,
            FRD|FR1|FR2|R1|R2|FP|DBL),
        row(FsgnjxD, "fsgnjx.d", Ext::D, F::FpCmp, 0x53, 2, 0x11, -1,
            FRD|FR1|FR2|R1|R2|FP|DBL),
        row(FminD, "fmin.d", Ext::D, F::FpCmp, 0x53, 0, 0x15, -1,
            FRD|FR1|FR2|R1|R2|FP|DBL),
        row(FmaxD, "fmax.d", Ext::D, F::FpCmp, 0x53, 1, 0x15, -1,
            FRD|FR1|FR2|R1|R2|FP|DBL),
        row(FcvtSD, "fcvt.s.d", Ext::D, F::FpR2, 0x53, -1, 0x20, 1,
            FRD|FR1|R1|RM|FP|DBL),
        row(FcvtDS, "fcvt.d.s", Ext::D, F::FpR2, 0x53, -1, 0x21, 0,
            FRD|FR1|R1|RM|FP|DBL),
        row(FeqD, "feq.d", Ext::D, F::FpCmp, 0x53, 2, 0x51, -1,
            RD|FR1|FR2|R1|R2|FP|DBL),
        row(FltD, "flt.d", Ext::D, F::FpCmp, 0x53, 1, 0x51, -1,
            RD|FR1|FR2|R1|R2|FP|DBL),
        row(FleD, "fle.d", Ext::D, F::FpCmp, 0x53, 0, 0x51, -1,
            RD|FR1|FR2|R1|R2|FP|DBL),
        row(FclassD, "fclass.d", Ext::D, F::FpCmp, 0x53, 1, 0x71, 0,
            RD|FR1|R1|FP|DBL),
        row(FcvtWD,  "fcvt.w.d",  Ext::D, F::FpR2, 0x53, -1, 0x61, 0,
            RD|FR1|R1|RM|FP|DBL),
        row(FcvtWuD, "fcvt.wu.d", Ext::D, F::FpR2, 0x53, -1, 0x61, 1,
            RD|FR1|R1|RM|FP|DBL),
        row(FcvtDW,  "fcvt.d.w",  Ext::D, F::FpR2, 0x53, -1, 0x69, 0,
            FRD|R1|RM|FP|DBL),
        row(FcvtDWu, "fcvt.d.wu", Ext::D, F::FpR2, 0x53, -1, 0x69, 1,
            FRD|R1|RM|FP|DBL),
        row(FcvtLD,  "fcvt.l.d",  Ext::D, F::FpR2, 0x53, -1, 0x61, 2,
            RD|FR1|R1|RM|FP|DBL),
        row(FcvtLuD, "fcvt.lu.d", Ext::D, F::FpR2, 0x53, -1, 0x61, 3,
            RD|FR1|R1|RM|FP|DBL),
        row(FmvXD, "fmv.x.d", Ext::D, F::FpCmp, 0x53, 0, 0x71, 0,
            RD|FR1|R1|FP|DBL),
        row(FcvtDL,  "fcvt.d.l",  Ext::D, F::FpR2, 0x53, -1, 0x69, 2,
            FRD|R1|RM|FP|DBL),
        row(FcvtDLu, "fcvt.d.lu", Ext::D, F::FpR2, 0x53, -1, 0x69, 3,
            FRD|R1|RM|FP|DBL),
        row(FmvDX, "fmv.d.x", Ext::D, F::FpCmp, 0x53, 0, 0x79, 0,
            FRD|R1|FP|DBL),
        // --- Zicsr -----------------------------------------------------
        row(Csrrw,  "csrrw",  Ext::Zicsr, F::Csr, 0x73, 1, -1, -1,
            RD|R1|FlagCsr),
        row(Csrrs,  "csrrs",  Ext::Zicsr, F::Csr, 0x73, 2, -1, -1,
            RD|R1|FlagCsr),
        row(Csrrc,  "csrrc",  Ext::Zicsr, F::Csr, 0x73, 3, -1, -1,
            RD|R1|FlagCsr),
        row(Csrrwi, "csrrwi", Ext::Zicsr, F::CsrI, 0x73, 5, -1, -1,
            RD|FlagCsr),
        row(Csrrsi, "csrrsi", Ext::Zicsr, F::CsrI, 0x73, 6, -1, -1,
            RD|FlagCsr),
        row(Csrrci, "csrrci", Ext::Zicsr, F::CsrI, 0x73, 7, -1, -1,
            RD|FlagCsr),
    };
    return table;
}

const std::vector<InstrDesc> &tableRef = buildTable();

std::array<const InstrDesc *, numOpcodes()>
buildIndex()
{
    std::array<const InstrDesc *, numOpcodes()> index{};
    for (const auto &d : tableRef) {
        const auto i = static_cast<size_t>(d.op);
        TF_ASSERT(index[i] == nullptr, "duplicate opcode entry %zu", i);
        index[i] = &d;
    }
    for (size_t i = 0; i < index.size(); ++i)
        TF_ASSERT(index[i] != nullptr, "missing opcode entry %zu", i);
    return index;
}

} // namespace

std::string_view
extName(Ext ext)
{
    switch (ext) {
      case Ext::I: return "I";
      case Ext::M: return "M";
      case Ext::A: return "A";
      case Ext::F: return "F";
      case Ext::D: return "D";
      case Ext::Zicsr: return "Zicsr";
      case Ext::System: return "System";
      case Ext::NumExts:
      default: panic("bad Ext value %d", static_cast<int>(ext));
    }
}

const InstrDesc &
descOf(Opcode op)
{
    static const auto index = buildIndex();
    const auto i = static_cast<size_t>(op);
    TF_ASSERT(i < numOpcodes(), "opcode out of range: %zu", i);
    return *index[i];
}

const std::vector<InstrDesc> &
allDescs()
{
    return tableRef;
}

} // namespace turbofuzz::isa
