/**
 * @file
 * RISC-V RV64 IMAFD + Zicsr opcode enumeration and descriptor table.
 *
 * This is the instruction metadata backbone shared by the encoder,
 * decoder, disassembler, instruction library, fuzzer and ISS.
 */

#ifndef TURBOFUZZ_ISA_OPCODES_HH
#define TURBOFUZZ_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>
#include <vector>

namespace turbofuzz::isa
{

/** ISA extension category (instruction library granularity). */
enum class Ext : uint8_t
{
    I,      ///< Base integer (RV64I)
    M,      ///< Multiply/divide
    A,      ///< Atomics
    F,      ///< Single-precision floating point
    D,      ///< Double-precision floating point
    Zicsr,  ///< CSR access
    System, ///< ecall/ebreak/fence
    NumExts
};

/** Name of an extension category ("I", "M", ...). */
std::string_view extName(Ext ext);

/** Instruction encoding format. */
enum class Format : uint8_t
{
    R,       ///< register-register
    R4,      ///< fused multiply-add (rs3 in [31:27])
    I,       ///< register-immediate / loads / jalr
    IShift,  ///< shift-immediate (6-bit shamt, RV64)
    IShiftW, ///< shift-immediate word (5-bit shamt)
    S,       ///< stores
    B,       ///< branches
    U,       ///< lui/auipc
    J,       ///< jal
    Amo,     ///< atomics (funct5 + aq/rl)
    FpR,     ///< FP register ops (rm field live)
    FpR2,    ///< FP unary ops (rs2 encodes sub-op, rm live)
    FpCmp,   ///< FP compare / sign-inject / min-max (funct3 fixed)
    Csr,     ///< csrrw/csrrs/csrrc
    CsrI,    ///< csrr?i (zimm in rs1)
    Sys      ///< ecall/ebreak/fence
};

/** Behavioural flags consumed by the fuzzer, coverage and checker. */
enum InstrFlags : uint32_t
{
    FlagNone      = 0,
    FlagBranch    = 1u << 0,  ///< conditional branch
    FlagJal       = 1u << 1,  ///< direct jump
    FlagJalr      = 1u << 2,  ///< indirect jump
    FlagLoad      = 1u << 3,
    FlagStore     = 1u << 4,
    FlagFp        = 1u << 5,  ///< touches the FP unit
    FlagCsr       = 1u << 6,
    FlagAtomic    = 1u << 7,
    FlagWordOp    = 1u << 8,  ///< 32-bit (W-suffix) operation
    FlagSystem    = 1u << 9,  ///< ecall/ebreak/fence
    FlagHasRm     = 1u << 10, ///< rounding-mode field is live
    FlagReadsRs1  = 1u << 11,
    FlagReadsRs2  = 1u << 12,
    FlagReadsRs3  = 1u << 13,
    FlagWritesRd  = 1u << 14,
    FlagFpRs1     = 1u << 15, ///< rs1 is an FP register
    FlagFpRs2     = 1u << 16,
    FlagFpRs3     = 1u << 17,
    FlagFpRd      = 1u << 18, ///< rd is an FP register
    FlagMulDiv    = 1u << 19,
    FlagDouble    = 1u << 20, ///< double-precision FP
};

/** Opcode identifiers for every supported instruction. */
enum class Opcode : uint16_t
{
    // RV32I / RV64I
    Lui, Auipc, Jal, Jalr,
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Lb, Lh, Lw, Lbu, Lhu, Lwu, Ld,
    Sb, Sh, Sw, Sd,
    Addi, Slti, Sltiu, Xori, Ori, Andi,
    Slli, Srli, Srai,
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    Addiw, Slliw, Srliw, Sraiw,
    Addw, Subw, Sllw, Srlw, Sraw,
    Fence, Ecall, Ebreak, Mret,
    // RV64M
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    Mulw, Divw, Divuw, Remw, Remuw,
    // RV64A
    LrW, ScW, AmoswapW, AmoaddW, AmoxorW, AmoandW, AmoorW,
    AmominW, AmomaxW, AmominuW, AmomaxuW,
    LrD, ScD, AmoswapD, AmoaddD, AmoxorD, AmoandD, AmoorD,
    AmominD, AmomaxD, AmominuD, AmomaxuD,
    // RV64F
    Flw, Fsw,
    FmaddS, FmsubS, FnmsubS, FnmaddS,
    FaddS, FsubS, FmulS, FdivS, FsqrtS,
    FsgnjS, FsgnjnS, FsgnjxS, FminS, FmaxS,
    FcvtWS, FcvtWuS, FmvXW, FeqS, FltS, FleS, FclassS,
    FcvtSW, FcvtSWu, FmvWX,
    FcvtLS, FcvtLuS, FcvtSL, FcvtSLu,
    // RV64D
    Fld, Fsd,
    FmaddD, FmsubD, FnmsubD, FnmaddD,
    FaddD, FsubD, FmulD, FdivD, FsqrtD,
    FsgnjD, FsgnjnD, FsgnjxD, FminD, FmaxD,
    FcvtSD, FcvtDS,
    FeqD, FltD, FleD, FclassD,
    FcvtWD, FcvtWuD, FcvtDW, FcvtDWu,
    FcvtLD, FcvtLuD, FmvXD, FcvtDL, FcvtDLu, FmvDX,
    // Zicsr
    Csrrw, Csrrs, Csrrc, Csrrwi, Csrrsi, Csrrci,
    NumOpcodes
};

/** Static descriptor for one instruction. */
struct InstrDesc
{
    Opcode op;
    std::string_view mnemonic;
    Ext ext;
    Format fmt;
    uint32_t opcode7; ///< major opcode bits [6:0]
    int32_t funct3;   ///< bits [14:12], or -1 when not fixed
    int32_t funct7;   ///< bits [31:25], or -1 when not fixed
    int32_t rs2Field; ///< fixed rs2 field for FpR2, else -1
    uint32_t flags;

    bool isControlFlow() const
    {
        return flags & (FlagBranch | FlagJal | FlagJalr);
    }
    bool isMemAccess() const { return flags & (FlagLoad | FlagStore); }
    bool has(InstrFlags f) const { return flags & f; }
};

/** Descriptor lookup; O(1). */
const InstrDesc &descOf(Opcode op);

/** All descriptors in opcode order. */
const std::vector<InstrDesc> &allDescs();

/** Number of supported opcodes. */
constexpr size_t
numOpcodes()
{
    return static_cast<size_t>(Opcode::NumOpcodes);
}

} // namespace turbofuzz::isa

#endif // TURBOFUZZ_ISA_OPCODES_HH
