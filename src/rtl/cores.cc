#include "rtl/cores.hh"

#include "common/logging.hh"

namespace turbofuzz::rtl
{

namespace
{

/** One-hot domain with @p n states. */
std::vector<uint64_t>
oneHot(unsigned n)
{
    std::vector<uint64_t> d(n);
    for (unsigned i = 0; i < n; ++i)
        d[i] = uint64_t{1} << i;
    return d;
}

/** Dense small-range domain {0, ..., n-1}. */
std::vector<uint64_t>
smallRange(unsigned n)
{
    std::vector<uint64_t> d(n);
    for (unsigned i = 0; i < n; ++i)
        d[i] = i;
    return d;
}

/** Specification of one control register within a unit. */
struct RegSpec
{
    const char *name;
    unsigned width;
    RegRole role;
    std::vector<uint64_t> domain = {};
};

/**
 * Populate @p m with the given control registers, a set of datapath
 * registers that are NOT control (no mux select reaches them), and a
 * mux network whose selects trace back to the control registers
 * through one or two levels of wires.
 *
 * @param mux_count  How many muxes the unit contains; muxes fan out
 *                   across the control wires round-robin. Mux counts
 *                   model each unit's contribution to the coverage
 *                   point total.
 */
/**
 * @param extra_derived  Additional 3-bit derived control registers
 *        spread over the unit's unconstrained roles. Dense arithmetic
 *        units carry many such registers (high baseline
 *        achievability); control-path units carry few, which is what
 *        makes their baseline instrumentation mostly unreachable.
 */
void
buildUnit(Module *m, const std::vector<RegSpec> &specs,
          unsigned datapath_regs, unsigned mux_count,
          unsigned extra_derived = 0)
{
    std::vector<uint32_t> ctrl_wires;
    std::vector<RegRole> unconstrained_roles;
    for (const RegSpec &s : specs)
        if (s.domain.empty())
            unconstrained_roles.push_back(s.role);
    for (const RegSpec &s : specs) {
        if (!s.domain.empty()) {
            // FSM/enum state stays one physical register.
            const uint32_t r =
                m->addRegister(s.name, s.width, s.role, s.domain);
            ctrl_wires.push_back(
                m->addWire(std::string(s.name) + "_w", {r}));
            continue;
        }
        // Real designs latch architectural quantities across many
        // small control registers: direct <=3-bit slices plus
        // derived (salted) registers from distinct logic cones. The
        // density of small registers is what keeps the baseline
        // instrumentation's random shifts mostly hole-free (Fig. 6's
        // 60-80%% band).
        unsigned slice = 0;
        for (unsigned off = 0; off < s.width; off += 3, ++slice) {
            const unsigned w = std::min(3u, s.width - off);
            const uint32_t r = m->addRegister(
                std::string(s.name) + "_s" + std::to_string(slice), w,
                s.role, {}, off);
            ctrl_wires.push_back(m->addWire(
                std::string(s.name) + "_s" + std::to_string(slice) +
                    "_w",
                {r}));
            const uint32_t d = m->addRegister(
                std::string(s.name) + "_d" + std::to_string(slice), 3,
                s.role, {}, 0,
                0x9E37 + 131ull * slice +
                    1009ull * ctrl_wires.size());
            ctrl_wires.push_back(m->addWire(
                std::string(s.name) + "_d" + std::to_string(slice) +
                    "_w",
                {r, d}));
        }
    }

    // Extra derived control registers over the unit's roles.
    for (unsigned e = 0; e < extra_derived; ++e) {
        const RegRole role =
            unconstrained_roles.empty()
                ? RegRole::Datapath
                : unconstrained_roles[e % unconstrained_roles.size()];
        const uint32_t r = m->addRegister(
            "x" + std::to_string(e), 3, role, {}, 0,
            0xC0FFEEull + 977ull * e);
        ctrl_wires.push_back(
            m->addWire("x" + std::to_string(e) + "_w", {r}));
    }

    // Composite second-level wires combining neighbouring selects,
    // exercising the multi-hop trace-back.
    std::vector<uint32_t> level2;
    for (size_t i = 0; i + 1 < ctrl_wires.size(); i += 2) {
        level2.push_back(m->addWire(
            "sel_comb" + std::to_string(i), {},
            {ctrl_wires[i], ctrl_wires[i + 1]}));
    }

    // Pure datapath state: registers no select network touches. The
    // trace-back must exclude these from the control set.
    for (unsigned i = 0; i < datapath_regs; ++i) {
        m->addRegister("data" + std::to_string(i), 64,
                       RegRole::Datapath);
    }

    // Every control wire drives at least one mux; the remaining
    // muxes fan out round-robin with a sprinkle of level-2 selects.
    const unsigned muxes =
        std::max<unsigned>(mux_count,
                           static_cast<unsigned>(ctrl_wires.size()));
    for (unsigned i = 0; i < muxes; ++i) {
        uint32_t wire;
        if (i < ctrl_wires.size())
            wire = ctrl_wires[i];
        else if (i % 3 == 2 && !level2.empty())
            wire = level2[i % level2.size()];
        else
            wire = ctrl_wires[i % ctrl_wires.size()];
        m->addMux("mux" + std::to_string(i), wire);
    }
}

/** Shared in-order units: IFU, EXU, CSR, FPU, MulDiv, LSU, PTW. */
void
buildInOrderCommon(Module *top, unsigned exu_width_bits)
{
    Module *ifu = top->addChild("IFU");
    buildUnit(ifu,
              {
                  {"pc_low", 6, RegRole::PcLow},
                  {"pc_page", 4, RegRole::PcPage},
                  {"bht_hist", 8, RegRole::BranchHistory},
                  {"loop_fsm", 3, RegRole::LoopFsm, smallRange(6)},
                  {"icache_fsm", 4, RegRole::IcacheFsm, oneHot(4)},
                  {"cf_depth", 4, RegRole::CfDepth},
              },
              /*datapath_regs=*/6, /*mux_count=*/54,
              /*extra_derived=*/18);

    Module *exu = top->addChild("EXU");
    buildUnit(exu,
              {
                  {"op_class", 6, RegRole::OpClass},
                  {"rd_idx", 5, RegRole::RdIdx},
                  {"rs1_idx", 5, RegRole::Rs1Idx},
                  {"imm_low", exu_width_bits, RegRole::ImmLow},
                  {"alu_digest", 6, RegRole::Datapath},
                  {"br_taken", 1, RegRole::BranchTaken},
              },
              /*datapath_regs=*/10, /*mux_count=*/66,
              /*extra_derived=*/24);

    Module *csr = top->addChild("CSRFile");
    buildUnit(csr,
              {
                  {"csr_addr", 5, RegRole::CsrAddr},
                  {"trap_cause", 4, RegRole::TrapCause,
                   {0, 2, 3, 4, 5, 6, 7, 11}},
                  {"trap_flag", 1, RegRole::TrapFlag},
                  {"wdata_digest", 3, RegRole::Datapath},
                  {"frm", 3, RegRole::Frm, smallRange(5)},
                  {"fflags", 5, RegRole::Fflags},
              },
              /*datapath_regs=*/4, /*mux_count=*/38,
              /*extra_derived=*/4);

    Module *fpu = top->addChild("FPU");
    buildUnit(fpu,
              {
                  {"fp_kind", 4, RegRole::FpKind},
                  {"fp_prec", 1, RegRole::FpPrec},
                  {"class_a", 10, RegRole::FpClassA, oneHot(10)},
                  {"class_b", 10, RegRole::FpClassB, oneHot(10)},
                  {"fp_flags", 5, RegRole::Fflags},
                  {"fp_rm", 3, RegRole::Frm, smallRange(5)},
              },
              /*datapath_regs=*/12, /*mux_count=*/58,
              /*extra_derived=*/4);

    Module *muldiv = top->addChild("MulDiv");
    buildUnit(muldiv,
              {
                  {"busy", 1, RegRole::MulDivBusy},
                  {"div_cnt", 6, RegRole::DivCycles},
                  {"signs", 2, RegRole::MulSigns},
                  {"md_class", 3, RegRole::OpClass},
              },
              /*datapath_regs=*/4, /*mux_count=*/30,
              /*extra_derived=*/16);

    Module *lsu = top->addChild("LSU");
    buildUnit(lsu,
              {
                  {"addr_low", 6, RegRole::MemAddrLow},
                  {"size", 2, RegRole::MemSize},
                  {"rw", 1, RegRole::MemRw},
                  {"stride_fsm", 3, RegRole::StrideFsm, smallRange(5)},
                  {"dcache_fsm", 3, RegRole::DcacheFsm, smallRange(6)},
                  {"res_state", 1, RegRole::ResState},
                  {"amo_kind", 4, RegRole::AmoKind},
              },
              /*datapath_regs=*/8, /*mux_count=*/46,
              /*extra_derived=*/14);

    Module *ptw = top->addChild("PTW");
    buildUnit(ptw,
              {
                  {"ptw_fsm", 6, RegRole::PtwFsm, oneHot(6)},
                  {"tlb_fsm", 4, RegRole::TlbFsm, oneHot(4)},
                  {"req_page", 4, RegRole::PcPage},
              },
              /*datapath_regs=*/4, /*mux_count=*/22);
}

} // namespace

std::unique_ptr<Module>
buildRocketLike()
{
    auto top = std::make_unique<Module>("RocketTile");
    buildInOrderCommon(top.get(), /*exu_width_bits=*/6);
    return top;
}

std::unique_ptr<Module>
buildCva6Like()
{
    auto top = std::make_unique<Module>("Cva6Core");
    buildInOrderCommon(top.get(), /*exu_width_bits=*/5);
    // CVA6 carries a scoreboard the Rocket pipeline lacks.
    Module *sb = top->addChild("Scoreboard");
    buildUnit(sb,
              {
                  {"issue_ptr", 3, RegRole::IqOcc},
                  {"commit_ptr", 3, RegRole::RobOcc},
                  {"sb_class", 4, RegRole::OpClass},
              },
              /*datapath_regs=*/6, /*mux_count=*/24,
              /*extra_derived=*/8);
    return top;
}

std::unique_ptr<Module>
buildBoomLike()
{
    auto top = std::make_unique<Module>("BoomTile");
    buildInOrderCommon(top.get(), /*exu_width_bits=*/6);
    // Out-of-order backend structures.
    Module *rob = top->addChild("ROB");
    buildUnit(rob,
              {
                  {"rob_occ", 5, RegRole::RobOcc},
                  {"rob_flush", 1, RegRole::BranchTaken},
                  {"rob_class", 4, RegRole::OpClass},
              },
              /*datapath_regs=*/16, /*mux_count=*/40,
              /*extra_derived=*/10);
    Module *iq = top->addChild("IssueQueue");
    buildUnit(iq,
              {
                  {"iq_occ", 4, RegRole::IqOcc},
                  {"iq_class", 4, RegRole::OpClass},
                  {"iq_rs1", 5, RegRole::Rs1Idx},
              },
              /*datapath_regs=*/8, /*mux_count=*/32,
              /*extra_derived=*/8);
    Module *rename = top->addChild("Rename");
    buildUnit(rename,
              {
                  {"map_rd", 5, RegRole::RdIdx},
                  {"free_cnt", 4, RegRole::RobOcc},
              },
              /*datapath_regs=*/6, /*mux_count=*/20,
              /*extra_derived=*/6);
    return top;
}

std::unique_ptr<Module>
buildCore(core::CoreKind kind)
{
    switch (kind) {
      case core::CoreKind::Rocket: return buildRocketLike();
      case core::CoreKind::Cva6: return buildCva6Like();
      case core::CoreKind::Boom: return buildBoomLike();
      default: panic("bad CoreKind");
    }
}

} // namespace turbofuzz::rtl
