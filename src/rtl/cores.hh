/**
 * @file
 * Structural netlists approximating the evaluation cores.
 *
 * Module inventories (register widths, value domains, mux counts)
 * loosely follow the public microarchitectures: Rocket and CVA6 are
 * single-issue in-order cores with an FPU, CSR file and PTW; BOOM adds
 * out-of-order structures (ROB, issue queues, rename). The FPU, CSR
 * file and PTW carry one-hot / small-enum value domains, which is what
 * makes their baseline coverage instrumentation mostly unreachable in
 * Fig. 6.
 */

#ifndef TURBOFUZZ_RTL_CORES_HH
#define TURBOFUZZ_RTL_CORES_HH

#include <memory>

#include "core/bugs.hh"
#include "rtl/module.hh"

namespace turbofuzz::rtl
{

/** Build a Rocket-like in-order RV64 core netlist. */
std::unique_ptr<Module> buildRocketLike();

/** Build a CVA6-like single-issue RV64 core netlist. */
std::unique_ptr<Module> buildCva6Like();

/** Build a BOOM-like out-of-order superscalar RV64 core netlist. */
std::unique_ptr<Module> buildBoomLike();

/** Dispatch by core kind. */
std::unique_ptr<Module> buildCore(core::CoreKind kind);

} // namespace turbofuzz::rtl

#endif // TURBOFUZZ_RTL_CORES_HH
