#include "rtl/driver.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::rtl
{

using isa::Opcode;

unsigned
fpKindOf(Opcode op)
{
    switch (op) {
      case Opcode::FaddS: case Opcode::FaddD:
      case Opcode::FsubS: case Opcode::FsubD:
        return 0;
      case Opcode::FmulS: case Opcode::FmulD:
        return 1;
      case Opcode::FdivS: case Opcode::FdivD:
        return 2;
      case Opcode::FsqrtS: case Opcode::FsqrtD:
        return 3;
      case Opcode::FmaddS: case Opcode::FmaddD:
      case Opcode::FmsubS: case Opcode::FmsubD:
      case Opcode::FnmsubS: case Opcode::FnmsubD:
      case Opcode::FnmaddS: case Opcode::FnmaddD:
        return 4;
      case Opcode::FminS: case Opcode::FminD:
      case Opcode::FmaxS: case Opcode::FmaxD:
        return 5;
      case Opcode::FeqS: case Opcode::FeqD:
      case Opcode::FltS: case Opcode::FltD:
      case Opcode::FleS: case Opcode::FleD:
        return 6;
      case Opcode::FcvtWS: case Opcode::FcvtWuS:
      case Opcode::FcvtLS: case Opcode::FcvtLuS:
      case Opcode::FcvtWD: case Opcode::FcvtWuD:
      case Opcode::FcvtLD: case Opcode::FcvtLuD:
        return 7;
      case Opcode::FcvtSW: case Opcode::FcvtSWu:
      case Opcode::FcvtSL: case Opcode::FcvtSLu:
      case Opcode::FcvtDW: case Opcode::FcvtDWu:
      case Opcode::FcvtDL: case Opcode::FcvtDLu:
        return 8;
      case Opcode::FcvtSD: case Opcode::FcvtDS:
        return 9;
      case Opcode::FmvXW: case Opcode::FmvWX:
      case Opcode::FmvXD: case Opcode::FmvDX:
        return 10;
      case Opcode::FclassS: case Opcode::FclassD:
        return 11;
      case Opcode::FsgnjS: case Opcode::FsgnjD:
      case Opcode::FsgnjnS: case Opcode::FsgnjnD:
      case Opcode::FsgnjxS: case Opcode::FsgnjxD:
        return 12;
      case Opcode::Flw: case Opcode::Fld:
        return 13;
      case Opcode::Fsw: case Opcode::Fsd:
        return 14;
      default:
        return 15; // not an FP op
    }
}

unsigned
opClassOf(const isa::InstrDesc &desc)
{
    unsigned kind = 0;
    if (desc.has(isa::FlagBranch))
        kind = 1;
    else if (desc.has(isa::FlagJal))
        kind = 2;
    else if (desc.has(isa::FlagJalr))
        kind = 3;
    else if (desc.has(isa::FlagAtomic))
        kind = 4;
    else if (desc.has(isa::FlagLoad))
        kind = 5;
    else if (desc.has(isa::FlagStore))
        kind = 6;
    else if (desc.has(isa::FlagCsr))
        kind = 7;
    return static_cast<unsigned>(desc.ext) * 8 + kind;
}

EventDriver::EventDriver(Module *top_module) : top(top_module)
{
    TF_ASSERT(top != nullptr, "driver requires a module tree");
    top->visit([this](Module &m) {
        for (Register &r : m.registers()) {
            regCache.push_back(&r);
            regsByRole[static_cast<size_t>(r.role)].push_back(&r);
        }
    });
    buildRolePlans();
    reset();
}

void
EventDriver::buildRolePlans()
{
    for (size_t role = 0; role < regsByRole.size(); ++role) {
        RolePlan &plan = rolePlans[role];
        std::vector<std::pair<uint32_t, Register *>> dom;
        for (Register *r : regsByRole[role]) {
            if (!r->domain.empty())
                dom.emplace_back(
                    static_cast<uint32_t>(r->domain.size()), r);
            else if (r->salt != 0)
                plan.mixRegs.push_back(
                    {r, r->salt, mask(r->width)});
            else
                plan.shiftRegs.push_back(
                    {r, r->srcShift, mask(r->width)});
        }
        // Stable sort keeps same-size registers in tree order while
        // forming one contiguous run per distinct domain size.
        std::stable_sort(dom.begin(), dom.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        for (const auto &[size, reg] : dom) {
            if (plan.runs.empty() || plan.runs.back().size != size)
                plan.runs.push_back(
                    {size,
                     static_cast<uint32_t>(plan.domainRegs.size()),
                     static_cast<uint32_t>(plan.domainRegs.size())});
            plan.domainRegs.push_back(reg);
            plan.runs.back().end =
                static_cast<uint32_t>(plan.domainRegs.size());
        }
        if (!regsByRole[role].empty())
            rolesWithRegs |= uint64_t{1} << role;
    }
}

void
EventDriver::writeRole(unsigned role, uint64_t value)
{
    const RolePlan &plan = rolePlans[role];
    for (const DomainRun &run : plan.runs) {
        const uint64_t idx = value % run.size;
        for (uint32_t k = run.begin; k < run.end; ++k) {
            Register *r = plan.domainRegs[k];
            r->value = r->domain[idx];
        }
    }
    for (const MixReg &m : plan.mixRegs) {
        uint64_t z = value ^ m.salt;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z ^= z >> 27;
        m.reg->value = z & m.widthMask;
    }
    for (const ShiftReg &s : plan.shiftRegs)
        s.reg->value = (value >> s.shift) & s.widthMask;
}

void
EventDriver::reset()
{
    roles.fill(0);
    pendingDirty = 0;
    branchHist = 0;
    cfDepth = 0;
    lastLoopTarget = 0;
    loopState = 0;
    lastMemAddr = 0;
    lastStride = 0;
    strideState = 0;
    recentPages.fill(~uint64_t{0});
    pageCursor = 0;
    dcacheState = 0;
    icacheState = 0;
    lastPcPage = ~uint64_t{0};
    ptwState = 0;
    tlbState = 0;
    robOcc = 0;
    iqOcc = 0;
    resArmed = false;
    for (Register *r : regCache)
        r->value = r->domain.empty() ? 0 : r->domain.front();
}

uint64_t
EventDriver::mapToDomain(uint64_t value, const Register &reg)
{
    if (!reg.domain.empty())
        return reg.domain[value % reg.domain.size()];
    if (reg.salt != 0) {
        // Derived control state: a salted mix of the role value
        // (distinct logic cone over the same architectural quantity).
        uint64_t z = value ^ reg.salt;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z ^= z >> 27;
        return z & mask(reg.width);
    }
    return (value >> reg.srcShift) & mask(reg.width);
}

uint64_t
EventDriver::updateRoles(const core::CommitInfo &ci)
{
    uint64_t dirty = 0;
    auto set = [this, &dirty](RegRole role, uint64_t v) {
        const size_t idx = static_cast<size_t>(role);
        if (roles[idx] != v) {
            roles[idx] = v;
            dirty |= uint64_t{1} << idx;
        }
    };

    // --- always-updated roles ----------------------------------------
    set(RegRole::PcLow, ci.pc >> 2);
    const uint64_t pc_page = ci.pc >> 12;
    set(RegRole::PcPage, pc_page ^ (pc_page >> 7));
    set(RegRole::TrapFlag, ci.trapped ? 1 : 0);
    if (ci.trapped)
        set(RegRole::TrapCause, ci.trapCause);

    // Fetch-stream locality FSM: 0 sequential, 1 near jump, 2 return
    // to a recent page, 3 far jump.
    if (pc_page == lastPcPage) {
        icacheState = 0;
    } else {
        const bool recent =
            std::find(recentPages.begin(), recentPages.end(),
                      pc_page) != recentPages.end();
        icacheState = recent ? 2u
                             : ((pc_page > lastPcPage
                                     ? pc_page - lastPcPage
                                     : lastPcPage - pc_page) <= 1
                                    ? 1u
                                    : 3u);
    }
    lastPcPage = pc_page;
    set(RegRole::IcacheFsm, icacheState);

    if (!ci.decodeValid)
        return dirty;

    const isa::InstrDesc &d = *ci.desc;
    set(RegRole::OpClass, opClassOf(d));
    set(RegRole::RdIdx, ci.ops.rd);
    set(RegRole::Rs1Idx, ci.ops.rs1);
    set(RegRole::ImmLow, static_cast<uint64_t>(ci.ops.imm));

    // Writeback digest: popcount + parity of the result value.
    const uint64_t wb = ci.frdWritten ? ci.frdValue : ci.rdValue;
    set(RegRole::Datapath,
        static_cast<uint64_t>(__builtin_popcountll(wb)) |
            ((wb & 1) << 6));

    // --- control flow --------------------------------------------------
    if (d.has(isa::FlagBranch)) {
        branchHist = (branchHist << 1) | (ci.branchTaken ? 1 : 0);
        set(RegRole::BranchTaken, ci.branchTaken ? 1 : 0);
        set(RegRole::BranchHistory, branchHist);

        // Loop detector: consecutive taken backward branches to the
        // same target walk the FSM toward its deep states.
        if (ci.branchTaken && ci.nextPc < ci.pc) {
            if (ci.nextPc == lastLoopTarget)
                loopState = std::min(loopState + 1, 5u);
            else
                loopState = 1;
            lastLoopTarget = ci.nextPc;
        } else if (loopState > 0) {
            // Fall-through decays the detector slowly; real loop
            // bodies contain non-branch instructions, so only a
            // *not-taken* outcome decays it.
            if (!ci.branchTaken)
                loopState -= 1;
        }
        set(RegRole::LoopFsm, loopState);
    }
    if (d.has(isa::FlagJal) || d.has(isa::FlagJalr)) {
        // Call/return depth estimate: rd==ra is a call, jalr with
        // rs1==ra and rd==x0 is a return.
        if (ci.ops.rd == 1)
            cfDepth = std::min(cfDepth + 1, 15);
        else if (d.has(isa::FlagJalr) && ci.ops.rs1 == 1 &&
                 ci.ops.rd == 0)
            cfDepth = std::max(cfDepth - 1, 0);
        set(RegRole::CfDepth, static_cast<uint64_t>(cfDepth));
    }

    // --- memory ---------------------------------------------------------
    if (ci.memAccess) {
        set(RegRole::MemAddrLow, ci.memAddr);
        set(RegRole::MemSize, ci.memSize == 1   ? 0u
                              : ci.memSize == 2 ? 1u
                              : ci.memSize == 4 ? 2u
                                                : 3u);
        set(RegRole::MemRw, ci.memWrite ? 1 : 0);

        const int64_t stride =
            static_cast<int64_t>(ci.memAddr - lastMemAddr);
        if (stride == lastStride && stride != 0 && stride <= 64 &&
            stride >= -64) {
            strideState = std::min(strideState + 1, 4u);
        } else {
            strideState = 0;
        }
        lastStride = stride;
        lastMemAddr = ci.memAddr;
        set(RegRole::StrideFsm, strideState);

        // Hit-streak estimate via a 4-entry recent-page window.
        const uint64_t page = ci.memAddr >> 12;
        const bool hit =
            std::find(recentPages.begin(), recentPages.end(), page) !=
            recentPages.end();
        if (hit) {
            dcacheState = std::min(dcacheState + 1, 5u);
        } else {
            dcacheState = 0;
            recentPages[pageCursor] = page;
            pageCursor = (pageCursor + 1) % recentPages.size();
            // A miss to a fresh page advances the PTW walk FSM; the
            // walk completes (returns to idle) after cycling.
            ptwState = (ptwState + 1) % 6;
            tlbState = (tlbState + 1) % 4;
        }
        set(RegRole::DcacheFsm, dcacheState);
        set(RegRole::PtwFsm, ptwState);
        set(RegRole::TlbFsm, tlbState);
    }

    if (d.has(isa::FlagAtomic)) {
        set(RegRole::AmoKind,
            static_cast<uint64_t>(ci.op) & 0xF);
        if (ci.op == Opcode::LrW || ci.op == Opcode::LrD)
            resArmed = true;
        else if (ci.op == Opcode::ScW || ci.op == Opcode::ScD)
            resArmed = false;
        set(RegRole::ResState, resArmed ? 1 : 0);
    }

    // --- FP ----------------------------------------------------------------
    if (d.has(isa::FlagFp)) {
        set(RegRole::FpKind, fpKindOf(ci.op));
        set(RegRole::FpPrec, d.has(isa::FlagDouble) ? 1 : 0);
        if (ci.fpClassRs1 != 0xFF)
            set(RegRole::FpClassA, ci.fpClassRs1);
        if (ci.fpClassRs2 != 0xFF)
            set(RegRole::FpClassB, ci.fpClassRs2);
        set(RegRole::Fflags, ci.fflagsAccrued);
        if (d.has(isa::FlagHasRm))
            set(RegRole::Frm, ci.ops.rm < 5 ? ci.ops.rm : 0);
    }

    // --- CSR ------------------------------------------------------------------
    if (d.has(isa::FlagCsr)) {
        set(RegRole::CsrAddr,
            (ci.ops.csr ^ (ci.ops.csr >> 5)) & 0x1F);
    }

    // --- M extension -------------------------------------------------------
    const bool muldiv = d.has(isa::FlagMulDiv);
    set(RegRole::MulDivBusy, muldiv ? 1 : 0);
    if (muldiv) {
        // Divider latency depends on operand magnitude; digest via
        // the result's leading-zero count.
        const unsigned lz =
            ci.rdValue ? static_cast<unsigned>(
                             __builtin_clzll(ci.rdValue))
                       : 64;
        set(RegRole::DivCycles, lz);
        set(RegRole::MulSigns,
            ((ci.rdValue >> 63) << 1) | (ci.rdValue & 1));
    }

    // --- out-of-order occupancy estimates --------------------------------
    robOcc = std::min(robOcc + 1, 31u);
    iqOcc = std::min(iqOcc + 1, 15u);
    if (ci.branchTaken || ci.trapped) {
        robOcc = robOcc / 2;
        iqOcc = iqOcc / 2;
    }
    if (d.has(isa::FlagLoad))
        iqOcc = iqOcc >= 2 ? iqOcc - 2 : 0;
    set(RegRole::RobOcc, robOcc);
    set(RegRole::IqOcc, iqOcc);
    return dirty;
}

void
EventDriver::materializeRegisters()
{
    uint64_t remaining = pendingDirty & rolesWithRegs;
    pendingDirty = 0;
    while (remaining) {
        const unsigned role = static_cast<unsigned>(
            __builtin_ctzll(remaining));
        remaining &= remaining - 1;
        writeRole(role, roles[role]);
    }
}

void
EventDriver::onCommit(const core::CommitInfo &ci)
{
    updateRoles(ci);
    pendingDirty = 0; // the full write below covers any lag
    uint64_t remaining = rolesWithRegs;
    while (remaining) {
        const unsigned role = static_cast<unsigned>(
            __builtin_ctzll(remaining));
        remaining &= remaining - 1;
        writeRole(role, roles[role]);
    }
}

uint64_t
EventDriver::onCommitDirty(const core::CommitInfo &ci)
{
    const uint64_t dirty = updateRoles(ci);
    uint64_t remaining = dirty & rolesWithRegs;
    while (remaining) {
        const unsigned role = static_cast<unsigned>(
            __builtin_ctzll(remaining));
        remaining &= remaining - 1;
        writeRole(role, roles[role]);
    }
    return dirty;
}

void
EventDriver::onTrace(const core::CommitInfo *commits, size_t n)
{
    if (n == 0)
        return;
    // First commit rewrites every register (establishing the
    // invariant onCommitDirty relies on), the rest drive
    // incrementally.
    onCommit(commits[0]);
    for (size_t i = 1; i < n; ++i)
        onCommitDirty(commits[i]);
}

void
EventDriver::saveState(soc::SnapshotWriter &out) const
{
    out.putU32(static_cast<uint32_t>(regCache.size()));
    // regCache order is the deterministic module-tree walk order, so
    // positional serialization round-trips on any driver built over
    // the same design.
    for (const Register *r : regCache)
        out.putU64(r->value);
    for (uint64_t v : roles)
        out.putU64(v);
    out.putU64(branchHist);
    out.putU64(static_cast<uint64_t>(static_cast<int64_t>(cfDepth)));
    out.putU64(lastLoopTarget);
    out.putU32(loopState);
    out.putU64(lastMemAddr);
    out.putU64(static_cast<uint64_t>(lastStride));
    out.putU32(strideState);
    for (uint64_t v : recentPages)
        out.putU64(v);
    out.putU32(pageCursor);
    out.putU32(dcacheState);
    out.putU32(icacheState);
    out.putU64(lastPcPage);
    out.putU32(ptwState);
    out.putU32(tlbState);
    out.putU32(robOcc);
    out.putU32(iqOcc);
    out.putU8(resArmed ? 1 : 0);
}

bool
EventDriver::loadState(soc::SnapshotReader &in, std::string *error)
{
    auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };
    try {
        const uint32_t count = in.getU32();
        if (count != regCache.size())
            return fail("driver register count mismatch");
        for (Register *r : regCache)
            r->value = in.getU64();
        for (uint64_t &v : roles)
            v = in.getU64();
        branchHist = in.getU64();
        cfDepth = static_cast<int>(
            static_cast<int64_t>(in.getU64()));
        lastLoopTarget = in.getU64();
        loopState = in.getU32();
        lastMemAddr = in.getU64();
        lastStride = static_cast<int64_t>(in.getU64());
        strideState = in.getU32();
        for (uint64_t &v : recentPages)
            v = in.getU64();
        pageCursor = in.getU32();
        dcacheState = in.getU32();
        icacheState = in.getU32();
        lastPcPage = in.getU64();
        ptwState = in.getU32();
        tlbState = in.getU32();
        robOcc = in.getU32();
        iqOcc = in.getU32();
        resArmed = in.getU8() != 0;
        pendingDirty = 0; // registers restored directly: nothing lags
        return true;
    } catch (const soc::SnapshotFormatError &e) {
        return fail(e.what());
    }
}

} // namespace turbofuzz::rtl
