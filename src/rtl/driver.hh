/**
 * @file
 * Microarchitectural event driver.
 *
 * Bridges the architectural world (per-instruction CommitInfo from the
 * DUT core) to the structural world (register values in the rtl::
 * Module tree). Each commit updates every modelled register according
 * to its RegRole; sequential roles (loop detector, stride detector,
 * cache/PTW FSMs, occupancy counters) evolve across commits, so only
 * *sequences* with the right structure reach their deeper states —
 * the property deepExplore's benchmark-derived seeds exploit.
 */

#ifndef TURBOFUZZ_RTL_DRIVER_HH
#define TURBOFUZZ_RTL_DRIVER_HH

#include <array>
#include <cstdint>
#include <string>

#include "core/commit_info.hh"
#include "rtl/module.hh"

namespace turbofuzz::soc
{
class SnapshotWriter;
class SnapshotReader;
} // namespace turbofuzz::soc

namespace turbofuzz::rtl
{

/** Drives a module tree from commit events. */
class EventDriver
{
  public:
    explicit EventDriver(Module *top_module);

    /** Reset all sequential tracking state and register values. */
    void reset();

    /** Apply one committed instruction to the module tree. */
    void onCommit(const core::CommitInfo &ci);

    /**
     * Batched variant of onCommit: incremental drive of one commit,
     * refreshing only the registers whose role value changed.
     * Register values are a pure function of the current role values,
     * so skipping unchanged roles is exact — PROVIDED every register
     * already reflects the current roles. That invariant holds right
     * after an onCommit() (which rewrites every register) and is then
     * maintained by consecutive onCommitDirty() calls; batch sweeps
     * therefore drive their first commit with onCommit() and the rest
     * with this.
     *
     * @return bitmask over RegRole of the roles this commit changed.
     */
    uint64_t onCommitDirty(const core::CommitInfo &ci);

    /**
     * Apply a whole commit trace (equivalent to n onCommit() calls,
     * with the incremental fast path for commits after the first).
     */
    void onTrace(const core::CommitInfo *commits, size_t n);

    /**
     * Roles-only commit step: update the per-role values and the
     * cross-commit tracking state WITHOUT writing any register.
     * Every register value is a pure function of its role's current
     * value, so a consumer that derives what it needs from
     * roleValues() directly (the coverage sweep) can run a whole
     * batch on this and defer register materialization to one
     * materializeRegisters() call at the end — the final register
     * state is identical to per-commit onCommitDirty() writes, since
     * only the LAST value of each role is ever observable there.
     * Until that call, register values lag the roles; pair every
     * advanceRoles() batch with a materializeRegisters().
     *
     * @return bitmask over RegRole of the roles this commit changed.
     */
    uint64_t advanceRoles(const core::CommitInfo &ci)
    {
        const uint64_t dirty = updateRoles(ci);
        pendingDirty |= dirty;
        return dirty;
    }

    /**
     * advanceRoles() that additionally schedules EVERY driven
     * register for the next materializeRegisters() — the batched
     * equivalent of a full onCommit(). Batch sweeps open with this
     * so the sweep-ending materialization alone re-establishes the
     * register/role invariant, no matter what state the registers
     * were in before the sweep (reset, loadState, a legacy-path
     * drive): one full register write per sweep, at the end,
     * instead of a full write up front plus a dirty write at the
     * end.
     */
    uint64_t advanceRolesFull(const core::CommitInfo &ci)
    {
        const uint64_t dirty = updateRoles(ci);
        pendingDirty = rolesWithRegs;
        return dirty;
    }

    /** Write the registers of every role dirtied by advanceRoles()
     *  since the last materialization (or full register write). */
    void materializeRegisters();

    /** Current value of every role (indexed by RegRole). */
    const std::array<uint64_t, 64> &roleValues() const
    {
        return roles;
    }

    /** Number of registers being driven (all modules). */
    size_t drivenRegisters() const { return regCache.size(); }

    /**
     * Checkpoint support: serialize the complete sequential state —
     * every driven register value, the per-role current values and
     * the cross-commit tracking state (branch history, loop/stride
     * detectors, cache/PTW FSMs, occupancy counters) — so a resumed
     * campaign's microarchitectural trajectory continues exactly
     * where the checkpointed one stopped.
     */
    void saveState(soc::SnapshotWriter &out) const;

    /**
     * Restore a saveState() image into a driver over a structurally
     * identical module tree (same design, same register count).
     * @return false with @p error set on malformed input.
     */
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr);

  private:
    /**
     * Compute the value for each role from the commit + history.
     * @return bitmask over RegRole of roles whose value changed.
     */
    uint64_t updateRoles(const core::CommitInfo &ci);

    static uint64_t mapToDomain(uint64_t value, const Register &reg);

    /** Write every register of @p role from role value @p value —
     *  the planned equivalent of mapToDomain over regsByRole[role]. */
    void writeRole(unsigned role, uint64_t value);

    /** Build the per-role write plans (constructor helper). */
    void buildRolePlans();

    Module *top;
    std::vector<Register *> regCache;

    /** Registers grouped by role (incremental-drive fast path). */
    std::array<std::vector<Register *>, 64> regsByRole;

    /**
     * Per-role write plan: registers split by mapToDomain() kind so
     * the hot rewrite loop is three tight passes with the expensive
     * per-register work hoisted — one modulo per distinct domain size
     * (shared by every register of that size) instead of one per
     * register, and width masks precomputed.
     */
    struct DomainRun
    {
        uint32_t size;  ///< domain.size() shared by the run
        uint32_t begin; ///< run bounds into RolePlan::domainRegs
        uint32_t end;
    };
    struct MixReg
    {
        Register *reg;
        uint64_t salt;
        uint64_t widthMask;
    };
    struct ShiftReg
    {
        Register *reg;
        unsigned shift;
        uint64_t widthMask;
    };
    struct RolePlan
    {
        std::vector<DomainRun> runs;
        std::vector<Register *> domainRegs; ///< grouped by size
        std::vector<MixReg> mixRegs;
        std::vector<ShiftReg> shiftRegs;
    };
    std::array<RolePlan, 64> rolePlans;

    /** Roles that drive at least one register. */
    uint64_t rolesWithRegs = 0;

    /** Roles advanced but not yet written to their registers. */
    uint64_t pendingDirty = 0;

    /** Current value per role. */
    std::array<uint64_t, 64> roles{};

    // --- sequential tracking state ---------------------------------
    uint64_t branchHist = 0;
    int cfDepth = 0;
    uint64_t lastLoopTarget = 0;
    unsigned loopState = 0;
    uint64_t lastMemAddr = 0;
    int64_t lastStride = 0;
    unsigned strideState = 0;
    std::array<uint64_t, 4> recentPages{};
    unsigned pageCursor = 0;
    unsigned dcacheState = 0;
    unsigned icacheState = 0;
    uint64_t lastPcPage = 0;
    unsigned ptwState = 0;
    unsigned tlbState = 0;
    unsigned robOcc = 0;
    unsigned iqOcc = 0;
    bool resArmed = false;
};

/** FP operation kind encoding used by RegRole::FpKind. */
unsigned fpKindOf(isa::Opcode op);

/** Instruction class encoding used by RegRole::OpClass. */
unsigned opClassOf(const isa::InstrDesc &desc);

} // namespace turbofuzz::rtl

#endif // TURBOFUZZ_RTL_DRIVER_HH
