#include "rtl/module.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace turbofuzz::rtl
{

uint32_t
Module::addRegister(const std::string &reg_name, unsigned width,
                    RegRole role, std::vector<uint64_t> domain,
                    unsigned src_shift, uint64_t salt)
{
    TF_ASSERT(width >= 1 && width <= 64, "register width %u invalid",
              width);
    Register r;
    r.name = reg_name;
    r.width = width;
    r.role = role;
    r.domain = std::move(domain);
    r.srcShift = src_shift;
    r.salt = salt;
    if (!r.domain.empty())
        r.value = r.domain.front();
    regs.push_back(std::move(r));
    return static_cast<uint32_t>(regs.size() - 1);
}

uint32_t
Module::addWire(const std::string &wire_name,
                std::vector<uint32_t> reg_drivers,
                std::vector<uint32_t> wire_drivers)
{
    for (uint32_t r : reg_drivers)
        TF_ASSERT(r < regs.size(), "wire '%s' driven by bad register %u",
                  wire_name.c_str(), r);
    for (uint32_t w : wire_drivers)
        TF_ASSERT(w < wireList.size(),
                  "wire '%s' driven by bad wire %u", wire_name.c_str(),
                  w);
    Wire w;
    w.name = wire_name;
    w.regDrivers = std::move(reg_drivers);
    w.wireDrivers = std::move(wire_drivers);
    wireList.push_back(std::move(w));
    return static_cast<uint32_t>(wireList.size() - 1);
}

uint32_t
Module::addMux(const std::string &mux_name, uint32_t select_wire)
{
    TF_ASSERT(select_wire < wireList.size(),
              "mux '%s' selected by bad wire %u", mux_name.c_str(),
              select_wire);
    muxList.push_back({mux_name, select_wire});
    return static_cast<uint32_t>(muxList.size() - 1);
}

Module *
Module::addChild(std::string child_name)
{
    kids.push_back(std::make_unique<Module>(std::move(child_name)));
    return kids.back().get();
}

std::vector<uint32_t>
Module::traceControlRegisters(const Mux &mux) const
{
    // DFS through the select network; wires may form cycles in
    // pathological netlists, so track visitation.
    std::set<uint32_t> found;
    std::vector<bool> visited(wireList.size(), false);
    std::vector<uint32_t> stack = {mux.selectWire};
    while (!stack.empty()) {
        const uint32_t w = stack.back();
        stack.pop_back();
        if (visited[w])
            continue;
        visited[w] = true;
        const Wire &wire = wireList[w];
        for (uint32_t r : wire.regDrivers)
            found.insert(r);
        for (uint32_t next : wire.wireDrivers)
            stack.push_back(next);
    }
    return {found.begin(), found.end()};
}

std::vector<uint32_t>
Module::controlRegisters() const
{
    std::set<uint32_t> all;
    for (const Mux &m : muxList) {
        const auto traced = traceControlRegisters(m);
        all.insert(traced.begin(), traced.end());
    }
    return {all.begin(), all.end()};
}

void
Module::visit(const std::function<void(Module &)> &fn)
{
    fn(*this);
    for (auto &kid : kids)
        kid->visit(fn);
}

void
Module::visit(const std::function<void(const Module &)> &fn) const
{
    fn(*this);
    for (const auto &kid : kids)
        kid->visit(fn);
}

Module *
Module::findModule(const std::string &module_name)
{
    if (moduleName == module_name)
        return this;
    for (auto &kid : kids)
        if (Module *m = kid->findModule(module_name))
            return m;
    return nullptr;
}

unsigned
Module::controlBitWidth() const
{
    unsigned total = 0;
    for (uint32_t r : controlRegisters())
        total += regs[r].width;
    return total;
}

} // namespace turbofuzz::rtl
