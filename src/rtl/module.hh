/**
 * @file
 * Structural RTL model: modules, registers, wires and multiplexers.
 *
 * Coverage instrumentation in the paper operates on the *structure* of
 * the design: it finds every multiplexer, then backward-traces its
 * select network through wires until it reaches registers — those are
 * the module's "control registers" whose concatenated value forms the
 * coverage index (§VI). This model provides exactly that structure:
 *
 *  - Register: a named stateful element with a width, an optional
 *    constrained value domain (e.g. one-hot FSM encodings), and a
 *    semantic role that the microarchitectural event driver uses to
 *    update its value on every commit.
 *  - Wire: a named combinational node driven by registers and/or
 *    other wires.
 *  - Mux: a multiplexer whose select is driven by one wire.
 *
 * Core-specific netlists (rocket_like etc.) are built in cores.cc with
 * register/mux inventories approximating the real designs.
 */

#ifndef TURBOFUZZ_RTL_MODULE_HH
#define TURBOFUZZ_RTL_MODULE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace turbofuzz::rtl
{

/**
 * Semantic role of a register: how the event driver computes its value
 * from each committed instruction. Roles marked [seq] carry sequential
 * state across commits and are what makes structured programs reach
 * design states that random streams rarely hit.
 */
enum class RegRole : uint8_t
{
    Datapath,       ///< low-entropy digest of the writeback value
    PcLow,          ///< low bits of the program counter
    PcPage,         ///< page-number digest of the PC
    OpClass,        ///< instruction class (extension + kind)
    RdIdx,          ///< destination register index
    Rs1Idx,         ///< source 1 index
    ImmLow,         ///< low bits of the immediate
    BranchTaken,    ///< last branch outcome
    BranchHistory,  ///< [seq] shift register of outcomes
    CfDepth,        ///< [seq] net jump/return depth estimate
    LoopFsm,        ///< [seq] backward-branch loop detector state
    MemAddrLow,     ///< low bits of the effective address
    MemSize,        ///< access size encoding
    MemRw,          ///< read/write flag
    StrideFsm,      ///< [seq] constant-stride detector state
    DcacheFsm,      ///< [seq] hit/miss-streak estimator state
    ResState,       ///< LR/SC reservation state
    Fflags,         ///< flags accrued by the last FP op
    Frm,            ///< active rounding mode
    FpClassA,       ///< class of FP operand A (fclass encoding)
    FpClassB,       ///< class of FP operand B
    FpKind,         ///< FP operation kind
    FpPrec,         ///< single/double
    CsrAddr,        ///< digest of the last CSR address touched
    TrapCause,      ///< last trap cause (constrained domain)
    TrapFlag,       ///< trapped on this commit
    FsState,        ///< mstatus.FS field
    MulDivBusy,     ///< a mul/div op is in flight
    DivCycles,      ///< [seq] divider latency counter digest
    MulSigns,       ///< operand sign combination
    AmoKind,        ///< atomic operation kind
    IcacheFsm,      ///< [seq] fetch-stream locality state
    PtwFsm,         ///< [seq] page-table-walk FSM (one-hot domain)
    TlbFsm,         ///< [seq] TLB fill FSM
    RobOcc,         ///< [seq] reorder-buffer occupancy digest (OoO)
    IqOcc,          ///< [seq] issue-queue occupancy digest (OoO)
};

/** A stateful element of the design. */
struct Register
{
    std::string name;
    unsigned width;          ///< bits
    RegRole role;
    /**
     * Optional constrained value domain. Empty means the register can
     * take any width-bit value; non-empty lists the only values the
     * implementation can produce (e.g. one-hot FSM states). The
     * reachability analysis consumes this.
     */
    std::vector<uint64_t> domain;

    /**
     * Bit offset into the role value this register latches (real
     * designs slice architectural quantities across several small
     * control registers).
     */
    unsigned srcShift = 0;

    /**
     * Nonzero for *derived* control state: the register latches a
     * salted mix of the role value rather than a direct slice,
     * modelling the many distinct control registers different logic
     * cones derive from the same architectural quantity.
     */
    uint64_t salt = 0;

    uint64_t value = 0; ///< current simulated value
};

/** A combinational node. */
struct Wire
{
    std::string name;
    std::vector<uint32_t> regDrivers;  ///< register indices
    std::vector<uint32_t> wireDrivers; ///< wire indices
};

/** A multiplexer; its select is driven by one wire. */
struct Mux
{
    std::string name;
    uint32_t selectWire;
};

/** One level of the design hierarchy. */
class Module
{
  public:
    explicit Module(std::string module_name)
        : moduleName(std::move(module_name))
    {}

    const std::string &name() const { return moduleName; }

    /** Add a register; returns its index. */
    uint32_t addRegister(const std::string &reg_name, unsigned width,
                         RegRole role,
                         std::vector<uint64_t> domain = {},
                         unsigned src_shift = 0, uint64_t salt = 0);

    /** Add a wire driven by the given registers/wires. */
    uint32_t addWire(const std::string &wire_name,
                     std::vector<uint32_t> reg_drivers,
                     std::vector<uint32_t> wire_drivers = {});

    /** Add a mux whose select is the given wire. */
    uint32_t addMux(const std::string &mux_name, uint32_t select_wire);

    /** Add a child module; the pointer stays owned by this module. */
    Module *addChild(std::string child_name);

    std::vector<Register> &registers() { return regs; }
    const std::vector<Register> &registers() const { return regs; }
    const std::vector<Wire> &wires() const { return wireList; }
    const std::vector<Mux> &muxes() const { return muxList; }
    const std::vector<std::unique_ptr<Module>> &children() const
    {
        return kids;
    }

    /**
     * The paper's trace-back algorithm: walk the select network of
     * @p mux through wires until registers are reached.
     * @return sorted, deduplicated register indices.
     */
    std::vector<uint32_t> traceControlRegisters(const Mux &mux) const;

    /**
     * Control registers of the whole module: union over all muxes of
     * their traced register sets (sorted, deduplicated).
     */
    std::vector<uint32_t> controlRegisters() const;

    /** Depth-first visit of this module and all descendants. */
    void visit(const std::function<void(Module &)> &fn);
    void visit(const std::function<void(const Module &)> &fn) const;

    /** Find a direct or transitive child by name (nullptr if absent). */
    Module *findModule(const std::string &module_name);

    /** Sum of register widths over the control registers. */
    unsigned controlBitWidth() const;

  private:
    std::string moduleName;
    std::vector<Register> regs;
    std::vector<Wire> wireList;
    std::vector<Mux> muxList;
    std::vector<std::unique_ptr<Module>> kids;
};

} // namespace turbofuzz::rtl

#endif // TURBOFUZZ_RTL_MODULE_HH
