#include "soc/area_model.hh"

#include <cmath>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace turbofuzz::soc
{

namespace
{
/** Bits per 36Kb block RAM. */
constexpr double bramBits = 36.0 * 1024.0;
} // namespace

DevicePart
xczu19eg()
{
    // UltraScale+ XCZU19EG: 522,720 LUTs, 984 BRAM36, 1,045,440 FFs.
    return {522720, 984, 1045440};
}

double
utilPercent(uint64_t used, uint64_t available)
{
    return 100.0 * static_cast<double>(used) /
           static_cast<double>(available);
}

Resources
rocketDutResources(uint32_t max_state_size_bits)
{
    // Rocket implementation baseline, with cover-point compare/XOR
    // logic scaling in the number of instrumented index bits
    // (~800 LUTs and ~800 FFs per index bit across the module tree).
    Resources r;
    r.luts = 296739 + 800ull * max_state_size_bits;
    r.brams = 20;
    r.regs = 158400 + 800ull * max_state_size_bits;
    return r;
}

Resources
fuzzerIpResources(const FuzzerAreaConfig &cfg)
{
    Resources r;

    // Control/datapath LUTs: decode + operand assignment dominate,
    // scaled by library rows and pipeline depth.
    const double lutBase = 38000.0;
    const double lutPerLibRow = 120.0;
    const double lutPerStage = 1700.0;
    r.luts = static_cast<uint64_t>(
        lutBase + lutPerLibRow * cfg.instrLibEntries +
        lutPerStage * cfg.pipelineStages);

    // BRAM: corpus storage + coverage map + context buffers.
    const double corpusBits =
        8.0 * cfg.corpusEntries * cfg.seedBytes;
    const double covMapBits =
        std::ldexp(1.0, static_cast<int>(cfg.maxStateSizeBits)) * 2.0;
    const double contextBits = 512.0 * 1024.0; // global context buffer
    r.brams = static_cast<uint64_t>(
        std::ceil(corpusBits / bramBits) +
        std::ceil(covMapBits / bramBits) +
        std::ceil(contextBits / bramBits) + 4 /* FIFOs */);

    // Registers: pipeline regs + LFSRs + metadata.
    const double regBase = 52000.0;
    const double regPerStage = 6200.0;
    const double regPerLibRow = 12.0;
    r.regs = static_cast<uint64_t>(regBase +
                                   regPerStage * cfg.pipelineStages +
                                   regPerLibRow * cfg.instrLibEntries);
    return r;
}

Resources
checkerResources()
{
    // Differential checker, monitors and snapshot controller
    // (ENCORE-style), independent of fuzzer configuration.
    return {21871, 51, 48032};
}

Resources
turboFuzzResources(const FuzzerAreaConfig &cfg)
{
    return fuzzerIpResources(cfg) + checkerResources();
}

Resources
ilaResources(uint32_t probe_signals, uint32_t trace_depth)
{
    TF_ASSERT(trace_depth >= 2, "ILA depth too small");
    // Vendor ILAs bank the trace memory per probe group and insert a
    // pipeline register stage per doubling of the depth; resources
    // therefore grow with the probe count and log2(depth). Calibrated
    // to pg172 characterisation data for ~3k probed signals at depths
    // 1024/65536 (Table III config1/config2).
    const double log_depth = std::log2(static_cast<double>(trace_depth));
    const double probe_scale = probe_signals / 3000.0;

    Resources r;
    r.luts = static_cast<uint64_t>((4915.0 + 322.7 * log_depth) *
                                   probe_scale);
    r.brams = static_cast<uint64_t>((276.7 + 18.83 * log_depth) *
                                    probe_scale);
    r.regs = static_cast<uint64_t>((9247.0 + 504.7 * log_depth) *
                                   probe_scale);
    return r;
}

double
fmaxMHz(uint32_t max_state_size_bits)
{
    // The sequential-offset coverage network adds roughly 0.45 ns of
    // routing+logic per index bit beyond the 13-bit baseline.
    const double baselineNs = 8.6; // cov1 critical path
    const double extra =
        max_state_size_bits > 13
            ? 0.45 * static_cast<double>(max_state_size_bits - 13)
            : 0.0;
    return 1000.0 / (baselineNs + extra);
}

} // namespace turbofuzz::soc
