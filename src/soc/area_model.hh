/**
 * @file
 * Analytical FPGA resource model (Table III substitution).
 *
 * Vivado implementation runs are replaced by an analytical estimator
 * for LUTs, block RAMs and registers of each TurboFuzz component on
 * the XCZU19EG part. Constants are calibrated so the default
 * configuration reproduces Table III; the *scaling* (corpus size,
 * coverage width, trace depth) follows first-principles resource
 * arithmetic, which is what the overhead analysis in §VII-G exercises.
 */

#ifndef TURBOFUZZ_SOC_AREA_MODEL_HH
#define TURBOFUZZ_SOC_AREA_MODEL_HH

#include <cstdint>
#include <string>

namespace turbofuzz::soc
{

/** A LUT/BRAM/FF triple. */
struct Resources
{
    uint64_t luts = 0;
    uint64_t brams = 0;
    uint64_t regs = 0;

    Resources
    operator+(const Resources &o) const
    {
        return {luts + o.luts, brams + o.brams, regs + o.regs};
    }
};

/** Totals available on the XCZU19EG (for utilisation percentages). */
struct DevicePart
{
    uint64_t luts;
    uint64_t brams;
    uint64_t regs;
};

/** The Fidus Sidewinder's XCZU19EG device totals. */
DevicePart xczu19eg();

/** Percent utilisation of @p used against @p part. */
double utilPercent(uint64_t used, uint64_t available);

/** Configuration knobs that influence fuzzer-IP area. */
struct FuzzerAreaConfig
{
    uint32_t corpusEntries = 64;      ///< BRAM-resident seeds
    uint32_t seedBytes = 11264;       ///< bytes per stored seed (11 KiB)
    uint32_t maxStateSizeBits = 15;   ///< coverage index width (cov3)
    uint32_t pipelineStages = 6;      ///< generator pipeline depth
    uint32_t instrLibEntries = 160;   ///< instruction library rows
};

/** DUT plus instrumented cover points (Rocket, Table III column 1). */
Resources rocketDutResources(uint32_t max_state_size_bits);

/** The synthesizable TurboFuzzer IP alone. */
Resources fuzzerIpResources(const FuzzerAreaConfig &cfg);

/** Differential checker + monitors + snapshot controller. */
Resources checkerResources();

/** The full TurboFuzz framework excluding DUT and cover points. */
Resources turboFuzzResources(const FuzzerAreaConfig &cfg);

/**
 * Vendor ILA with @p probe_signals probes and @p trace_depth samples
 * (config1 = 1024, config2 = 65536 in the paper).
 */
Resources ilaResources(uint32_t probe_signals, uint32_t trace_depth);

/**
 * Maximum achievable fabric clock for an instrumentation width
 * (cov1=13, cov2=14, cov3=15 in §VII-G). The coverage XOR/offset
 * network lengthens the feedback path as the index widens.
 */
double fmaxMHz(uint32_t max_state_size_bits);

} // namespace turbofuzz::soc

#endif // TURBOFUZZ_SOC_AREA_MODEL_HH
