#include "soc/ila.hh"

#include "common/logging.hh"

namespace turbofuzz::soc
{

IlaModel::IlaModel(std::vector<std::string> probe_names,
                   uint32_t trace_depth)
    : probeNames(std::move(probe_names)), traceDepth(trace_depth)
{
    TF_ASSERT(traceDepth >= 2, "ILA trace depth must be >= 2");
}

void
IlaModel::capture(const std::vector<uint64_t> &values)
{
    TF_ASSERT(values.size() == probeNames.size(),
              "probe/value count mismatch (%zu vs %zu)", values.size(),
              probeNames.size());
    window.push_back(values);
    while (window.size() > traceDepth)
        window.pop_front();
}

void
IlaModel::reprobe(std::vector<std::string> probe_names)
{
    probeNames = std::move(probe_names);
    window.clear();
    ++recompiles;
}

Resources
IlaModel::resources() const
{
    // Each 64-bit probe contributes its full width to the sample.
    return ilaResources(static_cast<uint32_t>(probeNames.size()) * 64,
                        traceDepth);
}

} // namespace turbofuzz::soc
