/**
 * @file
 * Behavioural model of a vendor Integrated Logic Analyzer.
 *
 * Used by the Table III overhead comparison and by tests contrasting
 * ILA-style debugging (bounded trace window, recompile to change the
 * probe set) with TurboFuzz's full-state snapshots.
 */

#ifndef TURBOFUZZ_SOC_ILA_HH
#define TURBOFUZZ_SOC_ILA_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "soc/area_model.hh"

namespace turbofuzz::soc
{

/**
 * A ring-buffer trace capture over a fixed probe set. Changing the
 * probe set models a design recompilation (counted, since the paper
 * contrasts this cost against snapshot-based debugging).
 */
class IlaModel
{
  public:
    /**
     * @param probe_names  Signals to capture each cycle.
     * @param trace_depth  Ring buffer depth in samples.
     */
    IlaModel(std::vector<std::string> probe_names, uint32_t trace_depth);

    /** Capture one sample (one value per probe). */
    void capture(const std::vector<uint64_t> &values);

    /** Oldest-to-newest captured samples (window <= depth). */
    const std::deque<std::vector<uint64_t>> &trace() const
    {
        return window;
    }

    /** Replace the probe set; models a recompile. */
    void reprobe(std::vector<std::string> probe_names);

    /** Number of recompilations triggered by reprobe(). */
    uint32_t recompileCount() const { return recompiles; }

    uint32_t depth() const { return traceDepth; }
    const std::vector<std::string> &probes() const { return probeNames; }

    /** Estimated fabric resources for this configuration. */
    Resources resources() const;

  private:
    std::vector<std::string> probeNames;
    uint32_t traceDepth;
    uint32_t recompiles = 0;
    std::deque<std::vector<uint64_t>> window;
};

} // namespace turbofuzz::soc

#endif // TURBOFUZZ_SOC_ILA_HH
