#include "soc/memory.hh"

#include <cstring>

#include "common/logging.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::soc
{

const Memory::Page *
Memory::findPage(uint64_t addr) const
{
    const uint64_t num = addr / pageSize;
    if (num == cachedPageNum)
        return cachedPage;
    auto it = pages.find(num);
    if (it == pages.end())
        return nullptr;
    cachedPageNum = num;
    cachedPage = const_cast<Page *>(&it->second);
    return cachedPage;
}

Memory::Page &
Memory::pageFor(uint64_t addr)
{
    const uint64_t num = addr / pageSize;
    if (num == cachedPageNum)
        return *cachedPage;
    auto [it, inserted] = pages.try_emplace(num);
    if (inserted) {
        it->second.assign(pageSize, 0);
        if (journal)
            journal->createdPages.push_back(num);
    }
    cachedPageNum = num;
    cachedPage = &it->second;
    return it->second;
}

void
Memory::noteWrite(uint64_t addr, uint64_t len)
{
    if (watches.empty()) {
        ++globalEpoch;
        return;
    }
    bool matched = false;
    for (FetchWatch &w : watches) {
        if (addr < w.base + w.size && addr + len > w.base) {
            ++w.epoch;
            matched = true;
        }
    }
    if (!matched)
        ++globalEpoch;
}

void
Memory::bumpAllEpochs()
{
    ++globalEpoch;
    for (FetchWatch &w : watches)
        ++w.epoch;
}

void
Memory::addFetchWatch(uint64_t base, uint64_t size)
{
    watches.push_back({base, size, 1});
    // Slot numbering changed; cached snapshots must all revalidate.
    bumpAllEpochs();
}

void
Memory::clearFetchWatches()
{
    watches.clear();
    bumpAllEpochs();
}

Memory &
Memory::operator=(const Memory &other)
{
    // A wholesale content replacement cannot be journaled; make the
    // precondition explicit instead of silently breaking undo().
    TF_ASSERT(journal == nullptr,
              "detach the journal before copy-assigning a Memory");
    pages = other.pages;
    dropPageCache();
    bumpAllEpochs();
    return *this;
}

template <typename T>
T
Memory::readScalar(uint64_t addr) const
{
    // Fast path: the access stays within one page.
    const uint64_t off = addr % pageSize;
    if (off + sizeof(T) <= pageSize) {
        const Page *p = findPage(addr);
        if (!p)
            return 0;
        T v;
        std::memcpy(&v, p->data() + off, sizeof(T));
        return v;
    }
    // Page-straddling access: byte-by-byte.
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i)
        v |= static_cast<T>(read8(addr + i)) << (8 * i);
    return v;
}

template <typename T>
void
Memory::writeScalar(uint64_t addr, T value)
{
    const uint64_t off = addr % pageSize;
    if (off + sizeof(T) <= pageSize) {
        Page &p = pageFor(addr);
        if (journal) {
            T old;
            std::memcpy(&old, p.data() + off, sizeof(T));
            journal->log.push_back(
                {addr, static_cast<uint64_t>(old),
                 static_cast<uint8_t>(sizeof(T))});
        }
        std::memcpy(p.data() + off, &value, sizeof(T));
        noteWrite(addr, sizeof(T));
        return;
    }
    // Page-straddling: byte writes journal themselves.
    for (size_t i = 0; i < sizeof(T); ++i)
        write8(addr + i, static_cast<uint8_t>(value >> (8 * i)));
}

uint8_t
Memory::read8(uint64_t addr) const
{
    const Page *p = findPage(addr);
    return p ? (*p)[addr % pageSize] : 0;
}

uint16_t
Memory::read16(uint64_t addr) const
{
    return readScalar<uint16_t>(addr);
}

uint32_t
Memory::read32(uint64_t addr) const
{
    return readScalar<uint32_t>(addr);
}

uint64_t
Memory::read64(uint64_t addr) const
{
    return readScalar<uint64_t>(addr);
}

void
Memory::write8(uint64_t addr, uint8_t value)
{
    uint8_t &slot = pageFor(addr)[addr % pageSize];
    if (journal)
        journal->log.push_back({addr, slot, 1});
    slot = value;
    noteWrite(addr, 1);
}

void
Memory::write16(uint64_t addr, uint16_t value)
{
    writeScalar(addr, value);
}

void
Memory::write32(uint64_t addr, uint32_t value)
{
    writeScalar(addr, value);
}

void
Memory::write64(uint64_t addr, uint64_t value)
{
    writeScalar(addr, value);
}

void
Memory::loadBlob(uint64_t addr, const uint8_t *data, size_t size)
{
    for (size_t i = 0; i < size; ++i)
        write8(addr + i, data[i]);
}

void
Memory::clearRange(uint64_t addr, uint64_t size)
{
    for (uint64_t a = addr; a < addr + size; ++a)
        write8(a, 0);
}

void
Memory::reset()
{
    pages.clear();
    dropPageCache();
    bumpAllEpochs();
}

void
Memory::undo(const MemWriteJournal &j)
{
    TF_ASSERT(journal == nullptr,
              "detach the journal before undoing it");
    for (auto it = j.log.rbegin(); it != j.log.rend(); ++it) {
        switch (it->size) {
          case 1:
            write8(it->addr, static_cast<uint8_t>(it->oldValue));
            break;
          case 2:
            write16(it->addr, static_cast<uint16_t>(it->oldValue));
            break;
          case 4:
            write32(it->addr, static_cast<uint32_t>(it->oldValue));
            break;
          case 8:
            write64(it->addr, it->oldValue);
            break;
          default:
            panic("journal entry with bad size %u",
                  unsigned{it->size});
        }
    }
    // Pages the journaled writes allocated are all-zero again after
    // the byte undo above; drop them so page *residency* — which
    // saveState() serializes and snapshots embed — rewinds too.
    for (const uint64_t page_num : j.createdPages)
        pages.erase(page_num);
    dropPageCache();
    bumpAllEpochs();
}

void
Memory::saveState(SnapshotWriter &out) const
{
    out.putU64(pages.size());
    for (const auto &[pageNum, page] : pages) {
        out.putU64(pageNum);
        out.putBytes(page.data(), page.size());
    }
}

void
Memory::loadState(SnapshotReader &in)
{
    pages.clear();
    dropPageCache();
    bumpAllEpochs();
    const uint64_t count = in.getU64();
    // Each serialized page is a number plus pageSize bytes; reject a
    // count that cannot fit the buffer before allocating any pages.
    if (count > in.remaining() / (8 + pageSize))
        throw SnapshotFormatError(
            "memory page count exceeds snapshot buffer");
    for (uint64_t i = 0; i < count; ++i) {
        const uint64_t pageNum = in.getU64();
        Page page(pageSize);
        in.getBytes(page.data(), pageSize);
        pages.emplace(pageNum, std::move(page));
    }
}

Bram::Bram(size_t capacity_bytes) : capacityBytes(capacity_bytes)
{
}

size_t
Bram::append(const std::vector<uint8_t> &record)
{
    if (data.size() + record.size() > capacityBytes)
        return SIZE_MAX;
    const size_t offset = data.size();
    data.insert(data.end(), record.begin(), record.end());
    return offset;
}

std::vector<uint8_t>
Bram::read(size_t offset, size_t size) const
{
    TF_ASSERT(offset + size <= data.size(), "BRAM read out of range");
    return {data.begin() + static_cast<ptrdiff_t>(offset),
            data.begin() + static_cast<ptrdiff_t>(offset + size)};
}

} // namespace turbofuzz::soc
