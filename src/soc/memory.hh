/**
 * @file
 * Sparse byte-addressable memory modelling the board's DDR4, plus a
 * small capacity-limited Bram model for on-chip seed storage.
 *
 * The DDR model backs the instruction segment the fuzzer commits
 * iterations into and the LFSR-filled data segment; it is sparse so
 * snapshots stay small.
 */

#ifndef TURBOFUZZ_SOC_MEMORY_HH
#define TURBOFUZZ_SOC_MEMORY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace turbofuzz::soc
{

class SnapshotWriter;
class SnapshotReader;

/** Sparse 64-bit address space with 4 KiB backing pages. */
class Memory
{
  public:
    static constexpr uint64_t pageSize = 4096;

    Memory() = default;

    uint8_t read8(uint64_t addr) const;
    uint16_t read16(uint64_t addr) const;
    uint32_t read32(uint64_t addr) const;
    uint64_t read64(uint64_t addr) const;

    void write8(uint64_t addr, uint8_t value);
    void write16(uint64_t addr, uint16_t value);
    void write32(uint64_t addr, uint32_t value);
    void write64(uint64_t addr, uint64_t value);

    /** Copy a blob into memory starting at @p addr. */
    void loadBlob(uint64_t addr, const uint8_t *data, size_t size);

    /** Zero-fill a range (allocates pages). */
    void clearRange(uint64_t addr, uint64_t size);

    /** Drop every page (full reset). */
    void reset();

    /** Number of resident pages (for stats/snapshot sizing). */
    size_t residentPages() const { return pages.size(); }

    /** Serialize resident pages. */
    void saveState(SnapshotWriter &out) const;

    /** Restore from a snapshot (replaces all contents). */
    void loadState(SnapshotReader &in);

  private:
    using Page = std::vector<uint8_t>;

    const Page *findPage(uint64_t addr) const;
    Page &pageFor(uint64_t addr);

    /** Generic little-endian scalar access helpers. */
    template <typename T> T readScalar(uint64_t addr) const;
    template <typename T> void writeScalar(uint64_t addr, T value);

    std::map<uint64_t, Page> pages;
};

/**
 * On-chip BRAM region with a hard capacity, mirroring the paper's
 * BRAM-resident corpus option (faster but limited, §IV-A3).
 */
class Bram
{
  public:
    explicit Bram(size_t capacity_bytes);

    size_t capacity() const { return capacityBytes; }
    size_t used() const { return data.size(); }

    /**
     * Append a record; returns the offset, or SIZE_MAX when the record
     * does not fit.
     */
    size_t append(const std::vector<uint8_t> &record);

    /** Read back a record written by append(). */
    std::vector<uint8_t> read(size_t offset, size_t size) const;

    void clear() { data.clear(); }

  private:
    size_t capacityBytes;
    std::vector<uint8_t> data;
};

} // namespace turbofuzz::soc

#endif // TURBOFUZZ_SOC_MEMORY_HH
