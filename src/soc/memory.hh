/**
 * @file
 * Sparse byte-addressable memory modelling the board's DDR4, plus a
 * small capacity-limited Bram model for on-chip seed storage.
 *
 * The DDR model backs the instruction segment the fuzzer commits
 * iterations into and the LFSR-filled data segment; it is sparse so
 * snapshots stay small.
 */

#ifndef TURBOFUZZ_SOC_MEMORY_HH
#define TURBOFUZZ_SOC_MEMORY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace turbofuzz::soc
{

class SnapshotWriter;
class SnapshotReader;

/**
 * Undo log of memory writes. While attached to a Memory, every write
 * appends the overwritten bytes; Memory::undo() replays the log
 * backwards to restore the pre-attachment contents bit-exactly. The
 * batched execution engine uses one journal per hart batch so that a
 * mid-batch divergence can rewind the commits that ran past it.
 */
class MemWriteJournal
{
  public:
    struct Entry
    {
        uint64_t addr;
        uint64_t oldValue; ///< little-endian, low `size` bytes valid
        uint8_t size;      ///< 1, 2, 4 or 8
    };

    /** Forget all entries; capacity is retained for reuse. */
    void
    clear()
    {
        log.clear();
        createdPages.clear();
    }
    bool empty() const { return log.empty() && createdPages.empty(); }
    size_t size() const { return log.size(); }
    const std::vector<Entry> &entries() const { return log; }

  private:
    friend class Memory;
    std::vector<Entry> log;
    /** Pages first allocated while attached; undo() drops them so
     *  page residency (which snapshots serialize) rewinds too. */
    std::vector<uint64_t> createdPages;
};

/** Sparse 64-bit address space with 4 KiB backing pages. */
class Memory
{
  public:
    static constexpr uint64_t pageSize = 4096;

    Memory() = default;

    // Copies duplicate contents only: a journal observes one Memory's
    // write stream and never transfers to another instance.
    Memory(const Memory &other) : pages(other.pages) {}
    Memory &operator=(const Memory &other);

    uint8_t read8(uint64_t addr) const;
    uint16_t read16(uint64_t addr) const;
    uint32_t read32(uint64_t addr) const;
    uint64_t read64(uint64_t addr) const;

    void write8(uint64_t addr, uint8_t value);
    void write16(uint64_t addr, uint16_t value);
    void write32(uint64_t addr, uint32_t value);
    void write64(uint64_t addr, uint64_t value);

    /** Copy a blob into memory starting at @p addr. */
    void loadBlob(uint64_t addr, const uint8_t *data, size_t size);

    /** Zero-fill a range (allocates pages). */
    void clearRange(uint64_t addr, uint64_t size);

    /** Drop every page (full reset). */
    void reset();

    /**
     * Attach (or with nullptr detach) a write journal. While attached
     * every write records the bytes it overwrites. The journal is
     * borrowed, never owned, and must outlive the attachment.
     */
    void setJournal(MemWriteJournal *j) { journal = j; }

    /**
     * Restore the contents from before @p j was attached by undoing
     * its entries newest-first. Requires no journal to be attached
     * (detach before rewinding). @p j is left unchanged; clear() it
     * before reuse.
     */
    void undo(const MemWriteJournal &j);

    /** Number of resident pages (for stats/snapshot sizing). */
    size_t residentPages() const { return pages.size(); }

    /** Serialize resident pages. */
    void saveState(SnapshotWriter &out) const;

    /** Restore from a snapshot (replaces all contents). */
    void loadState(SnapshotReader &in);

  private:
    using Page = std::vector<uint8_t>;

    const Page *findPage(uint64_t addr) const;
    Page &pageFor(uint64_t addr);

    /** Generic little-endian scalar access helpers. */
    template <typename T> T readScalar(uint64_t addr) const;
    template <typename T> void writeScalar(uint64_t addr, T value);

    std::map<uint64_t, Page> pages;
    MemWriteJournal *journal = nullptr;
};

/**
 * On-chip BRAM region with a hard capacity, mirroring the paper's
 * BRAM-resident corpus option (faster but limited, §IV-A3).
 */
class Bram
{
  public:
    explicit Bram(size_t capacity_bytes);

    size_t capacity() const { return capacityBytes; }
    size_t used() const { return data.size(); }

    /**
     * Append a record; returns the offset, or SIZE_MAX when the record
     * does not fit.
     */
    size_t append(const std::vector<uint8_t> &record);

    /** Read back a record written by append(). */
    std::vector<uint8_t> read(size_t offset, size_t size) const;

    void clear() { data.clear(); }

  private:
    size_t capacityBytes;
    std::vector<uint8_t> data;
};

} // namespace turbofuzz::soc

#endif // TURBOFUZZ_SOC_MEMORY_HH
