/**
 * @file
 * Sparse byte-addressable memory modelling the board's DDR4, plus a
 * small capacity-limited Bram model for on-chip seed storage.
 *
 * The DDR model backs the instruction segment the fuzzer commits
 * iterations into and the LFSR-filled data segment; it is sparse so
 * snapshots stay small.
 */

#ifndef TURBOFUZZ_SOC_MEMORY_HH
#define TURBOFUZZ_SOC_MEMORY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace turbofuzz::soc
{

class SnapshotWriter;
class SnapshotReader;

/**
 * Undo log of memory writes. While attached to a Memory, every write
 * appends the overwritten bytes; Memory::undo() replays the log
 * backwards to restore the pre-attachment contents bit-exactly. The
 * batched execution engine uses one journal per hart batch so that a
 * mid-batch divergence can rewind the commits that ran past it.
 */
class MemWriteJournal
{
  public:
    struct Entry
    {
        uint64_t addr;
        uint64_t oldValue; ///< little-endian, low `size` bytes valid
        uint8_t size;      ///< 1, 2, 4 or 8
    };

    /** Forget all entries; capacity is retained for reuse. */
    void
    clear()
    {
        log.clear();
        createdPages.clear();
    }
    bool empty() const { return log.empty() && createdPages.empty(); }
    size_t size() const { return log.size(); }
    const std::vector<Entry> &entries() const { return log; }

  private:
    friend class Memory;
    std::vector<Entry> log;
    /** Pages first allocated while attached; undo() drops them so
     *  page residency (which snapshots serialize) rewinds too. */
    std::vector<uint64_t> createdPages;
};

/** Sparse 64-bit address space with 4 KiB backing pages. */
class Memory
{
  public:
    static constexpr uint64_t pageSize = 4096;

    Memory() = default;

    // Copies duplicate contents only: a journal observes one Memory's
    // write stream and never transfers to another instance.
    Memory(const Memory &other)
        : pages(other.pages), watches(other.watches),
          globalEpoch(other.globalEpoch)
    {
    }
    Memory &operator=(const Memory &other);

    uint8_t read8(uint64_t addr) const;
    uint16_t read16(uint64_t addr) const;
    uint32_t read32(uint64_t addr) const;
    uint64_t read64(uint64_t addr) const;

    void write8(uint64_t addr, uint8_t value);
    void write16(uint64_t addr, uint16_t value);
    void write32(uint64_t addr, uint32_t value);
    void write64(uint64_t addr, uint64_t value);

    /** Copy a blob into memory starting at @p addr. */
    void loadBlob(uint64_t addr, const uint8_t *data, size_t size);

    /** Zero-fill a range (allocates pages). */
    void clearRange(uint64_t addr, uint64_t size);

    /** Drop every page (full reset). */
    void reset();

    /**
     * Attach (or with nullptr detach) a write journal. While attached
     * every write records the bytes it overwrites. The journal is
     * borrowed, never owned, and must outlive the attachment.
     */
    void setJournal(MemWriteJournal *j) { journal = j; }

    /**
     * Restore the contents from before @p j was attached by undoing
     * its entries newest-first. Requires no journal to be attached
     * (detach before rewinding). @p j is left unchanged; clear() it
     * before reuse.
     */
    void undo(const MemWriteJournal &j);

    /** Number of resident pages (for stats/snapshot sizing). */
    size_t residentPages() const { return pages.size(); }

    /**
     * Fetch-epoch protocol backing the ISS decode cache. A cached
     * decode snapshots the epoch of the range its pc lives in; any
     * write that could alias that range bumps the epoch, so a stale
     * snapshot forces revalidation (refetch + insn compare) and
     * self-modifying stimulus stays bit-exact.
     *
     * Registering watch ranges narrows the aliasing test: a write
     * inside a watch bumps only that watch's epoch, a write outside
     * every watch bumps the global epoch (which covers fetches from
     * unwatched addresses). With no watches registered every write
     * bumps the global epoch — conservative but always correct.
     */
    void addFetchWatch(uint64_t base, uint64_t size);

    /** Drop all watch ranges (epochs all bump). */
    void clearFetchWatches();

    /**
     * Epoch slot covering @p addr: 0 is the global slot, i+1 the i-th
     * watch. Recompute after addFetchWatch/clearFetchWatches.
     */
    uint32_t
    fetchSlotFor(uint64_t addr) const
    {
        for (size_t i = 0; i < watches.size(); ++i)
            if (addr - watches[i].base < watches[i].size)
                return static_cast<uint32_t>(i + 1);
        return 0;
    }

    /** Current epoch of a fetchSlotFor() slot. */
    uint64_t
    fetchEpochOfSlot(uint32_t slot) const
    {
        return slot == 0 ? globalEpoch : watches[slot - 1].epoch;
    }

    /** Serialize resident pages. */
    void saveState(SnapshotWriter &out) const;

    /** Restore from a snapshot (replaces all contents). */
    void loadState(SnapshotReader &in);

  private:
    using Page = std::vector<uint8_t>;

    struct FetchWatch
    {
        uint64_t base;
        uint64_t size;
        uint64_t epoch;
    };

    const Page *findPage(uint64_t addr) const;
    Page &pageFor(uint64_t addr);
    void noteWrite(uint64_t addr, uint64_t len);
    void bumpAllEpochs();

    void
    dropPageCache() const
    {
        cachedPageNum = ~uint64_t{0};
        cachedPage = nullptr;
    }

    /** Generic little-endian scalar access helpers. */
    template <typename T> T readScalar(uint64_t addr) const;
    template <typename T> void writeScalar(uint64_t addr, T value);

    std::map<uint64_t, Page> pages;
    MemWriteJournal *journal = nullptr;

    std::vector<FetchWatch> watches;
    uint64_t globalEpoch = 1;

    /** One-entry page cache; std::map nodes are pointer-stable, so
     *  only page removal/replacement invalidates it. */
    mutable uint64_t cachedPageNum = ~uint64_t{0};
    mutable Page *cachedPage = nullptr;
};

/**
 * On-chip BRAM region with a hard capacity, mirroring the paper's
 * BRAM-resident corpus option (faster but limited, §IV-A3).
 */
class Bram
{
  public:
    explicit Bram(size_t capacity_bytes);

    size_t capacity() const { return capacityBytes; }
    size_t used() const { return data.size(); }

    /**
     * Append a record; returns the offset, or SIZE_MAX when the record
     * does not fit.
     */
    size_t append(const std::vector<uint8_t> &record);

    /** Read back a record written by append(). */
    std::vector<uint8_t> read(size_t offset, size_t size) const;

    void clear() { data.clear(); }

  private:
    size_t capacityBytes;
    std::vector<uint8_t> data;
};

} // namespace turbofuzz::soc

#endif // TURBOFUZZ_SOC_MEMORY_HH
