#include "soc/platform.hh"

#include "common/logging.hh"

namespace turbofuzz::soc
{

TimingProfile
turboFuzzProfile()
{
    TimingProfile p;
    p.name = "TurboFuzz";
    p.startupSec = 1.0;            // bitstream + corpus init
    p.genPerInstrSec = 1.0 / fabricClockHz;  // 1 instr/cycle generator
    p.execPerInstrSec = 1.0 / fabricClockHz; // in-order DUT, IPC ~1
    p.checkPerInstrSec = 5.0e-8;   // ARM PS reference, ~20 MIPS
    p.iterFixedSec = 1.283e-2;     // coverage readback + corpus ops
    return p;
}

TimingProfile
difuzzRtlFpgaProfile()
{
    TimingProfile p;
    p.name = "DifuzzRTL(FPGA)";
    p.startupSec = 1.0;
    p.genPerInstrSec = 1.0e-4;     // python-level generation/mutation
    p.execPerInstrSec = 1.0 / fabricClockHz;
    p.checkPerInstrSec = 0.0;      // coarse end-of-run comparison
    p.iterFixedSec = 0.151;        // host<->FPGA DMA + reload
    return p;
}

TimingProfile
difuzzRtlSwProfile()
{
    TimingProfile p;
    p.name = "DifuzzRTL";
    p.startupSec = 2.0;            // simulator build/elaboration
    p.genPerInstrSec = 1.0e-4;
    p.execPerInstrSec = 2.0e-5;    // RTL simulation, ~50 kHz
    p.checkPerInstrSec = 0.0;
    p.iterFixedSec = 0.151;        // ELF assembly + simulator reset
    return p;
}

TimingProfile
cascadeProfile()
{
    TimingProfile p;
    p.name = "Cascade";
    p.startupSec = 2.0;
    p.genPerInstrSec = 1.8e-4;     // intricate program construction
    p.execPerInstrSec = 2.0e-5;    // RTL simulation
    p.checkPerInstrSec = 0.0;      // termination-only checking
    p.iterFixedSec = 3.93e-2;      // program load + simulator reset
    return p;
}

TimingProfile
benchmarkFpgaProfile()
{
    TimingProfile p;
    p.name = "Benchmark(FPGA)";
    p.startupSec = 1.0;
    p.genPerInstrSec = 0.0;
    p.execPerInstrSec = 1.0 / fabricClockHz;
    p.checkPerInstrSec = 5.0e-8;
    p.iterFixedSec = 2.0e-3;       // program (re)load via DMA
    return p;
}

Platform::Platform(TimingProfile profile, SimClock *clock)
    : prof(std::move(profile)), clk(clock)
{
    TF_ASSERT(clk != nullptr, "Platform requires a clock");
}

void
Platform::chargeStartup()
{
    clk->advance(sim_time::fromSeconds(prof.startupSec));
}

void
Platform::chargeIteration(uint64_t generated, uint64_t executed)
{
    clk->advance(
        sim_time::fromSeconds(prof.iterationSec(generated, executed)));
}

void
Platform::chargeExecution(uint64_t executed)
{
    clk->advance(sim_time::fromSeconds(
        (prof.execPerInstrSec + prof.checkPerInstrSec) *
        static_cast<double>(executed)));
}

void
Platform::chargeSeconds(double sec)
{
    TF_ASSERT(sec >= 0.0, "negative time charge");
    clk->advance(sim_time::fromSeconds(sec));
}

} // namespace turbofuzz::soc
