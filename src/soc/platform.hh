/**
 * @file
 * Simulated execution-platform timing model.
 *
 * The paper runs four very different loop configurations:
 *   - TurboFuzz: generation, DUT, checking and coverage all on one
 *     FPGA SoC (fabric at 100 MHz, REF on the hardened ARM cores);
 *   - DifuzzRTL with FPGA offload: DUT on the fabric but generation
 *     and coverage on the host, paying host<->FPGA DMA per iteration;
 *   - DifuzzRTL / Cascade in pure software: everything on the host,
 *     with the DUT in RTL simulation at tens of kHz;
 *   - plain benchmark execution on the FPGA (deepExplore stage 1).
 *
 * This model charges simulated time for each loop stage. The per-stage
 * constants are the ONLY paper-calibrated numbers in the repository
 * (see DESIGN.md §5); every experiment consumes the resulting relative
 * costs. Absolute Table I rows fall out of the same constants.
 */

#ifndef TURBOFUZZ_SOC_PLATFORM_HH
#define TURBOFUZZ_SOC_PLATFORM_HH

#include <cstdint>
#include <string>

#include "common/sim_clock.hh"

namespace turbofuzz::soc
{

/** Per-stage costs of one fuzzing-loop iteration on some platform. */
struct TimingProfile
{
    std::string name;

    /** One-time setup (bitstream programming, corpus init). */
    double startupSec = 0.0;

    /** Cost to *generate* one instruction. */
    double genPerInstrSec = 0.0;

    /** Cost to *execute* one instruction on the DUT. */
    double execPerInstrSec = 0.0;

    /** Cost to lockstep-check one executed instruction on the REF. */
    double checkPerInstrSec = 0.0;

    /**
     * Fixed per-iteration overhead: host<->FPGA DMA and re-assembly
     * for offload flows, program build + simulator reset for software
     * flows, coverage-map readback and corpus maintenance for the
     * on-fabric flow.
     */
    double iterFixedSec = 0.0;

    /** Compute the cost of one iteration. */
    double
    iterationSec(uint64_t generated, uint64_t executed) const
    {
        return iterFixedSec +
               genPerInstrSec * static_cast<double>(generated) +
               (execPerInstrSec + checkPerInstrSec) *
                   static_cast<double>(executed);
    }
};

/** Fabric clock of the evaluation board (paper: 100 MHz Rocket). */
constexpr double fabricClockHz = 100.0e6;

/**
 * TurboFuzz on-fabric profile: generation at ~1 instr/cycle, DUT at
 * IPC ~1 on the fabric, REF sync on the ARM PS, and a fixed
 * coverage-readback + corpus-maintenance cost per iteration.
 * Calibrated to Table I row 3 (75.12 Hz, 309,676 exec instr/s at
 * 4,000 instructions per iteration).
 */
TimingProfile turboFuzzProfile();

/**
 * DifuzzRTL with DUT offloaded to the FPGA: per-iteration host DMA
 * and stimulus re-assembly dominate. Calibrated to Table I row 1
 * (4.13 Hz, 728 exec instr/s).
 */
TimingProfile difuzzRtlFpgaProfile();

/** DifuzzRTL fully in software (RTL simulation at tens of kHz). */
TimingProfile difuzzRtlSwProfile();

/**
 * Cascade: program generation on the host plus software RTL
 * simulation. Calibrated to Table I row 2 (12.80 Hz, 2,489 exec
 * instr/s).
 */
TimingProfile cascadeProfile();

/** Plain benchmark execution on the fabric (no fuzzing loop). */
TimingProfile benchmarkFpgaProfile();

/**
 * A platform instance: a timing profile bound to a simulated clock.
 */
class Platform
{
  public:
    Platform(TimingProfile profile, SimClock *clock);

    /** Charge the one-time startup cost. */
    void chargeStartup();

    /** Charge one fuzzing-loop iteration. */
    void chargeIteration(uint64_t generated, uint64_t executed);

    /** Charge raw DUT execution (benchmark runs, interval replay). */
    void chargeExecution(uint64_t executed);

    /** Charge an explicit extra cost in seconds. */
    void chargeSeconds(double sec);

    const TimingProfile &profile() const { return prof; }
    SimClock &clock() { return *clk; }
    double nowSec() const { return clk->seconds(); }

  private:
    TimingProfile prof;
    SimClock *clk;
};

} // namespace turbofuzz::soc

#endif // TURBOFUZZ_SOC_PLATFORM_HH
