#include "soc/snapshot.hh"

#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace turbofuzz::soc
{

void
SnapshotWriter::putU8(uint8_t v)
{
    bytes.push_back(v);
}

void
SnapshotWriter::putU16(uint16_t v)
{
    putU8(static_cast<uint8_t>(v));
    putU8(static_cast<uint8_t>(v >> 8));
}

void
SnapshotWriter::putU32(uint32_t v)
{
    putU16(static_cast<uint16_t>(v));
    putU16(static_cast<uint16_t>(v >> 16));
}

void
SnapshotWriter::putU64(uint64_t v)
{
    putU32(static_cast<uint32_t>(v));
    putU32(static_cast<uint32_t>(v >> 32));
}

void
SnapshotWriter::putBytes(const uint8_t *data, size_t size)
{
    bytes.insert(bytes.end(), data, data + size);
}

void
SnapshotWriter::putString(const std::string &s)
{
    putU32(static_cast<uint32_t>(s.size()));
    putBytes(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

SnapshotReader::SnapshotReader(const std::vector<uint8_t> &data)
    : source(data)
{
}

uint8_t
SnapshotReader::getU8()
{
    TF_ASSERT(cursor < source.size(), "snapshot underrun");
    return source[cursor++];
}

uint16_t
SnapshotReader::getU16()
{
    const uint16_t lo = getU8();
    const uint16_t hi = getU8();
    return static_cast<uint16_t>(lo | (hi << 8));
}

uint32_t
SnapshotReader::getU32()
{
    const uint32_t lo = getU16();
    const uint32_t hi = getU16();
    return lo | (hi << 16);
}

uint64_t
SnapshotReader::getU64()
{
    const uint64_t lo = getU32();
    const uint64_t hi = getU32();
    return lo | (hi << 32);
}

void
SnapshotReader::getBytes(uint8_t *out, size_t size)
{
    TF_ASSERT(cursor + size <= source.size(), "snapshot underrun");
    std::memcpy(out, source.data() + cursor, size);
    cursor += size;
}

std::string
SnapshotReader::getString()
{
    const uint32_t n = getU32();
    std::string s(n, '\0');
    getBytes(reinterpret_cast<uint8_t *>(s.data()), n);
    return s;
}

void
Snapshot::setSection(const std::string &name, std::vector<uint8_t> data)
{
    sections[name] = std::move(data);
}

bool
Snapshot::hasSection(const std::string &name) const
{
    return sections.count(name) != 0;
}

const std::vector<uint8_t> &
Snapshot::section(const std::string &name) const
{
    auto it = sections.find(name);
    if (it == sections.end())
        fatal("snapshot has no section '%s'", name.c_str());
    return it->second;
}

std::vector<uint8_t>
Snapshot::serialize() const
{
    SnapshotWriter w;
    w.putU32(0x54465350); // "TFSP"
    w.putString(triggerReason);
    w.putU64(static_cast<uint64_t>(captureTimeSec * 1e9));
    w.putU32(static_cast<uint32_t>(sections.size()));
    for (const auto &[name, data] : sections) {
        w.putString(name);
        w.putU32(static_cast<uint32_t>(data.size()));
        w.putBytes(data.data(), data.size());
    }
    return w.takeBuffer();
}

Snapshot
Snapshot::deserialize(const std::vector<uint8_t> &image)
{
    SnapshotReader r(image);
    Snapshot snap;
    const uint32_t magic = r.getU32();
    if (magic != 0x54465350)
        fatal("bad snapshot magic 0x%08x", magic);
    snap.triggerReason = r.getString();
    snap.captureTimeSec = static_cast<double>(r.getU64()) / 1e9;
    const uint32_t count = r.getU32();
    for (uint32_t i = 0; i < count; ++i) {
        std::string name = r.getString();
        const uint32_t size = r.getU32();
        std::vector<uint8_t> data(size);
        r.getBytes(data.data(), size);
        snap.sections[std::move(name)] = std::move(data);
    }
    return snap;
}

void
Snapshot::saveFile(const std::string &path) const
{
    const auto image = serialize();
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open snapshot file '%s' for writing", path.c_str());
    const size_t written = std::fwrite(image.data(), 1, image.size(), f);
    std::fclose(f);
    if (written != image.size())
        fatal("short write to snapshot file '%s'", path.c_str());
}

Snapshot
Snapshot::loadFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open snapshot file '%s'", path.c_str());
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> image(static_cast<size_t>(size));
    const size_t got = std::fread(image.data(), 1, image.size(), f);
    std::fclose(f);
    if (got != image.size())
        fatal("short read from snapshot file '%s'", path.c_str());
    return deserialize(image);
}

} // namespace turbofuzz::soc
