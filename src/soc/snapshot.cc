#include "soc/snapshot.hh"

#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace turbofuzz::soc
{

namespace
{

constexpr uint32_t snapshotMagic = 0x54465350; // "TFSP"

std::string
formatError(const char *what, unsigned long long have,
            unsigned long long need)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s (need %llu bytes, have %llu)",
                  what, need, have);
    return buf;
}

} // namespace

void
SnapshotWriter::putU8(uint8_t v)
{
    bytes.push_back(v);
}

void
SnapshotWriter::putU16(uint16_t v)
{
    putU8(static_cast<uint8_t>(v));
    putU8(static_cast<uint8_t>(v >> 8));
}

void
SnapshotWriter::putU32(uint32_t v)
{
    putU16(static_cast<uint16_t>(v));
    putU16(static_cast<uint16_t>(v >> 16));
}

void
SnapshotWriter::putU64(uint64_t v)
{
    putU32(static_cast<uint32_t>(v));
    putU32(static_cast<uint32_t>(v >> 32));
}

void
SnapshotWriter::putF64(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
SnapshotWriter::putBytes(const uint8_t *data, size_t size)
{
    bytes.insert(bytes.end(), data, data + size);
}

void
SnapshotWriter::putString(const std::string &s)
{
    putU32(static_cast<uint32_t>(s.size()));
    putBytes(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

SnapshotReader::SnapshotReader(const std::vector<uint8_t> &data)
    : source(data)
{
}

uint8_t
SnapshotReader::getU8()
{
    if (remaining() < 1)
        throw SnapshotFormatError("snapshot underrun");
    return source[cursor++];
}

uint16_t
SnapshotReader::getU16()
{
    const uint16_t lo = getU8();
    const uint16_t hi = getU8();
    return static_cast<uint16_t>(lo | (hi << 8));
}

uint32_t
SnapshotReader::getU32()
{
    const uint32_t lo = getU16();
    const uint32_t hi = getU16();
    return lo | (hi << 16);
}

uint64_t
SnapshotReader::getU64()
{
    const uint64_t lo = getU32();
    const uint64_t hi = getU32();
    return lo | (hi << 32);
}

double
SnapshotReader::getF64()
{
    const uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
SnapshotReader::getBytes(uint8_t *out, size_t size)
{
    // `size <= remaining()` cannot wrap, unlike the historical
    // `cursor + size <= source.size()` form, which overflowed for
    // sizes near SIZE_MAX and let a hostile length walk off the end.
    if (size > remaining())
        throw SnapshotFormatError(
            formatError("snapshot underrun", remaining(), size));
    std::memcpy(out, source.data() + cursor, size);
    cursor += size;
}

std::string
SnapshotReader::getString()
{
    const uint32_t n = getU32();
    // Validate against the remaining bytes BEFORE allocating: a
    // corrupted length of 0xFFFFFFFF must fail here, not attempt a
    // 4 GiB allocation and assert inside getBytes afterwards.
    if (n > remaining())
        throw SnapshotFormatError(
            formatError("string length exceeds buffer", remaining(),
                        n));
    std::string s(n, '\0');
    getBytes(reinterpret_cast<uint8_t *>(s.data()), n);
    return s;
}

void
Snapshot::setSection(const std::string &name, std::vector<uint8_t> data)
{
    sections[name] = std::move(data);
}

bool
Snapshot::hasSection(const std::string &name) const
{
    return sections.count(name) != 0;
}

const std::vector<uint8_t> &
Snapshot::section(const std::string &name) const
{
    auto it = sections.find(name);
    if (it == sections.end())
        fatal("snapshot has no section '%s'", name.c_str());
    return it->second;
}

std::vector<uint8_t>
Snapshot::serialize() const
{
    SnapshotWriter w;
    w.putU32(snapshotMagic);
    w.putU16(formatVersion);
    w.putString(triggerReason);
    w.putU64(static_cast<uint64_t>(captureTimeSec * 1e9));
    w.putU32(static_cast<uint32_t>(sections.size()));
    for (const auto &[name, data] : sections) {
        w.putString(name);
        w.putU32(static_cast<uint32_t>(data.size()));
        w.putBytes(data.data(), data.size());
    }
    return w.takeBuffer();
}

std::optional<Snapshot>
Snapshot::tryDeserialize(const std::vector<uint8_t> &image,
                         std::string *error)
{
    auto fail = [&](std::string msg) -> std::optional<Snapshot> {
        if (error)
            *error = std::move(msg);
        return std::nullopt;
    };

    SnapshotReader r(image);
    try {
        Snapshot snap;
        if (r.remaining() < 6)
            return fail(formatError("truncated snapshot header",
                                    r.remaining(), 6));
        const uint32_t magic = r.getU32();
        if (magic != snapshotMagic) {
            char buf[48];
            std::snprintf(buf, sizeof(buf),
                          "bad snapshot magic 0x%08x", magic);
            return fail(buf);
        }
        const uint16_t version = r.getU16();
        if (version != formatVersion) {
            char buf[64];
            std::snprintf(buf, sizeof(buf),
                          "unsupported snapshot version %u", version);
            return fail(buf);
        }
        snap.triggerReason = r.getString();
        snap.captureTimeSec =
            static_cast<double>(r.getU64()) / 1e9;
        const uint32_t count = r.getU32();
        // Every section costs at least a name length + data length
        // (8 bytes); a count larger than that bound cannot describe
        // this buffer.
        if (count > r.remaining() / 8)
            return fail(formatError("section count exceeds buffer",
                                    r.remaining(),
                                    static_cast<unsigned long long>(
                                        count) * 8));
        for (uint32_t i = 0; i < count; ++i) {
            std::string name = r.getString();
            const uint32_t size = r.getU32();
            if (size > r.remaining())
                return fail(formatError(
                    "section size exceeds buffer", r.remaining(),
                    size));
            std::vector<uint8_t> data(size);
            r.getBytes(data.data(), size);
            if (snap.sections.count(name))
                return fail("duplicate section '" + name + "'");
            snap.sections[std::move(name)] = std::move(data);
        }
        if (!r.exhausted())
            return fail(formatError(
                "trailing bytes after snapshot sections",
                r.remaining(), 0));
        return snap;
    } catch (const SnapshotFormatError &e) {
        return fail(e.what());
    }
}

Snapshot
Snapshot::deserialize(const std::vector<uint8_t> &image)
{
    std::string error;
    auto snap = tryDeserialize(image, &error);
    if (!snap)
        fatal("snapshot deserialize: %s", error.c_str());
    return std::move(*snap);
}

void
Snapshot::saveFile(const std::string &path) const
{
    std::string error;
    if (!trySaveFile(path, &error))
        fatal("%s", error.c_str());
}

bool
Snapshot::trySaveFile(const std::string &path, std::string *error) const
{
    auto fail = [&](std::string msg) {
        if (error)
            *error = std::move(msg);
        return false;
    };
    const auto image = serialize();
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return fail("cannot open snapshot file '" + path +
                    "' for writing");
    const size_t written = std::fwrite(image.data(), 1, image.size(), f);
    const bool closed_ok = std::fclose(f) == 0;
    if (written != image.size() || !closed_ok)
        return fail("short write to snapshot file '" + path + "'");
    return true;
}

Snapshot
Snapshot::loadFile(const std::string &path)
{
    std::string error;
    auto snap = tryLoadFile(path, &error);
    if (!snap)
        fatal("%s", error.c_str());
    return std::move(*snap);
}

std::optional<Snapshot>
Snapshot::tryLoadFile(const std::string &path, std::string *error)
{
    auto fail = [&](std::string msg) -> std::optional<Snapshot> {
        if (error)
            *error = std::move(msg);
        return std::nullopt;
    };

    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return fail("cannot open snapshot file '" + path + "'");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
        std::fclose(f);
        return fail("cannot size snapshot file '" + path + "'");
    }
    std::vector<uint8_t> image(static_cast<size_t>(size));
    const size_t got = std::fread(image.data(), 1, image.size(), f);
    std::fclose(f);
    if (got != image.size())
        return fail("short read from snapshot file '" + path + "'");
    std::string parse_error;
    auto snap = tryDeserialize(image, &parse_error);
    if (!snap)
        return fail("snapshot file '" + path + "': " + parse_error);
    return snap;
}

} // namespace turbofuzz::soc
