/**
 * @file
 * Hardware snapshot capture (the StateMover/ENCORE readback analogue).
 *
 * A Snapshot is an ordered set of named binary sections. Components
 * implement saveState()/loadState() against SnapshotWriter/Reader;
 * the checker triggers a capture when a DUT/REF mismatch occurs so the
 * exact failing state can be reloaded and replayed offline
 * (paper §III "Fine-grained self-checking" and §II-C). Snapshots are
 * also the container for the campaign checkpoint/resume files the
 * fleet orchestrator writes at epoch barriers (docs/snapshot.md).
 *
 * The wire format is versioned and fully length-validated: snapshot
 * images come from disk (checkpoint files, archived mismatch
 * captures), so every length field is checked against the remaining
 * buffer *before* any allocation, and parse failures surface as a
 * typed, catchable SnapshotFormatError — never as a panic or a
 * multi-gigabyte resize from a corrupted length field.
 */

#ifndef TURBOFUZZ_SOC_SNAPSHOT_HH
#define TURBOFUZZ_SOC_SNAPSHOT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace turbofuzz::soc
{

/**
 * Thrown on corrupt or truncated snapshot input: reader underruns and
 * length fields that cannot fit the remaining buffer. Callers that
 * parse untrusted images (checkpoint loading, component loadState)
 * catch this and surface a recoverable error.
 */
class SnapshotFormatError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Serializer for one snapshot section stream. */
class SnapshotWriter
{
  public:
    void putU8(uint8_t v);
    void putU16(uint16_t v);
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    /** IEEE-754 bit pattern of @p v (serialization-safe doubles). */
    void putF64(double v);
    void putBytes(const uint8_t *data, size_t size);
    void putString(const std::string &s);

    const std::vector<uint8_t> &buffer() const { return bytes; }
    std::vector<uint8_t> takeBuffer() { return std::move(bytes); }

  private:
    std::vector<uint8_t> bytes;
};

/**
 * Deserializer over a snapshot section stream. Every read is bounds
 * checked; consuming past the end throws SnapshotFormatError.
 */
class SnapshotReader
{
  public:
    explicit SnapshotReader(const std::vector<uint8_t> &data);

    uint8_t getU8();
    uint16_t getU16();
    uint32_t getU32();
    uint64_t getU64();
    double getF64();
    void getBytes(uint8_t *out, size_t size);

    /** Length-prefixed string; the length is validated against the
     *  remaining buffer before the string is allocated. */
    std::string getString();

    /** True when every byte has been consumed. */
    bool exhausted() const { return cursor == source.size(); }

    /** Bytes left to consume (for length-field validation). */
    size_t remaining() const { return source.size() - cursor; }

  private:
    const std::vector<uint8_t> &source;
    size_t cursor = 0;
};

/**
 * A complete design-state capture: named sections plus capture
 * metadata (simulated time, trigger reason).
 */
class Snapshot
{
  public:
    /** Wire-format version written by serialize(). */
    static constexpr uint16_t formatVersion = 1;

    /** Add or replace a section. */
    void setSection(const std::string &name, std::vector<uint8_t> data);

    /** True if a section exists. */
    bool hasSection(const std::string &name) const;

    /** Retrieve a section; fatal() if missing. */
    const std::vector<uint8_t> &section(const std::string &name) const;

    void setTrigger(const std::string &reason) { triggerReason = reason; }
    const std::string &trigger() const { return triggerReason; }

    void setCaptureTime(double t) { captureTimeSec = t; }
    double captureTime() const { return captureTimeSec; }

    /** Serialize the whole snapshot to a flat byte image. */
    std::vector<uint8_t> serialize() const;

    /**
     * Rebuild a snapshot from a flat byte image.
     * Fatal on malformed input — use tryDeserialize() for images that
     * come from outside the process (checkpoint files).
     */
    static Snapshot deserialize(const std::vector<uint8_t> &image);

    /**
     * Non-fatal variant: returns std::nullopt on corrupt, truncated
     * or version-mismatched input and, when @p error is non-null,
     * stores a diagnostic there. Every length field is validated
     * against the remaining buffer before any allocation.
     */
    static std::optional<Snapshot>
    tryDeserialize(const std::vector<uint8_t> &image,
                   std::string *error = nullptr);

    /** Write/read the flat image to/from a file. */
    void saveFile(const std::string &path) const;
    static Snapshot loadFile(const std::string &path);

    /**
     * Non-fatal file write (periodic checkpoint path): I/O failures
     * — unwritable directory, disk full — return false with a
     * diagnostic instead of killing the campaign whose progress the
     * checkpoint exists to protect.
     */
    bool trySaveFile(const std::string &path,
                     std::string *error = nullptr) const;

    /**
     * Non-fatal file load (checkpoint/resume path): I/O errors and
     * malformed images return std::nullopt with a diagnostic.
     */
    static std::optional<Snapshot>
    tryLoadFile(const std::string &path, std::string *error = nullptr);

    size_t sectionCount() const { return sections.size(); }

  private:
    std::map<std::string, std::vector<uint8_t>> sections;
    std::string triggerReason;
    double captureTimeSec = 0.0;
};

} // namespace turbofuzz::soc

#endif // TURBOFUZZ_SOC_SNAPSHOT_HH
