/**
 * @file
 * Hardware snapshot capture (the StateMover/ENCORE readback analogue).
 *
 * A Snapshot is an ordered set of named binary sections. Components
 * implement saveState()/loadState() against SnapshotWriter/Reader;
 * the checker triggers a capture when a DUT/REF mismatch occurs so the
 * exact failing state can be reloaded and replayed offline
 * (paper §III "Fine-grained self-checking" and §II-C).
 */

#ifndef TURBOFUZZ_SOC_SNAPSHOT_HH
#define TURBOFUZZ_SOC_SNAPSHOT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace turbofuzz::soc
{

/** Serializer for one snapshot section stream. */
class SnapshotWriter
{
  public:
    void putU8(uint8_t v);
    void putU16(uint16_t v);
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    void putBytes(const uint8_t *data, size_t size);
    void putString(const std::string &s);

    const std::vector<uint8_t> &buffer() const { return bytes; }
    std::vector<uint8_t> takeBuffer() { return std::move(bytes); }

  private:
    std::vector<uint8_t> bytes;
};

/** Deserializer over a snapshot section stream. */
class SnapshotReader
{
  public:
    explicit SnapshotReader(const std::vector<uint8_t> &data);

    uint8_t getU8();
    uint16_t getU16();
    uint32_t getU32();
    uint64_t getU64();
    void getBytes(uint8_t *out, size_t size);
    std::string getString();

    /** True when every byte has been consumed. */
    bool exhausted() const { return cursor == source.size(); }

    /** Bytes left to consume (for length-field validation). */
    size_t remaining() const { return source.size() - cursor; }

  private:
    const std::vector<uint8_t> &source;
    size_t cursor = 0;
};

/**
 * A complete design-state capture: named sections plus capture
 * metadata (simulated time, trigger reason).
 */
class Snapshot
{
  public:
    /** Add or replace a section. */
    void setSection(const std::string &name, std::vector<uint8_t> data);

    /** True if a section exists. */
    bool hasSection(const std::string &name) const;

    /** Retrieve a section; fatal() if missing. */
    const std::vector<uint8_t> &section(const std::string &name) const;

    void setTrigger(const std::string &reason) { triggerReason = reason; }
    const std::string &trigger() const { return triggerReason; }

    void setCaptureTime(double t) { captureTimeSec = t; }
    double captureTime() const { return captureTimeSec; }

    /** Serialize the whole snapshot to a flat byte image. */
    std::vector<uint8_t> serialize() const;

    /** Rebuild a snapshot from a flat byte image. */
    static Snapshot deserialize(const std::vector<uint8_t> &image);

    /** Write/read the flat image to/from a file. */
    void saveFile(const std::string &path) const;
    static Snapshot loadFile(const std::string &path);

    size_t sectionCount() const { return sections.size(); }

  private:
    std::map<std::string, std::vector<uint8_t>> sections;
    std::string triggerReason;
    double captureTimeSec = 0.0;
};

} // namespace turbofuzz::soc

#endif // TURBOFUZZ_SOC_SNAPSHOT_HH
