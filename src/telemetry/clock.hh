/**
 * @file
 * The telemetry timebase: one monotonic host-time clock.
 *
 * Every wall-clock reading in the repository flows through nowNs() —
 * the trace recorder's span timestamps, the stage-timing counters and
 * the ThroughputMeter all measure against the same monotonic epoch,
 * so per-stage breakdowns, trace spans and commits/sec rows are
 * mutually comparable. Simulated time stays in SimClock; this header
 * is the single place *host* time enters.
 */

#ifndef TURBOFUZZ_TELEMETRY_CLOCK_HH
#define TURBOFUZZ_TELEMETRY_CLOCK_HH

#include <chrono>
#include <cstdint>

namespace turbofuzz::telemetry
{

/** Monotonic host time in nanoseconds (arbitrary epoch). */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * A restartable stopwatch over nowNs(). ThroughputMeter and the
 * fleet orchestrator derive their elapsed-seconds readings from this
 * instead of keeping private chrono bookkeeping.
 */
class WallClock
{
  public:
    WallClock() : startNs(nowNs()) {}

    void restart() { startNs = nowNs(); }

    uint64_t elapsedNs() const { return nowNs() - startNs; }

    double
    elapsedSec() const
    {
        return static_cast<double>(elapsedNs()) * 1e-9;
    }

    /** The clock's epoch (a nowNs() reading). */
    uint64_t startedAtNs() const { return startNs; }

  private:
    uint64_t startNs;
};

} // namespace turbofuzz::telemetry

#endif // TURBOFUZZ_TELEMETRY_CLOCK_HH
