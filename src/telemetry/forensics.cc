#include "telemetry/forensics.hh"

#include <cstdio>

namespace turbofuzz::telemetry
{

const char *
forensicsKindName(uint8_t kind)
{
    switch (static_cast<ForensicsKind>(kind)) {
      case ForensicsKind::SeedSelect:
        return "seed_select";
      case ForensicsKind::SchedulerOp:
        return "scheduler_op";
      case ForensicsKind::CoverageDelta:
        return "coverage_delta";
      case ForensicsKind::Trap:
        return "trap";
      case ForensicsKind::Mismatch:
        return "mismatch";
    }
    return "unknown";
}

ForensicsRing::ForensicsRing(size_t capacity)
    : cap(capacity == 0 ? 1 : capacity), slots(cap)
{
}

void
ForensicsRing::push(const ForensicsEvent &ev)
{
    slots[next] = ev;
    next = (next + 1) % cap;
    if (count < cap)
        ++count;
}

std::vector<ForensicsEvent>
ForensicsRing::chronological() const
{
    std::vector<ForensicsEvent> out;
    out.reserve(count);
    const size_t start = count < cap ? 0 : next;
    for (size_t i = 0; i < count; ++i)
        out.push_back(slots[(start + i) % cap]);
    return out;
}

std::string
ForensicsRing::toJson() const
{
    std::string json = "[";
    bool first = true;
    for (const ForensicsEvent &ev : chronological()) {
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"t_sim\":%.6f,\"iteration\":%llu,\"kind\":\"%s\","
            "\"a\":%llu,\"b\":%llu,\"c\":%llu}",
            first ? "" : ",", ev.simTimeSec,
            static_cast<unsigned long long>(ev.iteration),
            forensicsKindName(ev.kind),
            static_cast<unsigned long long>(ev.a),
            static_cast<unsigned long long>(ev.b),
            static_cast<unsigned long long>(ev.c));
        json += buf;
        first = false;
    }
    json += "]";
    return json;
}

void
ForensicsRing::clear()
{
    count = 0;
    next = 0;
}

void
ForensicsRing::saveState(soc::SnapshotWriter &out) const
{
    out.putU64(cap);
    const auto events = chronological();
    out.putU64(events.size());
    for (const ForensicsEvent &ev : events) {
        out.putF64(ev.simTimeSec);
        out.putU64(ev.iteration);
        out.putU8(ev.kind);
        out.putU64(ev.a);
        out.putU64(ev.b);
        out.putU64(ev.c);
    }
}

bool
ForensicsRing::loadState(soc::SnapshotReader &in, std::string *error)
try {
    const uint64_t saved_cap = in.getU64();
    const uint64_t n = in.getU64();
    // Each event is 8+8+1+8+8+8 = 41 bytes.
    if (saved_cap == 0 || saved_cap > (1u << 20) || n > saved_cap ||
        n > in.remaining() / 41 + 1) {
        if (error)
            *error = "forensics ring: malformed header";
        return false;
    }
    cap = saved_cap;
    slots.assign(cap, ForensicsEvent{});
    count = 0;
    next = 0;
    for (uint64_t i = 0; i < n; ++i) {
        ForensicsEvent ev;
        ev.simTimeSec = in.getF64();
        ev.iteration = in.getU64();
        ev.kind = in.getU8();
        ev.a = in.getU64();
        ev.b = in.getU64();
        ev.c = in.getU64();
        if (ev.kind >
            static_cast<uint8_t>(ForensicsKind::Mismatch)) {
            clear();
            if (error)
                *error = "forensics ring: unknown event kind";
            return false;
        }
        push(ev);
    }
    return true;
} catch (const soc::SnapshotFormatError &e) {
    clear();
    if (error)
        *error = e.what();
    return false;
}

} // namespace turbofuzz::telemetry
