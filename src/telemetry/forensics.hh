/**
 * @file
 * Campaign forensics: a fixed-size ring of recent structured events.
 *
 * The ring answers "what was the campaign doing just before X" —
 * seed selections, scheduler operator mixes, coverage deltas, trap
 * and mismatch markers. The campaign pushes a handful of events per
 * iteration when provenance is on (off: the ring is never touched);
 * the ring keeps the most recent `capacity` of them and drops the
 * oldest. It is dumped as JSON alongside the reproducer when a
 * mismatch fires and on demand at fleet epoch barriers
 * (docs/provenance.md).
 *
 * Events are flat numeric records (kind + three payload words) so
 * push() is a couple of stores — no allocation, no formatting on the
 * hot path. Formatting happens only in toJson().
 */

#ifndef TURBOFUZZ_TELEMETRY_FORENSICS_HH
#define TURBOFUZZ_TELEMETRY_FORENSICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "soc/snapshot.hh"

namespace turbofuzz::telemetry
{

/** What a forensics event records. Stable wire values. */
enum class ForensicsKind : uint8_t {
    SeedSelect = 0,    ///< a=parent seed id, b=op, c=generated instrs
    SchedulerOp = 1,   ///< a=generate, b=delete, c=retain pick counts
    CoverageDelta = 2, ///< a=new points this iteration, b=total
    Trap = 3,          ///< a=trap count this iteration
    Mismatch = 4,      ///< a=executed instrs at divergence
};

const char *forensicsKindName(uint8_t kind);

struct ForensicsEvent
{
    double simTimeSec = 0.0;
    uint64_t iteration = 0;
    uint8_t kind = 0; ///< ForensicsKind value
    uint64_t a = 0;
    uint64_t b = 0;
    uint64_t c = 0;
};

/** Fixed-capacity ring of ForensicsEvents, oldest evicted first. */
class ForensicsRing
{
  public:
    explicit ForensicsRing(size_t capacity = 256);

    void push(const ForensicsEvent &ev);

    size_t capacity() const { return cap; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Events oldest-first (at most capacity() of them). */
    std::vector<ForensicsEvent> chronological() const;

    /** JSON array of event objects, oldest first. */
    std::string toJson() const;

    void clear();

    void saveState(soc::SnapshotWriter &out) const;
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr);

  private:
    size_t cap;
    size_t count = 0; ///< valid events (<= cap)
    size_t next = 0;  ///< slot the next push writes
    std::vector<ForensicsEvent> slots;
};

} // namespace turbofuzz::telemetry

#endif // TURBOFUZZ_TELEMETRY_FORENSICS_HH
