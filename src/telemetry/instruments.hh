/**
 * @file
 * Pre-resolved instrument bundles for the hot paths.
 *
 * Components that emit metrics from inner loops resolve their
 * instruments ONCE (construction-time registry lookups) into one of
 * these plain-pointer bundles; the loops then touch only the
 * pointers. The bundles also serve as the instrument census of each
 * subsystem — docs/telemetry.md's name tables mirror these structs.
 */

#ifndef TURBOFUZZ_TELEMETRY_INSTRUMENTS_HH
#define TURBOFUZZ_TELEMETRY_INSTRUMENTS_HH

#include "telemetry/metrics.hh"

namespace turbofuzz::telemetry
{

/**
 * Per-stage engine instruments (the ExecutionEngine's four pipeline
 * stages). Bound into ExecutionEngine::Hooks only when stage timing
 * is enabled — the default campaign passes nullptr and pays nothing
 * beyond a pointer test per stage.
 */
struct EngineInstruments
{
    Counter *dutNs = nullptr;   ///< engine.batch.dut_ns
    Counter *refNs = nullptr;   ///< engine.batch.ref_ns
    Counter *diffNs = nullptr;  ///< engine.batch.diff_ns
    Counter *sweepNs = nullptr; ///< engine.batch.sweep_ns
    Counter *batches = nullptr; ///< engine.batches
    Counter *rewinds = nullptr; ///< engine.rewinds

    static EngineInstruments
    resolve(MetricRegistry &reg)
    {
        EngineInstruments i;
        i.dutNs = reg.counter("engine.batch.dut_ns");
        i.refNs = reg.counter("engine.batch.ref_ns");
        i.diffNs = reg.counter("engine.batch.diff_ns");
        i.sweepNs = reg.counter("engine.batch.sweep_ns");
        i.batches = reg.counter("engine.batches");
        i.rewinds = reg.counter("engine.rewinds");
        return i;
    }
};

/**
 * Fast-path effectiveness counters (decode cache + superblock
 * dispatch). Unlike EngineInstruments these involve no clock reads —
 * the engine accumulates plain locals during the iteration and adds
 * them here once at iteration end — so campaigns bind them
 * unconditionally.
 */
struct FastPathInstruments
{
    Counter *decodeHit = nullptr;        ///< engine.decode_cache.hit
    Counter *decodeMiss = nullptr;       ///< engine.decode_cache.miss
    Counter *decodeInvalidate = nullptr; ///< engine.decode_cache.invalidate
    Counter *superblockEntered = nullptr;  ///< engine.superblock.entered
    Counter *superblockSideExit = nullptr; ///< engine.superblock.side_exit

    static FastPathInstruments
    resolve(MetricRegistry &reg)
    {
        FastPathInstruments i;
        i.decodeHit = reg.counter("engine.decode_cache.hit");
        i.decodeMiss = reg.counter("engine.decode_cache.miss");
        i.decodeInvalidate =
            reg.counter("engine.decode_cache.invalidate");
        i.superblockEntered = reg.counter("engine.superblock.entered");
        i.superblockSideExit =
            reg.counter("engine.superblock.side_exit");
        return i;
    }
};

/** Corpus scheduling instruments (always on; plain adds). */
struct CorpusInstruments
{
    Counter *selects = nullptr;          ///< corpus.selects
    Counter *admits = nullptr;           ///< corpus.admits
    Counter *rejects = nullptr;          ///< corpus.rejects
    Counter *evictions = nullptr;        ///< corpus.evictions
    Counter *importsAdmitted = nullptr;  ///< corpus.imports.admitted
    Counter *importsDuplicate = nullptr; ///< corpus.imports.duplicate
    Gauge *size = nullptr;               ///< corpus.size

    static CorpusInstruments
    resolve(MetricRegistry &reg)
    {
        CorpusInstruments i;
        i.selects = reg.counter("corpus.selects");
        i.admits = reg.counter("corpus.admits");
        i.rejects = reg.counter("corpus.rejects");
        i.evictions = reg.counter("corpus.evictions");
        i.importsAdmitted = reg.counter("corpus.imports.admitted");
        i.importsDuplicate = reg.counter("corpus.imports.duplicate");
        i.size = reg.gauge("corpus.size");
        return i;
    }
};

/** Triage queue instruments (barrier/post-run paths). */
struct TriageInstruments
{
    Counter *reproducers = nullptr; ///< triage.reproducers
    Counter *replays = nullptr;     ///< triage.replays
    Counter *minimizeNs = nullptr;  ///< triage.minimize_ns
    Gauge *buckets = nullptr;       ///< triage.buckets

    static TriageInstruments
    resolve(MetricRegistry &reg)
    {
        TriageInstruments i;
        i.reproducers = reg.counter("triage.reproducers");
        i.replays = reg.counter("triage.replays");
        i.minimizeNs = reg.counter("triage.minimize_ns");
        i.buckets = reg.gauge("triage.buckets");
        return i;
    }
};

} // namespace turbofuzz::telemetry

#endif // TURBOFUZZ_TELEMETRY_INSTRUMENTS_HH
