#include "telemetry/metrics.hh"

#include <bit>
#include <sstream>

#include "common/logging.hh"
#include "soc/snapshot.hh"

namespace turbofuzz::telemetry
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

// --- Histogram -------------------------------------------------------

unsigned
Histogram::bucketIndex(uint64_t v)
{
    return static_cast<unsigned>(std::bit_width(v));
}

uint64_t
Histogram::bucketLowerBound(unsigned idx)
{
    TF_ASSERT(idx < kBucketCount, "histogram bucket out of range");
    return idx == 0 ? 0 : uint64_t{1} << (idx - 1);
}

void
Histogram::record(uint64_t v)
{
    ++buckets[bucketIndex(v)];
    ++total;
    valueSum += v;
    if (v < minValue)
        minValue = v;
    if (v > maxValue)
        maxValue = v;
}

// --- MetricsSnapshot -------------------------------------------------

const MetricValue *
MetricsSnapshot::find(const std::string &name) const
{
    auto it = values.find(name);
    return it == values.end() ? nullptr : &it->second;
}

uint64_t
MetricsSnapshot::counterValue(const std::string &name,
                             uint64_t fallback) const
{
    const MetricValue *v = find(name);
    return (v && v->kind == MetricKind::Counter) ? v->counter
                                                 : fallback;
}

namespace
{

/** Bucket-wise histogram fold (associative + commutative). */
HistogramValue
mergeHistograms(const HistogramValue &a, const HistogramValue &b)
{
    HistogramValue out;
    out.count = a.count + b.count;
    out.sum = a.sum + b.sum;
    if (a.count == 0) {
        out.min = b.min;
        out.max = b.max;
    } else if (b.count == 0) {
        out.min = a.min;
        out.max = a.max;
    } else {
        out.min = std::min(a.min, b.min);
        out.max = std::max(a.max, b.max);
    }
    // Two-pointer union over the sparse ascending bucket lists.
    size_t i = 0, j = 0;
    while (i < a.buckets.size() || j < b.buckets.size()) {
        if (j >= b.buckets.size() ||
            (i < a.buckets.size() &&
             a.buckets[i].first < b.buckets[j].first)) {
            out.buckets.push_back(a.buckets[i++]);
        } else if (i >= a.buckets.size() ||
                   b.buckets[j].first < a.buckets[i].first) {
            out.buckets.push_back(b.buckets[j++]);
        } else {
            out.buckets.push_back({a.buckets[i].first,
                                   a.buckets[i].second +
                                       b.buckets[j].second});
            ++i;
            ++j;
        }
    }
    return out;
}

} // namespace

bool
MetricsSnapshot::merge(const MetricsSnapshot &other, std::string *error)
{
    // Validate first: merge must not mutate on failure (the same
    // no-partial-state discipline FeedbackModel::merge follows).
    for (const auto &[name, value] : other.values) {
        auto it = values.find(name);
        if (it != values.end() && it->second.kind != value.kind) {
            if (error) {
                *error = "metric '" + name + "' kind mismatch (" +
                         metricKindName(it->second.kind) + " vs " +
                         metricKindName(value.kind) + ")";
            }
            return false;
        }
    }
    for (const auto &[name, value] : other.values) {
        auto it = values.find(name);
        if (it == values.end()) {
            values.emplace(name, value);
            continue;
        }
        MetricValue &mine = it->second;
        switch (value.kind) {
          case MetricKind::Counter:
            mine.counter += value.counter;
            break;
          case MetricKind::Gauge:
            mine.gauge += value.gauge;
            break;
          case MetricKind::Histogram:
            mine.histogram =
                mergeHistograms(mine.histogram, value.histogram);
            break;
        }
    }
    return true;
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream out;
    out << "{";
    bool first = true;
    for (const auto &[name, value] : values) {
        if (!first)
            out << ",";
        first = false;
        out << "\"" << jsonEscape(name) << "\":";
        switch (value.kind) {
          case MetricKind::Counter:
            out << value.counter;
            break;
          case MetricKind::Gauge:
            out << value.gauge;
            break;
          case MetricKind::Histogram: {
            const HistogramValue &h = value.histogram;
            out << "{\"count\":" << h.count << ",\"sum\":" << h.sum
                << ",\"min\":" << h.min << ",\"max\":" << h.max
                << ",\"buckets\":{";
            bool bfirst = true;
            for (const auto &[idx, n] : h.buckets) {
                if (!bfirst)
                    out << ",";
                bfirst = false;
                out << "\"" << Histogram::bucketLowerBound(idx)
                    << "\":" << n;
            }
            out << "}}";
            break;
          }
        }
    }
    out << "}";
    return out.str();
}

// --- MetricRegistry --------------------------------------------------

MetricRegistry::Entry *
MetricRegistry::findOrCreate(const std::string &name, MetricKind kind)
{
    auto it = index.find(name);
    if (it != index.end()) {
        Entry *e = order[it->second].get();
        if (e->kind != kind) {
            panic("metric '%s' re-registered as %s (was %s)",
                  name.c_str(), metricKindName(kind),
                  metricKindName(e->kind));
        }
        return e;
    }
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->kind = kind;
    switch (kind) {
      case MetricKind::Counter:
        entry->counter = std::make_unique<Counter>();
        break;
      case MetricKind::Gauge:
        entry->gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::Histogram:
        entry->histogram = std::make_unique<Histogram>();
        break;
    }
    Entry *raw = entry.get();
    index.emplace(name, order.size());
    order.push_back(std::move(entry));
    return raw;
}

Counter *
MetricRegistry::counter(const std::string &name)
{
    return findOrCreate(name, MetricKind::Counter)->counter.get();
}

Gauge *
MetricRegistry::gauge(const std::string &name)
{
    return findOrCreate(name, MetricKind::Gauge)->gauge.get();
}

Histogram *
MetricRegistry::histogram(const std::string &name)
{
    return findOrCreate(name, MetricKind::Histogram)->histogram.get();
}

MetricsSnapshot
MetricRegistry::snapshot() const
{
    MetricsSnapshot snap;
    for (const auto &entry : order) {
        MetricValue v;
        v.kind = entry->kind;
        switch (entry->kind) {
          case MetricKind::Counter:
            v.counter = entry->counter->value();
            break;
          case MetricKind::Gauge:
            v.gauge = entry->gauge->value();
            break;
          case MetricKind::Histogram: {
            const Histogram &h = *entry->histogram;
            v.histogram.count = h.count();
            v.histogram.sum = h.sum();
            v.histogram.min = h.min();
            v.histogram.max = h.max();
            for (unsigned i = 0; i < Histogram::kBucketCount; ++i) {
                if (h.bucket(i)) {
                    v.histogram.buckets.push_back(
                        {static_cast<uint8_t>(i), h.bucket(i)});
                }
            }
            break;
          }
        }
        snap.values.emplace(entry->name, std::move(v));
    }
    return snap;
}

namespace
{

constexpr uint32_t metricsStateVersion = 1;

} // namespace

void
MetricRegistry::saveState(soc::SnapshotWriter &out) const
{
    out.putU32(metricsStateVersion);
    out.putU32(static_cast<uint32_t>(order.size()));
    for (const auto &entry : order) {
        out.putString(entry->name);
        out.putU8(static_cast<uint8_t>(entry->kind));
        switch (entry->kind) {
          case MetricKind::Counter:
            out.putU64(entry->counter->value());
            break;
          case MetricKind::Gauge:
            out.putU64(
                static_cast<uint64_t>(entry->gauge->value()));
            break;
          case MetricKind::Histogram: {
            const Histogram &h = *entry->histogram;
            out.putU64(h.count());
            out.putU64(h.sum());
            out.putU64(h.minValue);
            out.putU64(h.max());
            uint32_t nonzero = 0;
            for (unsigned i = 0; i < Histogram::kBucketCount; ++i)
                nonzero += h.bucket(i) != 0;
            out.putU32(nonzero);
            for (unsigned i = 0; i < Histogram::kBucketCount; ++i) {
                if (h.bucket(i)) {
                    out.putU8(static_cast<uint8_t>(i));
                    out.putU64(h.bucket(i));
                }
            }
            break;
          }
        }
    }
}

bool
MetricRegistry::loadState(soc::SnapshotReader &in, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = "metrics state: " + msg;
        return false;
    };

    try {
        if (in.getU32() != metricsStateVersion)
            return fail("unsupported version");
        const uint32_t count = in.getU32();
        if (count != order.size()) {
            return fail("instrument census mismatch (" +
                        std::to_string(count) + " stored, " +
                        std::to_string(order.size()) +
                        " registered)");
        }

        // Parse into staging first: a malformed image must not leave
        // half the instruments updated.
        struct Staged
        {
            Entry *entry;
            uint64_t a = 0, b = 0, c = 0, d = 0;
            std::vector<std::pair<uint8_t, uint64_t>> buckets;
        };
        std::vector<Staged> staged;
        staged.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
            const std::string name = in.getString();
            const uint8_t kind_raw = in.getU8();
            auto it = index.find(name);
            if (it == index.end())
                return fail("unknown instrument '" + name + "'");
            Entry *entry = order[it->second].get();
            if (kind_raw != static_cast<uint8_t>(entry->kind)) {
                return fail("instrument '" + name +
                            "' kind mismatch");
            }
            Staged s;
            s.entry = entry;
            switch (entry->kind) {
              case MetricKind::Counter:
              case MetricKind::Gauge:
                s.a = in.getU64();
                break;
              case MetricKind::Histogram: {
                s.a = in.getU64(); // count
                s.b = in.getU64(); // sum
                s.c = in.getU64(); // min (raw, may be UINT64_MAX)
                s.d = in.getU64(); // max
                const uint32_t nonzero = in.getU32();
                if (nonzero > Histogram::kBucketCount)
                    return fail("histogram bucket count exceeds "
                                "range");
                uint64_t bucket_total = 0;
                for (uint32_t j = 0; j < nonzero; ++j) {
                    const uint8_t idx = in.getU8();
                    if (idx >= Histogram::kBucketCount)
                        return fail("histogram bucket index out of "
                                    "range");
                    if (!s.buckets.empty() &&
                        idx <= s.buckets.back().first)
                        return fail("histogram buckets out of "
                                    "order");
                    const uint64_t n = in.getU64();
                    bucket_total += n;
                    s.buckets.push_back({idx, n});
                }
                if (bucket_total != s.a)
                    return fail("histogram bucket totals disagree "
                                "with count");
                break;
              }
            }
            staged.push_back(std::move(s));
        }

        for (const Staged &s : staged) {
            switch (s.entry->kind) {
              case MetricKind::Counter:
                s.entry->counter->count = s.a;
                break;
              case MetricKind::Gauge:
                s.entry->gauge->level =
                    static_cast<int64_t>(s.a);
                break;
              case MetricKind::Histogram: {
                Histogram &h = *s.entry->histogram;
                h = Histogram();
                h.total = s.a;
                h.valueSum = s.b;
                h.minValue = s.c;
                h.maxValue = s.d;
                for (const auto &[idx, n] : s.buckets)
                    h.buckets[idx] = n;
                break;
              }
            }
        }
        return true;
    } catch (const soc::SnapshotFormatError &e) {
        return fail(e.what());
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

} // namespace turbofuzz::telemetry
