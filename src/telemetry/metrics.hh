/**
 * @file
 * Metrics registry: typed, hierarchically named instruments cheap
 * enough for the campaign hot path.
 *
 * Three instrument kinds:
 *
 *  - Counter   — monotone uint64 accumulator (events, nanoseconds,
 *                commits). add() is a plain in-place add: no locks,
 *                no atomics — each registry belongs to exactly one
 *                campaign/shard thread, and cross-thread readers only
 *                ever see snapshot() results taken at epoch barriers
 *                when the owning worker is parked.
 *  - Gauge     — last-set int64 level (corpus size, bucket count).
 *  - Histogram — log2-bucketed value distribution (per-iteration
 *                commit counts, span durations): bucket i holds
 *                values v with bit_width(v) == i, i.e. bucket 0 is
 *                {0} and bucket i>=1 covers [2^(i-1), 2^i - 1].
 *
 * Instruments are registered by name once (construction-time map
 * lookup) and used through stable plain pointers thereafter — the hot
 * path never touches a map or a string. Names are hierarchical
 * dot-paths ("engine.batch.dut_ns", "corpus.selects"); see
 * docs/telemetry.md for the naming conventions.
 *
 * Aggregation follows the FeedbackModel::merge discipline: snapshots
 * merge associatively, mismatched instrument kinds are rejected with
 * a typed error and no partial mutation, and registry state
 * checkpoints as a versioned, census-validated section so resumed
 * runs report continuous series.
 */

#ifndef TURBOFUZZ_TELEMETRY_METRICS_HH
#define TURBOFUZZ_TELEMETRY_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace turbofuzz::soc
{
class SnapshotWriter;
class SnapshotReader;
} // namespace turbofuzz::soc

namespace turbofuzz::telemetry
{

/** Instrument kinds (wire-stable values — used in checkpoints). */
enum class MetricKind : uint8_t
{
    Counter = 0,
    Gauge = 1,
    Histogram = 2,
};

const char *metricKindName(MetricKind kind);

/** Monotone event/quantity accumulator. */
class Counter
{
  public:
    void add(uint64_t n = 1) { count += n; }
    uint64_t value() const { return count; }

  private:
    friend class MetricRegistry;
    uint64_t count = 0;
};

/** Last-set level. */
class Gauge
{
  public:
    void set(int64_t v) { level = v; }
    void add(int64_t delta) { level += delta; }
    int64_t value() const { return level; }

  private:
    friend class MetricRegistry;
    int64_t level = 0;
};

/** Log2-bucketed distribution of uint64 samples. */
class Histogram
{
  public:
    /** Bucket 0 holds {0}; bucket i>=1 holds [2^(i-1), 2^i - 1]. */
    static constexpr unsigned kBucketCount = 65;

    void record(uint64_t v);

    /** The bucket a value lands in (== std::bit_width(v)). */
    static unsigned bucketIndex(uint64_t v);

    /** Smallest value of bucket @p idx (0, then powers of two). */
    static uint64_t bucketLowerBound(unsigned idx);

    uint64_t count() const { return total; }
    uint64_t sum() const { return valueSum; }
    uint64_t min() const { return total ? minValue : 0; }
    uint64_t max() const { return maxValue; }
    uint64_t bucket(unsigned idx) const { return buckets[idx]; }

    double
    mean() const
    {
        return total ? static_cast<double>(valueSum) /
                           static_cast<double>(total)
                     : 0.0;
    }

  private:
    friend class MetricRegistry;
    uint64_t buckets[kBucketCount] = {};
    uint64_t total = 0;
    uint64_t valueSum = 0;
    uint64_t minValue = UINT64_MAX;
    uint64_t maxValue = 0;
};

/** Histogram state in a snapshot (sparse: nonzero buckets only). */
struct HistogramValue
{
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    /** (bucket index, count) pairs, ascending index, counts > 0. */
    std::vector<std::pair<uint8_t, uint64_t>> buckets;

    bool operator==(const HistogramValue &rhs) const = default;
};

/** One instrument's state in a snapshot. */
struct MetricValue
{
    MetricKind kind = MetricKind::Counter;
    uint64_t counter = 0;
    int64_t gauge = 0;
    HistogramValue histogram;

    bool operator==(const MetricValue &rhs) const = default;
};

/**
 * A point-in-time copy of a registry's instruments, detached from
 * the owning thread. Snapshots are what reporters consume and what
 * the fleet orchestrator merges into its fleet-wide view.
 */
class MetricsSnapshot
{
  public:
    /** Name -> value, ordered by name (deterministic emission). */
    const std::map<std::string, MetricValue> &entries() const
    {
        return values;
    }

    bool empty() const { return values.empty(); }
    size_t size() const { return values.size(); }

    /** Lookup; nullptr when absent. */
    const MetricValue *find(const std::string &name) const;

    /** Counter value, or @p fallback when absent/not a counter. */
    uint64_t counterValue(const std::string &name,
                          uint64_t fallback = 0) const;

    /**
     * Fold @p other into this snapshot: counters and gauges add
     * (fleet-wide totals), histograms merge bucket-wise. Associative
     * and commutative. A name present in both with different kinds
     * is a typed error: @p error is set and *this is left unchanged.
     */
    bool merge(const MetricsSnapshot &other,
               std::string *error = nullptr);

    /**
     * Render as a JSON object: counters and gauges as numbers,
     * histograms as {"count","sum","min","max","buckets":{lower
     * bound -> count}}. Keys in name order.
     */
    std::string toJson() const;

  private:
    friend class MetricRegistry;
    std::map<std::string, MetricValue> values;
};

/**
 * The per-thread instrument registry. One per campaign/shard (plus
 * one fleet-local registry in the orchestrator); never shared across
 * threads — cross-thread aggregation goes through snapshot() +
 * MetricsSnapshot::merge() at epoch barriers.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /**
     * Find-or-register an instrument. Pointers stay valid for the
     * registry's lifetime. Re-requesting a name with a different
     * kind is a programming error (panic) — names are global
     * contracts (docs/telemetry.md).
     */
    Counter *counter(const std::string &name);
    Gauge *gauge(const std::string &name);
    Histogram *histogram(const std::string &name);

    size_t instrumentCount() const { return order.size(); }

    /** Copy every instrument's current state. */
    MetricsSnapshot snapshot() const;

    /**
     * Checkpoint support: versioned serialization of every
     * instrument (name, kind, state).
     */
    void saveState(soc::SnapshotWriter &out) const;

    /**
     * Restore a saveState() image. Census-validated: the stored
     * instrument set (names and kinds) must exactly match the
     * registered set — a checkpoint from a differently instrumented
     * build is rejected with a typed error, and on any failure the
     * registry keeps its pre-call values.
     * @return false with @p error set on malformed input.
     */
    bool loadState(soc::SnapshotReader &in,
                   std::string *error = nullptr);

  private:
    struct Entry
    {
        std::string name;
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry *findOrCreate(const std::string &name, MetricKind kind);

    std::map<std::string, size_t> index;
    std::vector<std::unique_ptr<Entry>> order;
};

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace turbofuzz::telemetry

#endif // TURBOFUZZ_TELEMETRY_METRICS_HH
