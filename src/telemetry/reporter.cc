#include "telemetry/reporter.hh"

namespace turbofuzz::telemetry
{

bool
JsonlReporter::open(const std::string &path, std::string *error)
{
    close();
    file = std::fopen(path.c_str(), "w");
    if (!file) {
        if (error)
            *error = "cannot open stats file '" + path + "'";
        return false;
    }
    clock.restart();
    return true;
}

std::string
JsonlReporter::formatLine(double sim_time_sec, uint64_t epoch,
                          const MetricsSnapshot &snapshot,
                          const std::string &provenance_json)
{
    char head[160];
    std::snprintf(head, sizeof(head),
                  "{\"schema\":\"turbofuzz.metrics.v1\","
                  "\"t_sim\":%.6f,\"t_host\":%.6f,\"epoch\":%llu,"
                  "\"metrics\":",
                  sim_time_sec, clock.elapsedSec(),
                  static_cast<unsigned long long>(epoch));
    std::string line = head;
    line += snapshot.toJson();
    if (!provenance_json.empty()) {
        line += ",\"provenance\":";
        line += provenance_json;
    }
    line += "}\n";
    return line;
}

void
JsonlReporter::writeLine(const std::string &line)
{
    if (!file)
        return;
    std::fwrite(line.data(), 1, line.size(), file);
    std::fflush(file);
}

void
JsonlReporter::emit(double sim_time_sec, uint64_t epoch,
                    const MetricsSnapshot &snapshot,
                    const std::string &provenance_json)
{
    if (!file)
        return;
    writeLine(formatLine(sim_time_sec, epoch, snapshot,
                         provenance_json));
}

void
JsonlReporter::close()
{
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

} // namespace turbofuzz::telemetry
