#include "telemetry/reporter.hh"

namespace turbofuzz::telemetry
{

bool
JsonlReporter::open(const std::string &path, std::string *error)
{
    close();
    file = std::fopen(path.c_str(), "w");
    if (!file) {
        if (error)
            *error = "cannot open stats file '" + path + "'";
        return false;
    }
    clock.restart();
    return true;
}

void
JsonlReporter::emit(double sim_time_sec, uint64_t epoch,
                    const MetricsSnapshot &snapshot,
                    const std::string &provenance_json)
{
    if (!file)
        return;
    std::fprintf(file,
                 "{\"schema\":\"turbofuzz.metrics.v1\","
                 "\"t_sim\":%.6f,\"t_host\":%.6f,\"epoch\":%llu,"
                 "\"metrics\":%s",
                 sim_time_sec, clock.elapsedSec(),
                 static_cast<unsigned long long>(epoch),
                 snapshot.toJson().c_str());
    if (!provenance_json.empty())
        std::fprintf(file, ",\"provenance\":%s",
                     provenance_json.c_str());
    std::fprintf(file, "}\n");
    std::fflush(file);
}

void
JsonlReporter::close()
{
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

} // namespace turbofuzz::telemetry
