/**
 * @file
 * Periodic JSONL metrics emission.
 *
 * One line per emission, schema "turbofuzz.metrics.v1":
 *
 *   {"schema":"turbofuzz.metrics.v1","t_sim":12.0,"t_host":3.456,
 *    "epoch":4,"metrics":{"campaign.commits":123456, ...}}
 *
 * t_sim is simulated seconds (the fleet's epoch deadline), t_host is
 * host seconds since the reporter was opened. Metric values follow
 * MetricsSnapshot::toJson(): counters/gauges as numbers, histograms
 * as {"count","sum","min","max","buckets"} objects. The schema is
 * documented in docs/telemetry.md and validated by
 * tools/trace_summary.py --jsonl in CI.
 */

#ifndef TURBOFUZZ_TELEMETRY_REPORTER_HH
#define TURBOFUZZ_TELEMETRY_REPORTER_HH

#include <cstdio>
#include <string>

#include "telemetry/clock.hh"
#include "telemetry/metrics.hh"

namespace turbofuzz::telemetry
{

/** Appends one JSON object per emit() to a stats file. */
class JsonlReporter
{
  public:
    JsonlReporter() = default;
    ~JsonlReporter() { close(); }

    JsonlReporter(const JsonlReporter &) = delete;
    JsonlReporter &operator=(const JsonlReporter &) = delete;

    /** Open (truncate) @p path and start the host clock.
     *  @return false with @p error set when the file cannot be
     *  created. */
    bool open(const std::string &path, std::string *error = nullptr);

    bool isOpen() const { return file != nullptr; }

    /**
     * Emit one line; flushed immediately so a killed run keeps
     * every completed emission. @p provenance_json, when non-empty,
     * is a pre-rendered JSON object appended as the optional
     * "provenance" member (docs/provenance.md) — lines without it
     * stay byte-identical to pre-provenance builds.
     */
    void emit(double sim_time_sec, uint64_t epoch,
              const MetricsSnapshot &snapshot,
              const std::string &provenance_json = std::string());

    /**
     * Render the line emit() would write, without writing it. Reads
     * the reporter's host clock, so call it on the owning thread;
     * the returned string is self-contained and may be handed to
     * writeLine() from a background writer (the fleet's overlapped
     * barrier I/O path).
     */
    std::string
    formatLine(double sim_time_sec, uint64_t epoch,
               const MetricsSnapshot &snapshot,
               const std::string &provenance_json = std::string());

    /** Append one pre-rendered line and flush. Thread-safe against
     *  nothing — callers serialize (the fleet's single writer). */
    void writeLine(const std::string &line);

    void close();

  private:
    std::FILE *file = nullptr;
    WallClock clock;
};

} // namespace turbofuzz::telemetry

#endif // TURBOFUZZ_TELEMETRY_REPORTER_HH
