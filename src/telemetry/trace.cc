#include "telemetry/trace.hh"

#include <atomic>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "telemetry/metrics.hh"

namespace turbofuzz::telemetry
{

namespace
{

/** Small dense thread ids (trace rows), assigned on first span. */
uint32_t
currentTid()
{
    static std::atomic<uint32_t> next{1};
    thread_local uint32_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

} // namespace

TraceRecorder::TraceRecorder(uint64_t sample_every)
    : sampleEvery(sample_every ? sample_every : 1), baseNs(nowNs())
{
}

void
TraceRecorder::recordSpan(const char *name, uint64_t begin_ns,
                          uint64_t end_ns)
{
    const Event e{name, begin_ns, end_ns - begin_ns, currentTid(),
                  false};
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(e);
}

void
TraceRecorder::instant(const char *name)
{
    const Event e{name, nowNs(), 0, currentTid(), true};
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(e);
}

size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return events.size();
}

std::string
TraceRecorder::toJson() const
{
    std::vector<Event> copy;
    {
        std::lock_guard<std::mutex> lock(mu);
        copy = events;
    }

    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    char buf[256];
    for (const Event &e : copy) {
        if (!first)
            out << ",";
        first = false;
        // Timestamps/durations in microseconds (trace-event spec),
        // relative to recorder construction, at ns resolution.
        const double ts =
            static_cast<double>(e.beginNs - baseNs) / 1000.0;
        if (e.isInstant) {
            std::snprintf(buf, sizeof(buf),
                          "{\"name\":\"%s\",\"cat\":\"turbofuzz\","
                          "\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,"
                          "\"pid\":1,\"tid\":%u}",
                          e.name, ts, e.tid);
        } else {
            const double dur =
                static_cast<double>(e.durNs) / 1000.0;
            std::snprintf(buf, sizeof(buf),
                          "{\"name\":\"%s\",\"cat\":\"turbofuzz\","
                          "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                          "\"pid\":1,\"tid\":%u}",
                          e.name, ts, dur, e.tid);
        }
        out << buf;
    }
    out << "]}";
    return out.str();
}

bool
TraceRecorder::writeFile(const std::string &path,
                         std::string *error) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        if (error)
            *error = "cannot open trace file '" + path + "'";
        return false;
    }
    const std::string doc = toJson();
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    if (!ok && error)
        *error = "short write to trace file '" + path + "'";
    return ok;
}

ScopedStage::~ScopedStage()
{
    if (!rec && !counter)
        return;
    const uint64_t end_ns = nowNs();
    if (counter)
        counter->add(end_ns - beginNs);
    if (rec)
        rec->recordSpan(spanName, beginNs, end_ns);
}

} // namespace turbofuzz::telemetry
