/**
 * @file
 * Stage-level tracing: Chrome trace-event JSON spans.
 *
 * A TraceRecorder accumulates "complete" (ph:"X") events — one per
 * scoped span — and writes a chrome://tracing / Perfetto-loadable
 * JSON file at the end of the run. Spans wrap the engine's four
 * pipeline stages (DUT batch, REF mirror, trace diff, fused sweep),
 * stimulus generation, triage minimization and fleet epoch barriers;
 * docs/telemetry.md lists the span vocabulary and how to open a
 * capture.
 *
 * Cost model, because spans sit on the campaign hot path:
 *
 *  - compile-time: building with -DTURBOFUZZ_TRACING=0 compiles every
 *    TraceSpan/ScopedStage to nothing;
 *  - runtime, tracing off (the default — no recorder wired up): one
 *    null-pointer test per span, no clock reads;
 *  - runtime, tracing on: the sampling knob (record every Nth
 *    iteration's spans) bounds event volume and overhead, and only
 *    sampled iterations pay the two clock reads + mutex push per
 *    span. The mutex exists because fleet shards trace from worker
 *    threads into one shared recorder.
 */

#ifndef TURBOFUZZ_TELEMETRY_TRACE_HH
#define TURBOFUZZ_TELEMETRY_TRACE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/clock.hh"

/** Compile-time master switch; default on (runtime-gated to ~zero). */
#ifndef TURBOFUZZ_TRACING
#define TURBOFUZZ_TRACING 1
#endif

namespace turbofuzz::telemetry
{

class Counter;

/** Accumulates trace events; thread-safe for concurrent spans. */
class TraceRecorder
{
  public:
    /**
     * @param sample_every Record spans of every Nth iteration only
     *        (1 = every iteration). Sampling is decided per
     *        iteration via sampleIteration(), so a sampled
     *        iteration's spans form complete, comparable stacks.
     */
    explicit TraceRecorder(uint64_t sample_every = 1);

    /** Whether iteration @p iteration_index should be traced. */
    bool
    sampleIteration(uint64_t iteration_index) const
    {
        return iteration_index % sampleEvery == 0;
    }

    uint64_t sampleEveryN() const { return sampleEvery; }

    /** Append one complete event (called by span destructors). */
    void recordSpan(const char *name, uint64_t begin_ns,
                    uint64_t end_ns);

    /** Append a zero-duration instant event (epoch markers). */
    void instant(const char *name);

    size_t eventCount() const;

    /**
     * Render the Chrome trace-event JSON document
     * ({"traceEvents":[...]}; timestamps in microseconds relative to
     * recorder construction).
     */
    std::string toJson() const;

    /** Write toJson() to @p path.
     *  @return false with @p error set on I/O failure. */
    bool writeFile(const std::string &path,
                   std::string *error = nullptr) const;

  private:
    struct Event
    {
        const char *name; ///< string literal (span vocabulary)
        uint64_t beginNs;
        uint64_t durNs;
        uint32_t tid;
        bool isInstant;
    };

    uint64_t sampleEvery;
    uint64_t baseNs;
    mutable std::mutex mu;
    std::vector<Event> events;
};

/**
 * RAII span: emits one "X" event for its scope when @p recorder is
 * non-null. Pass nullptr on unsampled iterations — the span then
 * costs a pointer test.
 */
class TraceSpan
{
  public:
#if TURBOFUZZ_TRACING
    TraceSpan(TraceRecorder *recorder, const char *name)
        : rec(recorder), spanName(name),
          beginNs(recorder ? nowNs() : 0)
    {}

    ~TraceSpan()
    {
        if (rec)
            rec->recordSpan(spanName, beginNs, nowNs());
    }

  private:
    TraceRecorder *rec;
    const char *spanName;
    uint64_t beginNs;
#else
    TraceSpan(TraceRecorder *, const char *) {}
#endif

  public:
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;
};

/**
 * RAII stage scope: one clock-read pair feeding both a duration
 * counter (when @p ns_counter is non-null) and a trace span (when
 * @p recorder is non-null). The engine wraps its four pipeline
 * stages in these; with neither sink bound the scope is two pointer
 * tests.
 */
class ScopedStage
{
  public:
    ScopedStage(TraceRecorder *recorder, Counter *ns_counter,
                const char *name)
#if TURBOFUZZ_TRACING
        : rec(recorder),
#else
        : rec(nullptr),
#endif
          counter(ns_counter), spanName(name),
          beginNs((rec || counter) ? nowNs() : 0)
    {}

    ~ScopedStage();

    ScopedStage(const ScopedStage &) = delete;
    ScopedStage &operator=(const ScopedStage &) = delete;

  private:
    TraceRecorder *rec;
    Counter *counter;
    const char *spanName;
    uint64_t beginNs;
};

} // namespace turbofuzz::telemetry

#endif // TURBOFUZZ_TELEMETRY_TRACE_HH
