#include "triage/minimizer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fuzzer/block_builder.hh"
#include "isa/encoding.hh"

namespace turbofuzz::triage
{

namespace
{

using fuzzer::SeedBlock;

/**
 * Deterministically re-patch the control-flow immediates of a freshly
 * laid-out block list. Target *selection* is the only difference from
 * the fuzzer's fix-up pass (whose encoding arms are shared via
 * fuzzer::patchBlockTarget): removed targets fall through to the next
 * block; surviving targets — including degenerate self-loops the
 * generator produced — are preserved.
 */
void
patchControlFlow(std::vector<SeedBlock> &blocks,
                 const std::vector<uint64_t> &block_addrs)
{
    const auto nblocks = static_cast<int64_t>(blocks.size());
    for (int64_t i = 0; i < nblocks; ++i) {
        SeedBlock &b = blocks[i];
        b.position = static_cast<uint32_t>(i);
        if (!b.isControlFlow)
            continue;
        if (!isa::decode(b.insns[b.primeIdx]).valid)
            continue; // a pruned operand broke decode; replay decides

        int64_t target = b.targetBlock;
        if (target < 0 || target >= nblocks)
            target = (i + 1 < nblocks) ? i + 1 : i;
        fuzzer::patchBlockTarget(b, i, target, block_addrs);
    }
}

/** Subset @p base's blocks to @p keep (sorted original indices),
 *  remapping branch targets onto surviving blocks. */
std::vector<SeedBlock>
subsetBlocks(const std::vector<SeedBlock> &original,
             const std::vector<uint32_t> &keep)
{
    std::vector<int32_t> remap(original.size(), -1);
    for (size_t n = 0; n < keep.size(); ++n)
        remap[keep[n]] = static_cast<int32_t>(n);

    std::vector<SeedBlock> blocks;
    blocks.reserve(keep.size());
    for (uint32_t idx : keep) {
        SeedBlock b = original[idx];
        if (b.isControlFlow && b.targetBlock >= 0 &&
            b.targetBlock <
                static_cast<int32_t>(original.size())) {
            // Prefer the surviving image of the target; if it was
            // removed, the nearest surviving block at or after it.
            int32_t t = remap[b.targetBlock];
            for (size_t j = b.targetBlock;
                 t < 0 && j < original.size(); ++j)
                t = remap[j];
            b.targetBlock = t; // -1 falls through in the re-patch
        }
        blocks.push_back(std::move(b));
    }
    return blocks;
}

} // namespace

Reproducer
Minimizer::rebuild(const Reproducer &base,
                   std::vector<SeedBlock> blocks)
{
    TF_ASSERT(!blocks.empty(), "cannot rebuild an empty reproducer");
    Reproducer r = base;

    std::vector<uint64_t> block_addrs;
    block_addrs.reserve(blocks.size());
    uint64_t addr = r.iteration.firstBlockPc;
    uint32_t instrs = 0;
    for (const SeedBlock &b : blocks) {
        block_addrs.push_back(addr);
        addr += 4ull * b.instrCount();
        instrs += b.instrCount();
    }
    patchControlFlow(blocks, block_addrs);

    r.iteration.blocks = std::move(blocks);
    r.iteration.generatedInstrs = instrs;
    r.iteration.codeBoundary = addr;
    if (r.iteration.fuzzRegionEnd)
        r.iteration.fuzzRegionEnd = addr;
    return r;
}

MinimizeResult
Minimizer::minimize(const Reproducer &r) const
{
    MinimizeResult result;
    result.minimized = r;
    result.originalInstrs = r.iteration.generatedInstrs;
    result.originalBlocks =
        static_cast<uint32_t>(r.iteration.blocks.size());
    result.minimizedInstrs = result.originalInstrs;
    result.minimizedBlocks = result.originalBlocks;

    // Warm replay context: ddmin replays the same stimulus family
    // ~130 times; the context captures the invariant state (base
    // memory image, post-prefix snapshot) once and restores it per
    // replay instead of rebuilding and re-executing it. Bit-identical
    // outcomes to ReplayHarness::replay (tests/triage/).
    const ReplayHarness::Context ctx(r);

    // 0. The original must reproduce before reduction means anything.
    ++result.replays;
    if (!ReplayHarness::confirms(r, ctx.replay(r)))
        return result;
    result.confirmed = true;

    const BugSignature target = canonicalize(r);
    auto budgetLeft = [&] { return result.replays < opts.maxReplays; };

    // A candidate survives when its replay still shows the same bug.
    auto stillFails = [&](const Reproducer &cand) {
        ++result.replays;
        const ReplayResult out = ctx.replay(cand);
        return out.mismatched &&
               canonicalize(out.mismatch, &cand) == target;
    };

    // 1. Block-level ddmin.
    std::vector<uint32_t> keep(r.iteration.blocks.size());
    for (uint32_t i = 0; i < keep.size(); ++i)
        keep[i] = i;

    size_t granularity = 2;
    while (keep.size() >= 2 && budgetLeft()) {
        const size_t chunk =
            std::max<size_t>(1, keep.size() / granularity);
        bool reduced = false;
        for (size_t start = 0;
             start < keep.size() && budgetLeft(); start += chunk) {
            const size_t end = std::min(start + chunk, keep.size());
            if (end - start == keep.size())
                continue; // never test the empty stimulus
            std::vector<uint32_t> cand;
            cand.reserve(keep.size() - (end - start));
            cand.insert(cand.end(), keep.begin(),
                        keep.begin() + start);
            cand.insert(cand.end(), keep.begin() + end, keep.end());
            Reproducer cr = rebuild(
                r, subsetBlocks(r.iteration.blocks, cand));
            if (stillFails(cr)) {
                keep = std::move(cand);
                reduced = true;
                break; // chunk sizes changed; restart the sweep
            }
        }
        if (!reduced) {
            if (granularity >= keep.size())
                break; // minimal at block granularity
            granularity = std::min(keep.size(), granularity * 2);
        }
    }
    Reproducer best = rebuild(r, subsetBlocks(r.iteration.blocks,
                                              keep));

    // 2. Affiliated-instruction pruning inside surviving blocks.
    if (opts.pruneAffiliated) {
        for (size_t bi = 0;
             bi < best.iteration.blocks.size() && budgetLeft();
             ++bi) {
            for (size_t j = best.iteration.blocks[bi].insns.size();
                 j-- > 0 && budgetLeft();) {
                const SeedBlock &blk = best.iteration.blocks[bi];
                if (j == blk.primeIdx || blk.insns.size() <= 1)
                    continue;
                std::vector<SeedBlock> cand = best.iteration.blocks;
                cand[bi].insns.erase(cand[bi].insns.begin() +
                                     static_cast<long>(j));
                if (j < cand[bi].primeIdx)
                    --cand[bi].primeIdx;
                Reproducer cr = rebuild(best, std::move(cand));
                if (stillFails(cr))
                    best = std::move(cr);
            }
        }
    }

    // 3. Finalize: stamp the reduced stimulus with its own replay
    //    outcome so the minimized record self-confirms.
    const ReplayResult out = ctx.replay(best);
    ++result.replays;
    if (!out.mismatched ||
        canonicalize(out.mismatch, &best) != target) {
        // Re-layout was not behavior-preserving for this stimulus
        // (possible only when ddmin accepted nothing, so `best` was
        // never gated by stillFails): ship the unreduced original
        // rather than a reproducer that no longer fires.
        return result;
    }
    best.mismatch = out.mismatch;
    best.commitIndex = out.commitIndex;

    result.minimized = std::move(best);
    result.minimizedInstrs =
        result.minimized.iteration.generatedInstrs;
    result.minimizedBlocks = static_cast<uint32_t>(
        result.minimized.iteration.blocks.size());
    return result;
}

} // namespace turbofuzz::triage
