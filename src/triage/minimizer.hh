/**
 * @file
 * Test-case minimization: delta debugging against the replay harness.
 *
 * A captured iteration carries ~4,000 instructions; typically a
 * handful matter. The minimizer shrinks the reproducer in two passes:
 *
 *  1. Block-level ddmin: remove chunks of instruction blocks with
 *     exponentially refined granularity, keeping a candidate whenever
 *     its replay still produces the *same bug signature*.
 *  2. Affiliated-instruction pruning: within each surviving block,
 *     drop non-prime (affiliated) instructions one at a time.
 *
 * Removing blocks shifts every following block's address, so each
 * candidate is re-laid-out and its control-flow immediates are
 * re-patched deterministically (branch targets remapped to the
 * nearest surviving block; no RNG anywhere). The reduced reproducer
 * is finalized with its own replay outcome, so it self-confirms: a
 * later ReplayHarness::verifyDeterministic() on the minimized record
 * passes on any host.
 */

#ifndef TURBOFUZZ_TRIAGE_MINIMIZER_HH
#define TURBOFUZZ_TRIAGE_MINIMIZER_HH

#include "triage/replay.hh"
#include "triage/signature.hh"

namespace turbofuzz::triage
{

struct MinimizeOptions
{
    /** Replay budget: the minimizer stops refining when spent. */
    uint32_t maxReplays = 256;

    /** Run the per-block affiliated-instruction pruning pass. */
    bool pruneAffiliated = true;
};

struct MinimizeResult
{
    /** The reduced, self-confirming reproducer. */
    Reproducer minimized;

    /** Whether the *original* reproducer replayed to its recorded
     *  mismatch before any reduction was attempted. When false the
     *  input is returned unreduced. */
    bool confirmed = false;

    uint32_t originalInstrs = 0;
    uint32_t minimizedInstrs = 0;
    uint32_t originalBlocks = 0;
    uint32_t minimizedBlocks = 0;
    uint32_t replays = 0; ///< replays spent (minimization cost)
};

class Minimizer
{
  public:
    explicit Minimizer(MinimizeOptions options = {})
        : opts(options)
    {}

    /** Delta-debug @p r down to a minimal mismatching stimulus. */
    MinimizeResult minimize(const Reproducer &r) const;

    /**
     * Rebuild a reproducer around a new block list: re-lay blocks
     * from firstBlockPc, deterministically re-patch control flow
     * (each block's targetBlock must index into @p blocks or be -1),
     * and recompute the iteration metadata. The mismatch record is
     * left untouched — callers replay the result to refresh it.
     */
    static Reproducer rebuild(const Reproducer &base,
                              std::vector<fuzzer::SeedBlock> blocks);

  private:
    MinimizeOptions opts;
};

} // namespace turbofuzz::triage

#endif // TURBOFUZZ_TRIAGE_MINIMIZER_HH
