#include "triage/replay.hh"

#include "common/logging.hh"
#include "core/iss.hh"
#include "engine/execution_engine.hh"
#include "soc/memory.hh"

namespace turbofuzz::triage
{

ReplayResult
ReplayHarness::replay(const Reproducer &r)
{
    const fuzzer::MemoryLayout &lay = r.env.layout;

    // 1. Rebuild the iteration's memory image bit-exactly.
    soc::Memory dut_mem;
    fuzzer::TurboFuzzer::materializeIteration(r.env, r.iteration,
                                              dut_mem);
    soc::Memory ref_mem = dut_mem;

    // 2. Fresh DUT (with the campaign's bug set) and golden REF.
    core::Iss::Options dut_opts;
    dut_opts.bugs = r.bugs();
    dut_opts.rv64aEnabled = r.rv64aEnabled;
    dut_opts.resetPc = lay.instrBase;
    core::Iss dut(&dut_mem, dut_opts);

    core::Iss::Options ref_opts;
    ref_opts.rv64aEnabled = r.rv64aEnabled;
    ref_opts.resetPc = lay.instrBase;
    core::Iss ref(&ref_mem, ref_opts);

    for (core::Iss *c : {&dut, &ref}) {
        c->addAccessRange(lay.instrBase, lay.instrSize);
        c->addAccessRange(lay.dataBase, lay.dataSize);
        c->addAccessRange(lay.handlerBase, 4096);
    }
    dut.reset(r.iteration.entryPc);
    ref.reset(r.iteration.entryPc);

    // 3. The campaign's abort conditions on the SAME batched engine
    //    campaign execution uses (no coverage/RTL hooks: they never
    //    feed back into architectural execution), against a
    //    zero-based checker. Replay results are batch-size-invariant
    //    by the engine's equivalence contract; one fixed size keeps
    //    replays bit-identical across runs.
    checker::DiffChecker checker(r.checkMode);
    engine::ExecutionEngine eng(&dut, &ref, &checker,
                                replayBatchSize);

    engine::IterationPolicy policy;
    policy.codeBoundary = r.iteration.codeBoundary;
    policy.handlerBase = lay.handlerBase;
    policy.resumeTraps = r.resumeTraps;
    policy.stepCap =
        static_cast<uint64_t>(
            r.stepCapFactor *
            static_cast<double>(r.iteration.generatedInstrs)) +
        r.stepCapSlack;
    policy.trapStormLimit = r.trapStormLimit;

    const engine::IterationOutcome out =
        eng.runIteration(policy, {});

    ReplayResult result;
    result.executed = out.executedTotal;
    result.traps = out.traps;
    if (out.mismatch) {
        result.mismatched = true;
        result.mismatch = *out.mismatch;
        result.commitIndex = out.mismatchCommitIndex;
    }
    return result;
}

bool
ReplayHarness::confirms(const Reproducer &r, const ReplayResult &out)
{
    return out.mismatched && out.mismatch.kind == r.mismatch.kind &&
           out.mismatch.pc == r.mismatch.pc &&
           out.mismatch.insn == r.mismatch.insn &&
           out.mismatch.dutValue == r.mismatch.dutValue &&
           out.mismatch.refValue == r.mismatch.refValue &&
           out.commitIndex == r.commitIndex;
}

bool
ReplayHarness::verifyDeterministic(const Reproducer &r)
{
    const ReplayResult a = replay(r);
    const ReplayResult b = replay(r);
    const bool identical =
        a.mismatched == b.mismatched && a.executed == b.executed &&
        a.traps == b.traps && a.commitIndex == b.commitIndex &&
        a.mismatch.kind == b.mismatch.kind &&
        a.mismatch.pc == b.mismatch.pc &&
        a.mismatch.insn == b.mismatch.insn &&
        a.mismatch.dutValue == b.mismatch.dutValue &&
        a.mismatch.refValue == b.mismatch.refValue;
    return identical && confirms(r, a);
}

} // namespace turbofuzz::triage
