#include "triage/replay.hh"

#include "common/logging.hh"
#include "core/iss.hh"
#include "engine/execution_engine.hh"
#include "fuzzer/exception_templates.hh"
#include "soc/memory.hh"

namespace turbofuzz::triage
{

namespace
{

core::Iss::Options
dutOptionsFor(const Reproducer &r)
{
    core::Iss::Options o;
    o.bugs = r.bugs();
    o.rv64aEnabled = r.rv64aEnabled;
    o.resetPc = r.env.layout.instrBase;
    // Replay harts are constructed per replay and execute each pc
    // roughly once, so the decode cache never amortizes its fills —
    // measured, it costs more than the decodes it saves. Execution
    // is bit-identical either way (the cache is a pure speedup), so
    // replays still confirm campaign-found mismatches exactly.
    o.decodeCache = false;
    return o;
}

core::Iss::Options
refOptionsFor(const Reproducer &r)
{
    core::Iss::Options o;
    o.rv64aEnabled = r.rv64aEnabled;
    o.resetPc = r.env.layout.instrBase;
    o.decodeCache = false; // see dutOptionsFor
    return o;
}

/**
 * Steps 2..4 of a replay, shared by the cold path and the warm
 * context: fresh DUT/REF pair over the prepared memories, the
 * campaign's abort policy on the SAME batched engine campaign
 * execution uses (no coverage/RTL hooks: they never feed back into
 * architectural execution), against a zero-based checker. Replay
 * results are batch-size-invariant by the engine's equivalence
 * contract; one fixed size keeps replays bit-identical across runs.
 */
ReplayResult
runReplay(const Reproducer &r, soc::Memory &dut_mem,
          soc::Memory &ref_mem, const engine::WarmStart *warm)
{
    const fuzzer::MemoryLayout &lay = r.env.layout;

    core::Iss dut(&dut_mem, dutOptionsFor(r));
    core::Iss ref(&ref_mem, refOptionsFor(r));
    for (core::Iss *c : {&dut, &ref}) {
        c->addAccessRange(lay.instrBase, lay.instrSize);
        c->addAccessRange(lay.dataBase, lay.dataSize);
        c->addAccessRange(lay.handlerBase, 4096);
    }

    checker::DiffChecker checker(r.checkMode);
    engine::ExecutionEngine eng(&dut, &ref, &checker,
                                ReplayHarness::replayBatchSize);

    engine::IterationPolicy policy;
    policy.codeBoundary = r.iteration.codeBoundary;
    policy.handlerBase = lay.handlerBase;
    policy.resumeTraps = r.resumeTraps;
    policy.stepCap =
        static_cast<uint64_t>(
            r.stepCapFactor *
            static_cast<double>(r.iteration.generatedInstrs)) +
        r.stepCapSlack;
    policy.trapStormLimit = r.trapStormLimit;

    const bool use_warm = warm && warm->eligible(policy) &&
                          r.iteration.entryPc == warm->entryPc;
    if (!use_warm) {
        dut.reset(r.iteration.entryPc);
        ref.reset(r.iteration.entryPc);
    }

    const engine::IterationOutcome out =
        eng.runIteration(policy, {}, use_warm ? warm : nullptr);

    ReplayResult result;
    result.executed = out.executedTotal;
    result.traps = out.traps;
    if (out.mismatch) {
        result.mismatched = true;
        result.mismatch = *out.mismatch;
        result.commitIndex = out.mismatchCommitIndex;
    }
    return result;
}

} // namespace

ReplayResult
ReplayHarness::replay(const Reproducer &r)
{
    // Cold path: rebuild the iteration's memory image bit-exactly
    // through the exact write path generation used, then execute
    // from reset.
    soc::Memory dut_mem;
    fuzzer::TurboFuzzer::materializeIteration(r.env, r.iteration,
                                              dut_mem);
    soc::Memory ref_mem = dut_mem;
    return runReplay(r, dut_mem, ref_mem, nullptr);
}

ReplayHarness::Context::Context(const Reproducer &r)
    : env(r.env), iterationIndex(r.iteration.iterationIndex),
      entryPc(r.iteration.entryPc),
      firstBlockPc(r.iteration.firstBlockPc), dutOpts(dutOptionsFor(r)),
      refOpts(refOptionsFor(r))
{
    const fuzzer::MemoryLayout &lay = env.layout;

    // Base image: the prefix of materializeIteration()'s write
    // sequence that does not depend on the block list — exception
    // templates, this iteration index's data fill, and the preamble.
    // Per-replay, the candidate's blocks are written onto a copy,
    // reproducing the full materialization bit-exactly.
    fuzzer::ExceptionTemplates::install(baseMem, lay);
    fuzzer::TurboFuzzer::fillDataSegment(env, iterationIndex, baseMem);
    uint64_t addr = lay.instrBase;
    for (uint32_t insn : fuzzer::TurboFuzzer::preambleCode(env)) {
        baseMem.write32(addr, insn);
        addr += 4;
    }
    TF_ASSERT(addr == firstBlockPc,
              "replay context preamble disagrees with reproducer "
              "layout");

    engine::WarmStartSpec spec;
    spec.dutOpts = dutOpts;
    spec.refOpts = refOpts;
    spec.prefixCode = fuzzer::TurboFuzzer::warmPrefixCode(env);
    spec.entryPc = lay.instrBase;
    spec.accessRanges = {{lay.instrBase, lay.instrSize},
                         {lay.dataBase, lay.dataSize},
                         {lay.handlerBase, 4096}};
    warm = engine::captureWarmStart(spec);
}

bool
ReplayHarness::Context::compatible(const Reproducer &r) const
{
    const fuzzer::MemoryLayout &a = env.layout;
    const fuzzer::MemoryLayout &b = r.env.layout;
    return r.env.fuzzerSeed == env.fuzzerSeed &&
           r.env.bootstrapInstrs == env.bootstrapInstrs &&
           a.instrBase == b.instrBase && a.instrSize == b.instrSize &&
           a.dataBase == b.dataBase && a.dataSize == b.dataSize &&
           a.handlerBase == b.handlerBase &&
           r.iteration.iterationIndex == iterationIndex &&
           r.iteration.entryPc == entryPc &&
           r.iteration.firstBlockPc == firstBlockPc &&
           r.bugs().raw() == dutOpts.bugs.raw() &&
           r.rv64aEnabled == dutOpts.rv64aEnabled;
}

ReplayResult
ReplayHarness::Context::replay(const Reproducer &r) const
{
    TF_ASSERT(compatible(r),
              "reproducer does not share this replay context");

    soc::Memory dut_mem = baseMem;
    uint64_t addr = firstBlockPc;
    for (const fuzzer::SeedBlock &b : r.iteration.blocks) {
        for (uint32_t insn : b.insns) {
            dut_mem.write32(addr, insn);
            addr += 4;
        }
    }
    soc::Memory ref_mem = dut_mem;
    return runReplay(r, dut_mem, ref_mem,
                     warm ? &*warm : nullptr);
}

bool
ReplayHarness::confirms(const Reproducer &r, const ReplayResult &out)
{
    return out.mismatched && out.mismatch.kind == r.mismatch.kind &&
           out.mismatch.pc == r.mismatch.pc &&
           out.mismatch.insn == r.mismatch.insn &&
           out.mismatch.dutValue == r.mismatch.dutValue &&
           out.mismatch.refValue == r.mismatch.refValue &&
           out.commitIndex == r.commitIndex;
}

bool
ReplayHarness::verifyDeterministic(const Reproducer &r)
{
    const ReplayResult a = replay(r);
    const ReplayResult b = replay(r);
    const bool identical =
        a.mismatched == b.mismatched && a.executed == b.executed &&
        a.traps == b.traps && a.commitIndex == b.commitIndex &&
        a.mismatch.kind == b.mismatch.kind &&
        a.mismatch.pc == b.mismatch.pc &&
        a.mismatch.insn == b.mismatch.insn &&
        a.mismatch.dutValue == b.mismatch.dutValue &&
        a.mismatch.refValue == b.mismatch.refValue;
    return identical && confirms(r, a);
}

} // namespace turbofuzz::triage
