/**
 * @file
 * Deterministic standalone replay of captured reproducers.
 *
 * Replay rebuilds the mismatching iteration's memory image through
 * the exact write path generation used (TurboFuzzer::
 * materializeIteration), instantiates a fresh DUT/REF pair with the
 * campaign's configuration, and re-runs the campaign's abort policy
 * on the SAME batched execution engine campaign iterations run on
 * (engine::ExecutionEngine) against a fresh differential checker —
 * replay and generation share one execution path and cannot drift.
 * Because every input is a pure function of the reproducer's fields,
 * two replays of the same reproducer are bit-identical — the
 * property the minimizer and the acceptance tests rely on.
 *
 * Replay deliberately omits the campaign's coverage instrumentation,
 * RTL event driver and platform timing model: none of them feed back
 * into architectural execution, so dropping them changes nothing
 * observable while making replay (and therefore delta debugging) an
 * order of magnitude cheaper than a campaign iteration.
 */

#ifndef TURBOFUZZ_TRIAGE_REPLAY_HH
#define TURBOFUZZ_TRIAGE_REPLAY_HH

#include "triage/reproducer.hh"

namespace turbofuzz::triage
{

/** Outcome of one standalone replay. */
struct ReplayResult
{
    bool mismatched = false;
    checker::Mismatch mismatch{}; ///< valid when mismatched
    uint64_t commitIndex = 0;     ///< commits into the iteration
    uint64_t executed = 0;
    uint64_t traps = 0;
};

class ReplayHarness
{
  public:
    /**
     * Engine batch size replays run at. The replay outcome is
     * batch-size-invariant (engine equivalence contract); a fixed
     * value simply keeps the execution path identical across runs.
     */
    static constexpr uint64_t replayBatchSize = 64;

    /** Re-execute @p r standalone. Pure: same input, same output. */
    static ReplayResult replay(const Reproducer &r);

    /**
     * Whether @p out reproduces exactly the divergence @p r recorded:
     * same kind, same PC, same instruction word, same values, at the
     * same within-iteration commit index.
     */
    static bool confirms(const Reproducer &r, const ReplayResult &out);

    /**
     * Replay twice and require both runs to be bit-identical AND to
     * confirm the recorded mismatch (the determinism guarantee).
     */
    static bool verifyDeterministic(const Reproducer &r);
};

} // namespace turbofuzz::triage

#endif // TURBOFUZZ_TRIAGE_REPLAY_HH
