/**
 * @file
 * Deterministic standalone replay of captured reproducers.
 *
 * Replay rebuilds the mismatching iteration's memory image through
 * the exact write path generation used (TurboFuzzer::
 * materializeIteration), instantiates a fresh DUT/REF pair with the
 * campaign's configuration, and re-runs the campaign's abort policy
 * on the SAME batched execution engine campaign iterations run on
 * (engine::ExecutionEngine) against a fresh differential checker —
 * replay and generation share one execution path and cannot drift.
 * Because every input is a pure function of the reproducer's fields,
 * two replays of the same reproducer are bit-identical — the
 * property the minimizer and the acceptance tests rely on.
 *
 * Replay deliberately omits the campaign's coverage instrumentation,
 * RTL event driver and platform timing model: none of them feed back
 * into architectural execution, so dropping them changes nothing
 * observable while making replay (and therefore delta debugging) an
 * order of magnitude cheaper than a campaign iteration.
 */

#ifndef TURBOFUZZ_TRIAGE_REPLAY_HH
#define TURBOFUZZ_TRIAGE_REPLAY_HH

#include "engine/warm_start.hh"
#include "soc/memory.hh"
#include "triage/reproducer.hh"

namespace turbofuzz::triage
{

/** Outcome of one standalone replay. */
struct ReplayResult
{
    bool mismatched = false;
    checker::Mismatch mismatch{}; ///< valid when mismatched
    uint64_t commitIndex = 0;     ///< commits into the iteration
    uint64_t executed = 0;
    uint64_t traps = 0;
};

class ReplayHarness
{
  public:
    /**
     * Engine batch size replays run at. The replay outcome is
     * batch-size-invariant (engine equivalence contract); a fixed
     * value simply keeps the execution path identical across runs.
     */
    static constexpr uint64_t replayBatchSize = 64;

    /** Re-execute @p r standalone. Pure: same input, same output. */
    static ReplayResult replay(const Reproducer &r);

    /**
     * Warm replay context: per-reproducer state that is identical
     * across every replay of the same stimulus family — the base
     * memory image (exception templates + the iteration's data fill
     * + preamble) and the post-prefix warm-start snapshot — captured
     * once and restored per replay. Delta debugging replays the same
     * iteration ~130 times with only the block list varying, so
     * rebuilding the full image and re-executing the preamble every
     * time is the dominant redundant cost this removes.
     *
     * Context::replay(r) is bit-identical to ReplayHarness::replay(r)
     * for any reproducer sharing the context's environment,
     * configuration and iteration index (the minimizer's rebuild()
     * preserves all three) — enforced by tests/triage/.
     */
    class Context
    {
      public:
        /** Capture base state for @p r's stimulus family. */
        explicit Context(const Reproducer &r);

        /** Re-execute @p r against the cached base state. */
        ReplayResult replay(const Reproducer &r) const;

        /** Whether @p r shares this context's base state. */
        bool compatible(const Reproducer &r) const;

      private:
        fuzzer::ReplayEnv env;
        uint64_t iterationIndex;
        uint64_t entryPc;
        uint64_t firstBlockPc;
        core::Iss::Options dutOpts;
        core::Iss::Options refOpts;

        /** Templates + data fill + preamble; blocks are written on a
         *  copy of this image per replay. */
        soc::Memory baseMem;

        /** Post-prefix snapshot; nullopt falls back to cold. */
        std::optional<engine::WarmStart> warm;
    };

    /**
     * Whether @p out reproduces exactly the divergence @p r recorded:
     * same kind, same PC, same instruction word, same values, at the
     * same within-iteration commit index.
     */
    static bool confirms(const Reproducer &r, const ReplayResult &out);

    /**
     * Replay twice and require both runs to be bit-identical AND to
     * confirm the recorded mismatch (the determinism guarantee).
     */
    static bool verifyDeterministic(const Reproducer &r);
};

} // namespace turbofuzz::triage

#endif // TURBOFUZZ_TRIAGE_REPLAY_HH
